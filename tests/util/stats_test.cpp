#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hpp"

namespace hls {
namespace {

TEST(SampleStat, EmptyIsZero) {
  SampleStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStat, SingleObservation) {
  SampleStat s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(SampleStat, KnownMeanVariance) {
  SampleStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleStat, ResetClearsEverything) {
  SampleStat s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleStat, MergeMatchesCombinedStream) {
  Rng rng(21);
  SampleStat all;
  SampleStat a;
  SampleStat b;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-5, 17);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStat, MergeWithEmpty) {
  SampleStat a;
  a.add(1.0);
  SampleStat b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SampleStat, NumericallyStableForLargeStreams) {
  SampleStat s;
  // Values with a large common offset: naive sum-of-squares would lose the
  // small variance; Welford must not.
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    s.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  }
  // Population variance 0.25 with the n/(n-1) sample correction.
  EXPECT_NEAR(s.variance(), 0.25 * n / (n - 1), 1e-9);
}

TEST(TimeWeightedStat, ConstantSignal) {
  TimeWeightedStat t;
  t.set(0.0, 2.0);
  EXPECT_DOUBLE_EQ(t.average(10.0), 2.0);
}

TEST(TimeWeightedStat, StepSignal) {
  TimeWeightedStat t;
  t.set(0.0, 0.0);
  t.set(5.0, 10.0);
  // 5s at 0, 5s at 10 -> average 5.
  EXPECT_DOUBLE_EQ(t.average(10.0), 5.0);
}

TEST(TimeWeightedStat, MultipleSteps) {
  TimeWeightedStat t;
  t.set(0.0, 1.0);
  t.set(1.0, 3.0);
  t.set(3.0, 0.0);
  // 1*1 + 2*3 + 1*0 over 4 seconds = 7/4.
  EXPECT_DOUBLE_EQ(t.average(4.0), 1.75);
}

TEST(TimeWeightedStat, ResetDiscardsHistoryKeepsValue) {
  TimeWeightedStat t;
  t.set(0.0, 100.0);
  t.set(10.0, 2.0);
  t.reset(10.0);
  EXPECT_DOUBLE_EQ(t.average(20.0), 2.0);
}

TEST(TimeWeightedStat, CurrentReflectsLastSet) {
  TimeWeightedStat t;
  t.set(0.0, 7.0);
  EXPECT_DOUBLE_EQ(t.current(), 7.0);
}

TEST(TimeWeightedStat, ZeroWidthWindowReturnsCurrentValue) {
  TimeWeightedStat t;
  t.set(3.0, 4.0);
  // average over [3, 3] is 0/0; the contract is "current signal value",
  // both before any time passes and right after a reset.
  EXPECT_DOUBLE_EQ(t.average(3.0), 4.0);
  t.set(5.0, 9.0);
  t.reset(5.0);
  EXPECT_DOUBLE_EQ(t.average(5.0), 9.0);
}

TEST(TimeWeightedStat, ZeroWidthSegmentsContributeNothing) {
  TimeWeightedStat t;
  t.set(0.0, 1.0);
  // A burst of same-instant transitions (e.g. several queue events in one
  // simulation timestamp) must leave only the final value standing.
  t.set(2.0, 100.0);
  t.set(2.0, -50.0);
  t.set(2.0, 3.0);
  // 2s at 1, then 2s at 3 -> average 2.
  EXPECT_DOUBLE_EQ(t.average(4.0), 2.0);
  EXPECT_DOUBLE_EQ(t.current(), 3.0);
}

TEST(TimeWeightedStat, RedundantUpdatesAreIdentity) {
  TimeWeightedStat a;
  TimeWeightedStat b;
  a.set(0.0, 2.0);
  b.set(0.0, 2.0);
  b.set(1.0, 2.0);  // re-asserting the same value must not change anything
  b.set(2.5, 2.0);
  a.set(4.0, 5.0);
  b.set(4.0, 5.0);
  EXPECT_DOUBLE_EQ(a.average(6.0), b.average(6.0));
}

TEST(TimeWeightedStat, ResetMatchesFreshStatSeededWithCurrentValue) {
  // Property behind begin_measurement(): resetting mid-run is equivalent to
  // starting a fresh stat whose signal opens at the live value.
  TimeWeightedStat warm;
  warm.set(0.0, 8.0);
  warm.set(7.0, 3.0);
  warm.reset(10.0);
  warm.set(12.0, 6.0);

  TimeWeightedStat fresh;
  fresh.set(10.0, 3.0);  // the value live at reset time
  fresh.set(12.0, 6.0);

  EXPECT_DOUBLE_EQ(warm.average(15.0), fresh.average(15.0));
  EXPECT_DOUBLE_EQ(warm.current(), fresh.current());
}

TEST(TimeWeightedStat, DrainToZeroAverageStopsGrowing) {
  // Gauge drains to zero: past the drain instant the area is frozen, so the
  // average decays as 1/t toward zero rather than picking up new mass.
  TimeWeightedStat t;
  t.set(0.0, 4.0);
  t.set(10.0, 0.0);
  EXPECT_DOUBLE_EQ(t.average(10.0), 4.0);
  EXPECT_DOUBLE_EQ(t.average(20.0), 2.0);
  EXPECT_DOUBLE_EQ(t.average(40.0), 1.0);
  EXPECT_DOUBLE_EQ(t.current(), 0.0);
}

TEST(TimeWeightedStat, RandomPiecewiseSignalMatchesManualIntegral) {
  Rng rng(20260808);
  for (int trial = 0; trial < 50; ++trial) {
    TimeWeightedStat t;
    double now = 0.0;
    double value = 0.0;
    double area = 0.0;
    t.set(0.0, 0.0);
    for (int i = 0; i < 40; ++i) {
      const double dt = rng.uniform(0.0, 2.0);
      const double next = rng.uniform(-5.0, 5.0);
      area += value * dt;
      now += dt;
      value = next;
      t.set(now, next);
    }
    const double tail = rng.uniform(0.0, 3.0);
    area += value * tail;
    now += tail;
    if (now > 0.0) {
      EXPECT_NEAR(t.average(now), area / now, 1e-12 * (1.0 + std::abs(area)));
    }
  }
}

TEST(Histogram, CountsAndBins) {
  Histogram h(1.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(25.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NegativeClampsToFirstBin) {
  Histogram h(1.0, 4);
  h.add(-3.0);
  EXPECT_EQ(h.bin_count(0), 1u);
}

TEST(Histogram, QuantilesOfUniformStream) {
  Histogram h(0.01, 200);
  Rng rng(33);
  for (int i = 0; i < 100000; ++i) {
    h.add(rng.uniform(0.0, 2.0));
  }
  EXPECT_NEAR(h.quantile(0.5), 1.0, 0.03);
  EXPECT_NEAR(h.quantile(0.9), 1.8, 0.03);
  EXPECT_NEAR(h.quantile(0.1), 0.2, 0.03);
}

TEST(Histogram, ResetZeroes) {
  Histogram h(1.0, 4);
  h.add(1.0);
  h.add(9.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

}  // namespace
}  // namespace hls
