#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace hls {
namespace {

TEST(TaskPool, CoversEveryIndexExactlyOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_indexed(hits.size(),
                            [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskPool, ReusableAcrossBatchesAndEmptyBatch) {
  TaskPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for_indexed(0, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for_indexed(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(TaskPool, SingleWorkerRunsInlineInOrder) {
  TaskPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for_indexed(6, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(TaskPool, PropagatesFirstException) {
  TaskPool pool(4);
  EXPECT_THROW(pool.parallel_for_indexed(
                   100,
                   [&](std::size_t i) {
                     if (i == 13) {
                       throw std::runtime_error("boom");
                     }
                   }),
               std::runtime_error);
  // The pool survives the failed batch and keeps working.
  std::atomic<int> total{0};
  pool.parallel_for_indexed(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(TaskPool, ManySmallBatchesKeepWorkersCoherent) {
  TaskPool pool(4);
  std::atomic<long> sum{0};
  long expected = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(round % 7);
    pool.parallel_for_indexed(
        n, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i) + 1); });
    for (std::size_t i = 0; i < n; ++i) {
      expected += static_cast<long>(i) + 1;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(TaskPool, JobsFromEnvIsAtLeastOne) {
  EXPECT_GE(TaskPool::jobs_from_env(), 1u);
}

}  // namespace
}  // namespace hls
