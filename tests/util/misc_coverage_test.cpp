// Assorted edge coverage across small components.
#include <gtest/gtest.h>

#include "model/analytic_model.hpp"
#include "model/residuals.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace hls {
namespace {

// ---- residuals: closed-form offset case ----

TEST(ResidualsMisc, UniformUniformWithOffsetClosedForm) {
  // A, B ~ U(0,1): P(A > B + d) = (1-d)^2 / 2 for 0 <= d <= 1.
  const Residual u{ResidualShape::Uniform, 1.0};
  for (double d : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(prob_first_exceeds(u, u, d), (1.0 - d) * (1.0 - d) / 2.0, 1e-9)
        << "d=" << d;
  }
}

TEST(ResidualsMisc, TriangularTriangularSymmetryBound) {
  // Same shape and length, no offset: by symmetry P(A > B) = 1/2.
  const Residual t{ResidualShape::Triangular, 2.5};
  EXPECT_NEAR(prob_first_exceeds(t, t, 0.0), 0.5, 1e-9);
}

// ---- analytic model options ----

TEST(ModelOptions, ConvergesAcrossDampingSettings) {
  ModelParams p;
  p.lambda_site = 2.4;
  p.p_ship = 0.4;
  double reference = 0.0;
  for (double damping : {0.2, 0.5, 0.8}) {
    AnalyticModel::Options opts;
    opts.damping = damping;
    const ModelSolution s = AnalyticModel(opts).solve(p);
    EXPECT_TRUE(s.converged) << "damping=" << damping;
    if (reference == 0.0) {
      reference = s.r_avg;
    } else {
      // The fixed point is unique: the damping setting must not change it.
      EXPECT_NEAR(s.r_avg, reference, 1e-6 * reference);
    }
  }
}

TEST(ModelOptions, LooseToleranceConvergesFaster) {
  ModelParams p;
  p.lambda_site = 2.0;
  AnalyticModel::Options loose;
  loose.tolerance = 1e-4;
  AnalyticModel::Options tight;
  tight.tolerance = 1e-12;
  EXPECT_LE(AnalyticModel(loose).solve(p).iterations,
            AnalyticModel(tight).solve(p).iterations);
}

TEST(ModelParamsMisc, SingleSiteInvolvesOneSite) {
  ModelParams p;
  p.num_sites = 1;
  EXPECT_DOUBLE_EQ(p.expected_involved_sites(), 1.0);
}

// ---- simulator / resource edges ----

TEST(SimulatorMisc, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "past");
}

TEST(ResourceMisc, ResetMidServiceKeepsBusySignal) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  cpu.submit(4.0, [] {});
  sim.run_until(2.0);
  cpu.reset_stats();  // reset while the burst is still in service
  sim.run_until(4.0);
  // [2,4] is fully busy after the reset.
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-12);
  sim.run_until(8.0);
  EXPECT_NEAR(cpu.utilization(), 2.0 / 6.0, 1e-12);
}

TEST(ResourceMisc, ManyZeroBurstsCompleteInOrder) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    cpu.submit(0.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(order[i], i);
  }
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

// ---- histogram quantile extremes ----

TEST(HistogramMisc, QuantileExtremes) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.add(4.5);
  }
  EXPECT_NEAR(h.quantile(0.0), 4.0, 1e-9);  // bin lower edge
  EXPECT_NEAR(h.quantile(1.0), 5.0, 1e-9);  // bin upper edge
  EXPECT_NEAR(h.quantile(0.5), 4.5, 1e-9);
}

TEST(HistogramMisc, AllOverflowQuantileIsUpperBound) {
  Histogram h(1.0, 4);
  h.add(100.0);
  h.add(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);  // reported as the histogram edge
}

TEST(SampleStatMisc, SelfMergeDoubles) {
  SampleStat a;
  a.add(1.0);
  a.add(3.0);
  SampleStat b = a;
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

}  // namespace
}  // namespace hls
