#include "util/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace hls {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ZeroSeedStillWellMixed) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.next_u64());
  }
  EXPECT_EQ(seen.size(), 100u);  // no short cycles from a degenerate state
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.fork();
  // Streams should diverge immediately and not be identical shifted copies.
  int equal = 0;
  Rng parent2 = parent;  // copy continues the parent stream
  for (int i = 0; i < 1000; ++i) {
    if (parent2.next_u64() == child.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(7);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  // Chi-square against uniform; 9 dof, 99.9% critical value ~ 27.9.
  double chi2 = 0.0;
  const double expect = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    chi2 += (c - expect) * (c - expect) / expect;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(10);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(rate);
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(rng.exponential(0.5), 0.0);
  }
}

TEST(Rng, ExponentialVarianceMatches) {
  Rng rng(12);
  const double rate = 2.0;
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(rng.bernoulli(0.0));
    ASSERT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(p) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(15);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 7.5);
  }
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, MomentsHoldAcrossSeeds) {
  Rng rng(GetParam());
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 2ull, 42ull, 1337ull,
                                           0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace hls
