#include "util/logging.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace hls {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  set_log_level(before);
}

TEST(Logging, SuppressedCallsAreCheap) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  for (int i = 0; i < 100000; ++i) {
    HLS_LOG_DEBUG("suppressed %d", i);
  }
  set_log_level(before);
  SUCCEED();
}

TEST(Logging, EmitsAtOrAboveLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  // Functional smoke: these must not crash regardless of suppression.
  HLS_LOG_TRACE("trace %s", "msg");
  HLS_LOG_ERROR("error %s", "msg");
  set_log_level(before);
  SUCCEED();
}

using AssertDeathTest = ::testing::Test;

TEST(AssertDeathTest, FailedAssertAborts) {
  EXPECT_DEATH(HLS_ASSERT(false, "intentional test failure"),
               "intentional test failure");
}

TEST(AssertDeathTest, PassingAssertIsSilent) {
  HLS_ASSERT(1 + 1 == 2, "never fires");
  SUCCEED();
}

}  // namespace
}  // namespace hls
