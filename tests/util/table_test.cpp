#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hls {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Table, AlignedOutputContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.begin_row().add_cell("alpha").add_num(1.5, 2);
  t.begin_row().add_cell("b").add_int(42);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvOutputHasSentinelPrefix) {
  Table t({"a", "b"});
  t.begin_row().add_int(1).add_int(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "csv,a,b\ncsv,1,2\n");
}

TEST(Table, RowAccessors) {
  Table t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.begin_row().add_cell("v");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0).at(0), "v");
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"h", "long_header"});
  t.begin_row().add_cell("yyyyyyyyyy").add_cell("1");
  t.begin_row().add_cell("z").add_cell("2");
  std::ostringstream os;
  t.print(os);
  std::string line;
  std::istringstream in(os.str());
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);  // header, underline, 2 rows
  EXPECT_EQ(lines[2].size(), lines[3].size());
}

}  // namespace
}  // namespace hls
