#include "db/lock_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hpp"

namespace hls {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  Simulator sim;
  LockManager lm{sim, "test"};
};

// ---- basic granting ----

TEST_F(LockManagerTest, ExclusiveGrantOnFreeLock) {
  EXPECT_EQ(lm.request(1, 10, LockMode::Exclusive, nullptr),
            LockRequestOutcome::Granted);
  EXPECT_TRUE(lm.holds(1, 10));
  EXPECT_EQ(lm.locks_held(), 1u);
}

TEST_F(LockManagerTest, SharedLocksCoexist) {
  EXPECT_EQ(lm.request(1, 10, LockMode::Shared, nullptr),
            LockRequestOutcome::Granted);
  EXPECT_EQ(lm.request(2, 10, LockMode::Shared, nullptr),
            LockRequestOutcome::Granted);
  EXPECT_TRUE(lm.holds(1, 10));
  EXPECT_TRUE(lm.holds(2, 10));
  lm.check_invariants();
}

TEST_F(LockManagerTest, ExclusiveBlocksShared) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  bool granted = false;
  EXPECT_EQ(lm.request(2, 10, LockMode::Shared, [&] { granted = true; }),
            LockRequestOutcome::Queued);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.waiters(), 1u);
  EXPECT_TRUE(lm.is_waiting(2));
}

TEST_F(LockManagerTest, SharedBlocksExclusive) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  EXPECT_EQ(lm.request(2, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Queued);
}

TEST_F(LockManagerTest, ReleaseGrantsNextWaiter) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  bool granted = false;
  lm.request(2, 10, LockMode::Exclusive, [&] { granted = true; });
  lm.release(1, 10);
  sim.run();  // grant callbacks dispatch through the simulator
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.holds(2, 10));
  EXPECT_FALSE(lm.holds(1, 10));
}

TEST_F(LockManagerTest, ReleaseGrantsMultipleCompatibleWaiters) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  int granted = 0;
  lm.request(2, 10, LockMode::Shared, [&] { ++granted; });
  lm.request(3, 10, LockMode::Shared, [&] { ++granted; });
  lm.release_all(1);
  sim.run();
  EXPECT_EQ(granted, 2);
  EXPECT_TRUE(lm.holds(2, 10));
  EXPECT_TRUE(lm.holds(3, 10));
}

TEST_F(LockManagerTest, FifoFairnessSharedDoesNotOvertakeQueuedExclusive) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(2, 10, LockMode::Exclusive, [] {});  // queued
  // A new shared request must NOT jump the queued exclusive.
  EXPECT_EQ(lm.request(3, 10, LockMode::Shared, [] {}),
            LockRequestOutcome::Queued);
  lm.check_invariants();
}

TEST_F(LockManagerTest, AlreadyHeldFastPath) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  EXPECT_EQ(lm.request(1, 10, LockMode::Exclusive, nullptr),
            LockRequestOutcome::AlreadyHeld);
  EXPECT_EQ(lm.request(1, 10, LockMode::Shared, nullptr),
            LockRequestOutcome::AlreadyHeld);
  EXPECT_EQ(lm.locks_held(), 1u);
}

TEST_F(LockManagerTest, SharedToExclusiveUpgradeWhenAlone) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  EXPECT_EQ(lm.request(1, 10, LockMode::Exclusive, nullptr),
            LockRequestOutcome::Granted);
  // Now exclusive: another shared must queue.
  EXPECT_EQ(lm.request(2, 10, LockMode::Shared, [] {}),
            LockRequestOutcome::Queued);
  EXPECT_EQ(lm.locks_held(), 1u);  // upgrade does not duplicate the hold
}

TEST_F(LockManagerTest, UpgradeBlockedByOtherSharedHolder) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(2, 10, LockMode::Shared, nullptr);
  bool granted = false;
  EXPECT_EQ(lm.request(1, 10, LockMode::Exclusive, [&] { granted = true; }),
            LockRequestOutcome::Queued);
  lm.release(2, 10);
  sim.run();
  EXPECT_TRUE(granted);
  // Upgraded in place: still a single hold, now exclusive.
  EXPECT_EQ(lm.locks_held(), 1u);
  EXPECT_EQ(lm.request(3, 10, LockMode::Shared, [] {}),
            LockRequestOutcome::Queued);
}

// ---- deadlock detection ----

TEST_F(LockManagerTest, DirectDeadlockDetected) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(2, 20, LockMode::Exclusive, nullptr);
  EXPECT_EQ(lm.request(1, 20, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Queued);
  // 2 -> 10 would close the cycle 2 -> 1 -> 2.
  EXPECT_EQ(lm.request(2, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Deadlock);
  EXPECT_EQ(lm.deadlocks_detected(), 1u);
}

TEST_F(LockManagerTest, ThreeWayDeadlockDetected) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(2, 20, LockMode::Exclusive, nullptr);
  lm.request(3, 30, LockMode::Exclusive, nullptr);
  EXPECT_EQ(lm.request(1, 20, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Queued);
  EXPECT_EQ(lm.request(2, 30, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Queued);
  EXPECT_EQ(lm.request(3, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Deadlock);
}

TEST_F(LockManagerTest, UpgradeDeadlockBetweenTwoSharedHolders) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(2, 10, LockMode::Shared, nullptr);
  EXPECT_EQ(lm.request(1, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Queued);
  EXPECT_EQ(lm.request(2, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Deadlock);
}

TEST_F(LockManagerTest, NoFalseDeadlockOnSimpleWait) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  EXPECT_EQ(lm.request(2, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Queued);
  EXPECT_EQ(lm.deadlocks_detected(), 0u);
}

TEST_F(LockManagerTest, DeadlockVictimReleaseBreaksCycleForOthers) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(2, 20, LockMode::Exclusive, nullptr);
  lm.request(1, 20, LockMode::Exclusive, [] {});
  ASSERT_EQ(lm.request(2, 10, LockMode::Exclusive, [] {}),
            LockRequestOutcome::Deadlock);
  // Victim (txn 2) aborts: releases everything; txn 1 proceeds.
  lm.release_all(2);
  sim.run();
  EXPECT_TRUE(lm.holds(1, 20));
}

// ---- cancel_waits ----

TEST_F(LockManagerTest, CancelWaitsRemovesQueuedRequest) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(2, 10, LockMode::Exclusive, [] {});
  const auto cancelled = lm.cancel_waits(2);
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_EQ(cancelled[0], 10u);
  EXPECT_FALSE(lm.is_waiting(2));
  EXPECT_EQ(lm.waiters(), 0u);
}

TEST_F(LockManagerTest, CancelWaitsOnNonWaiterIsNoop) {
  EXPECT_TRUE(lm.cancel_waits(7).empty());
}

TEST_F(LockManagerTest, CancelWaitsUnblocksLaterWaiters) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(2, 10, LockMode::Exclusive, [] {});   // queued
  bool granted = false;
  lm.request(3, 10, LockMode::Shared, [&] { granted = true; });  // behind 2
  lm.cancel_waits(2);
  sim.run();
  EXPECT_TRUE(granted);  // head is now the shared request, compatible
}

// ---- release_all ----

TEST_F(LockManagerTest, ReleaseAllDropsHoldsAndWaits) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(1, 11, LockMode::Shared, nullptr);
  lm.request(2, 12, LockMode::Exclusive, nullptr);
  lm.request(1, 12, LockMode::Exclusive, [] {});  // queued
  lm.release_all(1);
  EXPECT_EQ(lm.locks_held(), 1u);  // only txn 2's hold remains
  EXPECT_FALSE(lm.is_waiting(1));
  EXPECT_TRUE(lm.held_locks(1).empty());
  lm.check_invariants();
}

// ---- authentication grabs ----

TEST_F(LockManagerTest, GrabOnFreeLockGrants) {
  auto grab = lm.grab_for_authentication(100, 10, LockMode::Exclusive);
  EXPECT_TRUE(grab.granted);
  EXPECT_TRUE(grab.aborted.empty());
  EXPECT_TRUE(lm.holds(100, 10));
}

TEST_F(LockManagerTest, GrabPreemptsIncompatibleHolder) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  auto grab = lm.grab_for_authentication(100, 10, LockMode::Exclusive);
  EXPECT_TRUE(grab.granted);
  ASSERT_EQ(grab.aborted.size(), 1u);
  EXPECT_EQ(grab.aborted[0], 1u);
  EXPECT_FALSE(lm.holds(1, 10));
  EXPECT_TRUE(lm.holds(100, 10));
  lm.check_invariants();
}

TEST_F(LockManagerTest, SharedGrabCoexistsWithSharedHolders) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  auto grab = lm.grab_for_authentication(100, 10, LockMode::Shared);
  EXPECT_TRUE(grab.granted);
  EXPECT_TRUE(grab.aborted.empty());
  EXPECT_TRUE(lm.holds(1, 10));
  EXPECT_TRUE(lm.holds(100, 10));
}

TEST_F(LockManagerTest, SharedGrabPreemptsExclusiveHolder) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  auto grab = lm.grab_for_authentication(100, 10, LockMode::Shared);
  EXPECT_TRUE(grab.granted);
  ASSERT_EQ(grab.aborted.size(), 1u);
  EXPECT_EQ(grab.aborted[0], 1u);
}

TEST_F(LockManagerTest, GrabRefusedByPendingCoherence) {
  lm.increment_coherence(10);
  auto grab = lm.grab_for_authentication(100, 10, LockMode::Exclusive);
  EXPECT_FALSE(grab.granted);
  EXPECT_FALSE(lm.holds(100, 10));
  lm.decrement_coherence(10);
  grab = lm.grab_for_authentication(100, 10, LockMode::Exclusive);
  EXPECT_TRUE(grab.granted);
}

TEST_F(LockManagerTest, GrabPreemptsMultipleSharedHolders) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(2, 10, LockMode::Shared, nullptr);
  lm.request(3, 10, LockMode::Shared, nullptr);
  auto grab = lm.grab_for_authentication(100, 10, LockMode::Exclusive);
  EXPECT_TRUE(grab.granted);
  EXPECT_EQ(grab.aborted.size(), 3u);
  EXPECT_EQ(lm.locks_held(), 1u);
  lm.check_invariants();
}

TEST_F(LockManagerTest, WaitersSurviveGrabAndGetLockAfterGrabberReleases) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  bool granted = false;
  lm.request(2, 10, LockMode::Exclusive, [&] { granted = true; });
  lm.grab_for_authentication(100, 10, LockMode::Exclusive);
  sim.run();
  EXPECT_FALSE(granted);  // grabber holds exclusively
  lm.release_all(100);
  sim.run();
  EXPECT_TRUE(granted);
}

TEST_F(LockManagerTest, SharedGrabEvictingExclusiveUnblocksSharedWaiters) {
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  bool granted = false;
  lm.request(2, 10, LockMode::Shared, [&] { granted = true; });
  lm.grab_for_authentication(100, 10, LockMode::Shared);
  sim.run();
  EXPECT_TRUE(granted);  // exclusive holder evicted, shared waiter compatible
}

// ---- coherence field ----

TEST_F(LockManagerTest, CoherenceCountsStack) {
  lm.increment_coherence(5);
  lm.increment_coherence(5);
  EXPECT_EQ(lm.coherence_count(5), 2u);
  EXPECT_EQ(lm.pending_coherence_entities(), 1u);
  lm.decrement_coherence(5);
  EXPECT_EQ(lm.coherence_count(5), 1u);
  EXPECT_EQ(lm.pending_coherence_entities(), 1u);
  lm.decrement_coherence(5);
  EXPECT_EQ(lm.coherence_count(5), 0u);
  EXPECT_EQ(lm.pending_coherence_entities(), 0u);
}

TEST_F(LockManagerTest, CoherenceDoesNotBlockLocalRequests) {
  lm.increment_coherence(5);
  EXPECT_EQ(lm.request(1, 5, LockMode::Exclusive, nullptr),
            LockRequestOutcome::Granted);
}

TEST_F(LockManagerTest, CoherenceOnUnknownLockIsZero) {
  EXPECT_EQ(lm.coherence_count(12345), 0u);
}

// ---- observability ----

TEST_F(LockManagerTest, HeldLocksLists) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(1, 20, LockMode::Exclusive, nullptr);
  auto held = lm.held_locks(1);
  EXPECT_EQ(held.size(), 2u);
  EXPECT_TRUE(lm.held_locks(99).empty());
}

TEST_F(LockManagerTest, HoldersOfReportsModes) {
  lm.request(1, 10, LockMode::Shared, nullptr);
  lm.request(2, 10, LockMode::Shared, nullptr);
  auto holders = lm.holders_of(10);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0].mode, LockMode::Shared);
  EXPECT_TRUE(lm.holders_of(999).empty());
}

// ---- property test: random workload keeps invariants ----

class LockManagerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockManagerFuzz, RandomOpsPreserveInvariants) {
  Simulator sim;
  LockManager lm(sim, "fuzz");
  Rng rng(GetParam());
  constexpr int kTxns = 12;
  constexpr int kLocks = 8;

  std::vector<bool> waiting(kTxns + 1, false);
  for (int step = 0; step < 4000; ++step) {
    const TxnId txn = 1 + rng.next_below(kTxns);
    const LockId lock = static_cast<LockId>(rng.next_below(kLocks));
    const double roll = rng.next_double();
    if (roll < 0.5) {
      if (!lm.is_waiting(txn)) {
        const LockMode mode =
            rng.bernoulli(0.3) ? LockMode::Exclusive : LockMode::Shared;
        const auto outcome = lm.request(txn, lock, mode, [] {});
        if (outcome == LockRequestOutcome::Deadlock) {
          lm.release_all(txn);
        }
      }
    } else if (roll < 0.7) {
      lm.release_all(txn);
    } else if (roll < 0.8) {
      lm.cancel_waits(txn);
    } else if (roll < 0.9) {
      // Authentication grab by a txn id outside the local range.
      const TxnId grabber = 1000 + rng.next_below(3);
      if (!lm.is_waiting(grabber)) {
        lm.grab_for_authentication(grabber, lock,
                                   rng.bernoulli(0.5) ? LockMode::Exclusive
                                                      : LockMode::Shared);
      }
    } else if (roll < 0.95) {
      lm.increment_coherence(lock);
    } else {
      if (lm.coherence_count(lock) > 0) {
        lm.decrement_coherence(lock);
      }
    }
    sim.run();  // flush grant callbacks
    if (step % 64 == 0) {
      lm.check_invariants();
    }
  }
  lm.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerFuzz,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace hls
