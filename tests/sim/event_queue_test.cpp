#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace hls {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().callback();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, NextTimeMatchesEarliest) {
  EventQueue q;
  q.push(7.0, [] {});
  q.push(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  const EventId id = q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) {
    q.pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelHeadAdjustsNextTime) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(4.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<double> popped;
  q.push(1.0, [] {});
  q.push(5.0, [] {});
  popped.push_back(q.pop().time);
  q.push(3.0, [] {});
  q.push(0.5, [] {});  // legal: earlier than items already popped? queue does
                       // not know about "now"; ordering is the queue's only job
  while (!q.empty()) {
    popped.push_back(q.pop().time);
  }
  EXPECT_TRUE(std::is_sorted(popped.begin() + 1, popped.end()));
}

TEST(EventQueue, StaleIdAfterSlotReuseIsRejected) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  // Reap the cancelled head so its slot returns to the free list.
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  // This push reuses the freed slot under a new generation: the stale id
  // must not cancel it, the fresh id must.
  const EventId b = q.push(0.5, [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, IdsNeverRepeatAcrossSlotReuse) {
  EventQueue q;
  std::vector<EventId> seen;
  for (int round = 0; round < 100; ++round) {
    const EventId id = q.push(static_cast<double>(round), [] {});
    EXPECT_EQ(std::count(seen.begin(), seen.end(), id), 0);
    seen.push_back(id);
    if (round % 2 == 0) {
      q.pop();
    } else {
      q.cancel(id);
      if (!q.empty()) {
        // Reap, freeing the slot for the next round.
        static_cast<void>(q.next_time());
      }
    }
  }
}

TEST(EventQueue, DrainAfterMixedCancelsReachesZero) {
  Rng rng(7);
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(q.push(rng.uniform(0.0, 10.0), [] {}));
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(q.cancel(ids[i]));
    ++cancelled;
  }
  EXPECT_EQ(q.size(), ids.size() - cancelled);
  std::size_t fired = 0;
  double last = -1.0;
  while (!q.empty()) {
    const auto popped = q.pop();
    EXPECT_GE(popped.time, last);
    last = popped.time;
    ++fired;
  }
  EXPECT_EQ(fired, ids.size() - cancelled);
  EXPECT_EQ(q.size(), 0u);
  // Every cancelled id is dead, and the drained queue is reusable.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_FALSE(q.cancel(ids[i]));
  }
  const EventId fresh = q.push(1.0, [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(fresh));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAllThenFreshPushDrainsClean) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(q.push(static_cast<double>(i), [] {}));
  }
  for (const EventId id : ids) {
    EXPECT_TRUE(q.cancel(id));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // next_time() reaps the whole cancelled prefix to find the live head.
  const EventId fresh = q.push(100.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 100.0);
  const auto popped = q.pop();
  EXPECT_EQ(popped.id, fresh);
  EXPECT_TRUE(q.empty());
}

// Property: against a reference model (sorted multiset of (time, seq)).
TEST(EventQueue, RandomOperationsMatchReferenceModel) {
  Rng rng(99);
  EventQueue q;
  std::vector<std::pair<double, std::uint64_t>> reference;  // (time, seq)
  std::vector<EventId> live_ids;
  std::uint64_t seq = 0;

  for (int step = 0; step < 5000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.55 || q.empty()) {
      const double t = rng.uniform(0.0, 100.0);
      live_ids.push_back(q.push(t, [] {}));
      reference.emplace_back(t, seq++);
    } else if (roll < 0.75 && !live_ids.empty()) {
      // Cancel a random live event.
      const std::size_t k = rng.next_below(live_ids.size());
      const EventId id = live_ids[k];
      const bool ok = q.cancel(id);
      if (ok) {
        // Remove the k-th oldest surviving entry: ids were pushed in seq
        // order, and live_ids mirrors reference order.
        reference.erase(reference.begin() + static_cast<long>(k));
      }
      live_ids.erase(live_ids.begin() + static_cast<long>(k));
    } else {
      const auto popped = q.pop();
      auto best = std::min_element(reference.begin(), reference.end());
      ASSERT_NE(best, reference.end());
      ASSERT_DOUBLE_EQ(popped.time, best->first);
      const std::size_t idx = best - reference.begin();
      reference.erase(best);
      live_ids.erase(live_ids.begin() + static_cast<long>(idx));
    }
    ASSERT_EQ(q.size(), reference.size());
  }
}

// Property: exact (time, seq) pop order through calendar resizes. The
// phases force both directions of rebuild — a growth burst, a drain to
// near-empty, a same-timestamp cluster (pure seq tiebreak), and a
// six-decade time spread that invalidates any previously estimated bucket
// width. Each pop is checked against the reference minimum, so the firing
// order must equal the total order the replaced binary heap produced.
TEST(EventQueue, ResizeStressMatchesHeapOrder) {
  Rng rng(1234);
  EventQueue q;
  struct Ref {
    double time;
    std::uint64_t seq;
    EventId id;
  };
  std::vector<Ref> reference;
  std::uint64_t seq = 0;

  auto push = [&](double t) {
    reference.push_back({t, seq, q.push(t, [] {})});
    ++seq;
  };
  auto pop_and_check = [&] {
    const auto popped = q.pop();
    auto best = std::min_element(
        reference.begin(), reference.end(), [](const Ref& a, const Ref& b) {
          return a.time != b.time ? a.time < b.time : a.seq < b.seq;
        });
    ASSERT_NE(best, reference.end());
    ASSERT_DOUBLE_EQ(popped.time, best->time);
    ASSERT_EQ(popped.id, best->id);  // exact event, not just equal time
    reference.erase(best);
  };

  // Phase 1: dense growth burst (rebuilds upward).
  for (int i = 0; i < 4000; ++i) {
    push(rng.uniform(0.0, 1.0));
  }
  // Phase 2: cancel a third, spread over the whole range.
  for (std::size_t i = 0; i < 4000; i += 3) {
    ASSERT_TRUE(q.cancel(reference[i].id));
  }
  for (std::size_t i = reference.size(); i-- > 0;) {
    if (i % 3 == 0) {
      reference.erase(reference.begin() + static_cast<long>(i));
    }
  }
  // Phase 3: drain to near-empty (shrink rebuilds), checking each pop.
  while (q.size() > 16) {
    pop_and_check();
  }
  // Phase 4: same-timestamp cluster — pure scheduling-order tiebreak.
  for (int i = 0; i < 500; ++i) {
    push(42.0);
  }
  // Phase 5: six decades of time spread to break the estimated width.
  for (int i = 0; i < 500; ++i) {
    push(rng.uniform(0.0, 1.0) * std::pow(10.0, static_cast<double>(i % 7)));
  }
  while (!q.empty()) {
    pop_and_check();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_EQ(q.size(), 0u);
}

// Same-timestamp cluster across a rebuild: the seq tiebreak must survive
// rebucketing (entries move between buckets but never reorder).
TEST(EventQueue, SeqOrderSurvivesRebuild) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.push(1.0, [&, i] { order.push_back(i); });
  }
  // Force rebuilds by pushing/popping far-apart filler around the cluster.
  std::vector<EventId> filler;
  for (int i = 0; i < 2000; ++i) {
    filler.push_back(q.push(1000.0 + i, [] {}));
  }
  for (const EventId id : filler) {
    ASSERT_TRUE(q.cancel(id));
  }
  for (int i = 0; i < 100; ++i) {
    q.pop().callback();
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(order[i], i);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace hls
