// FaultSchedule expansion, validation, and config-text round-tripping.
#include "sim/fault_schedule.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

TEST(FaultSchedule, EmptyConfigReportsEmpty) {
  FaultScheduleConfig cfg;
  EXPECT_TRUE(cfg.empty());
  cfg.random_link_outage_rate = 0.01;  // rate without a horizon is inert
  EXPECT_TRUE(cfg.empty());
  cfg.random_horizon = 100.0;
  EXPECT_FALSE(cfg.empty());
}

TEST(FaultSchedule, WindowExpandsToBeginAndEndTransitions) {
  FaultScheduleConfig cfg;
  cfg.windows.push_back({FaultKind::CentralOutage, -1, 5.0, 2.5, 1.0, 0.0});
  const FaultSchedule schedule(cfg, 4, Rng(1));
  ASSERT_EQ(schedule.transitions().size(), 2u);
  const FaultTransition& begin = schedule.transitions()[0];
  const FaultTransition& end = schedule.transitions()[1];
  EXPECT_DOUBLE_EQ(begin.time, 5.0);
  EXPECT_TRUE(begin.begin);
  EXPECT_EQ(begin.kind, FaultKind::CentralOutage);
  EXPECT_DOUBLE_EQ(end.time, 7.5);
  EXPECT_FALSE(end.begin);
}

TEST(FaultSchedule, TransitionsAreTimeSortedWithEndsBeforeBeginsAtTies) {
  FaultScheduleConfig cfg;
  // Back-to-back windows on the same site: the first ends exactly when the
  // second begins. End must sort first so the boundary instant stays faulted
  // (crash/recover guards coalesce; link set_up(false) twice is idempotent).
  cfg.windows.push_back({FaultKind::LinkOutage, 0, 1.0, 2.0, 1.0, 0.0});
  cfg.windows.push_back({FaultKind::LinkOutage, 0, 3.0, 2.0, 1.0, 0.0});
  const FaultSchedule schedule(cfg, 2, Rng(1));
  ASSERT_EQ(schedule.transitions().size(), 4u);
  EXPECT_DOUBLE_EQ(schedule.transitions()[1].time, 3.0);
  EXPECT_FALSE(schedule.transitions()[1].begin);  // end of window 1
  EXPECT_DOUBLE_EQ(schedule.transitions()[2].time, 3.0);
  EXPECT_TRUE(schedule.transitions()[2].begin);  // begin of window 2
}

TEST(FaultSchedule, RandomLinkOutagesAreDeterministicAndDisjointPerSite) {
  FaultScheduleConfig cfg;
  cfg.random_link_outage_rate = 0.05;
  cfg.random_link_outage_mean = 2.0;
  cfg.random_horizon = 500.0;
  const FaultSchedule a(cfg, 3, Rng(7));
  const FaultSchedule b(cfg, 3, Rng(7));
  ASSERT_FALSE(a.transitions().empty());
  ASSERT_EQ(a.transitions().size(), b.transitions().size());
  for (std::size_t i = 0; i < a.transitions().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.transitions()[i].time, b.transitions()[i].time);
    EXPECT_EQ(a.transitions()[i].site, b.transitions()[i].site);
    EXPECT_EQ(a.transitions()[i].begin, b.transitions()[i].begin);
  }
  // Windows on one link never overlap: per site, transitions alternate
  // begin/end in time order.
  for (int site = 0; site < 3; ++site) {
    bool down = false;
    for (const FaultTransition& tr : a.transitions()) {
      if (tr.site != site) {
        continue;
      }
      EXPECT_NE(tr.begin, down);
      down = tr.begin;
    }
    EXPECT_FALSE(down);  // every window closes
  }
  // A different seed produces a different timeline.
  const FaultSchedule c(cfg, 3, Rng(8));
  EXPECT_TRUE(c.transitions().size() != a.transitions().size() ||
              c.transitions()[0].time != a.transitions()[0].time);
}

TEST(FaultSchedule, ValidateRejectsBadWindows) {
  std::string error;
  FaultScheduleConfig cfg;
  cfg.windows.push_back({FaultKind::SiteOutage, 9, 0.0, 1.0, 1.0, 0.0});
  EXPECT_FALSE(cfg.validate(4, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);

  cfg.windows.clear();
  cfg.windows.push_back({FaultKind::LinkDegrade, 0, 0.0, 1.0, 2.0, 1.0});
  EXPECT_FALSE(cfg.validate(4, &error));  // loss = 1 never delivers
  EXPECT_NE(error.find("loss"), std::string::npos);

  cfg.windows.clear();
  cfg.windows.push_back({FaultKind::CentralOutage, -1, -1.0, 1.0, 1.0, 0.0});
  EXPECT_FALSE(cfg.validate(4, &error));

  cfg.windows.clear();
  cfg.random_link_outage_rate = 0.1;
  cfg.random_horizon = 10.0;
  cfg.random_link_outage_mean = 0.0;
  EXPECT_FALSE(cfg.validate(4, &error));
  EXPECT_NE(error.find("duration"), std::string::npos);
}

TEST(FaultSchedule, ParseFormatsRoundTrip) {
  const char* specs[] = {
      "central_outage:10:2.5",
      "site_outage:3:1:0.5",
      "site_outage:all:1:0.5",
      "link_outage:0:7:3",
      "link_degrade:2:5:10:4:0.25",
      "link_degrade:all:0:100:1.5:0",
  };
  for (const char* spec : specs) {
    FaultWindow window;
    std::string error;
    ASSERT_TRUE(parse_fault_window(spec, &window, &error)) << spec << ": " << error;
    EXPECT_EQ(format_fault_window(window), spec);
    FaultWindow reparsed;
    ASSERT_TRUE(parse_fault_window(format_fault_window(window), &reparsed, &error));
    EXPECT_EQ(reparsed.kind, window.kind);
    EXPECT_EQ(reparsed.site, window.site);
    EXPECT_DOUBLE_EQ(reparsed.start, window.start);
    EXPECT_DOUBLE_EQ(reparsed.duration, window.duration);
  }
}

TEST(FaultSchedule, ParseRejectsMalformedInputWithMessages) {
  FaultWindow window;
  std::string error;
  EXPECT_FALSE(parse_fault_window("power_outage:1:2", &window, &error));
  EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
  EXPECT_FALSE(parse_fault_window("central_outage:1", &window, &error));
  EXPECT_FALSE(parse_fault_window("site_outage:x:1:2", &window, &error));
  EXPECT_NE(error.find("site"), std::string::npos);
  EXPECT_FALSE(parse_fault_window("link_outage:0:abc:2", &window, &error));
  EXPECT_FALSE(parse_fault_window("link_degrade:0:1:2:3", &window, &error));
  EXPECT_FALSE(parse_fault_window("link_degrade:0:1:2:3:1.0", &window, &error));
}

}  // namespace
}  // namespace hls
