#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hls {
namespace {

TEST(FcfsResource, SingleJobCompletesAfterServiceTime) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  double done_at = -1.0;
  cpu.submit(2.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(FcfsResource, JobsServeInFifoOrder) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  std::vector<int> order;
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(1.0, [&, i] {
      order.push_back(i);
      times.push_back(sim.now());
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(FcfsResource, QueueLengthIncludesInService) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  EXPECT_EQ(cpu.queue_length(), 0u);
  cpu.submit(1.0, [] {});
  cpu.submit(1.0, [] {});
  cpu.submit(1.0, [] {});
  EXPECT_EQ(cpu.queue_length(), 3u);
  EXPECT_TRUE(cpu.busy());
  sim.run_until(1.0);
  EXPECT_EQ(cpu.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(cpu.queue_length(), 0u);
  EXPECT_FALSE(cpu.busy());
}

TEST(FcfsResource, ZeroServiceJobKeepsFifoOrder) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  std::vector<int> order;
  cpu.submit(1.0, [&] { order.push_back(0); });
  cpu.submit(0.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(FcfsResource, CompletionSubmittedWorkQueuesBehindWaiters) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  std::vector<int> order;
  cpu.submit(1.0, [&] {
    order.push_back(0);
    // Submitted at completion time: must queue behind job 1 (already waiting).
    cpu.submit(1.0, [&] { order.push_back(2); });
  });
  cpu.submit(1.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(FcfsResource, UtilizationFractionCorrect) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  cpu.submit(2.0, [] {});
  sim.run_until(8.0);
  EXPECT_NEAR(cpu.utilization(), 0.25, 1e-12);
}

TEST(FcfsResource, AverageQueueLengthCorrect) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  cpu.submit(2.0, [] {});
  cpu.submit(2.0, [] {});
  sim.run_until(8.0);
  // Queue length: 2 for [0,2), 1 for [2,4), 0 for [4,8) -> avg = 6/8.
  EXPECT_NEAR(cpu.average_queue_length(), 0.75, 1e-12);
}

TEST(FcfsResource, ResetStatsRestartsAccounting) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  cpu.submit(4.0, [] {});
  sim.run_until(4.0);
  cpu.reset_stats();
  sim.run_until(8.0);
  EXPECT_NEAR(cpu.utilization(), 0.0, 1e-12);
  EXPECT_EQ(cpu.completed_bursts(), 0u);
}

TEST(FcfsResource, CompletedBurstsCount) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  for (int i = 0; i < 5; ++i) {
    cpu.submit(0.5, [] {});
  }
  sim.run();
  EXPECT_EQ(cpu.completed_bursts(), 5u);
}

TEST(FcfsResource, BusyWindowUtilizationIsOne) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  for (int i = 0; i < 4; ++i) {
    cpu.submit(1.0, [] {});
  }
  sim.run_until(4.0);
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-12);
}

TEST(FcfsResource, LedgersSatisfyLittlesLawIdentities) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  // Two overlapping bursts plus a late one: with the queue empty at t=10,
  // ∫busy dt equals the completed service sum and ∫queue dt equals the
  // summed submit→completion sojourns — the identities conservation_test
  // asserts on every CPU in the grid.
  cpu.submit(2.0, [] {});
  cpu.submit(1.0, [] {});
  sim.schedule_at(5.0, [&] { cpu.submit(3.0, [] {}); });
  sim.run_until(10.0);
  EXPECT_EQ(cpu.queue_length(), 0u);
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 6.0);
  // Sojourns: [0,2] + [0,3] + [5,8] = 2 + 3 + 3 = 8.
  EXPECT_DOUBLE_EQ(cpu.sojourn_seconds(), 8.0);
  EXPECT_NEAR(cpu.utilization() * 10.0, cpu.busy_seconds(), 1e-12);
  EXPECT_NEAR(cpu.average_queue_length() * 10.0, cpu.sojourn_seconds(), 1e-12);
}

TEST(FcfsResource, ResetStatsClearsLedgers) {
  Simulator sim;
  FcfsResource cpu(sim, "cpu");
  cpu.submit(3.0, [] {});
  sim.run_until(4.0);
  cpu.reset_stats();
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.sojourn_seconds(), 0.0);
  cpu.submit(1.0, [] {});
  sim.run_until(6.0);
  // Only post-reset work appears, so the identities hold on the new window.
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(cpu.sojourn_seconds(), 1.0);
  EXPECT_NEAR(cpu.utilization() * 2.0, cpu.busy_seconds(), 1e-12);
  EXPECT_NEAR(cpu.average_queue_length() * 2.0, cpu.sojourn_seconds(), 1e-12);
}

}  // namespace
}  // namespace hls
