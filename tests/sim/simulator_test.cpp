#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hls {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, StepAdvancesClockToEventTime) {
  Simulator sim;
  sim.schedule_at(2.5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, StepOnEmptyReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.step();
  double fired_at = -1;
  sim.schedule_after(0.5, [&] { fired_at = sim.now(); });
  sim.step();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Simulator, RunUntilExecutesDueEventsAndSetsClock) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilIncludesBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step_fn = [&] {
    if (++chain < 5) {
      sim.schedule_after(1.0, step_fn);
    }
  };
  sim.schedule_after(1.0, step_fn);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&] {
      if (++count == 3) {
        sim.request_stop();
      }
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, ExecutedEventsCounted) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) {
    sim.schedule_after(1.0, [] {});
  }
  sim.run();
  EXPECT_EQ(sim.executed_events(), 4u);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule_at(3.0, [] {});
  sim.step();
  double fired_at = -1.0;
  sim.schedule_after(0.0, [&] { fired_at = sim.now(); });
  sim.step();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

}  // namespace
}  // namespace hls
