// Injected-drift self-tests for the semantic-model rules, plus the JSON
// output round trip. Each drift test builds a scratch tree in a temp dir
// that lints clean, then re-injects the exact drift the rule exists to
// catch — deleting a config_io serialize line, deleting a check_invariants
// recount, duplicating a fork label — and asserts the lint produces exactly
// the expected finding, nothing more. The baseline test closes the loop for
// the new rule ids: model-rule findings must grandfather and resurface like
// any text-rule finding.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hlslint/lint.hpp"

namespace {

namespace fs = std::filesystem;

class HlslintModel : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each TEST_F as its own process, concurrently: the tree name
    // must be unique per test or parallel runs race on the shared TempDir.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("hlslint_model_") + info->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_file(const std::string& rel, const std::string& text) {
    fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << text;
    ASSERT_TRUE(out.good());
  }

  hlslint::Options options() const {
    hlslint::Options opts;
    opts.root = root_.string();
    opts.use_baseline = false;
    return opts;
  }

  fs::path root_;
};

// ---- scratch-tree sources -------------------------------------------------

const char kConfigHpp[] =
    "#pragma once\n"
    "// Scratch config: both scalar fields must round-trip.\n"
    "namespace fx {\n"
    "struct SystemConfig {\n"
    "  double alpha = 1.5;\n"
    "  double beta = 0.25;\n"
    "};\n"
    "}  // namespace fx\n";

const char kConfigIoClean[] =
    "// Scratch config io: parse and serialize both keys.\n"
    "#include \"hybrid/config.hpp\"\n"
    "namespace fx {\n"
    "bool apply_config_override(SystemConfig& c, const char* key, double v) {\n"
    "  if (key == \"alpha\") {\n"
    "    c.alpha = v;\n"
    "    return true;\n"
    "  }\n"
    "  if (key == \"beta\") {\n"  // line 9: the beta parse case
    "    c.beta = v;\n"
    "    return true;\n"
    "  }\n"
    "  return false;\n"
    "}\n"
    "void describe_config(const SystemConfig& c, Stream& out) {\n"
    "  out << \"alpha=\" << c.alpha;\n"
    "  out << \"beta=\" << c.beta;\n"
    "}\n"
    "}  // namespace fx\n";

// Same file with the `beta=` serialize line deleted: the described run
// would silently drop beta on replay.
const char kConfigIoDrift[] =
    "// Scratch config io: parse and serialize both keys.\n"
    "#include \"hybrid/config.hpp\"\n"
    "namespace fx {\n"
    "bool apply_config_override(SystemConfig& c, const char* key, double v) {\n"
    "  if (key == \"alpha\") {\n"
    "    c.alpha = v;\n"
    "    return true;\n"
    "  }\n"
    "  if (key == \"beta\") {\n"  // line 9: the beta parse case
    "    c.beta = v;\n"
    "    return true;\n"
    "  }\n"
    "  return false;\n"
    "}\n"
    "void describe_config(const SystemConfig& c, Stream& out) {\n"
    "  out << \"alpha=\" << c.alpha;\n"
    "}\n"
    "}  // namespace fx\n";

const char kMetricsClean[] =
    "#pragma once\n"
    "// Scratch metrics: both per-site counters recounted in\n"
    "// check_invariants.\n"
    "#include <cstdint>\n"
    "namespace fx {\n"
    "struct SiteMetrics {\n"
    "  std::uint64_t commits = 0;\n"
    "  std::uint64_t aborts = 0;\n"  // line 8: the aborts counter
    "};\n"
    "struct Metrics {\n"
    "  std::uint64_t commits = 0;\n"
    "  std::uint64_t aborts = 0;\n"
    "};\n"
    "inline void check_invariants(const Metrics& m, const SiteMetrics* sm,\n"
    "                             int n) {\n"
    "  std::uint64_t commit_sum = 0;\n"
    "  std::uint64_t abort_sum = 0;\n"
    "  for (int s = 0; s < n; ++s) {\n"
    "    commit_sum += sm[s].commits;\n"
    "    abort_sum += sm[s].aborts;\n"
    "  }\n"
    "  HLS_ASSERT(m.commits == commit_sum, \"commit double entry broke\");\n"
    "  HLS_ASSERT(m.aborts == abort_sum, \"abort double entry broke\");\n"
    "}\n"
    "}  // namespace fx\n";

// Same header with the aborts recount (and its assert) deleted.
const char kMetricsDrift[] =
    "#pragma once\n"
    "// Scratch metrics: both per-site counters recounted in\n"
    "// check_invariants.\n"
    "#include <cstdint>\n"
    "namespace fx {\n"
    "struct SiteMetrics {\n"
    "  std::uint64_t commits = 0;\n"
    "  std::uint64_t aborts = 0;\n"  // line 8: the aborts counter
    "};\n"
    "struct Metrics {\n"
    "  std::uint64_t commits = 0;\n"
    "  std::uint64_t aborts = 0;\n"
    "};\n"
    "inline void check_invariants(const Metrics& m, const SiteMetrics* sm,\n"
    "                             int n) {\n"
    "  std::uint64_t commit_sum = 0;\n"
    "  for (int s = 0; s < n; ++s) {\n"
    "    commit_sum += sm[s].commits;\n"
    "  }\n"
    "  HLS_ASSERT(m.commits == commit_sum, \"commit double entry broke\");\n"
    "}\n"
    "}  // namespace fx\n";

const char kForksClean[] =
    "// Scratch fork labels: two streams, two distinct labels.\n"
    "#include \"util/random.hpp\"\n"
    "namespace fx {\n"
    "struct Rng;\n"
    "void arm(Rng& rng) {\n"
    "  auto a = rng.fork(\"stream.alpha\");\n"
    "  auto b = rng.fork(\"stream.beta\");\n"
    "}\n"
    "}  // namespace fx\n";

// Same file with the second label edited to collide with the first.
const char kForksDrift[] =
    "// Scratch fork labels: two streams, two distinct labels.\n"
    "#include \"util/random.hpp\"\n"
    "namespace fx {\n"
    "struct Rng;\n"
    "void arm(Rng& rng) {\n"
    "  auto a = rng.fork(\"stream.alpha\");\n"
    "  auto b = rng.fork(\"stream.alpha\");\n"  // line 7: the duplicate
    "}\n"
    "}  // namespace fx\n";

// ---- injected-drift self-tests -------------------------------------------

TEST_F(HlslintModel, DeletingASerializeLineIsCaught) {
  write_file("src/hybrid/config.hpp", kConfigHpp);
  write_file("src/core/config_io.cpp", kConfigIoClean);
  hlslint::LintResult before = hlslint::lint_tree(options());
  ASSERT_TRUE(before.findings.empty())
      << before.findings[0].file << ":" << before.findings[0].line << ": "
      << before.findings[0].rule << ": " << before.findings[0].message;

  write_file("src/core/config_io.cpp", kConfigIoDrift);
  hlslint::LintResult after = hlslint::lint_tree(options());
  ASSERT_EQ(after.findings.size(), 1u);
  EXPECT_EQ(after.findings[0].rule, "config-roundtrip");
  EXPECT_EQ(after.findings[0].file, "src/core/config_io.cpp");
  EXPECT_EQ(after.findings[0].line, 9);  // the now-orphaned beta parse case
  EXPECT_NE(after.findings[0].message.find("never serialized"),
            std::string::npos)
      << after.findings[0].message;
}

TEST_F(HlslintModel, DeletingARecountIsCaught) {
  write_file("src/hybrid/metrics.hpp", kMetricsClean);
  hlslint::LintResult before = hlslint::lint_tree(options());
  ASSERT_TRUE(before.findings.empty())
      << before.findings[0].file << ":" << before.findings[0].line << ": "
      << before.findings[0].rule << ": " << before.findings[0].message;

  write_file("src/hybrid/metrics.hpp", kMetricsDrift);
  hlslint::LintResult after = hlslint::lint_tree(options());
  ASSERT_EQ(after.findings.size(), 1u);
  EXPECT_EQ(after.findings[0].rule, "counter-double-entry");
  EXPECT_EQ(after.findings[0].file, "src/hybrid/metrics.hpp");
  EXPECT_EQ(after.findings[0].line, 8);  // the per-site aborts declaration
  EXPECT_NE(after.findings[0].message.find("aborts"), std::string::npos);
}

TEST_F(HlslintModel, DuplicatingAForkLabelIsCaught) {
  write_file("src/sim/streams.cpp", kForksClean);
  hlslint::LintResult before = hlslint::lint_tree(options());
  ASSERT_TRUE(before.findings.empty())
      << before.findings[0].file << ":" << before.findings[0].line << ": "
      << before.findings[0].rule << ": " << before.findings[0].message;

  write_file("src/sim/streams.cpp", kForksDrift);
  hlslint::LintResult after = hlslint::lint_tree(options());
  ASSERT_EQ(after.findings.size(), 1u);
  EXPECT_EQ(after.findings[0].rule, "fork-label-unique");
  EXPECT_EQ(after.findings[0].file, "src/sim/streams.cpp");
  EXPECT_EQ(after.findings[0].line, 7);  // the second, colliding fork
  EXPECT_NE(after.findings[0].message.find("duplicate fork label"),
            std::string::npos);
}

// ---- baseline round trip for the model rules -----------------------------

TEST_F(HlslintModel, ModelRuleFindingsRoundTripThroughBaseline) {
  // All three drifts in one tree: three findings across three new rule ids.
  write_file("src/hybrid/config.hpp", kConfigHpp);
  write_file("src/core/config_io.cpp", kConfigIoDrift);
  write_file("src/hybrid/metrics.hpp", kMetricsDrift);
  write_file("src/sim/streams.cpp", kForksDrift);

  hlslint::Options opts = options();
  opts.use_baseline = true;
  hlslint::LintResult before = hlslint::lint_tree(opts);
  ASSERT_EQ(before.findings.size(), 3u);

  std::vector<std::string> keys = hlslint::compute_baseline_keys(opts);
  ASSERT_EQ(keys.size(), 3u);
  fs::create_directories(root_ / "tools" / "hlslint");
  ASSERT_TRUE(hlslint::write_baseline(
      (root_ / "tools" / "hlslint" / "baseline.txt").string(), keys));
  hlslint::LintResult suppressed = hlslint::lint_tree(opts);
  EXPECT_TRUE(suppressed.findings.empty());
  EXPECT_EQ(suppressed.suppressed_baseline, 3);
  EXPECT_EQ(suppressed.stale_baseline, 0);

  // Fixing one drift (restoring the fork label) makes exactly its entry
  // stale; the other two stay grandfathered.
  write_file("src/sim/streams.cpp", kForksClean);
  hlslint::LintResult fixed = hlslint::lint_tree(opts);
  EXPECT_TRUE(fixed.findings.empty());
  EXPECT_EQ(fixed.suppressed_baseline, 2);
  EXPECT_EQ(fixed.stale_baseline, 1);
}

// ---- JSON output ----------------------------------------------------------

TEST(HlslintJson, RoundTripIsIdentity) {
  std::vector<hlslint::Finding> in = {
      {"src/a.cpp", 3, "hls-assert", "plain message"},
      {"src/b.hpp", 41, "config-roundtrip",
       "config key 'x' has no `key == \"x\"` parse case"},
      {"bench/c.cpp", 7, "bench-csv-schema",
       "quotes \" backslash \\ newline \n tab \t return \r control \x01"},
  };
  std::string json = hlslint::findings_to_json(in);
  std::vector<hlslint::Finding> out;
  ASSERT_TRUE(hlslint::parse_findings_json(json, out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].file, in[i].file);
    EXPECT_EQ(out[i].line, in[i].line);
    EXPECT_EQ(out[i].rule, in[i].rule);
    EXPECT_EQ(out[i].message, in[i].message);
  }
}

TEST(HlslintJson, EmptyFindingsRoundTrip) {
  std::string json = hlslint::findings_to_json({});
  std::vector<hlslint::Finding> out = {{"x", 1, "y", "z"}};
  ASSERT_TRUE(hlslint::parse_findings_json(json, out));
  EXPECT_TRUE(out.empty());
}

TEST(HlslintJson, ParserRejectsOtherShapes) {
  std::vector<hlslint::Finding> out;
  EXPECT_FALSE(hlslint::parse_findings_json("{}", out));
  EXPECT_FALSE(hlslint::parse_findings_json("[]", out));
  EXPECT_FALSE(hlslint::parse_findings_json("{\"results\": []}", out));
  // Unknown member: not this schema.
  EXPECT_FALSE(hlslint::parse_findings_json(
      "{\"findings\": [{\"rule\": \"r\", \"file\": \"f\", \"line\": 1, "
      "\"message\": \"m\", \"extra\": 0}]}",
      out));
}

}  // namespace
