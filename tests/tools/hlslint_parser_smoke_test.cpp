// Whole-tree parser smoke test: the AST-lite layer must parse every source
// file in the live repo (balanced brackets in the blanked text — the one
// structural property every extraction routine leans on), and its include
// extraction must recover exactly the edges the v1 lexer path sees, so the
// include graph the layering rules run on cannot silently diverge between
// the two implementations. Fixture trees are included on purpose: the
// intentionally-bad snippets are still well-formed input for the parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "hlslint/ast.hpp"
#include "hlslint/lint.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

std::vector<std::string> repo_files() {
  const fs::path root(HLS_REPO_ROOT);
  const std::vector<std::string> tops = {"src", "tests", "bench", "examples",
                                         "tools"};
  std::vector<std::string> rel;
  for (const std::string& top : tops) {
    fs::path dir = root / top;
    if (!fs::is_directory(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        rel.push_back(
            fs::path(entry.path()).lexically_relative(root).generic_string());
      }
    }
  }
  return rel;
}

TEST(HlslintParserSmoke, EveryRepoFileParses) {
  const fs::path root(HLS_REPO_ROOT);
  std::vector<std::string> files = repo_files();
  // The tree is large; a tiny count means the walk silently missed it.
  ASSERT_GT(files.size(), 100u);

  std::size_t ast_edges = 0;
  std::size_t lexer_edges = 0;
  for (const std::string& rel : files) {
    std::optional<hlslint::SourceFile> f =
        hlslint::load_source((root / rel).string(), rel);
    ASSERT_TRUE(f.has_value()) << "unreadable: " << rel;

    std::string error;
    EXPECT_TRUE(hlslint::ast::parse_check(*f, &error))
        << rel << ": " << error;

    // Edge-for-edge agreement, not just totals: same (line, path) pairs.
    auto ast_inc = hlslint::ast::includes(*f);
    auto lex_inc = hlslint::lexer_quoted_includes(*f);
    EXPECT_EQ(ast_inc, lex_inc) << "include extraction diverged in " << rel;
    ast_edges += ast_inc.size();
    lexer_edges += lex_inc.size();
  }
  EXPECT_EQ(ast_edges, lexer_edges);
  // The repo's include graph is far from empty; a zero here means the
  // extraction is broken even though both sides agree.
  EXPECT_GT(ast_edges, 200u);
}

}  // namespace
