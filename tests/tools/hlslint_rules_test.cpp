// Fixture-based self-test for the hlslint rule engine: every rule has at
// least one known-bad snippet (exact file:line:rule pinned here) and a
// known-clean twin. The fixture trees under tests/tools/fixtures/ are data,
// not compiled code — the lint engine's own tree walk skips any `fixtures`
// directory so the intentionally-bad files never fail the repo gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hlslint/lint.hpp"

namespace {

hlslint::LintResult lint_fixture(const std::string& tree) {
  hlslint::Options opts;
  opts.root = std::string(HLS_FIXTURE_DIR) + "/" + tree;
  opts.use_baseline = false;
  return hlslint::lint_tree(opts);
}

bool has_finding(const hlslint::LintResult& r, const std::string& file,
                 int line, const std::string& rule) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const hlslint::Finding& f) {
                       return f.file == file && f.line == line &&
                              f.rule == rule;
                     });
}

TEST(HlslintRules, BadTreeFindsEveryRule) {
  hlslint::LintResult r = lint_fixture("bad");

  struct Expected {
    const char* file;
    int line;
    const char* rule;
  };
  const std::vector<Expected> expected = {
      {"src/util/missing_pragma.hpp", 1, "pragma-once"},
      {"src/util/bare_assert.cpp", 4, "hls-assert"},
      {"src/util/bare_assert.cpp", 7, "hls-assert"},
      {"src/sim/wall_clock.cpp", 5, "wall-clock"},
      {"src/sim/wall_clock.cpp", 6, "wall-clock"},
      {"src/workload/global_rng.cpp", 2, "global-rng"},
      {"src/workload/global_rng.cpp", 5, "global-rng"},
      {"src/workload/global_rng.cpp", 6, "global-rng"},
      {"src/core/local_include.cpp", 2, "include-style"},
      {"src/core/local_include.cpp", 3, "include-style"},
      {"src/model/float_eq.cpp", 4, "float-eq"},
      {"src/model/float_eq.cpp", 7, "float-eq"},
      {"src/obs/unordered_emit.cpp", 9, "unordered-iter"},
      {"src/hybrid/unsorted_collect.cpp", 10, "unordered-iter"},
      {"src/hybrid/raw_capture.cpp", 13, "callback-epoch"},
      {"src/hybrid/no_epoch.cpp", 14, "callback-epoch"},
      {"src/util/uses_core.hpp", 3, "layer-order"},
      {"src/net/uses_db.hpp", 3, "layer-order"},
      {"src/sim/cycle_a.hpp", 1, "layer-cycle"},
      {"src/hybrid/composed_metric_name.cpp", 9, "registry-name"},
      {"src/hybrid/composed_metric_name.cpp", 10, "registry-name"},
      // v2 semantic-model rules and the dataflow-backed rule upgrades.
      {"src/hybrid/drift_config.hpp", 6, "config-roundtrip"},
      {"src/core/drift_config_io.cpp", 10, "config-roundtrip"},
      {"src/core/drift_config_io.cpp", 12, "config-roundtrip"},
      {"src/core/drift_config_io.cpp", 21, "config-roundtrip"},
      {"src/hybrid/drift_metrics.hpp", 8, "counter-double-entry"},
      {"src/sim/dup_fork.cpp", 8, "fork-label-unique"},
      {"src/sim/dup_fork.cpp", 9, "fork-label-unique"},
      {"src/obs/unit_drift.cpp", 7, "registry-unit"},
      {"bench/csv_drift.cpp", 9, "bench-csv-schema"},
      {"bench/csv_drift.cpp", 10, "bench-csv-schema"},
      {"bench/csv_drift.cpp", 12, "bench-csv-schema"},
      {"bench/no_scale.cpp", 5, "bench-time-scale"},
      {"src/hybrid/named_lambda.cpp", 14, "callback-epoch"},
      {"src/hybrid/wrong_sort.cpp", 13, "unordered-iter"},
  };
  for (const Expected& e : expected) {
    EXPECT_TRUE(has_finding(r, e.file, e.line, e.rule))
        << "missing " << e.file << ":" << e.line << ": " << e.rule;
  }
  EXPECT_EQ(r.findings.size(), expected.size())
      << "unexpected extra findings in the bad fixture tree";
}

TEST(HlslintRules, GoodTreeIsClean) {
  hlslint::LintResult r = lint_fixture("good");
  for (const hlslint::Finding& f : r.findings) {
    ADD_FAILURE() << "unexpected finding: " << f.file << ":" << f.line << ": "
                  << f.rule << ": " << f.message;
  }
  EXPECT_GT(r.files_scanned, 0);
}

TEST(HlslintRules, EveryRuleIsExercisedByTheBadTree) {
  // Guards the fixture suite itself: adding a rule without a bad fixture
  // should fail here, not silently ship unexercised.
  hlslint::LintResult r = lint_fixture("bad");
  for (const auto& [id, desc] : hlslint::rule_catalog()) {
    (void)desc;
    EXPECT_TRUE(std::any_of(
        r.findings.begin(), r.findings.end(),
        [&](const hlslint::Finding& f) { return f.rule == id; }))
        << "rule '" << id << "' has no bad fixture";
  }
}

TEST(HlslintRules, OnlyAndDisableFilterRules) {
  hlslint::Options opts;
  opts.root = std::string(HLS_FIXTURE_DIR) + "/bad";
  opts.use_baseline = false;
  opts.only = {"pragma-once"};
  hlslint::LintResult only = hlslint::lint_tree(opts);
  ASSERT_EQ(only.findings.size(), 1u);
  EXPECT_EQ(only.findings[0].rule, "pragma-once");

  opts.only.clear();
  opts.disabled = {"pragma-once"};
  hlslint::LintResult disabled = hlslint::lint_tree(opts);
  EXPECT_TRUE(std::none_of(
      disabled.findings.begin(), disabled.findings.end(),
      [](const hlslint::Finding& f) { return f.rule == "pragma-once"; }));
}

TEST(HlslintRules, LexerBlanksCommentsAndStrings) {
  hlslint::SourceFile f;
  f.path = "src/util/x.cpp";
  hlslint::lex_source(
      "int a = 1; // srand(7)\n"
      "const char* s = \"rand()\";\n"
      "/* time(nullptr) */ int b = 2;\n",
      f);
  std::vector<hlslint::Finding> findings;
  hlslint::check_text_rules(f, findings);
  for (const hlslint::Finding& fi : findings) {
    ADD_FAILURE() << fi.rule << " fired on comment/string content at line "
                  << fi.line;
  }
}

TEST(HlslintRules, RuleCatalogMatchesKnownRules) {
  EXPECT_TRUE(hlslint::known_rule("callback-epoch"));
  EXPECT_FALSE(hlslint::known_rule("no-such-rule"));
  EXPECT_TRUE(hlslint::known_rule("config-roundtrip"));
  EXPECT_TRUE(hlslint::known_rule("bench-csv-schema"));
  EXPECT_EQ(hlslint::rule_catalog().size(), 17u);
}

}  // namespace
