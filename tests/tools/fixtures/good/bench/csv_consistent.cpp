// Good twin: csv rows match their header's arity, the Table row chain fills
// every column, and main() honors HLS_TIME_SCALE through scaled_options
// (bench-csv-schema, bench-time-scale).
#include <cstdio>
#include "util/table.hpp"

namespace bench {
struct Options;
Options scaled_options();
}  // namespace bench

int main() {
  std::printf("\ncsv,steady,rate,value\n");
  std::printf("csv,steady,%.2f,%.3f\n", 1.25, 2.5);
  hls::Table t({"rate", "value"});
  t.begin_row().add_num(1.25).add_num(2.5);
  t.print();
  return 0;
}
