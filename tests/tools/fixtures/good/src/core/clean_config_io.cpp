// Good twin: the parse case, the serialize line and the docs mention all
// exist for the one scalar key (config-roundtrip).
#include "hybrid/clean_config.hpp"

namespace fx {

bool apply_config_override(SystemConfig& c, const char* key, double v) {
  if (key == "tuned_key") {
    c.tuned_key = v;
    return true;
  }
  return false;
}

void describe_config(const SystemConfig& c, Stream& out) {
  out << "tuned_key=" << c.tuned_key;
}

}  // namespace fx
