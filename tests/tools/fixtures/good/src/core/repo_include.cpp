// Good twin: repo-relative includes from src/.
#include "core/driver.hpp"
#include "util/stats.hpp"
namespace fx {
int use() { return 1; }
}  // namespace fx
