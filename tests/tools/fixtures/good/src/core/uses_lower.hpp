// Good twin: core may include anything below it; acyclic chain.
#pragma once
#include "hybrid/chain_top.hpp"
#include "util/chain_bottom.hpp"
namespace fx {
struct UsesLower {};
}  // namespace fx
