// Good twin: tolerance comparison instead of floating-point equality.
#include <cmath>
namespace fx {
bool converged(double residual, double tol) {
  return std::abs(residual) < tol;
}
bool exact_ints(int a, int b) { return a == b; }
}  // namespace fx
