// Good twin: invariants via HLS_ASSERT; banned tokens only in comments and
// strings, where the lexer must not fire: assert(x), rand(), time(NULL).
#include "util/assert.hpp"
namespace fx {
void check(int x) {
  HLS_ASSERT(x > 0, "x must be positive");
  const char* doc = "call assert(x) or srand() here";
  (void)doc;
}
}  // namespace fx
