// Good twin: header with #pragma once.
#pragma once
namespace fx {
struct HasPragma {
  int value = 0;
};
}  // namespace fx
