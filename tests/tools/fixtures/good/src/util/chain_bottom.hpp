// Good twin: leaf of the include chain.
#pragma once
namespace fx {
struct ChainBottom {};
}  // namespace fx
