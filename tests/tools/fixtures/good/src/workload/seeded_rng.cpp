// Good twin: RNG streams forked from the config seed.
#include "util/random.hpp"
namespace fx {
double draw(hls::Rng& parent) {
  hls::Rng stream = parent.fork("workload.draw");
  return stream.next_double();
}
}  // namespace fx
