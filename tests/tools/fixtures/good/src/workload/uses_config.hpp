// Good twin: a lower layer may include a whitelisted header-only leaf type.
#pragma once
#include "hybrid/config.hpp"
namespace fx {
struct UsesConfig {};
}  // namespace fx
