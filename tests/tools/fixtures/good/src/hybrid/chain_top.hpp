// Good twin: downward include edge, no cycle.
#pragma once
#include "util/chain_bottom.hpp"
namespace fx {
struct ChainTop {};
}  // namespace fx
