// Good twin: a named callback carries (id, epoch) and revalidates via
// find() before touching transaction state (callback-epoch).
namespace fx {
struct Txn {
  int id = 0;
  unsigned epoch = 0;
  void step();
};
struct Sim {
  template <typename F>
  void schedule_after(double delay, F f);
};
Txn* find(int id, unsigned epoch);
void arm(Sim& sim, Txn* txn) {
  auto cb = [id = txn->id, epoch = txn->epoch] {
    if (Txn* t = find(id, epoch)) {
      t->step();
    }
  };
  sim.schedule_after(1.0, cb);
}
}  // namespace fx
