// Clean twin of composed_metric_name.cpp: every registration passes a
// string-literal stable name; per-site prefixes and bucket suffixes come
// from the sanctioned Scope helpers inside the registry.
#include "obs/registry.hpp"

void export_site(hls::obs::Registry& reg, int site) {
  const hls::obs::Registry::Scope sc = reg.site(site);
  sc.counter("txn.arrivals", 1);
  sc.bucket_counter("locks.heat", 3, 7);
  reg.gauge("window.seconds", 2.0, "s");
}
