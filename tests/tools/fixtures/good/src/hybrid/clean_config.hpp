#pragma once
// Good twin: every scalar SystemConfig field round-trips (config-roundtrip).
// Vector and nested *Config members are exempt — they are configured through
// their own scalar keys.
#include <vector>
namespace fx {
struct FaultScheduleConfig {};
struct SystemConfig {
  double tuned_key = 1.5;
  std::vector<double> per_site_override;
  FaultScheduleConfig faults;
};
}  // namespace fx
