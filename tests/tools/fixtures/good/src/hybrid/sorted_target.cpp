// Good twin: the sort names the vector the unordered loop filled
// (unordered-iter).
#include <algorithm>
#include <unordered_map>
#include <vector>
namespace fx {
struct Ledger {
  std::unordered_map<int, int> entries;
  std::vector<int> keys() {
    std::vector<int> out;
    for (const auto& entry : entries) {
      out.push_back(entry.first);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};
}  // namespace fx
