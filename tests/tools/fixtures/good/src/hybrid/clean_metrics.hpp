#pragma once
// Good twin: the per-site counter's global twin is recounted in
// check_invariants (counter-double-entry).
#include <cstdint>
namespace fx {
struct SiteMetrics {
  std::uint64_t recounted = 0;
};
struct Metrics {
  std::uint64_t recounted = 0;
};
inline void check_invariants(const Metrics& m, const SiteMetrics* sm, int n) {
  std::uint64_t sum = 0;
  for (int s = 0; s < n; ++s) {
    sum += sm[s].recounted;
  }
  HLS_ASSERT(m.recounted == sum, "recounted double entry broke");
}
}  // namespace fx
