// Good twin: scheduled lambda carries (id, epoch) and revalidates via find().
namespace fx {
struct Txn {
  int id = 0;
  unsigned epoch = 0;
  void step();
};
struct Sim {
  template <typename F>
  void schedule_after(double delay, F f);
};
Txn* find(int id, unsigned epoch);
void arm(Sim& sim, Txn* txn) {
  sim.schedule_after(1.0, [id = txn->id, epoch = txn->epoch] {
    if (Txn* t = find(id, epoch)) {
      t->step();
    }
  });
}
}  // namespace fx
