// Good twin: collect keys from the unordered container, sort, then emit.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>
namespace fx {
struct Sink {
  std::unordered_map<int, double> cells;
  void dump() {
    std::vector<int> keys;
    for (const auto& entry : cells) {
      keys.push_back(entry.first);
    }
    std::sort(keys.begin(), keys.end());
    for (int k : keys) {
      std::printf("%d,%f\n", k, cells.at(k));
    }
  }
};
}  // namespace fx
