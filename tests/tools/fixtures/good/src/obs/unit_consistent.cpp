// Good twin: repeated registrations of a name agree on the unit
// (registry-unit).
#include "obs/registry.hpp"
namespace fx {
void export_metrics(Registry& reg, unsigned long v) {
  reg.counter("demo.widgets", v, "txns");
  reg.counter("demo.widgets", v, "txns");
  reg.counter("demo.events", v);
}
}  // namespace fx
