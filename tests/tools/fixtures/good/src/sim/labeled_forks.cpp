// Good twin: every fork carries a label and the labels are distinct
// (fork-label-unique).
#include "util/random.hpp"
namespace fx {
struct Rng;
void arm(Rng& rng) {
  auto a = rng.fork("stream.alpha");
  auto b = rng.fork("stream.beta");
}
}  // namespace fx
