// Good twin: simulation code reads the virtual clock, never the host's.
namespace fx {
struct Sim {
  double now() const { return now_; }
  double now_ = 0.0;
};
double runtime(const Sim& sim, double start) { return sim.now() - start; }
}  // namespace fx
