// Bad fixture: ambient RNG (rule: global-rng, lines 2, 5, 6).
#include <random>
namespace fx {
int roll() {
  std::mt19937 gen(std::random_device{}());
  return rand() + static_cast<int>(gen());
}
}  // namespace fx
