// Bad fixture: unordered iteration feeding output (rule: unordered-iter, line 9).
#include <cstdio>
#include <string>
#include <unordered_map>
namespace fx {
struct Sink {
  std::unordered_map<int, double> cells;
  void dump() {
    for (const auto& [k, v] : cells) {
      std::printf("%d,%f\n", k, v);
    }
  }
};
}  // namespace fx
