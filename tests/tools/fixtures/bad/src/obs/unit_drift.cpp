// Bad fixture: one instrument name registered under two unit tags
// (rule: registry-unit, line 7).
#include "obs/registry.hpp"
namespace fx {
void export_metrics(Registry& reg, unsigned long v) {
  reg.counter("demo.widgets", v, "txns");
  reg.counter("demo.widgets", v, "count");
}
}  // namespace fx
