// Composes registry metric names at runtime: the artifact keys stop being
// greppable and can drift between runs, which breaks hlsreport diffs.
#include <string>

#include "obs/registry.hpp"

void export_site(hls::obs::Registry& reg, int site) {
  const std::string name = "site" + std::to_string(site) + ".cpu.util";
  reg.counter(name.c_str(), 1);
  reg.root().gauge(("x." + name).c_str(), 2.0, "s");
}
