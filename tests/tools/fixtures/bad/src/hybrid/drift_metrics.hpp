#pragma once
// Bad fixture: per-site counter with a global twin but no check_invariants
// recount (rule: counter-double-entry, line 8).
#include <cstdint>
namespace fx {
struct SiteMetrics {
  std::uint64_t recounted = 0;
  std::uint64_t missing_recount = 0;
};
struct Metrics {
  std::uint64_t recounted = 0;
  std::uint64_t missing_recount = 0;
};
inline void check_invariants(const Metrics& m, const SiteMetrics* sm, int n) {
  std::uint64_t sum = 0;
  for (int s = 0; s < n; ++s) {
    sum += sm[s].recounted;
  }
  HLS_ASSERT(m.recounted == sum, "recounted double entry broke");
}
}  // namespace fx
