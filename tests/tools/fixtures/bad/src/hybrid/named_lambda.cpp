// Bad fixture: raw Transaction* captured by a lambda bound to a name before
// being scheduled — v1 only saw inline lambdas (rule: callback-epoch,
// line 14, anchored on the schedule call).
namespace fx {
struct Txn {
  void step();
};
struct Sim {
  template <typename F>
  void schedule_after(double delay, F f);
};
void arm(Sim& sim, Txn* txn) {
  auto cb = [txn] { txn->step(); };
  sim.schedule_after(1.0, cb);
}
}  // namespace fx
