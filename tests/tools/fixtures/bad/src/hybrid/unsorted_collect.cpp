// Bad fixture: collecting from unordered iteration without sorting
// (rule: unordered-iter, line 10).
#include <unordered_map>
#include <vector>
namespace fx {
struct Registry {
  std::unordered_map<int, int> members;
  std::vector<int> victims() {
    std::vector<int> out;
    for (const auto& entry : members) {
      out.push_back(entry.first);
    }
    return out;
  }
};
}  // namespace fx
