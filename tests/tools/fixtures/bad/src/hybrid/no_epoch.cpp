// Bad fixture: scheduled lambda capturing txn state with no epoch guard
// (rule: callback-epoch, line 14).
namespace fx {
struct Txn {
  int id = 0;
  unsigned epoch = 0;
};
struct Sim {
  template <typename F>
  void schedule_after(double delay, F f);
};
void on_timeout(int id);
void arm(Sim& sim, Txn* txn) {
  sim.schedule_after(2.5, [id = txn->id] { on_timeout(id); });
}
}  // namespace fx
