// Bad fixture: the vector collected from unordered iteration is never the
// one sorted — v1 accepted any later sort( in the function (rule:
// unordered-iter, line 13).
#include <algorithm>
#include <unordered_map>
#include <vector>
namespace fx {
struct Ledger {
  std::unordered_map<int, int> entries;
  std::vector<int> decoys;
  std::vector<int> keys() {
    std::vector<int> out;
    for (const auto& entry : entries) {
      out.push_back(entry.first);
    }
    std::sort(decoys.begin(), decoys.end());
    return out;
  }
};
}  // namespace fx
