// Bad fixture: scheduled lambda capturing a raw Transaction*
// (rule: callback-epoch, line 13).
namespace fx {
struct Txn {
  int id = 0;
  void step();
};
struct Sim {
  template <typename F>
  void schedule_after(double delay, F f);
};
void arm(Sim& sim, Txn* txn) {
  sim.schedule_after(1.0, [txn] { txn->step(); });
}
}  // namespace fx
