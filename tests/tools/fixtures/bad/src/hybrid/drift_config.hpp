#pragma once
// Bad fixture: SystemConfig field with no apply_config_override parse case
// (rule: config-roundtrip, line 6).
namespace fx {
struct SystemConfig {
  double unparsed_key = 2.5;
  double documented_key = 1.5;
  double unserialized_key = 3.5;
  double undocumented_key = 4.5;
};
}  // namespace fx
