// Bad fixture: floating-point equality (rule: float-eq, lines 4, 7).
namespace fx {
bool converged(double residual, double target) {
  if (residual == 0.0) {
    return true;
  }
  return target != 1.5;
}
}  // namespace fx
