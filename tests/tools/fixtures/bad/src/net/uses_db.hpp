// Bad fixture: sibling tiers including each other (rule: layer-order, line 3).
#pragma once
#include "db/lock_types.hpp"
namespace fx {
struct UsesDb {};
}  // namespace fx
