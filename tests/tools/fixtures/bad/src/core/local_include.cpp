// Bad fixture: non-repo-relative includes (rule: include-style, lines 2, 3).
#include "helper.hpp"
#include "../core/driver.hpp"
namespace fx {
int use() { return 1; }
}  // namespace fx
