// Bad fixture: config_io drift against drift_config.hpp (rule:
// config-roundtrip) — a parsed key that is never serialized (line 10), a
// parsed+serialized key missing from the docs (line 12), and a serialized
// key with no parse case (line 21).
#include "hybrid/drift_config.hpp"

namespace fx {

bool apply_config_override(SystemConfig& c, const char* key, double v) {
  if (key == "unserialized_key") {
    c.unserialized_key = v;
  } else if (key == "undocumented_key") {
    c.undocumented_key = v;
  } else if (key == "documented_key") {
    c.documented_key = v;
  }
  return true;
}

void describe_config(const SystemConfig& c, Stream& out) {
  out << "orphan_key=" << 0;
  out << "documented_key=" << c.documented_key;
  out << "undocumented_key=" << c.undocumented_key;
}

}  // namespace fx
