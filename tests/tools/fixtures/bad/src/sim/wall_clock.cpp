// Bad fixture: host clock in simulation code (rule: wall-clock, lines 5, 6).
#include <chrono>
namespace fx {
double host_now() {
  auto t = std::chrono::steady_clock::now();
  long s = time(nullptr);
  return static_cast<double>(t.time_since_epoch().count()) + s;
}
}  // namespace fx
