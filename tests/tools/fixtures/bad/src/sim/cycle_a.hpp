// Bad fixture: include cycle with cycle_b.hpp (rule: layer-cycle).
#pragma once
#include "sim/cycle_b.hpp"
namespace fx {
struct CycleA {};
}  // namespace fx
