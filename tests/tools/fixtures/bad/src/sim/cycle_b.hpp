// Bad fixture: include cycle with cycle_a.hpp (rule: layer-cycle).
#pragma once
#include "sim/cycle_a.hpp"
namespace fx {
struct CycleB {};
}  // namespace fx
