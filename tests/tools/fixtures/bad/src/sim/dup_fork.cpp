// Bad fixture: duplicate fork label (line 8) and an unlabeled fork in src/
// (line 9) — rule: fork-label-unique.
#include "util/random.hpp"
namespace fx {
struct Rng;
void arm(Rng& rng) {
  auto a = rng.fork("stream.alpha");
  auto b = rng.fork("stream.alpha");
  auto c = rng.fork();
}
}  // namespace fx
