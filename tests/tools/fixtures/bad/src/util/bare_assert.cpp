// Bad fixture: bare assert() and <cassert> (rule: hls-assert, lines 4 and 7).
namespace fx {
void check(int x) {
  assert(x > 0);
}
}  // namespace fx
#include <cassert>
