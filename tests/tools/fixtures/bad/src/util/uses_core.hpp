// Bad fixture: util reaching up into core (rule: layer-order, line 3).
#pragma once
#include "core/api.hpp"
namespace fx {
struct UsesCore {};
}  // namespace fx
