// Bad fixture: header without #pragma once (rule: pragma-once, line 1).
namespace fx {
struct MissingPragma {
  int value = 0;
};
}  // namespace fx
