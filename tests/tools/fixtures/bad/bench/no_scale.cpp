// Bad fixture: a bench main() that never consults HLS_TIME_SCALE
// (rule: bench-time-scale, line 5).
int run_everything();

int main() {
  return run_everything();
}
