// Bad fixture: csv schema drift (rule: bench-csv-schema) — a row narrower
// than its header (line 9), a row with no header at all (line 10), and a
// Table row chain missing a column (line 12).
#include <cstdio>
#include "util/table.hpp"
namespace {
void emit(double x) {
  std::printf("\ncsv,drift,rate,value\n");
  std::printf("csv,drift,%.2f\n", x);
  std::printf("csv,orphan,%d\n", 7);
  hls::Table t({"rate", "value"});
  t.begin_row().add_num(x);
  t.print();
}
}  // namespace
