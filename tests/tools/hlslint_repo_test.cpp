// Repo-is-clean integration test: runs the lint engine over the live tree.
// This is the same gate scripts/check.sh enforces, kept in ctest so a
// violation fails the ordinary test run too, with the diagnostics inline.
#include <gtest/gtest.h>

#include "hlslint/lint.hpp"

namespace {

TEST(HlslintRepo, LiveTreeIsLintClean) {
  hlslint::Options opts;
  opts.root = HLS_REPO_ROOT;
  hlslint::LintResult r = hlslint::lint_tree(opts);
  for (const hlslint::Finding& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
  // The tree is large; a tiny count means the walk silently missed it.
  EXPECT_GT(r.files_scanned, 100);
  EXPECT_EQ(r.stale_baseline, 0)
      << "baseline entries no longer match any finding; shrink "
      << opts.baseline_path;
}

}  // namespace
