// Baseline and suppression round-trip tests against a synthetic tree in a
// temp directory: a grandfathered finding is silenced by its baseline entry,
// resurfaces when the entry is removed, and goes stale when the code is
// fixed. Allow-comments are exercised the same way.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "hlslint/lint.hpp"

namespace {

namespace fs = std::filesystem;

class HlslintBaseline : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each TEST_F as its own process, concurrently: the tree name
    // must be unique per test or parallel runs race on the shared TempDir.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("hlslint_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "util");
    fs::create_directories(root_ / "tools" / "hlslint");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_file(const std::string& rel, const std::string& text) {
    std::ofstream out(root_ / rel);
    out << text;
    ASSERT_TRUE(out.good());
  }

  hlslint::Options options() const {
    hlslint::Options opts;
    opts.root = root_.string();
    return opts;
  }

  fs::path root_;
};

const char kBadSource[] =
    "namespace fx {\n"
    "void check(int x) {\n"
    "  assert(x > 0);\n"
    "}\n"
    "}  // namespace fx\n";

TEST_F(HlslintBaseline, RoundTrip) {
  write_file("src/util/bad.cpp", kBadSource);

  // Dirty tree, no baseline: the finding fires.
  hlslint::LintResult before = hlslint::lint_tree(options());
  ASSERT_EQ(before.findings.size(), 1u);
  EXPECT_EQ(before.findings[0].rule, "hls-assert");
  EXPECT_EQ(before.findings[0].line, 3);

  // Write the baseline: the same tree is now clean, finding accounted as
  // baselined, no stale entries.
  std::vector<std::string> keys = hlslint::compute_baseline_keys(options());
  ASSERT_EQ(keys.size(), 1u);
  ASSERT_TRUE(hlslint::write_baseline(
      (root_ / "tools" / "hlslint" / "baseline.txt").string(), keys));
  hlslint::LintResult suppressed = hlslint::lint_tree(options());
  EXPECT_TRUE(suppressed.findings.empty());
  EXPECT_EQ(suppressed.suppressed_baseline, 1);
  EXPECT_EQ(suppressed.stale_baseline, 0);

  // Remove the entry: the finding fails the gate again.
  ASSERT_TRUE(hlslint::write_baseline(
      (root_ / "tools" / "hlslint" / "baseline.txt").string(), {}));
  hlslint::LintResult after = hlslint::lint_tree(options());
  ASSERT_EQ(after.findings.size(), 1u);
  EXPECT_EQ(after.findings[0].rule, "hls-assert");
}

TEST_F(HlslintBaseline, FixingTheLineMakesTheEntryStale) {
  write_file("src/util/bad.cpp", kBadSource);
  std::vector<std::string> keys = hlslint::compute_baseline_keys(options());
  ASSERT_TRUE(hlslint::write_baseline(
      (root_ / "tools" / "hlslint" / "baseline.txt").string(), keys));

  write_file("src/util/bad.cpp",
             "namespace fx {\n"
             "void check(int) {}\n"
             "}  // namespace fx\n");
  hlslint::LintResult r = hlslint::lint_tree(options());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_baseline, 0);
  EXPECT_EQ(r.stale_baseline, 1);  // the entry must now be deleted
}

TEST_F(HlslintBaseline, BaselineKeySurvivesLineDrift) {
  // Content-based keys: inserting code above the grandfathered line must not
  // invalidate the entry.
  write_file("src/util/bad.cpp", kBadSource);
  std::vector<std::string> keys = hlslint::compute_baseline_keys(options());
  ASSERT_TRUE(hlslint::write_baseline(
      (root_ / "tools" / "hlslint" / "baseline.txt").string(), keys));

  write_file("src/util/bad.cpp",
             "namespace fx {\n"
             "int unrelated() { return 7; }\n"
             "void check(int x) {\n"
             "  assert(x > 0);\n"
             "}\n"
             "}  // namespace fx\n");
  hlslint::LintResult r = hlslint::lint_tree(options());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_baseline, 1);
  EXPECT_EQ(r.stale_baseline, 0);
}

TEST_F(HlslintBaseline, AllowCommentSuppressesSameAndNextLine) {
  write_file("src/util/same_line.cpp",
             "namespace fx {\n"
             "void check(int x) {\n"
             "  assert(x > 0);  // hlslint:allow(hls-assert)\n"
             "}\n"
             "}  // namespace fx\n");
  write_file("src/util/next_line.cpp",
             "namespace fx {\n"
             "void check(int x) {\n"
             "  // hlslint:allow(hls-assert) — documented exception\n"
             "  assert(x > 0);\n"
             "}\n"
             "}  // namespace fx\n");
  hlslint::LintResult r = hlslint::lint_tree(options());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed_allow, 2);
}

TEST_F(HlslintBaseline, AllowCommentForOtherRuleDoesNotSuppress) {
  write_file("src/util/wrong_rule.cpp",
             "namespace fx {\n"
             "void check(int x) {\n"
             "  assert(x > 0);  // hlslint:allow(float-eq)\n"
             "}\n"
             "}  // namespace fx\n");
  hlslint::LintResult r = hlslint::lint_tree(options());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "hls-assert");
}

}  // namespace
