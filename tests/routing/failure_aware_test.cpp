// FailureAwareStrategy unit tests: reachability override, staleness
// override, deference to the wrapped strategy, and spec parsing.
#include <gtest/gtest.h>

#include "routing/basic_strategies.hpp"
#include "routing/factory.hpp"
#include "routing/failure_aware.hpp"

namespace hls {
namespace {

SystemStateView view_with(const SystemConfig& cfg) {
  SystemStateView v;
  v.config = &cfg;
  return v;
}

Transaction class_a_txn() {
  Transaction t;
  t.id = 1;
  t.cls = TxnClass::A;
  return t;
}

TEST(FailureAware, DegradesToLocalWhenCentralUnreachable) {
  FailureAwareStrategy s(std::make_unique<AlwaysCentralStrategy>());
  const SystemConfig cfg;
  auto v = view_with(cfg);
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
  v.central_reachable = false;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
  v.central_reachable = true;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);  // auto-recovers
}

TEST(FailureAware, StaleInformationForcesLocal) {
  FailureAwareStrategy s(std::make_unique<AlwaysCentralStrategy>(),
                         /*max_info_age=*/2.0);
  const SystemConfig cfg;
  auto v = view_with(cfg);
  v.central_info_age = 1.5;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);  // fresh enough
  v.central_info_age = 3.0;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);  // stale
}

TEST(FailureAware, IdealStateInfoBypassesStalenessCheck) {
  FailureAwareStrategy s(std::make_unique<AlwaysCentralStrategy>(),
                         /*max_info_age=*/2.0);
  SystemConfig cfg;
  cfg.ideal_state_info = true;  // the age field is meaningless here
  auto v = view_with(cfg);
  v.central_info_age = 100.0;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
  v.central_reachable = false;  // reachability still applies
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
}

TEST(FailureAware, ZeroMaxAgeDisablesStalenessCheck) {
  FailureAwareStrategy s(std::make_unique<AlwaysCentralStrategy>());
  const SystemConfig cfg;
  auto v = view_with(cfg);
  v.central_info_age = 1e6;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
}

TEST(FailureAware, NameWrapsInnerName) {
  FailureAwareStrategy s(std::make_unique<AlwaysCentralStrategy>());
  EXPECT_EQ(s.name(), "failsafe(always-central)");
  EXPECT_EQ(s.inner().name(), "always-central");
}

TEST(FailureAware, SpecParsingAndFactoryWrap) {
  const StrategySpec plain = parse_strategy_spec("min-average-nsys");
  EXPECT_FALSE(plain.failure_aware);

  const StrategySpec wrapped = parse_strategy_spec("failsafe:min-average-nsys");
  EXPECT_TRUE(wrapped.failure_aware);
  EXPECT_EQ(wrapped.kind, StrategyKind::MinAverageNsys);
  EXPECT_DOUBLE_EQ(wrapped.failsafe_max_info_age, 0.0);

  const StrategySpec aged = parse_strategy_spec("failsafe@2.5:queue-length");
  EXPECT_TRUE(aged.failure_aware);
  EXPECT_EQ(aged.kind, StrategyKind::QueueLength);
  EXPECT_DOUBLE_EQ(aged.failsafe_max_info_age, 2.5);

  const ModelParams p = ModelParams::from_config(SystemConfig{});
  const auto s = make_strategy(aged, p, 1);
  EXPECT_EQ(s->name(), "failsafe(queue-length)");
}

}  // namespace
}  // namespace hls
