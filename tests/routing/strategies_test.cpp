#include <gtest/gtest.h>

#include "routing/analytic_strategies.hpp"
#include "routing/basic_strategies.hpp"
#include "routing/factory.hpp"
#include "routing/heuristics.hpp"

namespace hls {
namespace {

SystemConfig cfg_default() { return SystemConfig{}; }

SystemStateView view_with(const SystemConfig& cfg) {
  SystemStateView v;
  v.config = &cfg;
  return v;
}

Transaction class_a_txn() {
  Transaction t;
  t.id = 1;
  t.cls = TxnClass::A;
  return t;
}

TEST(AlwaysLocal, NeverShips) {
  AlwaysLocalStrategy s;
  const SystemConfig cfg = cfg_default();
  auto v = view_with(cfg);
  v.central_cpu_queue = 0;
  v.local_cpu_queue = 100;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
  EXPECT_EQ(s.name(), "no-load-sharing");
}

TEST(AlwaysCentral, AlwaysShips) {
  AlwaysCentralStrategy s;
  const SystemConfig cfg = cfg_default();
  EXPECT_EQ(s.decide(class_a_txn(), view_with(cfg)), Route::Central);
}

TEST(StaticProbabilistic, ExtremesAreDeterministic) {
  const SystemConfig cfg = cfg_default();
  StaticProbabilisticStrategy never(0.0, 1);
  StaticProbabilisticStrategy always(1.0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(never.decide(class_a_txn(), view_with(cfg)), Route::Local);
    EXPECT_EQ(always.decide(class_a_txn(), view_with(cfg)), Route::Central);
  }
}

TEST(StaticProbabilistic, FrequencyMatchesP) {
  const SystemConfig cfg = cfg_default();
  StaticProbabilisticStrategy s(0.3, 7);
  int shipped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    shipped += s.decide(class_a_txn(), view_with(cfg)) == Route::Central ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(shipped) / n, 0.3, 0.01);
  EXPECT_EQ(s.p_ship(), 0.3);
  EXPECT_EQ(s.name(), "static-p0.300");
}

TEST(MeasuredRt, ShipsWhenShippedPathWasFaster) {
  MeasuredResponseTimeStrategy s;
  const SystemConfig cfg = cfg_default();
  auto v = view_with(cfg);
  v.last_local_rt = 2.0;
  v.last_shipped_rt = 1.0;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
  v.last_shipped_rt = 3.0;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
}

TEST(MeasuredRt, TieGoesLocal) {
  MeasuredResponseTimeStrategy s;
  const SystemConfig cfg = cfg_default();
  auto v = view_with(cfg);
  v.last_local_rt = 1.5;
  v.last_shipped_rt = 1.5;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
}

TEST(QueueLength, ShipsToShorterQueue) {
  QueueLengthStrategy s;
  const SystemConfig cfg = cfg_default();
  auto v = view_with(cfg);
  v.local_cpu_queue = 5;
  v.central_cpu_queue = 2;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
  v.central_cpu_queue = 5;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
  v.central_cpu_queue = 9;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);
}

TEST(ThresholdUtilization, RespectsThresholdSign) {
  const SystemConfig cfg = cfg_default();
  auto v = view_with(cfg);
  v.local_cpu_queue = 1;   // rho_l = 0.5
  v.central_cpu_queue = 3; // rho_c = 0.75
  // rho_l - rho_c = -0.25.
  ThresholdUtilizationStrategy t0(0.0);
  EXPECT_EQ(t0.decide(class_a_txn(), v), Route::Local);
  ThresholdUtilizationStrategy tm02(-0.2);
  EXPECT_EQ(tm02.decide(class_a_txn(), v), Route::Local);
  ThresholdUtilizationStrategy tm03(-0.3);
  EXPECT_EQ(tm03.decide(class_a_txn(), v), Route::Central);
  EXPECT_EQ(tm03.threshold(), -0.3);
}

TEST(ThresholdUtilization, ZeroThresholdNeedsStrictlyHigherLocalUtil) {
  const SystemConfig cfg = cfg_default();
  auto v = view_with(cfg);
  v.local_cpu_queue = 4;
  v.central_cpu_queue = 4;
  ThresholdUtilizationStrategy t0(0.0);
  EXPECT_EQ(t0.decide(class_a_txn(), v), Route::Local);
  v.local_cpu_queue = 9;
  EXPECT_EQ(t0.decide(class_a_txn(), v), Route::Central);
}

TEST(AnalyticStrategies, NamesIdentifyVariant) {
  const ModelParams p = ModelParams::from_config(cfg_default());
  EXPECT_EQ(MinIncomingRtStrategy(p, UtilSource::CpuQueue).name(),
            "min-incoming-queue");
  EXPECT_EQ(MinIncomingRtStrategy(p, UtilSource::NumInSystem).name(),
            "min-incoming-nsys");
  EXPECT_EQ(MinAverageRtStrategy(p, UtilSource::CpuQueue).name(),
            "min-average-queue");
  EXPECT_EQ(MinAverageRtStrategy(p, UtilSource::NumInSystem).name(),
            "min-average-nsys");
}

TEST(AnalyticStrategies, IdleSystemRunsLocal) {
  const SystemConfig cfg = cfg_default();
  const ModelParams p = ModelParams::from_config(cfg);
  MinIncomingRtStrategy inc(p, UtilSource::NumInSystem);
  MinAverageRtStrategy avg(p, UtilSource::NumInSystem);
  const auto v = view_with(cfg);
  EXPECT_EQ(inc.decide(class_a_txn(), v), Route::Local);
  EXPECT_EQ(avg.decide(class_a_txn(), v), Route::Local);
}

TEST(AnalyticStrategies, SwampedLocalSiteShips) {
  const SystemConfig cfg = cfg_default();
  const ModelParams p = ModelParams::from_config(cfg);
  MinIncomingRtStrategy inc(p, UtilSource::CpuQueue);
  MinAverageRtStrategy avg(p, UtilSource::CpuQueue);
  auto v = view_with(cfg);
  v.local_cpu_queue = 50;
  v.local_num_txns = 60;
  EXPECT_EQ(inc.decide(class_a_txn(), v), Route::Central);
  EXPECT_EQ(avg.decide(class_a_txn(), v), Route::Central);
}

// ---- factory ----

TEST(Factory, BuildsEveryKind) {
  const ModelParams p = ModelParams::from_config(cfg_default());
  for (const auto& [spec, label] : paper_strategy_set()) {
    auto s = make_strategy(spec, p, 1);
    ASSERT_NE(s, nullptr) << label;
    EXPECT_FALSE(s->name().empty());
  }
}

TEST(Factory, ParseRoundTrips) {
  EXPECT_EQ(parse_strategy_spec("no-load-sharing").kind,
            StrategyKind::NoLoadSharing);
  EXPECT_EQ(parse_strategy_spec("always-central").kind,
            StrategyKind::AlwaysCentral);
  EXPECT_EQ(parse_strategy_spec("static-optimal").kind,
            StrategyKind::StaticOptimal);
  const auto st = parse_strategy_spec("static:0.4");
  EXPECT_EQ(st.kind, StrategyKind::StaticProbability);
  EXPECT_DOUBLE_EQ(st.parameter, 0.4);
  const auto th = parse_strategy_spec("util-threshold:-0.2");
  EXPECT_EQ(th.kind, StrategyKind::UtilThreshold);
  EXPECT_DOUBLE_EQ(th.parameter, -0.2);
  EXPECT_EQ(parse_strategy_spec("measured-rt").kind, StrategyKind::MeasuredRt);
  EXPECT_EQ(parse_strategy_spec("queue-length").kind, StrategyKind::QueueLength);
  EXPECT_EQ(parse_strategy_spec("min-incoming-queue").kind,
            StrategyKind::MinIncomingQueue);
  EXPECT_EQ(parse_strategy_spec("min-incoming-nsys").kind,
            StrategyKind::MinIncomingNsys);
  EXPECT_EQ(parse_strategy_spec("min-average-queue").kind,
            StrategyKind::MinAverageQueue);
  EXPECT_EQ(parse_strategy_spec("min-average-nsys").kind,
            StrategyKind::MinAverageNsys);
}

TEST(Factory, StaticOptimalShipsNothingAtLowRate) {
  ModelParams p = ModelParams::from_config(cfg_default());
  p.lambda_site = 0.2;  // 2 tps total
  auto s = make_strategy({StrategyKind::StaticOptimal, 0.0}, p, 1);
  const SystemConfig cfg = cfg_default();
  int shipped = 0;
  for (int i = 0; i < 200; ++i) {
    shipped += s->decide(class_a_txn(), view_with(cfg)) == Route::Central;
  }
  EXPECT_LE(shipped, 10);
}

TEST(Factory, PaperSetHasEightEntries) {
  EXPECT_EQ(paper_strategy_set().size(), 8u);
}

}  // namespace
}  // namespace hls
