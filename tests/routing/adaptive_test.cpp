// Unit tests for the adaptive routing controller (routing/adaptive.hpp):
// spec parsing and wrapper discovery, the unknown-spec error message, and
// synthetic-feed trajectories for all three levers. System-level behaviour
// (review-epoch scheduling, lock-wait protocol effect, replay determinism)
// lives in tests/hybrid/adaptive_controller_test.cpp.
#include <gtest/gtest.h>

#include "model/params.hpp"
#include "routing/adaptive.hpp"
#include "routing/basic_strategies.hpp"
#include "routing/factory.hpp"
#include "routing/failure_aware.hpp"
#include "routing/heuristics.hpp"

namespace hls {
namespace {

constexpr int kRefused = static_cast<int>(AbortCause::AuthRefused);
constexpr int kPreempted = static_cast<int>(AbortCause::LocalPreempted);

ControllerFeed feed_at(double now, int num_sites = 2) {
  ControllerFeed f;
  f.now = now;
  f.num_sites = num_sites;
  f.conflict_matrix.assign(
      static_cast<std::size_t>(num_sites) *
          static_cast<std::size_t>(num_sites + 1),
      0);
  return f;
}

void set_conflict(ControllerFeed& f, int victim, int winner,
                  std::uint64_t count) {
  f.conflict_matrix[static_cast<std::size_t>(victim) *
                        static_cast<std::size_t>(f.num_sites + 1) +
                    static_cast<std::size_t>(winner)] = count;
}

ControllerParams test_params() {
  ControllerParams p;
  p.threshold_step = 0.1;
  p.threshold_min = -0.3;
  p.threshold_max = 0.3;
  p.refusal_frac = 0.5;
  p.refusal_floor = 4;
  p.hot_conflicts = 8;
  p.min_epoch_completions = 10;
  return p;
}

SystemConfig cfg_default() { return SystemConfig{}; }

Transaction class_a_txn() {
  Transaction t;
  t.id = 1;
  t.cls = TxnClass::A;
  return t;
}

// ---- factory specs ------------------------------------------------------

TEST(AdaptiveSpec, ParsesAdaptPrefix) {
  const StrategySpec spec = parse_strategy_spec("adapt:util-threshold:-0.2");
  EXPECT_TRUE(spec.adaptive);
  EXPECT_EQ(spec.kind, StrategyKind::UtilThreshold);
  EXPECT_DOUBLE_EQ(spec.parameter, -0.2);
  EXPECT_DOUBLE_EQ(spec.adapt_interval_override, 0.0);
  EXPECT_FALSE(spec.failure_aware);
}

TEST(AdaptiveSpec, ParsesIntervalOverride) {
  const StrategySpec spec = parse_strategy_spec("adapt@2.5:min-average-nsys");
  EXPECT_TRUE(spec.adaptive);
  EXPECT_EQ(spec.kind, StrategyKind::MinAverageNsys);
  EXPECT_DOUBLE_EQ(spec.adapt_interval_override, 2.5);
}

TEST(AdaptiveSpec, ComposesWithFailsafeInEitherOrder) {
  const StrategySpec outer = parse_strategy_spec("adapt:failsafe@1.5:queue-length");
  EXPECT_TRUE(outer.adaptive);
  EXPECT_TRUE(outer.failure_aware);
  EXPECT_DOUBLE_EQ(outer.failsafe_max_info_age, 1.5);
  EXPECT_EQ(outer.kind, StrategyKind::QueueLength);

  const StrategySpec inner = parse_strategy_spec("failsafe:adapt:util-threshold:0");
  EXPECT_TRUE(inner.adaptive);
  EXPECT_TRUE(inner.failure_aware);
  EXPECT_EQ(inner.kind, StrategyKind::UtilThreshold);
}

TEST(AdaptiveSpec, UnknownSpecErrorQuotesTheOffendingToken) {
  EXPECT_DEATH(static_cast<void>(parse_strategy_spec("bogus-name")),
               "unknown strategy spec 'bogus-name'");
  // Nested: the message quotes the token that failed, not the whole spec.
  EXPECT_DEATH(static_cast<void>(parse_strategy_spec("failsafe:nope")),
               "unknown strategy spec 'nope'");
  // Malformed failsafe head quotes the full spec.
  EXPECT_DEATH(static_cast<void>(parse_strategy_spec("failsafex:queue-length")),
               "unknown strategy spec 'failsafex:queue-length'");
}

TEST(AdaptiveSpec, FactoryWrapsBaseThenAdaptThenFailsafe) {
  const ModelParams base = ModelParams::from_config(SystemConfig{});
  auto strategy =
      make_strategy(parse_strategy_spec("failsafe:adapt:util-threshold:-0.1"),
                    base, 42);
  // Wrap order is base -> adapt -> failsafe regardless of prefix order.
  const std::string expected =
      "failsafe(adapt(" + ThresholdUtilizationStrategy(-0.1).name() + "))";
  EXPECT_EQ(strategy->name(), expected);
  // Both adaptive surfaces stay discoverable through the failsafe wrapper.
  ASSERT_NE(strategy->controller(), nullptr);
  ASSERT_NE(strategy->tunable_threshold(), nullptr);
  EXPECT_DOUBLE_EQ(strategy->tunable_threshold()->threshold(), -0.1);
}

TEST(AdaptiveSpec, NonAdaptiveStrategiesExposeNoController) {
  const ModelParams base = ModelParams::from_config(SystemConfig{});
  auto plain = make_strategy(parse_strategy_spec("min-average-nsys"), base, 42);
  EXPECT_EQ(plain->controller(), nullptr);
  EXPECT_EQ(plain->tunable_threshold(), nullptr);
  auto failsafe =
      make_strategy(parse_strategy_spec("failsafe:queue-length"), base, 42);
  EXPECT_EQ(failsafe->controller(), nullptr);
}

// ---- decide() forwarding ------------------------------------------------

TEST(AdaptiveStrategy, ForwardsDecideToBase) {
  AdaptiveControllerStrategy s(std::make_unique<AlwaysCentralStrategy>());
  const SystemConfig cfg = cfg_default();
  SystemStateView v;
  v.config = &cfg;
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
  EXPECT_EQ(s.name(), "adapt(always-central)");
}

// ---- lever (a): threshold hill-climb ------------------------------------

// Appends one data epoch with the given class-A mean rt over 20 completions
// (both legs exercised, so the estimate fold runs) and reviews it.
void data_epoch(AdaptiveControllerStrategy& s, ControllerFeed& f, double now,
                double mean_rt) {
  f.now = now;
  f.completions_local_a += 10;
  f.rt_local_a_sum += 10.0 * mean_rt;
  f.completions_shipped_a += 10;
  f.rt_shipped_a_sum += 10.0 * mean_rt;
  s.on_review(f);
}

TEST(AdaptiveController, HillClimbExploresThenSettlesOnBestThreshold) {
  AdaptiveControllerStrategy s(
      std::make_unique<ThresholdUtilizationStrategy>(0.0));
  s.bind(2, test_params());
  TunableThreshold* t = s.tunable_threshold();
  ASSERT_NE(t, nullptr);

  // First review only baselines: no decision, threshold untouched.
  s.on_review(feed_at(1.0));
  EXPECT_TRUE(s.decisions().empty());
  EXPECT_DOUBLE_EQ(t->threshold(), 0.0);

  // Exploration: each data epoch probes the next unvisited lower-F bucket.
  ControllerFeed f = feed_at(1.0);
  data_epoch(s, f, 2.0, 1.0);  // observed at F=0.0  -> explore -0.1
  ASSERT_EQ(s.decisions().size(), 1u);
  EXPECT_EQ(s.decisions()[0].kind, ControllerDecision::Kind::ThresholdStep);
  EXPECT_DOUBLE_EQ(s.decisions()[0].old_value, 0.0);
  EXPECT_DOUBLE_EQ(s.decisions()[0].new_value, -0.1);
  EXPECT_NE(s.decisions()[0].evidence.find("exploring unvisited F=-0.10"),
            std::string::npos);
  data_epoch(s, f, 3.0, 0.8);  // observed at F=-0.1 -> explore -0.2
  data_epoch(s, f, 4.0, 1.2);  // observed at F=-0.2 -> explore -0.3 (clamp)
  EXPECT_DOUBLE_EQ(t->threshold(), -0.3);

  // Settling: -0.3 observes 1.5, every neighbor is visited, and the best
  // estimate walks the lever back to the F=-0.1 bucket (estimate 0.8).
  data_epoch(s, f, 5.0, 1.5);  // at -0.3: right neighbor -0.2 (1.2) is better
  EXPECT_DOUBLE_EQ(t->threshold(), -0.2);
  data_epoch(s, f, 6.0, 1.2);  // at -0.2: right neighbor -0.1 (0.8) is better
  EXPECT_DOUBLE_EQ(t->threshold(), -0.1);
  const std::size_t decided = s.decisions().size();
  EXPECT_NE(s.decisions().back().evidence.find("estimated class-A rt"),
            std::string::npos);

  // At the argmin (0.8 beats both 1.2 and the 1.0 estimate at F=0): hold.
  data_epoch(s, f, 7.0, 0.8);
  EXPECT_EQ(s.decisions().size(), decided);
  EXPECT_DOUBLE_EQ(t->threshold(), -0.1);
}

TEST(AdaptiveController, HillClimbHoldsBelowCompletionFloor) {
  AdaptiveControllerStrategy s(
      std::make_unique<ThresholdUtilizationStrategy>(0.0));
  s.bind(2, test_params());
  s.on_review(feed_at(1.0));
  ControllerFeed f = feed_at(2.0);
  f.completions_local_a = 5;  // below min_epoch_completions = 10
  f.rt_local_a_sum = 5.0;
  s.on_review(f);
  EXPECT_TRUE(s.decisions().empty());
  EXPECT_DOUBLE_EQ(s.tunable_threshold()->threshold(), 0.0);
}

TEST(AdaptiveController, HillClimbParksAtClampOnFlatEstimates) {
  AdaptiveControllerStrategy s(
      std::make_unique<ThresholdUtilizationStrategy>(0.0));
  s.bind(2, test_params());
  ControllerFeed f = feed_at(0.0);
  // Identical observations everywhere: the lever explores down to the
  // clamp (three 0.1 steps to threshold_min = -0.3), then parks — a tied
  // neighbor estimate never beats the current bucket, so no chatter.
  for (int epoch = 1; epoch <= 8; ++epoch) {
    data_epoch(s, f, epoch, 1.0);
    const double threshold = s.tunable_threshold()->threshold();
    EXPECT_GE(threshold, test_params().threshold_min);
    EXPECT_LE(threshold, test_params().threshold_max);
  }
  EXPECT_DOUBLE_EQ(s.tunable_threshold()->threshold(),
                   test_params().threshold_min);
  EXPECT_EQ(s.decisions().size(), 3u);
}

TEST(AdaptiveController, ProbesTowardShippingWhenShippedLegIsSilent) {
  AdaptiveControllerStrategy s(
      std::make_unique<ThresholdUtilizationStrategy>(0.0));
  s.bind(2, test_params());
  s.on_review(feed_at(0.0));
  // Local-only epochs never exercise the threshold, so the estimates stay
  // untouched and the lever probes one untried lower bucket per epoch
  // until the clamp, then holds.
  ControllerFeed f = feed_at(0.0);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    f.now = epoch;
    f.completions_local_a += 20;
    f.rt_local_a_sum += 20.0;
    s.on_review(f);
  }
  ASSERT_EQ(s.decisions().size(), 3u);
  EXPECT_NE(s.decisions()[0].evidence.find("no shipped class-A completions"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(s.tunable_threshold()->threshold(),
                   test_params().threshold_min);
}

TEST(AdaptiveController, NoThresholdLeverWithoutTunableBase) {
  AdaptiveControllerStrategy s(std::make_unique<AlwaysLocalStrategy>());
  s.bind(2, test_params());
  s.on_review(feed_at(1.0));
  ControllerFeed f = feed_at(2.0);
  f.completions_local_a = 100;
  f.rt_local_a_sum = 100.0;
  s.on_review(f);
  EXPECT_TRUE(s.decisions().empty());
}

// ---- lever (b): refusal-dominated backoff -------------------------------

TEST(AdaptiveController, BacksOffWhenRefusalWasteDominates) {
  AdaptiveControllerStrategy s(std::make_unique<AlwaysCentralStrategy>());
  s.bind(2, test_params());
  const SystemConfig cfg = cfg_default();
  SystemStateView v;
  v.config = &cfg;

  s.on_review(feed_at(1.0));
  EXPECT_FALSE(s.ship_backoff_active());
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);

  // Refusals waste 5.0s of a 6.0s epoch ledger (> 50%): back off.
  ControllerFeed f = feed_at(2.0);
  f.aborts_by_cause[kRefused] = 10;
  f.wasted_cpu_by_cause[kRefused] = 5.0;
  f.wasted_io_by_cause[kPreempted] = 1.0;
  s.on_review(f);
  ASSERT_EQ(s.decisions().size(), 1u);
  EXPECT_EQ(s.decisions()[0].kind, ControllerDecision::Kind::BackoffOn);
  EXPECT_TRUE(s.ship_backoff_active());
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Local);

  // Still refusal-heavy (40% > the 25% release point): hold the backoff.
  f.now = 3.0;
  f.aborts_by_cause[kRefused] = 20;
  f.wasted_cpu_by_cause[kRefused] = 7.0;   // +2.0
  f.wasted_io_by_cause[kPreempted] = 4.0;  // +3.0
  s.on_review(f);
  EXPECT_EQ(s.decisions().size(), 1u);
  EXPECT_TRUE(s.ship_backoff_active());

  // Refusal share falls to 10% (<= 25%): release.
  f.now = 4.0;
  f.aborts_by_cause[kRefused] = 21;
  f.wasted_cpu_by_cause[kRefused] = 7.5;   // +0.5
  f.wasted_io_by_cause[kPreempted] = 8.5;  // +4.5
  s.on_review(f);
  ASSERT_EQ(s.decisions().size(), 2u);
  EXPECT_EQ(s.decisions()[1].kind, ControllerDecision::Kind::BackoffOff);
  EXPECT_FALSE(s.ship_backoff_active());
  EXPECT_EQ(s.decide(class_a_txn(), v), Route::Central);
}

TEST(AdaptiveController, RefusalFloorSuppressesBackoffOnThinEvidence) {
  AdaptiveControllerStrategy s(std::make_unique<AlwaysCentralStrategy>());
  s.bind(2, test_params());
  s.on_review(feed_at(1.0));
  // 100% refusal share but only 2 refusals (< floor of 4): no backoff.
  ControllerFeed f = feed_at(2.0);
  f.aborts_by_cause[kRefused] = 2;
  f.wasted_cpu_by_cause[kRefused] = 1.0;
  s.on_review(f);
  EXPECT_TRUE(s.decisions().empty());
  EXPECT_FALSE(s.ship_backoff_active());
}

// ---- lever (c): per-site collision-policy flip --------------------------

TEST(AdaptiveController, FlipsToLockWaitOnSustainedHotPairAndBack) {
  AdaptiveControllerStrategy s(std::make_unique<AlwaysLocalStrategy>());
  s.bind(2, test_params());
  s.on_review(feed_at(1.0));

  // Epoch 1 hot (8 >= hot_conflicts): streak 1, no flip yet.
  ControllerFeed f = feed_at(2.0);
  set_conflict(f, 0, 1, 8);
  s.on_review(f);
  EXPECT_TRUE(s.decisions().empty());
  EXPECT_EQ(s.site_policy(0), CollisionPolicy::OptimisticAbort);

  // Epoch 2 hot again: sustained -> LockWait at the victim site only.
  f.now = 3.0;
  set_conflict(f, 0, 1, 16);
  s.on_review(f);
  ASSERT_EQ(s.decisions().size(), 1u);
  EXPECT_EQ(s.decisions()[0].kind, ControllerDecision::Kind::LockWaitOn);
  EXPECT_EQ(s.decisions()[0].site, 0);
  EXPECT_EQ(s.site_policy(0), CollisionPolicy::LockWait);
  EXPECT_EQ(s.site_policy(1), CollisionPolicy::OptimisticAbort);

  // A lukewarm epoch (+5: neither hot nor below half) holds the policy.
  f.now = 4.0;
  set_conflict(f, 0, 1, 21);
  s.on_review(f);
  EXPECT_EQ(s.decisions().size(), 1u);
  EXPECT_EQ(s.site_policy(0), CollisionPolicy::LockWait);

  // Two cold epochs (+0 each, below hot_conflicts/2) release it.
  f.now = 5.0;
  s.on_review(f);
  EXPECT_EQ(s.site_policy(0), CollisionPolicy::LockWait);
  f.now = 6.0;
  s.on_review(f);
  ASSERT_EQ(s.decisions().size(), 2u);
  EXPECT_EQ(s.decisions()[1].kind, ControllerDecision::Kind::LockWaitOff);
  EXPECT_EQ(s.site_policy(0), CollisionPolicy::OptimisticAbort);
}

// ---- epoch accounting ---------------------------------------------------

TEST(AdaptiveController, RebaselinesWhenCountersRegress) {
  AdaptiveControllerStrategy s(
      std::make_unique<ThresholdUtilizationStrategy>(0.0));
  s.bind(2, test_params());
  s.on_review(feed_at(1.0));
  ControllerFeed f = feed_at(2.0);
  f.completions_local_a = 50;
  f.rt_local_a_sum = 50.0;
  s.on_review(f);
  const std::size_t decided = s.decisions().size();

  // begin_measurement() reset the books: counters jump backwards. The
  // review must re-baseline, not act on negative deltas.
  ControllerFeed reset = feed_at(3.0);
  reset.completions_local_a = 5;
  reset.rt_local_a_sum = 5.0;
  s.on_review(reset);
  EXPECT_EQ(s.decisions().size(), decided);

  // Deltas now measure from the reset baseline.
  reset.now = 4.0;
  reset.completions_local_a = 25;
  reset.rt_local_a_sum = 25.0;
  s.on_review(reset);
  EXPECT_EQ(s.decisions().size(), decided + 1);
}

TEST(AdaptiveController, DecisionLogIsAPureFunctionOfTheFeedSequence) {
  auto run = [] {
    AdaptiveControllerStrategy s(
        std::make_unique<ThresholdUtilizationStrategy>(0.0));
    s.bind(2, test_params());
    ControllerFeed f = feed_at(0.0);
    for (int epoch = 1; epoch <= 12; ++epoch) {
      f.now = epoch;
      f.completions_local_a += 20;
      f.rt_local_a_sum += (epoch % 3 == 0) ? 26.0 : 18.0;
      f.aborts_by_cause[kRefused] += (epoch == 5) ? 10 : 0;
      f.wasted_cpu_by_cause[kRefused] += (epoch == 5) ? 5.0 : 0.1;
      f.wasted_io_by_cause[kPreempted] += 0.2;
      set_conflict(f, 1, 2, static_cast<std::uint64_t>(epoch) * 9);
      s.on_review(f);
    }
    return s.decisions();
  };
  const std::vector<ControllerDecision> a = run();
  const std::vector<ControllerDecision> b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_DOUBLE_EQ(a[i].old_value, b[i].old_value);
    EXPECT_DOUBLE_EQ(a[i].new_value, b[i].new_value);
    EXPECT_EQ(a[i].evidence, b[i].evidence);
  }
}

}  // namespace
}  // namespace hls
