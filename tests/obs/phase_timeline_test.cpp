// PhaseTimeline arithmetic: the telescoping settle() convention that makes
// phase times sum to the response time by construction.
#include <gtest/gtest.h>

#include "obs/event.hpp"
#include "obs/phase.hpp"

namespace hls::obs {
namespace {

TEST(PhaseTimeline, SettleChargesSegmentsToOnePhaseEach) {
  PhaseTimeline tl;
  tl.begin(10.0);
  tl.settle(Phase::CpuService, 10.5);
  tl.settle(Phase::Io, 10.9);
  tl.settle(Phase::Commit, 11.0);
  EXPECT_NEAR(tl[Phase::CpuService], 0.5, 1e-12);
  EXPECT_NEAR(tl[Phase::Io], 0.4, 1e-12);
  EXPECT_NEAR(tl[Phase::Commit], 0.1, 1e-12);
  EXPECT_NEAR(tl.sum(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(tl.mark, 11.0);
}

TEST(PhaseTimeline, SettleBurstSplitsQueueWaitFromService) {
  PhaseTimeline tl;
  tl.begin(0.0);
  // Burst submitted at 0, completed at 0.7 after 0.3 s of service: the
  // leading 0.4 s was spent behind other jobs in the queue.
  tl.settle_burst(Phase::CpuService, 0.3, 0.7);
  EXPECT_DOUBLE_EQ(tl[Phase::ReadyQueue], 0.4);
  EXPECT_DOUBLE_EQ(tl[Phase::CpuService], 0.3);
  EXPECT_DOUBLE_EQ(tl.sum(), 0.7);
}

TEST(PhaseTimeline, SettleBurstWithNoQueueingChargesServiceOnly) {
  PhaseTimeline tl;
  tl.begin(2.0);
  tl.settle_burst(Phase::Commit, 0.25, 2.25);
  EXPECT_DOUBLE_EQ(tl[Phase::ReadyQueue], 0.0);
  EXPECT_DOUBLE_EQ(tl[Phase::Commit], 0.25);
}

TEST(PhaseTimeline, InterruptSettlesToThePendingHint) {
  PhaseTimeline tl;
  tl.begin(0.0);
  tl.settle(Phase::CpuService, 0.1);
  tl.pending = Phase::Network;  // armed an async send, then the node died
  tl.interrupt(0.6);
  EXPECT_DOUBLE_EQ(tl[Phase::Network], 0.5);
  EXPECT_DOUBLE_EQ(tl.sum(), 0.6);
}

TEST(PhaseTimeline, SumEqualsElapsedAcrossManySegments) {
  PhaseTimeline tl;
  tl.begin(5.0);
  double t = 5.0;
  for (int i = 0; i < static_cast<int>(Phase::kCount) * 3; ++i) {
    t += 0.01 * (i + 1);
    tl.settle(static_cast<Phase>(i % kPhaseCount), t);
  }
  EXPECT_NEAR(tl.sum(), t - 5.0, 1e-12);
}

TEST(PhaseTimeline, ZeroLengthSettleIsANoOp) {
  PhaseTimeline tl;
  tl.begin(1.0);
  tl.settle(Phase::LockWait, 1.0);
  EXPECT_DOUBLE_EQ(tl[Phase::LockWait], 0.0);
  EXPECT_DOUBLE_EQ(tl.sum(), 0.0);
}

TEST(PhaseNames, AreUniqueAndNonPlaceholder) {
  for (int i = 0; i < kPhaseCount; ++i) {
    const char* name = phase_name(static_cast<Phase>(i));
    EXPECT_STRNE(name, "?");
    for (int j = i + 1; j < kPhaseCount; ++j) {
      EXPECT_STRNE(name, phase_name(static_cast<Phase>(j)));
    }
  }
}

TEST(EventKinds, BitsAreDisjointAndCoverTheMask) {
  unsigned seen = 0;
  for (int i = 0; i < kEventKindCount; ++i) {
    const unsigned bit = kind_bit(static_cast<EventKind>(i));
    EXPECT_EQ(seen & bit, 0u);
    seen |= bit;
    EXPECT_STRNE(event_kind_name(static_cast<EventKind>(i)), "?");
  }
  EXPECT_EQ(seen, kAllEventKinds);
}

}  // namespace
}  // namespace hls::obs
