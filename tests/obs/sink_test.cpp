// Trace-sink implementations: ring buffer semantics, CSV shape, and the
// kind-mask filtering contract shared by all sinks.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/csv_sink.hpp"
#include "obs/ring_sink.hpp"
#include "obs/sample.hpp"
#include "obs/sink.hpp"

namespace hls::obs {
namespace {

Event completion_at(double t, TxnId id) {
  Event e;
  e.kind = EventKind::Completion;
  e.time = t;
  e.txn = id;
  e.response_time = t;
  return e;
}

int count_char(const std::string& s, char c) {
  int n = 0;
  for (char x : s) {
    n += (x == c);
  }
  return n;
}

TEST(NullSink, AcceptsNothing) {
  NullSink sink;
  EXPECT_EQ(sink.kind_mask(), 0u);
}

TEST(RingSink, RetainsEventsInArrivalOrder) {
  RingSink ring(8);
  for (int i = 0; i < 5; ++i) {
    ring.on_event(completion_at(i, i));
  }
  const std::vector<Event> events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].txn, static_cast<TxnId>(i));
  }
  EXPECT_EQ(ring.total_seen(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingSink, WrapsKeepingTheNewestAndCountsDrops) {
  RingSink ring(3);
  for (int i = 0; i < 7; ++i) {
    ring.on_event(completion_at(i, i));
  }
  const std::vector<Event> events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].txn, 4u);
  EXPECT_EQ(events[1].txn, 5u);
  EXPECT_EQ(events[2].txn, 6u);
  EXPECT_EQ(ring.total_seen(), 7u);
  EXPECT_EQ(ring.dropped(), 4u);
}

TEST(RingSink, ClearResets) {
  RingSink ring(2);
  ring.on_event(completion_at(1.0, 1));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_seen(), 0u);
  ring.on_event(completion_at(2.0, 2));
  EXPECT_EQ(ring.events().at(0).txn, 2u);
}

TEST(RingSink, MaskRestrictsSubscription) {
  RingSink ring(4, kind_bit(EventKind::Fault));
  EXPECT_EQ(ring.kind_mask(), kind_bit(EventKind::Fault));
}

TEST(CsvSink, EveryRowHasTheHeaderColumnCount) {
  std::ostringstream out;
  CsvSink sink(out);

  Event completion = completion_at(1.5, 42);
  completion.phase[static_cast<int>(Phase::CpuService)] = 1.5;
  sink.on_event(completion);

  Event abort;
  abort.kind = EventKind::Abort;
  abort.time = 2.0;
  abort.txn = 43;
  abort.cause = AbortCause::Deadlock;
  sink.on_event(abort);

  Event fault;
  fault.kind = EventKind::Fault;
  fault.time = 3.0;
  fault.site = 2;
  fault.up = false;
  sink.on_event(fault);

  Event sample;
  sample.kind = EventKind::Sample;
  sample.time = 4.0;
  sample.central_cpu_queue = 9;
  sample.live_txns = 17;
  sink.on_event(sample);

  EXPECT_EQ(sink.rows_written(), 4u);
  sink.flush();
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, CsvSink::header());
  const int commas = count_char(line, ',');
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(count_char(line, ','), commas) << "row: " << line;
    ++rows;
  }
  EXPECT_EQ(rows, 4);
}

TEST(CsvSink, RowsCarryKindDiscriminatorAndPayload) {
  std::ostringstream out;
  CsvSink sink(out);
  Event fault;
  fault.kind = EventKind::Fault;
  fault.time = 3.25;
  fault.site = -1;  // central complex
  fault.up = false;
  sink.on_event(fault);
  sink.flush();
  const std::string text = out.str();
  EXPECT_NE(text.find("\nfault,3.25,"), std::string::npos);
  EXPECT_NE(text.find(",-1,0,"), std::string::npos);  // site,up columns
}

TEST(WriteSeriesCsv, FlattensPerSiteColumnsAndPrefixesRows) {
  SampleRow row;
  row.time = 12.5;
  row.central_utilization = 0.75;
  row.central_cpu_queue = 3;
  row.central_resident = 4;
  row.central_up = true;
  row.live_txns = 11;
  row.sites.resize(2);
  row.sites[1].utilization = 0.5;
  row.sites[1].shipped_in_flight = 2;
  row.sites[1].up = false;

  std::ostringstream out;
  write_series_csv(out, {row});
  std::istringstream in(out.str());
  std::string header;
  std::string data;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, data));
  EXPECT_EQ(header.rfind("csv,", 0), 0u);
  EXPECT_NE(header.find("site1_shipped"), std::string::npos);
  EXPECT_EQ(data, "csv,12.5,0.75,3,4,1,11,0,0,0,0,1,0.5,0,0,2,0");
  EXPECT_EQ(count_char(header, ','), count_char(data, ','));
}

TEST(WriteSeriesCsv, EmptySeriesWritesHeaderOnly) {
  std::ostringstream out;
  write_series_csv(out, {});
  EXPECT_EQ(count_char(out.str(), '\n'), 1);
}

}  // namespace
}  // namespace hls::obs
