// obs::Registry unit tests: kinds, scope prefixes, the bucket_counter name
// composition, duplicate-name rejection, and the canonical JSON form the run
// artifact and hlsreport depend on (sorted groups/names, shortest-round-trip
// numbers, byte-stability under registration order).
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/stats.hpp"

namespace hls {
namespace {

std::string json_of(const obs::Registry& reg) {
  std::ostringstream out;
  reg.write_json(out);
  return out.str();
}

TEST(Registry, KindsRoundTripThroughEntries) {
  obs::Registry reg;
  reg.counter("demo.completions", 42);
  reg.gauge("window.seconds", 12.5, "s");
  SampleStat s;
  s.add(1.0);
  s.add(3.0);
  reg.stat("rt.all", s, "s");
  reg.time_weighted("cpu.util", 0.25, 1.0, "fraction");
  Histogram h(0.5, 4);
  h.add(0.1);
  h.add(9.0);
  reg.histogram("rt.histogram", h, "s");

  EXPECT_EQ(reg.size(), 5u);
  const obs::MetricEntry* c = reg.find("demo.completions");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, obs::MetricKind::Counter);
  EXPECT_EQ(c->count, 42u);
  EXPECT_EQ(c->unit, "count");

  const obs::MetricEntry* st = reg.find("rt.all");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->count, 2u);
  EXPECT_DOUBLE_EQ(st->mean, 2.0);
  EXPECT_DOUBLE_EQ(st->sum, 4.0);
  EXPECT_DOUBLE_EQ(st->min, 1.0);
  EXPECT_DOUBLE_EQ(st->max, 3.0);

  const obs::MetricEntry* tw = reg.find("cpu.util");
  ASSERT_NE(tw, nullptr);
  EXPECT_DOUBLE_EQ(tw->average, 0.25);
  EXPECT_DOUBLE_EQ(tw->value, 1.0);

  const obs::MetricEntry* hg = reg.find("rt.histogram");
  ASSERT_NE(hg, nullptr);
  EXPECT_EQ(hg->bins.size(), 4u);
  EXPECT_EQ(hg->bins[0], 1u);
  EXPECT_EQ(hg->overflow, 1u);
  EXPECT_EQ(hg->count, 2u);

  EXPECT_EQ(reg.find("nope"), nullptr);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, ScopesComposeTheOnlySanctionedPrefixes) {
  obs::Registry reg;
  reg.root().counter("demo.arrivals", 1);
  reg.central().counter("demo.arrivals", 2);
  reg.site(0).counter("demo.arrivals", 3);
  reg.site(12).counter("demo.arrivals", 4);
  EXPECT_EQ(reg.find("demo.arrivals")->count, 1u);
  EXPECT_EQ(reg.find("central.demo.arrivals")->count, 2u);
  EXPECT_EQ(reg.find("site0.demo.arrivals")->count, 3u);
  EXPECT_EQ(reg.find("site12.demo.arrivals")->count, 4u);
}

TEST(Registry, BucketCounterComposesIndexSuffix) {
  obs::Registry reg;
  const obs::Registry::Scope sc = reg.site(3);
  sc.bucket_counter("demo.heat", 0, 7);
  sc.bucket_counter("locks.heat", 15, 9, "accesses");
  EXPECT_EQ(reg.find("site3.demo.heat.0")->count, 7u);
  const obs::MetricEntry* e = reg.find("site3.locks.heat.15");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 9u);
  EXPECT_EQ(e->unit, "accesses");
}

TEST(RegistryDeathTest, DuplicateNameIsALibraryBug) {
  obs::Registry reg;
  reg.counter("demo.completions", 1);
  EXPECT_DEATH(reg.counter("demo.completions", 2), "duplicate metric name");
}

TEST(Registry, CanonicalJsonBytes) {
  obs::Registry reg;
  // Registered deliberately out of name order and with an interleaved kind
  // mix: the output must still come out grouped and sorted.
  reg.gauge("b.gauge", 0.5, "s");
  reg.counter("z.counter", 3);
  reg.counter("a.counter", 1);
  reg.time_weighted("a.tw", 2.0, 4.0, "jobs");
  EXPECT_EQ(json_of(reg),
            "{\"counters\":{"
            "\"a.counter\":{\"unit\":\"count\",\"value\":1},"
            "\"z.counter\":{\"unit\":\"count\",\"value\":3}},"
            "\"gauges\":{\"b.gauge\":{\"unit\":\"s\",\"value\":0.5}},"
            "\"histograms\":{},"
            "\"stats\":{},"
            "\"time_weighted\":{\"a.tw\":"
            "{\"average\":2,\"current\":4,\"unit\":\"jobs\"}}}");
}

TEST(Registry, JsonBytesIndependentOfRegistrationOrder) {
  obs::Registry fwd;
  obs::Registry rev;
  fwd.counter("a", 1);
  fwd.counter("b", 2);
  fwd.gauge("g", 3.25, "s");
  rev.gauge("g", 3.25, "s");
  rev.counter("b", 2);
  rev.counter("a", 1);
  EXPECT_EQ(json_of(fwd), json_of(rev));
}

TEST(Registry, NumberFormattingIsShortestRoundTrip) {
  std::ostringstream out;
  obs::write_json_number(out, 0.1);
  out.put(' ');
  obs::write_json_number(out, 3.0);
  out.put(' ');
  obs::write_json_number(out, -2.5e-9);
  EXPECT_EQ(out.str(), "0.1 3 -2.5e-09");
}

TEST(Registry, StringEscaping) {
  std::ostringstream out;
  obs::write_json_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(Registry, EmptyStatSerializesZeros) {
  obs::Registry reg;
  SampleStat empty;
  reg.stat("rt.shipped_a", empty, "s");
  EXPECT_EQ(json_of(reg),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
            "\"stats\":{\"rt.shipped_a\":{\"count\":0,\"max\":0,\"mean\":0,"
            "\"min\":0,\"stddev\":0,\"sum\":0,\"unit\":\"s\"}},"
            "\"time_weighted\":{}}");
}

}  // namespace
}  // namespace hls
