// Span tracer contract: settled spans tile each transaction's response time
// exactly, the Perfetto exporter's JSON is structurally sound and
// byte-deterministic, and attaching either sink never perturbs the
// simulation's timing.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "obs/event.hpp"
#include "obs/perfetto_sink.hpp"
#include "obs/ring_sink.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

int count_substr(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---- span stream semantics ----

TEST(SpanTrace, SpansTileTheResponseTimeExactly) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink spans(256, obs::kind_bit(obs::EventKind::Span));
  sys.add_trace_sink(&spans);
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();
  ASSERT_EQ(sys.metrics().completions, 1u);

  double covered = 0.0;
  double last_end = 0.0;
  for (const obs::Event& e : spans.events()) {
    ASSERT_EQ(e.kind, obs::EventKind::Span);
    EXPECT_EQ(e.txn, 1u);
    EXPECT_EQ(e.runs, 1);  // single attempt
    EXPECT_EQ(e.track, 0);  // local run: everything on the home site's track
    EXPECT_GT(e.time, e.span_begin);  // zero-length segments are elided
    EXPECT_GE(e.span_begin, last_end - 1e-12);  // spans never overlap
    last_end = e.time;
    covered += e.time - e.span_begin;
  }
  EXPECT_GT(spans.events().size(), 2u);
  EXPECT_NEAR(covered, sys.metrics().rt_all.sum(), 1e-9);
}

TEST(SpanTrace, ShippedTransactionEmitsCentralSpansAndEdges) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  obs::RingSink ring(256, obs::kSpanEventKinds);
  sys.add_trace_sink(&ring);
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();
  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);

  bool saw_central_span = false;
  bool saw_ship_edge = false;
  bool saw_response_edge = false;
  double covered = 0.0;
  for (const obs::Event& e : ring.events()) {
    if (e.kind == obs::EventKind::Span) {
      covered += e.time - e.span_begin;
      saw_central_span |= (e.track == obs::kCentralTrack);
    } else if (e.kind == obs::EventKind::Edge) {
      if (e.edge == obs::EdgeKind::Ship) {
        // Home site to the central complex, forward in time.
        EXPECT_EQ(e.src_track, 0);
        EXPECT_EQ(e.track, obs::kCentralTrack);
        EXPECT_LT(e.src_time, e.time);
        saw_ship_edge = true;
      } else if (e.edge == obs::EdgeKind::Response) {
        saw_response_edge = true;
      }
    }
  }
  EXPECT_TRUE(saw_central_span);
  EXPECT_TRUE(saw_ship_edge);
  EXPECT_TRUE(saw_response_edge);
  // The tiling identity holds across tracks too.
  EXPECT_NEAR(covered, sys.metrics().rt_all.sum(), 1e-9);
}

TEST(SpanTrace, RetryChainCarriesRunNumbersAndRetryEdge) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 1.0;  // force the preemption conflict
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(512, obs::kSpanEventKinds);
  sys.add_trace_sink(&ring);
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/true));
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  ASSERT_GE(sys.metrics().aborts_total(), 1u);

  int max_run = 0;
  bool saw_retry_edge = false;
  for (const obs::Event& e : ring.events()) {
    if (e.kind == obs::EventKind::Span && e.txn == 1u) {
      max_run = std::max(max_run, e.runs);
    } else if (e.kind == obs::EventKind::Edge &&
               e.edge == obs::EdgeKind::Retry) {
      EXPECT_EQ(e.txn, 1u);
      EXPECT_LE(e.src_time, e.time);
      saw_retry_edge = true;
    }
  }
  EXPECT_GE(max_run, 2);  // the victim's spans span both attempts
  EXPECT_TRUE(saw_retry_edge);
}

// ---- Perfetto exporter ----

std::string perfetto_run(double extra_io = 0.0) {
  SystemConfig cfg = quiet_config();
  if (extra_io > 0.0) {
    cfg.call_io_time = extra_io;
  }
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  std::ostringstream out;
  obs::PerfettoSink sink(out);
  sys.add_trace_sink(&sink);
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.inject_transaction(
      custom_txn(2, TxnClass::B, 3, {{7, LockMode::Exclusive}}));
  sys.simulator().run();
  sink.close();
  return out.str();
}

TEST(SpanTrace, PerfettoDocumentIsStructurallySound) {
  const std::string doc = perfetto_run();
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(doc.substr(doc.size() - 3), "]}\n");
  // Every duration begin has exactly one end, and the process-name metadata
  // for the central complex (pid 0) was appended at close().
  EXPECT_GT(count_substr(doc, "\"ph\":\"B\""), 0);
  EXPECT_EQ(count_substr(doc, "\"ph\":\"B\""), count_substr(doc, "\"ph\":\"E\""));
  EXPECT_EQ(count_substr(doc, "\"ph\":\"s\""), count_substr(doc, "\"ph\":\"f\""));
  EXPECT_GT(count_substr(doc, "\"ph\":\"M\""), 0);
  EXPECT_NE(doc.find("central"), std::string::npos);
  // No unsupported phase letters and no floating-point timestamps.
  EXPECT_EQ(doc.find("\"ts\":-"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(SpanTrace, PerfettoExportIsByteDeterministic) {
  EXPECT_EQ(perfetto_run(), perfetto_run());
  EXPECT_EQ(perfetto_run(0.5), perfetto_run(0.5));
}

TEST(SpanTrace, PerfettoCloseIsIdempotent) {
  std::ostringstream out;
  {
    obs::PerfettoSink sink(out);
    sink.close();
    sink.close();  // second close must not re-emit the epilogue
  }  // destructor after explicit close must not either
  const std::string doc = out.str();
  EXPECT_EQ(count_substr(doc, "]}"), 1);
}

// ---- observation is free or absent ----

TEST(SpanTrace, AttachingSpanSinksDoesNotPerturbTiming) {
  auto run_once = [](bool with_sinks) {
    SystemConfig cfg = quiet_config();
    cfg.call_io_time = 1.0;
    HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
    std::ostringstream out;
    std::unique_ptr<obs::PerfettoSink> perfetto;
    obs::RingSink ring(64, obs::kSpanEventKinds);
    if (with_sinks) {
      perfetto = std::make_unique<obs::PerfettoSink>(out);
      sys.add_trace_sink(perfetto.get());
      sys.add_trace_sink(&ring);
    }
    sys.inject_transaction(custom_txn(1, TxnClass::A, 0,
                                      {{5, LockMode::Exclusive}},
                                      /*io_per_call=*/true));
    sys.inject_transaction(custom_txn(2, TxnClass::B, 0,
                                      {{5, LockMode::Exclusive}},
                                      /*io_per_call=*/false));
    sys.simulator().run();
    return sys.metrics().rt_all.sum();
  };
  // The conflict-heavy schedule (abort + rerun) is bit-identical with the
  // full span pipeline attached.
  EXPECT_DOUBLE_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace hls
