#include "hybrid/metrics.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

TEST(Metrics, FreshMetricsAreZero) {
  Metrics m;
  EXPECT_EQ(m.completions, 0u);
  EXPECT_DOUBLE_EQ(m.throughput(), 0.0);
  EXPECT_DOUBLE_EQ(m.ship_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.runs_per_txn(), 1.0);
  EXPECT_EQ(m.aborts_total(), 0u);
}

TEST(Metrics, ThroughputOverWindow) {
  Metrics m;
  m.measure_start = 100.0;
  m.measure_end = 300.0;
  m.completions = 500;
  EXPECT_DOUBLE_EQ(m.throughput(), 2.5);
  EXPECT_DOUBLE_EQ(m.window_seconds(), 200.0);
}

TEST(Metrics, ShipFraction) {
  Metrics m;
  m.arrivals_class_a = 200;
  m.shipped_class_a = 50;
  EXPECT_DOUBLE_EQ(m.ship_fraction(), 0.25);
}

TEST(Metrics, RunsPerTxn) {
  Metrics m;
  m.completions = 100;
  m.reruns = 25;
  EXPECT_DOUBLE_EQ(m.runs_per_txn(), 1.25);
}

TEST(Metrics, AbortsTotalSumsCauses) {
  Metrics m;
  m.aborts[static_cast<int>(AbortCause::LocalPreempted)] = 3;
  m.aborts[static_cast<int>(AbortCause::CentralInvalidated)] = 4;
  m.aborts[static_cast<int>(AbortCause::AuthRefused)] = 5;
  m.aborts[static_cast<int>(AbortCause::Deadlock)] = 6;
  EXPECT_EQ(m.aborts_total(), 18u);
}

TEST(Metrics, ResetClearsAndRestamps) {
  Metrics m;
  m.completions = 10;
  m.rt_all.add(1.0);
  m.reset(42.0);
  EXPECT_EQ(m.completions, 0u);
  EXPECT_EQ(m.rt_all.count(), 0u);
  EXPECT_DOUBLE_EQ(m.measure_start, 42.0);
}

TEST(SiteMetricsStruct, ShipFraction) {
  SiteMetrics sm;
  EXPECT_DOUBLE_EQ(sm.ship_fraction(), 0.0);
  sm.arrivals_class_a = 10;
  sm.shipped_class_a = 4;
  EXPECT_DOUBLE_EQ(sm.ship_fraction(), 0.4);
}

TEST(Transaction, AbortBookkeeping) {
  Transaction t;
  EXPECT_FALSE(t.is_rerun());
  t.count_abort(AbortCause::Deadlock);
  t.count_abort(AbortCause::Deadlock);
  EXPECT_EQ(t.aborts[static_cast<int>(AbortCause::Deadlock)], 2);
  t.run_count = 1;
  EXPECT_TRUE(t.is_rerun());
}

TEST(Transaction, WritesAnything) {
  Transaction t;
  t.locks = {{1, LockMode::Shared}, {2, LockMode::Shared}};
  EXPECT_FALSE(t.writes_anything());
  t.locks.push_back({3, LockMode::Exclusive});
  EXPECT_TRUE(t.writes_anything());
}

TEST(LockModes, CompatibilityMatrix) {
  EXPECT_TRUE(compatible(LockMode::Shared, LockMode::Shared));
  EXPECT_FALSE(compatible(LockMode::Shared, LockMode::Exclusive));
  EXPECT_FALSE(compatible(LockMode::Exclusive, LockMode::Shared));
  EXPECT_FALSE(compatible(LockMode::Exclusive, LockMode::Exclusive));
}

}  // namespace
}  // namespace hls
