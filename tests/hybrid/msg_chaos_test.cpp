// Message-level chaos behavior of HybridSystem: duplicate deliveries are
// deduplicated without perturbing protocol timing, straggled (reordered)
// messages shift the asynchronous update pipeline by exactly the drawn slip,
// and an overtaken update is buffered by the sequencer and applied in send
// order.
//
// The exact-timing tests follow the single_txn_test recipe: one or two
// transactions in an otherwise idle system, every event time derived from
// the configuration constants plus replica RNG streams reconstructed with
// the documented fork order (hybrid_system.cpp constructor), asserted to
// 1e-9.
#include <gtest/gtest.h>

#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"
#include "util/random.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;  // only injected transactions
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

// Exact fault-free costs (see single_txn_test for the derivations).
constexpr double kLocalXCost = 0.075 + 0.035 + (0.030 + 0.025) + 0.080;
constexpr double kShippedACost = 0.015 + 0.2 + 0.005 + 0.035 +
                                 (0.002 + 0.025) + 0.005 +
                                 (0.2 + 0.010 + 0.2) + 0.2;

// Central apply burst for a one-item async update: (10K + 2K) / 15 MIPS.
constexpr double kApplyCpu = (10e3 + 2e3) / 15e6;
// Home-site ack-processing burst: 2K / 1 MIPS.
constexpr double kRecvAckCpu = 2e3 / 1e6;

/// Replica of the site-0 link fault streams, following the constructor's
/// documented fork order: num_sites arrival forks off the root, then (when
/// the schedule is non-empty) the FaultSchedule fork, the link parent fork,
/// and per-site {up, down} forks off the parent.
struct LinkStreams {
  Rng up0;
  Rng down0;
};

LinkStreams replica_link_streams(const SystemConfig& cfg) {
  Rng root(cfg.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  for (int s = 0; s < cfg.num_sites; ++s) {
    (void)root.fork();  // per-site arrival process
  }
  (void)root.fork();  // FaultSchedule expansion
  Rng link_parent = root.fork();
  Rng up0 = link_parent.fork();
  Rng down0 = link_parent.fork();
  return {up0, down0};
}

TEST(MsgChaos, DuplicateDeliveriesNeverPerturbShippedTiming) {
  SystemConfig cfg = quiet_config();
  cfg.seed = 2;
  cfg.faults.dup_prob = 0.9;
  cfg.faults.dup_extra = 0.03;
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // A duplicated copy is delivered dup_extra after its primary and carries
  // the same sequence number, so the sequencer drops every copy and the
  // primary path — and therefore the response time — is bit-identical to
  // the fault-free run.
  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);
  EXPECT_NEAR(sys.metrics().rt_shipped_a.mean(), kShippedACost, 1e-9);

  // Dedup double-entry: every link-level duplication shows up as exactly one
  // dropped delivery, all attributed to site 0 (the only active link pair).
  const HybridSystem::LinkFaultTotals faults = sys.link_fault_totals();
  EXPECT_GT(faults.duplicated, 0u);
  EXPECT_EQ(sys.metrics().dup_msgs_dropped, faults.duplicated);
  EXPECT_EQ(sys.site_metrics(0).dup_msgs_dropped, faults.duplicated);
  EXPECT_EQ(sys.metrics().msgs_resequenced, 0u);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(MsgChaos, StraggledAsyncUpdatePipelineExactTiming) {
  SystemConfig cfg = quiet_config();
  cfg.seed = 2;  // chosen so both chaos draws below come out true
  cfg.faults.reorder_prob = 0.5;
  cfg.faults.reorder_window = 0.4;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{7, LockMode::Exclusive}}));

  // Replica of the only chaos draws in this run: the async update on the up
  // link (dispatched at local commit, t = 0.245) and its acknowledgement on
  // the down link. Seed 2 straggles both.
  LinkStreams streams = replica_link_streams(cfg);
  ASSERT_TRUE(streams.up0.bernoulli(cfg.faults.reorder_prob));
  const double slip_up = streams.up0.uniform(0.0, cfg.faults.reorder_window);
  ASSERT_TRUE(streams.down0.bernoulli(cfg.faults.reorder_prob));
  const double slip_down =
      streams.down0.uniform(0.0, cfg.faults.reorder_window);

  // The local response is untouched: chaos only stretches the asynchronous
  // coherence pipeline behind the commit.
  sys.simulator().run();
  ASSERT_EQ(sys.metrics().completions_local_a, 1u);
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), kLocalXCost, 1e-9);

  // Update leaves at 0.245, arrives one delay plus the slip later; apply
  // burst, ack leg with its own slip, ack-processing burst. The final event
  // is the coherence decrement.
  const double expected_end = kLocalXCost + 0.2 + slip_up + kApplyCpu + 0.2 +
                              slip_down + kRecvAckCpu;
  EXPECT_NEAR(sys.simulator().now(), expected_end, 1e-9);
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 0u);

  // Two straggled messages, but each was the only in-flight message on its
  // link: arrival order never inverted, so nothing was resequenced.
  const HybridSystem::LinkFaultTotals faults = sys.link_fault_totals();
  EXPECT_EQ(faults.reordered, 2u);
  EXPECT_EQ(sys.metrics().msgs_resequenced, 0u);
  EXPECT_EQ(sys.metrics().dup_msgs_dropped, 0u);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(MsgChaos, OvertakenUpdateIsResequencedExactTiming) {
  SystemConfig cfg = quiet_config();
  cfg.seed = 2;
  cfg.faults.reorder_window = 0.4;
  // The msg_fault window covers only the first update's dispatch (t = 0.245):
  // the second update, sent at 0.495, sees the restored fault-free link.
  cfg.faults.windows.push_back(
      {FaultKind::MsgFault, 0, 0.2, 0.1, 1.0, 0.0, 0.0, 0.9, 0.0, 1.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());

  // Replica of the single chaos draw: update 1 straggles far enough
  // (> 0.25) that update 2's fault-free arrival at 0.695 overtakes it.
  LinkStreams streams = replica_link_streams(cfg);
  ASSERT_TRUE(streams.up0.bernoulli(0.9));
  const double slip = streams.up0.uniform(0.0, cfg.faults.reorder_window);
  ASSERT_GT(slip, 0.25);

  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{7, LockMode::Exclusive}}));
  sys.simulator().schedule_at(0.25, [&sys] {
    sys.inject_transaction(
        custom_txn(2, TxnClass::A, 0, {{9, LockMode::Exclusive}}));
  });

  // At t = 0.70 both commits are done (0.245 and 0.495), update 2 has
  // arrived out of order (0.695) and sits buffered in the sequencer —
  // counted as resequenced, not yet applied — while update 1 is still in
  // flight until 0.445 + slip.
  sys.simulator().run_until(0.70);
  EXPECT_EQ(sys.metrics().completions_local_a, 2u);
  EXPECT_EQ(sys.metrics().async_updates_sent, 2u);
  EXPECT_EQ(sys.metrics().msgs_resequenced, 1u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 1u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(9), 1u);

  // Update 1 arrives at T = 0.445 + slip; the sequencer releases both
  // updates in send order at that instant. FCFS central CPU: applies finish
  // at T + kApplyCpu and T + 2*kApplyCpu, each ack leaving as its apply
  // ends. Ack 2 reaches the home site while ack 1's 2 ms burst is still
  // running (the applies are only 0.8 ms apart), so the critical path is
  // one apply burst, one down leg, and the two ack bursts back to back.
  sys.simulator().run();
  const double t_arrive = 0.245 + 0.2 + slip;
  const double expected_end = t_arrive + kApplyCpu + 0.2 + 2 * kRecvAckCpu;
  EXPECT_NEAR(sys.simulator().now(), expected_end, 1e-9);

  // Both responses are the undisturbed local cost; all chaos landed in the
  // asynchronous pipeline.
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), kLocalXCost, 1e-9);
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 0u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(9), 0u);
  EXPECT_EQ(sys.local_locks(0).pending_coherence_entities(), 0u);

  const HybridSystem::LinkFaultTotals faults = sys.link_fault_totals();
  EXPECT_EQ(faults.reordered, 1u);
  EXPECT_EQ(sys.metrics().msgs_resequenced, 1u);
  EXPECT_EQ(sys.site_metrics(0).msgs_resequenced, 1u);
  EXPECT_EQ(sys.metrics().dup_msgs_dropped, 0u);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

// Drain test for the new fault modes: sustained arrivals under steady
// duplicate + reorder + spike chaos, then stop arrivals and drain — all
// residency counters return to zero and the dedup double-entry holds.
TEST(MsgChaos, LoadedChaosRunDrainsCompletely) {
  SystemConfig cfg;
  cfg.num_sites = 4;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 13;
  cfg.faults.dup_prob = 0.3;
  cfg.faults.dup_extra = 0.05;
  cfg.faults.reorder_prob = 0.3;
  cfg.faults.reorder_window = 0.5;
  cfg.faults.spike_prob = 0.2;
  cfg.faults.spike_factor = 3.0;
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.enable_arrivals();
  for (int step = 0; step < 16; ++step) {
    sys.run_for(0.5);
    sys.check_invariants();
  }
  sys.stop_arrivals();
  sys.drain();
  sys.check_invariants();

  const Metrics& m = sys.metrics();
  const HybridSystem::LinkFaultTotals faults = sys.link_fault_totals();
  EXPECT_GT(m.completions, 0u);
  EXPECT_GT(faults.duplicated, 0u);
  EXPECT_GT(faults.reordered, 0u);
  EXPECT_GT(faults.delay_spikes, 0u);
  EXPECT_EQ(m.dup_msgs_dropped, faults.duplicated);
  EXPECT_GT(m.msgs_resequenced, 0u);

  // Per-site counters sum to the global ones.
  std::uint64_t dup_sum = 0;
  std::uint64_t reseq_sum = 0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    dup_sum += sys.site_metrics(s).dup_msgs_dropped;
    reseq_sum += sys.site_metrics(s).msgs_resequenced;
  }
  EXPECT_EQ(dup_sum, m.dup_msgs_dropped);
  EXPECT_EQ(reseq_sum, m.msgs_resequenced);

  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.central_resident(), 0);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_resident(s), 0);
    EXPECT_EQ(sys.shipped_in_flight(s), 0);
    EXPECT_EQ(sys.local_locks(s).locks_held(), 0u);
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
}

// Two same-seed runs under composed message chaos are bit-identical.
TEST(MsgChaos, ChaosRunsAreDeterministic) {
  auto fingerprint = [] {
    SystemConfig cfg;
    cfg.num_sites = 4;
    cfg.arrival_rate_per_site = 2.0;
    cfg.seed = 29;
    cfg.faults.dup_prob = 0.25;
    cfg.faults.dup_extra = 0.04;
    cfg.faults.reorder_prob = 0.25;
    cfg.faults.reorder_window = 0.4;
    cfg.faults.spike_prob = 0.15;
    cfg.faults.spike_factor = 4.0;
    cfg.faults.windows.push_back(
        {FaultKind::MsgFault, -1, 2.0, 2.0, 1.0, 0.0, 0.5, 0.5, 0.3, 6.0});
    HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
    sys.enable_arrivals();
    sys.run_for(6.0);
    sys.stop_arrivals();
    sys.drain();
    sys.check_invariants();
    const Metrics& m = sys.metrics();
    EXPECT_GT(m.completions, 0u);
    return std::vector<double>{
        m.rt_all.mean(),
        static_cast<double>(m.completions),
        static_cast<double>(m.dup_msgs_dropped),
        static_cast<double>(m.msgs_resequenced),
        static_cast<double>(m.aborts_total()),
    };
  };
  const std::vector<double> first = fingerprint();
  const std::vector<double> second = fingerprint();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hls
