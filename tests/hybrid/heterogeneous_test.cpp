// Heterogeneous site speeds and variable transaction lengths (workload
// extensions used by the sensitivity ablations).
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/analytic_strategies.hpp"
#include "routing/basic_strategies.hpp"
#include "workload/txn_factory.hpp"

namespace hls {
namespace {

TEST(Heterogeneous, PerSiteMipsChangesLocalResponseTime) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.num_sites = 2;
  cfg.local_mips_per_site = {1.0, 4.0};
  cfg.validate();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  Transaction slow;
  slow.id = 1;
  slow.cls = TxnClass::A;
  slow.home_site = 0;
  slow.locks = {{5, LockMode::Shared}};
  slow.call_io = {true};
  Transaction fast = slow;
  fast.id = 2;
  fast.home_site = 1;
  fast.locks = {{cfg.partition_size() + 5, LockMode::Shared}};
  sys.inject_transaction(slow);
  sys.inject_transaction(fast);
  sys.simulator().run();
  // Site 0 at 1 MIPS: 0.075 + 0.035 + 0.055 + 0.075 = 0.240.
  // Site 1 at 4 MIPS: CPU terms quartered: 0.01875+0.035+(0.0075+0.025)+0.01875.
  EXPECT_NEAR(sys.site_metrics(0).rt_local_a.mean(), 0.240, 1e-9);
  EXPECT_NEAR(sys.site_metrics(1).rt_local_a.mean(),
              0.01875 + 0.035 + 0.0325 + 0.01875, 1e-9);
}

TEST(Heterogeneous, ValidateRejectsWrongVectorLength) {
  SystemConfig cfg;
  cfg.num_sites = 3;
  cfg.local_mips_per_site = {1.0, 2.0};  // wrong length
  EXPECT_DEATH(cfg.validate(), "local_mips_per_site");
}

TEST(Heterogeneous, SlowSiteShipsMoreUnderDynamicRouting) {
  SystemConfig cfg;
  cfg.num_sites = 4;
  cfg.arrival_rate_per_site = 1.2;
  cfg.local_mips_per_site = {0.5, 2.0, 2.0, 2.0};  // site 0 is the weakling
  cfg.seed = 91;
  const ModelParams base = ModelParams::from_config(cfg);
  HybridSystem sys(cfg, std::make_unique<MinAverageRtStrategy>(
                            base, UtilSource::NumInSystem));
  sys.enable_arrivals();
  sys.run_for(400.0);
  const double weak_ship = sys.site_metrics(0).ship_fraction();
  double strong_ship = 0.0;
  for (int s = 1; s < 4; ++s) {
    strong_ship += sys.site_metrics(s).ship_fraction();
  }
  strong_ship /= 3.0;
  EXPECT_GT(weak_ship, strong_ship + 0.15);
}

TEST(Heterogeneous, DrainsCleanly) {
  SystemConfig cfg;
  cfg.num_sites = 5;
  cfg.arrival_rate_per_site = 1.0;
  cfg.local_mips_per_site = {0.6, 0.8, 1.0, 1.5, 3.0};
  cfg.seed = 92;
  const ModelParams base = ModelParams::from_config(cfg);
  HybridSystem sys(cfg, std::make_unique<MinAverageRtStrategy>(
                            base, UtilSource::CpuQueue));
  sys.enable_arrivals();
  sys.run_for(120.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(GeometricCalls, MeanLengthMatchesConfig) {
  SystemConfig cfg;
  cfg.geometric_call_count = true;
  cfg.db_calls_per_txn = 10;
  TxnFactory factory(cfg, Rng(5));
  double total = 0.0;
  int min_len = 1 << 30;
  int max_len = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Transaction txn = factory.make(0, 0.0);
    const int len = static_cast<int>(txn.locks.size());
    total += len;
    min_len = std::min(min_len, len);
    max_len = std::max(max_len, len);
    ASSERT_EQ(txn.call_io.size(), txn.locks.size());
  }
  EXPECT_NEAR(total / n, 10.0, 0.3);
  EXPECT_EQ(min_len, 1);
  EXPECT_GT(max_len, 25);
  EXPECT_LE(max_len, 80);  // truncation at 8x mean
}

TEST(GeometricCalls, SystemRunsAndDrains) {
  SystemConfig cfg;
  cfg.geometric_call_count = true;
  cfg.arrival_rate_per_site = 1.5;
  cfg.seed = 93;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.4, 93));
  sys.enable_arrivals();
  sys.run_for(120.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions,
            sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
  sys.check_invariants();
}

TEST(GeometricCalls, VarianceRaisesTailResponseTimes) {
  auto p99 = [](bool geometric) {
    SystemConfig cfg;
    cfg.geometric_call_count = geometric;
    cfg.arrival_rate_per_site = 1.8;
    cfg.seed = 94;
    HybridSystem sys(cfg,
                     std::make_unique<StaticProbabilisticStrategy>(0.4, 94));
    sys.enable_arrivals();
    sys.run_for(400.0);
    return sys.metrics().rt_histogram.quantile(0.99);
  };
  EXPECT_GT(p99(true), p99(false) * 1.3);
}

}  // namespace
}  // namespace hls
