// System-level behaviour of the adaptive routing controller: exact review
// epoch timing, the inertness guarantee at adapt_interval=0, drain safety,
// the lock-wait collision policy's protocol effect, replay determinism with
// the controller active under a msg_fault window, and a pinned hill-climb
// trajectory (HLS_REPIN=1 re-pins, as in golden_metrics_test).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/basic_strategies.hpp"
#include "routing/factory.hpp"

namespace hls {
namespace {

bool repin_mode() { return std::getenv("HLS_REPIN") != nullptr; }

std::unique_ptr<RoutingStrategy> spec_strategy(const SystemConfig& cfg,
                                               const char* spec) {
  // Same seed derivation as core/driver so trajectories match driver runs.
  return make_strategy(parse_strategy_spec(spec), ModelParams::from_config(cfg),
                       cfg.seed ^ 0x51CA5EEDULL);
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

// ---- exact review-epoch timing ------------------------------------------

TEST(AdaptiveControllerSystem, ReviewEpochFiresOnTheExactCadence) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.adapt_interval = 0.5;
  HybridSystem sys(cfg, spec_strategy(cfg, "adapt:util-threshold:0"));
  ASSERT_NE(sys.controller(), nullptr);
  sys.inject(TxnClass::A, 0);
  sys.simulator().run();

  // One idle-system transaction keeps the review chain alive only while it
  // lives; every review must land on an exact multiple of the interval.
  const std::vector<double>& reviews = sys.controller()->review_times();
  ASSERT_GE(reviews.size(), 1u);
  for (std::size_t k = 0; k < reviews.size(); ++k) {
    EXPECT_NEAR(reviews[k], 0.5 * static_cast<double>(k + 1), 1e-9);
  }
  EXPECT_EQ(sys.metrics().completions, 1u);

  // Reviews only read state: the transaction's response time is identical
  // to a run without the controller, to 1e-9.
  SystemConfig off = cfg;
  off.adapt_interval = 0.0;
  HybridSystem base(off, spec_strategy(off, "util-threshold:0"));
  base.inject(TxnClass::A, 0);
  base.simulator().run();
  EXPECT_NEAR(sys.metrics().rt_all.sum(), base.metrics().rt_all.sum(), 1e-9);
}

// ---- inertness at adapt_interval = 0 ------------------------------------

TEST(AdaptiveControllerSystem, InertWhenIntervalIsZero) {
  // Byte-parity contract (mirrors the sampler's test): the default
  // adapt_interval of 0 must leave the executed event count identical to a
  // plain strategy, while a positive interval strictly adds review events.
  auto events_with = [](const char* spec, double interval) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 1.0;
    cfg.seed = 11;
    cfg.adapt_interval = interval;
    HybridSystem sys(cfg, spec_strategy(cfg, spec));
    sys.enable_arrivals();
    sys.run_for(30.0);
    sys.stop_arrivals();
    sys.drain();
    if (sys.controller() != nullptr && interval <= 0.0) {
      EXPECT_TRUE(sys.controller()->decisions().empty());
      EXPECT_TRUE(sys.controller()->review_times().empty());
    }
    return sys.simulator().executed_events();
  };
  const std::uint64_t plain = events_with("util-threshold:0", 0.0);
  const std::uint64_t inert = events_with("adapt:util-threshold:0", 0.0);
  const std::uint64_t active = events_with("adapt:util-threshold:0", 1.0);
  EXPECT_EQ(inert, plain);
  EXPECT_GT(active, plain);
}

// ---- drain safety -------------------------------------------------------

TEST(AdaptiveControllerSystem, ControllerActiveSystemDrainsToZero) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.6;
  cfg.seed = 7;
  HybridSystem sys(cfg, spec_strategy(cfg, "adapt@1:util-threshold:0"));
  sys.enable_arrivals();
  sys.run_for(30.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
  ASSERT_NE(sys.controller(), nullptr);
  // The spec override (not the config key, left at 0) drove the cadence.
  EXPECT_GE(sys.controller()->review_times().size(), 30u);
  EXPECT_LE(sys.controller()->review_times().back(),
            sys.simulator().now() + 1e-9);
}

// ---- lever (c) protocol effect ------------------------------------------

// Builds an adapt wrapper whose controller has already flipped `site` to
// LockWait via synthetic hot-conflict feeds. With the config key left at 0
// the system discovers the controller but never rebinds it, so the standing
// policy applies while no review event is ever scheduled.
std::unique_ptr<RoutingStrategy> lockwait_strategy(int num_sites, int site) {
  auto s = std::make_unique<AdaptiveControllerStrategy>(
      std::make_unique<AlwaysLocalStrategy>());
  ControllerParams p;
  p.hot_conflicts = 1;
  s->bind(num_sites, p);
  ControllerFeed f;
  f.num_sites = num_sites;
  f.conflict_matrix.assign(static_cast<std::size_t>(num_sites) *
                               static_cast<std::size_t>(num_sites + 1),
                           0);
  s->on_review(f);  // baseline
  const std::size_t hot_cell =
      static_cast<std::size_t>(site) * static_cast<std::size_t>(num_sites + 1) +
      static_cast<std::size_t>(num_sites);  // winner: central column
  f.now = 1.0;
  f.conflict_matrix[hot_cell] = 1;
  s->on_review(f);
  f.now = 2.0;
  f.conflict_matrix[hot_cell] = 2;
  s->on_review(f);
  EXPECT_EQ(s->site_policy(site), CollisionPolicy::LockWait);
  return s;
}

TEST(AdaptiveControllerSystem, LockWaitPolicyRefusesInsteadOfPreempting) {
  // Same choreography as Conflict.AuthenticationPreemptsLocalHolder: a
  // local class A holds lock 5 through a 1 s I/O while a class B's
  // authentication arrives for the same entity.
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.call_io_time = 1.0;

  // Optimistic-abort (paper behaviour): the holder is preempted.
  HybridSystem optimistic(cfg, std::make_unique<AlwaysLocalStrategy>());
  optimistic.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}, true));
  optimistic.inject_transaction(
      custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}}, false));
  optimistic.simulator().run();
  EXPECT_GE(
      optimistic.metrics().aborts[static_cast<int>(AbortCause::LocalPreempted)],
      1u);

  // Lock-wait at site 0: the holder survives untouched, the central
  // transaction is refused with the holder named and reruns instead.
  HybridSystem lockwait(cfg, lockwait_strategy(cfg.num_sites, 0));
  EXPECT_EQ(lockwait.collision_policy(0), CollisionPolicy::LockWait);
  lockwait.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}, true));
  lockwait.inject_transaction(
      custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}}, false));
  lockwait.simulator().run();
  const Metrics& m = lockwait.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_EQ(m.aborts[static_cast<int>(AbortCause::LocalPreempted)], 0u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::AuthRefused)], 1u);
  EXPECT_GE(m.aborts_with_winner, 1u);  // the refusal names the holder
  lockwait.check_invariants();
}

// ---- replay determinism under message faults ----------------------------

struct ControllerFingerprint {
  std::uint64_t events = 0;
  std::uint64_t completions = 0;
  double rt_sum = 0.0;
  std::vector<double> review_times;
  std::vector<ControllerDecision> decisions;
};

ControllerFingerprint faulted_controller_run() {
  SystemConfig cfg;
  cfg.seed = 20260808;
  cfg.arrival_rate_per_site = 2.0;
  cfg.ship_timeout = 2.0;
  cfg.faults.dup_prob = 0.1;
  cfg.faults.reorder_prob = 0.1;
  cfg.faults.reorder_window = 0.3;
  cfg.faults.windows.push_back(
      {FaultKind::MsgFault, -1, 10.0, 8.0, 1.0, 0.0, 0.45, 0.45, 0.2, 5.0});
  HybridSystem sys(cfg, spec_strategy(cfg, "adapt@2:failsafe:util-threshold:0"));
  sys.enable_arrivals();
  sys.run_for(40.0);
  sys.stop_arrivals();
  sys.drain();
  sys.check_invariants();
  ControllerFingerprint fp;
  fp.events = sys.simulator().executed_events();
  fp.completions = sys.metrics().completions;
  fp.rt_sum = sys.metrics().rt_all.sum();
  fp.review_times = sys.controller()->review_times();
  fp.decisions = sys.controller()->decisions();
  return fp;
}

TEST(AdaptiveControllerSystem, DecisionsReplayDeterministicallyUnderMsgFaults) {
  const ControllerFingerprint a = faulted_controller_run();
  const ControllerFingerprint b = faulted_controller_run();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.rt_sum, b.rt_sum);  // hlslint:allow(float-eq) exact replay
  ASSERT_EQ(a.review_times.size(), b.review_times.size());
  ASSERT_FALSE(a.review_times.empty());
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  ASSERT_FALSE(a.decisions.empty());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].kind, b.decisions[i].kind);
    EXPECT_EQ(a.decisions[i].site, b.decisions[i].site);
    EXPECT_EQ(a.decisions[i].evidence, b.decisions[i].evidence);
    // hlslint:allow(float-eq) exact replay of the identical event sequence
    EXPECT_EQ(a.decisions[i].time, b.decisions[i].time);
    EXPECT_EQ(a.decisions[i].new_value, b.decisions[i].new_value);
  }
}

// ---- pinned hill-climb trajectory ---------------------------------------

struct GoldenTrajectory {
  std::uint64_t completions;
  std::size_t decision_count;
  double final_threshold;
  const char* kinds;  ///< one char per decision: T/B/b/L/l
};

char kind_char(ControllerDecision::Kind k) {
  switch (k) {
    case ControllerDecision::Kind::ThresholdStep: return 'T';
    case ControllerDecision::Kind::BackoffOn: return 'B';
    case ControllerDecision::Kind::BackoffOff: return 'b';
    case ControllerDecision::Kind::LockWaitOn: return 'L';
    case ControllerDecision::Kind::LockWaitOff: return 'l';
  }
  return '?';
}

TEST(AdaptiveControllerSystem, GoldenHillClimbTrajectory) {
  SystemConfig cfg;
  cfg.seed = 20260808;
  cfg.arrival_rate_per_site = 2.0;
  cfg.adapt_interval = 2.0;
  HybridSystem sys(cfg, spec_strategy(cfg, "adapt:util-threshold:0"));
  sys.enable_arrivals();
  sys.run_for(40.0);
  sys.stop_arrivals();
  sys.drain();

  ASSERT_NE(sys.strategy().tunable_threshold(), nullptr);
  const double final_threshold = sys.strategy().tunable_threshold()->threshold();
  const std::vector<ControllerDecision>& decisions =
      sys.controller()->decisions();
  std::string kinds;
  for (const ControllerDecision& d : decisions) kinds += kind_char(d.kind);

  if (repin_mode()) {
    std::printf(
        "  const GoldenTrajectory want{%lluu, %zuu, %.17g, \"%s\"};\n",
        static_cast<unsigned long long>(sys.metrics().completions),
        decisions.size(), final_threshold, kinds.c_str());
    return;
  }
  const GoldenTrajectory want{784u, 10u, -0.5, "TTTTTTTTTT"};
  EXPECT_EQ(sys.metrics().completions, want.completions);
  EXPECT_EQ(decisions.size(), want.decision_count);
  EXPECT_NEAR(final_threshold, want.final_threshold, 1e-9);
  EXPECT_EQ(kinds, want.kinds);
}

}  // namespace
}  // namespace hls
