// Asynchronous-update batching (§2's batching suggestion).
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config(double batch_window) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.async_batch_window = batch_window;
  return cfg;
}

Transaction write_txn(TxnId id, int site, LockId lock) {
  Transaction txn;
  txn.id = id;
  txn.cls = TxnClass::A;
  txn.home_site = site;
  txn.locks = {{lock, LockMode::Exclusive}};
  txn.call_io = {true};
  return txn;
}

TEST(Batching, DisabledSendsOneMessagePerCommit) {
  HybridSystem sys(quiet_config(0.0), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(write_txn(1, 0, 5));
  sys.inject_transaction(write_txn(2, 0, 6));
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().async_updates_sent, 2u);
}

TEST(Batching, WindowCoalescesCommitsIntoOneMessage) {
  // Both transactions commit within ~0.1 s of each other; a 1 s window must
  // merge their updates into a single message.
  HybridSystem sys(quiet_config(1.0), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(write_txn(1, 0, 5));
  sys.inject_transaction(write_txn(2, 0, 6));
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().async_updates_sent, 1u);
  // Coherence fully cleared after the batch's acknowledgement.
  EXPECT_EQ(sys.local_locks(0).pending_coherence_entities(), 0u);
  EXPECT_EQ(sys.live_transactions(), 0);
}

TEST(Batching, SeparateSitesBatchIndependently) {
  HybridSystem sys(quiet_config(1.0), std::make_unique<AlwaysLocalStrategy>());
  const std::uint32_t part = SystemConfig{}.partition_size();
  sys.inject_transaction(write_txn(1, 0, 5));
  sys.inject_transaction(write_txn(2, 1, part + 5));
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().async_updates_sent, 2u);  // one per site
}

TEST(Batching, CoherenceHeldUntilBatchAcknowledged) {
  HybridSystem sys(quiet_config(2.0), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(write_txn(1, 0, 5));
  // Commit at ~0.245; flush at ~2.245; ack at ~2.245 + 0.4 + processing.
  sys.simulator().run_until(2.0);
  EXPECT_EQ(sys.metrics().completions, 1u);  // commit did not wait for flush
  EXPECT_EQ(sys.local_locks(0).coherence_count(5), 1u);
  sys.simulator().run_until(2.3);
  EXPECT_EQ(sys.metrics().async_updates_sent, 1u);  // flushed
  EXPECT_EQ(sys.local_locks(0).coherence_count(5), 1u);  // ack still in flight
  sys.simulator().run();
  EXPECT_EQ(sys.local_locks(0).coherence_count(5), 0u);
}

TEST(Batching, BatchedUpdateStillInvalidatesCentralHolders) {
  SystemConfig cfg = quiet_config(0.5);
  cfg.call_io_time = 0.5;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Slow class B holds entity 5 at central; the batched local update must
  // still mark it for abort when the flush arrives.
  Transaction b;
  b.id = 2;
  b.cls = TxnClass::B;
  b.home_site = 5;
  b.locks = {{5, LockMode::Exclusive},
             {3300, LockMode::Exclusive},
             {6600, LockMode::Exclusive},
             {9900, LockMode::Exclusive},
             {13200, LockMode::Exclusive}};
  b.call_io.assign(5, true);
  sys.inject_transaction(b);
  sys.inject_transaction(write_txn(1, 0, 5));
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 2u);
  EXPECT_GE(sys.metrics().aborts[static_cast<int>(AbortCause::CentralInvalidated)],
            1u);
}

TEST(Batching, ManyCommitsRollIntoFewMessages) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.async_batch_window = 0.5;
  cfg.prob_write_lock = 1.0;  // every transaction updates
  cfg.seed = 3;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.stop_arrivals();
  sys.drain();
  const Metrics& m = sys.metrics();
  // ~2 commits/site/second against a 0.5 s window: messages should be well
  // below one per commit (every flush carries >= 1, usually several).
  EXPECT_GT(m.completions, 0u);
  EXPECT_LT(m.async_updates_sent, m.completions_local_a);
  EXPECT_EQ(sys.live_transactions(), 0);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
  sys.check_invariants();
}

TEST(Batching, SystemDrainsWithBatchingUnderLoad) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.4;
  cfg.async_batch_window = 0.2;
  cfg.seed = 5;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.5, 5));
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions,
            sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
  sys.check_invariants();
}

}  // namespace
}  // namespace hls
