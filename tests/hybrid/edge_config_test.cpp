// Degenerate and extreme configurations: the system must stay correct (and
// live) at the edges of its parameter space.
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/factory.hpp"

namespace hls {
namespace {

std::unique_ptr<RoutingStrategy> strat(const SystemConfig& cfg, StrategyKind kind,
                                       double param = 0.0) {
  return make_strategy({kind, param}, ModelParams::from_config(cfg), cfg.seed);
}

void run_and_drain(HybridSystem& sys, double seconds) {
  sys.enable_arrivals();
  sys.run_for(seconds);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions,
            sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
  sys.check_invariants();
}

TEST(EdgeConfig, SingleSiteSystem) {
  SystemConfig cfg;
  cfg.num_sites = 1;
  cfg.arrival_rate_per_site = 1.0;
  cfg.seed = 41;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinAverageNsys));
  run_and_drain(sys, 100.0);
}

TEST(EdgeConfig, ZeroCommDelay) {
  SystemConfig cfg;
  cfg.comm_delay = 0.0;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 42;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::QueueLength));
  run_and_drain(sys, 100.0);
  // With free communication and a 15x CPU, shipping should dominate.
  EXPECT_GT(sys.metrics().ship_fraction(), 0.3);
}

TEST(EdgeConfig, AllTransactionsLocalClass) {
  SystemConfig cfg;
  cfg.prob_class_a = 1.0;
  cfg.arrival_rate_per_site = 1.5;
  cfg.seed = 43;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::NoLoadSharing));
  run_and_drain(sys, 100.0);
  EXPECT_EQ(sys.metrics().arrivals_class_b, 0u);
  EXPECT_EQ(sys.metrics().aborts_total(), 0u);  // nothing central: no conflicts
}

TEST(EdgeConfig, AllTransactionsGlobalClass) {
  SystemConfig cfg;
  cfg.prob_class_a = 0.0;
  cfg.arrival_rate_per_site = 1.5;
  cfg.seed = 44;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinAverageNsys));
  run_and_drain(sys, 100.0);
  EXPECT_EQ(sys.metrics().arrivals_class_a, 0u);
  EXPECT_DOUBLE_EQ(sys.metrics().ship_fraction(), 0.0);
  EXPECT_EQ(sys.metrics().completions, sys.metrics().completions_class_b);
}

TEST(EdgeConfig, ReadOnlyWorkloadNeverAborts) {
  SystemConfig cfg;
  cfg.prob_write_lock = 0.0;  // shared locks everywhere, no updates
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 45;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::StaticProbability, 0.5));
  run_and_drain(sys, 100.0);
  EXPECT_EQ(sys.metrics().aborts_total(), 0u);
  EXPECT_EQ(sys.metrics().async_updates_sent, 0u);
}

TEST(EdgeConfig, WriteEverythingWorkload) {
  SystemConfig cfg;
  cfg.prob_write_lock = 1.0;
  cfg.arrival_rate_per_site = 1.5;
  cfg.seed = 46;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::StaticProbability, 0.4));
  run_and_drain(sys, 100.0);
  EXPECT_GT(sys.metrics().async_updates_sent, 0u);
}

TEST(EdgeConfig, NoCallIo) {
  SystemConfig cfg;
  cfg.prob_call_io = 0.0;
  cfg.setup_io_time = 0.0;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 47;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinIncomingNsys));
  run_and_drain(sys, 100.0);
}

TEST(EdgeConfig, SingleCallTransactions) {
  SystemConfig cfg;
  cfg.db_calls_per_txn = 1;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 48;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinAverageQueue));
  run_and_drain(sys, 100.0);
}

TEST(EdgeConfig, ManySites) {
  SystemConfig cfg;
  cfg.num_sites = 25;
  cfg.arrival_rate_per_site = 0.8;
  cfg.seed = 49;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinAverageNsys));
  run_and_drain(sys, 60.0);
}

TEST(EdgeConfig, RestartBackoffDelaysReruns) {
  SystemConfig cfg;
  cfg.abort_restart_delay = 0.5;
  cfg.lockspace = 4000;
  cfg.prob_write_lock = 0.6;
  cfg.arrival_rate_per_site = 2.4;
  cfg.seed = 50;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::StaticProbability, 0.5));
  run_and_drain(sys, 100.0);
  EXPECT_GT(sys.metrics().aborts_total(), 0u);  // backoff path exercised
}

TEST(EdgeConfig, TinyLockSpaceStillDrains) {
  SystemConfig cfg;
  cfg.lockspace = 200;  // 20 entities per site: hot but feasible at low rate
  cfg.arrival_rate_per_site = 0.5;
  cfg.seed = 51;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::StaticProbability, 0.3));
  run_and_drain(sys, 150.0);
}

TEST(EdgeConfig, AsymmetricMips) {
  SystemConfig cfg;
  cfg.central_mips = 2.0;  // barely faster than a local site
  cfg.arrival_rate_per_site = 1.0;
  cfg.seed = 52;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinAverageNsys));
  run_and_drain(sys, 100.0);
  // With a weak central complex the strategy should ship very little.
  EXPECT_LT(sys.metrics().ship_fraction(), 0.35);
}

TEST(EdgeConfig, LongDelayHighLoad) {
  SystemConfig cfg;
  cfg.comm_delay = 1.0;
  cfg.arrival_rate_per_site = 2.4;
  cfg.seed = 53;
  HybridSystem sys(cfg, strat(cfg, StrategyKind::MinAverageNsys));
  run_and_drain(sys, 100.0);
}

class EveryStrategyEdge
    : public ::testing::TestWithParam<std::tuple<StrategyKind, int>> {};

TEST_P(EveryStrategyEdge, SingleSiteZeroDelayDrains) {
  const auto [kind, seed] = GetParam();
  SystemConfig cfg;
  cfg.num_sites = 1;
  cfg.comm_delay = 0.0;
  cfg.arrival_rate_per_site = 1.0;
  cfg.seed = static_cast<std::uint64_t>(seed);
  HybridSystem sys(cfg, strat(cfg, kind, kind == StrategyKind::UtilThreshold
                                             ? -0.1
                                             : 0.0));
  run_and_drain(sys, 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EveryStrategyEdge,
    ::testing::Combine(
        ::testing::Values(StrategyKind::NoLoadSharing, StrategyKind::MeasuredRt,
                          StrategyKind::QueueLength, StrategyKind::UtilThreshold,
                          StrategyKind::MinIncomingQueue,
                          StrategyKind::MinAverageNsys),
        ::testing::Values(1, 2)));

}  // namespace
}  // namespace hls
