// Deadlock victim-selection policies (DESIGN.md ablation: requester vs
// youngest-on-cycle).
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config(DeadlockVictim policy) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.deadlock_victim = policy;
  cfg.call_io_time = 0.2;  // slow calls: the two transactions interleave
  return cfg;
}

Transaction two_lock_txn(TxnId id, int site, LockId a, LockId b) {
  Transaction txn;
  txn.id = id;
  txn.cls = TxnClass::A;
  txn.home_site = site;
  txn.locks = {{a, LockMode::Exclusive}, {b, LockMode::Exclusive}};
  txn.call_io = {true, true};
  return txn;
}

TEST(DeadlockPolicy, RequesterPolicyAbortsTheRequester) {
  HybridSystem sys(quiet_config(DeadlockVictim::Requester),
                   std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  sys.inject_transaction(two_lock_txn(2, 0, 6, 5));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  sys.check_invariants();
}

TEST(DeadlockPolicy, YoungestPolicyResolvesSameDeadlock) {
  HybridSystem sys(quiet_config(DeadlockVictim::Youngest),
                   std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  HybridSystem* raw = &sys;
  // Transaction 2 arrives strictly later: with the Youngest policy it must
  // be the victim regardless of who closes the cycle.
  sys.simulator().schedule_at(0.01, [raw] {
    raw->inject_transaction(two_lock_txn(2, 0, 6, 5));
  });
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  // The older transaction (id 1) commits on its first run.
  EXPECT_EQ(m.rt_first_try.count(), 1u);
  EXPECT_EQ(m.rt_rerun.count(), 1u);
  sys.check_invariants();
}

TEST(DeadlockPolicy, YoungestVictimIsTheWaiterNotTheRequester) {
  // Arrange the cycle so the YOUNGER transaction blocks first and the OLDER
  // one closes the cycle: the requester policy would abort the older txn,
  // the youngest policy must abort the younger (waiting) one instead,
  // exercising force-abort of a blocked transaction.
  HybridSystem sys(quiet_config(DeadlockVictim::Youngest),
                   std::make_unique<AlwaysLocalStrategy>());
  HybridSystem* raw = &sys;
  // Old txn: locks 5 then (slowly) 6. Young txn: locks 6 then 5, timed so
  // the young one waits on 5 first, then the old one requests 6 and closes
  // the cycle.
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  sys.simulator().schedule_at(0.02, [raw] {
    raw->inject_transaction(two_lock_txn(2, 0, 6, 5));
  });
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  EXPECT_EQ(m.rt_rerun.count(), 1u);
  sys.check_invariants();
}

TEST(DeadlockPolicy, BothPoliciesDrainUnderContendedLoad) {
  for (DeadlockVictim policy :
       {DeadlockVictim::Requester, DeadlockVictim::Youngest}) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 2.0;
    cfg.lockspace = 2000;
    cfg.prob_write_lock = 0.7;
    cfg.deadlock_victim = policy;
    cfg.seed = 77;
    HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.4, 77));
    sys.enable_arrivals();
    sys.run_for(120.0);
    sys.stop_arrivals();
    sys.drain();
    EXPECT_EQ(sys.live_transactions(), 0);
    EXPECT_EQ(sys.metrics().completions,
              sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
    EXPECT_GT(sys.metrics().aborts[static_cast<int>(AbortCause::Deadlock)], 0u);
    sys.check_invariants();
  }
}

TEST(DeadlockPolicy, CentralDeadlocksHonourThePolicy) {
  SystemConfig cfg = quiet_config(DeadlockVictim::Youngest);
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  auto class_b = [](TxnId id, int site, LockId a, LockId b) {
    Transaction txn;
    txn.id = id;
    txn.cls = TxnClass::B;
    txn.home_site = site;
    txn.locks = {{a, LockMode::Exclusive}, {b, LockMode::Exclusive}};
    txn.call_io = {true, true};
    return txn;
  };
  sys.inject_transaction(class_b(1, 0, 100, 200));
  HybridSystem* raw = &sys;
  sys.simulator().schedule_at(0.01, [raw, class_b] {
    raw->inject_transaction(class_b(2, 1, 200, 100));
  });
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 2u);
  EXPECT_GE(sys.metrics().aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
}

TEST(FindCycle, ReportsMembersInOrder) {
  Simulator sim;
  LockManager lm(sim, "t");
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(2, 20, LockMode::Exclusive, nullptr);
  lm.request(3, 30, LockMode::Exclusive, nullptr);
  lm.request(1, 20, LockMode::Exclusive, [] {});
  lm.request(2, 30, LockMode::Exclusive, [] {});
  // 3 -> 10 closes 3 -> 1 -> 2 -> 3.
  const auto cycle = lm.find_cycle(3, 10);
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle[0], 3u);  // requester first
  EXPECT_EQ(cycle[1], 1u);
  EXPECT_EQ(cycle[2], 2u);
}

TEST(FindCycle, EmptyWhenSafe) {
  Simulator sim;
  LockManager lm(sim, "t");
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  EXPECT_TRUE(lm.find_cycle(2, 10).empty());
}

}  // namespace
}  // namespace hls
