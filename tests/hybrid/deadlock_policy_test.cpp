// Deadlock victim-selection policies (DESIGN.md ablation: requester vs
// youngest-on-cycle).
#include <gtest/gtest.h>

#include <cmath>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config(DeadlockVictim policy) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.deadlock_victim = policy;
  cfg.call_io_time = 0.2;  // slow calls: the two transactions interleave
  return cfg;
}

Transaction two_lock_txn(TxnId id, int site, LockId a, LockId b) {
  Transaction txn;
  txn.id = id;
  txn.cls = TxnClass::A;
  txn.home_site = site;
  txn.locks = {{a, LockMode::Exclusive}, {b, LockMode::Exclusive}};
  txn.call_io = {true, true};
  return txn;
}

TEST(DeadlockPolicy, RequesterPolicyAbortsTheRequester) {
  HybridSystem sys(quiet_config(DeadlockVictim::Requester),
                   std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  sys.inject_transaction(two_lock_txn(2, 0, 6, 5));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  sys.check_invariants();
}

TEST(DeadlockPolicy, YoungestPolicyResolvesSameDeadlock) {
  HybridSystem sys(quiet_config(DeadlockVictim::Youngest),
                   std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  HybridSystem* raw = &sys;
  // Transaction 2 arrives strictly later: with the Youngest policy it must
  // be the victim regardless of who closes the cycle.
  sys.simulator().schedule_at(0.01, [raw] {
    raw->inject_transaction(two_lock_txn(2, 0, 6, 5));
  });
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  // The older transaction (id 1) commits on its first run.
  EXPECT_EQ(m.rt_first_try.count(), 1u);
  EXPECT_EQ(m.rt_rerun.count(), 1u);
  sys.check_invariants();
}

TEST(DeadlockPolicy, YoungestVictimIsTheWaiterNotTheRequester) {
  // Arrange the cycle so the YOUNGER transaction blocks first and the OLDER
  // one closes the cycle: the requester policy would abort the older txn,
  // the youngest policy must abort the younger (waiting) one instead,
  // exercising force-abort of a blocked transaction.
  HybridSystem sys(quiet_config(DeadlockVictim::Youngest),
                   std::make_unique<AlwaysLocalStrategy>());
  HybridSystem* raw = &sys;
  // Old txn: locks 5 then (slowly) 6. Young txn: locks 6 then 5, timed so
  // the young one waits on 5 first, then the old one requests 6 and closes
  // the cycle.
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  sys.simulator().schedule_at(0.02, [raw] {
    raw->inject_transaction(two_lock_txn(2, 0, 6, 5));
  });
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  EXPECT_EQ(m.rt_rerun.count(), 1u);
  sys.check_invariants();
}

TEST(DeadlockPolicy, BothPoliciesDrainUnderContendedLoad) {
  for (DeadlockVictim policy :
       {DeadlockVictim::Requester, DeadlockVictim::Youngest}) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 2.0;
    cfg.lockspace = 2000;
    cfg.prob_write_lock = 0.7;
    cfg.deadlock_victim = policy;
    cfg.seed = 77;
    HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.4, 77));
    sys.enable_arrivals();
    sys.run_for(120.0);
    sys.stop_arrivals();
    sys.drain();
    EXPECT_EQ(sys.live_transactions(), 0);
    EXPECT_EQ(sys.metrics().completions,
              sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
    EXPECT_GT(sys.metrics().aborts[static_cast<int>(AbortCause::Deadlock)], 0u);
    sys.check_invariants();
  }
}

TEST(DeadlockPolicy, CentralDeadlocksHonourThePolicy) {
  SystemConfig cfg = quiet_config(DeadlockVictim::Youngest);
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  auto class_b = [](TxnId id, int site, LockId a, LockId b) {
    Transaction txn;
    txn.id = id;
    txn.cls = TxnClass::B;
    txn.home_site = site;
    txn.locks = {{a, LockMode::Exclusive}, {b, LockMode::Exclusive}};
    txn.call_io = {true, true};
    return txn;
  };
  sys.inject_transaction(class_b(1, 0, 100, 200));
  HybridSystem* raw = &sys;
  sys.simulator().schedule_at(0.01, [raw, class_b] {
    raw->inject_transaction(class_b(2, 1, 200, 100));
  });
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 2u);
  EXPECT_GE(sys.metrics().aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
}

// ---- livelock breaker ----
//
// restart_delay_for adds livelock_backoff * (run_count -
// livelock_backoff_after) to every restart once run_count passes the
// threshold. Pinned by exact equivalence: the victim of a single deadlock
// carries run_count 1, so with threshold 0 its one stall must equal a plain
// abort_restart_delay of the same magnitude — the two whole schedules are
// identical to 1e-9 — and with threshold 1 the breaker must be perfectly
// inert. The cumulative (growing) behavior is pinned by the chaos repro
// regression in tests/core/chaos_test.cpp.

double deadlock_pair_rt_sum(const SystemConfig& cfg) {
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(two_lock_txn(1, 0, 5, 6));
  sys.inject_transaction(two_lock_txn(2, 0, 6, 5));
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 2u);
  EXPECT_GE(sys.metrics().aborts[static_cast<int>(AbortCause::Deadlock)], 1u);
  sys.check_invariants();
  return sys.metrics().rt_all.sum();
}

TEST(LivelockBreaker, PastThresholdStallsExactlyLikeAbortRestartDelay) {
  SystemConfig plain = quiet_config(DeadlockVictim::Requester);
  plain.abort_restart_delay = 0.37;
  plain.livelock_backoff = 0.0;

  SystemConfig breaker = quiet_config(DeadlockVictim::Requester);
  breaker.livelock_backoff_after = 0;  // every rerun is past the threshold
  breaker.livelock_backoff = 0.37;     // x (run_count - 0) = 0.37 on run 1

  const double rt_plain = deadlock_pair_rt_sum(plain);
  const double rt_breaker = deadlock_pair_rt_sum(breaker);
  EXPECT_NEAR(rt_breaker, rt_plain, 1e-9);

  // Sanity: the stall is real — dropping it changes the schedule.
  SystemConfig none = quiet_config(DeadlockVictim::Requester);
  none.livelock_backoff = 0.0;
  EXPECT_GT(std::abs(deadlock_pair_rt_sum(none) - rt_plain), 1e-3);
}

TEST(LivelockBreaker, BelowThresholdIsPerfectlyInert) {
  SystemConfig none = quiet_config(DeadlockVictim::Requester);
  none.livelock_backoff = 0.0;

  // Threshold 1: the victim's run_count of 1 is not > 1, so no stall.
  SystemConfig below = quiet_config(DeadlockVictim::Requester);
  below.livelock_backoff_after = 1;
  below.livelock_backoff = 0.37;

  // Defaults (threshold 20) are equally untouched in non-pathological runs.
  const SystemConfig defaults = quiet_config(DeadlockVictim::Requester);

  const double rt_none = deadlock_pair_rt_sum(none);
  EXPECT_NEAR(deadlock_pair_rt_sum(below), rt_none, 1e-9);
  EXPECT_NEAR(deadlock_pair_rt_sum(defaults), rt_none, 1e-9);
}

TEST(LivelockBreaker, CentralRestartPathHonoursTheBackoff) {
  // Same equivalence through central_abort_rerun / schedule_central_restart:
  // a class B deadlock at the central complex (requester victim).
  auto class_b = [](TxnId id, int site, LockId a, LockId b) {
    Transaction txn;
    txn.id = id;
    txn.cls = TxnClass::B;
    txn.home_site = site;
    txn.locks = {{a, LockMode::Exclusive}, {b, LockMode::Exclusive}};
    txn.call_io = {true, true};
    return txn;
  };
  auto rt_sum = [&class_b](const SystemConfig& cfg) {
    HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
    sys.inject_transaction(class_b(1, 0, 100, 200));
    sys.inject_transaction(class_b(2, 1, 200, 100));
    sys.simulator().run();
    EXPECT_EQ(sys.metrics().completions, 2u);
    EXPECT_GE(sys.metrics().aborts[static_cast<int>(AbortCause::Deadlock)],
              1u);
    sys.check_invariants();
    return sys.metrics().rt_all.sum();
  };
  SystemConfig plain = quiet_config(DeadlockVictim::Requester);
  plain.abort_restart_delay = 0.41;
  plain.livelock_backoff = 0.0;
  SystemConfig breaker = quiet_config(DeadlockVictim::Requester);
  breaker.livelock_backoff_after = 0;
  breaker.livelock_backoff = 0.41;
  EXPECT_NEAR(rt_sum(breaker), rt_sum(plain), 1e-9);
}

TEST(FindCycle, ReportsMembersInOrder) {
  Simulator sim;
  LockManager lm(sim, "t");
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  lm.request(2, 20, LockMode::Exclusive, nullptr);
  lm.request(3, 30, LockMode::Exclusive, nullptr);
  lm.request(1, 20, LockMode::Exclusive, [] {});
  lm.request(2, 30, LockMode::Exclusive, [] {});
  // 3 -> 10 closes 3 -> 1 -> 2 -> 3.
  const auto cycle = lm.find_cycle(3, 10);
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle[0], 3u);  // requester first
  EXPECT_EQ(cycle[1], 1u);
  EXPECT_EQ(cycle[2], 2u);
}

TEST(FindCycle, EmptyWhenSafe) {
  Simulator sim;
  LockManager lm(sim, "t");
  lm.request(1, 10, LockMode::Exclusive, nullptr);
  EXPECT_TRUE(lm.find_cycle(2, 10).empty());
}

}  // namespace
}  // namespace hls
