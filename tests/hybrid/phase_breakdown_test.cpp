// Exact phase attribution: single transactions in an idle system have fully
// deterministic schedules, so every bucket of the phase timeline — not just
// the response-time total — can be asserted to 1e-9 from the configuration
// constants. Each test also checks the phase-sum identity explicitly.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "obs/phase.hpp"
#include "obs/ring_sink.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

using obs::Phase;

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;  // only injected transactions
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

/// Asserts every phase mean of `m` against `expected` (seconds per phase,
/// indexed by obs::Phase) and the sum against the response-time mean.
void expect_phases(const Metrics& m,
                   const std::array<double, obs::kPhaseCount>& expected) {
  double sum = 0.0;
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    EXPECT_NEAR(m.phase_mean(static_cast<Phase>(p)),
                expected[static_cast<std::size_t>(p)], 1e-9)
        << "phase " << obs::phase_name(static_cast<Phase>(p));
    sum += expected[static_cast<std::size_t>(p)];
  }
  EXPECT_NEAR(sum, m.rt_all.mean(), 1e-9);
}

std::array<double, obs::kPhaseCount> phases(double ready_queue,
                                            double cpu_service, double io,
                                            double network, double lock_wait,
                                            double auth, double commit,
                                            double stall) {
  return {ready_queue, cpu_service, io, network, lock_wait, auth, commit, stall};
}

TEST(PhaseBreakdown, LocalClassAExact) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  ASSERT_EQ(sys.metrics().completions, 1u);
  // init 0.075 + call 0.030 CPU; setup 0.035 + call 0.025 I/O; commit 0.080.
  // An idle system has no queueing, no lock contention, and a local commit
  // needs no network leg.
  expect_phases(sys.metrics(),
                phases(0.0, 0.105, 0.060, 0.0, 0.0, 0.0, 0.080, 0.0));
}

TEST(PhaseBreakdown, LocalRerunProfileSkipsIo) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0,
                                    {{5, LockMode::Shared}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  // Read-only and I/O-free: commit drops the 5K async send (0.075) and the
  // only I/O is the setup read.
  expect_phases(sys.metrics(),
                phases(0.0, 0.105, 0.035, 0.0, 0.0, 0.0, 0.075, 0.0));
}

TEST(PhaseBreakdown, ShippedClassAExact) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);
  // CPU: forward 0.015 + central init 0.005 + call 0.002. Network: ship up
  // 0.2 + response leg 0.2. I/O: setup 0.035 + call 0.025. Auth: down 0.2 +
  // home-site check 0.010 + up 0.2. Commit: 0.005 at central MIPS.
  expect_phases(sys.metrics(),
                phases(0.0, 0.022, 0.060, 0.400, 0.0, 0.410, 0.005, 0.0));
}

TEST(PhaseBreakdown, ClassBExactMatchesShippedShape) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::B, 3, {{5, LockMode::Exclusive}}));
  sys.simulator().run();
  ASSERT_EQ(sys.metrics().completions_class_b, 1u);
  expect_phases(sys.metrics(),
                phases(0.0, 0.022, 0.060, 0.400, 0.0, 0.410, 0.005, 0.0));
}

TEST(PhaseBreakdown, LockWaitAndReadyQueueUnderLocalContention) {
  // Two local transactions race for the same CPU and the same exclusive
  // lock; the second one's timeline shows both queueing effects.
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(8);
  sys.add_trace_sink(&ring);
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.inject_transaction(custom_txn(2, TxnClass::A, 0,
                                    {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();

  ASSERT_EQ(sys.metrics().completions, 2u);
  const std::vector<obs::Event> events = ring.events();
  ASSERT_EQ(events.size(), 2u);

  // txn 1 wins the CPU at t=0 but still queues twice behind txn 2's bursts:
  // its call waits 0.040 behind txn 2's init (done 0.150) and its commit
  // waits 0.010 behind txn 2's call (done 0.215). Lock held 0.180 - 0.295.
  const obs::Event& first = events[0];
  EXPECT_EQ(first.txn, 1u);
  EXPECT_NEAR(first.response_time, 0.295, 1e-9);
  EXPECT_NEAR(first.phase[static_cast<int>(Phase::ReadyQueue)], 0.050, 1e-9);
  EXPECT_NEAR(first.phase[static_cast<int>(Phase::LockWait)], 0.0, 1e-9);

  // txn 2: init queues behind txn 1's init (0.075 in ReadyQueue), pays the
  // setup I/O (io_per_call only skips the per-call I/O), finishes its call
  // at 0.215 and then blocks on the lock until txn 1's commit completes at
  // 0.295; its own commit 0.080 follows on the now-idle CPU.
  const obs::Event& second = events[1];
  EXPECT_EQ(second.txn, 2u);
  EXPECT_NEAR(second.phase[static_cast<int>(Phase::ReadyQueue)], 0.075, 1e-9);
  EXPECT_NEAR(second.phase[static_cast<int>(Phase::CpuService)], 0.105, 1e-9);
  EXPECT_NEAR(second.phase[static_cast<int>(Phase::LockWait)], 0.080, 1e-9);
  EXPECT_NEAR(second.phase[static_cast<int>(Phase::Commit)], 0.080, 1e-9);
  EXPECT_NEAR(second.phase[static_cast<int>(Phase::Io)], 0.035, 1e-9);
  EXPECT_NEAR(second.response_time, 0.375, 1e-9);

  double sum = 0.0;
  for (double p : second.phase) {
    sum += p;
  }
  EXPECT_NEAR(sum, second.response_time, 1e-9);
  sys.remove_trace_sink(&ring);
}

TEST(PhaseBreakdown, ShipTimeoutLadderExact) {
  SystemConfig cfg = quiet_config();
  cfg.ship_timeout = 1.0;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 2;
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 0.0, 100.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  obs::RingSink ring(16);
  sys.add_trace_sink(&ring);
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  ASSERT_EQ(sys.metrics().completions, 1u);
  // Stall: the three timeout waits net of work already done — (1 - 0.015) +
  // (3 - 1.020) + (7 - 3.020). ReadyQueue: each reclaim queues the 0.005
  // failure-detector burst ahead of the next forward / the fallback's init.
  // CPU: three forwards (0.045) plus the fallback's full local run (0.105).
  expect_phases(sys.metrics(),
                phases(0.015, 0.150, 0.060, 0.0, 0.0, 0.0, 0.080, 6.945));

  // The sink saw the whole story: three ShipTimeout aborts, the crash at
  // t=0 and the recovery at t=100, and one completion.
  int aborts = 0;
  int faults = 0;
  int completions = 0;
  for (const obs::Event& e : ring.events()) {
    switch (e.kind) {
      case obs::EventKind::Abort:
        EXPECT_EQ(e.cause, AbortCause::ShipTimeout);
        ++aborts;
        break;
      case obs::EventKind::Fault:
        EXPECT_EQ(e.site, -1);
        ++faults;
        break;
      case obs::EventKind::Completion:
        ++completions;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(aborts, 3);
  EXPECT_EQ(faults, 2);
  EXPECT_EQ(completions, 1);
}

TEST(PhaseBreakdown, PhaseQuantilesAreDeterministic) {
  SystemConfig cfg;
  cfg.seed = 11;
  cfg.arrival_rate_per_site = 1.5;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.enable_arrivals();
  sys.run_for(50.0);
  sys.stop_arrivals();
  sys.drain();

  const Metrics& m = sys.metrics();
  ASSERT_GT(m.completions, 0u);
  // Quantiles come from fixed-bin histograms: monotone in q and bounded by
  // the response-time quantile of the same run.
  const double p50 = m.phase_quantile(Phase::CpuService, 0.50);
  const double p95 = m.phase_quantile(Phase::CpuService, 0.95);
  const double p99 = m.phase_quantile(Phase::CpuService, 0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, m.rt_histogram.quantile(0.99) + 1e-12);
}

}  // namespace
}  // namespace hls
