// Class B via remote function calls (ClassBMode::RemoteCalls) — the §3
// alternative the paper mentions but does not analyze.
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig rfc_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.class_b_mode = ClassBMode::RemoteCalls;
  return cfg;
}

Transaction class_b(TxnId id, int site, std::vector<LockNeed> locks) {
  Transaction txn;
  txn.id = id;
  txn.cls = TxnClass::B;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), true);
  return txn;
}

TEST(RfcMode, SingleCallExactResponseTime) {
  HybridSystem sys(rfc_config(), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(class_b(1, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();
  // home init 0.075 + setup 0.035 + call cpu 0.03
  // + D 0.2 + remote serve 0.001 + io 0.025 + D 0.2 + reply cpu 0.002
  // + commit cpu 0.075 + D 0.2 + central commit 0.005
  // + auth (0.2 + 0.01 + 0.2) + response leg 0.2.
  const double expected = 0.075 + 0.035 + 0.03 + 0.2 + 0.001 + 0.025 + 0.2 +
                          0.002 + 0.075 + 0.2 + 0.005 + (0.2 + 0.01 + 0.2) +
                          0.2;
  ASSERT_EQ(sys.metrics().completions_class_b, 1u);
  EXPECT_NEAR(sys.metrics().rt_class_b.mean(), expected, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
}

TEST(RfcMode, EachCallPaysARoundTrip) {
  HybridSystem sys(rfc_config(), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(class_b(1, 0,
                                 {{5, LockMode::Shared},
                                  {3300, LockMode::Shared},
                                  {6600, LockMode::Shared}}));
  HybridSystem one_call(rfc_config(), std::make_unique<AlwaysLocalStrategy>());
  one_call.inject_transaction(class_b(1, 0, {{5, LockMode::Shared}}));
  sys.simulator().run();
  one_call.simulator().run();
  const double delta =
      sys.metrics().rt_class_b.mean() - one_call.metrics().rt_class_b.mean();
  // Two extra calls at >= 0.4 s round trip each.
  EXPECT_GT(delta, 0.8);
}

TEST(RfcMode, ShippingBeatsRemoteCallsForClassB) {
  // The quantitative reason the paper ships class B instead.
  SystemConfig ship_cfg = rfc_config();
  ship_cfg.class_b_mode = ClassBMode::Ship;
  HybridSystem shipped(ship_cfg, std::make_unique<AlwaysLocalStrategy>());
  shipped.inject(TxnClass::B, 0);
  shipped.simulator().run();

  HybridSystem rfc(rfc_config(), std::make_unique<AlwaysLocalStrategy>());
  rfc.inject(TxnClass::B, 0);
  rfc.simulator().run();

  EXPECT_LT(shipped.metrics().rt_class_b.mean(),
            rfc.metrics().rt_class_b.mean() / 3.0);
}

TEST(RfcMode, InvalidationForcesRerunFromHome) {
  SystemConfig cfg = rfc_config();
  cfg.call_io_time = 0.5;  // slow calls: wide invalidation window
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(class_b(2, 5,
                                 {{5, LockMode::Exclusive},
                                  {3300, LockMode::Exclusive},
                                  {6600, LockMode::Exclusive}}));
  // A local class A transaction updates entity 5 while the remote-call
  // transaction is mid-flight.
  Transaction local;
  local.id = 1;
  local.cls = TxnClass::A;
  local.home_site = 0;
  local.locks = {{5, LockMode::Exclusive}};
  local.call_io = {true};
  sys.inject_transaction(local);
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.aborts[static_cast<int>(AbortCause::CentralInvalidated)], 1u);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
  sys.check_invariants();
}

TEST(RfcMode, StochasticLoadDrainsCleanly) {
  SystemConfig cfg = rfc_config();
  cfg.arrival_rate_per_site = 0.8;  // remote calls are slow; keep load modest
  cfg.seed = 61;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.3, 61));
  sys.enable_arrivals();
  sys.run_for(120.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions,
            sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
  EXPECT_EQ(sys.central_resident(), 0);
  sys.check_invariants();
}

TEST(RfcMode, ClassAUnaffectedByMode) {
  HybridSystem sys(rfc_config(), std::make_unique<AlwaysLocalStrategy>());
  Transaction txn;
  txn.id = 1;
  txn.cls = TxnClass::A;
  txn.home_site = 0;
  txn.locks = {{5, LockMode::Exclusive}};
  txn.call_io = {true};
  sys.inject_transaction(txn);
  sys.simulator().run();
  const double expected = 0.075 + 0.035 + 0.055 + 0.080;  // as in Ship mode
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), expected, 1e-9);
}

}  // namespace
}  // namespace hls
