// Exact-lifecycle tests: a single transaction in an otherwise idle system
// has a fully deterministic schedule, so response times can be asserted to
// numeric precision from the configuration constants.
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;  // only injected transactions
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

TEST(SingleTxn, LocalClassAExactResponseTime) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // init 75K/1M + setup 0.035 + call (30K/1M + 0.025) + commit (75K+5K)/1M.
  const double expected = 0.075 + 0.035 + (0.030 + 0.025) + 0.080;
  ASSERT_EQ(sys.metrics().completions, 1u);
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), expected, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
}

TEST(SingleTxn, ReadOnlyLocalSkipsAsyncSendPathlength) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Shared}}));
  sys.simulator().run();
  const double expected = 0.075 + 0.035 + 0.055 + 0.075;  // no 5K async send
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), expected, 1e-9);
  EXPECT_EQ(sys.metrics().async_updates_sent, 0u);
}

TEST(SingleTxn, TenCallBaselineResponseTime) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  std::vector<LockNeed> locks;
  for (LockId i = 0; i < 10; ++i) {
    locks.push_back({i, LockMode::Shared});
  }
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, std::move(locks)));
  sys.simulator().run();
  const double expected = 0.075 + 0.035 + 10 * 0.055 + 0.075;
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), expected, 1e-9);
}

TEST(SingleTxn, ShippedClassAExactResponseTime) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // forward 15K/1M + up 0.2 + init 75K/15M + setup 0.035 + call (2ms + 25ms)
  // + commit 75K/15M + auth (down 0.2 + 10K/1M + up 0.2) + response leg 0.2.
  const double expected = 0.015 + 0.2 + 0.005 + 0.035 + (0.002 + 0.025) +
                          0.005 + (0.2 + 0.010 + 0.2) + 0.2;
  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);
  EXPECT_NEAR(sys.metrics().rt_shipped_a.mean(), expected, 1e-9);
  EXPECT_EQ(sys.metrics().auth_rounds, 1u);
}

TEST(SingleTxn, ClassBExactResponseTimeSingleSiteAuth) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::B, 3, {{5, LockMode::Exclusive}}));  // owner site 0
  sys.simulator().run();
  const double expected = 0.015 + 0.2 + 0.005 + 0.035 + 0.027 + 0.005 +
                          (0.2 + 0.010 + 0.2) + 0.2;
  ASSERT_EQ(sys.metrics().completions_class_b, 1u);
  EXPECT_NEAR(sys.metrics().rt_class_b.mean(), expected, 1e-9);
}

TEST(SingleTxn, ClassBMultiSiteAuthRunsInParallel) {
  const SystemConfig cfg = quiet_config();
  const std::uint32_t part = cfg.partition_size();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Locks mastered at three different sites: authentication messages fan out
  // simultaneously, so the round trip costs one round trip, not three.
  sys.inject_transaction(custom_txn(1, TxnClass::B, 0,
                                    {{0 * part + 1, LockMode::Exclusive},
                                     {1 * part + 1, LockMode::Exclusive},
                                     {2 * part + 1, LockMode::Exclusive}}));
  sys.simulator().run();
  const double expected = 0.015 + 0.2 + 0.005 + 0.035 + 3 * 0.027 + 0.005 +
                          (0.2 + 0.010 + 0.2) + 0.2;
  EXPECT_NEAR(sys.metrics().rt_class_b.mean(), expected, 1e-9);
  EXPECT_EQ(sys.metrics().auth_rounds, 1u);
}

TEST(SingleTxn, CoherenceCycleCompletesAfterLocalCommit) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{7, LockMode::Exclusive}}));

  // Run to just past local commit (t = 0.245): coherence raised, update
  // still in flight toward the central site (arrives at 0.445).
  sys.simulator().run_until(0.3);
  EXPECT_EQ(sys.metrics().completions, 1u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 1u);
  EXPECT_EQ(sys.metrics().async_updates_sent, 1u);

  // Drain: apply at central, acknowledgement clears the coherence field.
  sys.simulator().run();
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 0u);
  EXPECT_EQ(sys.local_locks(0).pending_coherence_entities(), 0u);
}

TEST(SingleTxn, LocalCommitDoesNotWaitForAcknowledgement) {
  // The whole point of the hybrid protocol: a purely local transaction
  // completes in well under one communication delay.
  SystemConfig cfg = quiet_config();
  cfg.comm_delay = 5.0;  // brutal WAN latency
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{7, LockMode::Exclusive}}));
  sys.simulator().run_until(1.0);
  EXPECT_EQ(sys.metrics().completions, 1u);
  EXPECT_LT(sys.metrics().rt_local_a.mean(), 0.3);
}

TEST(SingleTxn, LocksReleasedAfterEverything) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject(TxnClass::A, 2);
  sys.inject(TxnClass::B, 4);
  sys.simulator().run();
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).locks_held(), 0u);
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
  sys.check_invariants();
}

TEST(SingleTxn, ResidencyCountersReturnToZero) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject(TxnClass::A, 1);
  sys.inject(TxnClass::B, 2);
  sys.simulator().run();
  EXPECT_EQ(sys.central_resident(), 0);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_resident(s), 0);
    EXPECT_EQ(sys.shipped_in_flight(s), 0);
  }
}

TEST(SingleTxn, RerunWouldSkipIo) {
  // call_io flags all false behave like a rerun's I/O-free profile.
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0,
                                    {{5, LockMode::Shared}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  const double expected = 0.075 + 0.035 + 0.030 + 0.075;  // no 25 ms call I/O
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), expected, 1e-9);
}

TEST(SingleTxn, StateViewReflectsIdleSystem) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  const SystemStateView v = sys.make_state_view(0);
  EXPECT_EQ(v.local_cpu_queue, 0);
  EXPECT_EQ(v.local_num_txns, 0);
  EXPECT_EQ(v.central_num_txns, 0);
  EXPECT_EQ(v.local_locks_held, 0);
}

TEST(SingleTxn, IdealStateInfoSeesCentralInstantly) {
  SystemConfig cfg = quiet_config();
  cfg.ideal_state_info = true;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject(TxnClass::B, 0);
  sys.simulator().run_until(0.5);  // class B resident at central
  const SystemStateView v = sys.make_state_view(3);
  EXPECT_EQ(v.central_num_txns, 1);
  EXPECT_DOUBLE_EQ(v.central_info_age, 0.0);
}

TEST(SingleTxn, DelayedStateInfoLagsWithoutMessages) {
  const SystemConfig cfg = quiet_config();  // ideal_state_info = false
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject(TxnClass::B, 0);
  sys.simulator().run_until(0.5);
  // Site 7 exchanged no messages with the central site: its view is stale.
  const SystemStateView v = sys.make_state_view(7);
  EXPECT_EQ(v.central_num_txns, 0);
  EXPECT_GT(v.central_info_age, 0.4);
}

}  // namespace
}  // namespace hls
