// TxnArena: pooled live-transaction storage. The critical property is that
// slot reuse can never resurrect a completed transaction for a stale
// callback: ids are never reused by the factory, so a stale (TxnId, epoch)
// pair either misses in the id index or fails the epoch compare — the exact
// check HybridSystem::find performs.
#include "hybrid/txn_arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <utility>
#include <vector>

#include "util/random.hpp"

namespace hls {
namespace {

// Mirrors HybridSystem::find: a scheduled callback's captured (id, epoch)
// resolves only while that exact attempt is live.
Transaction* find(const TxnArena& arena, TxnId id, std::uint64_t epoch) {
  Transaction* txn = arena.lookup(id);
  if (txn == nullptr || txn->epoch != epoch) {
    return nullptr;
  }
  return txn;
}

TxnId admit(TxnArena& arena, TxnId id, std::uint64_t epoch = 0) {
  Transaction* txn = arena.checkout();
  txn->id = id;
  txn->epoch = epoch;
  arena.commit(txn);
  return id;
}

TEST(TxnArena, CheckoutCommitLookupRelease) {
  TxnArena arena;
  EXPECT_EQ(arena.live_count(), 0u);
  EXPECT_EQ(arena.lookup(1), nullptr);

  admit(arena, 1);
  ASSERT_NE(arena.lookup(1), nullptr);
  EXPECT_EQ(arena.lookup(1)->id, 1u);
  EXPECT_EQ(arena.live_count(), 1u);

  arena.release(1);
  EXPECT_EQ(arena.lookup(1), nullptr);
  EXPECT_EQ(arena.live_count(), 0u);
}

TEST(TxnArena, ReusedSlotRejectsStaleId) {
  TxnArena arena;
  admit(arena, 1);
  Transaction* first = arena.lookup(1);
  arena.release(1);

  // Fresh ids only (the factory never reuses one): the recycled slot hosts
  // txn 2, and the stale id misses even though the storage is the same.
  admit(arena, 2);
  Transaction* second = arena.lookup(2);
  EXPECT_EQ(second, first);  // slot was recycled...
  EXPECT_EQ(arena.lookup(1), nullptr);  // ...but the old id is gone
}

TEST(TxnArena, StaleEpochRejectedAfterRerun) {
  TxnArena arena;
  admit(arena, 7, /*epoch=*/0);
  Transaction* txn = arena.lookup(7);
  ASSERT_NE(txn, nullptr);

  // A callback armed during attempt 0 ...
  const TxnId stale_id = txn->id;
  const std::uint64_t stale_epoch = txn->epoch;
  EXPECT_EQ(find(arena, stale_id, stale_epoch), txn);

  // ... must be dropped once the abort/rerun path bumps the epoch.
  ++txn->epoch;
  EXPECT_EQ(find(arena, stale_id, stale_epoch), nullptr);
  EXPECT_EQ(find(arena, stale_id, stale_epoch + 1), txn);
}

TEST(TxnArena, SlotReuseStressRejectsEveryStaleCallback) {
  TxnArena arena;
  Rng rng(17);
  // Retired (id, epoch) pairs play the role of stale scheduled callbacks.
  std::vector<std::pair<TxnId, std::uint64_t>> stale;
  std::map<TxnId, std::uint64_t> live;  // reference: id -> current epoch
  TxnId next_id = 1;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.45 || live.empty()) {
      admit(arena, next_id, 0);
      live[next_id] = 0;
      ++next_id;
    } else if (roll < 0.65) {
      // Rerun a random live transaction: its pre-bump pair goes stale.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      Transaction* txn = arena.lookup(it->first);
      ASSERT_NE(txn, nullptr);
      stale.emplace_back(txn->id, txn->epoch);
      ++txn->epoch;
      ++it->second;
    } else {
      // Complete a random live transaction; its slot becomes reusable.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      stale.emplace_back(it->first, it->second);
      arena.release(it->first);
      live.erase(it);
    }
    ASSERT_EQ(arena.live_count(), live.size());
  }

  // Every live pair resolves; every stale pair is rejected.
  for (const auto& [id, epoch] : live) {
    Transaction* txn = find(arena, id, epoch);
    ASSERT_NE(txn, nullptr);
    EXPECT_EQ(txn->id, id);
  }
  for (const auto& [id, epoch] : stale) {
    EXPECT_EQ(find(arena, id, epoch), nullptr) << "stale id " << id;
  }
}

TEST(TxnArena, ForEachVisitsExactlyTheLiveSet) {
  TxnArena arena;
  for (TxnId id = 1; id <= 10; ++id) {
    admit(arena, id);
  }
  for (TxnId id = 2; id <= 10; id += 2) {
    arena.release(id);
  }
  std::vector<TxnId> seen;
  arena.for_each([&](const Transaction& txn) { seen.push_back(txn.id); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<TxnId>{1, 3, 5, 7, 9}));
}

TEST(TxnArena, DrainsToZeroAndStaysReusable) {
  TxnArena arena;
  Rng rng(5);
  // Several admit-all / release-all waves over the same slots: the drained
  // arena must always return to zero with every id rejected, and keep
  // working afterwards (the drain obligation for pooled storage).
  TxnId next_id = 1;
  for (int wave = 0; wave < 8; ++wave) {
    std::vector<TxnId> ids;
    const int n = 1 + static_cast<int>(rng.next_below(200));
    for (int i = 0; i < n; ++i) {
      ids.push_back(admit(arena, next_id++));
    }
    EXPECT_EQ(arena.live_count(), ids.size());
    for (const TxnId id : ids) {
      arena.release(id);
    }
    EXPECT_EQ(arena.live_count(), 0u);
    std::size_t visited = 0;
    arena.for_each([&](const Transaction&) { ++visited; });
    EXPECT_EQ(visited, 0u);
    for (const TxnId id : ids) {
      EXPECT_EQ(arena.lookup(id), nullptr);
    }
  }
}

TEST(TxnArena, RecycledSlotStartsFromFreshState) {
  TxnArena arena;
  admit(arena, 1);
  Transaction* txn = arena.lookup(1);
  txn->run_count = 3;
  txn->epoch = 3;
  txn->marked_abort = true;
  txn->locks.push_back({5, LockMode::Exclusive});
  arena.release(1);

  admit(arena, 2);
  Transaction* reused = arena.lookup(2);
  ASSERT_EQ(reused, txn);  // same slot
  EXPECT_EQ(reused->run_count, 0);
  EXPECT_EQ(reused->epoch, 0u);
  EXPECT_FALSE(reused->marked_abort);
  EXPECT_TRUE(reused->locks.empty());
}

}  // namespace
}  // namespace hls
