// Fault-injection behavior of HybridSystem: exact timeout/retry/fallback
// timing, crash + recovery of the central complex and of local sites, backlog
// replay, failure-aware routing, and drain/determinism under faults.
//
// The exact-timing tests follow the single_txn_test recipe: one transaction
// in an otherwise idle system, response time asserted to 1e-9 from the
// configuration constants.
#include <gtest/gtest.h>

#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"
#include "routing/failure_aware.hpp"
#include "util/random.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;  // only injected transactions
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

// Full first-run cost of a one-call exclusive local transaction; a
// crash/timeout restart pays the same (its data is no longer memory-resident).
constexpr double kLocalXCost = 0.075 + 0.035 + (0.030 + 0.025) + 0.080;

// Central-side cost of a one-call exclusive shipped transaction from
// start-of-run to completion at the home site: init, setup I/O, call, commit,
// authentication round trip, response leg.
constexpr double kCentralRunCost =
    0.005 + 0.035 + (0.002 + 0.025) + 0.005 + (0.2 + 0.010 + 0.2) + 0.2;

TEST(FaultInjection, ShipTimeoutLadderFallsBackToLocalExactTiming) {
  SystemConfig cfg = quiet_config();
  cfg.ship_timeout = 1.0;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 2;
  // Central is down for the whole timeout ladder.
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 0.0, 100.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // Timeouts fire at t = 1, 1+2, 1+2+4 = 7; the third exhausts the retry
  // budget and the home site reruns the transaction locally — behind the
  // failure detector's 0.005 s hold-expiry burst on the same CPU — paying
  // the I/O again. The three dead shipped copies plus the fallback's
  // asynchronous update replay from the central backlog at recovery
  // (t = 100).
  ASSERT_EQ(sys.metrics().completions, 1u);
  EXPECT_EQ(sys.metrics().ship_timeouts, 3u);
  EXPECT_EQ(sys.metrics().ship_retries, 2u);
  EXPECT_EQ(sys.metrics().ship_fallbacks, 1u);
  EXPECT_EQ(sys.metrics().aborts[static_cast<int>(AbortCause::ShipTimeout)], 3u);
  EXPECT_EQ(sys.metrics().completions_local_a, 1u);  // fallback books as local
  EXPECT_EQ(sys.metrics().completions_shipped_a, 0u);
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), 7.0 + 0.005 + kLocalXCost, 1e-9);
  EXPECT_EQ(sys.metrics().central_crashes, 1u);
  EXPECT_EQ(sys.metrics().central_recoveries, 1u);
  EXPECT_EQ(sys.metrics().backlog_replayed, 4u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(5), 0u);  // update acknowledged
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, ShipTimeoutJitterLadderExactTiming) {
  SystemConfig cfg = quiet_config();
  cfg.seed = 3;
  cfg.ship_timeout = 1.0;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 1;
  cfg.ship_jitter = 0.5;
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 0.0, 100.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());

  // Replica of the dedicated jitter stream, reconstructed with the
  // constructor's documented fork order: num_sites arrival forks off the
  // root, the two fault-schedule forks (the schedule is non-empty), then
  // the jitter fork. Each armed timer draws exactly once.
  Rng root(cfg.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  for (int s = 0; s < cfg.num_sites; ++s) {
    (void)root.fork();  // per-site arrival process
  }
  (void)root.fork();  // FaultSchedule expansion
  (void)root.fork();  // link fault-stream parent
  Rng jitter = root.fork();
  const double u0 = jitter.next_double();
  const double u1 = jitter.next_double();

  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // Timer i sleeps ship_timeout * backoff^i * (1 + jitter * u_i): the first
  // timeout lands at t1, the retry's at t1 + 2 * (1 + 0.5 * u1), which
  // exhausts the budget and falls back to the local rerun behind the 0.005 s
  // hold-expiry burst — the fixed-backoff ladder shifted by the two draws.
  const double t1 = 1.0 * (1.0 + 0.5 * u0);
  const double t2 = t1 + 2.0 * (1.0 + 0.5 * u1);
  ASSERT_EQ(sys.metrics().completions, 1u);
  EXPECT_EQ(sys.metrics().ship_timeouts, 2u);
  EXPECT_EQ(sys.metrics().ship_retries, 1u);
  EXPECT_EQ(sys.metrics().ship_fallbacks, 1u);
  EXPECT_EQ(sys.metrics().completions_local_a, 1u);
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), t2 + 0.005 + kLocalXCost, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, ShipTimeoutRetrySucceedsOnceCentralRecovers) {
  SystemConfig cfg = quiet_config();
  cfg.ship_timeout = 1.0;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 2;
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 0.0, 2.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // The first copy parks in the central backlog and is reclaimed by the
  // t = 1 timeout; the retry parks too, survives (its epoch is current), and
  // starts when recovery replays the backlog at t = 2. The rerun lost its
  // memory residency, so the central run pays the setup and call I/O. The
  // second timer (t = 3) finds the transaction completed and dies.
  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);
  EXPECT_EQ(sys.metrics().ship_timeouts, 1u);
  EXPECT_EQ(sys.metrics().ship_retries, 1u);
  EXPECT_EQ(sys.metrics().ship_fallbacks, 0u);
  EXPECT_NEAR(sys.metrics().rt_shipped_a.mean(), 2.0 + kCentralRunCost, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, CentralCrashMidRunRestartsAtRecoveryExactTiming) {
  SystemConfig cfg = quiet_config();
  // No ship timeout: recovery alone restarts the resident transaction.
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 0.5, 1.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // Fault-free the transaction would finish at 0.897; the crash at t = 0.5
  // catches it mid-authentication (the home site granted the hold at 0.497;
  // failure-detector cleanup expires it, and the in-flight ack replays as a
  // dead letter). It restarts when the central complex recovers at t = 1.5
  // and pays the full central run again.
  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);
  EXPECT_EQ(sys.metrics().aborts[static_cast<int>(AbortCause::Crash)], 1u);
  EXPECT_EQ(sys.metrics().central_crashes, 1u);
  EXPECT_EQ(sys.metrics().central_recoveries, 1u);
  EXPECT_NEAR(sys.metrics().rt_shipped_a.mean(), 1.5 + kCentralRunCost, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, SiteCrashRestartsLocalTransactionAtRecoveryExactTiming) {
  SystemConfig cfg = quiet_config();
  cfg.faults.windows.push_back({FaultKind::SiteOutage, 2, 0.1, 1.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  std::vector<LockNeed> locks;
  for (LockId i = 0; i < 10; ++i) {
    locks.push_back({i, LockMode::Shared});
  }
  sys.inject_transaction(custom_txn(1, TxnClass::A, 2, std::move(locks)));
  sys.simulator().run();

  // Crash at t = 0.1 (mid-setup-I/O), restart at recovery t = 1.1 with the
  // full first-run cost of the read-only ten-call transaction.
  const double run_cost = 0.075 + 0.035 + 10 * 0.055 + 0.075;
  ASSERT_EQ(sys.metrics().completions_local_a, 1u);
  EXPECT_EQ(sys.metrics().aborts[static_cast<int>(AbortCause::Crash)], 1u);
  EXPECT_EQ(sys.metrics().site_crashes, 1u);
  EXPECT_EQ(sys.metrics().site_recoveries, 1u);
  EXPECT_NEAR(sys.metrics().rt_local_a.mean(), 1.1 + run_cost, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, AsyncUpdateBacklogsThroughOutageAndCoherenceDrains) {
  SystemConfig cfg = quiet_config();
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 0.0, 1.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{7, LockMode::Exclusive}}));

  // The local commit at 0.245 raises the coherence count and ships the
  // update; it arrives at the crashed central and parks in the backlog.
  sys.simulator().run_until(0.5);
  EXPECT_EQ(sys.metrics().completions, 1u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 1u);
  EXPECT_FALSE(sys.central_up());

  // Recovery replays the update; the acknowledgement clears the count.
  sys.simulator().run();
  EXPECT_TRUE(sys.central_up());
  EXPECT_EQ(sys.metrics().backlog_replayed, 1u);
  EXPECT_EQ(sys.local_locks(0).coherence_count(7), 0u);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, LinkOutageDelaysShippedTransactionExactly) {
  SystemConfig cfg = quiet_config();
  // Outage covers the forward ship message (sent at t = 0.015): it holds in
  // the link until recovery at t = 1 and arrives one link delay later.
  cfg.faults.windows.push_back({FaultKind::LinkOutage, 0, 0.01, 0.99, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  // Fault-free arrival at central would be 0.215; held, it arrives at 1.2
  // and the central run proceeds unchanged from there. No abort happened, so
  // this is still the (I/O-paying) first run.
  ASSERT_EQ(sys.metrics().completions_shipped_a, 1u);
  EXPECT_EQ(sys.metrics().aborts_total(), 0u);
  EXPECT_NEAR(sys.metrics().rt_shipped_a.mean(), 1.2 + kCentralRunCost, 1e-9);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

TEST(FaultInjection, FailureAwareRoutingDegradesToLocalAndRecovers) {
  SystemConfig cfg = quiet_config();
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 1.0, 2.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<FailureAwareStrategy>(
                            std::make_unique<AlwaysCentralStrategy>()));

  // Before the outage the wrapped strategy decides: shipped.
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run_until(1.5);
  EXPECT_EQ(sys.metrics().completions_shipped_a, 1u);

  // During the outage the wrapper overrides to local — no timeout ladder.
  EXPECT_FALSE(sys.make_state_view(0).central_reachable);
  sys.inject_transaction(
      custom_txn(2, TxnClass::A, 0, {{6, LockMode::Exclusive}}));
  sys.simulator().run_until(2.5);
  EXPECT_EQ(sys.metrics().completions_local_a, 1u);

  // After recovery, control returns to the wrapped strategy: shipped again.
  sys.simulator().run_until(3.5);
  EXPECT_TRUE(sys.make_state_view(0).central_reachable);
  sys.inject_transaction(
      custom_txn(3, TxnClass::A, 0, {{8, LockMode::Exclusive}}));
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions_shipped_a, 2u);
  EXPECT_EQ(sys.metrics().shipped_class_a, 2u);
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

// Drain test under load: arrivals run through a central outage, a site
// outage, a link outage, and a lossy degraded period; after stopping
// arrivals everything drains to zero and the strengthened invariants hold at
// every step along the way.
TEST(FaultInjection, LoadedRunWithCrashesDrainsCompletely) {
  SystemConfig cfg;
  cfg.num_sites = 4;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 11;
  cfg.ship_timeout = 0.8;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 1;
  cfg.faults.windows.push_back({FaultKind::CentralOutage, -1, 2.0, 1.5, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::SiteOutage, 1, 4.0, 1.0, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::LinkOutage, 0, 5.5, 0.5, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::LinkDegrade, -1, 6.5, 1.0, 2.0, 0.1});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  sys.enable_arrivals();
  for (int step = 0; step < 32; ++step) {
    sys.run_for(0.25);
    sys.check_invariants();  // exact residency cross-checks at every step
  }
  sys.stop_arrivals();
  sys.drain();
  sys.check_invariants();

  const Metrics& m = sys.metrics();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(m.central_crashes, 1u);
  EXPECT_EQ(m.central_recoveries, 1u);
  EXPECT_EQ(m.site_crashes, 1u);
  EXPECT_EQ(m.site_recoveries, 1u);
  EXPECT_GT(m.ship_timeouts, 0u);  // the 1.5 s outage outlasts the 0.8 s timer
  EXPECT_GT(m.backlog_replayed, 0u);
  EXPECT_GT(m.arrivals_rejected, 0u);  // site 1 rejects during its outage
  EXPECT_EQ(m.completions,
            m.completions_local_a + m.completions_shipped_a + m.completions_class_b);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_resident(s), 0);
    EXPECT_EQ(sys.shipped_in_flight(s), 0);
    EXPECT_EQ(sys.local_locks(s).locks_held(), 0u);
  }
  EXPECT_EQ(sys.central_resident(), 0);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
}

// Two same-seed runs of a faulted configuration (scheduled windows plus
// random link outages plus message loss) are bit-identical.
TEST(FaultInjection, FaultedRunsAreDeterministic) {
  auto fingerprint = [] {
    SystemConfig cfg;
    cfg.num_sites = 4;
    cfg.arrival_rate_per_site = 2.0;
    cfg.seed = 7;
    cfg.ship_timeout = 0.8;
    cfg.ship_max_retries = 1;
    cfg.faults.windows.push_back(
        {FaultKind::CentralOutage, -1, 2.0, 1.0, 1.0, 0.0});
    cfg.faults.windows.push_back(
        {FaultKind::LinkDegrade, -1, 4.0, 1.0, 3.0, 0.2});
    cfg.faults.random_link_outage_rate = 0.2;
    cfg.faults.random_link_outage_mean = 0.5;
    cfg.faults.random_horizon = 6.0;
    HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
    sys.enable_arrivals();
    sys.run_for(7.0);
    sys.stop_arrivals();
    sys.drain();
    sys.check_invariants();
    const Metrics& m = sys.metrics();
    EXPECT_GT(m.completions, 0u);
    return std::vector<double>{
        m.rt_all.mean(),  // bit-exact, not approximate, under determinism
        static_cast<double>(m.completions),
        static_cast<double>(m.ship_timeouts),
        static_cast<double>(m.aborts_total()),
        static_cast<double>(m.backlog_replayed),
        static_cast<double>(m.arrivals_rejected),
    };
  };
  const std::vector<double> first = fingerprint();
  const std::vector<double> second = fingerprint();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace hls
