// SystemStateView correctness: the numbers the routing strategies act on
// must mirror the true system state (locally) and the piggybacked snapshot
// protocol (centrally).
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

Transaction txn_at(TxnId id, int site, LockId lock) {
  Transaction t;
  t.id = id;
  t.cls = TxnClass::A;
  t.home_site = site;
  t.locks = {{lock, LockMode::Exclusive}};
  t.call_io = {true};
  return t;
}

TEST(StateView, LocalCountsTrackInjections) {
  HybridSystem sys(quiet_config(), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(txn_at(1, 0, 5));
  sys.inject_transaction(txn_at(2, 0, 6));
  sys.inject_transaction(txn_at(3, 0, 7));
  // Both transactions are queued at the CPU immediately after injection.
  const SystemStateView v = sys.make_state_view(0);
  EXPECT_EQ(v.local_num_txns, 3);
  EXPECT_EQ(v.local_cpu_queue, 3);
  EXPECT_EQ(sys.make_state_view(1).local_num_txns, 0);
}

TEST(StateView, LocalLockCountVisibleMidTransaction) {
  HybridSystem sys(quiet_config(), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(txn_at(1, 2, 2 * SystemConfig{}.partition_size() + 5));
  // After init+setup+call CPU (~0.14 s) the lock is held; during the call
  // I/O the CPU is idle but the lock count is 1.
  sys.simulator().run_until(0.15);
  const SystemStateView v = sys.make_state_view(2);
  EXPECT_EQ(v.local_locks_held, 1);
  EXPECT_EQ(v.local_cpu_queue, 0);  // in I/O
  EXPECT_EQ(v.local_num_txns, 1);
  sys.simulator().run();
  EXPECT_EQ(sys.make_state_view(2).local_locks_held, 0);
}

TEST(StateView, ShippedInFlightCountsOnlyThisSite) {
  HybridSystem sys(quiet_config(), std::make_unique<AlwaysCentralStrategy>());
  sys.inject(TxnClass::A, 0);
  sys.inject(TxnClass::A, 0);
  sys.inject(TxnClass::A, 3);
  const SystemStateView v0 = sys.make_state_view(0);
  const SystemStateView v3 = sys.make_state_view(3);
  EXPECT_EQ(v0.shipped_in_flight, 2);
  EXPECT_EQ(v3.shipped_in_flight, 1);
  sys.simulator().run();
  EXPECT_EQ(sys.make_state_view(0).shipped_in_flight, 0);
}

TEST(StateView, LastResponseTimesFeedTheView) {
  HybridSystem sys(quiet_config(), std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(txn_at(1, 0, 5));
  sys.simulator().run();
  const SystemStateView v = sys.make_state_view(0);
  EXPECT_NEAR(v.last_local_rt, 0.245, 1e-9);
  EXPECT_DOUBLE_EQ(v.last_shipped_rt, 0.0);  // nothing shipped yet
}

TEST(StateView, SnapshotAgeDropsAfterCentralMessage) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.run_for(10.0);
  EXPECT_NEAR(sys.make_state_view(0).central_info_age, 10.0, 1e-9);
  // A class B transaction from site 0 makes the central site talk to it
  // (auth request + commit message); the snapshot age resets.
  sys.inject_transaction([&] {
    Transaction t;
    t.id = 50;
    t.cls = TxnClass::B;
    t.home_site = 0;
    t.locks = {{5, LockMode::Exclusive}};
    t.call_io = {true};
    return t;
  }());
  sys.simulator().run();
  const double age = sys.make_state_view(0).central_info_age;
  EXPECT_LT(age, 1.0);
  EXPECT_GT(age, 0.0);
}

TEST(StateView, SnapshotCarriesCentralResidency) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 1.0;  // keep the class B transactions resident a while
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Two class B transactions whose data is mastered at site 4 (so the
  // authentication and commit messages flow to site 4 and refresh its
  // snapshot); while the second's traffic flows, snapshots report the
  // other one still resident.
  const LockId base = 4 * cfg.partition_size();
  for (TxnId id : {60ull, 61ull}) {
    Transaction t;
    t.id = id;
    t.cls = TxnClass::B;
    t.home_site = 4;
    t.locks = {{static_cast<LockId>(base + 5 + id), LockMode::Exclusive}};
    t.call_io = {true};
    sys.inject_transaction(t);
  }
  // First commit message arrives at site 4 around t ~ 2; at that point the
  // other transaction is still executing at the central site.
  sys.simulator().run_until(2.2);
  const SystemStateView v = sys.make_state_view(4);
  EXPECT_GE(v.central_num_txns, 1);
  sys.simulator().run();
}

TEST(StateView, IdealInfoBypassesSnapshots) {
  SystemConfig cfg = quiet_config();
  cfg.ideal_state_info = true;
  cfg.call_io_time = 1.0;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject(TxnClass::B, 0);
  sys.simulator().run_until(0.5);
  // Site 9 exchanged nothing with central, yet sees the resident txn.
  const SystemStateView v = sys.make_state_view(9);
  EXPECT_EQ(v.central_num_txns, 1);
  EXPECT_DOUBLE_EQ(v.central_info_age, 0.0);
  sys.simulator().run();
}

}  // namespace
}  // namespace hls
