// Whole-system stochastic tests: conservation, liveness (drain to empty),
// determinism, and invariant preservation under every routing strategy.
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/factory.hpp"

namespace hls {
namespace {

SystemConfig loaded_config(double total_tps, std::uint64_t seed = 7) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = total_tps / cfg.num_sites;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<RoutingStrategy> build(const StrategySpec& spec,
                                       const SystemConfig& cfg) {
  return make_strategy(spec, ModelParams::from_config(cfg), cfg.seed);
}

// Run under load, stop arrivals, drain, and verify the system empties with
// every resource and counter back to zero — the strongest liveness check.
class DrainTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(DrainTest, SystemDrainsCleanlyUnderLoad) {
  const SystemConfig cfg = loaded_config(24.0);
  StrategySpec spec{GetParam(), GetParam() == StrategyKind::UtilThreshold ? -0.2
                    : GetParam() == StrategyKind::StaticProbability ? 0.5
                                                                    : 0.0};
  HybridSystem sys(cfg, build(spec, cfg));
  sys.enable_arrivals();
  sys.run_for(120.0);
  sys.check_invariants();
  sys.stop_arrivals();
  sys.drain();

  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.central_resident(), 0);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
  EXPECT_EQ(sys.central_locks().waiters(), 0u);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_resident(s), 0);
    EXPECT_EQ(sys.shipped_in_flight(s), 0);
    EXPECT_EQ(sys.local_locks(s).locks_held(), 0u);
    EXPECT_EQ(sys.local_locks(s).waiters(), 0u);
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
  sys.check_invariants();

  // Conservation: every arrival completed.
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, m.arrivals_class_a + m.arrivals_class_b);
  EXPECT_EQ(m.completions, m.completions_local_a + m.completions_shipped_a +
                               m.completions_class_b);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DrainTest,
    ::testing::Values(StrategyKind::NoLoadSharing, StrategyKind::AlwaysCentral,
                      StrategyKind::StaticProbability, StrategyKind::MeasuredRt,
                      StrategyKind::QueueLength, StrategyKind::UtilThreshold,
                      StrategyKind::MinIncomingQueue, StrategyKind::MinIncomingNsys,
                      StrategyKind::MinAverageQueue, StrategyKind::MinAverageNsys));

TEST(SystemTest, DeterministicForIdenticalSeeds) {
  auto run_once = [] {
    const SystemConfig cfg = loaded_config(20.0, 99);
    HybridSystem sys(cfg, build({StrategyKind::MinAverageNsys, 0.0}, cfg));
    sys.enable_arrivals();
    sys.run_for(150.0);
    return std::make_tuple(sys.metrics().completions,
                           sys.metrics().rt_all.mean(),
                           sys.metrics().shipped_class_a);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SystemTest, DifferentSeedsDiffer) {
  auto run_once = [](std::uint64_t seed) {
    const SystemConfig cfg = loaded_config(20.0, seed);
    HybridSystem sys(cfg, build({StrategyKind::QueueLength, 0.0}, cfg));
    sys.enable_arrivals();
    sys.run_for(150.0);
    return sys.metrics().rt_all.mean();
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(SystemTest, ThroughputTracksOfferedLoadBelowSaturation) {
  const SystemConfig cfg = loaded_config(15.0);
  HybridSystem sys(cfg, build({StrategyKind::StaticProbability, 0.4}, cfg));
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.begin_measurement();
  sys.run_for(600.0);
  sys.end_measurement();
  EXPECT_NEAR(sys.metrics().throughput(), 15.0, 1.0);
}

TEST(SystemTest, ResponseTimeCategoriesPartitionCompletions) {
  const SystemConfig cfg = loaded_config(20.0);
  HybridSystem sys(cfg, build({StrategyKind::StaticProbability, 0.5}, cfg));
  sys.enable_arrivals();
  sys.run_for(200.0);
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.rt_all.count(), m.completions);
  EXPECT_EQ(m.rt_local_a.count() + m.rt_shipped_a.count() + m.rt_class_b.count(),
            m.completions);
  EXPECT_EQ(m.rt_first_try.count() + m.rt_rerun.count(), m.completions);
  EXPECT_GT(m.completions_shipped_a, 0u);
  EXPECT_GT(m.completions_local_a, 0u);
}

TEST(SystemTest, WarmupResetDiscardsHistory) {
  const SystemConfig cfg = loaded_config(20.0);
  HybridSystem sys(cfg, build({StrategyKind::NoLoadSharing, 0.0}, cfg));
  sys.enable_arrivals();
  sys.run_for(100.0);
  const auto before = sys.metrics().completions;
  EXPECT_GT(before, 0u);
  sys.begin_measurement();
  EXPECT_EQ(sys.metrics().completions, 0u);
  EXPECT_DOUBLE_EQ(sys.metrics().measure_start, sys.simulator().now());
  sys.run_for(100.0);
  sys.end_measurement();
  EXPECT_GT(sys.metrics().completions, 0u);
  EXPECT_GT(sys.metrics().mean_local_utilization, 0.0);
}

TEST(SystemTest, ShipFractionZeroWithoutLoadSharing) {
  const SystemConfig cfg = loaded_config(20.0);
  HybridSystem sys(cfg, build({StrategyKind::NoLoadSharing, 0.0}, cfg));
  sys.enable_arrivals();
  sys.run_for(200.0);
  EXPECT_DOUBLE_EQ(sys.metrics().ship_fraction(), 0.0);
  EXPECT_EQ(sys.metrics().completions_shipped_a, 0u);
}

TEST(SystemTest, ShipFractionOneWhenAlwaysCentral) {
  const SystemConfig cfg = loaded_config(15.0);
  HybridSystem sys(cfg, build({StrategyKind::AlwaysCentral, 0.0}, cfg));
  sys.enable_arrivals();
  sys.run_for(200.0);
  EXPECT_DOUBLE_EQ(sys.metrics().ship_fraction(), 1.0);
}

TEST(SystemTest, ClassMixApproximatelyRespected) {
  const SystemConfig cfg = loaded_config(20.0);
  HybridSystem sys(cfg, build({StrategyKind::NoLoadSharing, 0.0}, cfg));
  sys.enable_arrivals();
  sys.run_for(500.0);
  const Metrics& m = sys.metrics();
  const double frac_a =
      static_cast<double>(m.arrivals_class_a) /
      static_cast<double>(m.arrivals_class_a + m.arrivals_class_b);
  EXPECT_NEAR(frac_a, 0.75, 0.03);
}

TEST(SystemTest, AbortsOccurUnderHighContention) {
  SystemConfig cfg = loaded_config(24.0);
  // Small lock space + write-heavy mix: heavy contention yet still feasible
  // (500 locks / 80% writes would thrash into pure deadlock collapse).
  cfg.lockspace = 4000;
  cfg.prob_write_lock = 0.6;
  HybridSystem sys(cfg, build({StrategyKind::StaticProbability, 0.5}, cfg));
  sys.enable_arrivals();
  sys.run_for(150.0);
  sys.stop_arrivals();
  sys.drain();
  const Metrics& m = sys.metrics();
  EXPECT_GT(m.aborts_total(), 0u);
  EXPECT_EQ(m.reruns, m.aborts_total());
  EXPECT_EQ(m.completions, m.arrivals_class_a + m.arrivals_class_b);
  sys.check_invariants();
}

TEST(SystemTest, TimeVaryingArrivalSurgeShiftsLoad) {
  SystemConfig cfg = loaded_config(10.0);
  HybridSystem sys(cfg, build({StrategyKind::MinAverageNsys, 0.0}, cfg));
  // Site 0 surges to 8 tps for t in [50, 150); others stay at 1 tps.
  sys.set_arrival_rate_function(
      0, [](SimTime t) { return (t >= 50.0 && t < 150.0) ? 8.0 : 1.0; }, 8.0);
  sys.enable_arrivals();
  sys.run_for(300.0);
  sys.stop_arrivals();
  sys.drain();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, m.arrivals_class_a + m.arrivals_class_b);
  // The surge forces shipping even though the baseline load would not.
  EXPECT_GT(m.shipped_class_a, 0u);
}

TEST(SystemTest, InjectDuringStochasticLoadIsSafe) {
  const SystemConfig cfg = loaded_config(18.0);
  HybridSystem sys(cfg, build({StrategyKind::QueueLength, 0.0}, cfg));
  sys.enable_arrivals();
  sys.run_for(50.0);
  sys.inject(TxnClass::A, 3);
  sys.inject(TxnClass::B, 5);
  sys.run_for(50.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  sys.check_invariants();
}

// Property sweep: invariants hold across seeds and loads for the flagship
// strategy.
struct SweepCase {
  std::uint64_t seed;
  double tps;
};

class InvariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(InvariantSweep, DrainAndConservation) {
  const SweepCase c = GetParam();
  const SystemConfig cfg = loaded_config(c.tps, c.seed);
  HybridSystem sys(cfg, build({StrategyKind::MinAverageNsys, 0.0}, cfg));
  sys.enable_arrivals();
  sys.run_for(80.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions,
            sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
  sys.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoads, InvariantSweep,
    ::testing::Values(SweepCase{1, 8.0}, SweepCase{2, 16.0}, SweepCase{3, 24.0},
                      SweepCase{4, 32.0}, SweepCase{5, 40.0}, SweepCase{6, 24.0},
                      SweepCase{7, 36.0}, SweepCase{8, 12.0}));

}  // namespace
}  // namespace hls
