#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/analytic_strategies.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

TEST(SiteMetrics, PerSiteCountsSumToGlobal) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 17;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.4, 17));
  sys.enable_arrivals();
  sys.run_for(200.0);
  sys.stop_arrivals();
  sys.drain();

  std::uint64_t arrivals = 0;
  std::uint64_t shipped = 0;
  std::uint64_t local_completions = 0;
  std::uint64_t shipped_completions = 0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    const SiteMetrics& sm = sys.site_metrics(s);
    arrivals += sm.arrivals_class_a;
    shipped += sm.shipped_class_a;
    local_completions += sm.rt_local_a.count();
    shipped_completions += sm.rt_shipped_a.count();
  }
  const Metrics& m = sys.metrics();
  EXPECT_EQ(arrivals, m.arrivals_class_a);
  EXPECT_EQ(shipped, m.shipped_class_a);
  EXPECT_EQ(local_completions, m.completions_local_a);
  EXPECT_EQ(shipped_completions, m.completions_shipped_a);
}

TEST(SiteMetrics, ShipFractionPerSiteNearGlobal) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 18;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.5, 18));
  sys.enable_arrivals();
  sys.run_for(500.0);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_NEAR(sys.site_metrics(s).ship_fraction(), 0.5, 0.1);
  }
}

TEST(SiteMetrics, SurgingSiteShipsMoreThanQuietOnes) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.2;
  cfg.seed = 19;
  const ModelParams base = ModelParams::from_config(cfg);
  HybridSystem sys(cfg, std::make_unique<MinAverageRtStrategy>(
                            base, UtilSource::NumInSystem));
  sys.set_arrival_rate_function(0, [](SimTime) { return 5.0; }, 5.0);
  sys.enable_arrivals();
  sys.run_for(400.0);
  const double surge_ship = sys.site_metrics(0).ship_fraction();
  double quiet_ship = 0.0;
  for (int s = 1; s < cfg.num_sites; ++s) {
    quiet_ship += sys.site_metrics(s).ship_fraction();
  }
  quiet_ship /= cfg.num_sites - 1;
  EXPECT_GT(surge_ship, quiet_ship + 0.1);
}

TEST(SiteMetrics, ResetOnBeginMeasurement) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 20;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.enable_arrivals();
  sys.run_for(50.0);
  EXPECT_GT(sys.site_metrics(0).arrivals_class_a, 0u);
  sys.begin_measurement();
  EXPECT_EQ(sys.site_metrics(0).arrivals_class_a, 0u);
  EXPECT_EQ(sys.site_metrics(0).rt_local_a.count(), 0u);
}

}  // namespace
}  // namespace hls
