#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/analytic_strategies.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

TEST(SiteMetrics, PerSiteCountsSumToGlobal) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 17;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.4, 17));
  sys.enable_arrivals();
  sys.run_for(200.0);
  sys.stop_arrivals();
  sys.drain();

  std::uint64_t arrivals = 0;
  std::uint64_t shipped = 0;
  std::uint64_t local_completions = 0;
  std::uint64_t shipped_completions = 0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    const SiteMetrics& sm = sys.site_metrics(s);
    arrivals += sm.arrivals_class_a;
    shipped += sm.shipped_class_a;
    local_completions += sm.rt_local_a.count();
    shipped_completions += sm.rt_shipped_a.count();
  }
  const Metrics& m = sys.metrics();
  EXPECT_EQ(arrivals, m.arrivals_class_a);
  EXPECT_EQ(shipped, m.shipped_class_a);
  EXPECT_EQ(local_completions, m.completions_local_a);
  EXPECT_EQ(shipped_completions, m.completions_shipped_a);
}

TEST(SiteMetrics, ShipFractionPerSiteNearGlobal) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 18;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.5, 18));
  sys.enable_arrivals();
  sys.run_for(500.0);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_NEAR(sys.site_metrics(s).ship_fraction(), 0.5, 0.1);
  }
}

TEST(SiteMetrics, SurgingSiteShipsMoreThanQuietOnes) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.2;
  cfg.seed = 19;
  const ModelParams base = ModelParams::from_config(cfg);
  HybridSystem sys(cfg, std::make_unique<MinAverageRtStrategy>(
                            base, UtilSource::NumInSystem));
  sys.set_arrival_rate_function(0, [](SimTime) { return 5.0; }, 5.0);
  sys.enable_arrivals();
  sys.run_for(400.0);
  const double surge_ship = sys.site_metrics(0).ship_fraction();
  double quiet_ship = 0.0;
  for (int s = 1; s < cfg.num_sites; ++s) {
    quiet_ship += sys.site_metrics(s).ship_fraction();
  }
  quiet_ship /= cfg.num_sites - 1;
  EXPECT_GT(surge_ship, quiet_ship + 0.1);
}

TEST(SiteMetrics, ShipFaultCountersSumToGlobalAndLandOnTheHomeSite) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.ship_timeout = 1.0;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 2;
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 0.0, 100.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  // One doomed shipped transaction from site 3: the whole timeout ladder is
  // attributed to that home site and to no other.
  Transaction txn;
  txn.id = 1;
  txn.cls = TxnClass::A;
  txn.home_site = 3;
  txn.locks = {{5, LockMode::Exclusive}};
  txn.call_io.assign(1, true);
  sys.inject_transaction(std::move(txn));
  sys.simulator().run();

  const SiteMetrics& home = sys.site_metrics(3);
  EXPECT_EQ(home.ship_timeouts, 3u);
  EXPECT_EQ(home.ship_retries, 2u);
  EXPECT_EQ(home.ship_fallbacks, 1u);
  for (int s = 0; s < cfg.num_sites; ++s) {
    if (s == 3) {
      continue;
    }
    EXPECT_EQ(sys.site_metrics(s).ship_timeouts, 0u);
    EXPECT_EQ(sys.site_metrics(s).ship_retries, 0u);
    EXPECT_EQ(sys.site_metrics(s).ship_fallbacks, 0u);
  }
  EXPECT_EQ(sys.metrics().ship_timeouts, 3u);
  EXPECT_EQ(sys.metrics().ship_retries, 2u);
  EXPECT_EQ(sys.metrics().ship_fallbacks, 1u);
  sys.check_invariants();  // asserts global == sum over sites
}

TEST(SiteMetrics, ShipFaultCountersSumToGlobalUnderLoad) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.6;
  cfg.seed = 21;
  cfg.ship_timeout = 2.0;
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 10.0, 8.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.5, 21));
  sys.enable_arrivals();
  sys.run_for(60.0);
  sys.stop_arrivals();
  sys.drain();

  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    const SiteMetrics& sm = sys.site_metrics(s);
    timeouts += sm.ship_timeouts;
    retries += sm.ship_retries;
    fallbacks += sm.ship_fallbacks;
  }
  const Metrics& m = sys.metrics();
  EXPECT_GT(m.ship_timeouts, 0u);  // the outage actually bit
  EXPECT_EQ(timeouts, m.ship_timeouts);
  EXPECT_EQ(retries, m.ship_retries);
  EXPECT_EQ(fallbacks, m.ship_fallbacks);
  sys.check_invariants();
}

TEST(SiteMetrics, PhaseBreakdownSumsToGlobalPerPhase) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 22;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.4, 22));
  sys.enable_arrivals();
  sys.run_for(80.0);
  sys.stop_arrivals();
  sys.drain();
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    double site_sum = 0.0;
    std::uint64_t site_count = 0;
    for (int s = 0; s < cfg.num_sites; ++s) {
      site_sum += sys.site_metrics(s).rt_phase[static_cast<std::size_t>(p)].sum();
      site_count +=
          sys.site_metrics(s).rt_phase[static_cast<std::size_t>(p)].count();
    }
    const SampleStat& global =
        sys.metrics().rt_phase[static_cast<std::size_t>(p)];
    EXPECT_EQ(site_count, global.count());
    EXPECT_NEAR(site_sum, global.sum(), 1e-9 * (1.0 + global.sum()));
  }
}

TEST(SiteMetrics, ResetOnBeginMeasurement) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 20;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.enable_arrivals();
  sys.run_for(50.0);
  EXPECT_GT(sys.site_metrics(0).arrivals_class_a, 0u);
  sys.begin_measurement();
  EXPECT_EQ(sys.site_metrics(0).arrivals_class_a, 0u);
  EXPECT_EQ(sys.site_metrics(0).rt_local_a.count(), 0u);
}

}  // namespace
}  // namespace hls
