// Abort provenance: every abort carries a typed cause, the identity of the
// transaction that won the conflict (when one exists), and the exact work
// the aborted attempt threw away. Crafted single-conflict scenarios in an
// otherwise idle system make all three assertable to numeric precision.
#include <gtest/gtest.h>

#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "obs/event.hpp"
#include "obs/ring_sink.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

/// The abort events a run emitted, in order.
std::vector<obs::Event> abort_events(const obs::RingSink& ring) {
  std::vector<obs::Event> out;
  for (const obs::Event& e : ring.events()) {
    if (e.kind == obs::EventKind::Abort) {
      out.push_back(e);
    }
  }
  return out;
}

// ---- local preemption: the authenticating class B names itself winner ----

TEST(AbortProvenance, LocalPreemptionNamesAuthWinnerAndExactWaste) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 1.0;  // the local holder sits in I/O while auth lands
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(16, obs::kind_bit(obs::EventKind::Abort));
  sys.add_trace_sink(&ring);
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/true));
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();

  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  ASSERT_EQ(m.aborts[static_cast<int>(AbortCause::LocalPreempted)], 1u);
  EXPECT_EQ(m.aborts_with_winner, 1u);
  // Victim homed at site 0, winner homed at site 0.
  EXPECT_EQ(m.conflict(0, 0), 1u);
  EXPECT_EQ(m.conflict_matrix_total(), 1u);

  const std::vector<obs::Event> aborts = abort_events(ring);
  ASSERT_EQ(aborts.size(), 1u);
  const obs::Event& e = aborts[0];
  EXPECT_EQ(e.txn, 1u);
  EXPECT_EQ(e.cause, AbortCause::LocalPreempted);
  EXPECT_EQ(e.winner, 2u);
  EXPECT_EQ(e.winner_site, 0);
  // The aborted attempt burned init (0.075) + the call's CPU (0.030); the
  // preemption mark is honored at the commit check, after the setup I/O
  // (0.035) and the full 1 s call I/O have completed — all of it wasted.
  EXPECT_NEAR(e.wasted_cpu, 0.075 + 0.030, 1e-9);
  EXPECT_NEAR(e.wasted_io, 0.035 + 1.0, 1e-9);
  // Event fields and the per-cause ledger are the same bookkeeping entry.
  EXPECT_NEAR(m.wasted_cpu_by_cause[static_cast<int>(AbortCause::LocalPreempted)],
              e.wasted_cpu, 1e-12);
  EXPECT_NEAR(m.wasted_io_by_cause[static_cast<int>(AbortCause::LocalPreempted)],
              e.wasted_io, 1e-12);
  sys.check_invariants();
}

// ---- central invalidation: the committing local update is the winner ----

TEST(AbortProvenance, CentralInvalidationNamesTheCommitter) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 0.5;  // stretch the class B execution window
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(16, obs::kind_bit(obs::EventKind::Abort));
  sys.add_trace_sink(&ring);
  // Class B homed at site 5 acquires entity 5 centrally and keeps executing.
  sys.inject_transaction(custom_txn(2, TxnClass::B, 5,
                                    {{5, LockMode::Exclusive},
                                     {3300, LockMode::Exclusive},
                                     {6600, LockMode::Exclusive},
                                     {9900, LockMode::Exclusive},
                                     {13200, LockMode::Exclusive}}));
  // The local update of entity 5 commits mid-execution; its asynchronous
  // update invalidates the central holder.
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  ASSERT_GE(m.aborts[static_cast<int>(AbortCause::CentralInvalidated)], 1u);

  const std::vector<obs::Event> aborts = abort_events(ring);
  ASSERT_FALSE(aborts.empty());
  const obs::Event& e = aborts[0];
  EXPECT_EQ(e.txn, 2u);
  EXPECT_EQ(e.cause, AbortCause::CentralInvalidated);
  EXPECT_EQ(e.winner, 1u);       // the committed local transaction
  EXPECT_EQ(e.winner_site, 0);   // homed at site 0
  EXPECT_GT(e.wasted_cpu + e.wasted_io, 0.0);
  // Victim row 5, winner column 0.
  EXPECT_GE(m.conflict(5, 0), 1u);
  EXPECT_GE(m.aborts_with_winner, 1u);
  sys.check_invariants();
}

// ---- winner-attribution consistency over a contended stochastic run ----

TEST(AbortProvenance, WinnerAttributionIsConsistentUnderContention) {
  // A hot run with a small lockspace produces every collision-type abort.
  // For each abort event the attribution rules must hold: preemption,
  // invalidation, and deadlock always name a live winner with a valid home
  // site; crash and ship-timeout never do; auth refusal names one only when
  // a live non-preemptible holder refused (optional).
  SystemConfig cfg;
  cfg.seed = 99;
  cfg.arrival_rate_per_site = 2.0;
  cfg.lockspace = 4000;  // ~8x hotter than the default database
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(100000, obs::kind_bit(obs::EventKind::Abort));
  sys.add_trace_sink(&ring);
  sys.enable_arrivals();
  sys.run_for(60.0);
  sys.stop_arrivals();
  sys.drain();

  const Metrics& m = sys.metrics();
  ASSERT_GT(m.aborts_total(), 0u);
  std::uint64_t named = 0;
  for (const obs::Event& e : abort_events(ring)) {
    switch (e.cause) {
      case AbortCause::LocalPreempted:
      case AbortCause::CentralInvalidated:
      case AbortCause::Deadlock:
        ASSERT_NE(e.winner, kInvalidTxn)
            << obs::abort_cause_name(e.cause) << " abort without a winner";
        ASSERT_NE(e.winner, e.txn);
        ASSERT_GE(e.winner_site, 0);
        ASSERT_LT(e.winner_site, cfg.num_sites);
        ++named;
        break;
      case AbortCause::Crash:
      case AbortCause::ShipTimeout:
        ASSERT_EQ(e.winner, kInvalidTxn);
        break;
      case AbortCause::AuthRefused:
        if (e.winner != kInvalidTxn) {
          ASSERT_GE(e.winner_site, 0);
          ++named;
        }
        break;
      default:
        break;
    }
    // Wasted work is never negative and never exceeds the abort's age.
    ASSERT_GE(e.wasted_cpu, 0.0);
    ASSERT_GE(e.wasted_io, 0.0);
    ASSERT_LE(e.wasted_cpu + e.wasted_io, e.time - e.arrival_time + 1e-9);
  }
  EXPECT_EQ(named, m.aborts_with_winner);
  EXPECT_GT(named, 0u);
  sys.check_invariants();
}

// ---- auth refusal by coherence-in-flight: no winning transaction ----

TEST(AbortProvenance, CoherenceRefusalHasNoWinner) {
  SystemConfig cfg = quiet_config();
  cfg.comm_delay = 2.0;  // long coherence window
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(16, obs::kind_bit(obs::EventKind::Abort));
  sys.add_trace_sink(&ring);
  // The committed local update is long gone by the time the class B auth
  // hits the pending-coherence window; nobody holds the lock, so the
  // refusal names no winner and lands in the matrix's none column.
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();

  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  ASSERT_GE(m.aborts[static_cast<int>(AbortCause::AuthRefused)], 1u);
  EXPECT_EQ(m.aborts_with_winner, 0u);
  EXPECT_GE(m.conflict(0, m.conflict_sites), 1u);  // the `-` column

  const std::vector<obs::Event> aborts = abort_events(ring);
  ASSERT_FALSE(aborts.empty());
  EXPECT_EQ(aborts[0].cause, AbortCause::AuthRefused);
  EXPECT_EQ(aborts[0].winner, kInvalidTxn);
  EXPECT_EQ(aborts[0].winner_site, -2);
  sys.check_invariants();
}

// ---- deadlock: the surviving cycle member is the winner ----

TEST(AbortProvenance, DeadlockVictimNamesSurvivingCycleMember) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 0.2;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  obs::RingSink ring(16, obs::kind_bit(obs::EventKind::Abort));
  sys.add_trace_sink(&ring);
  sys.inject_transaction(custom_txn(
      1, TxnClass::A, 0, {{5, LockMode::Exclusive}, {6, LockMode::Exclusive}}));
  sys.inject_transaction(custom_txn(
      2, TxnClass::A, 0, {{6, LockMode::Exclusive}, {5, LockMode::Exclusive}}));
  sys.simulator().run();

  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  ASSERT_GE(m.aborts[static_cast<int>(AbortCause::Deadlock)], 1u);

  const std::vector<obs::Event> aborts = abort_events(ring);
  ASSERT_FALSE(aborts.empty());
  const obs::Event& e = aborts[0];
  EXPECT_EQ(e.cause, AbortCause::Deadlock);
  // The winner is the *other* transaction in the two-cycle.
  ASSERT_NE(e.winner, kInvalidTxn);
  EXPECT_NE(e.winner, e.txn);
  EXPECT_TRUE(e.winner == 1u || e.winner == 2u);
  EXPECT_EQ(e.winner_site, 0);
  EXPECT_GE(m.aborts_with_winner, 1u);
  sys.check_invariants();
}

// ---- crash sweeps abort without a winner ----

TEST(AbortProvenance, CrashAbortHasNoWinner) {
  SystemConfig cfg = quiet_config();
  // The shipped transaction is resident at the central complex from ~0.22;
  // the outage at 0.3 sweeps it, and it reruns after recovery.
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 0.3, 1.0, 1.0, 0.0});
  HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
  obs::RingSink ring(16, obs::kind_bit(obs::EventKind::Abort));
  sys.add_trace_sink(&ring);
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();

  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 1u);
  ASSERT_GE(m.aborts[static_cast<int>(AbortCause::Crash)], 1u);
  EXPECT_EQ(m.aborts_with_winner, 0u);
  EXPECT_GE(m.conflict(0, m.conflict_sites), 1u);

  const std::vector<obs::Event> aborts = abort_events(ring);
  ASSERT_FALSE(aborts.empty());
  EXPECT_EQ(aborts[0].cause, AbortCause::Crash);
  EXPECT_EQ(aborts[0].winner, kInvalidTxn);
  sys.check_invariants();
}

// ---- wasted work is conserved through the victim's completion ----

TEST(AbortProvenance, WastedWorkLedgersAgreeWithPerTxnSamples) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 1.0;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/true));
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();

  const Metrics& m = sys.metrics();
  ASSERT_EQ(m.completions, 2u);
  // One sample per completion: the winner contributes an exact zero, the
  // victim its wasted total; CPU + I/O is a lower bound on the total (the
  // attempt may also have wasted lock-wait or queueing time).
  EXPECT_EQ(m.wasted_per_txn.count(), 2u);
  EXPECT_DOUBLE_EQ(m.wasted_per_txn.min(), 0.0);
  EXPECT_GE(m.wasted_per_txn.sum() + 1e-12,
            m.wasted_cpu_total() + m.wasted_io_total());
  EXPECT_GT(m.wasted_per_txn.max(), 0.0);
  sys.check_invariants();
}

}  // namespace
}  // namespace hls
