// Cross-tier conflict choreography: crafted transactions drive each abort
// path of the protocol (preemption, invalidation, negative acknowledgement,
// deadlock) and the tests assert the exact cause and eventual completion.
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call = true) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

std::uint64_t abort_count(const Metrics& m, AbortCause cause) {
  return m.aborts[static_cast<int>(cause)];
}

// ---- local-local contention ----

TEST(Conflict, LocalContentionSerializesConflictingTransactions) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.inject_transaction(custom_txn(2, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_EQ(m.aborts_total(), 0u);  // waits, not aborts, within a tier
  // The second transaction waited: its response time exceeds the first's.
  EXPECT_GT(m.rt_local_a.max(), m.rt_local_a.min());
  sys.check_invariants();
}

TEST(Conflict, SharedLocalTransactionsDoNotWait) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Shared}}));
  sys.inject_transaction(custom_txn(2, TxnClass::A, 0, {{5, LockMode::Shared}}));
  sys.simulator().run();
  // Both serialize only on the CPU, never on the lock: the spread between
  // the two response times is exactly the CPU interference, which is far
  // smaller than a full lock wait (the holder keeps the lock ~0.1 s).
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_EQ(m.aborts_total(), 0u);
}

// ---- deadlock ----

TEST(Conflict, LocalDeadlockAbortsOneAndBothComplete) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 0.2;  // long I/O holds locks long enough to interleave
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(
      1, TxnClass::A, 0, {{5, LockMode::Exclusive}, {6, LockMode::Exclusive}}));
  sys.inject_transaction(custom_txn(
      2, TxnClass::A, 0, {{6, LockMode::Exclusive}, {5, LockMode::Exclusive}}));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(abort_count(m, AbortCause::Deadlock), 1u);
  EXPECT_EQ(sys.local_locks(0).locks_held(), 0u);
  sys.check_invariants();
}

TEST(Conflict, CentralDeadlockBetweenClassBTransactions) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 0.2;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(
      1, TxnClass::B, 0, {{100, LockMode::Exclusive}, {200, LockMode::Exclusive}}));
  sys.inject_transaction(custom_txn(
      2, TxnClass::B, 1, {{200, LockMode::Exclusive}, {100, LockMode::Exclusive}}));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(abort_count(m, AbortCause::Deadlock), 1u);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
}

// ---- local preemption by authentication ----

TEST(Conflict, AuthenticationPreemptsLocalHolder) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 1.0;  // the local transaction holds its lock for >1 s
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Local transaction takes lock 5 exclusively at t ~ 0.14, then sits in I/O
  // until ~1.14; commit check happens after that.
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/true));
  // Class B transaction wants the same entity; its authentication reaches
  // site 0 at t ~ 0.46 — while the local transaction still holds the lock.
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(abort_count(m, AbortCause::LocalPreempted), 1u);
  // The local transaction reran: it completed after more than one run.
  EXPECT_EQ(m.rt_rerun.count(), 1u);
  sys.check_invariants();
}

TEST(Conflict, SharedAuthDoesNotPreemptSharedHolder) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 1.0;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0, {{5, LockMode::Shared}}));
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Shared}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_EQ(m.aborts_total(), 0u);
}

// ---- central invalidation by an asynchronous update ----

TEST(Conflict, LocalCommitInvalidatesCentralHolder) {
  SystemConfig cfg = quiet_config();
  cfg.call_io_time = 0.5;  // stretch execution so windows overlap
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Class B acquires entity 5 at the central site at t ~ 0.26 and keeps
  // executing (five 0.5 s I/Os) until past t ~ 2.7.
  sys.inject_transaction(custom_txn(2, TxnClass::B, 5,
                                    {{5, LockMode::Exclusive},
                                     {3300, LockMode::Exclusive},
                                     {6600, LockMode::Exclusive},
                                     {9900, LockMode::Exclusive},
                                     {13200, LockMode::Exclusive}}));
  // The local transaction updates entity 5 and commits at t ~ 0.72; its
  // asynchronous update reaches the central site at ~0.92, mid-execution of
  // the class B transaction, which must be marked and rerun.
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(abort_count(m, AbortCause::CentralInvalidated), 1u);
  sys.check_invariants();
}

// ---- negative acknowledgement (coherence in flight) ----

TEST(Conflict, AuthRefusedWhileUpdatePropagationInFlight) {
  SystemConfig cfg = quiet_config();
  cfg.comm_delay = 2.0;  // long coherence window: ack takes 4+ s round trip
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Local update commits at ~0.245; coherence stays pending until ~4.25
  // (two 2-second legs plus processing).
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  // Class B reaches its authentication of entity 5 at ~4.15, inside the
  // coherence window -> negative ack, rerun, then success on the retry.
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0,
                                    {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(abort_count(m, AbortCause::AuthRefused), 1u);
  EXPECT_GE(m.auth_negative_acks, 1u);
  EXPECT_GE(m.auth_rounds, 2u);  // refused round + successful retry
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
}

// ---- partial grant across sites: release-then-retry ordering ----

TEST(Conflict, PartialAuthGrantReleasedBeforeRetry) {
  // A class B transaction authenticates at two master sites; site 1 refuses
  // (coherence in flight from a just-committed local update) while site 0
  // grants. The failed round must release site 0's grant, and the retry's
  // grabs must observe that release (FIFO links + FCFS CPUs guarantee the
  // ordering); the transaction then commits on the retry.
  SystemConfig cfg = quiet_config();
  cfg.comm_delay = 2.0;
  const std::uint32_t part = cfg.partition_size();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Local update at site 1: commits ~0.245, coherence pending until ~4.25.
  sys.inject_transaction(
      custom_txn(1, TxnClass::A, 1, {{part + 5, LockMode::Exclusive}}));
  // Class B touching both partitions; its auth lands ~4.14, inside site 1's
  // coherence window.
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0,
                                    {{5, LockMode::Exclusive},
                                     {part + 5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  const Metrics& m = sys.metrics();
  EXPECT_EQ(m.completions, 2u);
  EXPECT_GE(m.auth_negative_acks, 1u);
  EXPECT_GE(m.auth_rounds, 2u);  // the refused round plus the retry
  EXPECT_EQ(sys.local_locks(0).locks_held(), 0u);
  EXPECT_EQ(sys.local_locks(1).locks_held(), 0u);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
  sys.check_invariants();
}

TEST(Conflict, ProtocolMessagesRefreshTheCentralView) {
  // Site 0 exchanges authentication traffic with the central site; its
  // cached central state must be refreshed by those messages while a
  // bystander site's view stays stale.
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  sys.inject_transaction(custom_txn(1, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  sys.simulator().run();
  const double now = sys.simulator().now();
  const SystemStateView near_view = sys.make_state_view(0);
  const SystemStateView far_view = sys.make_state_view(7);
  EXPECT_LT(near_view.central_info_age, now);
  EXPECT_DOUBLE_EQ(far_view.central_info_age, now);  // never heard anything
}

// ---- waiting on an authentication hold ----

TEST(Conflict, LocalTransactionWaitsOutCentralAuthHold) {
  SystemConfig cfg = quiet_config();
  cfg.comm_delay = 1.0;  // auth holds the lock at site 0 for ~2 s
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  HybridSystem* raw = &sys;
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0, {{5, LockMode::Exclusive}},
                                    /*io_per_call=*/false));
  // Class B's auth grabs lock 5 at site 0 at t ~ 2.07 and releases it with
  // the commit message at t ~ 4.08. A local transaction arriving at 2.2
  // requests the same entity at ~2.34 and must wait, not deadlock.
  double local_rt = 0.0;
  sys.simulator().schedule_at(2.2, [raw] {
    raw->inject_transaction(
        custom_txn(1, TxnClass::A, 0, {{5, LockMode::Exclusive}}));
  });
  sys.simulator().run();
  local_rt = sys.metrics().rt_local_a.mean();
  EXPECT_EQ(sys.metrics().completions, 2u);
  EXPECT_EQ(sys.metrics().aborts_total(), 0u);
  // Without the wait the local transaction takes ~0.245 s; the auth hold
  // stretches it beyond one second.
  EXPECT_GT(local_rt, 1.0);
  sys.check_invariants();
}

}  // namespace
}  // namespace hls
