#include "model/capacity.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace hls {
namespace {

ModelParams paper_baseline(double delay = 0.2) {
  ModelParams p;
  p.comm_delay = delay;
  return p;
}

TEST(Capacity, NoSharingCapacityNearTwentyTps) {
  // The paper's headline: "the maximum transaction rate supportable is
  // limited to about 20 transactions per second" without load sharing.
  const auto r = CapacityAnalyzer().capacity_fixed_ship(paper_baseline(), 0.0);
  EXPECT_GT(r.max_total_tps, 15.0);
  EXPECT_LT(r.max_total_tps, 30.0);
  EXPECT_GT(r.rt_unloaded, 0.5);
  EXPECT_LE(r.rt_at_capacity, 5.0 * r.rt_unloaded * 1.01);
}

TEST(Capacity, StaticSharingExtendsCapacitySubstantially) {
  const CapacityAnalyzer analyzer;
  const auto none = analyzer.capacity_fixed_ship(paper_baseline(), 0.0);
  const auto opt = analyzer.capacity_static_optimal(paper_baseline());
  EXPECT_GT(opt.max_total_tps, none.max_total_tps * 1.3);
  EXPECT_GT(opt.p_ship_at_capacity, 0.3);
}

TEST(Capacity, LargerDelayReducesSharedCapacityGain) {
  const CapacityAnalyzer analyzer;
  const auto near_opt = analyzer.capacity_static_optimal(paper_baseline(0.2));
  const auto far_opt = analyzer.capacity_static_optimal(paper_baseline(0.5));
  const auto near_none = analyzer.capacity_fixed_ship(paper_baseline(0.2), 0.0);
  const auto far_none = analyzer.capacity_fixed_ship(paper_baseline(0.5), 0.0);
  const double gain_near = near_opt.max_total_tps / near_none.max_total_tps;
  const double gain_far = far_opt.max_total_tps / far_none.max_total_tps;
  EXPECT_GE(gain_near, gain_far * 0.95);  // §4.2: benefit shrinks with delay
}

TEST(Capacity, FullShippingLimitedByCentralComplex) {
  // With everything shipped, capacity is bounded by central CPU:
  // 15 MIPS / ~480K instr per txn plus overheads -> low-30s tps.
  const auto r = CapacityAnalyzer().capacity_fixed_ship(paper_baseline(), 1.0);
  EXPECT_GT(r.max_total_tps, 20.0);
  EXPECT_LT(r.max_total_tps, 40.0);
}

TEST(Capacity, MoreLocalMipsRaisesNoSharingCapacity) {
  ModelParams fast = paper_baseline();
  fast.local_mips = 2.0;
  const CapacityAnalyzer analyzer;
  EXPECT_GT(analyzer.capacity_fixed_ship(fast, 0.0).max_total_tps,
            analyzer.capacity_fixed_ship(paper_baseline(), 0.0).max_total_tps * 1.5);
}

TEST(Capacity, StricterKneeLowersCapacity) {
  CapacityAnalyzer::Options tight;
  tight.rt_limit_factor = 2.0;
  CapacityAnalyzer::Options loose;
  loose.rt_limit_factor = 8.0;
  const auto t = CapacityAnalyzer(tight).capacity_fixed_ship(paper_baseline(), 0.0);
  const auto l = CapacityAnalyzer(loose).capacity_fixed_ship(paper_baseline(), 0.0);
  EXPECT_LT(t.max_total_tps, l.max_total_tps);
}

TEST(Capacity, SimulationConfirmsModelCapacity) {
  // At the model's no-sharing capacity the simulator must still deliver the
  // offered load; 30% beyond it, it must not.
  const auto cap = CapacityAnalyzer().capacity_fixed_ship(paper_baseline(), 0.0);
  SystemConfig cfg;
  cfg.seed = 5;
  RunOptions opts;
  opts.warmup_seconds = 100.0;
  opts.measure_seconds = 500.0;

  cfg.arrival_rate_per_site = cap.max_total_tps / cfg.num_sites;
  const RunResult at_cap =
      run_simulation(cfg, {StrategyKind::NoLoadSharing, 0.0}, opts);
  EXPECT_NEAR(at_cap.metrics.throughput(), cap.max_total_tps,
              0.08 * cap.max_total_tps);

  cfg.arrival_rate_per_site = 1.3 * cap.max_total_tps / cfg.num_sites;
  const RunResult beyond =
      run_simulation(cfg, {StrategyKind::NoLoadSharing, 0.0}, opts);
  EXPECT_LT(beyond.metrics.throughput(), 1.25 * cap.max_total_tps);
  EXPECT_GT(beyond.metrics.rt_all.mean(), 3.0 * at_cap.metrics.rt_all.mean());
}

}  // namespace
}  // namespace hls
