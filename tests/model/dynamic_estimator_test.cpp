#include "model/dynamic_estimator.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

SystemConfig base_config() {
  SystemConfig cfg;
  return cfg;
}

SystemStateView make_view(const SystemConfig& cfg, int ql, int qc, int nl, int nc,
                          int locks_l, int locks_c) {
  SystemStateView v;
  v.config = &cfg;
  v.site = 0;
  v.local_cpu_queue = ql;
  v.central_cpu_queue = qc;
  v.local_num_txns = nl;
  v.central_num_txns = nc;
  v.local_locks_held = locks_l;
  v.central_locks_held = locks_c;
  return v;
}

class EstimatorTest : public ::testing::TestWithParam<UtilSource> {
 protected:
  SystemConfig cfg = base_config();
  ModelParams params = ModelParams::from_config(cfg);
};

TEST_P(EstimatorTest, EstimatesAreFiniteAndPositive) {
  DynamicEstimator est(params, GetParam());
  const auto r = est.estimate(make_view(cfg, 3, 5, 4, 20, 30, 100));
  EXPECT_GT(r.r_incoming_local, 0.0);
  EXPECT_GT(r.r_incoming_ship, 0.0);
  EXPECT_GT(r.r_avg_if_local, 0.0);
  EXPECT_GT(r.r_avg_if_ship, 0.0);
  EXPECT_LT(r.r_incoming_local, 1e3);
  EXPECT_LT(r.r_incoming_ship, 1e3);
}

TEST_P(EstimatorTest, EmptySystemPrefersLocal) {
  // With everything idle, shipping still pays the communication legs, so
  // the incoming transaction's local estimate must win.
  DynamicEstimator est(params, GetParam());
  const auto r = est.estimate(make_view(cfg, 0, 0, 0, 0, 0, 0));
  EXPECT_LT(r.r_incoming_local, r.r_incoming_ship);
  EXPECT_LT(r.r_avg_if_local, r.r_avg_if_ship);
}

TEST_P(EstimatorTest, OverloadedLocalSitePrefersShipping) {
  DynamicEstimator est(params, GetParam());
  const auto r = est.estimate(make_view(cfg, 40, 0, 50, 0, 120, 0));
  EXPECT_GT(r.r_incoming_local, r.r_incoming_ship);
  EXPECT_GT(r.r_avg_if_local, r.r_avg_if_ship);
}

TEST_P(EstimatorTest, LocalEstimateMonotoneInLocalBacklog) {
  DynamicEstimator est(params, GetParam());
  double prev = 0.0;
  for (int backlog = 0; backlog <= 40; backlog += 10) {
    const auto r = est.estimate(make_view(cfg, backlog, 2, backlog, 5, 20, 40));
    EXPECT_GE(r.r_incoming_local, prev);
    prev = r.r_incoming_local;
  }
}

TEST_P(EstimatorTest, ShipEstimateMonotoneInCentralBacklog) {
  DynamicEstimator est(params, GetParam());
  double prev = 0.0;
  for (int backlog = 0; backlog <= 60; backlog += 15) {
    const auto r = est.estimate(make_view(cfg, 2, backlog, 3, backlog, 20, 40));
    EXPECT_GE(r.r_incoming_ship, prev);
    prev = r.r_incoming_ship;
  }
}

TEST_P(EstimatorTest, UtilizationsGrowWithState) {
  DynamicEstimator est(params, GetParam());
  const auto idle = est.utilizations(make_view(cfg, 0, 0, 0, 0, 0, 0));
  const auto busy = est.utilizations(make_view(cfg, 8, 30, 10, 40, 0, 0));
  EXPECT_DOUBLE_EQ(idle.first, 0.0);
  EXPECT_DOUBLE_EQ(idle.second, 0.0);
  EXPECT_GT(busy.first, 0.5);
  EXPECT_GT(busy.second, 0.3);
  EXPECT_LE(busy.first, 0.99);
  EXPECT_LE(busy.second, 0.99);
}

TEST_P(EstimatorTest, ContentionRaisesLocalEstimate) {
  DynamicEstimator est(params, GetParam());
  const auto quiet = est.estimate(make_view(cfg, 3, 3, 4, 10, 0, 0));
  const auto contended = est.estimate(make_view(cfg, 3, 3, 4, 10, 800, 3000));
  EXPECT_GT(contended.r_incoming_local, quiet.r_incoming_local);
  EXPECT_GT(contended.r_incoming_ship, quiet.r_incoming_ship);
}

INSTANTIATE_TEST_SUITE_P(Sources, EstimatorTest,
                         ::testing::Values(UtilSource::CpuQueue,
                                           UtilSource::NumInSystem));

TEST(EstimatorHeterogeneity, SlowSiteRaisesLocalEstimateOnly) {
  SystemConfig cfg;
  cfg.num_sites = 2;
  cfg.local_mips_per_site = {0.25, 4.0};  // site 0 slow, site 1 fast
  const ModelParams p = ModelParams::from_config(cfg);
  DynamicEstimator est(p, UtilSource::NumInSystem);
  SystemStateView slow = make_view(cfg, 2, 2, 2, 4, 10, 20);
  slow.site = 0;
  SystemStateView fast = slow;
  fast.site = 1;
  const auto r_slow = est.estimate(slow);
  const auto r_fast = est.estimate(fast);
  // Local CPU terms quadruple on the slow site and quarter on the fast one;
  // the ship estimate differs only by the forwarding burst.
  EXPECT_GT(r_slow.r_incoming_local, 2.0 * r_fast.r_incoming_local);
  EXPECT_NEAR(r_slow.r_incoming_ship, r_fast.r_incoming_ship,
              0.25 * r_fast.r_incoming_ship);
}

TEST(EstimatorHeterogeneity, SpeedFactorDefaultsToOne) {
  SystemConfig cfg;
  SystemStateView v = make_view(cfg, 0, 0, 0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(DynamicEstimator::local_speed_factor(v), 1.0);
  v.config = nullptr;
  EXPECT_DOUBLE_EQ(DynamicEstimator::local_speed_factor(v), 1.0);
}

TEST(EstimatorInversion, QueueInversionMatchesMm1) {
  // rho = q/(q+1): spot checks.
  const SystemConfig cfg = base_config();
  DynamicEstimator est(ModelParams::from_config(cfg), UtilSource::CpuQueue);
  const auto u0 = est.utilizations(make_view(cfg, 1, 3, 0, 0, 0, 0));
  EXPECT_NEAR(u0.first, 0.5, 1e-12);
  EXPECT_NEAR(u0.second, 0.75, 1e-12);
}

TEST(EstimatorInversion, CountInversionRecoversUtilizationRoundTrip) {
  // Forward: a station with utilization rho holds rho/(1-rho) jobs at the
  // CPU and (rho/s)*d_nc elsewhere; the inversion must recover rho.
  const SystemConfig cfg = base_config();
  const ModelParams p = ModelParams::from_config(cfg);
  DynamicEstimator est(p, UtilSource::NumInSystem);
  const double s = p.local_cpu(p.instr_msg_init) +
                   p.n_calls * p.local_cpu(p.instr_per_call) +
                   p.local_cpu(p.instr_msg_commit);
  const double d_nc = p.setup_io + p.n_calls * p.call_io;
  // Only higher utilizations round-trip tightly: the view carries integer
  // transaction counts, so small populations quantize coarsely.
  for (double rho : {0.8, 0.9, 0.95}) {
    const double n = rho / (1.0 - rho) + rho / s * d_nc;
    const auto u = est.utilizations(
        make_view(cfg, 0, 0, static_cast<int>(n + 0.5), 0, 0, 0));
    EXPECT_NEAR(u.first, rho, 0.05);
  }
}

}  // namespace
}  // namespace hls
