#include "model/residuals.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace hls {
namespace {

// ---- survival functions ----

TEST(ResidualSurvival, UniformClosedForm) {
  const Residual r{ResidualShape::Uniform, 4.0};
  EXPECT_DOUBLE_EQ(residual_survival(r, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(residual_survival(r, 1.0), 0.75);
  EXPECT_DOUBLE_EQ(residual_survival(r, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(residual_survival(r, 9.0), 0.0);
}

TEST(ResidualSurvival, TriangularClosedForm) {
  const Residual r{ResidualShape::Triangular, 2.0};
  EXPECT_DOUBLE_EQ(residual_survival(r, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(residual_survival(r, 1.0), 0.25);  // (1 - 1/2)^2
  EXPECT_DOUBLE_EQ(residual_survival(r, 2.0), 0.0);
}

TEST(ResidualSurvival, NegativeTimeIsCertain) {
  const Residual r{ResidualShape::Uniform, 1.0};
  EXPECT_DOUBLE_EQ(residual_survival(r, -0.5), 1.0);
}

// ---- closed-form cross-checks for prob_first_exceeds ----

TEST(ProbFirstExceeds, UniformVsUniformZeroOffsetSameLength) {
  // A, B ~ U(0, T) independent: P(A > B) = 1/2.
  const Residual a{ResidualShape::Uniform, 3.0};
  EXPECT_NEAR(prob_first_exceeds(a, a, 0.0), 0.5, 1e-9);
}

TEST(ProbFirstExceeds, UniformVsUniformDifferentLengths) {
  // A ~ U(0, 2), B ~ U(0, 1): P(A > B) = 1 - E[B stuff] = 3/4.
  const Residual a{ResidualShape::Uniform, 2.0};
  const Residual b{ResidualShape::Uniform, 1.0};
  EXPECT_NEAR(prob_first_exceeds(a, b, 0.0), 0.75, 1e-9);
}

TEST(ProbFirstExceeds, TriangularVsPointMass) {
  // B degenerate at 0: P(A > offset) = survival of A.
  const Residual a{ResidualShape::Triangular, 2.0};
  const Residual b{ResidualShape::Uniform, 0.0};
  EXPECT_NEAR(prob_first_exceeds(a, b, 1.0), 0.25, 1e-9);
}

TEST(ProbFirstExceeds, ZeroLengthAIsNever) {
  const Residual a{ResidualShape::Uniform, 0.0};
  const Residual b{ResidualShape::Uniform, 5.0};
  EXPECT_DOUBLE_EQ(prob_first_exceeds(a, b, 0.0), 0.0);
}

TEST(ProbFirstExceeds, HugeOffsetIsZero) {
  const Residual a{ResidualShape::Uniform, 1.0};
  const Residual b{ResidualShape::Triangular, 1.0};
  EXPECT_DOUBLE_EQ(prob_first_exceeds(a, b, 10.0), 0.0);
}

TEST(ProbFirstExceeds, MonotoneDecreasingInOffset) {
  const Residual a{ResidualShape::Uniform, 2.0};
  const Residual b{ResidualShape::Triangular, 1.5};
  double prev = 1.1;
  for (double d = 0.0; d <= 3.0; d += 0.25) {
    const double p = prob_first_exceeds(a, b, d);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ProbFirstExceeds, MonotoneIncreasingInALength) {
  const Residual b{ResidualShape::Uniform, 1.0};
  double prev = -0.1;
  for (double len = 0.5; len <= 5.0; len += 0.5) {
    const Residual a{ResidualShape::Uniform, len};
    const double p = prob_first_exceeds(a, b, 0.2);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

// ---- Monte-Carlo cross-validation ----

double sample(const Residual& r, Rng& rng) {
  const double u = rng.next_double();
  switch (r.shape) {
    case ResidualShape::Uniform:
      return u * r.length;
    case ResidualShape::Triangular:
      // Inverse CDF of density 2(T-x)/T^2: x = T(1 - sqrt(1-u)).
      return r.length * (1.0 - std::sqrt(1.0 - u));
  }
  return 0.0;
}

struct McCase {
  Residual a;
  Residual b;
  double offset;
};

class ProbFirstExceedsMc : public ::testing::TestWithParam<McCase> {};

TEST_P(ProbFirstExceedsMc, MatchesMonteCarlo) {
  const McCase& c = GetParam();
  Rng rng(12345);
  const int n = 400000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    Rng* r = &rng;
    if (sample(c.a, *r) > sample(c.b, *r) + c.offset) {
      ++hits;
    }
  }
  const double mc = static_cast<double>(hits) / n;
  EXPECT_NEAR(prob_first_exceeds(c.a, c.b, c.offset), mc, 0.004);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProbFirstExceedsMc,
    ::testing::Values(
        McCase{{ResidualShape::Uniform, 1.0}, {ResidualShape::Uniform, 1.0}, 0.0},
        McCase{{ResidualShape::Uniform, 2.0}, {ResidualShape::Triangular, 1.0}, 0.2},
        McCase{{ResidualShape::Triangular, 1.5}, {ResidualShape::Uniform, 0.7}, 0.1},
        McCase{{ResidualShape::Triangular, 3.0}, {ResidualShape::Triangular, 2.0}, 0.5},
        McCase{{ResidualShape::Uniform, 0.8}, {ResidualShape::Triangular, 2.5}, 0.0},
        McCase{{ResidualShape::Triangular, 1.0}, {ResidualShape::Uniform, 1.0}, 1.5}));

}  // namespace
}  // namespace hls
