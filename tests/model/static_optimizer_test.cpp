#include "model/static_optimizer.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

ModelParams baseline(double total_tps) {
  ModelParams p;
  p.lambda_site = total_tps / p.num_sites;
  return p;
}

TEST(StaticOptimizer, ShipsNothingAtVeryLowLoad) {
  const StaticOptimum opt = StaticOptimizer().optimize(baseline(2.0));
  EXPECT_LT(opt.p_ship, 0.05);
}

TEST(StaticOptimizer, ShipsSomethingAtHighLoad) {
  const StaticOptimum opt = StaticOptimizer().optimize(baseline(26.0));
  EXPECT_GT(opt.p_ship, 0.2);
  EXPECT_LT(opt.p_ship, 1.0);
}

TEST(StaticOptimizer, OptimumBeatsEndpoints) {
  const ModelParams p = baseline(24.0);
  const StaticOptimum opt = StaticOptimizer().optimize(p);
  ModelParams p0 = p;
  p0.p_ship = 0.0;
  ModelParams p1 = p;
  p1.p_ship = 1.0;
  const double r0 = AnalyticModel().solve(p0).r_avg;
  const double r1 = AnalyticModel().solve(p1).r_avg;
  EXPECT_LE(opt.solution.r_avg, r0 + 1e-9);
  EXPECT_LE(opt.solution.r_avg, r1 + 1e-9);
}

TEST(StaticOptimizer, ReportsNoSharingBaseline) {
  const ModelParams p = baseline(24.0);
  const StaticOptimum opt = StaticOptimizer().optimize(p);
  ModelParams p0 = p;
  p0.p_ship = 0.0;
  EXPECT_NEAR(opt.r_avg_no_sharing, AnalyticModel().solve(p0).r_avg, 1e-9);
  EXPECT_LE(opt.solution.r_avg, opt.r_avg_no_sharing + 1e-9);
}

TEST(StaticOptimizer, ShipFractionGrowsThenShrinksWithLoad) {
  // The paper's Figure 4.3 shape: zero at low rates, rising, then falling
  // once the central site starts to saturate.
  std::vector<double> fractions;
  for (double tps : {4.0, 12.0, 20.0, 28.0, 44.0}) {
    fractions.push_back(StaticOptimizer().optimize(baseline(tps)).p_ship);
  }
  EXPECT_LT(fractions.front(), 0.05);
  double peak = 0.0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    if (fractions[i] > peak) {
      peak = fractions[i];
      peak_at = i;
    }
  }
  EXPECT_GT(peak, 0.3);
  EXPECT_GT(peak_at, 0u);
  EXPECT_LT(peak_at, fractions.size() - 1);  // interior peak -> falls at the end
}

TEST(StaticOptimizer, LargerDelayShipsLessAtModerateLoad) {
  ModelParams near = baseline(18.0);
  near.comm_delay = 0.2;
  ModelParams far = baseline(18.0);
  far.comm_delay = 0.5;
  const double p_near = StaticOptimizer().optimize(near).p_ship;
  const double p_far = StaticOptimizer().optimize(far).p_ship;
  EXPECT_LE(p_far, p_near + 0.02);
}

TEST(StaticOptimizer, CoarseGridStillFindsInteriorOptimum) {
  StaticOptimizer::Options opts;
  opts.grid_points = 11;
  const StaticOptimum coarse = StaticOptimizer(opts).optimize(baseline(24.0));
  const StaticOptimum fine = StaticOptimizer().optimize(baseline(24.0));
  EXPECT_NEAR(coarse.solution.r_avg, fine.solution.r_avg, 0.05);
}

}  // namespace
}  // namespace hls
