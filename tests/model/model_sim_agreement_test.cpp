// Asserted model-vs-simulation agreement (the bench tbl_model_validation
// prints the full grid; these tests pin the agreement quality so a model
// or protocol drift cannot silently open a gap).
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "model/analytic_model.hpp"

namespace hls {
namespace {

struct Point {
  double total_tps;
  double p_ship;
  double rt_tolerance;   // relative
  double rho_tolerance;  // absolute
};

class AgreementTest : public ::testing::TestWithParam<Point> {};

TEST_P(AgreementTest, ModelTracksSimulation) {
  const Point pt = GetParam();
  SystemConfig cfg;
  cfg.arrival_rate_per_site = pt.total_tps / cfg.num_sites;
  cfg.seed = 1001;
  ModelParams params = ModelParams::from_config(cfg);
  params.p_ship = pt.p_ship;
  const ModelSolution model = AnalyticModel().solve(params);
  ASSERT_TRUE(model.converged);
  ASSERT_FALSE(model.saturated);

  RunOptions opts;
  opts.warmup_seconds = 100.0;
  opts.measure_seconds = 600.0;
  const RunResult sim = run_simulation(
      cfg, {StrategyKind::StaticProbability, pt.p_ship}, opts);

  EXPECT_NEAR(model.r_avg, sim.metrics.rt_all.mean(),
              pt.rt_tolerance * sim.metrics.rt_all.mean());
  EXPECT_NEAR(model.rho_local, sim.metrics.mean_local_utilization,
              pt.rho_tolerance);
  EXPECT_NEAR(model.rho_central, sim.metrics.central_utilization,
              pt.rho_tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AgreementTest,
    ::testing::Values(Point{5.0, 0.0, 0.05, 0.03}, Point{10.0, 0.3, 0.05, 0.04},
                      Point{15.0, 0.6, 0.05, 0.05}, Point{20.0, 0.3, 0.08, 0.06},
                      Point{20.0, 0.6, 0.08, 0.06}));

TEST(AgreementTest, ModelPredictsTheSaturationWall) {
  // The model must agree with the simulator about which side of the wall an
  // operating point is on.
  ModelParams stable;
  stable.lambda_site = 2.0;  // 20 tps, no sharing: stressed but stable
  EXPECT_FALSE(AnalyticModel().solve(stable).saturated);
  ModelParams overloaded;
  overloaded.lambda_site = 3.2;  // 32 tps, no sharing: past the wall
  EXPECT_TRUE(AnalyticModel().solve(overloaded).saturated);
}

TEST(AgreementTest, ShippedResponseComponentsMatchSimulation) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.2;
  cfg.seed = 1002;
  ModelParams params = ModelParams::from_config(cfg);
  params.p_ship = 0.5;
  const ModelSolution model = AnalyticModel().solve(params);
  RunOptions opts;
  opts.warmup_seconds = 100.0;
  opts.measure_seconds = 600.0;
  const RunResult sim =
      run_simulation(cfg, {StrategyKind::StaticProbability, 0.5}, opts);
  EXPECT_NEAR(model.r_local, sim.metrics.rt_local_a.mean(),
              0.06 * sim.metrics.rt_local_a.mean());
  EXPECT_NEAR(model.r_shipped, sim.metrics.rt_shipped_a.mean(),
              0.06 * sim.metrics.rt_shipped_a.mean());
}

}  // namespace
}  // namespace hls
