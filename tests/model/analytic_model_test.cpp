#include "model/analytic_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace hls {
namespace {

ModelParams baseline(double total_tps, double p_ship) {
  ModelParams p;  // paper defaults
  p.lambda_site = total_tps / p.num_sites;
  p.p_ship = p_ship;
  return p;
}

TEST(AnalyticModel, ConvergesAtModerateLoad) {
  const ModelSolution s = AnalyticModel().solve(baseline(20.0, 0.3));
  EXPECT_TRUE(s.converged);
  EXPECT_FALSE(s.saturated);
  EXPECT_GT(s.iterations, 4);
}

TEST(AnalyticModel, ResponseTimesArePositiveAndOrdered) {
  const ModelSolution s = AnalyticModel().solve(baseline(15.0, 0.3));
  EXPECT_GT(s.r_local_first, 0.0);
  EXPECT_GT(s.r_shipped_first, 0.0);
  // Rerun skips I/O, so it is faster than a first run.
  EXPECT_LT(s.r_local_rerun, s.r_local_first);
  EXPECT_LT(s.r_central_rerun, s.r_shipped_first);
  // With-rerun averages can only exceed first-run times.
  EXPECT_GE(s.r_local, s.r_local_first);
  EXPECT_GE(s.r_shipped, s.r_shipped_first);
}

TEST(AnalyticModel, ShippedPaysCommunicationDelay) {
  ModelParams p = baseline(5.0, 0.5);
  const ModelSolution s = AnalyticModel().solve(p);
  // Shipped transactions carry at least the two communication legs plus the
  // authentication round trip.
  EXPECT_GT(s.r_shipped_first, 4.0 * p.comm_delay);
}

TEST(AnalyticModel, UtilizationMatchesHandComputationAtLightLoad) {
  ModelParams p = baseline(5.0, 0.0);
  p.prob_write = 0.0;  // no async updates: utilization is pure pathlength
  const ModelSolution s = AnalyticModel().solve(p);
  // Local class A work: 0.375 txn/s/site * 450K instr / 1 MIPS = 0.16875,
  // plus forwarding of class B inputs 0.125 * 15K = 0.001875.
  EXPECT_NEAR(s.rho_local, 0.1706, 0.01);
  // Central: 1.25 txn/s * 450K / 15 MIPS = 0.0375.
  EXPECT_NEAR(s.rho_central, 0.0375, 0.005);
}

TEST(AnalyticModel, ResponseTimeIncreasesWithLoad) {
  double prev = 0.0;
  for (double tps : {5.0, 10.0, 15.0, 20.0, 25.0}) {
    const ModelSolution s = AnalyticModel().solve(baseline(tps, 0.0));
    EXPECT_GT(s.r_avg, prev);
    prev = s.r_avg;
  }
}

TEST(AnalyticModel, LocalUtilizationFallsWithShipping) {
  const ModelSolution none = AnalyticModel().solve(baseline(25.0, 0.0));
  const ModelSolution half = AnalyticModel().solve(baseline(25.0, 0.5));
  EXPECT_LT(half.rho_local, none.rho_local);
  EXPECT_GT(half.rho_central, none.rho_central);
}

TEST(AnalyticModel, SaturationFlagRaisedAtOverload) {
  const ModelSolution s = AnalyticModel().solve(baseline(60.0, 0.0));
  EXPECT_TRUE(s.saturated);
}

TEST(AnalyticModel, NoCrossTierAbortsWithoutCentralTransactions) {
  ModelParams p = baseline(10.0, 0.0);
  p.p_loc = 1.0;  // no class B, nothing ships
  const ModelSolution s = AnalyticModel().solve(p);
  EXPECT_NEAR(s.p_abort_local, 0.0, 1e-9);
}

TEST(AnalyticModel, AbortProbabilitiesRiseWithLoad) {
  const ModelSolution lo = AnalyticModel().solve(baseline(8.0, 0.3));
  const ModelSolution hi = AnalyticModel().solve(baseline(28.0, 0.3));
  EXPECT_GE(hi.p_abort_local, lo.p_abort_local);
  EXPECT_GE(hi.p_abort_central, lo.p_abort_central);
}

TEST(AnalyticModel, ContentionScalesWithWriteFraction) {
  ModelParams reads = baseline(20.0, 0.3);
  reads.prob_write = 0.05;
  ModelParams writes = baseline(20.0, 0.3);
  writes.prob_write = 0.8;
  const ModelSolution sr = AnalyticModel().solve(reads);
  const ModelSolution sw = AnalyticModel().solve(writes);
  EXPECT_LT(sr.p_contention_local, sw.p_contention_local);
  EXPECT_LT(sr.p_abort_central, sw.p_abort_central);
}

TEST(AnalyticModel, LargerLockSpaceReducesContention) {
  ModelParams small = baseline(20.0, 0.3);
  small.lockspace = 4096;
  ModelParams large = baseline(20.0, 0.3);
  large.lockspace = 262144;
  const ModelSolution ss = AnalyticModel().solve(small);
  const ModelSolution sl = AnalyticModel().solve(large);
  EXPECT_GT(ss.p_contention_local, sl.p_contention_local);
  EXPECT_GT(ss.p_abort_local, sl.p_abort_local);
}

TEST(AnalyticModel, CommDelayOnlyHurtsShippedPath) {
  ModelParams near = baseline(10.0, 0.4);
  near.comm_delay = 0.1;
  ModelParams far = baseline(10.0, 0.4);
  far.comm_delay = 0.5;
  const ModelSolution sn = AnalyticModel().solve(near);
  const ModelSolution sf = AnalyticModel().solve(far);
  EXPECT_GT(sf.r_shipped - sn.r_shipped, 4.0 * (0.5 - 0.1) * 0.9);
  EXPECT_NEAR(sf.r_local_first, sn.r_local_first, 0.2);
}

TEST(AnalyticModel, FasterCentralCpuShortensShippedResponse) {
  ModelParams slow = baseline(20.0, 0.5);
  slow.central_mips = 5.0;
  ModelParams fast = baseline(20.0, 0.5);
  fast.central_mips = 30.0;
  const ModelSolution ss = AnalyticModel().solve(slow);
  const ModelSolution sf = AnalyticModel().solve(fast);
  EXPECT_LT(sf.r_shipped, ss.r_shipped);
}

TEST(AnalyticModel, RerunExpansionConsistentWithAbortProbabilities) {
  // E[reruns] = P_first / (1 - P_rerun): one abort of the first run followed
  // by a geometric number of rerun aborts.
  const ModelSolution s = AnalyticModel().solve(baseline(24.0, 0.4));
  EXPECT_NEAR(s.exp_reruns_local,
              s.p_abort_local / (1.0 - s.p_abort_local_rerun), 0.05);
}

TEST(AnalyticModel, RerunsAbortLessOftenThanFirstRuns) {
  // Reruns skip all I/O: shorter lock holds and shorter residuals mean less
  // cross-tier exposure per run (the paper's beta-vs-gamma distinction).
  const ModelSolution s = AnalyticModel().solve(baseline(28.0, 0.4));
  EXPECT_GT(s.p_abort_local, 0.0);
  EXPECT_LT(s.p_abort_local_rerun, s.p_abort_local);
  EXPECT_LT(s.gamma_local, s.beta_local);
}

TEST(AnalyticModel, MixtureAverageIsConvexCombination) {
  const ModelSolution s = AnalyticModel().solve(baseline(18.0, 0.4));
  const double lo = std::min({s.r_local, s.r_shipped, s.r_class_b});
  const double hi = std::max({s.r_local, s.r_shipped, s.r_class_b});
  EXPECT_GE(s.r_avg, lo - 1e-9);
  EXPECT_LE(s.r_avg, hi + 1e-9);
}

TEST(ModelParams, DerivedRatesAreConsistent) {
  const ModelParams p = baseline(20.0, 0.4);
  EXPECT_NEAR(p.rate_local_a() + p.rate_shipped_a() + p.rate_class_b(),
              p.lambda_site, 1e-12);
  EXPECT_NEAR(p.rate_central_total(),
              p.num_sites * (p.rate_class_b() + p.rate_shipped_a()), 1e-12);
}

TEST(ModelParams, ProbAnyWriteLimits) {
  ModelParams p;
  p.prob_write = 0.0;
  EXPECT_DOUBLE_EQ(p.prob_any_write(), 0.0);
  p.prob_write = 1.0;
  EXPECT_DOUBLE_EQ(p.prob_any_write(), 1.0);
  p.prob_write = 0.25;
  EXPECT_NEAR(p.prob_any_write(), 1.0 - std::pow(0.75, 10), 1e-12);
}

TEST(ModelParams, ExpectedInvolvedSitesBounds) {
  ModelParams p;  // 10 sites, 10 calls
  const double e = p.expected_involved_sites();
  EXPECT_GT(e, 1.0);
  EXPECT_LT(e, 10.0);
  EXPECT_NEAR(e, 10.0 * (1.0 - std::pow(0.9, 10)), 1e-12);
}

TEST(ModelParams, FromConfigRoundTrips) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.5;
  cfg.comm_delay = 0.5;
  cfg.prob_write_lock = 0.4;
  const ModelParams p = ModelParams::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.lambda_site, 2.5);
  EXPECT_DOUBLE_EQ(p.comm_delay, 0.5);
  EXPECT_DOUBLE_EQ(p.prob_write, 0.4);
  EXPECT_EQ(p.lockspace, cfg.lockspace);
}

}  // namespace
}  // namespace hls
