// Cross-architecture properties (the §1 motivation): the locality crossover
// between centralized and distributed, and the hybrid tracking the better
// of the two.
#include <gtest/gtest.h>

#include "baseline/centralized_system.hpp"
#include "baseline/distributed_system.hpp"
#include "core/driver.hpp"

namespace hls {
namespace {

SystemConfig wan_config(double p_loc) {
  SystemConfig cfg;
  cfg.comm_delay = 0.5;            // the regime where the WAN decides
  cfg.arrival_rate_per_site = 1.2; // 12 tps: all architectures stable
  cfg.prob_class_a = p_loc;
  cfg.seed = 77;
  return cfg;
}

template <typename System>
double baseline_rt(System& sys) {
  sys.enable_arrivals();
  sys.run_for(60.0);
  sys.begin_measurement();
  sys.run_for(400.0);
  sys.end_measurement();
  return sys.metrics().rt_all.mean();
}

TEST(Architecture, DistributedWinsAtFullLocality) {
  const SystemConfig cfg = wan_config(1.0);
  CentralizedSystem central(cfg);
  DistributedSystem distributed(cfg);
  EXPECT_LT(baseline_rt(distributed), baseline_rt(central));
}

TEST(Architecture, CentralizedWinsAtLowLocality) {
  const SystemConfig cfg = wan_config(0.5);
  CentralizedSystem central(cfg);
  DistributedSystem distributed(cfg);
  // "much worse otherwise": not just worse — a multiple.
  EXPECT_GT(baseline_rt(distributed), 3.0 * baseline_rt(central));
}

TEST(Architecture, CentralizedIndifferentToLocality) {
  CentralizedSystem a{wan_config(0.5)};
  CentralizedSystem b{wan_config(0.95)};
  const double rt_low = baseline_rt(a);
  const double rt_high = baseline_rt(b);
  EXPECT_NEAR(rt_low, rt_high, 0.05 * rt_low);
}

TEST(Architecture, DistributedDegradesMonotonicallyWithRemoteCalls) {
  double prev = 0.0;
  for (double p_loc : {1.0, 0.85, 0.7, 0.55}) {
    DistributedSystem sys{wan_config(p_loc)};
    const double rt = baseline_rt(sys);
    EXPECT_GT(rt, prev);
    prev = rt;
  }
}

TEST(Architecture, HybridTracksTheBetterArchitecture) {
  RunOptions opts;
  opts.warmup_seconds = 60.0;
  opts.measure_seconds = 400.0;
  for (double p_loc : {0.5, 1.0}) {
    const SystemConfig cfg = wan_config(p_loc);
    CentralizedSystem central(cfg);
    DistributedSystem distributed(cfg);
    const double rt_c = baseline_rt(central);
    const double rt_d = baseline_rt(distributed);
    const RunResult hybrid =
        run_simulation(cfg, {StrategyKind::MinAverageNsys, 0.0}, opts);
    const double best = std::min(rt_c, rt_d);
    // Within 35% of the better pure architecture at both extremes, while
    // the worse one is off by 2-7x.
    EXPECT_LT(hybrid.metrics.rt_all.mean(), 1.35 * best) << "p_loc=" << p_loc;
  }
}

}  // namespace
}  // namespace hls
