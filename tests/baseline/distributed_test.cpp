#include "baseline/distributed_system.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

TEST(Distributed, ClassAIsPurelyLocalAndFast) {
  DistributedSystem sys(quiet_config());
  sys.inject(TxnClass::A, 0);
  sys.simulator().run();
  // init 0.075 + setup 0.035 + 10*(0.03 + 0.025) + commit 0.075 = 0.735;
  // no WAN legs at all.
  ASSERT_EQ(sys.metrics().completions, 1u);
  EXPECT_NEAR(sys.metrics().rt_class_a.mean(), 0.735, 1e-9);
  EXPECT_EQ(sys.metrics().remote_calls, 0u);
}

TEST(Distributed, ClassBPaysPerRemoteCall) {
  // Class B draws uniformly over the lock space: with 10 sites, ~9 of its
  // 10 calls are remote, each costing a full round trip.
  SystemConfig cfg = quiet_config();
  cfg.seed = 9;
  DistributedSystem sys(cfg);
  sys.inject(TxnClass::B, 0);
  sys.simulator().run();
  ASSERT_EQ(sys.metrics().completions, 1u);
  const auto remote = sys.metrics().remote_calls;
  EXPECT_GE(remote, 5u);
  // Each remote call adds at least 2 x 0.2 s: response dominated by the WAN.
  EXPECT_GT(sys.metrics().rt_class_b.mean(), 0.4 * static_cast<double>(remote));
}

TEST(Distributed, RemoteCallCountMatchesForeignLocks) {
  DistributedSystem sys(quiet_config());
  // Deterministic injections: count foreign-partition locks ourselves via a
  // paired factory (same seed ordering as the system's internal factory).
  SystemConfig cfg = quiet_config();
  TxnFactory probe(cfg, Rng(cfg.seed));
  const Transaction expect = probe.make_of_class(TxnClass::B, 2, 0.0);
  std::uint64_t foreign = 0;
  for (const LockNeed& need : expect.locks) {
    foreign += cfg.owner_site(need.id) != 2 ? 1 : 0;
  }
  sys.inject(TxnClass::B, 2);
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().remote_calls, foreign);
}

TEST(Distributed, CommitWithRemoteParticipantsAddsPrepareRoundTrip) {
  SystemConfig cfg = quiet_config();
  cfg.prob_class_a = 0.0;
  cfg.seed = 12;
  DistributedSystem sys(cfg);
  sys.inject(TxnClass::B, 0);
  sys.simulator().run();
  // All remote locks released everywhere after commit.
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.site_locks(s).locks_held(), 0u);
  }
  EXPECT_EQ(sys.live_transactions(), 0);
}

TEST(Distributed, CrossSiteDeadlockBrokenByTimeout) {
  SystemConfig cfg = quiet_config();
  cfg.num_sites = 2;
  cfg.lockspace = 1000;
  DistributedOptions opts;
  opts.lock_timeout = 1.0;
  DistributedSystem sys(cfg, opts);
  // Hand-build the classic cross-site cycle: T1 at site 0 takes a home lock
  // then a remote one; T2 at site 1 mirrors it.
  // T1: home lock 10 (site 0), remote lock 510 (site 1).
  // T2: home lock 510 (site 1), remote lock 10 (site 0).
  // Injected via inject() we cannot control locks, so use heavy write
  // contention instead: a handful of class B transactions over a small
  // space reliably produces cross-site waits.
  SystemConfig hot = cfg;
  hot.lockspace = 60;
  hot.prob_write_lock = 1.0;
  hot.call_io_time = 0.3;
  hot.seed = 21;
  DistributedSystem storm(hot, opts);
  for (int i = 0; i < 8; ++i) {
    storm.inject(TxnClass::B, i % 2);
  }
  storm.simulator().run();
  EXPECT_EQ(storm.metrics().completions, 8u);
  EXPECT_GT(storm.metrics().timeout_aborts + storm.metrics().deadlock_aborts, 0u);
  for (int s = 0; s < hot.num_sites; ++s) {
    EXPECT_EQ(storm.site_locks(s).locks_held(), 0u);
  }
}

TEST(Distributed, DrainsCleanlyUnderLoad) {
  SystemConfig cfg = quiet_config();
  cfg.arrival_rate_per_site = 1.5;
  cfg.seed = 5;
  DistributedSystem sys(cfg);
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions, sys.metrics().arrivals);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.site_locks(s).locks_held(), 0u);
    EXPECT_EQ(sys.site_locks(s).waiters(), 0u);
  }
}

TEST(Distributed, LocalityGovernsPerformance) {
  // The paper's motivating claim [DIAS87]: the distributed system shines
  // when remote calls per transaction are far below one, and degrades as
  // the class B share grows.
  auto mean_rt = [](double p_loc) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 1.0;
    cfg.prob_class_a = p_loc;
    cfg.seed = 31;
    DistributedSystem sys(cfg);
    sys.enable_arrivals();
    sys.run_for(30.0);
    sys.begin_measurement();
    sys.run_for(200.0);
    sys.end_measurement();
    return sys.metrics().rt_all.mean();
  };
  const double local_heavy = mean_rt(0.95);
  const double remote_heavy = mean_rt(0.40);
  EXPECT_LT(local_heavy, remote_heavy * 0.6);
}

}  // namespace
}  // namespace hls
