#include "baseline/centralized_system.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

TEST(Centralized, SingleTransactionExactResponseTime) {
  CentralizedSystem sys(quiet_config());
  sys.inject(TxnClass::A, 0);
  sys.simulator().run();
  // in 0.2 + init 0.005 + setup 0.035 + 10*(0.002 + 0.025) + commit 0.005
  // + out 0.2 = 0.715. No authentication, no coherence machinery.
  ASSERT_EQ(sys.metrics().completions, 1u);
  EXPECT_NEAR(sys.metrics().rt_all.mean(), 0.715, 1e-9);
}

TEST(Centralized, ClassesCostTheSame) {
  // The defining property: a centralized system has no locality advantage,
  // class A pays the WAN exactly like class B.
  CentralizedSystem a(quiet_config());
  a.inject(TxnClass::A, 3);
  a.simulator().run();
  CentralizedSystem b(quiet_config());
  b.inject(TxnClass::B, 3);
  b.simulator().run();
  EXPECT_NEAR(a.metrics().rt_all.mean(), b.metrics().rt_all.mean(), 1e-9);
}

TEST(Centralized, LocksReleasedAfterRun) {
  CentralizedSystem sys(quiet_config());
  sys.inject(TxnClass::A, 0);
  sys.inject(TxnClass::B, 5);
  sys.simulator().run();
  EXPECT_EQ(sys.locks().locks_held(), 0u);
  EXPECT_EQ(sys.live_transactions(), 0);
}

TEST(Centralized, DeadlockResolvedByAbort) {
  SystemConfig cfg = quiet_config();
  cfg.lockspace = 40;  // tiny: force collisions between the two txns
  cfg.prob_write_lock = 1.0;
  cfg.num_sites = 2;
  cfg.call_io_time = 0.2;
  CentralizedSystem sys(cfg);
  for (int i = 0; i < 6; ++i) {
    sys.inject(TxnClass::B, i % 2);
  }
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 6u);
  EXPECT_EQ(sys.locks().locks_held(), 0u);
}

TEST(Centralized, ThroughputMatchesOfferedBelowSaturation) {
  SystemConfig cfg = quiet_config();
  cfg.arrival_rate_per_site = 2.0;  // 20 tps: central util ~ 0.65
  cfg.seed = 4;
  CentralizedSystem sys(cfg);
  sys.enable_arrivals();
  sys.run_for(50.0);
  sys.begin_measurement();
  sys.run_for(400.0);
  sys.end_measurement();
  EXPECT_NEAR(sys.metrics().throughput(), 20.0, 1.5);
  EXPECT_GT(sys.cpu_utilization(), 0.4);
}

TEST(Centralized, DrainsCleanly) {
  SystemConfig cfg = quiet_config();
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 6;
  CentralizedSystem sys(cfg);
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(sys.live_transactions(), 0);
  EXPECT_EQ(sys.metrics().completions, sys.metrics().arrivals);
  EXPECT_EQ(sys.locks().locks_held(), 0u);
}

}  // namespace
}  // namespace hls
