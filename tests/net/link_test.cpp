#include "net/link.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace hls {
namespace {

TEST(Link, DeliversAfterDelay) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  double delivered_at = -1.0;
  link.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.2);
}

TEST(Link, ZeroDelayDeliversImmediately) {
  Simulator sim;
  Link link(sim, 0.0, "l");
  double delivered_at = -1.0;
  link.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Link, PreservesFifoOrder) {
  Simulator sim;
  Link link(sim, 0.5, "l");
  std::vector<int> order;
  sim.schedule_at(0.0, [&] { link.send([&] { order.push_back(0); }); });
  sim.schedule_at(0.1, [&] { link.send([&] { order.push_back(1); }); });
  sim.schedule_at(0.2, [&] { link.send([&] { order.push_back(2); }); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Link, FifoHoldsWhenDelayShrinksMidstream) {
  Simulator sim;
  Link link(sim, 1.0, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.send([&] { deliveries.emplace_back(0, sim.now()); });
    link.set_delay(0.1);
  });
  sim.schedule_at(0.05, [&] {
    // With raw delays this would arrive at 0.15, before message 0 (1.0).
    link.send([&] { deliveries.emplace_back(1, sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_GE(deliveries[1].second, deliveries[0].second);
}

TEST(Link, CountsSentAndDelivered) {
  Simulator sim;
  Link link(sim, 0.3, "l");
  link.send([] {});
  link.send([] {});
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.messages_in_flight(), 2u);
  sim.run();
  EXPECT_EQ(link.messages_delivered(), 2u);
  EXPECT_EQ(link.messages_in_flight(), 0u);
}

TEST(Link, DelayAccessors) {
  Simulator sim;
  Link link(sim, 0.2, "mylink");
  EXPECT_DOUBLE_EQ(link.delay(), 0.2);
  link.set_delay(0.5);
  EXPECT_DOUBLE_EQ(link.delay(), 0.5);
  EXPECT_EQ(link.name(), "mylink");
}

TEST(Link, ExactTimingAcrossDelayChangeAndIdlePeriod) {
  // Pins the FIFO hold-back behavior: the delivery floor left behind by an
  // old slow message must not delay traffic sent after an idle gap.
  Simulator sim;
  Link link(sim, 1.0, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.send([&] { deliveries.emplace_back(0, sim.now()); });  // arrives 1.0
    link.set_delay(0.1);
  });
  sim.schedule_at(0.05, [&] {
    // Raw delay would land this at 0.15; FIFO holds it back to 1.0.
    link.send([&] { deliveries.emplace_back(1, sim.now()); });
  });
  sim.schedule_at(5.0, [&] {
    // After an idle period the stale floor (1.0) is in the past: delivery is
    // exactly send time + current delay.
    link.send([&] { deliveries.emplace_back(2, sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_DOUBLE_EQ(deliveries[0].second, 1.0);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_DOUBLE_EQ(deliveries[1].second, 1.0);
  EXPECT_EQ(deliveries[2].first, 2);
  EXPECT_DOUBLE_EQ(deliveries[2].second, 5.1);
}

TEST(Link, DownLinkHoldsMessagesAndFlushesInOrderAtRecovery) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.set_up(false);
    EXPECT_FALSE(link.is_up());
  });
  sim.schedule_at(0.1, [&] { link.send([&] { deliveries.emplace_back(0, sim.now()); }); });
  sim.schedule_at(0.3, [&] { link.send([&] { deliveries.emplace_back(1, sim.now()); }); });
  sim.schedule_at(0.5, [&] {
    EXPECT_EQ(link.messages_held(), 2u);
    EXPECT_EQ(link.messages_delivered(), 0u);
  });
  sim.schedule_at(1.0, [&] { link.set_up(true); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(link.messages_held(), 0u);
  // Both dispatch at recovery; one link delay later, in send order.
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_DOUBLE_EQ(deliveries[0].second, 1.2);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_DOUBLE_EQ(deliveries[1].second, 1.2);
}

TEST(Link, InFlightMessageStillDeliversWhenLinkGoesDown) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  double delivered_at = -1.0;
  sim.schedule_at(0.0, [&] { link.send([&] { delivered_at = sim.now(); }); });
  sim.schedule_at(0.1, [&] { link.set_up(false); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(delivered_at, 0.2);
}

TEST(Link, DelayFactorMultipliesExactly) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<double> deliveries;
  sim.schedule_at(0.0, [&] {
    link.set_delay_factor(3.0);
    link.send([&] { deliveries.push_back(sim.now()); });
  });
  sim.schedule_at(2.0, [&] {
    link.set_delay_factor(1.0);
    link.send([&] { deliveries.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0], 0.6);  // 0.2 x 3
  EXPECT_DOUBLE_EQ(deliveries[1], 2.2);  // nominal again
}

TEST(Link, LossRetransmitsDeterministicallyAndKeepsOrder) {
  auto run_once = [](std::vector<double>* times, std::uint64_t* retransmits) {
    Simulator sim;
    Link link(sim, 0.1, "l");
    link.set_fault_rng(Rng(42));
    link.set_loss(0.5);
    std::vector<int> order;
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(0.01 * i, [&, i] {
        link.send([&, i] {
          order.push_back(i);
          times->push_back(sim.now());
        });
      });
    }
    sim.run();
    ASSERT_EQ(order.size(), 40u);
    for (int i = 0; i < 40; ++i) {
      ASSERT_EQ(order[i], i);  // FIFO survives retransmission jitter
    }
    *retransmits = link.messages_retransmitted();
  };
  std::vector<double> first_times;
  std::vector<double> second_times;
  std::uint64_t first_retx = 0;
  std::uint64_t second_retx = 0;
  run_once(&first_times, &first_retx);
  run_once(&second_times, &second_retx);
  EXPECT_GT(first_retx, 0u);  // p = 0.5 over 40 messages: ~40 losses expected
  EXPECT_EQ(first_retx, second_retx);
  EXPECT_EQ(first_times, second_times);  // bit-identical at the same seed
}

TEST(Link, DuplicateDeliveryFiresTwiceAtExactTimes) {
  // Reference-model check: replay the fault stream beside the link and
  // predict every delivery instant. With only set_dup armed, dispatch draws
  // exactly one bernoulli per message; a duplicated message delivers at the
  // FIFO time and again dup_extra later, and still advances the FIFO floor.
  Simulator sim;
  Link link(sim, 0.2, "l");
  link.set_fault_rng(Rng(42));
  link.set_dup(0.5, 0.03);
  std::vector<double> deliveries;
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(0.5 * i, [&] { link.send([&] { deliveries.push_back(sim.now()); }); });
  }
  sim.run();

  Rng replica(42);
  std::vector<double> expected;
  std::uint64_t dup_count = 0;
  for (int i = 0; i < 20; ++i) {
    const double at = 0.5 * i + 0.2;  // spaced sends: the FIFO floor never binds
    expected.push_back(at);
    if (replica.bernoulli(0.5)) {
      ++dup_count;
      expected.push_back(at + 0.03);
    }
  }
  EXPECT_GT(dup_count, 0u);
  EXPECT_EQ(link.messages_duplicated(), dup_count);
  // The callback ran once per primary + once per duplicate copy; delivered_
  // counts primaries only (conservation of sent vs delivered).
  EXPECT_EQ(link.messages_delivered(), 20u);
  ASSERT_EQ(deliveries.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(deliveries[i], expected[i], 1e-9) << "delivery " << i;
  }
}

TEST(Link, ReorderStragglerSlipsByExactUniformDrawAndCanBeOvertaken) {
  // Draw order with only set_reorder armed: one bernoulli per message, plus
  // one uniform(0, window) for a straggler. A straggler leaves the FIFO
  // floor untouched, so later traffic may overtake it.
  Simulator sim;
  Link link(sim, 0.2, "l");
  link.set_fault_rng(Rng(7));
  link.set_reorder(0.5, 0.4);
  std::vector<std::pair<int, double>> deliveries;
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(0.05 * i, [&, i] {
      link.send([&, i] { deliveries.emplace_back(i, sim.now()); });
    });
  }
  sim.run();

  Rng replica(7);
  std::vector<std::pair<int, double>> expected;
  double fifo_floor = 0.0;
  std::uint64_t straggled = 0;
  for (int i = 0; i < 20; ++i) {
    const double fifo_at = std::max(0.05 * i + 0.2, fifo_floor);
    if (replica.bernoulli(0.5)) {
      ++straggled;
      expected.emplace_back(i, fifo_at + replica.uniform(0.0, 0.4));
    } else {
      fifo_floor = fifo_at;
      expected.emplace_back(i, fifo_at);
    }
  }
  EXPECT_GT(straggled, 0u);
  EXPECT_EQ(link.messages_reordered(), straggled);
  // Actual deliveries arrive in time order; sort the model's send-order list
  // the same way (stable: simultaneous deliveries keep schedule order).
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.second < b.second; });
  ASSERT_EQ(deliveries.size(), expected.size());
  bool any_overtake = false;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(deliveries[i].first, expected[i].first) << "position " << i;
    EXPECT_NEAR(deliveries[i].second, expected[i].second, 1e-9);
    if (i > 0 && deliveries[i].first < deliveries[i - 1].first) {
      any_overtake = true;
    }
  }
  EXPECT_TRUE(any_overtake);  // seed 7 produces at least one real inversion
}

TEST(Link, DelaySpikeMultipliesAndStillHoldsFifoOrder) {
  // A spiked message keeps its place in the FIFO stream: the inflated delay
  // raises the floor and back-to-back traffic queues behind it.
  Simulator sim;
  Link link(sim, 0.2, "l");
  link.set_fault_rng(Rng(11));
  link.set_delay_spike(0.5, 4.0);
  std::vector<std::pair<int, double>> deliveries;
  for (int i = 0; i < 12; ++i) {
    sim.schedule_at(0.05 * i, [&, i] {
      link.send([&, i] { deliveries.emplace_back(i, sim.now()); });
    });
  }
  sim.run();

  Rng replica(11);
  double fifo_floor = 0.0;
  std::uint64_t spiked = 0;
  ASSERT_EQ(deliveries.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    double delay = 0.2;
    if (replica.bernoulli(0.5)) {
      ++spiked;
      delay *= 4.0;
    }
    fifo_floor = std::max(0.05 * i + delay, fifo_floor);
    EXPECT_EQ(deliveries[static_cast<std::size_t>(i)].first, i);
    EXPECT_NEAR(deliveries[static_cast<std::size_t>(i)].second, fifo_floor, 1e-9);
  }
  EXPECT_GT(spiked, 0u);
  EXPECT_EQ(link.delay_spikes(), spiked);
}

struct FaultCounters {
  std::uint64_t retransmitted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delay_spikes = 0;
};

TEST(Link, ComposedChaosIsDeterministicAtTheSameSeed) {
  auto run_once = [](std::vector<double>* times, FaultCounters* counts) {
    Simulator sim;
    Link link(sim, 0.1, "l");
    link.set_fault_rng(Rng(1234));
    link.set_loss(0.2);
    link.set_dup(0.3, 0.02);
    link.set_reorder(0.3, 0.25);
    link.set_delay_spike(0.2, 3.0);
    for (int i = 0; i < 60; ++i) {
      sim.schedule_at(0.02 * i, [&] {
        link.send([&] { times->push_back(sim.now()); });
      });
    }
    sim.run();
    *counts = {link.messages_retransmitted(), link.messages_duplicated(),
               link.messages_reordered(), link.delay_spikes()};
  };
  std::vector<double> first, second;
  FaultCounters c1, c2;
  run_once(&first, &c1);
  run_once(&second, &c2);
  EXPECT_GT(c1.duplicated, 0u);
  EXPECT_GT(c1.reordered, 0u);
  EXPECT_GT(c1.delay_spikes, 0u);
  EXPECT_EQ(c1.retransmitted, c2.retransmitted);
  EXPECT_EQ(c1.duplicated, c2.duplicated);
  EXPECT_EQ(c1.reordered, c2.reordered);
  EXPECT_EQ(c1.delay_spikes, c2.delay_spikes);
  EXPECT_EQ(first, second);  // bit-identical chaos at the same seed
}

TEST(Link, ManyMessagesArriveInOrderUnderSimultaneousSends) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    link.send([&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace hls
