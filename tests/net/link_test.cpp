#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hls {
namespace {

TEST(Link, DeliversAfterDelay) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  double delivered_at = -1.0;
  link.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.2);
}

TEST(Link, ZeroDelayDeliversImmediately) {
  Simulator sim;
  Link link(sim, 0.0, "l");
  double delivered_at = -1.0;
  link.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Link, PreservesFifoOrder) {
  Simulator sim;
  Link link(sim, 0.5, "l");
  std::vector<int> order;
  sim.schedule_at(0.0, [&] { link.send([&] { order.push_back(0); }); });
  sim.schedule_at(0.1, [&] { link.send([&] { order.push_back(1); }); });
  sim.schedule_at(0.2, [&] { link.send([&] { order.push_back(2); }); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Link, FifoHoldsWhenDelayShrinksMidstream) {
  Simulator sim;
  Link link(sim, 1.0, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.send([&] { deliveries.emplace_back(0, sim.now()); });
    link.set_delay(0.1);
  });
  sim.schedule_at(0.05, [&] {
    // With raw delays this would arrive at 0.15, before message 0 (1.0).
    link.send([&] { deliveries.emplace_back(1, sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_GE(deliveries[1].second, deliveries[0].second);
}

TEST(Link, CountsSentAndDelivered) {
  Simulator sim;
  Link link(sim, 0.3, "l");
  link.send([] {});
  link.send([] {});
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.messages_in_flight(), 2u);
  sim.run();
  EXPECT_EQ(link.messages_delivered(), 2u);
  EXPECT_EQ(link.messages_in_flight(), 0u);
}

TEST(Link, DelayAccessors) {
  Simulator sim;
  Link link(sim, 0.2, "mylink");
  EXPECT_DOUBLE_EQ(link.delay(), 0.2);
  link.set_delay(0.5);
  EXPECT_DOUBLE_EQ(link.delay(), 0.5);
  EXPECT_EQ(link.name(), "mylink");
}

TEST(Link, ManyMessagesArriveInOrderUnderSimultaneousSends) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    link.send([&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace hls
