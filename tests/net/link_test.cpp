#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hls {
namespace {

TEST(Link, DeliversAfterDelay) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  double delivered_at = -1.0;
  link.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.2);
}

TEST(Link, ZeroDelayDeliversImmediately) {
  Simulator sim;
  Link link(sim, 0.0, "l");
  double delivered_at = -1.0;
  link.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Link, PreservesFifoOrder) {
  Simulator sim;
  Link link(sim, 0.5, "l");
  std::vector<int> order;
  sim.schedule_at(0.0, [&] { link.send([&] { order.push_back(0); }); });
  sim.schedule_at(0.1, [&] { link.send([&] { order.push_back(1); }); });
  sim.schedule_at(0.2, [&] { link.send([&] { order.push_back(2); }); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Link, FifoHoldsWhenDelayShrinksMidstream) {
  Simulator sim;
  Link link(sim, 1.0, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.send([&] { deliveries.emplace_back(0, sim.now()); });
    link.set_delay(0.1);
  });
  sim.schedule_at(0.05, [&] {
    // With raw delays this would arrive at 0.15, before message 0 (1.0).
    link.send([&] { deliveries.emplace_back(1, sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_GE(deliveries[1].second, deliveries[0].second);
}

TEST(Link, CountsSentAndDelivered) {
  Simulator sim;
  Link link(sim, 0.3, "l");
  link.send([] {});
  link.send([] {});
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.messages_in_flight(), 2u);
  sim.run();
  EXPECT_EQ(link.messages_delivered(), 2u);
  EXPECT_EQ(link.messages_in_flight(), 0u);
}

TEST(Link, DelayAccessors) {
  Simulator sim;
  Link link(sim, 0.2, "mylink");
  EXPECT_DOUBLE_EQ(link.delay(), 0.2);
  link.set_delay(0.5);
  EXPECT_DOUBLE_EQ(link.delay(), 0.5);
  EXPECT_EQ(link.name(), "mylink");
}

TEST(Link, ExactTimingAcrossDelayChangeAndIdlePeriod) {
  // Pins the FIFO hold-back behavior: the delivery floor left behind by an
  // old slow message must not delay traffic sent after an idle gap.
  Simulator sim;
  Link link(sim, 1.0, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.send([&] { deliveries.emplace_back(0, sim.now()); });  // arrives 1.0
    link.set_delay(0.1);
  });
  sim.schedule_at(0.05, [&] {
    // Raw delay would land this at 0.15; FIFO holds it back to 1.0.
    link.send([&] { deliveries.emplace_back(1, sim.now()); });
  });
  sim.schedule_at(5.0, [&] {
    // After an idle period the stale floor (1.0) is in the past: delivery is
    // exactly send time + current delay.
    link.send([&] { deliveries.emplace_back(2, sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_DOUBLE_EQ(deliveries[0].second, 1.0);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_DOUBLE_EQ(deliveries[1].second, 1.0);
  EXPECT_EQ(deliveries[2].first, 2);
  EXPECT_DOUBLE_EQ(deliveries[2].second, 5.1);
}

TEST(Link, DownLinkHoldsMessagesAndFlushesInOrderAtRecovery) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<std::pair<int, double>> deliveries;
  sim.schedule_at(0.0, [&] {
    link.set_up(false);
    EXPECT_FALSE(link.is_up());
  });
  sim.schedule_at(0.1, [&] { link.send([&] { deliveries.emplace_back(0, sim.now()); }); });
  sim.schedule_at(0.3, [&] { link.send([&] { deliveries.emplace_back(1, sim.now()); }); });
  sim.schedule_at(0.5, [&] {
    EXPECT_EQ(link.messages_held(), 2u);
    EXPECT_EQ(link.messages_delivered(), 0u);
  });
  sim.schedule_at(1.0, [&] { link.set_up(true); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(link.messages_held(), 0u);
  // Both dispatch at recovery; one link delay later, in send order.
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_DOUBLE_EQ(deliveries[0].second, 1.2);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_DOUBLE_EQ(deliveries[1].second, 1.2);
}

TEST(Link, InFlightMessageStillDeliversWhenLinkGoesDown) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  double delivered_at = -1.0;
  sim.schedule_at(0.0, [&] { link.send([&] { delivered_at = sim.now(); }); });
  sim.schedule_at(0.1, [&] { link.set_up(false); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(delivered_at, 0.2);
}

TEST(Link, DelayFactorMultipliesExactly) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<double> deliveries;
  sim.schedule_at(0.0, [&] {
    link.set_delay_factor(3.0);
    link.send([&] { deliveries.push_back(sim.now()); });
  });
  sim.schedule_at(2.0, [&] {
    link.set_delay_factor(1.0);
    link.send([&] { deliveries.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0], 0.6);  // 0.2 x 3
  EXPECT_DOUBLE_EQ(deliveries[1], 2.2);  // nominal again
}

TEST(Link, LossRetransmitsDeterministicallyAndKeepsOrder) {
  auto run_once = [](std::vector<double>* times, std::uint64_t* retransmits) {
    Simulator sim;
    Link link(sim, 0.1, "l");
    link.set_fault_rng(Rng(42));
    link.set_loss(0.5);
    std::vector<int> order;
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(0.01 * i, [&, i] {
        link.send([&, i] {
          order.push_back(i);
          times->push_back(sim.now());
        });
      });
    }
    sim.run();
    ASSERT_EQ(order.size(), 40u);
    for (int i = 0; i < 40; ++i) {
      ASSERT_EQ(order[i], i);  // FIFO survives retransmission jitter
    }
    *retransmits = link.messages_retransmitted();
  };
  std::vector<double> first_times;
  std::vector<double> second_times;
  std::uint64_t first_retx = 0;
  std::uint64_t second_retx = 0;
  run_once(&first_times, &first_retx);
  run_once(&second_times, &second_retx);
  EXPECT_GT(first_retx, 0u);  // p = 0.5 over 40 messages: ~40 losses expected
  EXPECT_EQ(first_retx, second_retx);
  EXPECT_EQ(first_times, second_times);  // bit-identical at the same seed
}

TEST(Link, ManyMessagesArriveInOrderUnderSimultaneousSends) {
  Simulator sim;
  Link link(sim, 0.2, "l");
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    link.send([&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace hls
