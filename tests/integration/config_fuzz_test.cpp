// Randomized-configuration property test: sample valid configurations from
// a wide envelope, run every class of strategy, and require the systemic
// invariants (drain to empty, conservation, consistent lock tables) to
// hold. This is the broadest net for protocol bugs that only appear under
// odd parameter combinations.
#include <gtest/gtest.h>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "routing/factory.hpp"
#include "util/random.hpp"

namespace hls {
namespace {

SystemConfig random_config(Rng& rng) {
  SystemConfig cfg;
  cfg.num_sites = static_cast<int>(rng.uniform_int(1, 16));
  cfg.local_mips = rng.uniform(0.5, 3.0);
  cfg.central_mips = rng.uniform(2.0, 30.0);
  cfg.comm_delay = rng.uniform(0.0, 0.8);
  cfg.prob_class_a = rng.uniform(0.3, 1.0);
  cfg.db_calls_per_txn = static_cast<int>(rng.uniform_int(1, 14));
  cfg.setup_io_time = rng.uniform(0.0, 0.06);
  cfg.call_io_time = rng.uniform(0.0, 0.05);
  cfg.prob_call_io = rng.uniform(0.0, 1.0);
  cfg.prob_write_lock = rng.uniform(0.0, 1.0);
  // Lock space scaled to keep contention heavy-but-feasible.
  cfg.lockspace = static_cast<std::uint32_t>(
      cfg.num_sites * rng.uniform_int(300, 4000));
  cfg.async_batch_window = rng.bernoulli(0.3) ? rng.uniform(0.05, 0.5) : 0.0;
  cfg.deadlock_victim =
      rng.bernoulli(0.5) ? DeadlockVictim::Requester : DeadlockVictim::Youngest;
  cfg.class_b_mode =
      rng.bernoulli(0.2) ? ClassBMode::RemoteCalls : ClassBMode::Ship;
  cfg.abort_restart_delay = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.3) : 0.0;
  cfg.ideal_state_info = rng.bernoulli(0.2);
  cfg.seed = rng.next_u64();

  // Offered load: a conservative fraction of the local-CPU bound so every
  // sampled system is stable (we are testing correctness, not overload).
  const double cpu_per_txn =
      (cfg.instr_msg_init + cfg.db_calls_per_txn * cfg.instr_per_call +
       cfg.instr_msg_commit) /
      (cfg.local_mips * 1e6);
  cfg.arrival_rate_per_site = rng.uniform(0.2, 0.55) / cpu_per_txn;
  return cfg;
}

StrategyKind random_strategy(Rng& rng) {
  static constexpr StrategyKind kKinds[] = {
      StrategyKind::NoLoadSharing,    StrategyKind::AlwaysCentral,
      StrategyKind::StaticProbability, StrategyKind::MeasuredRt,
      StrategyKind::QueueLength,      StrategyKind::UtilThreshold,
      StrategyKind::MinIncomingQueue, StrategyKind::MinIncomingNsys,
      StrategyKind::MinAverageQueue,  StrategyKind::MinAverageNsys,
  };
  return kKinds[rng.next_below(std::size(kKinds))];
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, RandomConfigDrainsWithInvariants) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  const SystemConfig cfg = random_config(rng);
  const StrategyKind kind = random_strategy(rng);
  StrategySpec spec{kind, 0.0};
  if (kind == StrategyKind::StaticProbability) {
    spec.parameter = rng.uniform(0.0, 1.0);
  } else if (kind == StrategyKind::UtilThreshold) {
    spec.parameter = rng.uniform(-0.4, 0.4);
  }
  // AlwaysCentral at high rates can overload the central complex; scale the
  // load down for the all-central baseline so the run stays feasible.
  SystemConfig run_cfg = cfg;
  if (kind == StrategyKind::AlwaysCentral ||
      run_cfg.class_b_mode == ClassBMode::RemoteCalls) {
    run_cfg.arrival_rate_per_site *= 0.3;
  }

  HybridSystem sys(run_cfg,
                   make_strategy(spec, ModelParams::from_config(run_cfg),
                                 run_cfg.seed));
  sys.enable_arrivals();
  sys.run_for(60.0);
  sys.check_invariants();
  sys.stop_arrivals();
  sys.drain();

  EXPECT_EQ(sys.live_transactions(), 0)
      << "kind=" << static_cast<int>(kind) << " sites=" << run_cfg.num_sites;
  EXPECT_EQ(sys.metrics().completions,
            sys.metrics().arrivals_class_a + sys.metrics().arrivals_class_b);
  EXPECT_EQ(sys.central_locks().locks_held(), 0u);
  EXPECT_EQ(sys.central_locks().waiters(), 0u);
  for (int s = 0; s < run_cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).locks_held(), 0u);
    EXPECT_EQ(sys.local_locks(s).waiters(), 0u);
    EXPECT_EQ(sys.local_locks(s).pending_coherence_entities(), 0u);
  }
  sys.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz, ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace hls
