// Conservation properties over a seed × strategy × fault grid.
//
// Three families of invariant, each checked after a full stop-arrivals →
// drain cycle so no transaction is in flight to blur the books:
//
//   * flow conservation — every admitted transaction completes exactly once
//     (rejected arrivals at crashed sites are tallied separately and never
//     enter the system);
//   * the phase-sum identity — summed over all completions, per-phase time
//     equals total response time to 1e-9 relative (each individual
//     transaction is already asserted at completion; this checks the
//     aggregation path end to end);
//   * Little's law — the sampler's time-averaged population tracks
//     λ·W, and exactly (not statistically) ∫N dt equals the sum of
//     response times less the unobservable response legs (central commits
//     retire at commit, dated comm_delay later), which the sampled average
//     approximates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "obs/phase.hpp"
#include "routing/factory.hpp"

namespace hls {
namespace {

struct GridPoint {
  std::uint64_t seed;
  const char* spec;  ///< full factory grammar, wrappers included
  bool faulted;
  bool chaos;  ///< steady message-level chaos plus a msg_fault window
};

SystemConfig grid_config(const GridPoint& gp) {
  SystemConfig cfg;
  cfg.seed = gp.seed;
  cfg.arrival_rate_per_site = 1.6;
  cfg.obs_sample_interval = 0.25;
  // Per-resource telemetry + heat counters armed across the whole grid:
  // pure state writes on paths that already run, so every conservation law
  // (and the metrics themselves) must hold bit-identically either way.
  cfg.obs_resource_telemetry = true;
  cfg.obs_heat_buckets = 16;
  // Consulted only by `adapt:` specs; inert for every other strategy.
  cfg.adapt_interval = 2.0;
  if (gp.faulted) {
    cfg.ship_timeout = 2.0;
    cfg.faults.windows.push_back(
        {FaultKind::CentralOutage, -1, 10.0, 6.0, 1.0, 0.0});
    cfg.faults.windows.push_back(
        {FaultKind::SiteOutage, 1, 25.0, 5.0, 1.0, 0.0});
  }
  if (gp.chaos) {
    cfg.faults.dup_prob = 0.15;
    cfg.faults.dup_extra = 0.05;
    cfg.faults.reorder_prob = 0.15;
    cfg.faults.reorder_window = 0.3;
    cfg.faults.spike_prob = 0.1;
    cfg.faults.spike_factor = 3.0;
    cfg.faults.windows.push_back(
        {FaultKind::MsgFault, -1, 12.0, 8.0, 1.0, 0.0, 0.45, 0.45, 0.2, 5.0});
  }
  return cfg;
}

class ConservationTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ConservationTest, HoldsAfterDrain) {
  const GridPoint gp = GetParam();
  const SystemConfig cfg = grid_config(gp);
  auto strategy = make_strategy(parse_strategy_spec(gp.spec),
                                ModelParams::from_config(cfg), cfg.seed ^ 0xF00);
  HybridSystem sys(cfg, std::move(strategy));
  sys.enable_arrivals();
  sys.run_for(40.0);
  sys.stop_arrivals();
  sys.drain();
  const double t_end = sys.simulator().now();
  const Metrics& m = sys.metrics();

  // ---- flow conservation ----
  EXPECT_EQ(sys.live_transactions(), 0);
  ASSERT_GT(m.completions, 0u);
  EXPECT_EQ(m.arrivals_class_a + m.arrivals_class_b, m.completions);
  EXPECT_EQ(m.completions, m.completions_local_a + m.completions_shipped_a +
                               m.completions_class_b);
  EXPECT_EQ(m.reruns, m.aborts_total());
  if (gp.faulted) {
    EXPECT_GT(m.arrivals_rejected + m.ship_timeouts, 0u);
  } else {
    EXPECT_EQ(m.arrivals_rejected, 0u);
  }
  sys.check_invariants();

  // ---- message-chaos double entry ----
  // Every link-level duplication is rejected exactly once by the handlers'
  // sequence-number dedup, resequencing only happens when the links actually
  // inverted deliveries, and the per-site counters sum to the global books.
  const HybridSystem::LinkFaultTotals lf = sys.link_fault_totals();
  EXPECT_EQ(m.dup_msgs_dropped, lf.duplicated);
  if (lf.reordered == 0) {
    EXPECT_EQ(m.msgs_resequenced, 0u);
  }
  std::uint64_t dup_sum = 0;
  std::uint64_t reseq_sum = 0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    dup_sum += sys.site_metrics(s).dup_msgs_dropped;
    reseq_sum += sys.site_metrics(s).msgs_resequenced;
  }
  EXPECT_EQ(dup_sum, m.dup_msgs_dropped);
  EXPECT_EQ(reseq_sum, m.msgs_resequenced);
  if (gp.chaos) {
    EXPECT_GT(lf.duplicated, 0u);
    EXPECT_GT(m.msgs_resequenced, 0u);
  } else {
    EXPECT_EQ(m.dup_msgs_dropped, 0u);
    EXPECT_EQ(m.msgs_resequenced, 0u);
  }

  // ---- abort-provenance double entry ----
  // check_invariants() already HLS_ASSERTs these; restating them as EXPECTs
  // keeps the conservation laws visible as named test failures.
  std::uint64_t cause_total = 0;
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    std::uint64_t site_sum = 0;
    for (int s = 0; s < cfg.num_sites; ++s) {
      site_sum += sys.site_metrics(s).aborts[c];
    }
    EXPECT_EQ(m.aborts[c], site_sum) << "cause " << c;
    cause_total += m.aborts[c];
  }
  EXPECT_EQ(cause_total, m.reruns);
  EXPECT_EQ(m.conflict_matrix_total(), cause_total);
  std::uint64_t winner_cells = 0;
  for (int v = 0; v < m.conflict_sites; ++v) {
    for (int w = 0; w < m.conflict_sites; ++w) {
      winner_cells += m.conflict(v, w);
    }
  }
  EXPECT_EQ(winner_cells, m.aborts_with_winner);
  EXPECT_LE(m.aborts_with_winner, cause_total);
  // Wasted work: the per-cause ledgers and the victims' home-site tallies
  // are the same entries summed two ways.
  double site_wasted_cpu = 0.0;
  double site_wasted_io = 0.0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    site_wasted_cpu += sys.site_metrics(s).wasted_cpu;
    site_wasted_io += sys.site_metrics(s).wasted_io;
  }
  EXPECT_NEAR(site_wasted_cpu, m.wasted_cpu_total(), 1e-6);
  EXPECT_NEAR(site_wasted_io, m.wasted_io_total(), 1e-6);
  // Per-transaction wasted totals cover at least the CPU + I/O ledgers
  // (they also include wasted wait time), one sample per completion.
  EXPECT_EQ(m.wasted_per_txn.count(), m.completions);
  EXPECT_GE(m.wasted_per_txn.sum() + 1e-6,
            m.wasted_cpu_total() + m.wasted_io_total());

  // ---- phase-sum identity, aggregated ----
  double phase_total = 0.0;
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    const SampleStat& s = m.rt_phase[static_cast<std::size_t>(p)];
    // One sample per completion and phase, even for zero-second phases, so
    // phase means compose with the response-time mean.
    EXPECT_EQ(s.count(), m.completions)
        << obs::phase_name(static_cast<obs::Phase>(p));
    phase_total += s.sum();
  }
  EXPECT_NEAR(phase_total, m.rt_all.sum(),
              1e-9 * (1.0 + std::abs(m.rt_all.sum())));

  // ---- Little's law from the sampler series ----
  const std::vector<obs::SampleRow>& series = sys.sample_series();
  ASSERT_FALSE(series.empty());
  double mean_live = 0.0;
  for (const obs::SampleRow& row : series) {
    mean_live += row.live_txns;
  }
  mean_live /= static_cast<double>(series.size());
  // ∫N dt == Σ response times minus the response legs (population empty at
  // both ends): a central commit retires the transaction from the live set
  // when the commit is processed, but its completion is dated one constant
  // comm_delay later — the flight home is part of rt_all yet never
  // observable as a live transaction, so every shipped-A and class-B
  // completion contributes exactly comm_delay of unsampleable area. The
  // 0.25 s sampling grid turns the corrected identity into an
  // approximation. (An all-shipped cell like always-central makes the
  // uncorrected comparison fail: the gap is ~comm_delay/W of the area.)
  const double response_legs =
      cfg.comm_delay * static_cast<double>(m.completions_shipped_a +
                                           m.completions_class_b);
  const double exact_area = m.rt_all.sum() - response_legs;
  const double sampled_area = mean_live * t_end;
  EXPECT_NEAR(sampled_area, exact_area, 0.15 * exact_area);
  // λ·W with λ over the full horizon (arrivals stopped at t = 40) and W
  // the mean observable (live) span.
  const double lambda = static_cast<double>(m.completions) / t_end;
  const double mean_live_span =
      exact_area / static_cast<double>(m.completions);
  EXPECT_NEAR(mean_live, lambda * mean_live_span, 0.15 * mean_live);

  // The series is strictly ordered on the configured cadence and its
  // last row precedes the drain's end.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_NEAR(series[i].time - series[i - 1].time, cfg.obs_sample_interval, 1e-9);
  }
  EXPECT_LE(series.back().time, t_end + 1e-9);

  // ---- per-resource Little's law (exact, per CPU) ----
  // No measurement reset ran, so both ledgers cover [0, t_end] and — with
  // every queue empty after the drain — the time-averaged signals equal the
  // completed-burst ledgers exactly (up to float reassociation): ∫busy dt ==
  // Σ service, ∫queue_length dt == Σ (completion - submit).
  const auto expect_little = [t_end](const FcfsResource& cpu) {
    EXPECT_EQ(cpu.queue_length(), 0u) << cpu.name();
    EXPECT_NEAR(cpu.utilization() * t_end, cpu.busy_seconds(),
                1e-9 * (1.0 + cpu.busy_seconds()))
        << cpu.name();
    EXPECT_NEAR(cpu.average_queue_length() * t_end, cpu.sojourn_seconds(),
                1e-9 * (1.0 + cpu.sojourn_seconds()))
        << cpu.name();
  };
  expect_little(sys.central_cpu());
  for (int s = 0; s < cfg.num_sites; ++s) {
    expect_little(sys.local_cpu(s));
  }

  // ---- telemetry gauges drain to zero ----
  // The wait-queue, in-flight-message and IO-occupancy gauges mirror
  // integer populations, so a drained system must read exactly zero on all
  // of them (a leak here means a gauge update was skipped on some path).
  EXPECT_EQ(sys.central_locks().waiters(), 0u);
  EXPECT_TRUE(sys.central_locks().wait_telemetry_enabled());
  EXPECT_EQ(sys.io_in_flight(obs::kCentralTrack), 0);
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).waiters(), 0u) << "site " << s;
    EXPECT_TRUE(sys.local_locks(s).wait_telemetry_enabled()) << "site " << s;
    EXPECT_EQ(sys.io_in_flight(s), 0) << "site " << s;
  }
  // The extended sampler rows carried those gauges; the last row taken
  // before the drain finished must already exist and be extended.
  EXPECT_TRUE(series.back().extended);

  // ---- lock-heat sanity ----
  // Heat buckets count lock-table accesses (requests + authentication
  // grabs): with completions in every grid cell, some bucket somewhere is
  // hot, and every bucket is finite and attributable.
  std::uint64_t heat_total = 0;
  for (std::uint64_t h : sys.central_locks().heat()) {
    heat_total += h;
  }
  for (int s = 0; s < cfg.num_sites; ++s) {
    EXPECT_EQ(sys.local_locks(s).heat().size(),
              static_cast<std::size_t>(cfg.obs_heat_buckets))
        << "site " << s;
    for (std::uint64_t h : sys.local_locks(s).heat()) {
      heat_total += h;
    }
  }
  EXPECT_GT(heat_total, 0u);
}

// Every factory-constructible spec appears at least once: all eleven base
// kinds, both `failsafe:` forms, and `adapt:` in all its nestings — with the
// adaptive wrappers also exercised under faults and message chaos.
INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationTest,
    ::testing::Values(
        GridPoint{1, "no-load-sharing", false, false},
        GridPoint{1, "always-central", false, false},
        GridPoint{1, "static:0.3", false, false},
        GridPoint{1, "min-average-queue", false, false},
        GridPoint{1, "min-average-nsys", false, false},
        GridPoint{7, "static-optimal", false, false},
        GridPoint{7, "measured-rt", false, false},
        GridPoint{7, "min-incoming-queue", false, false},
        GridPoint{7, "min-incoming-nsys", false, false},
        GridPoint{7, "min-average-nsys", true, false},
        GridPoint{42, "static:0.3", true, false},
        GridPoint{42, "queue-length", true, false},
        GridPoint{42, "util-threshold:-0.2", true, false},
        GridPoint{7, "failsafe:min-average-nsys", true, false},
        GridPoint{42, "failsafe@2.5:queue-length", true, true},
        GridPoint{11, "min-average-nsys", false, true},
        GridPoint{11, "static:0.3", true, true},
        GridPoint{42, "queue-length", true, true},
        GridPoint{1, "adapt:util-threshold:0", false, false},
        GridPoint{7, "adapt:failsafe:util-threshold:-0.1", true, false},
        GridPoint{11, "adapt@1.5:min-average-nsys", false, true},
        GridPoint{42, "adapt:failsafe:min-average-nsys", true, true}));

}  // namespace
}  // namespace hls
