// Whole-stack determinism: identical seeds must reproduce identical event
// streams, metrics, traces and decisions — the property every regression
// pin and every fixed-trace what-if comparison rests on.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "model/params.hpp"
#include "routing/factory.hpp"

namespace hls {
namespace {

struct RunFingerprint {
  std::uint64_t events = 0;
  std::uint64_t completions = 0;
  double rt_sum = 0.0;
  std::string trace;

  bool operator==(const RunFingerprint& other) const {
    return events == other.events && completions == other.completions &&
           rt_sum == other.rt_sum && trace == other.trace;
  }
};

RunFingerprint fingerprint(std::uint64_t seed, StrategyKind kind) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = seed;
  HybridSystem sys(cfg,
                   make_strategy({kind, 0.0}, ModelParams::from_config(cfg), seed));
  std::ostringstream trace_out;
  TraceWriter writer(trace_out);
  writer.attach(sys);
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.stop_arrivals();
  sys.drain();
  RunFingerprint fp;
  fp.events = sys.simulator().executed_events();
  fp.completions = sys.metrics().completions;
  fp.rt_sum = sys.metrics().rt_all.sum();
  fp.trace = trace_out.str();
  return fp;
}

class DeterminismTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(DeterminismTest, IdenticalSeedsReproduceEventForEvent) {
  const RunFingerprint a = fingerprint(7, GetParam());
  const RunFingerprint b = fingerprint(7, GetParam());
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.completions, 50u);
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const RunFingerprint a = fingerprint(7, GetParam());
  const RunFingerprint b = fingerprint(8, GetParam());
  EXPECT_NE(a.trace, b.trace);
}

INSTANTIATE_TEST_SUITE_P(Strategies, DeterminismTest,
                         ::testing::Values(StrategyKind::NoLoadSharing,
                                           StrategyKind::StaticProbability,
                                           StrategyKind::QueueLength,
                                           StrategyKind::MinAverageNsys));

TEST(DeterminismTest, BatchingModePreservesDeterminism) {
  auto run = [] {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 2.0;
    cfg.async_batch_window = 0.2;
    cfg.seed = 3;
    HybridSystem sys(cfg, make_strategy({StrategyKind::StaticProbability, 0.5},
                                        ModelParams::from_config(cfg), 3));
    sys.enable_arrivals();
    sys.run_for(80.0);
    sys.stop_arrivals();
    sys.drain();
    return std::make_pair(sys.simulator().executed_events(),
                          sys.metrics().rt_all.sum());
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, RfcModePreservesDeterminism) {
  auto run = [] {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 0.6;
    cfg.class_b_mode = ClassBMode::RemoteCalls;
    cfg.seed = 4;
    HybridSystem sys(cfg, make_strategy({StrategyKind::QueueLength, 0.0},
                                        ModelParams::from_config(cfg), 4));
    sys.enable_arrivals();
    sys.run_for(80.0);
    sys.stop_arrivals();
    sys.drain();
    return std::make_pair(sys.simulator().executed_events(),
                          sys.metrics().rt_all.sum());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hls
