// Whole-stack determinism: identical seeds must reproduce identical event
// streams, metrics, traces and decisions — the property every regression
// pin and every fixed-trace what-if comparison rests on.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/trace.hpp"
#include "model/params.hpp"
#include "obs/csv_sink.hpp"
#include "obs/ring_sink.hpp"
#include "routing/factory.hpp"

namespace hls {
namespace {

struct RunFingerprint {
  std::uint64_t events = 0;
  std::uint64_t completions = 0;
  double rt_sum = 0.0;
  std::string trace;

  bool operator==(const RunFingerprint& other) const {
    return events == other.events && completions == other.completions &&
           rt_sum == other.rt_sum && trace == other.trace;
  }
};

RunFingerprint fingerprint(std::uint64_t seed, StrategyKind kind) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = seed;
  HybridSystem sys(cfg,
                   make_strategy({kind, 0.0}, ModelParams::from_config(cfg), seed));
  std::ostringstream trace_out;
  TraceWriter writer(trace_out);
  writer.attach(sys);
  sys.enable_arrivals();
  sys.run_for(100.0);
  sys.stop_arrivals();
  sys.drain();
  RunFingerprint fp;
  fp.events = sys.simulator().executed_events();
  fp.completions = sys.metrics().completions;
  fp.rt_sum = sys.metrics().rt_all.sum();
  fp.trace = trace_out.str();
  return fp;
}

class DeterminismTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(DeterminismTest, IdenticalSeedsReproduceEventForEvent) {
  const RunFingerprint a = fingerprint(7, GetParam());
  const RunFingerprint b = fingerprint(7, GetParam());
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.completions, 50u);
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const RunFingerprint a = fingerprint(7, GetParam());
  const RunFingerprint b = fingerprint(8, GetParam());
  EXPECT_NE(a.trace, b.trace);
}

INSTANTIATE_TEST_SUITE_P(Strategies, DeterminismTest,
                         ::testing::Values(StrategyKind::NoLoadSharing,
                                           StrategyKind::StaticProbability,
                                           StrategyKind::QueueLength,
                                           StrategyKind::MinAverageNsys));

TEST(DeterminismTest, BatchingModePreservesDeterminism) {
  auto run = [] {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 2.0;
    cfg.async_batch_window = 0.2;
    cfg.seed = 3;
    HybridSystem sys(cfg, make_strategy({StrategyKind::StaticProbability, 0.5},
                                        ModelParams::from_config(cfg), 3));
    sys.enable_arrivals();
    sys.run_for(80.0);
    sys.stop_arrivals();
    sys.drain();
    return std::make_pair(sys.simulator().executed_events(),
                          sys.metrics().rt_all.sum());
  };
  EXPECT_EQ(run(), run());
}

TEST(DeterminismTest, TraceSinksDoNotPerturbTheSimulation) {
  // Observation must be free: registering sinks (even the full CSV sink
  // subscribed to every event kind) schedules no events, forks no RNG
  // streams, and leaves every metric of a same-seed run bit-identical.
  auto run = [](bool with_sinks) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 2.0;
    cfg.seed = 9;
    cfg.ship_timeout = 2.0;
    cfg.faults.windows.push_back(
        {FaultKind::CentralOutage, -1, 20.0, 6.0, 1.0, 0.0});
    HybridSystem sys(cfg, make_strategy({StrategyKind::MinAverageNsys, 0.0},
                                        ModelParams::from_config(cfg), 9));
    std::ostringstream csv;
    obs::CsvSink full(csv);
    obs::RingSink ring(64, obs::kind_bit(obs::EventKind::Fault));
    if (with_sinks) {
      sys.add_trace_sink(&full);
      sys.add_trace_sink(&ring);
    }
    sys.enable_arrivals();
    sys.run_for(60.0);
    sys.stop_arrivals();
    sys.drain();
    if (with_sinks) {
      EXPECT_GT(full.rows_written(), 0u);
      EXPECT_EQ(ring.total_seen(), 2u);  // crash + recovery
    }
    return std::make_tuple(sys.simulator().executed_events(),
                           sys.metrics().completions,
                           sys.metrics().rt_all.sum(),
                           sys.metrics().ship_timeouts);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(DeterminismTest, SamplerDoesNotPerturbMetrics) {
  // The sampler does schedule events (so executed_events differs) but its
  // callbacks only read: every transaction-visible observable of a
  // same-seed run is unchanged, and the completion trace is byte-identical.
  auto run = [](double interval) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 2.0;
    cfg.seed = 10;
    cfg.obs_sample_interval = interval;
    HybridSystem sys(cfg, make_strategy({StrategyKind::MinAverageNsys, 0.0},
                                        ModelParams::from_config(cfg), 10));
    std::ostringstream trace_out;
    TraceWriter writer(trace_out);
    writer.attach(sys);
    sys.enable_arrivals();
    sys.run_for(60.0);
    sys.stop_arrivals();
    sys.drain();
    return std::make_tuple(sys.metrics().completions,
                           sys.metrics().rt_all.sum(),
                           sys.metrics().aborts_total(), trace_out.str());
  };
  const auto off = run(0.0);
  const auto on = run(0.5);
  EXPECT_EQ(off, on);
}

TEST(DeterminismTest, SamplerDisabledByDefaultSchedulesNothing) {
  // Byte-parity contract: obs_sample_interval = 0 must leave the executed
  // event count identical to a build that never had a sampler. Pinning
  // "sampler on => strictly more events, sampler off => same count as the
  // baseline" guards against a stray schedule in the constructor.
  auto events_with = [](double interval) {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 1.0;
    cfg.seed = 11;
    cfg.obs_sample_interval = interval;
    HybridSystem sys(cfg, make_strategy({StrategyKind::NoLoadSharing, 0.0},
                                        ModelParams::from_config(cfg), 11));
    sys.enable_arrivals();
    sys.run_for(30.0);
    sys.stop_arrivals();
    sys.drain();
    return sys.simulator().executed_events();
  };
  const std::uint64_t base = events_with(0.0);
  const std::uint64_t sampled = events_with(1.0);
  EXPECT_EQ(events_with(0.0), base);
  EXPECT_GT(sampled, base);
}

TEST(DeterminismTest, RfcModePreservesDeterminism) {
  auto run = [] {
    SystemConfig cfg;
    cfg.arrival_rate_per_site = 0.6;
    cfg.class_b_mode = ClassBMode::RemoteCalls;
    cfg.seed = 4;
    HybridSystem sys(cfg, make_strategy({StrategyKind::QueueLength, 0.0},
                                        ModelParams::from_config(cfg), 4));
    sys.enable_arrivals();
    sys.run_for(80.0);
    sys.stop_arrivals();
    sys.drain();
    return std::make_pair(sys.simulator().executed_events(),
                          sys.metrics().rt_all.sum());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hls
