// Integration tests pinning the paper's headline qualitative claims (§4.2)
// at reduced simulation length — the full-length reproduction lives in
// bench/. These guard against regressions that would silently change the
// story the benches tell.
#include <gtest/gtest.h>

#include "core/driver.hpp"

namespace hls {
namespace {

RunOptions itest_options() {
  RunOptions o;
  o.warmup_seconds = 60.0;
  o.measure_seconds = 400.0;
  return o;
}

SystemConfig config_at(double total_tps, double delay = 0.2) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = total_tps / cfg.num_sites;
  cfg.comm_delay = delay;
  cfg.seed = 1234;
  return cfg;
}

double rt(StrategyKind kind, double tps, double delay = 0.2, double param = 0.0) {
  return run_simulation(config_at(tps, delay), {kind, param}, itest_options())
      .metrics.rt_all.mean();
}

TEST(PaperProperties, NoLoadSharingSaturatesNearTwentyTps) {
  // Figure 4.1: without load sharing the locals overload; ~20 tps is the
  // supportable maximum. At 28 offered, throughput collapses below offered.
  const RunResult r = run_simulation(config_at(28.0),
                                     {StrategyKind::NoLoadSharing, 0.0},
                                     itest_options());
  EXPECT_LT(r.metrics.throughput(), 24.0);
  EXPECT_GT(r.metrics.rt_all.mean(), 5.0);
}

TEST(PaperProperties, StaticLoadSharingExtendsCapacity) {
  // Figure 4.1: optimal static supports ~30 tps comfortably.
  const RunResult r = run_simulation(config_at(30.0),
                                     {StrategyKind::StaticOptimal, 0.0},
                                     itest_options());
  EXPECT_NEAR(r.metrics.throughput(), 30.0, 1.5);
  EXPECT_LT(r.metrics.rt_all.mean(), 2.5);
}

TEST(PaperProperties, StaticBeatsNoSharingAtHighLoad) {
  EXPECT_LT(rt(StrategyKind::StaticOptimal, 24.0),
            rt(StrategyKind::NoLoadSharing, 24.0));
}

TEST(PaperProperties, BestDynamicBeatsStaticAtHighLoad) {
  // §4.2: the min-average schemes outperform the optimal static strategy.
  EXPECT_LT(rt(StrategyKind::MinAverageNsys, 28.0),
            rt(StrategyKind::StaticOptimal, 28.0));
}

TEST(PaperProperties, MinAverageBeatsMinIncoming) {
  // §4.2: accounting for the effect on all running transactions beats
  // optimizing the incoming transaction alone (curves E/F vs C/D).
  const double avg = rt(StrategyKind::MinAverageNsys, 30.0);
  const double inc = rt(StrategyKind::MinIncomingNsys, 30.0);
  EXPECT_LE(avg, inc * 1.05);  // allow simulation noise; must not be worse
}

TEST(PaperProperties, MeasuredRtHeuristicIsWorstDynamicScheme) {
  // Figure 4.2 curve A: better than nothing, worse than the others.
  const double measured = rt(StrategyKind::MeasuredRt, 26.0);
  EXPECT_LT(measured, rt(StrategyKind::NoLoadSharing, 26.0));
  EXPECT_GT(measured, rt(StrategyKind::MinAverageNsys, 26.0));
}

TEST(PaperProperties, StaticShipsNothingAtLowRates) {
  // Figure 4.3: no shipping below ~5 tps.
  const RunResult r = run_simulation(config_at(4.0),
                                     {StrategyKind::StaticOptimal, 0.0},
                                     itest_options());
  EXPECT_LT(r.metrics.ship_fraction(), 0.05);
}

TEST(PaperProperties, DynamicShipsLessThanStaticAtHighLoad) {
  // Figure 4.3: dynamic schemes ship a smaller fraction, yet do better —
  // they ship at the right moments.
  const auto stat = run_simulation(config_at(28.0),
                                   {StrategyKind::StaticOptimal, 0.0},
                                   itest_options());
  const auto dyn = run_simulation(config_at(28.0),
                                  {StrategyKind::MinAverageNsys, 0.0},
                                  itest_options());
  EXPECT_LT(dyn.metrics.ship_fraction(), stat.metrics.ship_fraction());
  EXPECT_LE(dyn.metrics.rt_all.mean(), stat.metrics.rt_all.mean() * 1.02);
}

TEST(PaperProperties, ThresholdSignMattersAtSmallDelay) {
  // Figure 4.4: with a fast central CPU and 0.2 s links, a negative
  // threshold (ship even when the local site looks less utilized) beats a
  // strongly negative one.
  const double t_02 = rt(StrategyKind::UtilThreshold, 26.0, 0.2, -0.2);
  const double t_06 = rt(StrategyKind::UtilThreshold, 26.0, 0.2, -0.6);
  EXPECT_LT(t_02, t_06);
}

TEST(PaperProperties, LargerDelayShrinksStaticGains) {
  // §4.2 / Figure 4.5: at 0.5 s delay the static benefit over no sharing is
  // smaller than at 0.2 s (relative improvement shrinks).
  const double none_02 = rt(StrategyKind::NoLoadSharing, 22.0, 0.2);
  const double stat_02 = rt(StrategyKind::StaticOptimal, 22.0, 0.2);
  const double none_05 = rt(StrategyKind::NoLoadSharing, 22.0, 0.5);
  const double stat_05 = rt(StrategyKind::StaticOptimal, 22.0, 0.5);
  const double gain_02 = none_02 / stat_02;
  const double gain_05 = none_05 / stat_05;
  EXPECT_GT(gain_02, gain_05);
}

TEST(PaperProperties, DynamicStillStrongAtLargeDelay) {
  // Figures 4.5-4.7: dynamic load sharing keeps its advantage at 0.5 s.
  EXPECT_LT(rt(StrategyKind::MinAverageNsys, 28.0, 0.5),
            rt(StrategyKind::NoLoadSharing, 28.0, 0.5));
}

}  // namespace
}  // namespace hls
