// Golden regression suite: pins headline metrics of fixed-seed runs.
//
// Tolerances are deliberately loose (1-3%) so the pins survive minor
// floating-point differences across standard libraries (a 1-ulp libm
// difference can flip a Bernoulli branch and perturb one trajectory) while
// still catching any behavioral change to the protocol, the strategies or
// the model — a changed abort path or misrouted transaction moves these
// numbers by far more.
//
// If an intentional protocol change lands, re-baseline by running with
// --gtest_filter='Regression.*' and copying the reported values.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "model/analytic_model.hpp"
#include "model/static_optimizer.hpp"

namespace hls {
namespace {

RunOptions golden_options() {
  RunOptions o;
  o.warmup_seconds = 100.0;
  o.measure_seconds = 600.0;
  return o;
}

SystemConfig golden_config(double total_tps) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = total_tps / cfg.num_sites;
  cfg.seed = 424242;
  return cfg;
}

#define EXPECT_WITHIN(actual, golden, rel)                       \
  EXPECT_NEAR(actual, golden, std::abs(golden) * (rel))          \
      << "re-baseline: measured " << std::setprecision(12) << (actual)

TEST(Regression, NoLoadSharingAt20Tps) {
  const RunResult r = run_simulation(golden_config(20.0),
                                     {StrategyKind::NoLoadSharing, 0.0},
                                     golden_options());
  EXPECT_WITHIN(r.metrics.rt_all.mean(), 1.84947, 0.03);
  EXPECT_WITHIN(r.metrics.throughput(), 19.9933, 0.01);
  EXPECT_DOUBLE_EQ(r.metrics.ship_fraction(), 0.0);
}

TEST(Regression, StaticHalfAt24Tps) {
  const RunResult r = run_simulation(golden_config(24.0),
                                     {StrategyKind::StaticProbability, 0.5},
                                     golden_options());
  EXPECT_WITHIN(r.metrics.rt_all.mean(), 1.1706, 0.02);
  EXPECT_WITHIN(r.metrics.ship_fraction(), 0.5023, 0.02);
  EXPECT_WITHIN(r.metrics.rt_shipped_a.mean(), 1.2200, 0.02);
  EXPECT_WITHIN(r.metrics.rt_local_a.mean(), 1.12103, 0.03);
}

TEST(Regression, BestDynamicAt32Tps) {
  const RunResult r = run_simulation(golden_config(32.0),
                                     {StrategyKind::MinAverageNsys, 0.0},
                                     golden_options());
  EXPECT_WITHIN(r.metrics.rt_all.mean(), 1.1136, 0.02);
  EXPECT_WITHIN(r.metrics.ship_fraction(), 0.6358, 0.02);
  EXPECT_WITHIN(r.metrics.central_utilization, 0.7173, 0.02);
}

TEST(Regression, QueueHeuristicAt28Tps) {
  const RunResult r = run_simulation(golden_config(28.0),
                                     {StrategyKind::QueueLength, 0.0},
                                     golden_options());
  EXPECT_WITHIN(r.metrics.rt_all.mean(), 1.1504, 0.02);
  EXPECT_WITHIN(r.metrics.ship_fraction(), 0.4410, 0.03);
}

TEST(Regression, AnalyticModelFixedPoint) {
  // The model is pure arithmetic: much tighter pins.
  ModelParams p;
  p.lambda_site = 2.0;
  p.p_ship = 0.4;
  const ModelSolution s = AnalyticModel().solve(p);
  EXPECT_TRUE(s.converged);
  EXPECT_WITHIN(s.r_avg, 1.1467447, 0.001);
  EXPECT_WITHIN(s.rho_local, 0.4433030, 0.001);
  EXPECT_WITHIN(s.rho_central, 0.3401187, 0.001);
}

TEST(Regression, StaticOptimizerChoice) {
  ModelParams p;
  p.lambda_site = 2.4;
  const StaticOptimum opt = StaticOptimizer().optimize(p);
  EXPECT_WITHIN(opt.p_ship, 0.66798, 0.005);
  EXPECT_WITHIN(opt.solution.r_avg, 1.1357537, 0.001);
}

}  // namespace
}  // namespace hls
