// Golden metrics: one pinned run per architecture.
//
// The simulator is deterministic by contract, so for a fixed configuration
// the exact event counts and the exact (to double round-off) response-time
// sums are part of the observable behavior. These tests pin them. Any
// change to the protocol, the RNG stream layout, or the event ordering
// shows up here first — as a crisp numeric diff instead of a vague drift
// in a distributional assertion.
//
// Re-pin procedure (only after convincing yourself the behavior change is
// intended, e.g. a deliberate protocol fix):
//
//     HLS_REPIN=1 ./build/tests/golden_metrics_test
//
// prints a fresh constants block for each scenario; paste it over the
// matching `Golden` initializer below and note the cause in the commit.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "baseline/centralized_system.hpp"
#include "baseline/distributed_system.hpp"
#include "core/driver.hpp"

namespace hls {
namespace {

bool repin_mode() { return std::getenv("HLS_REPIN") != nullptr; }

SystemConfig golden_config() {
  SystemConfig cfg;
  cfg.seed = 20240117;
  cfg.arrival_rate_per_site = 1.8;
  cfg.comm_delay = 0.2;
  return cfg;
}

struct Golden {
  std::uint64_t completions;
  std::uint64_t aborts_or_deadlocks;
  double rt_sum;   ///< exact double: sum of measured response times
  double rt_mean;  ///< redundant with (rt_sum, completions); human-readable
};

void check_or_print(const char* name, std::uint64_t completions,
                    std::uint64_t aborts, double rt_sum, const Golden& want) {
  if (repin_mode()) {
    std::printf("  // %s\n  const Golden want{%lluu, %lluu, %.17g, %.17g};\n",
                name, static_cast<unsigned long long>(completions),
                static_cast<unsigned long long>(aborts), rt_sum,
                completions > 0 ? rt_sum / static_cast<double>(completions)
                                : 0.0);
    return;
  }
  EXPECT_EQ(completions, want.completions) << name;
  EXPECT_EQ(aborts, want.aborts_or_deadlocks) << name;
  // The sum is reproduced term-for-term in the same order, so it matches to
  // the last bit; 1e-9 absolute leaves headroom for compiler FP contraction.
  EXPECT_NEAR(rt_sum, want.rt_sum, 1e-9) << name;
  if (want.completions > 0) {
    EXPECT_NEAR(rt_sum / static_cast<double>(completions), want.rt_mean, 1e-9)
        << name;
  }
}

/// Per-cause abort pins: the provenance counters are part of the observable
/// behavior too, so a protocol change that shifts *why* transactions abort
/// (not just how many) is caught here. Same HLS_REPIN procedure.
struct GoldenCauses {
  std::uint64_t by_cause[static_cast<int>(AbortCause::kCount)];
  std::uint64_t with_winner;
};

void check_or_print_causes(const char* name, const Metrics& m,
                           const GoldenCauses& want) {
  if (repin_mode()) {
    std::printf("  const GoldenCauses want_causes{{");
    for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
      std::printf("%s%lluu", c ? ", " : "",
                  static_cast<unsigned long long>(m.aborts[c]));
    }
    std::printf("}, %lluu};  // %s\n",
                static_cast<unsigned long long>(m.aborts_with_winner), name);
    return;
  }
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    EXPECT_EQ(m.aborts[c], want.by_cause[c]) << name << " cause " << c;
  }
  EXPECT_EQ(m.aborts_with_winner, want.with_winner) << name;
  EXPECT_EQ(m.conflict_matrix_total(), m.aborts_total()) << name;
}

TEST(GoldenMetrics, Hybrid) {
  RunOptions opts;
  opts.warmup_seconds = 40.0;
  opts.measure_seconds = 200.0;
  const RunResult r =
      run_simulation(golden_config(), {StrategyKind::MinAverageNsys, 0.0}, opts);
  const Golden want{3451u, 16u, 3509.8352350586042, 1.017048749654768};
  check_or_print("hybrid/min-avg-nsys", r.metrics.completions,
                 r.metrics.aborts_total(), r.metrics.rt_all.sum(), want);
  const GoldenCauses want_causes{{2u, 4u, 10u, 0u, 0u, 0u}, 6u};
  check_or_print_causes("hybrid/min-avg-nsys", r.metrics, want_causes);
  if (!repin_mode()) {
    // The paper's headline composition holds exactly: every completion is
    // in exactly one of the three route/class buckets.
    EXPECT_EQ(r.metrics.completions,
              r.metrics.completions_local_a + r.metrics.completions_shipped_a +
                  r.metrics.completions_class_b);
  }
}

TEST(GoldenMetrics, Centralized) {
  CentralizedSystem sys(golden_config());
  sys.enable_arrivals();
  sys.run_for(40.0);
  sys.begin_measurement();
  sys.run_for(200.0);
  sys.end_measurement();
  const Golden want{3555u, 1u, 2603.4694828701604, 0.73234022021664147};
  check_or_print("centralized", sys.metrics().completions,
                 sys.metrics().deadlock_aborts, sys.metrics().rt_all.sum(),
                 want);
}

TEST(GoldenMetrics, Distributed) {
  DistributedSystem sys(golden_config());
  sys.enable_arrivals();
  sys.run_for(40.0);
  sys.begin_measurement();
  sys.run_for(200.0);
  sys.end_measurement();
  const Golden want{3326u, 89u, 45681.472424492189, 13.73465797489242};
  check_or_print("distributed", sys.metrics().completions,
                 sys.metrics().deadlock_aborts + sys.metrics().timeout_aborts,
                 sys.metrics().rt_all.sum(), want);
}

TEST(GoldenMetrics, HybridWithFaultsAndSampler) {
  // The faulted + sampled variant pins the interaction of fault injection,
  // the timeout ladder, and the (read-only) time-series sampler: if the
  // sampler ever perturbs the event sequence, this diverges from the
  // equivalent run in determinism_test.
  SystemConfig cfg = golden_config();
  cfg.ship_timeout = 2.0;
  cfg.obs_sample_interval = 1.0;
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 60.0, 15.0, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::SiteOutage, 2, 120.0, 10.0, 1.0, 0.0});
  RunOptions opts;
  opts.warmup_seconds = 40.0;
  opts.measure_seconds = 200.0;
  const RunResult r = run_simulation(
      cfg, {StrategyKind::MinAverageNsys, 0.0, /*failure_aware=*/true}, opts);
  const Golden want{3435u, 52u, 4492.9985187539987, 1.3080053911947596};
  check_or_print("hybrid/faults+sampler", r.metrics.completions,
                 r.metrics.aborts_total(), r.metrics.rt_all.sum(), want);
  const GoldenCauses want_causes{{8u, 4u, 9u, 0u, 25u, 6u}, 12u};
  check_or_print_causes("hybrid/faults+sampler", r.metrics, want_causes);
  if (!repin_mode()) {
    // One sample per second of the 200 s window (begin_measurement clears
    // the warmup samples; the edge sample at window close may or may not
    // land inside depending on event ordering at the boundary).
    EXPECT_GE(r.series.size(), 199u);
    EXPECT_LE(r.series.size(), 201u);
    EXPECT_GT(r.metrics.ship_timeouts, 0u);
  }
}

}  // namespace
}  // namespace hls
