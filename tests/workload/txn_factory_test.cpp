#include "workload/txn_factory.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hls {
namespace {

SystemConfig small_config() {
  SystemConfig cfg;
  cfg.num_sites = 4;
  cfg.lockspace = 4000;
  return cfg;
}

TEST(TxnFactory, IdsAreUniqueAndValid) {
  const SystemConfig cfg = small_config();
  TxnFactory factory(cfg, Rng(1));
  std::set<TxnId> ids;
  for (int i = 0; i < 1000; ++i) {
    const Transaction txn = factory.make(i % cfg.num_sites, 0.0);
    EXPECT_NE(txn.id, kInvalidTxn);
    EXPECT_TRUE(ids.insert(txn.id).second);
  }
}

TEST(TxnFactory, ShapeMatchesConfig) {
  SystemConfig cfg = small_config();
  cfg.db_calls_per_txn = 7;
  TxnFactory factory(cfg, Rng(2));
  const Transaction txn = factory.make(0, 5.0);
  EXPECT_EQ(txn.locks.size(), 7u);
  EXPECT_EQ(txn.call_io.size(), 7u);
  EXPECT_DOUBLE_EQ(txn.arrival_time, 5.0);
  EXPECT_EQ(txn.home_site, 0);
  EXPECT_EQ(txn.run_count, 0);
}

TEST(TxnFactory, ClassALocksStayInHomePartition) {
  const SystemConfig cfg = small_config();
  TxnFactory factory(cfg, Rng(3));
  const std::uint32_t part = cfg.partition_size();
  for (int site = 0; site < cfg.num_sites; ++site) {
    for (int i = 0; i < 50; ++i) {
      const Transaction txn = factory.make_of_class(TxnClass::A, site, 0.0);
      for (const LockNeed& need : txn.locks) {
        EXPECT_GE(need.id, site * part);
        EXPECT_LT(need.id, (site + 1) * part);
      }
    }
  }
}

TEST(TxnFactory, ClassBLocksSpanLockSpace) {
  const SystemConfig cfg = small_config();
  TxnFactory factory(cfg, Rng(4));
  std::set<int> owners;
  for (int i = 0; i < 200; ++i) {
    const Transaction txn = factory.make_of_class(TxnClass::B, 0, 0.0);
    for (const LockNeed& need : txn.locks) {
      EXPECT_LT(need.id, cfg.lockspace);
      owners.insert(cfg.owner_site(need.id));
    }
  }
  EXPECT_EQ(owners.size(), static_cast<std::size_t>(cfg.num_sites));
}

TEST(TxnFactory, ClassMixMatchesProbability) {
  SystemConfig cfg = small_config();
  cfg.prob_class_a = 0.75;
  TxnFactory factory(cfg, Rng(5));
  int class_a = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    class_a += factory.make(0, 0.0).cls == TxnClass::A ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(class_a) / n, 0.75, 0.01);
}

TEST(TxnFactory, WriteMixMatchesProbability) {
  SystemConfig cfg = small_config();
  cfg.prob_write_lock = 0.25;
  TxnFactory factory(cfg, Rng(6));
  int writes = 0;
  int total = 0;
  for (int i = 0; i < 5000; ++i) {
    const Transaction txn = factory.make(0, 0.0);
    for (const LockNeed& need : txn.locks) {
      writes += need.mode == LockMode::Exclusive ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.25, 0.01);
}

TEST(TxnFactory, PureReadWorkloadHasNoWrites) {
  SystemConfig cfg = small_config();
  cfg.prob_write_lock = 0.0;
  TxnFactory factory(cfg, Rng(7));
  const Transaction txn = factory.make(0, 0.0);
  EXPECT_FALSE(txn.writes_anything());
}

TEST(TxnFactory, DeterministicAcrossIdenticalFactories) {
  const SystemConfig cfg = small_config();
  TxnFactory a(cfg, Rng(8));
  TxnFactory b(cfg, Rng(8));
  for (int i = 0; i < 100; ++i) {
    const Transaction ta = a.make(1, 0.0);
    const Transaction tb = b.make(1, 0.0);
    ASSERT_EQ(ta.cls, tb.cls);
    ASSERT_EQ(ta.locks.size(), tb.locks.size());
    for (std::size_t k = 0; k < ta.locks.size(); ++k) {
      ASSERT_EQ(ta.locks[k].id, tb.locks[k].id);
      ASSERT_EQ(ta.locks[k].mode, tb.locks[k].mode);
    }
  }
}

TEST(ConfigHelpers, OwnerSiteAndPartition) {
  const SystemConfig cfg = small_config();  // 4 sites, 4000 locks
  EXPECT_EQ(cfg.partition_size(), 1000u);
  EXPECT_EQ(cfg.owner_site(0), 0);
  EXPECT_EQ(cfg.owner_site(999), 0);
  EXPECT_EQ(cfg.owner_site(1000), 1);
  EXPECT_EQ(cfg.owner_site(3999), 3);
}

TEST(ConfigHelpers, RemainderLockIdsBelongToLastSite) {
  SystemConfig cfg;
  cfg.num_sites = 3;
  cfg.lockspace = 10;  // partition 3, ids 9 is remainder
  EXPECT_EQ(cfg.owner_site(9), 2);
}

TEST(ConfigHelpers, CpuSecondConversions) {
  SystemConfig cfg;
  cfg.local_mips = 1.0;
  cfg.central_mips = 15.0;
  EXPECT_DOUBLE_EQ(cfg.local_cpu_seconds(1e6), 1.0);
  EXPECT_NEAR(cfg.central_cpu_seconds(1.5e6), 0.1, 1e-12);
}

}  // namespace
}  // namespace hls
