#include "workload/arrivals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hls {
namespace {

TEST(ArrivalProcess, ConstantRateMatchesMean) {
  Simulator sim;
  ArrivalProcess proc(sim, Rng(1), 5.0);
  int count = 0;
  proc.start([&] { ++count; });
  sim.run_until(2000.0);
  proc.stop();
  EXPECT_NEAR(static_cast<double>(count) / 2000.0, 5.0, 0.15);
}

TEST(ArrivalProcess, ZeroRateNeverFires) {
  Simulator sim;
  ArrivalProcess proc(sim, Rng(2), 0.0);
  int count = 0;
  proc.start([&] { ++count; });
  sim.run_until(100.0);
  EXPECT_EQ(count, 0);
}

TEST(ArrivalProcess, StopHaltsArrivals) {
  Simulator sim;
  ArrivalProcess proc(sim, Rng(3), 10.0);
  int count = 0;
  proc.start([&] { ++count; });
  sim.run_until(10.0);
  const int at_stop = count;
  EXPECT_GT(at_stop, 0);
  proc.stop();
  sim.run_until(100.0);
  EXPECT_EQ(count, at_stop);
}

TEST(ArrivalProcess, InterArrivalTimesAreExponential) {
  Simulator sim;
  ArrivalProcess proc(sim, Rng(4), 2.0);
  std::vector<double> times;
  proc.start([&] { times.push_back(sim.now()); });
  sim.run_until(5000.0);
  proc.stop();
  ASSERT_GT(times.size(), 1000u);
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    sum += gap;
    sum2 += gap * gap;
  }
  const double n = static_cast<double>(times.size() - 1);
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.02);
  // Exponential: variance = mean^2, i.e. cv = 1.
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(ArrivalProcess, TimeVaryingRateByThinning) {
  Simulator sim;
  // Rate 10/s in [0, 100), 1/s in [100, 200).
  RateFunction rate = [](SimTime t) { return t < 100.0 ? 10.0 : 1.0; };
  ArrivalProcess proc(sim, Rng(5), rate, 10.0);
  int early = 0;
  int late = 0;
  proc.start([&] { (sim.now() < 100.0 ? early : late)++; });
  sim.run_until(200.0);
  proc.stop();
  EXPECT_NEAR(early / 100.0, 10.0, 1.0);
  EXPECT_NEAR(late / 100.0, 1.0, 0.4);
}

TEST(ArrivalProcess, GeneratedCounterMatches) {
  Simulator sim;
  ArrivalProcess proc(sim, Rng(6), 3.0);
  int count = 0;
  proc.start([&] { ++count; });
  sim.run_until(100.0);
  proc.stop();
  EXPECT_EQ(proc.generated(), static_cast<std::uint64_t>(count));
}

TEST(ArrivalProcess, DeterministicForSameSeed) {
  auto run_once = [] {
    Simulator sim;
    ArrivalProcess proc(sim, Rng(7), 4.0);
    std::vector<double> times;
    proc.start([&] { times.push_back(sim.now()); });
    sim.run_until(50.0);
    proc.stop();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hls
