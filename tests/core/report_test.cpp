// Run-report generator: the collector's top-K retention policy and the
// rendered report's sections, checked on synthetic events and on a real
// conflict-bearing run.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

obs::Event span_event(TxnId id, obs::Phase phase, double begin, double end,
                      int run = 1) {
  obs::Event e;
  e.kind = obs::EventKind::Span;
  e.txn = id;
  e.span_phase = phase;
  e.span_begin = begin;
  e.time = end;
  e.runs = run;
  return e;
}

obs::Event completion_event(TxnId id, double rt) {
  obs::Event e;
  e.kind = obs::EventKind::Completion;
  e.txn = id;
  e.time = rt;
  e.response_time = rt;
  e.runs = 1;
  return e;
}

TEST(ReportCollector, KeepsTheKSlowestInDescendingOrder) {
  ReportCollector collector(3);
  // Completions arrive in interleaved order; only the three slowest stay.
  for (TxnId id = 1; id <= 7; ++id) {
    const double rt = (id % 2 == 0) ? 10.0 * id : 0.1 * id;
    collector.on_event(completion_event(id, rt));
  }
  const auto& slow = collector.slowest();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].id, 6u);  // rt 60
  EXPECT_EQ(slow[1].id, 4u);  // rt 40
  EXPECT_EQ(slow[2].id, 2u);  // rt 20
  EXPECT_GE(slow[0].response_time, slow[1].response_time);
  EXPECT_GE(slow[1].response_time, slow[2].response_time);
}

TEST(ReportCollector, RetainsSpanHistoryOnlyForKeptTransactions) {
  ReportCollector collector(1);
  collector.on_event(span_event(1, obs::Phase::CpuService, 0.0, 1.0));
  collector.on_event(span_event(2, obs::Phase::Io, 0.0, 0.5));
  collector.on_event(completion_event(1, 9.0));
  collector.on_event(completion_event(2, 1.0));  // faster: evicted
  const auto& slow = collector.slowest();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].id, 1u);
  ASSERT_EQ(slow[0].spans.size(), 1u);
  EXPECT_EQ(slow[0].spans[0].phase, obs::Phase::CpuService);
  EXPECT_DOUBLE_EQ(slow[0].spans[0].end, 1.0);
}

TEST(ReportCollector, ZeroTopKRetainsNothing) {
  ReportCollector collector(0);
  collector.on_event(completion_event(1, 5.0));
  EXPECT_TRUE(collector.slowest().empty());
}

TEST(ReportCollector, SubscribesToSpansAbortsAndCompletions) {
  ReportCollector collector;
  const unsigned mask = collector.kind_mask();
  EXPECT_TRUE(mask & obs::kind_bit(obs::EventKind::Span));
  EXPECT_TRUE(mask & obs::kind_bit(obs::EventKind::Abort));
  EXPECT_TRUE(mask & obs::kind_bit(obs::EventKind::Completion));
  EXPECT_FALSE(mask & obs::kind_bit(obs::EventKind::Sample));
}

// ---- rendered report on a real run ----

SystemConfig conflict_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  cfg.call_io_time = 1.0;
  return cfg;
}

Transaction custom_txn(TxnId id, TxnClass cls, int site,
                       std::vector<LockNeed> locks, bool io_per_call) {
  Transaction txn;
  txn.id = id;
  txn.cls = cls;
  txn.home_site = site;
  txn.locks = std::move(locks);
  txn.call_io.assign(txn.locks.size(), io_per_call);
  return txn;
}

std::string run_and_render() {
  const SystemConfig cfg = conflict_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  ReportCollector collector(2);
  sys.add_trace_sink(&collector);
  // The preemption conflict: txn 1 aborts once and reruns.
  sys.inject_transaction(custom_txn(1, TxnClass::A, 0,
                                    {{5, LockMode::Exclusive}}, true));
  sys.inject_transaction(custom_txn(2, TxnClass::B, 0,
                                    {{5, LockMode::Exclusive}}, false));
  sys.simulator().run();
  std::ostringstream out;
  write_run_report(out, sys.metrics(), &collector);
  return out.str();
}

TEST(RunReport, RendersEverySectionForAConflictRun) {
  const std::string report = run_and_render();
  EXPECT_NE(report.find("=== run report ==="), std::string::npos);
  EXPECT_NE(report.find("phase breakdown"), std::string::npos);
  EXPECT_NE(report.find("abort causes"), std::string::npos);
  EXPECT_NE(report.find("preempted"), std::string::npos);
  EXPECT_NE(report.find("with identified winner: 1 of 1"), std::string::npos);
  EXPECT_NE(report.find("conflict matrix"), std::string::npos);
  EXPECT_NE(report.find("wasted work"), std::string::npos);
  EXPECT_NE(report.find("slowest transactions"), std::string::npos);
  // The victim's span tree shows both attempts and the abort between them.
  EXPECT_NE(report.find("run 1"), std::string::npos);
  EXPECT_NE(report.find("run 2"), std::string::npos);
  EXPECT_NE(report.find("winner txn 2"), std::string::npos);
}

TEST(RunReport, IsDeterministic) {
  EXPECT_EQ(run_and_render(), run_and_render());
}

TEST(RunReport, NullCollectorOmitsTheSlowestSection) {
  Metrics m;
  m.completions = 0;
  std::ostringstream out;
  write_run_report(out, m, nullptr);
  const std::string report = out.str();
  EXPECT_NE(report.find("=== run report ==="), std::string::npos);
  EXPECT_EQ(report.find("slowest transactions"), std::string::npos);
}

TEST(RunReport, EmptyRunRendersWithoutSlowEntries) {
  Metrics m;
  ReportCollector collector(3);
  std::ostringstream out;
  write_run_report(out, m, &collector);
  EXPECT_NE(out.str().find("(none completed)"), std::string::npos);
}

}  // namespace
}  // namespace hls
