// Chaos harness unit tests (core/chaos.hpp): deterministic episode
// generation, the oracle stack on clean episodes, the shrinker on a
// deliberately injected bug (pinned to reach a minimal repro), and the repro
// file round trip. The injected-bug fixture is the self-test demanded by
// docs/CHAOS.md: an oracle that trips on any ship fallback plus a fault
// schedule where exactly one of four windows causes a fallback — the
// shrinker must isolate that window.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"

namespace hls {
namespace {

constexpr std::uint64_t kSoakSeed = 20260808;

TEST(Chaos, EpisodeGenerationIsDeterministic) {
  for (int i = 0; i < 8; ++i) {
    const ChaosEpisode a = make_chaos_episode(kSoakSeed, i);
    const ChaosEpisode b = make_chaos_episode(kSoakSeed, i);
    EXPECT_EQ(describe_chaos_episode(a), describe_chaos_episode(b));
    EXPECT_EQ(a.config.seed, b.config.seed);
    EXPECT_EQ(a.config.num_sites, b.config.num_sites);
    EXPECT_EQ(a.config.faults.windows.size(), b.config.faults.windows.size());
    EXPECT_EQ(a.strategy.kind, b.strategy.kind);
  }
  // Different indices explore different configurations.
  EXPECT_NE(describe_chaos_episode(make_chaos_episode(kSoakSeed, 0)),
            describe_chaos_episode(make_chaos_episode(kSoakSeed, 1)));
}

TEST(Chaos, EpisodesStayInsideTheDocumentedRanges) {
  for (int i = 0; i < 16; ++i) {
    const ChaosEpisode e = make_chaos_episode(kSoakSeed, i);
    EXPECT_GE(e.config.num_sites, 3);
    EXPECT_LE(e.config.num_sites, 8);
    EXPECT_GT(e.config.arrival_rate_per_site, 0.0);
    EXPECT_GT(e.config.chaos_run_seconds, 0.0);
    EXPECT_FALSE(e.config.chaos_strategy.empty());
    EXPECT_GE(e.config.faults.windows.size(), 1u);
    EXPECT_LE(e.config.faults.windows.size(), 4u);
  }
}

TEST(Chaos, CleanEpisodesPassTheOracleStack) {
  for (int i = 0; i < 3; ++i) {
    const ChaosEpisode e = make_chaos_episode(kSoakSeed, i);
    const ChaosVerdict verdict = run_chaos_episode(e);
    EXPECT_TRUE(verdict.passed())
        << describe_chaos_episode(e) << ": " << verdict.failures.size()
        << " failures, first: "
        << (verdict.failures.empty() ? "" : verdict.failures.front());
    EXPECT_GT(verdict.completions, 0u);
  }
}

TEST(Chaos, ExtraOracleFailureIsReported) {
  const ChaosEpisode e = make_chaos_episode(kSoakSeed, 0);
  const ChaosVerdict verdict = run_chaos_episode(
      e, [](const HybridSystem&, std::vector<std::string>& failures) {
        failures.push_back("injected failure");
      });
  ASSERT_FALSE(verdict.passed());
  // Reported once per run of the twice-run replay check.
  EXPECT_EQ(verdict.failures.front(), "injected failure");
}

/// Fixture for the shrinker self-test: four fault windows, of which only the
/// long central outage can produce a ship fallback. Exhausting the ladder
/// (1.5 s timeout, one retry at 3 s backoff) needs ~4.5 s of central
/// unresponsiveness after a ship — far more than the fault-free shipped
/// response of ~0.9 s or anything the mild decoy windows (brief link
/// degrade, one site outage, a message-chaos burst) and the steady message
/// chaos can cause. The shrinker must discard all that noise.
ChaosEpisode injected_bug_episode() {
  ChaosEpisode e;
  e.config.num_sites = 4;
  e.config.arrival_rate_per_site = 1.0;
  e.config.seed = 5;
  e.config.ship_timeout = 1.5;
  e.config.ship_backoff = 2.0;
  e.config.ship_max_retries = 1;
  e.config.faults.dup_prob = 0.2;
  e.config.faults.dup_extra = 0.05;
  e.config.faults.reorder_prob = 0.2;
  e.config.faults.reorder_window = 0.3;
  e.config.faults.windows.push_back(
      {FaultKind::LinkDegrade, -1, 0.0, 0.4, 1.5, 0.05});
  e.config.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 0.5, 5.0, 1.0, 0.0});
  e.config.faults.windows.push_back(
      {FaultKind::SiteOutage, 2, 6.0, 0.4, 1.0, 0.0});
  e.config.faults.windows.push_back(
      {FaultKind::MsgFault, -1, 6.5, 0.5, 1.0, 0.0, 0.4, 0.4, 0.2, 2.0});
  e.config.chaos_strategy = "always-central";
  e.config.chaos_run_seconds = 8.0;
  e.strategy = parse_strategy_spec(e.config.chaos_strategy);
  return e;
}

ChaosOracle no_fallback_oracle() {
  return [](const HybridSystem& sys, std::vector<std::string>& failures) {
    if (sys.metrics().ship_fallbacks > 0) {
      failures.push_back("injected bug: ship fallback observed");
    }
  };
}

TEST(Chaos, InjectedBugShrinksToTheSingleCausalWindow) {
  const ChaosEpisode failing = injected_bug_episode();
  const ChaosFailurePredicate predicate =
      make_inprocess_predicate(no_fallback_oracle());
  ASSERT_TRUE(predicate(failing));

  const ChaosShrinkResult shrunk = shrink_chaos_episode(failing, predicate);
  EXPECT_GT(shrunk.evaluations, 0);
  // The acceptance bar is <= 3 windows; the shrinker actually isolates the
  // one causal central outage and strips the steady chaos knobs.
  ASSERT_LE(shrunk.episode.config.faults.windows.size(), 3u);
  ASSERT_EQ(shrunk.episode.config.faults.windows.size(), 1u);
  EXPECT_EQ(shrunk.episode.config.faults.windows[0].kind,
            FaultKind::CentralOutage);
  EXPECT_EQ(shrunk.episode.config.faults.dup_prob, 0.0);
  EXPECT_EQ(shrunk.episode.config.faults.reorder_prob, 0.0);
  // Narrowing phases only keep changes that still fail.
  EXPECT_TRUE(predicate(shrunk.episode));
  EXPECT_LE(shrunk.episode.config.chaos_run_seconds,
            failing.config.chaos_run_seconds);
}

TEST(Chaos, ReproFileRoundTripsAndStillFails) {
  const ChaosFailurePredicate predicate =
      make_inprocess_predicate(no_fallback_oracle());
  const ChaosShrinkResult shrunk =
      shrink_chaos_episode(injected_bug_episode(), predicate);

  std::ostringstream out;
  write_chaos_repro(out, shrunk.episode);
  std::istringstream in(out.str());
  std::string error;
  const std::optional<ChaosEpisode> parsed = parse_chaos_repro(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->config.num_sites, shrunk.episode.config.num_sites);
  EXPECT_EQ(parsed->config.faults.windows.size(),
            shrunk.episode.config.faults.windows.size());
  EXPECT_EQ(parsed->strategy.kind, shrunk.episode.strategy.kind);
  EXPECT_EQ(describe_chaos_episode(*parsed),
            describe_chaos_episode(shrunk.episode));
  // The emitted repro is self-contained: re-running it reproduces the bug.
  EXPECT_TRUE(predicate(*parsed));
}

TEST(Chaos, GeneratedEpisodeReproRoundTrips) {
  const ChaosEpisode e = make_chaos_episode(kSoakSeed, 2);
  std::ostringstream out;
  write_chaos_repro(out, e);
  std::istringstream in(out.str());
  std::string error;
  const std::optional<ChaosEpisode> parsed = parse_chaos_repro(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(describe_chaos_episode(*parsed), describe_chaos_episode(e));
  const ChaosVerdict verdict = run_chaos_episode(*parsed);
  EXPECT_TRUE(verdict.passed());
}

TEST(Chaos, ParseReproRejectsMissingEnvelope) {
  std::istringstream in("num_sites = 4\nseed = 1\n");
  std::string error;
  EXPECT_FALSE(parse_chaos_repro(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Chaos, ParseReproRejectsMalformedConfig) {
  std::istringstream in("definitely_not_a_key = 3\n");
  std::string error;
  EXPECT_FALSE(parse_chaos_repro(in, &error).has_value());
  EXPECT_NE(error.find("definitely_not_a_key"), std::string::npos);
}

// Regression pin for the first real bug the soak found (seed 99, episode
// index 2, shrunk by the delta debugger to this config): two long local
// class A transactions at one site fell into a perfectly periodic mutual
// deadlock — requester-victim policy, zero restart delay, and identical
// re-run lock sequences made each abort replay into the same cycle every
// 1.47 s until the max_reruns valve tripped. The deterministic livelock
// breaker (config: livelock_backoff_after / livelock_backoff) now stalls
// restarts past the rerun threshold by a linearly growing delay, so the
// cycle de-synchronizes and the episode drains through the full oracle
// stack.
TEST(Chaos, SoakFoundDeadlockLivelockNowDrains) {
  // Verbatim shrunk repro (minus the comment envelope); defaults supply the
  // livelock-breaker keys under test.
  static constexpr const char* kRepro = R"(num_sites=8
local_mips=1
central_mips=15
comm_delay=0.2
arrival_rate_per_site=1.95092
prob_class_a=0.863027
db_calls_per_txn=9
instr_per_call=30000
prob_call_io=1
prob_write_lock=0.25
lockspace=1024
deadlock_victim=requester
class_b_mode=ship
seed=17043500889311013062
abort_restart_delay=0
geometric_call_count=1
ship_timeout=2.07656
ship_backoff=2
ship_max_retries=2
ship_jitter=0.481644
obs_sample_interval=0.25
fault_dup_prob=0.209098
fault_dup_delay=0.129612
fault_reorder_prob=0.0901231
fault_reorder_window=0
fault_spike_prob=0.143587
fault_spike_factor=4.53449
chaos_strategy=min-average-nsys
chaos_run_seconds=17.5861
fault=site_outage:4:12.2733:0.842866
fault=central_outage:4.8901:4.27419
)";
  std::istringstream in(kRepro);
  std::string error;
  const auto episode = parse_chaos_repro(in, &error);
  ASSERT_TRUE(episode.has_value()) << error;
  EXPECT_GT(episode->config.livelock_backoff, 0.0);
  const ChaosVerdict v = run_chaos_episode(*episode, nullptr);
  EXPECT_TRUE(v.passed()) << (v.failures.empty() ? "" : v.failures.front());
  EXPECT_GT(v.completions, 0u);
}

TEST(Chaos, LivelockBreakerDisabledStillLivelocksTheRepro) {
  // The same episode with the breaker off must still wedge: two live
  // transactions deadlocking each other forever. Probe a bounded slice of
  // the drain directly (run_chaos_episode would spin to the max_reruns
  // abort) to keep the regression honest about what the breaker fixes.
  std::istringstream in(
      "num_sites=8\nlocal_mips=1\ncentral_mips=15\ncomm_delay=0.2\n"
      "arrival_rate_per_site=1.95092\nprob_class_a=0.863027\n"
      "db_calls_per_txn=9\ninstr_per_call=30000\nprob_call_io=1\n"
      "prob_write_lock=0.25\nlockspace=1024\ndeadlock_victim=requester\n"
      "class_b_mode=ship\nseed=17043500889311013062\nabort_restart_delay=0\n"
      "geometric_call_count=1\nship_timeout=2.07656\nship_backoff=2\n"
      "ship_max_retries=2\nship_jitter=0.481644\nobs_sample_interval=0.25\n"
      "fault_dup_prob=0.209098\nfault_dup_delay=0.129612\n"
      "fault_reorder_prob=0.0901231\nfault_reorder_window=0\n"
      "fault_spike_prob=0.143587\nfault_spike_factor=4.53449\n"
      "livelock_backoff=0\n"
      "chaos_strategy=min-average-nsys\nchaos_run_seconds=17.5861\n"
      "fault=site_outage:4:12.2733:0.842866\n"
      "fault=central_outage:4.8901:4.27419\n");
  std::string error;
  const auto episode = parse_chaos_repro(in, &error);
  ASSERT_TRUE(episode.has_value()) << error;
  auto strategy =
      make_strategy(episode->strategy,
                    ModelParams::from_config(episode->config),
                    episode->config.seed ^ 0x51CA5EEDULL);
  HybridSystem sys(episode->config, std::move(strategy));
  sys.enable_arrivals();
  sys.run_for(episode->config.chaos_run_seconds);
  sys.stop_arrivals();
  sys.run_for(50.0);  // plenty of drain time for every healthy transaction
  EXPECT_EQ(sys.live_transactions(), 2);
}

}  // namespace
}  // namespace hls
