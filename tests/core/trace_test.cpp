#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

TEST(TraceWriter, HeaderWrittenOnConstruction) {
  std::ostringstream out;
  TraceWriter writer(out);
  EXPECT_EQ(out.str(), std::string(TraceWriter::header()) + "\n");
  EXPECT_EQ(writer.rows_written(), 0u);
}

TEST(TraceWriter, WritesOneRowPerCompletion) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.0;
  cfg.seed = 2;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  std::ostringstream out;
  TraceWriter writer(out);
  writer.attach(sys);
  sys.enable_arrivals();
  sys.run_for(50.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(writer.rows_written(), sys.metrics().completions);
  // header + one line per row
  std::size_t lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, writer.rows_written() + 1);
}

TEST(TraceWriter, RecordFieldsRoundTrip) {
  std::ostringstream out;
  TraceWriter writer(out);
  TxnCompletionRecord rec;
  rec.id = 42;
  rec.cls = TxnClass::B;
  rec.route = Route::Central;
  rec.home_site = 3;
  rec.arrival_time = 1.5;
  rec.completion_time = 2.75;
  rec.response_time = 1.25;
  rec.runs = 2;
  rec.aborts[static_cast<int>(AbortCause::AuthRefused)] = 1;
  writer.write(rec);
  const std::string text = out.str();
  EXPECT_NE(text.find("42,B,central,3,1.5,2.75,1.25,2,0,0,1,0"),
            std::string::npos);
}

TEST(TraceWriter, HookRecordsMatchMetrics) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 2.0;
  cfg.seed = 3;
  HybridSystem sys(cfg, std::make_unique<StaticProbabilisticStrategy>(0.5, 3));
  double rt_sum = 0.0;
  std::uint64_t n = 0;
  sys.set_completion_hook([&](const TxnCompletionRecord& r) {
    rt_sum += r.response_time;
    ++n;
    EXPECT_GE(r.response_time, 0.0);
    EXPECT_NEAR(r.completion_time - r.arrival_time, r.response_time, 1e-9);
    EXPECT_GE(r.runs, 1);
  });
  sys.enable_arrivals();
  sys.run_for(60.0);
  sys.stop_arrivals();
  sys.drain();
  EXPECT_EQ(n, sys.metrics().completions);
  EXPECT_NEAR(rt_sum / static_cast<double>(n), sys.metrics().rt_all.mean(),
              1e-9);
}

TEST(TraceWriter, ClearingHookStopsRecords) {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  int called = 0;
  sys.set_completion_hook([&](const TxnCompletionRecord&) { ++called; });
  sys.inject(TxnClass::A, 0);
  sys.simulator().run();
  EXPECT_EQ(called, 1);
  sys.set_completion_hook(nullptr);
  sys.inject(TxnClass::A, 0);
  sys.simulator().run();
  EXPECT_EQ(called, 1);
}

}  // namespace
}  // namespace hls
