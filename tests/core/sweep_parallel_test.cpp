// Determinism of the parallel sweep harness: a sweep_all grid run on four
// workers must produce results identical to the sequential path, because
// every design point is an independent single-threaded simulation whose
// result lands in a submission-order slot.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"

namespace hls {
namespace {

SystemConfig light_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.0;
  cfg.seed = 11;
  return cfg;
}

RunOptions quick_options() {
  RunOptions o;
  o.warmup_seconds = 10.0;
  o.measure_seconds = 60.0;
  return o;
}

std::vector<Series> sweep_with_jobs(unsigned jobs) {
  ExperimentRunner runner(light_config(), quick_options());
  runner.set_jobs(jobs);
  return runner.sweep_all({{StrategyKind::NoLoadSharing, 0.0},
                           {StrategyKind::QueueLength, 0.0},
                           {StrategyKind::MinAverageNsys, 0.0}},
                          {"none", "qlen", "minavg"}, {5.0, 10.0, 15.0});
}

TEST(SweepParallel, FourWorkersMatchSequentialTo1e12) {
  const std::vector<Series> seq = sweep_with_jobs(1);
  const std::vector<Series> par = sweep_with_jobs(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t s = 0; s < seq.size(); ++s) {
    ASSERT_EQ(seq[s].points.size(), par[s].points.size());
    EXPECT_EQ(seq[s].label, par[s].label);
    for (std::size_t p = 0; p < seq[s].points.size(); ++p) {
      const Metrics& a = seq[s].points[p].result.metrics;
      const Metrics& b = par[s].points[p].result.metrics;
      EXPECT_EQ(a.completions, b.completions);
      EXPECT_NEAR(a.rt_all.mean(), b.rt_all.mean(), 1e-12);
      EXPECT_NEAR(a.throughput(), b.throughput(), 1e-12);
      EXPECT_NEAR(a.ship_fraction(), b.ship_fraction(), 1e-12);
      EXPECT_NEAR(a.runs_per_txn(), b.runs_per_txn(), 1e-12);
    }
  }
}

TEST(SweepParallel, SweepRatesEqualsSweepAllRow) {
  ExperimentRunner runner(light_config(), quick_options());
  runner.set_jobs(2);
  const Series direct = runner.sweep_rates({StrategyKind::QueueLength, 0.0},
                                           "qlen", {5.0, 10.0});
  const std::vector<Series> grid = runner.sweep_all(
      {{StrategyKind::NoLoadSharing, 0.0}, {StrategyKind::QueueLength, 0.0}},
      {"none", "qlen"}, {5.0, 10.0});
  ASSERT_EQ(grid[1].points.size(), direct.points.size());
  for (std::size_t p = 0; p < direct.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(grid[1].points[p].result.metrics.rt_all.mean(),
                     direct.points[p].result.metrics.rt_all.mean());
  }
}

TEST(SweepParallel, BatchProgressReportsEveryJobOnce) {
  std::vector<SimJob> jobs;
  for (double rate : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    SimJob job;
    job.config = light_config();
    job.config.arrival_rate_per_site = rate;
    job.spec = {StrategyKind::NoLoadSharing, 0.0};
    jobs.push_back(std::move(job));
  }
  std::vector<int> seen(jobs.size(), 0);
  const auto results = run_simulation_batch(
      jobs, quick_options(),
      [&](std::size_t i, const RunResult& r) {
        seen[i] += 1;
        EXPECT_GT(r.metrics.completions, 0u);
      },
      3);
  ASSERT_EQ(results.size(), jobs.size());
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

}  // namespace
}  // namespace hls
