#include "core/driver.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig light_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.0;
  cfg.seed = 11;
  return cfg;
}

RunOptions quick_options() {
  RunOptions o;
  o.warmup_seconds = 20.0;
  o.measure_seconds = 100.0;
  return o;
}

TEST(Driver, RunsAndReportsMetrics) {
  const RunResult r = run_simulation(light_config(),
                                     {StrategyKind::NoLoadSharing, 0.0},
                                     quick_options());
  EXPECT_EQ(r.strategy_name, "no-load-sharing");
  EXPECT_GT(r.metrics.completions, 0u);
  EXPECT_GT(r.metrics.rt_all.mean(), 0.0);
  EXPECT_NEAR(r.metrics.window_seconds(), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.static_p_ship, -1.0);
}

TEST(Driver, StaticOptimalRecordsChosenProbability) {
  const RunResult r = run_simulation(light_config(),
                                     {StrategyKind::StaticOptimal, 0.0},
                                     quick_options());
  EXPECT_GE(r.static_p_ship, 0.0);
  EXPECT_LE(r.static_p_ship, 1.0);
}

TEST(Driver, StaticProbabilityPassesParameterThrough) {
  const RunResult r = run_simulation(light_config(),
                                     {StrategyKind::StaticProbability, 0.35},
                                     quick_options());
  EXPECT_DOUBLE_EQ(r.static_p_ship, 0.35);
  EXPECT_EQ(r.strategy_name, "static-p0.350");
}

TEST(Driver, CallerConstructedStrategyOverload) {
  auto strategy = std::make_unique<AlwaysCentralStrategy>();
  const RunResult r =
      run_simulation(light_config(), std::move(strategy), quick_options());
  EXPECT_EQ(r.strategy_name, "always-central");
  EXPECT_DOUBLE_EQ(r.metrics.ship_fraction(), 1.0);
}

TEST(Driver, TimeScaleEnvDefaultsToOne) {
  unsetenv("HLS_TIME_SCALE");
  EXPECT_DOUBLE_EQ(time_scale_from_env(), 1.0);
}

TEST(Driver, TimeScaleEnvParses) {
  setenv("HLS_TIME_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(time_scale_from_env(), 0.25);
  setenv("HLS_TIME_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(time_scale_from_env(), 1.0);
  unsetenv("HLS_TIME_SCALE");
}

TEST(Experiment, SweepProducesOnePointPerRate) {
  ExperimentRunner runner(light_config(), quick_options());
  const Series s = runner.sweep_rates({StrategyKind::NoLoadSharing, 0.0}, "none",
                                      {5.0, 10.0});
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points[0].total_rate, 5.0);
  EXPECT_DOUBLE_EQ(s.points[1].total_rate, 10.0);
  EXPECT_GT(s.points[1].result.metrics.rt_all.mean(),
            s.points[0].result.metrics.rt_all.mean() * 0.5);
  EXPECT_EQ(s.label, "none");
}

TEST(Experiment, ResponseTimeTableLayout) {
  ExperimentRunner runner(light_config(), quick_options());
  std::vector<Series> series;
  series.push_back(
      runner.sweep_rates({StrategyKind::NoLoadSharing, 0.0}, "none", {5.0}));
  series.push_back(
      runner.sweep_rates({StrategyKind::QueueLength, 0.0}, "qlen", {5.0}));
  const Table t = response_time_table(series);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0).size(), 5u);  // rate + 2 series x (tput, rt)
}

TEST(Experiment, ShipFractionTableLayout) {
  ExperimentRunner runner(light_config(), quick_options());
  std::vector<Series> series;
  series.push_back(runner.sweep_rates({StrategyKind::StaticProbability, 0.4},
                                      "static", {5.0, 8.0}));
  const Table t = ship_fraction_table(series);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row(0).size(), 2u);
}

TEST(Experiment, AbortTableHasAllCauses) {
  ExperimentRunner runner(light_config(), quick_options());
  const Series s = runner.sweep_rates({StrategyKind::StaticProbability, 0.4},
                                      "static", {8.0});
  const Table t = abort_table(s);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row(0).size(), 9u);
}

TEST(Experiment, DefaultRateGridIsAscending) {
  const auto grid = default_rate_grid();
  EXPECT_GE(grid.size(), 5u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

}  // namespace
}  // namespace hls
