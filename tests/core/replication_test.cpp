#include "core/replication.hpp"

#include <gtest/gtest.h>

namespace hls {
namespace {

SystemConfig light_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.5;
  return cfg;
}

RunOptions quick_options() {
  RunOptions o;
  o.warmup_seconds = 10.0;
  o.measure_seconds = 60.0;
  return o;
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_975(4), 2.776, 1e-3);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t_975(1000), 1.96, 1e-3);
  EXPECT_DOUBLE_EQ(student_t_975(0), 0.0);
}

TEST(Replication, AggregatesAcrossSeeds) {
  const ReplicationSummary s = run_replicated(
      light_config(), {StrategyKind::NoLoadSharing, 0.0}, quick_options(), 4, 100);
  EXPECT_EQ(s.replications, 4);
  EXPECT_EQ(s.response_time.count(), 4u);
  EXPECT_GT(s.response_time.mean(), 0.0);
  // Different seeds produce different estimates.
  EXPECT_GT(s.response_time.variance(), 0.0);
  EXPECT_GT(s.rt_ci_halfwidth(), 0.0);
}

TEST(Replication, SingleRunHasNoInterval) {
  const ReplicationSummary s = run_replicated(
      light_config(), {StrategyKind::NoLoadSharing, 0.0}, quick_options(), 1, 7);
  EXPECT_DOUBLE_EQ(s.rt_ci_halfwidth(), 0.0);
}

TEST(Replication, CiShrinksWithMoreReplications) {
  const auto few = run_replicated(light_config(),
                                  {StrategyKind::NoLoadSharing, 0.0},
                                  quick_options(), 3, 500);
  const auto many = run_replicated(light_config(),
                                   {StrategyKind::NoLoadSharing, 0.0},
                                   quick_options(), 10, 500);
  // Not guaranteed pointwise, but with the same seed base and a 3x sample
  // the interval should not grow substantially.
  EXPECT_LT(many.rt_ci_halfwidth(), few.rt_ci_halfwidth() * 1.5 + 0.05);
}

TEST(Replication, MeanTracksSingleRunScale) {
  const ReplicationSummary s = run_replicated(
      light_config(), {StrategyKind::NoLoadSharing, 0.0}, quick_options(), 3, 9);
  const RunResult one = run_simulation(
      light_config(), {StrategyKind::NoLoadSharing, 0.0}, quick_options());
  EXPECT_NEAR(s.response_time.mean(), one.metrics.rt_all.mean(), 0.25);
  EXPECT_NEAR(s.throughput.mean(), 15.0, 2.0);
}

}  // namespace
}  // namespace hls
