// Run-artifact tests: schema bytes, determinism (same seed => byte-identical
// serialization), registry population on every run (observation enabled or
// not), and the obs_artifact config hook writing the file from run_simulation.
#include "core/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/driver.hpp"
#include "obs/registry.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quick_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 1.5;
  cfg.seed = 7;
  return cfg;
}

RunOptions quick_options() {
  RunOptions o;
  o.warmup_seconds = 10.0;
  o.measure_seconds = 60.0;
  return o;
}

std::string artifact_of(const RunResult& r) {
  std::ostringstream out;
  write_run_artifact(out, r);
  return out.str();
}

TEST(Artifact, RegistryAlwaysPopulatedAndSchemaTagged) {
  const RunResult r = run_simulation(quick_config(),
                                     {StrategyKind::MinAverageNsys, 0.0},
                                     quick_options());
  // The export pass runs unconditionally (it is read-only, post-run), so
  // the registry is populated even with every obs feature off.
  EXPECT_GT(r.registry.size(), 50u);
  ASSERT_NE(r.registry.find("txn.completions"), nullptr);
  EXPECT_EQ(r.registry.find("txn.completions")->count, r.metrics.completions);

  const std::string doc = artifact_of(r);
  EXPECT_EQ(doc.rfind("{\"schema\":\"hls-run-artifact-v1\",\"run\":{", 0), 0u);
  EXPECT_NE(doc.find("\"strategy\":\"min-average-nsys\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":7"), std::string::npos);
  EXPECT_NE(doc.find("\"registry\":{\"counters\":{"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

TEST(Artifact, SameSeedSerializesByteIdentical) {
  const RunResult a = run_simulation(quick_config(),
                                     {StrategyKind::MinAverageNsys, 0.0},
                                     quick_options());
  const RunResult b = run_simulation(quick_config(),
                                     {StrategyKind::MinAverageNsys, 0.0},
                                     quick_options());
  EXPECT_EQ(artifact_of(a), artifact_of(b));
}

TEST(Artifact, TelemetryAddsMetricsWithoutPerturbingTheRest) {
  SystemConfig plain = quick_config();
  SystemConfig armed = quick_config();
  armed.obs_resource_telemetry = true;
  armed.obs_heat_buckets = 8;
  const RunResult p = run_simulation(plain, {StrategyKind::MinAverageNsys, 0.0},
                                     quick_options());
  const RunResult a = run_simulation(armed, {StrategyKind::MinAverageNsys, 0.0},
                                     quick_options());
  // Telemetry is pure state writes: the simulated metrics are bit-identical,
  // and the armed run's registry is a strict superset.
  EXPECT_EQ(p.metrics.completions, a.metrics.completions);
  EXPECT_EQ(p.metrics.rt_all.sum(), a.metrics.rt_all.sum());
  EXPECT_GT(a.registry.size(), p.registry.size());
  EXPECT_EQ(p.registry.find("central.locks.heat.0"), nullptr);
  EXPECT_NE(a.registry.find("central.locks.heat.0"), nullptr);
  EXPECT_NE(a.registry.find("central.io.in_flight"), nullptr);
  EXPECT_NE(a.registry.find("central.locks.wait_queue"), nullptr);
}

TEST(Artifact, ObsArtifactConfigWritesTheFile) {
  const std::string path = testing::TempDir() + "hls_artifact_test.json";
  SystemConfig cfg = quick_config();
  cfg.obs_artifact = path;
  const RunResult r = run_simulation(cfg, {StrategyKind::MinAverageNsys, 0.0},
                                     quick_options());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream file_bytes;
  file_bytes << in.rdbuf();
  EXPECT_EQ(file_bytes.str(), artifact_of(r));
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hls
