#include "core/trace_replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "obs/perfetto_sink.hpp"
#include "obs/ring_sink.hpp"
#include "routing/basic_strategies.hpp"

namespace hls {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.arrival_rate_per_site = 0.0;
  return cfg;
}

TEST(TraceParse, ParsesMinimalTrace) {
  const SystemConfig cfg = quiet_config();
  const auto trace = parse_trace("0.5 0 A\n1.25 3 B\n", cfg);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 2u);
  EXPECT_DOUBLE_EQ((*trace)[0].time, 0.5);
  EXPECT_EQ((*trace)[0].site, 0);
  EXPECT_EQ((*trace)[0].cls, TxnClass::A);
  EXPECT_EQ((*trace)[1].cls, TxnClass::B);
  EXPECT_TRUE((*trace)[0].locks.empty());
}

TEST(TraceParse, ParsesExplicitLocks) {
  const SystemConfig cfg = quiet_config();
  const auto trace = parse_trace("1.0 2 A 5:X,17:S\n", cfg);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ((*trace)[0].locks.size(), 2u);
  EXPECT_EQ((*trace)[0].locks[0].id, 5u);
  EXPECT_EQ((*trace)[0].locks[0].mode, LockMode::Exclusive);
  EXPECT_EQ((*trace)[0].locks[1].mode, LockMode::Shared);
}

TEST(TraceParse, IgnoresCommentsAndBlankLines) {
  const SystemConfig cfg = quiet_config();
  const auto trace =
      parse_trace("# header\n\n  # indented comment\n2.0 1 B\n", cfg);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->size(), 1u);
}

TEST(TraceParse, RejectsBadInput) {
  const SystemConfig cfg = quiet_config();
  std::string error;
  EXPECT_FALSE(parse_trace("abc 0 A\n", cfg, &error).has_value());
  EXPECT_FALSE(parse_trace("1.0 99 A\n", cfg, &error).has_value());
  EXPECT_NE(error.find("site out of range"), std::string::npos);
  EXPECT_FALSE(parse_trace("1.0 0 C\n", cfg, &error).has_value());
  EXPECT_FALSE(parse_trace("2.0 0 A\n1.0 0 A\n", cfg, &error).has_value());
  EXPECT_NE(error.find("time decreases"), std::string::npos);
  EXPECT_FALSE(parse_trace("1.0 0 A 5:Y\n", cfg, &error).has_value());
  EXPECT_FALSE(parse_trace("1.0 0 A 99999999:X\n", cfg, &error).has_value());
}

TEST(TraceReplay, InjectsAtScheduledTimes) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  const auto trace = parse_trace("1.0 0 A\n5.0 1 A\n", cfg);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(replay_trace(sys, *trace), 2u);
  sys.simulator().run_until(0.9);
  EXPECT_EQ(sys.metrics().arrivals_class_a, 0u);
  sys.simulator().run_until(1.1);
  EXPECT_EQ(sys.metrics().arrivals_class_a, 1u);
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 2u);
}

TEST(TraceReplay, ExplicitLocksAreHonoured) {
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  // Two class A transactions colliding on entity 7: the second must wait,
  // which is only possible if the explicit locks were used.
  const auto trace = parse_trace("0.0 0 A 7:X\n0.0 0 A 7:X\n", cfg);
  ASSERT_TRUE(trace.has_value());
  replay_trace(sys, *trace);
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 2u);
  EXPECT_GT(sys.metrics().rt_local_a.max(), sys.metrics().rt_local_a.min());
}

TEST(TraceReplay, DeterministicAcrossRuns) {
  auto run_once = [] {
    const SystemConfig cfg = quiet_config();
    HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
    const auto trace =
        parse_trace("0.0 0 A\n0.1 1 B\n0.2 2 A\n1.0 3 B\n", cfg);
    replay_trace(sys, *trace);
    sys.simulator().run();
    return sys.metrics().rt_all.mean();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(TraceReplay, RoundTripsThroughWriter) {
  const SystemConfig cfg = quiet_config();
  std::vector<TraceArrival> trace;
  TraceArrival a;
  a.time = 0.25;
  a.site = 2;
  a.cls = TxnClass::B;
  a.locks = {{10, LockMode::Exclusive}, {20, LockMode::Shared}};
  trace.push_back(a);
  TraceArrival b;
  b.time = 1.5;
  b.site = 0;
  b.cls = TxnClass::A;
  trace.push_back(b);

  std::ostringstream out;
  write_trace(out, trace);
  const auto parsed = parse_trace(out.str(), cfg);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].time, 0.25);
  EXPECT_EQ((*parsed)[0].locks.size(), 2u);
  EXPECT_EQ((*parsed)[1].locks.size(), 0u);
}

TEST(TraceReplay, FaultedReplayReproducesCompletionRecordsByteForByte) {
  // Same arrival trace, same fault schedule, two independent systems (one
  // with an extra do-nothing ring observer): the completion trace — every
  // field of every record, serialized — must be byte-identical. This is the
  // replay contract under the harshest determinism conditions: outages,
  // timeout reclaims, backlog replay and reruns.
  SystemConfig cfg = quiet_config();
  cfg.ship_timeout = 1.5;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 1;
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 0.5, 3.0, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::SiteOutage, 1, 2.0, 2.0, 1.0, 0.0});

  std::ostringstream trace_text;
  for (int i = 0; i < 40; ++i) {
    trace_text << 0.2 * i << ' ' << i % 8 << ' ' << (i % 3 == 0 ? 'B' : 'A')
               << '\n';
  }
  const auto trace = parse_trace(trace_text.str(), cfg);
  ASSERT_TRUE(trace.has_value());

  auto run_once = [&](bool with_ring_observer) {
    HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
    std::ostringstream out;
    TraceWriter writer(out);
    writer.attach(sys);
    obs::RingSink ring(4);  // deliberately tiny: wraps, reads, changes nothing
    if (with_ring_observer) {
      sys.add_trace_sink(&ring);
    }
    replay_trace(sys, *trace);
    sys.simulator().run();
    EXPECT_EQ(sys.live_transactions(), 0);
    return out.str();
  };

  const std::string first = run_once(false);
  const std::string second = run_once(true);
  EXPECT_GT(first.size(), std::string(TraceWriter::header()).size());
  EXPECT_EQ(first, second);
  // The run actually exercised the fault machinery.
  EXPECT_NE(first.find(",central,"), std::string::npos);
}

TEST(TraceReplay, FaultedReplayUnchangedByPerfettoSpanSink) {
  // The harshest "observation is free or absent" check: the same faulted
  // replay as above, but with the full span tracer + Perfetto exporter
  // attached. Span emission turns on every fine-grained code path in the
  // tracer, yet the completion records must stay byte-identical, and the
  // exported trace itself must be byte-identical across runs.
  SystemConfig cfg = quiet_config();
  cfg.ship_timeout = 1.5;
  cfg.ship_backoff = 2.0;
  cfg.ship_max_retries = 1;
  cfg.faults.windows.push_back(
      {FaultKind::CentralOutage, -1, 0.5, 3.0, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::SiteOutage, 1, 2.0, 2.0, 1.0, 0.0});

  std::ostringstream trace_text;
  for (int i = 0; i < 40; ++i) {
    trace_text << 0.2 * i << ' ' << i % 8 << ' ' << (i % 3 == 0 ? 'B' : 'A')
               << '\n';
  }
  const auto trace = parse_trace(trace_text.str(), cfg);
  ASSERT_TRUE(trace.has_value());

  struct Outputs {
    std::string completions;
    std::string perfetto;
  };
  auto run_once = [&](bool with_span_sink) {
    HybridSystem sys(cfg, std::make_unique<AlwaysCentralStrategy>());
    std::ostringstream out;
    TraceWriter writer(out);
    writer.attach(sys);
    std::ostringstream json;
    obs::PerfettoSink perfetto(json);
    if (with_span_sink) {
      sys.add_trace_sink(&perfetto);
    }
    replay_trace(sys, *trace);
    sys.simulator().run();
    perfetto.close();
    EXPECT_EQ(sys.live_transactions(), 0);
    return Outputs{out.str(), json.str()};
  };

  const Outputs bare = run_once(false);
  const Outputs traced = run_once(true);
  const Outputs traced_again = run_once(true);
  EXPECT_EQ(bare.completions, traced.completions);
  EXPECT_EQ(traced.perfetto, traced_again.perfetto);
  // The faulted run actually produced spans across both tiers.
  EXPECT_NE(traced.perfetto.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(traced.perfetto.find("\"ph\":\"s\""), std::string::npos);
}

TEST(TraceReplay, BurstTraceStressesOneSite) {
  // 50 simultaneous arrivals at one site: all must complete, strictly
  // serialized on that site's CPU.
  const SystemConfig cfg = quiet_config();
  HybridSystem sys(cfg, std::make_unique<AlwaysLocalStrategy>());
  std::vector<TraceArrival> trace;
  for (int i = 0; i < 50; ++i) {
    TraceArrival a;
    a.time = 1.0;
    a.site = 4;
    a.cls = TxnClass::A;
    trace.push_back(a);
  }
  replay_trace(sys, trace);
  sys.simulator().run();
  EXPECT_EQ(sys.metrics().completions, 50u);
  sys.check_invariants();
}

}  // namespace
}  // namespace hls
