#include "core/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hls {
namespace {

TEST(ConfigIo, AppliesNumericOverrides) {
  SystemConfig cfg;
  EXPECT_TRUE(apply_config_override(cfg, "comm_delay=0.5"));
  EXPECT_TRUE(apply_config_override(cfg, "num_sites=4"));
  EXPECT_TRUE(apply_config_override(cfg, "lockspace=1024"));
  EXPECT_TRUE(apply_config_override(cfg, "prob_write_lock=0.4"));
  EXPECT_DOUBLE_EQ(cfg.comm_delay, 0.5);
  EXPECT_EQ(cfg.num_sites, 4);
  EXPECT_EQ(cfg.lockspace, 1024u);
  EXPECT_DOUBLE_EQ(cfg.prob_write_lock, 0.4);
}

TEST(ConfigIo, AppliesEnumOverrides) {
  SystemConfig cfg;
  EXPECT_TRUE(apply_config_override(cfg, "deadlock_victim=youngest"));
  EXPECT_EQ(cfg.deadlock_victim, DeadlockVictim::Youngest);
  EXPECT_TRUE(apply_config_override(cfg, "class_b_mode=remote-calls"));
  EXPECT_EQ(cfg.class_b_mode, ClassBMode::RemoteCalls);
  EXPECT_TRUE(apply_config_override(cfg, "class_b_mode=ship"));
  EXPECT_EQ(cfg.class_b_mode, ClassBMode::Ship);
  EXPECT_TRUE(apply_config_override(cfg, "ideal_state_info=1"));
  EXPECT_TRUE(cfg.ideal_state_info);
}

TEST(ConfigIo, RejectsBadInput) {
  SystemConfig cfg;
  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "no_equals_sign", &error));
  EXPECT_FALSE(apply_config_override(cfg, "unknown_key=1", &error));
  EXPECT_NE(error.find("unknown config key"), std::string::npos);
  EXPECT_FALSE(apply_config_override(cfg, "comm_delay=abc", &error));
  EXPECT_FALSE(apply_config_override(cfg, "deadlock_victim=alphabetical", &error));
  // The config is untouched by failed overrides.
  EXPECT_DOUBLE_EQ(cfg.comm_delay, 0.2);
}

TEST(ConfigIo, ParsesFileWithCommentsAndWhitespace) {
  const std::string text =
      "# experiment configuration\n"
      "\n"
      "  comm_delay=0.5  \n"
      "arrival_rate_per_site=2.4\n"
      "deadlock_victim=youngest\n";
  std::istringstream in(text);
  const auto cfg = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->comm_delay, 0.5);
  EXPECT_DOUBLE_EQ(cfg->arrival_rate_per_site, 2.4);
  EXPECT_EQ(cfg->deadlock_victim, DeadlockVictim::Youngest);
  // Untouched fields keep the base values.
  EXPECT_EQ(cfg->num_sites, 10);
}

TEST(ConfigIo, FileErrorsCarryLineNumbers) {
  std::istringstream in("comm_delay=0.5\nbogus_key=1\n");
  std::string error;
  EXPECT_FALSE(parse_config_file(in, SystemConfig{}, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ConfigIo, DescribeRoundTrips) {
  SystemConfig cfg;
  cfg.comm_delay = 0.5;
  cfg.num_sites = 7;
  cfg.class_b_mode = ClassBMode::RemoteCalls;
  cfg.deadlock_victim = DeadlockVictim::Youngest;
  cfg.async_batch_window = 0.25;
  cfg.seed = 777;
  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->comm_delay, 0.5);
  EXPECT_EQ(parsed->num_sites, 7);
  EXPECT_EQ(parsed->class_b_mode, ClassBMode::RemoteCalls);
  EXPECT_EQ(parsed->deadlock_victim, DeadlockVictim::Youngest);
  EXPECT_DOUBLE_EQ(parsed->async_batch_window, 0.25);
  EXPECT_EQ(parsed->seed, 777u);
}

TEST(ConfigIo, EveryDescribedKeyIsAccepted) {
  // describe_config must never emit a key apply_config_override rejects.
  std::ostringstream out;
  describe_config(out, SystemConfig{});
  std::istringstream in(out.str());
  std::string line;
  SystemConfig cfg;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::string error;
    EXPECT_TRUE(apply_config_override(cfg, line, &error)) << line << ": " << error;
  }
}

TEST(ConfigIo, FaultWindowsAccumulateAndClear) {
  SystemConfig cfg;
  EXPECT_TRUE(apply_config_override(cfg, "fault=central_outage:10:2"));
  EXPECT_TRUE(apply_config_override(cfg, "fault=link_degrade:3:5:10:4:0.25"));
  ASSERT_EQ(cfg.faults.windows.size(), 2u);
  EXPECT_EQ(cfg.faults.windows[0].kind, FaultKind::CentralOutage);
  EXPECT_EQ(cfg.faults.windows[1].kind, FaultKind::LinkDegrade);
  EXPECT_EQ(cfg.faults.windows[1].site, 3);
  EXPECT_DOUBLE_EQ(cfg.faults.windows[1].delay_factor, 4.0);
  EXPECT_DOUBLE_EQ(cfg.faults.windows[1].loss_prob, 0.25);
  EXPECT_TRUE(apply_config_override(cfg, "fault=clear"));
  EXPECT_TRUE(cfg.faults.windows.empty());
}

TEST(ConfigIo, FaultAndShipKeysRejectBadValues) {
  SystemConfig cfg;
  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "fault=central_outage:bad", &error));
  EXPECT_NE(error.find("fault: "), std::string::npos);
  EXPECT_FALSE(apply_config_override(cfg, "ship_timeout=-1", &error));
  EXPECT_NE(error.find("non-negative"), std::string::npos);
  EXPECT_FALSE(apply_config_override(cfg, "ship_backoff=0.5", &error));
  EXPECT_NE(error.find("at least 1"), std::string::npos);
  EXPECT_FALSE(apply_config_override(cfg, "ship_max_retries=-2", &error));
}

TEST(ConfigIo, FaultConfigRoundTripsThroughDescribe) {
  SystemConfig cfg;
  cfg.ship_timeout = 1.5;
  cfg.ship_backoff = 3.0;
  cfg.ship_max_retries = 4;
  cfg.faults.windows.push_back({FaultKind::SiteOutage, 2, 10.0, 1.0, 1.0, 0.0});
  cfg.faults.windows.push_back({FaultKind::LinkDegrade, -1, 0.0, 50.0, 2.0, 0.1});
  cfg.faults.random_link_outage_rate = 0.01;
  cfg.faults.random_link_outage_mean = 2.0;
  cfg.faults.random_horizon = 400.0;
  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->ship_timeout, 1.5);
  EXPECT_DOUBLE_EQ(parsed->ship_backoff, 3.0);
  EXPECT_EQ(parsed->ship_max_retries, 4);
  ASSERT_EQ(parsed->faults.windows.size(), 2u);
  EXPECT_EQ(parsed->faults.windows[0].kind, FaultKind::SiteOutage);
  EXPECT_EQ(parsed->faults.windows[0].site, 2);
  EXPECT_DOUBLE_EQ(parsed->faults.windows[1].loss_prob, 0.1);
  EXPECT_DOUBLE_EQ(parsed->faults.random_link_outage_rate, 0.01);
  EXPECT_DOUBLE_EQ(parsed->faults.random_horizon, 400.0);
}

TEST(ConfigIo, SpanSinkAndReportTopKRoundTrip) {
  SystemConfig cfg;
  EXPECT_TRUE(apply_config_override(cfg, "obs_span_sink=perfetto:/tmp/t.json"));
  EXPECT_EQ(cfg.obs_span_sink, "perfetto:/tmp/t.json");
  EXPECT_TRUE(apply_config_override(cfg, "obs_span_sink=csv:spans.csv"));
  EXPECT_EQ(cfg.obs_span_sink, "csv:spans.csv");
  EXPECT_TRUE(apply_config_override(cfg, "obs_span_sink="));  // disable again
  EXPECT_TRUE(cfg.obs_span_sink.empty());
  EXPECT_TRUE(apply_config_override(cfg, "report_top_k=9"));
  EXPECT_EQ(cfg.report_top_k, 9);

  cfg.obs_span_sink = "perfetto:out/trace.json";
  cfg.report_top_k = 12;
  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->obs_span_sink, "perfetto:out/trace.json");
  EXPECT_EQ(parsed->report_top_k, 12);
}

TEST(ConfigIo, RegistryTelemetryKeysRoundTrip) {
  SystemConfig cfg;
  EXPECT_TRUE(apply_config_override(cfg, "obs_resource_telemetry=1"));
  EXPECT_TRUE(cfg.obs_resource_telemetry);
  EXPECT_TRUE(apply_config_override(cfg, "obs_heat_buckets=48"));
  EXPECT_EQ(cfg.obs_heat_buckets, 48);
  EXPECT_TRUE(apply_config_override(cfg, "obs_artifact=out/run.json"));
  EXPECT_EQ(cfg.obs_artifact, "out/run.json");
  EXPECT_TRUE(apply_config_override(cfg, "obs_artifact="));  // disable again
  EXPECT_TRUE(cfg.obs_artifact.empty());

  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "obs_heat_buckets=-4", &error));
  EXPECT_NE(error.find("non-negative"), std::string::npos);
  EXPECT_EQ(cfg.obs_heat_buckets, 48);  // untouched by the failure

  cfg.obs_resource_telemetry = true;
  cfg.obs_heat_buckets = 16;
  cfg.obs_artifact = "artifacts/a.json";
  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->obs_resource_telemetry);
  EXPECT_EQ(parsed->obs_heat_buckets, 16);
  EXPECT_EQ(parsed->obs_artifact, "artifacts/a.json");

  // Defaults: observation is absent unless asked for.
  const SystemConfig fresh;
  EXPECT_FALSE(fresh.obs_resource_telemetry);
  EXPECT_EQ(fresh.obs_heat_buckets, 0);
  EXPECT_TRUE(fresh.obs_artifact.empty());
}

TEST(ConfigIo, SpanSinkRejectsUnknownSchemeAndNegativeTopK) {
  SystemConfig cfg;
  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "obs_span_sink=bogus:/x", &error));
  EXPECT_NE(error.find("perfetto:PATH"), std::string::npos);
  EXPECT_TRUE(cfg.obs_span_sink.empty());  // untouched by the failure
  EXPECT_FALSE(apply_config_override(cfg, "report_top_k=-1", &error));
  EXPECT_NE(error.find("non-negative"), std::string::npos);
}

TEST(ConfigIo, FaultSiteRangeIsValidatedAfterWholeFile) {
  // num_sites appears after the fault line; validation must still see the
  // final value and reject the out-of-range site.
  std::istringstream in("fault=site_outage:5:1:2\nnum_sites=3\n");
  std::string error;
  EXPECT_FALSE(parse_config_file(in, SystemConfig{}, &error).has_value());
  EXPECT_NE(error.find("fault schedule:"), std::string::npos);

  std::istringstream ok("fault=site_outage:5:1:2\nnum_sites=8\n");
  EXPECT_TRUE(parse_config_file(ok, SystemConfig{}).has_value());
}

TEST(ConfigIo, MessageChaosAndJitterKeysRoundTrip) {
  SystemConfig cfg;
  cfg.faults.dup_prob = 0.25;
  cfg.faults.dup_extra = 0.04;
  cfg.faults.reorder_prob = 0.3;
  cfg.faults.reorder_window = 0.45;
  cfg.faults.spike_prob = 0.1;
  cfg.faults.spike_factor = 3.5;
  cfg.ship_jitter = 0.2;
  cfg.chaos_strategy = "failsafe@2.5:queue-length";
  cfg.chaos_run_seconds = 12.5;
  cfg.faults.windows.push_back(
      {FaultKind::MsgFault, 2, 1.0, 2.0, 1.0, 0.0, 0.5, 0.4, 0.3, 6.0});

  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->faults.dup_prob, 0.25);
  EXPECT_DOUBLE_EQ(parsed->faults.dup_extra, 0.04);
  EXPECT_DOUBLE_EQ(parsed->faults.reorder_prob, 0.3);
  EXPECT_DOUBLE_EQ(parsed->faults.reorder_window, 0.45);
  EXPECT_DOUBLE_EQ(parsed->faults.spike_prob, 0.1);
  EXPECT_DOUBLE_EQ(parsed->faults.spike_factor, 3.5);
  EXPECT_DOUBLE_EQ(parsed->ship_jitter, 0.2);
  EXPECT_EQ(parsed->chaos_strategy, "failsafe@2.5:queue-length");
  EXPECT_DOUBLE_EQ(parsed->chaos_run_seconds, 12.5);
  ASSERT_EQ(parsed->faults.windows.size(), 1u);
  EXPECT_EQ(parsed->faults.windows[0].kind, FaultKind::MsgFault);
  EXPECT_DOUBLE_EQ(parsed->faults.windows[0].dup_prob, 0.5);
  EXPECT_DOUBLE_EQ(parsed->faults.windows[0].reorder_prob, 0.4);
  EXPECT_DOUBLE_EQ(parsed->faults.windows[0].spike_prob, 0.3);
  EXPECT_DOUBLE_EQ(parsed->faults.windows[0].spike_factor, 6.0);
}

TEST(ConfigIo, MessageChaosKeysRejectBadValues) {
  SystemConfig cfg;
  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "fault_dup_prob=1.0", &error));
  EXPECT_NE(error.find("fault_dup_prob"), std::string::npos);
  EXPECT_FALSE(apply_config_override(cfg, "fault_dup_delay=-0.1", &error));
  EXPECT_FALSE(apply_config_override(cfg, "fault_reorder_prob=-0.2", &error));
  EXPECT_FALSE(apply_config_override(cfg, "fault_reorder_window=-1", &error));
  EXPECT_FALSE(apply_config_override(cfg, "fault_spike_prob=2", &error));
  EXPECT_FALSE(apply_config_override(cfg, "fault_spike_factor=-3", &error));
  EXPECT_FALSE(apply_config_override(cfg, "ship_jitter=-0.5", &error));
  EXPECT_FALSE(apply_config_override(cfg, "chaos_run_seconds=-1", &error));
  // Failed overrides leave the config untouched.
  EXPECT_DOUBLE_EQ(cfg.faults.dup_prob, 0.0);
  EXPECT_DOUBLE_EQ(cfg.ship_jitter, 0.0);
}

TEST(ConfigIo, UnknownKeyErrorQuotesTheOffendingLine) {
  SystemConfig cfg;
  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "fault_dup_probe=0.3", &error));
  EXPECT_NE(error.find("'fault_dup_probe'"), std::string::npos);
  EXPECT_NE(error.find("'fault_dup_probe=0.3'"), std::string::npos);
}

TEST(ConfigIo, SeedRoundTripsFullSixtyFourBits) {
  // Chaos repros draw seeds from the whole 64-bit range; the parser must not
  // route them through a double (2^53 mantissa) on the way back in.
  SystemConfig cfg;
  cfg.seed = 5057277406479545829ULL;  // > 2^62, not representable in double
  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 5057277406479545829ULL);

  std::string error;
  EXPECT_FALSE(apply_config_override(cfg, "seed=abc", &error));
  EXPECT_FALSE(apply_config_override(cfg, "seed=-3", &error));
  EXPECT_EQ(cfg.seed, 5057277406479545829ULL);
}

TEST(ConfigIo, LivelockBreakerKeysRoundTripAndValidate) {
  SystemConfig cfg;
  cfg.livelock_backoff_after = 7;
  cfg.livelock_backoff = 0.25;
  std::ostringstream out;
  describe_config(out, cfg);
  std::istringstream in(out.str());
  const auto parsed = parse_config_file(in, SystemConfig{});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->livelock_backoff_after, 7);
  EXPECT_DOUBLE_EQ(parsed->livelock_backoff, 0.25);

  std::string error;
  EXPECT_FALSE(
      apply_config_override(cfg, "livelock_backoff_after=-1", &error));
  EXPECT_FALSE(apply_config_override(cfg, "livelock_backoff=-0.5", &error));
  EXPECT_EQ(cfg.livelock_backoff_after, 7);
  EXPECT_DOUBLE_EQ(cfg.livelock_backoff, 0.25);
}

}  // namespace
}  // namespace hls
