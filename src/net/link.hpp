// Point-to-point communication link with fixed propagation delay and
// guaranteed in-order delivery.
//
// The hybrid protocol requires that asynchronous update messages from a
// local site are processed at the central site in origination order (§2 of
// the paper: "the communications protocol must ensure that these
// asynchronous messages are delivered and processed at the central site in
// the order that they were originated"). Link enforces FIFO delivery even
// if the delay is changed mid-run: a message is never delivered before one
// sent earlier on the same link.
//
// Fault injection (sim/fault_schedule) adds two tiers of degradation:
//
// Order-preserving faults — FIFO order and eventual delivery survive, so the
// protocol layer above needs no defenses:
//   * down state: messages sent while the link is down are held and released
//     in order at recovery (messages already on the wire still deliver);
//   * a delay multiplier for subsequent sends;
//   * per-message loss, modeled as retransmission — each lost attempt costs
//     one extra link delay before the message finally gets through;
//   * delay spikes: a per-message probability that one send pays an extra
//     delay factor; the FIFO hold-back stalls the whole stream behind it.
//
// Message-level chaos faults — these deliberately violate exactly-once
// in-order delivery, and exist to exercise the hybrid layer's sequence-number
// defenses (docs/CHAOS.md):
//   * duplicate delivery: the message's continuation fires a second time a
//     fixed interval after the first;
//   * bounded reordering: the message becomes a straggler — it is delayed by
//     up to a window beyond its FIFO slot and released from the FIFO
//     hold-back bookkeeping, so later sends may overtake it.
// Every delivery still happens: chaos never drops a message, because the
// coherence and authentication machinery cannot tolerate one that never
// arrives. All draws come from the seed-forked RNG installed via
// set_fault_rng; with every probability at zero no draws are consumed and
// the schedule is byte-identical to a chaos-free build.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/unique_function.hpp"

namespace hls {

class Link {
 public:
  /// Move-only: delivery continuations run once per delivery; UniqueFunction
  /// keeps the protocol engine's captures inline where std::function
  /// heap-allocated one node per message. Under duplicate-delivery chaos the
  /// same continuation object is invoked more than once (it stays valid
  /// until destroyed), so continuations must be idempotent or deduplicated
  /// by the receiver.
  using Deliver = UniqueFunction<void()>;

  Link(Simulator& sim, double delay_seconds, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sends a message: `deliver` fires after the propagation delay, after all
  /// previously sent messages on this link have been delivered. While the
  /// link is down the message is held and dispatched at recovery.
  void send(Deliver deliver);

  [[nodiscard]] double delay() const { return delay_; }

  /// Adjusts the propagation delay for subsequent messages. In-flight
  /// messages keep their delivery times; FIFO order is still preserved.
  void set_delay(double delay_seconds);

  /// Takes the link down (held messages queue up) or brings it back up
  /// (held messages dispatch immediately, in send order). Messages already
  /// in flight when the link goes down still deliver on time.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  /// Multiplier on the propagation delay for subsequent sends (degraded
  /// link); 1.0 restores the nominal delay.
  void set_delay_factor(double factor);
  [[nodiscard]] double delay_factor() const { return delay_factor_; }

  /// Per-message loss probability in [0, 1). A lost attempt is detected and
  /// retransmitted, adding one (possibly degraded) link delay per loss, so
  /// delivery remains guaranteed and in order. Draws come from the RNG
  /// installed via set_fault_rng; with loss 0 no random numbers are consumed.
  void set_loss(double loss_prob);

  /// Duplicate delivery: with probability `prob` a sent message's
  /// continuation fires a second time `extra_delay` seconds after the first
  /// delivery. The duplicate does not count as a delivered message
  /// (messages_in_flight stays conserved); it is the receiver's job to
  /// reject it. 0 disables and consumes no draws.
  void set_dup(double prob, double extra_delay);
  [[nodiscard]] double dup_prob() const { return dup_prob_; }

  /// Bounded reordering: with probability `prob` a sent message becomes a
  /// straggler — delivered up to `window` seconds after its FIFO slot and
  /// excluded from the FIFO hold-back floor, so later sends may overtake it
  /// by at most `window` seconds. 0 disables and consumes no draws.
  void set_reorder(double prob, double window);
  [[nodiscard]] double reorder_prob() const { return reorder_prob_; }

  /// Delay spikes: with probability `prob` one message's delay is multiplied
  /// by `factor`; the FIFO hold-back then stalls every later message behind
  /// it (order is preserved — this is congestion, not reordering). 0
  /// disables and consumes no draws.
  void set_delay_spike(double prob, double factor);
  [[nodiscard]] double spike_prob() const { return spike_prob_; }

  /// Installs the RNG stream used for loss/chaos draws (seed-forked by the
  /// owner).
  void set_fault_rng(Rng rng) { fault_rng_ = rng; }

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_in_flight() const { return sent_ - delivered_; }
  [[nodiscard]] std::uint64_t messages_held() const { return held_.size(); }
  [[nodiscard]] std::uint64_t messages_retransmitted() const { return retransmitted_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t messages_reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t delay_spikes() const { return spiked_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- per-resource telemetry (off unless armed; docs/OBSERVABILITY.md) ----

  /// Arms the time-weighted in-flight gauge (tracks messages_in_flight(),
  /// held messages included) from `now` on. Pure state writes: no events
  /// are ever scheduled, so arming it cannot perturb the simulation.
  void enable_flight_telemetry(double now);

  /// Restarts the telemetry window at `now` (warmup discard).
  void reset_telemetry(double now);

  [[nodiscard]] bool flight_telemetry_enabled() const { return flight_telemetry_; }

  /// Time-averaged in-flight message count since enable/reset (0 unarmed).
  [[nodiscard]] double average_in_flight(double now) const {
    return flight_telemetry_ ? flight_tw_.average(now) : 0.0;
  }

 private:
  /// Mirrors messages_in_flight() into the time-weighted gauge; call after
  /// every sent_/delivered_ mutation. A single branch when telemetry is off.
  void note_flight() {
    if (flight_telemetry_) {
      flight_tw_.set(sim_.now(), static_cast<double>(sent_ - delivered_));
    }
  }

  /// Schedules a message for delivery (loss/degrade applied, FIFO held back).
  void dispatch(Deliver deliver);

  Simulator& sim_;
  double delay_;
  std::string name_;
  SimTime last_delivery_time_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  // ---- fault state ----
  bool up_ = true;
  double delay_factor_ = 1.0;
  double loss_prob_ = 0.0;
  double dup_prob_ = 0.0;
  double dup_extra_ = 0.0;
  double reorder_prob_ = 0.0;
  double reorder_window_ = 0.0;
  double spike_prob_ = 0.0;
  double spike_factor_ = 1.0;
  std::uint64_t retransmitted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t spiked_ = 0;
  std::vector<Deliver> held_;  ///< messages sent while down, in send order
  /// Messages on the wire, in delivery order. Delivery times are monotone
  /// (FIFO hold-back) and the event queue breaks time ties by schedule
  /// order, so the front of this queue is always the next delivery — the
  /// scheduled event needs no capture beyond `this`. Chaos deliveries
  /// (duplicates, stragglers) bypass this queue: they are scheduled as
  /// standalone events carrying their own continuation.
  std::deque<Deliver> flight_;
  Rng fault_rng_;              ///< consumed only when a fault probability > 0
  bool flight_telemetry_ = false;
  TimeWeightedStat flight_tw_;
};

}  // namespace hls
