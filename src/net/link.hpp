// Point-to-point communication link with fixed propagation delay and
// guaranteed in-order delivery.
//
// The hybrid protocol requires that asynchronous update messages from a
// local site are processed at the central site in origination order (§2 of
// the paper: "the communications protocol must ensure that these
// asynchronous messages are delivered and processed at the central site in
// the order that they were originated"). Link enforces FIFO delivery even
// if the delay is changed mid-run: a message is never delivered before one
// sent earlier on the same link.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hpp"

namespace hls {

class Link {
 public:
  using Deliver = std::function<void()>;

  Link(Simulator& sim, double delay_seconds, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sends a message: `deliver` fires after the propagation delay, after all
  /// previously sent messages on this link have been delivered.
  void send(Deliver deliver);

  [[nodiscard]] double delay() const { return delay_; }

  /// Adjusts the propagation delay for subsequent messages. In-flight
  /// messages keep their delivery times; FIFO order is still preserved.
  void set_delay(double delay_seconds);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_in_flight() const { return sent_ - delivered_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Simulator& sim_;
  double delay_;
  std::string name_;
  SimTime last_delivery_time_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace hls
