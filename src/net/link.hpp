// Point-to-point communication link with fixed propagation delay and
// guaranteed in-order delivery.
//
// The hybrid protocol requires that asynchronous update messages from a
// local site are processed at the central site in origination order (§2 of
// the paper: "the communications protocol must ensure that these
// asynchronous messages are delivered and processed at the central site in
// the order that they were originated"). Link enforces FIFO delivery even
// if the delay is changed mid-run: a message is never delivered before one
// sent earlier on the same link.
//
// Fault injection (sim/fault_schedule) adds three degradations, all of which
// preserve FIFO order and eventual delivery — the coherence and
// authentication machinery cannot tolerate a message that never arrives:
//   * down state: messages sent while the link is down are held and released
//     in order at recovery (messages already on the wire still deliver);
//   * a delay multiplier for subsequent sends;
//   * per-message loss, modeled as retransmission — each lost attempt costs
//     one extra link delay before the message finally gets through.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "util/unique_function.hpp"

namespace hls {

class Link {
 public:
  /// Move-only: delivery continuations run once; UniqueFunction keeps the
  /// protocol engine's captures inline where std::function heap-allocated
  /// one node per message.
  using Deliver = UniqueFunction<void()>;

  Link(Simulator& sim, double delay_seconds, std::string name);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sends a message: `deliver` fires after the propagation delay, after all
  /// previously sent messages on this link have been delivered. While the
  /// link is down the message is held and dispatched at recovery.
  void send(Deliver deliver);

  [[nodiscard]] double delay() const { return delay_; }

  /// Adjusts the propagation delay for subsequent messages. In-flight
  /// messages keep their delivery times; FIFO order is still preserved.
  void set_delay(double delay_seconds);

  /// Takes the link down (held messages queue up) or brings it back up
  /// (held messages dispatch immediately, in send order). Messages already
  /// in flight when the link goes down still deliver on time.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  /// Multiplier on the propagation delay for subsequent sends (degraded
  /// link); 1.0 restores the nominal delay.
  void set_delay_factor(double factor);
  [[nodiscard]] double delay_factor() const { return delay_factor_; }

  /// Per-message loss probability in [0, 1). A lost attempt is detected and
  /// retransmitted, adding one (possibly degraded) link delay per loss, so
  /// delivery remains guaranteed and in order. Draws come from the RNG
  /// installed via set_fault_rng; with loss 0 no random numbers are consumed.
  void set_loss(double loss_prob);

  /// Installs the RNG stream used for loss draws (seed-forked by the owner).
  void set_fault_rng(Rng rng) { fault_rng_ = rng; }

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_in_flight() const { return sent_ - delivered_; }
  [[nodiscard]] std::uint64_t messages_held() const { return held_.size(); }
  [[nodiscard]] std::uint64_t messages_retransmitted() const { return retransmitted_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  /// Schedules a message for delivery (loss/degrade applied, FIFO held back).
  void dispatch(Deliver deliver);

  Simulator& sim_;
  double delay_;
  std::string name_;
  SimTime last_delivery_time_ = 0.0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  // ---- fault state ----
  bool up_ = true;
  double delay_factor_ = 1.0;
  double loss_prob_ = 0.0;
  std::uint64_t retransmitted_ = 0;
  std::vector<Deliver> held_;  ///< messages sent while down, in send order
  /// Messages on the wire, in delivery order. Delivery times are monotone
  /// (FIFO hold-back) and the event queue breaks time ties by schedule
  /// order, so the front of this queue is always the next delivery — the
  /// scheduled event needs no capture beyond `this`.
  std::deque<Deliver> flight_;
  Rng fault_rng_;              ///< consumed only when loss_prob_ > 0
};

}  // namespace hls
