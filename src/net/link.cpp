#include "net/link.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/assert.hpp"

namespace hls {

Link::Link(Simulator& sim, double delay_seconds, std::string name)
    : sim_(sim), delay_(delay_seconds), name_(std::move(name)) {
  HLS_ASSERT(delay_ >= 0.0, "link delay must be non-negative");
}

void Link::send(Deliver deliver) {
  ++sent_;
  note_flight();
  if (!up_) {
    held_.push_back(std::move(deliver));
    return;
  }
  dispatch(std::move(deliver));
}

void Link::dispatch(Deliver deliver) {
  double delay = delay_ * delay_factor_;
  if (loss_prob_ > 0.0) {
    // Loss is modeled as retransmission: every lost attempt is detected and
    // resent, costing one more link delay. The protocol requires eventual
    // in-order delivery, so the message itself is never dropped.
    while (fault_rng_.bernoulli(loss_prob_)) {
      ++retransmitted_;
      delay += delay_ * delay_factor_;
    }
  }
  // Chaos draws happen in a fixed order (spike, dup, reorder) so a schedule
  // replays bit-identically; a knob at zero consumes no draws, keeping
  // loss-only (and fault-free) runs byte-identical to pre-chaos builds.
  if (spike_prob_ > 0.0 && fault_rng_.bernoulli(spike_prob_)) {
    ++spiked_;
    delay *= spike_factor_;
  }
  const bool dup = dup_prob_ > 0.0 && fault_rng_.bernoulli(dup_prob_);
  double straggle_extra = -1.0;
  if (reorder_prob_ > 0.0 && fault_rng_.bernoulli(reorder_prob_)) {
    straggle_extra = fault_rng_.uniform(0.0, reorder_window_);
  }

  // FIFO hold-back: never deliver before a previously sent message.
  const SimTime fifo_at = std::max(sim_.now() + delay, last_delivery_time_);

  if (!dup && straggle_extra < 0.0) {
    // Ordinary path: identical to the chaos-free link, byte for byte.
    last_delivery_time_ = fifo_at;
    flight_.push_back(std::move(deliver));
    sim_.schedule_at(fifo_at, [this] {
      Deliver cb = std::move(flight_.front());
      flight_.pop_front();
      ++delivered_;
      note_flight();
      cb();
    });
    return;
  }

  // Chaos path: the continuation may fire more than once (duplicate) or out
  // of its flight_-queue slot (straggler), so it is scheduled as a
  // standalone shared event instead of through flight_.
  SimTime at = fifo_at;
  if (straggle_extra >= 0.0) {
    // Straggler: delayed past its FIFO slot and dropped from the hold-back
    // floor, so later sends may overtake it — reordering bounded by the
    // window. It still never arrives before an earlier message's floor.
    ++reordered_;
    at = fifo_at + straggle_extra;
  } else {
    last_delivery_time_ = at;
  }
  auto shared = std::make_shared<Deliver>(std::move(deliver));
  sim_.schedule_at(at, [this, shared] {
    ++delivered_;
    note_flight();
    (*shared)();
  });
  if (dup) {
    // The duplicate fires after the primary (same-time events run in
    // schedule order) and is not counted delivered: sent_ - delivered_
    // stays a conservation law; rejecting the copy is the receiver's job.
    ++duplicated_;
    sim_.schedule_at(at + dup_extra_, [shared] { (*shared)(); });
  }
}

void Link::set_delay(double delay_seconds) {
  HLS_ASSERT(delay_seconds >= 0.0, "link delay must be non-negative");
  delay_ = delay_seconds;
}

void Link::set_up(bool up) {
  if (up == up_) {
    return;
  }
  up_ = up;
  if (up_) {
    std::vector<Deliver> held;
    held.swap(held_);
    for (Deliver& cb : held) {
      dispatch(std::move(cb));
    }
  }
}

void Link::set_delay_factor(double factor) {
  HLS_ASSERT(factor >= 0.0, "link delay factor must be non-negative");
  delay_factor_ = factor;
}

void Link::set_loss(double loss_prob) {
  HLS_ASSERT(loss_prob >= 0.0 && loss_prob < 1.0,
             "link loss probability must be in [0, 1)");
  loss_prob_ = loss_prob;
}

void Link::set_dup(double prob, double extra_delay) {
  HLS_ASSERT(prob >= 0.0 && prob < 1.0,
             "link duplicate probability must be in [0, 1)");
  HLS_ASSERT(extra_delay >= 0.0, "duplicate extra delay must be non-negative");
  dup_prob_ = prob;
  dup_extra_ = extra_delay;
}

void Link::set_reorder(double prob, double window) {
  HLS_ASSERT(prob >= 0.0 && prob < 1.0,
             "link reorder probability must be in [0, 1)");
  HLS_ASSERT(window >= 0.0, "reorder window must be non-negative");
  reorder_prob_ = prob;
  reorder_window_ = window;
}

void Link::set_delay_spike(double prob, double factor) {
  HLS_ASSERT(prob >= 0.0 && prob < 1.0,
             "delay-spike probability must be in [0, 1)");
  HLS_ASSERT(factor >= 0.0, "delay-spike factor must be non-negative");
  spike_prob_ = prob;
  spike_factor_ = factor;
}

void Link::enable_flight_telemetry(double now) {
  flight_telemetry_ = true;
  flight_tw_.reset(now);
  flight_tw_.set(now, static_cast<double>(sent_ - delivered_));
}

void Link::reset_telemetry(double now) {
  if (flight_telemetry_) {
    flight_tw_.reset(now);  // reset keeps the current signal value
  }
}

}  // namespace hls
