#include "net/link.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace hls {

Link::Link(Simulator& sim, double delay_seconds, std::string name)
    : sim_(sim), delay_(delay_seconds), name_(std::move(name)) {
  HLS_ASSERT(delay_ >= 0.0, "link delay must be non-negative");
}

void Link::send(Deliver deliver) {
  ++sent_;
  // FIFO hold-back: never deliver before a previously sent message.
  const SimTime at = std::max(sim_.now() + delay_, last_delivery_time_);
  last_delivery_time_ = at;
  sim_.schedule_at(at, [this, cb = std::move(deliver)]() mutable {
    ++delivered_;
    cb();
  });
}

void Link::set_delay(double delay_seconds) {
  HLS_ASSERT(delay_seconds >= 0.0, "link delay must be non-negative");
  delay_ = delay_seconds;
}

}  // namespace hls
