#include "net/link.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace hls {

Link::Link(Simulator& sim, double delay_seconds, std::string name)
    : sim_(sim), delay_(delay_seconds), name_(std::move(name)) {
  HLS_ASSERT(delay_ >= 0.0, "link delay must be non-negative");
}

void Link::send(Deliver deliver) {
  ++sent_;
  if (!up_) {
    held_.push_back(std::move(deliver));
    return;
  }
  dispatch(std::move(deliver));
}

void Link::dispatch(Deliver deliver) {
  double delay = delay_ * delay_factor_;
  if (loss_prob_ > 0.0) {
    // Loss is modeled as retransmission: every lost attempt is detected and
    // resent, costing one more link delay. The protocol requires eventual
    // in-order delivery, so the message itself is never dropped.
    while (fault_rng_.bernoulli(loss_prob_)) {
      ++retransmitted_;
      delay += delay_ * delay_factor_;
    }
  }
  // FIFO hold-back: never deliver before a previously sent message.
  const SimTime at = std::max(sim_.now() + delay, last_delivery_time_);
  last_delivery_time_ = at;
  flight_.push_back(std::move(deliver));
  sim_.schedule_at(at, [this] {
    Deliver cb = std::move(flight_.front());
    flight_.pop_front();
    ++delivered_;
    cb();
  });
}

void Link::set_delay(double delay_seconds) {
  HLS_ASSERT(delay_seconds >= 0.0, "link delay must be non-negative");
  delay_ = delay_seconds;
}

void Link::set_up(bool up) {
  if (up == up_) {
    return;
  }
  up_ = up;
  if (up_) {
    std::vector<Deliver> held;
    held.swap(held_);
    for (Deliver& cb : held) {
      dispatch(std::move(cb));
    }
  }
}

void Link::set_delay_factor(double factor) {
  HLS_ASSERT(factor >= 0.0, "link delay factor must be non-negative");
  delay_factor_ = factor;
}

void Link::set_loss(double loss_prob) {
  HLS_ASSERT(loss_prob >= 0.0 && loss_prob < 1.0,
             "link loss probability must be in [0, 1)");
  loss_prob_ = loss_prob;
}

}  // namespace hls
