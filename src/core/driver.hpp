// Simulation driver: builds a HybridSystem for a configuration + strategy,
// runs warmup and measurement windows, and returns the collected metrics.
// This is the top-level entry point most users of the library need.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "obs/registry.hpp"
#include "obs/sample.hpp"
#include "obs/sink.hpp"
#include "routing/factory.hpp"

namespace hls {

struct RunOptions {
  double warmup_seconds = 200.0;   ///< discarded transient
  double measure_seconds = 1200.0; ///< measurement window
  /// Optional trace sink (obs/sink.hpp) registered for the whole run,
  /// warmup included. Borrowed, not owned; may be null.
  obs::TraceSink* trace_sink = nullptr;
  /// Further borrowed sinks, registered after trace_sink (e.g. a
  /// ReportCollector riding along with a CSV exporter).
  std::vector<obs::TraceSink*> extra_sinks;
};

struct RunResult {
  Metrics metrics;
  std::string strategy_name;
  SystemConfig config;
  double static_p_ship = -1.0;  ///< p_ship chosen when strategy is static (-1 otherwise)
  /// Time series from the measurement window; empty unless the config sets
  /// obs_sample_interval > 0 (see obs/sample.hpp for the CSV writer).
  std::vector<obs::SampleRow> series;
  /// Decision log of the adaptive controller (routing/adaptive.hpp), warmup
  /// included; empty unless the strategy is an `adapt:` spec with a positive
  /// review interval. Rendered by core/report's controller section.
  std::vector<ControllerDecision> controller_decisions;
  /// Every metric the run accumulated, under the stable names documented in
  /// docs/OBSERVABILITY.md; always populated (the export is a read-only
  /// post-run pass). Serialized by core/artifact.hpp when the config sets
  /// obs_artifact.
  obs::Registry registry;
};

/// Builds the strategy from `spec` (running the static optimization when the
/// spec asks for the optimal static strategy), simulates warmup+measurement,
/// and returns the metrics.
[[nodiscard]] RunResult run_simulation(const SystemConfig& config,
                                       const StrategySpec& spec,
                                       const RunOptions& options = {});

/// Convenience overload for a caller-constructed strategy.
[[nodiscard]] RunResult run_simulation(const SystemConfig& config,
                                       std::unique_ptr<RoutingStrategy> strategy,
                                       const RunOptions& options = {});

/// Scale factor for experiment durations taken from the HLS_TIME_SCALE
/// environment variable (default 1.0; set to e.g. 0.2 for quick smoke runs).
[[nodiscard]] double time_scale_from_env();

}  // namespace hls
