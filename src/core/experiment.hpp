// Experiment harness: rate sweeps across strategies, threshold sweeps, and
// the table printers the figure benches share. Each paper figure is "one
// sweep, several series"; this module turns that into data.
#pragma once

#include <string>
#include <vector>

#include "core/driver.hpp"
#include "util/table.hpp"

namespace hls {

struct SweepPoint {
  double total_rate = 0.0;  ///< offered load, transactions/second over all sites
  RunResult result;
};

struct Series {
  std::string label;
  StrategySpec spec;
  std::vector<SweepPoint> points;
};

class ExperimentRunner {
 public:
  ExperimentRunner(SystemConfig base, RunOptions options)
      : base_(base), options_(options) {}

  /// Runs `spec` at every offered total rate; rates are divided evenly over
  /// the sites. Progress lines go to stderr so stdout stays machine-clean.
  [[nodiscard]] Series sweep_rates(const StrategySpec& spec,
                                   const std::string& label,
                                   const std::vector<double>& total_rates) const;

  [[nodiscard]] const SystemConfig& base() const { return base_; }
  [[nodiscard]] const RunOptions& options() const { return options_; }

 private:
  SystemConfig base_;
  RunOptions options_;
};

/// Default offered-load grid used by the figure benches (total txn/s).
[[nodiscard]] std::vector<double> default_rate_grid();

/// Average-response-time-vs-throughput table (one row per rate, one column
/// pair per series): the layout of Figures 4.1 / 4.2 / 4.4 / 4.5 / 4.7.
[[nodiscard]] Table response_time_table(const std::vector<Series>& series);

/// Ship-fraction-vs-offered-rate table: Figures 4.3 / 4.6.
[[nodiscard]] Table ship_fraction_table(const std::vector<Series>& series);

/// Abort/rerun statistics table for one series (per rate).
[[nodiscard]] Table abort_table(const Series& series);

}  // namespace hls
