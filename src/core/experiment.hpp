// Experiment harness: rate sweeps across strategies, threshold sweeps, and
// the table printers the figure benches share. Each paper figure is "one
// sweep, several series"; this module turns that into data.
//
// Every design point is an independent, deterministic, single-threaded
// simulation, so batches fan out over a TaskPool (HLS_JOBS workers; see
// util/task_pool.hpp). Results land in submission-order slots, making the
// collected output byte-identical to the sequential path at any job count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "util/table.hpp"

namespace hls {

struct SweepPoint {
  double total_rate = 0.0;  ///< offered load, transactions/second over all sites
  RunResult result;
};

struct Series {
  std::string label;
  StrategySpec spec;
  std::vector<SweepPoint> points;
};

/// One design point of a parallel batch: a full system configuration plus
/// the strategy to run on it.
struct SimJob {
  SystemConfig config;
  StrategySpec spec;
};

/// Runs every job and returns the results in submission order. Jobs execute
/// concurrently on `jobs` workers (0 = HLS_JOBS / hardware_concurrency; 1 =
/// inline sequential). `progress`, if given, is invoked once per finished
/// job under an internal mutex, so its stderr output never interleaves;
/// with one worker the invocation order is exactly submission order.
std::vector<RunResult> run_simulation_batch(
    const std::vector<SimJob>& jobs, const RunOptions& options,
    const std::function<void(std::size_t, const RunResult&)>& progress = {},
    unsigned jobs_override = 0);

class ExperimentRunner {
 public:
  ExperimentRunner(SystemConfig base, RunOptions options)
      : base_(std::move(base)), options_(std::move(options)) {}

  /// Runs `spec` at every offered total rate; rates are divided evenly over
  /// the sites. Progress lines go to stderr so stdout stays machine-clean.
  [[nodiscard]] Series sweep_rates(const StrategySpec& spec,
                                   const std::string& label,
                                   const std::vector<double>& total_rates) const;

  /// Fans out the full strategy x rate grid of a figure as one task batch:
  /// specs[i] is swept under labels[i] at every rate. Equivalent to calling
  /// sweep_rates per spec, but all |specs| * |rates| simulations share one
  /// parallel batch, so wall-clock scales with HLS_JOBS.
  [[nodiscard]] std::vector<Series> sweep_all(
      const std::vector<StrategySpec>& specs,
      const std::vector<std::string>& labels,
      const std::vector<double>& total_rates) const;

  /// Overrides the worker count for this runner's batches (0 = HLS_JOBS).
  /// Exists so tests can pin both sides of a determinism comparison without
  /// mutating the environment.
  void set_jobs(unsigned jobs) { jobs_ = jobs; }

  [[nodiscard]] const SystemConfig& base() const { return base_; }
  [[nodiscard]] const RunOptions& options() const { return options_; }

 private:
  SystemConfig base_;
  RunOptions options_;
  unsigned jobs_ = 0;  // 0 = resolve from HLS_JOBS at batch time
};

/// Default offered-load grid used by the figure benches (total txn/s).
[[nodiscard]] std::vector<double> default_rate_grid();

/// Average-response-time-vs-throughput table (one row per rate, one column
/// pair per series): the layout of Figures 4.1 / 4.2 / 4.4 / 4.5 / 4.7.
[[nodiscard]] Table response_time_table(const std::vector<Series>& series);

/// Ship-fraction-vs-offered-rate table: Figures 4.3 / 4.6.
[[nodiscard]] Table ship_fraction_table(const std::vector<Series>& series);

/// Abort/rerun statistics table for one series (per rate).
[[nodiscard]] Table abort_table(const Series& series);

}  // namespace hls
