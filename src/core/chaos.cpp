#include "core/chaos.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <ostream>
#include <sstream>

#include "core/config_io.hpp"
#include "hybrid/hybrid_system.hpp"
#include "model/params.hpp"
#include "obs/phase.hpp"
#include "util/assert.hpp"

namespace hls {

namespace {

// Strategy pool the episode generator draws from (parse_strategy_spec
// grammar). StaticOptimal is deliberately absent: the optimizer's search is
// pure overhead for an oracle run and adds nothing to protocol coverage.
const char* const kChaosStrategies[] = {
    "no-load-sharing",
    "always-central",
    "static:0.3",
    "static:0.7",
    "measured-rt",
    "queue-length",
    "util-threshold:-0.2",
    "min-incoming-queue",
    "min-incoming-nsys",
    "min-average-queue",
    "min-average-nsys",
    "failsafe:min-average-nsys",
    "failsafe@2.5:queue-length",
};

void check_u64(std::vector<std::string>& failures, const char* what,
               std::uint64_t got, std::uint64_t want) {
  if (got != want) {
    std::ostringstream os;
    os << what << ": " << got << " != " << want;
    failures.push_back(os.str());
  }
}

void check_zero(std::vector<std::string>& failures, const char* what,
                std::uint64_t got) {
  check_u64(failures, what, got, 0);
}

// boost::hash_combine-style mix; the absolute value is meaningless, only
// equality between the two runs of an episode matters.
void mix(std::uint64_t& fp, std::uint64_t x) {
  fp ^= x + 0x9E3779B97F4A7C15ULL + (fp << 6) + (fp >> 2);
}

}  // namespace

ChaosEpisode make_chaos_episode(std::uint64_t master_seed, int index) {
  HLS_ASSERT(index >= 0, "negative episode index");
  // Two splitmix rounds decorrelate adjacent indices before seeding the
  // episode stream; every value below derives from this one generator, so
  // (master_seed, index) fully determines the episode.
  SplitMix64 sm(master_seed ^
                (0x6368616F73ULL * (static_cast<std::uint64_t>(index) + 1)));
  sm.next();
  Rng rng(sm.next());

  ChaosEpisode ep;
  SystemConfig& cfg = ep.config;
  cfg.seed = rng.next_u64();
  cfg.num_sites = static_cast<int>(rng.uniform_int(3, 8));
  // Small lock spaces keep real contention (deadlocks, authentication
  // refusals) in every episode; the default 32K space would make conflicts
  // vanishingly rare at this scale.
  const std::uint32_t kLockspaces[] = {1024, 4096, 16384};
  cfg.lockspace = kLockspaces[rng.next_below(3)];
  cfg.arrival_rate_per_site = rng.uniform(0.5, 2.0);
  cfg.prob_class_a = rng.uniform(0.5, 0.9);
  cfg.db_calls_per_txn = static_cast<int>(rng.uniform_int(5, 12));
  cfg.geometric_call_count = rng.bernoulli(0.25);
  cfg.chaos_run_seconds = rng.uniform(10.0, 20.0);
  cfg.chaos_strategy =
      kChaosStrategies[rng.next_below(std::size(kChaosStrategies))];
  ep.strategy = parse_strategy_spec(cfg.chaos_strategy);

  if (rng.bernoulli(0.7)) {
    cfg.ship_timeout = rng.uniform(1.0, 3.0);
    cfg.ship_max_retries = static_cast<int>(rng.uniform_int(0, 3));
    if (rng.bernoulli(0.5)) {
      cfg.ship_jitter = rng.uniform(0.1, 0.5);
    }
  }
  if (rng.bernoulli(0.3)) {
    cfg.async_batch_window = rng.uniform(0.02, 0.2);
  }
  if (rng.bernoulli(0.2)) {
    cfg.class_b_mode = ClassBMode::RemoteCalls;
  }
  if (rng.bernoulli(0.3)) {
    cfg.deadlock_victim = DeadlockVictim::Youngest;
  }
  if (rng.bernoulli(0.3)) {
    cfg.obs_sample_interval = 0.25;
  }

  FaultScheduleConfig& f = cfg.faults;
  if (rng.bernoulli(0.8)) {
    f.dup_prob = rng.uniform(0.0, 0.25);
    f.dup_extra = rng.uniform(0.0, 0.15);
    f.reorder_prob = rng.uniform(0.0, 0.25);
    f.reorder_window = rng.bernoulli(0.5) ? rng.uniform(0.05, 0.5) : 0.0;
    f.spike_prob = rng.uniform(0.0, 0.15);
    f.spike_factor = rng.uniform(1.5, 6.0);
  }

  const int n_windows = static_cast<int>(rng.uniform_int(1, 4));
  const FaultKind kKinds[] = {FaultKind::CentralOutage, FaultKind::SiteOutage,
                              FaultKind::LinkOutage, FaultKind::LinkDegrade,
                              FaultKind::MsgFault};
  for (int i = 0; i < n_windows; ++i) {
    FaultWindow w;
    w.kind = kKinds[rng.next_below(std::size(kKinds))];
    w.start = rng.uniform(1.0, 0.7 * cfg.chaos_run_seconds);
    w.duration = rng.uniform(0.5, 0.25 * cfg.chaos_run_seconds);
    if (w.kind == FaultKind::CentralOutage || rng.bernoulli(0.25)) {
      w.site = -1;
    } else {
      w.site = static_cast<int>(rng.uniform_int(0, cfg.num_sites - 1));
    }
    if (w.kind == FaultKind::LinkDegrade) {
      w.delay_factor = rng.uniform(1.5, 5.0);
      w.loss_prob = rng.uniform(0.0, 0.4);
    } else if (w.kind == FaultKind::MsgFault) {
      w.dup_prob = rng.uniform(0.0, 0.5);
      w.reorder_prob = rng.uniform(0.0, 0.5);
      w.spike_prob = rng.uniform(0.0, 0.3);
      w.spike_factor = rng.uniform(1.5, 8.0);
    }
    f.windows.push_back(w);
  }

  cfg.validate();
  return ep;
}

ChaosVerdict run_chaos_once(const ChaosEpisode& episode,
                            const ChaosOracle& extra) {
  const SystemConfig& cfg = episode.config;
  HLS_ASSERT(cfg.chaos_run_seconds > 0.0, "chaos episode needs a run window");

  ChaosVerdict v;
  // Same strategy seed derivation as the driver, so a repro config behaves
  // identically under run_simulation-based tooling.
  HybridSystem sys(cfg,
                   make_strategy(episode.strategy, ModelParams::from_config(cfg),
                                 cfg.seed ^ 0x51CA5EEDULL));
  std::uint64_t fp = 0x811C9DC5ULL;
  sys.set_completion_hook([&fp](const TxnCompletionRecord& r) {
    mix(fp, static_cast<std::uint64_t>(r.id));
    mix(fp, static_cast<std::uint64_t>(r.runs));
    mix(fp, std::bit_cast<std::uint64_t>(r.completion_time));
    mix(fp, std::bit_cast<std::uint64_t>(r.response_time));
  });

  sys.enable_arrivals();
  sys.run_for(cfg.chaos_run_seconds);
  sys.stop_arrivals();
  sys.drain();

  const Metrics& m = sys.metrics();
  std::vector<std::string>& f = v.failures;

  // ---- drain-to-zero ----
  check_zero(f, "live transactions after drain",
             static_cast<std::uint64_t>(sys.live_transactions()));
  check_zero(f, "central resident txns",
             static_cast<std::uint64_t>(sys.central_resident()));
  check_zero(f, "central locks held", sys.central_locks().locks_held());
  check_zero(f, "central lock waiters", sys.central_locks().waiters());
  check_zero(f, "pending coherence entities",
             sys.central_locks().pending_coherence_entities());
  for (int s = 0; s < cfg.num_sites; ++s) {
    check_zero(f, "site resident txns",
               static_cast<std::uint64_t>(sys.local_resident(s)));
    check_zero(f, "site shipped in flight",
               static_cast<std::uint64_t>(sys.shipped_in_flight(s)));
    check_zero(f, "site locks held", sys.local_locks(s).locks_held());
    check_zero(f, "site lock waiters", sys.local_locks(s).waiters());
  }

  // ---- flow conservation ----
  check_u64(f, "arrivals vs completions",
            m.arrivals_class_a + m.arrivals_class_b, m.completions);
  check_u64(f, "completion split",
            m.completions_local_a + m.completions_shipped_a +
                m.completions_class_b,
            m.completions);
  check_u64(f, "reruns vs aborts", m.reruns, m.aborts_total());

  // ---- phase-sum identity over the whole run ----
  double phase_total = 0.0;
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    const SampleStat& s = m.rt_phase[static_cast<std::size_t>(p)];
    check_u64(f, "phase sample count", s.count(), m.completions);
    phase_total += s.sum();
  }
  if (std::abs(phase_total - m.rt_all.sum()) >
      1e-9 * (1.0 + std::abs(m.rt_all.sum()))) {
    std::ostringstream os;
    os << "phase-sum identity: " << phase_total << " != " << m.rt_all.sum();
    f.push_back(os.str());
  }

  // ---- double-entry ledgers: global == sum over sites ----
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    std::uint64_t site_sum = 0;
    for (int s = 0; s < cfg.num_sites; ++s) {
      site_sum += sys.site_metrics(s).aborts[c];
    }
    check_u64(f, "abort-cause double entry", site_sum, m.aborts[c]);
  }
  check_u64(f, "conflict matrix total", m.conflict_matrix_total(),
            m.aborts_total());
  std::uint64_t winner_cells = 0;
  for (int vs = 0; vs < m.conflict_sites; ++vs) {
    for (int w = 0; w < m.conflict_sites; ++w) {
      winner_cells += m.conflict(vs, w);
    }
  }
  check_u64(f, "conflict winner cells", winner_cells, m.aborts_with_winner);
  std::uint64_t timeouts = 0, retries = 0, fallbacks = 0, dups = 0, reseq = 0;
  for (int s = 0; s < cfg.num_sites; ++s) {
    const SiteMetrics& sm2 = sys.site_metrics(s);
    timeouts += sm2.ship_timeouts;
    retries += sm2.ship_retries;
    fallbacks += sm2.ship_fallbacks;
    dups += sm2.dup_msgs_dropped;
    reseq += sm2.msgs_resequenced;
  }
  check_u64(f, "ship_timeouts double entry", timeouts, m.ship_timeouts);
  check_u64(f, "ship_retries double entry", retries, m.ship_retries);
  check_u64(f, "ship_fallbacks double entry", fallbacks, m.ship_fallbacks);
  check_u64(f, "dup_msgs_dropped double entry", dups, m.dup_msgs_dropped);
  check_u64(f, "msgs_resequenced double entry", reseq, m.msgs_resequenced);

  // ---- duplicate-delivery accounting ----
  // Every duplicated link delivery is rejected by the sequencer exactly
  // once (the primary always reaches deliver_in_order first), so at drain
  // the two independently maintained counters must agree. Resequencing can
  // only be caused by straggler displacement.
  const HybridSystem::LinkFaultTotals lf = sys.link_fault_totals();
  check_u64(f, "dup drops vs link duplications", m.dup_msgs_dropped,
            lf.duplicated);
  if (lf.reordered == 0) {
    check_zero(f, "resequenced without reordering", m.msgs_resequenced);
  }

  if (extra) {
    extra(sys, f);
  }

  // Last: the internal cross-check aborts the process on violation
  // (library-bug semantics), so the soft verdict above is already complete
  // if we never return.
  sys.check_invariants();

  v.fingerprint = fp;
  v.completions = m.completions;
  v.dup_msgs_dropped = m.dup_msgs_dropped;
  v.msgs_resequenced = m.msgs_resequenced;
  return v;
}

ChaosVerdict run_chaos_episode(const ChaosEpisode& episode,
                               const ChaosOracle& extra) {
  ChaosVerdict first = run_chaos_once(episode, extra);
  const ChaosVerdict second = run_chaos_once(episode, extra);
  if (first.fingerprint != second.fingerprint ||
      first.completions != second.completions ||
      first.dup_msgs_dropped != second.dup_msgs_dropped ||
      first.msgs_resequenced != second.msgs_resequenced) {
    std::ostringstream os;
    os << "replay diverged: fingerprint " << std::hex << first.fingerprint
       << " vs " << second.fingerprint << std::dec << ", completions "
       << first.completions << " vs " << second.completions;
    first.failures.push_back(os.str());
  }
  return first;
}

ChaosFailurePredicate make_inprocess_predicate(ChaosOracle extra) {
  return [extra = std::move(extra)](const ChaosEpisode& episode) {
    return !run_chaos_episode(episode, extra).passed();
  };
}

ChaosShrinkResult shrink_chaos_episode(const ChaosEpisode& failing,
                                       const ChaosFailurePredicate& still_fails) {
  ChaosShrinkResult r;
  r.episode = failing;
  auto fails = [&](const ChaosEpisode& candidate) {
    ++r.evaluations;
    return still_fails(candidate);
  };

  // Phase 1 — fewest ingredients: drop whole windows (and whole steady
  // chaos knob groups) to a fixpoint. Greedy one-at-a-time removal is
  // ddmin at granularity 1; fault schedules are small enough (<= a handful
  // of windows) that coarser splits would save nothing.
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t n = r.episode.config.faults.windows.size();
    for (std::size_t i = 0; i < n; ++i) {
      ChaosEpisode candidate = r.episode;
      std::vector<FaultWindow>& wins = candidate.config.faults.windows;
      wins.erase(wins.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        r.episode = candidate;
        changed = true;
        break;
      }
    }
    if (changed) {
      continue;
    }
    const FaultScheduleConfig& f = r.episode.config.faults;
    auto try_mutation = [&](auto mutate) {
      if (changed) {
        return;
      }
      ChaosEpisode candidate = r.episode;
      mutate(candidate.config.faults);
      if (fails(candidate)) {
        r.episode = candidate;
        changed = true;
      }
    };
    if (f.dup_prob > 0.0) {
      try_mutation([](FaultScheduleConfig& g) {
        g.dup_prob = 0.0;
        g.dup_extra = 0.0;
      });
    }
    if (f.reorder_prob > 0.0) {
      try_mutation([](FaultScheduleConfig& g) {
        g.reorder_prob = 0.0;
        g.reorder_window = 0.0;
      });
    }
    if (f.spike_prob > 0.0) {
      try_mutation([](FaultScheduleConfig& g) {
        g.spike_prob = 0.0;
        g.spike_factor = 1.0;
      });
    }
    if (f.random_link_outage_rate > 0.0) {
      try_mutation([](FaultScheduleConfig& g) {
        g.random_link_outage_rate = 0.0;
        g.random_link_outage_mean = 0.0;
        g.random_horizon = 0.0;
      });
    }
  }

  // Phase 2 — narrowest windows: halve each survivor from the tail, then
  // from the head, as long as the failure persists.
  const std::size_t n_windows = r.episode.config.faults.windows.size();
  for (std::size_t i = 0; i < n_windows; ++i) {
    for (int iter = 0; iter < 8; ++iter) {
      ChaosEpisode candidate = r.episode;
      FaultWindow& w = candidate.config.faults.windows[i];
      if (w.duration <= 1e-3) {
        break;
      }
      w.duration *= 0.5;
      if (!fails(candidate)) {
        break;
      }
      r.episode = candidate;
    }
    for (int iter = 0; iter < 8; ++iter) {
      ChaosEpisode candidate = r.episode;
      FaultWindow& w = candidate.config.faults.windows[i];
      if (w.duration <= 1e-3) {
        break;
      }
      w.start += w.duration * 0.5;
      w.duration *= 0.5;
      if (!fails(candidate)) {
        break;
      }
      r.episode = candidate;
    }
  }

  // Phase 3 — shortest run: halve the arrival window (floored at the end of
  // the latest surviving fault window) so the repro reruns fast.
  for (int iter = 0; iter < 6; ++iter) {
    double floor_t = 1.0;
    for (const FaultWindow& w : r.episode.config.faults.windows) {
      floor_t = std::max(floor_t, w.start + w.duration);
    }
    ChaosEpisode candidate = r.episode;
    double next = candidate.config.chaos_run_seconds * 0.5;
    next = std::max(next, floor_t);
    if (next >= candidate.config.chaos_run_seconds - 1e-9) {
      break;
    }
    candidate.config.chaos_run_seconds = next;
    if (!fails(candidate)) {
      break;
    }
    r.episode = candidate;
  }
  return r;
}

void write_chaos_repro(std::ostream& out, const ChaosEpisode& episode) {
  out << "# hybridls chaos repro (docs/CHAOS.md)\n";
  out << "# rerun: ./build/tools/chaos_soak --repro=<this file>\n";
  out << "# " << describe_chaos_episode(episode) << "\n";
  describe_config(out, episode.config);
}

std::optional<ChaosEpisode> parse_chaos_repro(std::istream& in,
                                              std::string* error) {
  std::optional<SystemConfig> cfg = parse_config_file(in, SystemConfig{}, error);
  if (!cfg.has_value()) {
    return std::nullopt;
  }
  if (cfg->chaos_strategy.empty()) {
    if (error != nullptr) {
      *error = "repro config is missing the chaos_strategy envelope key";
    }
    return std::nullopt;
  }
  if (cfg->chaos_run_seconds <= 0.0) {
    if (error != nullptr) {
      *error = "repro config needs chaos_run_seconds > 0";
    }
    return std::nullopt;
  }
  ChaosEpisode ep;
  ep.config = *std::move(cfg);
  ep.strategy = parse_strategy_spec(ep.config.chaos_strategy);
  return ep;
}

std::string describe_chaos_episode(const ChaosEpisode& episode) {
  const SystemConfig& c = episode.config;
  const FaultScheduleConfig& f = c.faults;
  std::ostringstream os;
  os << "seed=" << c.seed << " sites=" << c.num_sites
     << " lockspace=" << c.lockspace << " lambda=" << c.arrival_rate_per_site
     << " strategy=" << c.chaos_strategy << " run=" << c.chaos_run_seconds
     << "s ship_timeout=" << c.ship_timeout;
  if (f.dup_prob > 0.0 || f.reorder_prob > 0.0 || f.spike_prob > 0.0) {
    os << " steady[dup=" << f.dup_prob << " reorder=" << f.reorder_prob
       << " spike=" << f.spike_prob << "]";
  }
  for (const FaultWindow& w : f.windows) {
    os << " fault=" << format_fault_window(w);
  }
  return os.str();
}

}  // namespace hls
