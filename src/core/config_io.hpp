// SystemConfig serialization helpers: key=value overrides (CLI flags,
// config files) and a human-readable description. Keeps experiment scripts
// and the strategy_explorer example free of hand-rolled parsing.
//
// Recognized keys mirror the SystemConfig field names:
//   num_sites local_mips central_mips comm_delay arrival_rate_per_site
//   prob_class_a db_calls_per_txn instr_per_call instr_msg_init
//   instr_msg_commit setup_io_time call_io_time prob_call_io
//   prob_write_lock lockspace instr_ship_forward instr_apply_update
//   instr_apply_update_item instr_recv_ack instr_auth_local
//   instr_commit_apply_local instr_send_async instr_remote_call
//   async_batch_window deadlock_victim (requester|youngest)
//   class_b_mode (ship|remote-calls) seed abort_restart_delay max_reruns
//   ideal_state_info (0|1) geometric_call_count (0|1)
//   ship_timeout ship_backoff ship_max_retries ship_jitter
//   fault_random_link_rate fault_random_link_duration fault_random_horizon
//   fault_dup_prob fault_dup_delay fault_reorder_prob fault_reorder_window
//   fault_spike_prob fault_spike_factor
//   chaos_strategy chaos_run_seconds (chaos repro envelope; docs/CHAOS.md)
//   fault=<window> (repeatable, appends; "fault=clear" resets; see
//   sim/fault_schedule.hpp parse_fault_window for the window grammar)
//   (local_mips_per_site is programmatic-only: set it in code)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "hybrid/config.hpp"

namespace hls {

/// Applies one `key=value` override. Returns false (and fills `error` when
/// non-null) for unknown keys or unparseable values; the config is only
/// modified on success.
bool apply_config_override(SystemConfig& cfg, const std::string& assignment,
                           std::string* error = nullptr);

/// Parses a config file: one `key=value` per line, '#' comments and blank
/// lines ignored. Returns std::nullopt on the first bad line.
[[nodiscard]] std::optional<SystemConfig> parse_config_file(
    std::istream& in, const SystemConfig& base, std::string* error = nullptr);

/// One-line-per-field description (valid input to parse_config_file).
void describe_config(std::ostream& out, const SystemConfig& cfg);

}  // namespace hls
