// Transaction-completion tracing.
//
// Attaches to a HybridSystem's completion hook and writes one CSV row per
// completed transaction — class, route, timings, runs, abort breakdown.
// Useful for distribution-level analysis beyond the aggregate Metrics
// (e.g. tail latencies of shipped vs local transactions) and for feeding
// external plotting tools.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "hybrid/hybrid_system.hpp"

namespace hls {

class TraceWriter {
 public:
  /// Writes the CSV header immediately; rows follow as transactions
  /// complete after attach(). The stream must outlive the writer.
  explicit TraceWriter(std::ostream& out);

  /// Registers this writer as `system`'s completion hook (replacing any
  /// previous hook). The writer must outlive the system's run.
  void attach(HybridSystem& system);

  /// Writes one record (also usable without attach, e.g. for filtering).
  void write(const TxnCompletionRecord& record);

  [[nodiscard]] std::uint64_t rows_written() const { return rows_; }

  /// Column header, exposed for readers of the produced files.
  static const char* header();

 private:
  std::ostream& out_;
  std::uint64_t rows_ = 0;
};

}  // namespace hls
