// Transaction-completion tracing.
//
// A TraceSink (obs/sink.hpp) subscribed to Completion events only; writes
// one CSV row per completed transaction — class, route, timings, runs,
// abort breakdown. Useful for distribution-level analysis beyond the
// aggregate Metrics (e.g. tail latencies of shipped vs local transactions)
// and for feeding external plotting tools. The row format predates the obs
// layer and is pinned by tests and by trace_replay; CsvSink is the richer
// (phase-level, multi-kind) alternative.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "hybrid/hybrid_system.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace hls {

class TraceWriter : public obs::TraceSink {
 public:
  /// Writes the CSV header immediately; rows follow as transactions
  /// complete after attach(). The stream must outlive the writer.
  explicit TraceWriter(std::ostream& out);

  /// Registers this writer as a trace sink on `system`. The writer must
  /// outlive the system's run (or be removed with remove_trace_sink).
  void attach(HybridSystem& system);

  /// Writes one record (also usable without attach, e.g. for filtering).
  void write(const TxnCompletionRecord& record);

  // ---- obs::TraceSink ----
  [[nodiscard]] unsigned kind_mask() const override {
    return obs::kind_bit(obs::EventKind::Completion);
  }
  void on_event(const obs::Event& event) override;

  [[nodiscard]] std::uint64_t rows_written() const { return rows_; }

  /// Column header, exposed for readers of the produced files.
  static const char* header();

 private:
  std::ostream& out_;
  std::uint64_t rows_ = 0;
};

}  // namespace hls
