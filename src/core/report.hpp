// Run-report generator: the human-readable summary of one simulation run.
//
// Two pieces. ReportCollector is a TraceSink that retains the span trees of
// the K slowest completed transactions (plus per-abort provenance lines), so
// a report can show *where* the tail went, not just how long it was.
// write_run_report() renders the phase table, abort-cause breakdown,
// conflict matrix, wasted-work totals, and — when a collector is supplied —
// the top-K slowest span trees, to a plain-text stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "hybrid/metrics.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"
#include "routing/adaptive.hpp"

namespace hls {

/// One settled span segment retained for the report's span-tree section.
struct ReportSpan {
  obs::Phase phase = obs::Phase::kCount;
  double begin = 0.0;
  double end = 0.0;
  int track = 0;  ///< site index, or obs::kCentralTrack
  int run = 1;    ///< attempt number the segment belongs to (1 = first)
};

/// One abort in a retained transaction's history.
struct ReportAbort {
  AbortCause cause = AbortCause::kCount;
  double time = 0.0;
  TxnId winner = kInvalidTxn;
  int winner_site = -2;
  double wasted_cpu = 0.0;
  double wasted_io = 0.0;
};

class ReportCollector final : public obs::TraceSink {
 public:
  /// Keeps the span trees of the `top_k` slowest completions. The collector
  /// subscribes to Span, Edge, Abort, and Completion events; registering it
  /// therefore turns span emission on for the run.
  explicit ReportCollector(int top_k = 5) : top_k_(top_k) {}

  /// A completed transaction retained for the slowest-K section.
  struct SlowTxn {
    TxnId id = kInvalidTxn;
    TxnClass cls = TxnClass::A;
    Route route = Route::Local;
    int home_site = 0;
    int runs = 1;
    double arrival_time = 0.0;
    double response_time = 0.0;
    double wasted_cpu = 0.0;
    double wasted_io = 0.0;
    std::vector<ReportSpan> spans;    ///< in settle order across all runs
    std::vector<ReportAbort> aborts;  ///< the retry chain's provenance
  };

  /// Slowest completions, descending by response time; at most top_k.
  [[nodiscard]] const std::vector<SlowTxn>& slowest() const { return slowest_; }

  // ---- obs::TraceSink ----
  [[nodiscard]] unsigned kind_mask() const override {
    return obs::kSpanEventKinds | obs::kind_bit(obs::EventKind::Completion) |
           obs::kind_bit(obs::EventKind::Abort);
  }
  void on_event(const obs::Event& event) override;

 private:
  struct Pending {
    std::vector<ReportSpan> spans;
    std::vector<ReportAbort> aborts;
  };

  int top_k_;
  std::unordered_map<TxnId, Pending> open_;  ///< live transactions' history
  std::vector<SlowTxn> slowest_;
};

/// Renders the report. `collector` may be null: the slowest-K section is
/// then omitted (metrics alone cannot reconstruct span trees). `decisions`
/// may also be null: the controller-decision section (each adaptive-routing
/// decision with its triggering evidence; RunResult::controller_decisions)
/// is then omitted.
void write_run_report(std::ostream& out, const Metrics& metrics,
                      const ReportCollector* collector = nullptr,
                      const std::vector<ControllerDecision>* decisions = nullptr);

}  // namespace hls
