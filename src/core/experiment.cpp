#include "core/experiment.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace hls {

Series ExperimentRunner::sweep_rates(const StrategySpec& spec,
                                     const std::string& label,
                                     const std::vector<double>& total_rates) const {
  Series series;
  series.label = label;
  series.spec = spec;
  series.points.reserve(total_rates.size());
  for (double rate : total_rates) {
    SystemConfig cfg = base_;
    cfg.arrival_rate_per_site = rate / cfg.num_sites;
    SweepPoint point;
    point.total_rate = rate;
    point.result = run_simulation(cfg, spec, options_);
    std::fprintf(stderr, "  [%s] rate=%.1f tps -> rt=%.3f s, ship=%.3f\n",
                 label.c_str(), rate, point.result.metrics.rt_all.mean(),
                 point.result.metrics.ship_fraction());
    series.points.push_back(std::move(point));
  }
  return series;
}

std::vector<double> default_rate_grid() {
  return {5.0, 10.0, 15.0, 20.0, 24.0, 28.0, 32.0, 36.0, 40.0};
}

Table response_time_table(const std::vector<Series>& series) {
  std::vector<std::string> headers{"offered_tps"};
  for (const Series& s : series) {
    headers.push_back(s.label + ":tput");
    headers.push_back(s.label + ":rt");
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  const std::size_t rows = series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    table.begin_row().add_num(series.front().points[r].total_rate, 1);
    for (const Series& s : series) {
      HLS_ASSERT(s.points.size() == rows, "series swept different rate grids");
      const Metrics& m = s.points[r].result.metrics;
      table.add_num(m.throughput(), 2);
      table.add_num(m.rt_all.mean(), 3);
    }
  }
  return table;
}

Table ship_fraction_table(const std::vector<Series>& series) {
  std::vector<std::string> headers{"offered_tps"};
  for (const Series& s : series) {
    headers.push_back(s.label);
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  const std::size_t rows = series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    table.begin_row().add_num(series.front().points[r].total_rate, 1);
    for (const Series& s : series) {
      HLS_ASSERT(s.points.size() == rows, "series swept different rate grids");
      table.add_num(s.points[r].result.metrics.ship_fraction(), 3);
    }
  }
  return table;
}

Table abort_table(const Series& series) {
  Table table({"offered_tps", "tput", "rt", "ship_frac", "runs_per_txn",
               "local_preempt", "central_invalid", "auth_refused", "deadlock"});
  for (const SweepPoint& p : series.points) {
    const Metrics& m = p.result.metrics;
    table.begin_row()
        .add_num(p.total_rate, 1)
        .add_num(m.throughput(), 2)
        .add_num(m.rt_all.mean(), 3)
        .add_num(m.ship_fraction(), 3)
        .add_num(m.runs_per_txn(), 4)
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::LocalPreempted)]))
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::CentralInvalidated)]))
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::AuthRefused)]))
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::Deadlock)]));
  }
  return table;
}

}  // namespace hls
