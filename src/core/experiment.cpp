#include "core/experiment.hpp"

#include <cstdio>
#include <mutex>

#include "util/assert.hpp"
#include "util/task_pool.hpp"

namespace hls {

std::vector<RunResult> run_simulation_batch(
    const std::vector<SimJob>& jobs, const RunOptions& options,
    const std::function<void(std::size_t, const RunResult&)>& progress,
    unsigned jobs_override) {
  std::vector<RunResult> results(jobs.size());
  TaskPool pool(jobs_override);
  std::mutex progress_mu;
  pool.parallel_for_indexed(jobs.size(), [&](std::size_t i) {
    results[i] = run_simulation(jobs[i].config, jobs[i].spec, options);
    if (progress) {
      std::lock_guard<std::mutex> lk(progress_mu);
      progress(i, results[i]);
    }
  });
  return results;
}

std::vector<Series> ExperimentRunner::sweep_all(
    const std::vector<StrategySpec>& specs,
    const std::vector<std::string>& labels,
    const std::vector<double>& total_rates) const {
  HLS_ASSERT(specs.size() == labels.size(),
             "sweep_all needs one label per strategy spec");
  std::vector<SimJob> batch;
  batch.reserve(specs.size() * total_rates.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {  // series-major: with one
    for (double rate : total_rates) {  // worker this reproduces the exact
      SimJob job;                      // order (and stderr) of sequential
      job.config = base_;              // per-series sweep_rates calls
      job.config.arrival_rate_per_site = rate / base_.num_sites;
      job.spec = specs[s];
      batch.push_back(std::move(job));
    }
  }

  const std::size_t per_series = total_rates.size();
  const auto results = run_simulation_batch(
      batch, options_,
      [&](std::size_t i, const RunResult& r) {
        std::fprintf(stderr, "  [%s] rate=%.1f tps -> rt=%.3f s, ship=%.3f\n",
                     labels[i / per_series].c_str(), total_rates[i % per_series],
                     r.metrics.rt_all.mean(), r.metrics.ship_fraction());
      },
      jobs_);

  std::vector<Series> series(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    series[s].label = labels[s];
    series[s].spec = specs[s];
    series[s].points.resize(per_series);
    for (std::size_t r = 0; r < per_series; ++r) {
      series[s].points[r].total_rate = total_rates[r];
      series[s].points[r].result = results[s * per_series + r];
    }
  }
  return series;
}

Series ExperimentRunner::sweep_rates(const StrategySpec& spec,
                                     const std::string& label,
                                     const std::vector<double>& total_rates) const {
  return sweep_all({spec}, {label}, total_rates).front();
}

std::vector<double> default_rate_grid() {
  return {5.0, 10.0, 15.0, 20.0, 24.0, 28.0, 32.0, 36.0, 40.0};
}

Table response_time_table(const std::vector<Series>& series) {
  std::vector<std::string> headers{"offered_tps"};
  for (const Series& s : series) {
    headers.push_back(s.label + ":tput");
    headers.push_back(s.label + ":rt");
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  const std::size_t rows = series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    table.begin_row().add_num(series.front().points[r].total_rate, 1);
    for (const Series& s : series) {
      HLS_ASSERT(s.points.size() == rows, "series swept different rate grids");
      const Metrics& m = s.points[r].result.metrics;
      table.add_num(m.throughput(), 2);
      table.add_num(m.rt_all.mean(), 3);
    }
  }
  return table;
}

Table ship_fraction_table(const std::vector<Series>& series) {
  std::vector<std::string> headers{"offered_tps"};
  for (const Series& s : series) {
    headers.push_back(s.label);
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  const std::size_t rows = series.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    table.begin_row().add_num(series.front().points[r].total_rate, 1);
    for (const Series& s : series) {
      HLS_ASSERT(s.points.size() == rows, "series swept different rate grids");
      table.add_num(s.points[r].result.metrics.ship_fraction(), 3);
    }
  }
  return table;
}

Table abort_table(const Series& series) {
  Table table({"offered_tps", "tput", "rt", "ship_frac", "runs_per_txn",
               "local_preempt", "central_invalid", "auth_refused", "deadlock"});
  for (const SweepPoint& p : series.points) {
    const Metrics& m = p.result.metrics;
    table.begin_row()
        .add_num(p.total_rate, 1)
        .add_num(m.throughput(), 2)
        .add_num(m.rt_all.mean(), 3)
        .add_num(m.ship_fraction(), 3)
        .add_num(m.runs_per_txn(), 4)
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::LocalPreempted)]))
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::CentralInvalidated)]))
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::AuthRefused)]))
        .add_int(static_cast<long long>(
            m.aborts[static_cast<int>(AbortCause::Deadlock)]));
  }
  return table;
}

}  // namespace hls
