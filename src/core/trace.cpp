#include "core/trace.hpp"

#include <ostream>

namespace hls {

const char* TraceWriter::header() {
  return "txn_id,class,route,home_site,arrival,completion,response_time,runs,"
         "aborts_preempted,aborts_invalidated,aborts_auth_refused,"
         "aborts_deadlock,aborts_ship_timeout,aborts_crash";
}

TraceWriter::TraceWriter(std::ostream& out) : out_(out) { out_ << header() << '\n'; }

void TraceWriter::attach(HybridSystem& system) { system.add_trace_sink(this); }

void TraceWriter::on_event(const obs::Event& event) {
  TxnCompletionRecord record;
  record.id = event.txn;
  record.cls = event.cls;
  record.route = event.route;
  record.home_site = event.home_site;
  record.arrival_time = event.arrival_time;
  record.completion_time = event.time;
  record.response_time = event.response_time;
  record.runs = event.runs;
  for (int i = 0; i < static_cast<int>(AbortCause::kCount); ++i) {
    record.aborts[i] = event.aborts[i];
  }
  write(record);
}

void TraceWriter::write(const TxnCompletionRecord& record) {
  out_ << record.id << ',' << (record.cls == TxnClass::A ? 'A' : 'B') << ','
       << (record.route == Route::Local ? "local" : "central") << ','
       << record.home_site << ',' << record.arrival_time << ','
       << record.completion_time << ',' << record.response_time << ','
       << record.runs;
  for (int i = 0; i < static_cast<int>(AbortCause::kCount); ++i) {
    out_ << ',' << record.aborts[i];
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace hls
