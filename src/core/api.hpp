// Umbrella header: everything a library user needs.
//
//   #include "core/api.hpp"
//
//   hls::SystemConfig cfg;                       // paper baseline defaults
//   cfg.arrival_rate_per_site = 2.5;
//   auto r = hls::run_simulation(
//       cfg, {hls::StrategyKind::MinAverageNsys, 0.0});
//   std::cout << r.metrics.rt_all.mean() << "\n";
#pragma once

#include "core/driver.hpp"        // IWYU pragma: export
#include "core/experiment.hpp"    // IWYU pragma: export
#include "core/report.hpp"        // IWYU pragma: export
#include "hybrid/config.hpp"      // IWYU pragma: export
#include "hybrid/hybrid_system.hpp"  // IWYU pragma: export
#include "hybrid/metrics.hpp"     // IWYU pragma: export
#include "model/analytic_model.hpp"   // IWYU pragma: export
#include "model/dynamic_estimator.hpp"  // IWYU pragma: export
#include "model/static_optimizer.hpp"   // IWYU pragma: export
#include "routing/adaptive.hpp"   // IWYU pragma: export
#include "routing/analytic_strategies.hpp"  // IWYU pragma: export
#include "routing/basic_strategies.hpp"     // IWYU pragma: export
#include "routing/factory.hpp"    // IWYU pragma: export
#include "routing/heuristics.hpp" // IWYU pragma: export
