#include "core/artifact.hpp"

#include <fstream>
#include <ostream>

#include "core/driver.hpp"
#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace hls {

void write_run_artifact(std::ostream& out, const RunResult& result) {
  const SystemConfig& cfg = result.config;
  out << "{\"schema\":\"" << kRunArtifactSchema << "\",\"run\":{";
  out << "\"arrival_rate_per_site\":";
  obs::write_json_number(out, cfg.arrival_rate_per_site);
  out << ",\"num_sites\":" << cfg.num_sites;
  out << ",\"seed\":" << cfg.seed;
  out << ",\"static_p_ship\":";
  obs::write_json_number(out, result.static_p_ship);
  out << ",\"strategy\":";
  obs::write_json_string(out, result.strategy_name);
  out << ",\"window_seconds\":";
  obs::write_json_number(out, result.metrics.window_seconds());
  out << "},\"registry\":";
  result.registry.write_json(out);
  out << "}\n";
}

void write_run_artifact_file(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  HLS_ASSERT(out.is_open(), "cannot open obs_artifact path");
  write_run_artifact(out, result);
}

}  // namespace hls
