// Replicated runs with confidence intervals.
//
// A single simulation run yields one point estimate per metric; replicating
// across independent seeds gives a mean and a Student-t confidence interval
// — standard practice for reporting simulation results, and how
// EXPERIMENTS.md quotes its numbers.
#pragma once

#include <cstdint>

#include "core/driver.hpp"
#include "util/stats.hpp"

namespace hls {

struct ReplicationSummary {
  int replications = 0;
  SampleStat response_time;  ///< mean RT of each replication
  SampleStat throughput;
  SampleStat ship_fraction;
  SampleStat runs_per_txn;

  /// Half-width of the two-sided 95% confidence interval of the mean
  /// response time (0 for fewer than two replications).
  [[nodiscard]] double rt_ci_halfwidth() const;
};

/// 97.5% Student-t quantile for `dof` degrees of freedom (asymptote 1.96).
[[nodiscard]] double student_t_975(int dof);

/// Runs `replications` independent simulations (seeds base_seed, base_seed+1,
/// ...) and aggregates the headline metrics.
[[nodiscard]] ReplicationSummary run_replicated(const SystemConfig& config,
                                                const StrategySpec& spec,
                                                const RunOptions& options,
                                                int replications,
                                                std::uint64_t base_seed);

}  // namespace hls
