#include "core/config_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

namespace hls {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    return false;
  }
  *out = v;
  return true;
}

/// Boolean config keys are spelled 0/1; an exact zero test is the intended
/// semantics, not a missing tolerance.
bool flag_set(double v) {
  return v != 0.0;  // hlslint:allow(float-eq)
}

}  // namespace

bool apply_config_override(SystemConfig& cfg, const std::string& assignment,
                           std::string* error) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos) {
    return fail(error, "expected key=value: " + assignment);
  }
  const std::string key = assignment.substr(0, eq);
  const std::string value = assignment.substr(eq + 1);

  // String-valued keys first.
  if (key == "fault") {
    if (value == "clear") {
      cfg.faults.windows.clear();
      return true;
    }
    FaultWindow window;
    std::string window_error;
    if (!parse_fault_window(value, &window, &window_error)) {
      return fail(error, "fault: " + window_error);
    }
    cfg.faults.windows.push_back(window);
    return true;
  }
  if (key == "deadlock_victim") {
    if (value == "requester") {
      cfg.deadlock_victim = DeadlockVictim::Requester;
    } else if (value == "youngest") {
      cfg.deadlock_victim = DeadlockVictim::Youngest;
    } else {
      return fail(error, "deadlock_victim must be requester|youngest");
    }
    return true;
  }
  if (key == "class_b_mode") {
    if (value == "ship") {
      cfg.class_b_mode = ClassBMode::Ship;
    } else if (value == "remote-calls") {
      cfg.class_b_mode = ClassBMode::RemoteCalls;
    } else {
      return fail(error, "class_b_mode must be ship|remote-calls");
    }
    return true;
  }
  if (key == "obs_span_sink") {
    if (!value.empty() && value.rfind("perfetto:", 0) != 0 &&
        value.rfind("csv:", 0) != 0) {
      return fail(error, "obs_span_sink must be empty, perfetto:PATH, or csv:PATH");
    }
    cfg.obs_span_sink = value;
    return true;
  }
  if (key == "obs_artifact") {
    // Any path (or empty to disable); existence is checked when the driver
    // opens it, not at parse time.
    cfg.obs_artifact = value;
    return true;
  }
  if (key == "chaos_strategy") {
    // Validated by the chaos harness (routing parse_strategy_spec aborts on
    // unknown names, so the repro runner surfaces a typo immediately).
    cfg.chaos_strategy = value;
    return true;
  }

  if (key == "seed") {
    // Parsed as a full 64-bit integer, not through the double path: seeds
    // above 2^53 (chaos repros use the whole range) must round-trip exactly.
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
        value[0] == '-') {
      return fail(error, "bad numeric value for seed: " + value);
    }
    cfg.seed = static_cast<std::uint64_t>(parsed);
    return true;
  }

  double v = 0.0;
  if (!parse_double(value, &v)) {
    return fail(error, "bad numeric value for " + key + ": " + value);
  }

  if (key == "num_sites") {
    cfg.num_sites = static_cast<int>(v);
  } else if (key == "local_mips") {
    cfg.local_mips = v;
  } else if (key == "central_mips") {
    cfg.central_mips = v;
  } else if (key == "comm_delay") {
    cfg.comm_delay = v;
  } else if (key == "arrival_rate_per_site") {
    cfg.arrival_rate_per_site = v;
  } else if (key == "prob_class_a") {
    cfg.prob_class_a = v;
  } else if (key == "db_calls_per_txn") {
    cfg.db_calls_per_txn = static_cast<int>(v);
  } else if (key == "instr_per_call") {
    cfg.instr_per_call = v;
  } else if (key == "instr_msg_init") {
    cfg.instr_msg_init = v;
  } else if (key == "instr_msg_commit") {
    cfg.instr_msg_commit = v;
  } else if (key == "setup_io_time") {
    cfg.setup_io_time = v;
  } else if (key == "call_io_time") {
    cfg.call_io_time = v;
  } else if (key == "prob_call_io") {
    cfg.prob_call_io = v;
  } else if (key == "prob_write_lock") {
    cfg.prob_write_lock = v;
  } else if (key == "lockspace") {
    cfg.lockspace = static_cast<std::uint32_t>(v);
  } else if (key == "instr_ship_forward") {
    cfg.instr_ship_forward = v;
  } else if (key == "instr_apply_update") {
    cfg.instr_apply_update = v;
  } else if (key == "instr_apply_update_item") {
    cfg.instr_apply_update_item = v;
  } else if (key == "instr_recv_ack") {
    cfg.instr_recv_ack = v;
  } else if (key == "instr_auth_local") {
    cfg.instr_auth_local = v;
  } else if (key == "instr_commit_apply_local") {
    cfg.instr_commit_apply_local = v;
  } else if (key == "instr_send_async") {
    cfg.instr_send_async = v;
  } else if (key == "instr_remote_call") {
    cfg.instr_remote_call = v;
  } else if (key == "async_batch_window") {
    cfg.async_batch_window = v;
  } else if (key == "abort_restart_delay") {
    cfg.abort_restart_delay = v;
  } else if (key == "max_reruns") {
    cfg.max_reruns = static_cast<int>(v);
  } else if (key == "livelock_backoff_after") {
    if (v < 0.0) {
      return fail(error, "livelock_backoff_after must be non-negative");
    }
    cfg.livelock_backoff_after = static_cast<int>(v);
  } else if (key == "livelock_backoff") {
    if (v < 0.0) {
      return fail(error, "livelock_backoff must be non-negative");
    }
    cfg.livelock_backoff = v;
  } else if (key == "ideal_state_info") {
    cfg.ideal_state_info = flag_set(v);
  } else if (key == "geometric_call_count") {
    cfg.geometric_call_count = flag_set(v);
  } else if (key == "ship_timeout") {
    if (v < 0.0) {
      return fail(error, "ship_timeout must be non-negative");
    }
    cfg.ship_timeout = v;
  } else if (key == "ship_backoff") {
    if (v < 1.0) {
      return fail(error, "ship_backoff must be at least 1");
    }
    cfg.ship_backoff = v;
  } else if (key == "ship_max_retries") {
    if (v < 0.0) {
      return fail(error, "ship_max_retries must be non-negative");
    }
    cfg.ship_max_retries = static_cast<int>(v);
  } else if (key == "obs_sample_interval") {
    if (v < 0.0) {
      return fail(error, "obs_sample_interval must be non-negative");
    }
    cfg.obs_sample_interval = v;
  } else if (key == "report_top_k") {
    if (v < 0.0) {
      return fail(error, "report_top_k must be non-negative");
    }
    cfg.report_top_k = static_cast<int>(v);
  } else if (key == "obs_resource_telemetry") {
    cfg.obs_resource_telemetry = flag_set(v);
  } else if (key == "obs_heat_buckets") {
    if (v < 0.0) {
      return fail(error, "obs_heat_buckets must be non-negative");
    }
    cfg.obs_heat_buckets = static_cast<int>(v);
  } else if (key == "fault_random_link_rate") {
    cfg.faults.random_link_outage_rate = v;
  } else if (key == "fault_random_link_duration") {
    cfg.faults.random_link_outage_mean = v;
  } else if (key == "fault_random_horizon") {
    cfg.faults.random_horizon = v;
  } else if (key == "fault_dup_prob") {
    if (v < 0.0 || v >= 1.0) {
      return fail(error, "fault_dup_prob must be in [0, 1)");
    }
    cfg.faults.dup_prob = v;
  } else if (key == "fault_dup_delay") {
    if (v < 0.0) {
      return fail(error, "fault_dup_delay must be non-negative");
    }
    cfg.faults.dup_extra = v;
  } else if (key == "fault_reorder_prob") {
    if (v < 0.0 || v >= 1.0) {
      return fail(error, "fault_reorder_prob must be in [0, 1)");
    }
    cfg.faults.reorder_prob = v;
  } else if (key == "fault_reorder_window") {
    if (v < 0.0) {
      return fail(error, "fault_reorder_window must be non-negative");
    }
    cfg.faults.reorder_window = v;
  } else if (key == "fault_spike_prob") {
    if (v < 0.0 || v >= 1.0) {
      return fail(error, "fault_spike_prob must be in [0, 1)");
    }
    cfg.faults.spike_prob = v;
  } else if (key == "fault_spike_factor") {
    if (v < 0.0) {
      return fail(error, "fault_spike_factor must be non-negative");
    }
    cfg.faults.spike_factor = v;
  } else if (key == "ship_jitter") {
    if (v < 0.0) {
      return fail(error, "ship_jitter must be non-negative");
    }
    cfg.ship_jitter = v;
  } else if (key == "chaos_run_seconds") {
    if (v < 0.0) {
      return fail(error, "chaos_run_seconds must be non-negative");
    }
    cfg.chaos_run_seconds = v;
  } else if (key == "adapt_interval") {
    if (v < 0.0) {
      return fail(error, "adapt_interval must be non-negative");
    }
    cfg.adapt_interval = v;
  } else if (key == "adapt_threshold_step") {
    if (v < 0.0) {
      return fail(error, "adapt_threshold_step must be non-negative");
    }
    cfg.adapt_threshold_step = v;
  } else if (key == "adapt_refusal_frac") {
    if (v < 0.0 || v > 1.0) {
      return fail(error, "adapt_refusal_frac must be in [0, 1]");
    }
    cfg.adapt_refusal_frac = v;
  } else if (key == "adapt_hot_conflicts") {
    if (v < 1.0) {
      return fail(error, "adapt_hot_conflicts must be at least 1");
    }
    cfg.adapt_hot_conflicts = static_cast<int>(v);
  } else {
    // Quote the whole assignment, not just the key: in a config file the
    // line number plus the offending text pinpoints the typo immediately.
    return fail(error, "unknown config key '" + key + "' in '" + assignment + "'");
  }
  return true;
}

std::optional<SystemConfig> parse_config_file(std::istream& in,
                                              const SystemConfig& base,
                                              std::string* error) {
  SystemConfig cfg = base;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    const auto last = line.find_last_not_of(" \t\r");
    if (!apply_config_override(cfg, line.substr(first, last - first + 1),
                               error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + *error;
      }
      return std::nullopt;
    }
  }
  // Site ranges in fault windows can only be checked once the whole file is
  // read (num_sites may be set after a fault= line).
  std::string fault_error;
  if (!cfg.faults.validate(cfg.num_sites, &fault_error)) {
    if (error != nullptr) {
      *error = "fault schedule: " + fault_error;
    }
    return std::nullopt;
  }
  return cfg;
}

void describe_config(std::ostream& out, const SystemConfig& cfg) {
  out << "# hybridls system configuration\n";
  out << "num_sites=" << cfg.num_sites << '\n';
  out << "local_mips=" << cfg.local_mips << '\n';
  out << "central_mips=" << cfg.central_mips << '\n';
  out << "comm_delay=" << cfg.comm_delay << '\n';
  out << "arrival_rate_per_site=" << cfg.arrival_rate_per_site << '\n';
  out << "prob_class_a=" << cfg.prob_class_a << '\n';
  out << "db_calls_per_txn=" << cfg.db_calls_per_txn << '\n';
  out << "instr_per_call=" << cfg.instr_per_call << '\n';
  out << "instr_msg_init=" << cfg.instr_msg_init << '\n';
  out << "instr_msg_commit=" << cfg.instr_msg_commit << '\n';
  out << "setup_io_time=" << cfg.setup_io_time << '\n';
  out << "call_io_time=" << cfg.call_io_time << '\n';
  out << "prob_call_io=" << cfg.prob_call_io << '\n';
  out << "prob_write_lock=" << cfg.prob_write_lock << '\n';
  out << "lockspace=" << cfg.lockspace << '\n';
  out << "instr_ship_forward=" << cfg.instr_ship_forward << '\n';
  out << "instr_apply_update=" << cfg.instr_apply_update << '\n';
  out << "instr_apply_update_item=" << cfg.instr_apply_update_item << '\n';
  out << "instr_recv_ack=" << cfg.instr_recv_ack << '\n';
  out << "instr_auth_local=" << cfg.instr_auth_local << '\n';
  out << "instr_commit_apply_local=" << cfg.instr_commit_apply_local << '\n';
  out << "instr_send_async=" << cfg.instr_send_async << '\n';
  out << "instr_remote_call=" << cfg.instr_remote_call << '\n';
  out << "async_batch_window=" << cfg.async_batch_window << '\n';
  out << "deadlock_victim="
      << (cfg.deadlock_victim == DeadlockVictim::Requester ? "requester"
                                                           : "youngest")
      << '\n';
  out << "class_b_mode="
      << (cfg.class_b_mode == ClassBMode::Ship ? "ship" : "remote-calls")
      << '\n';
  out << "seed=" << cfg.seed << '\n';
  out << "abort_restart_delay=" << cfg.abort_restart_delay << '\n';
  out << "max_reruns=" << cfg.max_reruns << '\n';
  out << "livelock_backoff_after=" << cfg.livelock_backoff_after << '\n';
  out << "livelock_backoff=" << cfg.livelock_backoff << '\n';
  out << "ideal_state_info=" << (cfg.ideal_state_info ? 1 : 0) << '\n';
  out << "geometric_call_count=" << (cfg.geometric_call_count ? 1 : 0) << '\n';
  out << "ship_timeout=" << cfg.ship_timeout << '\n';
  out << "ship_backoff=" << cfg.ship_backoff << '\n';
  out << "ship_max_retries=" << cfg.ship_max_retries << '\n';
  out << "ship_jitter=" << cfg.ship_jitter << '\n';
  out << "obs_sample_interval=" << cfg.obs_sample_interval << '\n';
  out << "obs_span_sink=" << cfg.obs_span_sink << '\n';
  out << "report_top_k=" << cfg.report_top_k << '\n';
  out << "obs_resource_telemetry=" << (cfg.obs_resource_telemetry ? 1 : 0)
      << '\n';
  out << "obs_heat_buckets=" << cfg.obs_heat_buckets << '\n';
  out << "obs_artifact=" << cfg.obs_artifact << '\n';
  out << "fault_random_link_rate=" << cfg.faults.random_link_outage_rate << '\n';
  out << "fault_random_link_duration=" << cfg.faults.random_link_outage_mean
      << '\n';
  out << "fault_random_horizon=" << cfg.faults.random_horizon << '\n';
  out << "fault_dup_prob=" << cfg.faults.dup_prob << '\n';
  out << "fault_dup_delay=" << cfg.faults.dup_extra << '\n';
  out << "fault_reorder_prob=" << cfg.faults.reorder_prob << '\n';
  out << "fault_reorder_window=" << cfg.faults.reorder_window << '\n';
  out << "fault_spike_prob=" << cfg.faults.spike_prob << '\n';
  out << "fault_spike_factor=" << cfg.faults.spike_factor << '\n';
  out << "chaos_strategy=" << cfg.chaos_strategy << '\n';
  out << "chaos_run_seconds=" << cfg.chaos_run_seconds << '\n';
  out << "adapt_interval=" << cfg.adapt_interval << '\n';
  out << "adapt_threshold_step=" << cfg.adapt_threshold_step << '\n';
  out << "adapt_refusal_frac=" << cfg.adapt_refusal_frac << '\n';
  out << "adapt_hot_conflicts=" << cfg.adapt_hot_conflicts << '\n';
  for (const FaultWindow& window : cfg.faults.windows) {
    out << "fault=" << format_fault_window(window) << '\n';
  }
}

}  // namespace hls
