#include "core/replication.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace hls {

double student_t_975(int dof) {
  // Two-sided 95% critical values; exact table for small dof, normal
  // approximation beyond.
  static constexpr double kTable[] = {
      0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (dof <= 0) {
    return 0.0;
  }
  if (dof <= 30) {
    return kTable[dof];
  }
  return 1.96;
}

double ReplicationSummary::rt_ci_halfwidth() const {
  const auto n = response_time.count();
  if (n < 2) {
    return 0.0;
  }
  return student_t_975(static_cast<int>(n) - 1) * response_time.stddev() /
         std::sqrt(static_cast<double>(n));
}

ReplicationSummary run_replicated(const SystemConfig& config,
                                  const StrategySpec& spec,
                                  const RunOptions& options, int replications,
                                  std::uint64_t base_seed) {
  HLS_ASSERT(replications >= 1, "need at least one replication");
  ReplicationSummary summary;
  summary.replications = replications;
  for (int i = 0; i < replications; ++i) {
    SystemConfig cfg = config;
    cfg.seed = base_seed + static_cast<std::uint64_t>(i);
    const RunResult r = run_simulation(cfg, spec, options);
    summary.response_time.add(r.metrics.rt_all.mean());
    summary.throughput.add(r.metrics.throughput());
    summary.ship_fraction.add(r.metrics.ship_fraction());
    summary.runs_per_txn.add(r.metrics.runs_per_txn());
  }
  return summary;
}

}  // namespace hls
