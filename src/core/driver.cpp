#include "core/driver.hpp"

#include <cstdlib>

#include "model/static_optimizer.hpp"
#include "routing/basic_strategies.hpp"
#include "util/assert.hpp"

namespace hls {

RunResult run_simulation(const SystemConfig& config,
                         std::unique_ptr<RoutingStrategy> strategy,
                         const RunOptions& options) {
  HLS_ASSERT(options.warmup_seconds >= 0.0, "negative warmup");
  HLS_ASSERT(options.measure_seconds > 0.0, "measurement window must be positive");

  RunResult result;
  result.config = config;

  HybridSystem system(config, std::move(strategy));
  result.strategy_name = system.strategy().name();
  if (options.trace_sink != nullptr) {
    system.add_trace_sink(options.trace_sink);
  }
  system.enable_arrivals();
  system.run_for(options.warmup_seconds);
  system.begin_measurement();
  system.run_for(options.measure_seconds);
  system.end_measurement();
  result.metrics = system.metrics();
  result.series = system.take_series();
  return result;
}

RunResult run_simulation(const SystemConfig& config, const StrategySpec& spec,
                         const RunOptions& options) {
  const ModelParams base = ModelParams::from_config(config);
  double static_p = -1.0;
  if (spec.kind == StrategyKind::StaticOptimal) {
    static_p = StaticOptimizer().optimize(base).p_ship;
  } else if (spec.kind == StrategyKind::StaticProbability) {
    static_p = spec.parameter;
  }
  auto strategy = make_strategy(spec, base, config.seed ^ 0x51CA5EEDULL);
  RunResult result = run_simulation(config, std::move(strategy), options);
  result.static_p_ship = static_p;
  return result;
}

double time_scale_from_env() {
  const char* raw = std::getenv("HLS_TIME_SCALE");
  if (raw == nullptr) {
    return 1.0;
  }
  const double v = std::atof(raw);
  return v > 0.0 ? v : 1.0;
}

}  // namespace hls
