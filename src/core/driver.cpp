#include "core/driver.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>

#include "core/artifact.hpp"
#include "model/static_optimizer.hpp"
#include "obs/csv_sink.hpp"
#include "obs/perfetto_sink.hpp"
#include "routing/basic_strategies.hpp"
#include "util/assert.hpp"

namespace hls {

RunResult run_simulation(const SystemConfig& config,
                         std::unique_ptr<RoutingStrategy> strategy,
                         const RunOptions& options) {
  HLS_ASSERT(options.warmup_seconds >= 0.0, "negative warmup");
  HLS_ASSERT(options.measure_seconds > 0.0, "measurement window must be positive");

  RunResult result;
  result.config = config;

  HybridSystem system(config, std::move(strategy));
  result.strategy_name = system.strategy().name();
  if (options.trace_sink != nullptr) {
    system.add_trace_sink(options.trace_sink);
  }
  for (obs::TraceSink* sink : options.extra_sinks) {
    system.add_trace_sink(sink);
  }

  // Span-sink spec from the config: "perfetto:PATH" or "csv:PATH". The file
  // and sink live for the whole run (warmup included) and are finalized
  // before the result returns.
  std::ofstream span_out;
  std::unique_ptr<obs::PerfettoSink> perfetto;
  std::unique_ptr<obs::CsvSink> span_csv;
  if (!config.obs_span_sink.empty()) {
    const auto colon = config.obs_span_sink.find(':');
    const std::string scheme = config.obs_span_sink.substr(0, colon);
    const std::string path = config.obs_span_sink.substr(colon + 1);
    span_out.open(path);
    HLS_ASSERT(span_out.is_open(), "cannot open obs_span_sink path");
    if (scheme == "perfetto") {
      perfetto = std::make_unique<obs::PerfettoSink>(span_out);
      system.add_trace_sink(perfetto.get());
    } else {
      span_csv = std::make_unique<obs::CsvSink>(span_out);
      system.add_trace_sink(span_csv.get());
    }
  }

  system.enable_arrivals();
  system.run_for(options.warmup_seconds);
  system.begin_measurement();
  system.run_for(options.measure_seconds);
  system.end_measurement();
  result.metrics = system.metrics();
  result.series = system.take_series();
  if (const AdaptiveController* controller = system.controller()) {
    result.controller_decisions = controller->decisions();
  }
  system.export_registry(result.registry);
  if (!config.obs_artifact.empty()) {
    write_run_artifact_file(config.obs_artifact, result);
  }
  if (perfetto != nullptr) {
    perfetto->close();
  }
  return result;
}

RunResult run_simulation(const SystemConfig& config, const StrategySpec& spec,
                         const RunOptions& options) {
  const ModelParams base = ModelParams::from_config(config);
  double static_p = -1.0;
  if (spec.kind == StrategyKind::StaticOptimal) {
    static_p = StaticOptimizer().optimize(base).p_ship;
  } else if (spec.kind == StrategyKind::StaticProbability) {
    static_p = spec.parameter;
  }
  auto strategy = make_strategy(spec, base, config.seed ^ 0x51CA5EEDULL);
  RunResult result = run_simulation(config, std::move(strategy), options);
  result.static_p_ship = static_p;
  return result;
}

double time_scale_from_env() {
  const char* raw = std::getenv("HLS_TIME_SCALE");
  if (raw == nullptr) {
    return 1.0;
  }
  const double v = std::atof(raw);
  return v > 0.0 ? v : 1.0;
}

}  // namespace hls
