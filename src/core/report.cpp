#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>

#include "util/assert.hpp"

namespace hls {

void ReportCollector::on_event(const obs::Event& event) {
  switch (event.kind) {
    case obs::EventKind::Span: {
      ReportSpan span;
      span.phase = event.span_phase;
      span.begin = event.span_begin;
      span.end = event.time;
      span.track = event.track;
      span.run = event.runs;
      open_[event.txn].spans.push_back(span);
      return;
    }
    case obs::EventKind::Abort: {
      ReportAbort abort;
      abort.cause = event.cause;
      abort.time = event.time;
      abort.winner = event.winner;
      abort.winner_site = event.winner_site;
      abort.wasted_cpu = event.wasted_cpu;
      abort.wasted_io = event.wasted_io;
      open_[event.txn].aborts.push_back(abort);
      return;
    }
    case obs::EventKind::Completion: {
      auto it = open_.find(event.txn);
      const bool keep =
          top_k_ > 0 &&
          (static_cast<int>(slowest_.size()) < top_k_ ||
           event.response_time > slowest_.back().response_time);
      if (keep) {
        SlowTxn slow;
        slow.id = event.txn;
        slow.cls = event.cls;
        slow.route = event.route;
        slow.home_site = event.home_site;
        slow.runs = event.runs;
        slow.arrival_time = event.arrival_time;
        slow.response_time = event.response_time;
        slow.wasted_cpu = event.wasted_cpu;
        slow.wasted_io = event.wasted_io;
        if (it != open_.end()) {
          slow.spans = std::move(it->second.spans);
          slow.aborts = std::move(it->second.aborts);
        }
        const auto pos = std::upper_bound(
            slowest_.begin(), slowest_.end(), slow.response_time,
            [](double rt, const SlowTxn& s) { return rt > s.response_time; });
        slowest_.insert(pos, std::move(slow));
        if (static_cast<int>(slowest_.size()) > top_k_) {
          slowest_.pop_back();
        }
      }
      if (it != open_.end()) {
        open_.erase(it);
      }
      return;
    }
    default:
      return;  // edges carry no per-txn state the report renders
  }
}

namespace {

const char* track_name(int track, char* buf) {
  if (track == obs::kCentralTrack) {
    return "central";
  }
  std::snprintf(buf, 16, "site %d", track);
  return buf;
}

void phase_table(std::ostream& out, const Metrics& m) {
  out << "phase breakdown (mean seconds per completion)\n";
  const double total = m.rt_all.mean();
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    const double mean = m.rt_phase[static_cast<std::size_t>(p)].mean();
    out << "  " << std::left << std::setw(12)
        << obs::phase_name(static_cast<obs::Phase>(p)) << std::right
        << std::setw(12) << std::fixed << std::setprecision(6) << mean
        << std::setw(9) << std::setprecision(1)
        << (total > 0.0 ? 100.0 * mean / total : 0.0) << "%\n";
  }
  out << "  " << std::left << std::setw(12) << "total" << std::right
      << std::setw(12) << std::setprecision(6) << total << "\n";
}

void abort_breakdown(std::ostream& out, const Metrics& m) {
  out << "abort causes\n";
  out << "  " << std::left << std::setw(14) << "cause" << std::right
      << std::setw(8) << "count" << std::setw(14) << "wasted_cpu"
      << std::setw(14) << "wasted_io" << "\n";
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    out << "  " << std::left << std::setw(14)
        << obs::abort_cause_name(static_cast<AbortCause>(c)) << std::right
        << std::setw(8) << m.aborts[c] << std::setw(14) << std::fixed
        << std::setprecision(6) << m.wasted_cpu_by_cause[c] << std::setw(14)
        << m.wasted_io_by_cause[c] << "\n";
  }
  out << "  " << std::left << std::setw(14) << "total" << std::right
      << std::setw(8) << m.aborts_total() << std::setw(14)
      << m.wasted_cpu_total() << std::setw(14) << m.wasted_io_total() << "\n";
  out << "  with identified winner: " << m.aborts_with_winner << " of "
      << m.aborts_total() << "\n";
}

void conflict_matrix(std::ostream& out, const Metrics& m) {
  if (m.conflict_sites == 0) {
    return;
  }
  out << "conflict matrix (rows: victim home site; columns: winner home "
         "site, `-` = no winner)\n";
  out << "  " << std::setw(6) << "";
  for (int w = 0; w < m.conflict_sites; ++w) {
    out << std::setw(6) << w;
  }
  out << std::setw(6) << "-" << "\n";
  for (int v = 0; v < m.conflict_sites; ++v) {
    out << "  " << std::setw(6) << v;
    for (int w = 0; w <= m.conflict_sites; ++w) {
      out << std::setw(6) << m.conflict(v, w);
    }
    out << "\n";
  }
}

void wasted_totals(std::ostream& out, const Metrics& m) {
  out << "wasted work (aborted-attempt time)\n";
  out << std::fixed << std::setprecision(6);
  out << "  cpu seconds:      " << m.wasted_cpu_total() << "\n";
  out << "  io seconds:       " << m.wasted_io_total() << "\n";
  out << "  mean per txn:     " << m.wasted_per_txn.mean() << "\n";
  out << "  max per txn:      "
      << (m.wasted_per_txn.count() > 0 ? m.wasted_per_txn.max() : 0.0) << "\n";
}

void slowest_section(std::ostream& out, const ReportCollector& collector) {
  out << "slowest transactions (span trees)\n";
  if (collector.slowest().empty()) {
    out << "  (none completed)\n";
    return;
  }
  char buf[16];
  for (const ReportCollector::SlowTxn& slow : collector.slowest()) {
    out << "  txn " << slow.id << "  class "
        << (slow.cls == TxnClass::A ? 'A' : 'B') << "  "
        << (slow.route == Route::Local ? "local" : "central") << "  home "
        << slow.home_site << "  rt " << std::fixed << std::setprecision(6)
        << slow.response_time << "s  runs " << slow.runs << "  wasted "
        << slow.wasted_cpu + slow.wasted_io << "s\n";
    std::size_t next_abort = 0;
    int current_run = -1;
    for (const ReportSpan& span : slow.spans) {
      if (span.run != current_run) {
        current_run = span.run;
        out << "    run " << current_run << "\n";
        // Each abort closes one run; print it before the next run's spans.
        if (current_run > 1 && next_abort < slow.aborts.size()) {
          const ReportAbort& abort = slow.aborts[next_abort++];
          out << "      x " << obs::abort_cause_name(abort.cause) << " at "
              << std::setprecision(6) << abort.time;
          if (abort.winner != kInvalidTxn) {
            out << "  winner txn " << abort.winner << " (home "
                << abort.winner_site << ")";
          }
          out << "  wasted " << abort.wasted_cpu + abort.wasted_io << "s\n";
        }
      }
      out << "      " << std::left << std::setw(12)
          << obs::phase_name(span.phase) << std::right << " ["
          << std::setprecision(6) << span.begin << ", " << span.end << "] on "
          << track_name(span.track, buf) << "\n";
    }
  }
}

void controller_section(std::ostream& out,
                        const std::vector<ControllerDecision>& decisions) {
  out << "controller decisions (adaptive routing)\n";
  if (decisions.empty()) {
    out << "  (none)\n";
    return;
  }
  for (const ControllerDecision& d : decisions) {
    out << "  t=" << std::fixed << std::setprecision(3) << d.time << "  "
        << std::left << std::setw(15) << controller_decision_kind_name(d.kind)
        << std::right;
    if (d.site >= 0) {
      out << "site " << d.site << "  ";
    }
    if (d.kind == ControllerDecision::Kind::ThresholdStep) {
      out << std::setprecision(3) << d.old_value << " -> " << d.new_value
          << "  ";
    }
    out << d.evidence << "\n";
  }
}

}  // namespace

void write_run_report(std::ostream& out, const Metrics& metrics,
                      const ReportCollector* collector,
                      const std::vector<ControllerDecision>* decisions) {
  out << "=== run report ===\n";
  out << std::fixed << std::setprecision(3);
  out << "window: [" << metrics.measure_start << ", " << metrics.measure_end
      << "]  completions: " << metrics.completions
      << "  throughput: " << metrics.throughput() << " txn/s\n";
  out << "mean response: " << std::setprecision(6) << metrics.rt_all.mean()
      << "s  ship fraction: " << std::setprecision(3)
      << metrics.ship_fraction() << "  runs/txn: " << metrics.runs_per_txn()
      << "\n\n";
  phase_table(out, metrics);
  out << "\n";
  abort_breakdown(out, metrics);
  out << "\n";
  conflict_matrix(out, metrics);
  out << "\n";
  wasted_totals(out, metrics);
  if (decisions != nullptr) {
    out << "\n";
    controller_section(out, *decisions);
  }
  if (collector != nullptr) {
    out << "\n";
    slowest_section(out, *collector);
  }
  out.flush();
}

}  // namespace hls
