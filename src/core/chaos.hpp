// Deterministic chaos soak harness (docs/CHAOS.md).
//
// An episode is a small randomly generated configuration (sites, load,
// strategy, composed fault schedule — crashes, link degradation, and
// message-level chaos) run to drain and checked against the full oracle
// stack: internal invariants, drain-to-zero, flow conservation, the
// phase-sum identity, abort-provenance double entry, duplicate-delivery
// accounting, and byte-identical replay. Every quantity is derived from the
// master seed, so an episode index is a complete bug report.
//
// When an episode fails, shrink_chaos_episode() delta-debugs the fault
// schedule down to a minimal failing repro (fewest windows, then narrowest,
// then the shortest run), and write_chaos_repro() emits it as a
// self-contained config file that parse_chaos_repro() / the chaos_soak tool
// can re-run with one command.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "hybrid/config.hpp"
#include "routing/factory.hpp"

namespace hls {

class HybridSystem;

/// One soak episode: a complete SystemConfig (fault schedule included, with
/// the repro envelope fields chaos_strategy / chaos_run_seconds filled in)
/// plus the parsed strategy spec.
struct ChaosEpisode {
  SystemConfig config;
  StrategySpec strategy;
};

/// Optional extra oracle, run after the built-in stack on the drained
/// system; append one message per violation. Used by the soak self-test to
/// inject a deliberate bug, and available for experiment-specific checks.
using ChaosOracle =
    std::function<void(const HybridSystem&, std::vector<std::string>&)>;

/// Outcome of one episode. `failures` empty == every oracle passed.
struct ChaosVerdict {
  std::vector<std::string> failures;
  /// FNV-1a fingerprint of the completion-record stream (id, runs,
  /// completion and response time bits) — the replay-determinism witness.
  std::uint64_t fingerprint = 0;
  std::uint64_t completions = 0;
  std::uint64_t dup_msgs_dropped = 0;
  std::uint64_t msgs_resequenced = 0;

  [[nodiscard]] bool passed() const { return failures.empty(); }
};

/// Deterministically generates episode `index` of the soak keyed by
/// `master_seed`: 3–8 sites, a small lock space, moderate load, a strategy
/// drawn from the paper set, steady message-level chaos, and 1–4 composed
/// fault windows inside a 10–20 s run.
[[nodiscard]] ChaosEpisode make_chaos_episode(std::uint64_t master_seed,
                                              int index);

/// Runs the episode once to drain and applies the oracle stack.
/// HybridSystem::check_invariants() runs last and aborts the process on
/// violation (library-bug semantics) — print describe_chaos_episode() first
/// so an abort is attributable.
[[nodiscard]] ChaosVerdict run_chaos_once(const ChaosEpisode& episode,
                                          const ChaosOracle& extra = {});

/// run_chaos_once() twice; any divergence between the two runs (fingerprint
/// or counters) is appended as a replay-determinism failure.
[[nodiscard]] ChaosVerdict run_chaos_episode(const ChaosEpisode& episode,
                                             const ChaosOracle& extra = {});

/// Shrink predicate: true when the candidate episode still fails. The soak
/// tool supplies a subprocess-isolated predicate (so HLS_ASSERT aborts are
/// shrinkable too); tests use make_inprocess_predicate.
using ChaosFailurePredicate = std::function<bool(const ChaosEpisode&)>;

/// Predicate that runs the episode in this process and reports soft oracle
/// failures (an HLS_ASSERT violation still aborts).
[[nodiscard]] ChaosFailurePredicate make_inprocess_predicate(
    ChaosOracle extra = {});

struct ChaosShrinkResult {
  ChaosEpisode episode;
  int evaluations = 0;  ///< predicate runs spent shrinking
};

/// Delta-debugs `failing` to a minimal still-failing episode: drops fault
/// windows and steady chaos knobs to a fixpoint (fewest windows), then
/// narrows each surviving window (shortest durations), then trims the run
/// length. `failing` must satisfy the predicate.
[[nodiscard]] ChaosShrinkResult shrink_chaos_episode(
    const ChaosEpisode& failing, const ChaosFailurePredicate& still_fails);

/// Writes a self-contained repro config (a parse_config_file document with
/// the chaos_strategy / chaos_run_seconds envelope; round-trips through
/// parse_chaos_repro).
void write_chaos_repro(std::ostream& out, const ChaosEpisode& episode);

/// Parses a repro written by write_chaos_repro. Returns std::nullopt and
/// fills `error` (when non-null) on malformed input or a missing envelope.
[[nodiscard]] std::optional<ChaosEpisode> parse_chaos_repro(
    std::istream& in, std::string* error = nullptr);

/// One-line episode summary (sites, load, strategy, fault windows) printed
/// before each run so a hard abort mid-episode is attributable.
[[nodiscard]] std::string describe_chaos_episode(const ChaosEpisode& episode);

}  // namespace hls
