// Canonical run artifact: the JSON document serialized next to a RunResult.
//
// Layout (docs/OBSERVABILITY.md "Run artifact"):
//
//   {"schema":"hls-run-artifact-v1",
//    "run":{...provenance: strategy, seed, sites, window...},
//    "registry":{...obs::Registry::write_json...}}
//
// Canonical bytes: keys are emitted in a fixed order, numbers in shortest
// round-trip form, and the registry serialization is order-independent, so
// same-seed runs produce byte-identical artifacts across reruns, HLS_JOBS
// values and machines. scripts/validate_artifact.py checks the schema and
// the cross-metric accounting identities; tools/hlsreport diffs two
// artifacts and gates regressions.
#pragma once

#include <iosfwd>
#include <string>

namespace hls {

struct RunResult;

inline constexpr const char* kRunArtifactSchema = "hls-run-artifact-v1";

/// Serializes `result` (provenance + metric registry) as canonical JSON.
void write_run_artifact(std::ostream& out, const RunResult& result);

/// Writes the artifact to `path`; asserts the file opens (a bad artifact
/// path in a config is a setup bug, not a runtime condition to handle).
void write_run_artifact_file(const std::string& path, const RunResult& result);

}  // namespace hls
