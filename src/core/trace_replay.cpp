#include "core/trace_replay.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/random.hpp"
#include "workload/txn_factory.hpp"

namespace hls {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool parse_locks(const std::string& field, std::vector<LockNeed>* out,
                 const SystemConfig& cfg, std::string* error) {
  std::stringstream ss(field);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos || colon + 2 != item.size()) {
      return fail(error, "malformed lock spec: " + item);
    }
    char* end = nullptr;
    const unsigned long id = std::strtoul(item.c_str(), &end, 10);
    if (end != item.c_str() + colon || id >= cfg.lockspace) {
      return fail(error, "bad lock id in: " + item);
    }
    const char mode = item[colon + 1];
    if (mode != 'S' && mode != 'X') {
      return fail(error, "lock mode must be S or X: " + item);
    }
    out->push_back(LockNeed{static_cast<LockId>(id),
                            mode == 'X' ? LockMode::Exclusive : LockMode::Shared});
  }
  if (out->empty()) {
    return fail(error, "empty lock list");
  }
  return true;
}

}  // namespace

std::optional<std::vector<TraceArrival>> parse_trace(std::istream& in,
                                                     const SystemConfig& cfg,
                                                     std::string* error) {
  std::vector<TraceArrival> trace;
  std::string line;
  std::size_t line_no = 0;
  double last_time = -1.0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    TraceArrival arrival;
    std::string cls;
    if (!(fields >> arrival.time >> arrival.site >> cls)) {
      fail(error, "line " + std::to_string(line_no) + ": expected <time> <site> <class>");
      return std::nullopt;
    }
    if (arrival.time < last_time) {
      fail(error, "line " + std::to_string(line_no) + ": time decreases");
      return std::nullopt;
    }
    last_time = arrival.time;
    if (arrival.site < 0 || arrival.site >= cfg.num_sites) {
      fail(error, "line " + std::to_string(line_no) + ": site out of range");
      return std::nullopt;
    }
    if (cls == "A") {
      arrival.cls = TxnClass::A;
    } else if (cls == "B") {
      arrival.cls = TxnClass::B;
    } else {
      fail(error, "line " + std::to_string(line_no) + ": class must be A or B");
      return std::nullopt;
    }
    std::string lock_field;
    if (fields >> lock_field) {
      if (!parse_locks(lock_field, &arrival.locks, cfg, error)) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": " + *error;
        }
        return std::nullopt;
      }
    }
    trace.push_back(std::move(arrival));
  }
  return trace;
}

std::optional<std::vector<TraceArrival>> parse_trace(const std::string& text,
                                                     const SystemConfig& cfg,
                                                     std::string* error) {
  std::istringstream in(text);
  return parse_trace(in, cfg, error);
}

std::size_t replay_trace(HybridSystem& system,
                         const std::vector<TraceArrival>& trace) {
  const SystemConfig& cfg = system.config();
  // Factory for sampling what the trace leaves unspecified (access
  // patterns, I/O flags). Seeded independently of the system's own stream.
  auto factory = std::make_shared<TxnFactory>(cfg, Rng(cfg.seed ^ 0x7247CEULL));
  auto rng = std::make_shared<Rng>(cfg.seed ^ 0x10F1A65ULL);

  std::size_t scheduled = 0;
  for (const TraceArrival& arrival : trace) {
    system.simulator().schedule_at(
        arrival.time, [&system, factory, rng, arrival] {
          Transaction txn =
              factory->make_of_class(arrival.cls, arrival.site,
                                     system.simulator().now());
          if (!arrival.locks.empty()) {
            txn.locks = arrival.locks;
            txn.call_io.clear();
            for (std::size_t i = 0; i < txn.locks.size(); ++i) {
              txn.call_io.push_back(rng->bernoulli(system.config().prob_call_io));
            }
          }
          system.inject_transaction(std::move(txn));
        });
    ++scheduled;
  }
  return scheduled;
}

void write_trace(std::ostream& out, const std::vector<TraceArrival>& trace) {
  out << "# hybridls arrival trace: <time> <site> <class> [id:mode,...]\n";
  for (const TraceArrival& arrival : trace) {
    out << arrival.time << ' ' << arrival.site << ' '
        << (arrival.cls == TxnClass::A ? 'A' : 'B');
    for (std::size_t i = 0; i < arrival.locks.size(); ++i) {
      out << (i == 0 ? ' ' : ',') << arrival.locks[i].id << ':'
          << (arrival.locks[i].mode == LockMode::Exclusive ? 'X' : 'S');
    }
    out << '\n';
  }
}

}  // namespace hls
