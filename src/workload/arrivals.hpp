// Arrival processes.
//
// The paper uses homogeneous Poisson arrivals per site. The examples also
// exercise time-varying rates (regional surges, daily load cycles), so the
// process accepts an arbitrary rate function lambda(t) and generates it by
// thinning against a supplied maximum rate.
#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace hls {

/// Rate function: instantaneous arrivals/second at simulation time t.
using RateFunction = std::function<double(SimTime)>;

class ArrivalProcess {
 public:
  /// Homogeneous Poisson process with constant `rate`.
  ArrivalProcess(Simulator& sim, Rng rng, double rate);

  /// Non-homogeneous Poisson process by thinning; `max_rate` must bound
  /// `rate(t)` from above for all t or arrivals are silently lost.
  ArrivalProcess(Simulator& sim, Rng rng, RateFunction rate, double max_rate);

  ArrivalProcess(const ArrivalProcess&) = delete;
  ArrivalProcess& operator=(const ArrivalProcess&) = delete;

  /// Starts generating arrivals; `on_arrival` fires once per arrival until
  /// stop() or the simulation ends. A zero-rate process never fires.
  void start(std::function<void()> on_arrival);

  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();
  [[nodiscard]] double next_gap();

  /// Gaps prefetched per refill for the constant-rate fast path. The stream
  /// is private to this process and a homogeneous process draws nothing but
  /// gaps, so prefetching reorders no draws: the sequence is bit-identical
  /// to drawing one exponential per arrival.
  static constexpr int kGapBatch = 32;

  Simulator& sim_;
  Rng rng_;
  RateFunction rate_;
  double max_rate_;
  std::function<void()> on_arrival_;
  bool running_ = false;
  bool constant_rate_ = false;  ///< homogeneous: thinning always accepts
  std::uint64_t generated_ = 0;
  double gaps_[kGapBatch];
  int gap_pos_ = 0;
  int gap_count_ = 0;
};

}  // namespace hls
