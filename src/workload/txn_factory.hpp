// Transaction generation: samples the access pattern of each arriving
// transaction per §4.1 of the paper.
//
//   * Class A (probability prob_class_a): lock requests uniform over the
//     home site's tenth of the lock space.
//   * Class B: lock requests uniform over the entire lock space.
//   * One lock request per DB call; each request is exclusive with
//     probability prob_write_lock; each call performs an I/O with
//     probability prob_call_io.
#pragma once

#include "hybrid/config.hpp"
#include "hybrid/transaction.hpp"
#include "util/random.hpp"

namespace hls {

class TxnFactory {
 public:
  TxnFactory(const SystemConfig& cfg, Rng rng);

  /// Builds a fresh transaction arriving at `site` at time `now`.
  /// Ids are unique across the factory's lifetime and never kInvalidTxn.
  Transaction make(int site, SimTime now);

  /// Builds a transaction of a forced class (examples/tests).
  Transaction make_of_class(TxnClass cls, int site, SimTime now);

  /// In-place variants for arena-recycled slots: identical RNG draw order
  /// and field values to make/make_of_class, but the access pattern is
  /// written into `txn`'s existing (cleared) vectors, reusing their
  /// capacity. `txn` must be freshly constructed or recycle()d.
  void fill(Transaction& txn, int site, SimTime now);
  void fill_of_class(Transaction& txn, TxnClass cls, int site, SimTime now);

  [[nodiscard]] TxnId next_id() const { return next_id_; }

 private:
  const SystemConfig& cfg_;
  Rng rng_;
  TxnId next_id_ = 1;
};

}  // namespace hls
