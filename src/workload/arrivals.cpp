#include "workload/arrivals.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace hls {

ArrivalProcess::ArrivalProcess(Simulator& sim, Rng rng, double rate)
    : sim_(sim),
      rng_(rng),
      rate_([rate](SimTime) { return rate; }),
      max_rate_(rate),
      constant_rate_(true) {
  HLS_ASSERT(rate >= 0.0, "negative arrival rate");
}

ArrivalProcess::ArrivalProcess(Simulator& sim, Rng rng, RateFunction rate,
                               double max_rate)
    : sim_(sim), rng_(rng), rate_(std::move(rate)), max_rate_(max_rate) {
  HLS_ASSERT(max_rate_ >= 0.0, "negative max rate");
}

void ArrivalProcess::start(std::function<void()> on_arrival) {
  HLS_ASSERT(!running_, "arrival process already started");
  on_arrival_ = std::move(on_arrival);
  running_ = true;
  if (max_rate_ > 0.0) {
    schedule_next();
  }
}

double ArrivalProcess::next_gap() {
  if (!constant_rate_) {
    return rng_.exponential(max_rate_);
  }
  // Homogeneous process: prefetch a block of gaps. Bit-identical to the
  // draw-per-arrival path because this process's private stream is consumed
  // by nothing else (thinning below short-circuits without a bernoulli).
  if (gap_pos_ == gap_count_) {
    rng_.fill_exponentials(max_rate_, gaps_, kGapBatch);
    gap_pos_ = 0;
    gap_count_ = kGapBatch;
  }
  return gaps_[gap_pos_++];
}

void ArrivalProcess::schedule_next() {
  const double gap = next_gap();
  sim_.schedule_after(gap, [this] {
    if (!running_) {
      return;
    }
    if (constant_rate_) {
      // lambda(t) == max_rate: thinning accepts every candidate.
      schedule_next();
      ++generated_;
      on_arrival_();
      return;
    }
    // Thinning: accept the candidate with probability rate(t)/max_rate.
    // Rates above the declared ceiling are clamped (arrivals beyond
    // max_rate cannot be generated), matching the header's contract.
    const double lambda = std::min(rate_(sim_.now()), max_rate_);
    const bool accept = lambda >= max_rate_ || rng_.bernoulli(lambda / max_rate_);
    schedule_next();
    if (accept) {
      ++generated_;
      on_arrival_();
    }
  });
}

}  // namespace hls
