#include "workload/arrivals.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace hls {

ArrivalProcess::ArrivalProcess(Simulator& sim, Rng rng, double rate)
    : sim_(sim),
      rng_(rng),
      rate_([rate](SimTime) { return rate; }),
      max_rate_(rate) {
  HLS_ASSERT(rate >= 0.0, "negative arrival rate");
}

ArrivalProcess::ArrivalProcess(Simulator& sim, Rng rng, RateFunction rate,
                               double max_rate)
    : sim_(sim), rng_(rng), rate_(std::move(rate)), max_rate_(max_rate) {
  HLS_ASSERT(max_rate_ >= 0.0, "negative max rate");
}

void ArrivalProcess::start(std::function<void()> on_arrival) {
  HLS_ASSERT(!running_, "arrival process already started");
  on_arrival_ = std::move(on_arrival);
  running_ = true;
  if (max_rate_ > 0.0) {
    schedule_next();
  }
}

void ArrivalProcess::schedule_next() {
  const double gap = rng_.exponential(max_rate_);
  sim_.schedule_after(gap, [this] {
    if (!running_) {
      return;
    }
    // Thinning: accept the candidate with probability rate(t)/max_rate.
    // Rates above the declared ceiling are clamped (arrivals beyond
    // max_rate cannot be generated), matching the header's contract.
    const double lambda = std::min(rate_(sim_.now()), max_rate_);
    const bool accept = lambda >= max_rate_ || rng_.bernoulli(lambda / max_rate_);
    schedule_next();
    if (accept) {
      ++generated_;
      on_arrival_();
    }
  });
}

}  // namespace hls
