#include "workload/txn_factory.hpp"

#include "util/assert.hpp"

namespace hls {

TxnFactory::TxnFactory(const SystemConfig& cfg, Rng rng) : cfg_(cfg), rng_(rng) {
  cfg_.validate();
}

Transaction TxnFactory::make(int site, SimTime now) {
  Transaction txn;
  fill(txn, site, now);
  return txn;
}

Transaction TxnFactory::make_of_class(TxnClass cls, int site, SimTime now) {
  Transaction txn;
  fill_of_class(txn, cls, site, now);
  return txn;
}

void TxnFactory::fill(Transaction& txn, int site, SimTime now) {
  const TxnClass cls =
      rng_.bernoulli(cfg_.prob_class_a) ? TxnClass::A : TxnClass::B;
  fill_of_class(txn, cls, site, now);
}

void TxnFactory::fill_of_class(Transaction& txn, TxnClass cls, int site,
                               SimTime now) {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  txn.id = next_id_++;
  txn.cls = cls;
  txn.home_site = site;
  txn.arrival_time = now;
  txn.locks.reserve(cfg_.db_calls_per_txn);
  txn.call_io.reserve(cfg_.db_calls_per_txn);

  const std::uint32_t partition = cfg_.partition_size();
  const std::uint32_t lo =
      cls == TxnClass::A ? static_cast<std::uint32_t>(site) * partition : 0;
  const std::uint32_t span = cls == TxnClass::A ? partition : cfg_.lockspace;

  int calls = cfg_.db_calls_per_txn;
  if (cfg_.geometric_call_count) {
    // Geometric with mean db_calls_per_txn, truncated to [1, 8x mean]:
    // success probability 1/mean, support {1, 2, ...}.
    const double p_stop = 1.0 / cfg_.db_calls_per_txn;
    calls = 1;
    while (!rng_.bernoulli(p_stop) && calls < 8 * cfg_.db_calls_per_txn) {
      ++calls;
    }
  }
  for (int call = 0; call < calls; ++call) {
    const LockId id = lo + static_cast<LockId>(rng_.next_below(span));
    const LockMode mode =
        rng_.bernoulli(cfg_.prob_write_lock) ? LockMode::Exclusive : LockMode::Shared;
    txn.locks.push_back(LockNeed{id, mode});
    txn.call_io.push_back(rng_.bernoulli(cfg_.prob_call_io));
  }
}

}  // namespace hls
