#include "db/lock_manager.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace hls {

LockManager::LockManager(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

bool LockManager::grantable(const Entry& entry, TxnId txn, LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      continue;  // self-compatibility: upgrade path
    }
    if (mode == LockMode::Exclusive || h.mode == LockMode::Exclusive) {
      return false;
    }
  }
  return true;
}

LockRequestOutcome LockManager::request(TxnId txn, LockId lock, LockMode mode,
                                        GrantCallback on_grant,
                                        std::vector<TxnId>* cycle_out) {
  HLS_ASSERT(txn != kInvalidTxn, "invalid transaction id");
  HLS_ASSERT(waiting_on_.count(txn) == 0, "transaction already blocked on a lock");
  Entry& entry = table_[lock];

  // Already-held fast path.
  for (Holder& h : entry.holders) {
    if (h.txn != txn) {
      continue;
    }
    if (h.mode == LockMode::Exclusive || mode == LockMode::Shared) {
      return LockRequestOutcome::AlreadyHeld;
    }
    break;  // shared -> exclusive upgrade falls through to grant/queue logic
  }

  const bool is_upgrade = holds(txn, lock);
  // Strict FIFO: a new request is granted immediately only when it is
  // compatible with the holders and nobody is queued ahead of it.
  if (entry.queue.empty() && grantable(entry, txn, mode)) {
    if (is_upgrade) {
      for (Holder& h : entry.holders) {
        if (h.txn == txn) {
          h.mode = LockMode::Exclusive;
        }
      }
    } else {
      entry.holders.push_back(Holder{txn, mode});
      held_index_[txn].push_back(lock);
      ++holds_total_;
    }
    return LockRequestOutcome::Granted;
  }

  std::vector<TxnId> cycle = find_cycle(txn, lock);
  if (!cycle.empty()) {
    ++deadlocks_;
    if (cycle_out != nullptr) {
      *cycle_out = std::move(cycle);
    }
    drop_entry_if_empty(lock);
    return LockRequestOutcome::Deadlock;
  }

  entry.queue.push_back(Waiter{txn, mode, std::move(on_grant)});
  waiting_on_[txn] = lock;
  ++waiters_total_;
  return LockRequestOutcome::Queued;
}

void LockManager::release(TxnId txn, LockId lock) {
  auto it = table_.find(lock);
  HLS_ASSERT(it != table_.end(), "releasing a lock with no table entry");
  erase_holder(it->second, txn);
  auto held_it = held_index_.find(txn);
  HLS_ASSERT(held_it != held_index_.end(), "release: txn holds nothing");
  auto& vec = held_it->second;
  auto pos = std::find(vec.begin(), vec.end(), lock);
  HLS_ASSERT(pos != vec.end(), "release: txn does not hold this lock");
  vec.erase(pos);
  if (vec.empty()) {
    held_index_.erase(held_it);
  }
  pump_queue(lock, it->second);
  drop_entry_if_empty(lock);
}

void LockManager::release_all(TxnId txn) {
  cancel_waits(txn);
  auto held_it = held_index_.find(txn);
  if (held_it == held_index_.end()) {
    return;
  }
  std::vector<LockId> locks = std::move(held_it->second);
  held_index_.erase(held_it);
  for (LockId lock : locks) {
    auto it = table_.find(lock);
    HLS_ASSERT(it != table_.end(), "held lock missing from table");
    erase_holder(it->second, txn);
    pump_queue(lock, it->second);
    drop_entry_if_empty(lock);
  }
}

std::vector<LockId> LockManager::cancel_waits(TxnId txn) {
  std::vector<LockId> cancelled;
  auto wait_it = waiting_on_.find(txn);
  if (wait_it == waiting_on_.end()) {
    return cancelled;
  }
  const LockId lock = wait_it->second;
  auto it = table_.find(lock);
  HLS_ASSERT(it != table_.end(), "waiting on a lock with no table entry");
  auto& queue = it->second.queue;
  for (auto q = queue.begin(); q != queue.end();) {
    if (q->txn == txn) {
      q = queue.erase(q);
      --waiters_total_;
      cancelled.push_back(lock);
    } else {
      ++q;
    }
  }
  waiting_on_.erase(wait_it);
  // Removing a queued request can unblock the head (e.g. an X request that
  // was queued behind the cancelled one).
  pump_queue(lock, it->second);
  drop_entry_if_empty(lock);
  return cancelled;
}

bool LockManager::holds(TxnId txn, LockId lock) const {
  auto it = held_index_.find(txn);
  if (it == held_index_.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), lock) != it->second.end();
}

bool LockManager::is_waiting(TxnId txn) const { return waiting_on_.count(txn) != 0; }

std::optional<LockId> LockManager::waiting_lock(TxnId txn) const {
  auto it = waiting_on_.find(txn);
  return it == waiting_on_.end() ? std::nullopt : std::optional<LockId>(it->second);
}

std::vector<LockManager::HolderInfo> LockManager::holders_of(LockId lock) const {
  std::vector<HolderInfo> out;
  auto it = table_.find(lock);
  if (it == table_.end()) {
    return out;
  }
  out.reserve(it->second.holders.size());
  for (const Holder& h : it->second.holders) {
    out.push_back(HolderInfo{h.txn, h.mode});
  }
  return out;
}

std::vector<LockId> LockManager::held_locks(TxnId txn) const {
  auto it = held_index_.find(txn);
  return it == held_index_.end() ? std::vector<LockId>{} : it->second;
}

LockManager::GrabResult LockManager::grab_for_authentication(TxnId grabber, LockId lock,
                                                             LockMode mode) {
  GrabResult result;
  Entry& entry = table_[lock];
  if (entry.coherence != 0) {
    // In-flight asynchronous update: the central copy is stale, refuse.
    drop_entry_if_empty(lock);
    return result;
  }
  result.granted = true;

  bool grabber_holds = false;
  for (auto it = entry.holders.begin(); it != entry.holders.end();) {
    if (it->txn == grabber) {
      grabber_holds = true;
      if (mode == LockMode::Exclusive) {
        it->mode = LockMode::Exclusive;
      }
      ++it;
      continue;
    }
    const bool conflict =
        mode == LockMode::Exclusive || it->mode == LockMode::Exclusive;
    if (conflict) {
      // Preempt the local holder: it is marked for abort by the caller and
      // must reacquire the lock on its rerun.
      const TxnId victim = it->txn;
      result.aborted.push_back(victim);
      it = entry.holders.erase(it);
      --holds_total_;
      auto held_it = held_index_.find(victim);
      HLS_ASSERT(held_it != held_index_.end(), "preempted holder not in index");
      auto& vec = held_it->second;
      auto pos = std::find(vec.begin(), vec.end(), lock);
      HLS_ASSERT(pos != vec.end(), "preempted holder index mismatch");
      vec.erase(pos);
      if (vec.empty()) {
        held_index_.erase(held_it);
      }
    } else {
      ++it;
    }
  }

  if (!grabber_holds) {
    entry.holders.push_back(Holder{grabber, mode});
    held_index_[grabber].push_back(lock);
    ++holds_total_;
  }
  // A shared grab that evicted an exclusive holder may let queued shared
  // requests through.
  pump_queue(lock, entry);
  return result;
}

void LockManager::increment_coherence(LockId lock) {
  Entry& entry = table_[lock];
  if (entry.coherence == 0) {
    ++coherence_nonzero_;
  }
  ++entry.coherence;
}

void LockManager::decrement_coherence(LockId lock) {
  auto it = table_.find(lock);
  HLS_ASSERT(it != table_.end() && it->second.coherence > 0,
             "coherence count underflow");
  --it->second.coherence;
  if (it->second.coherence == 0) {
    --coherence_nonzero_;
    drop_entry_if_empty(lock);
  }
}

std::uint32_t LockManager::coherence_count(LockId lock) const {
  auto it = table_.find(lock);
  return it == table_.end() ? 0 : it->second.coherence;
}

void LockManager::pump_queue(LockId lock, Entry& entry) {
  while (!entry.queue.empty()) {
    Waiter& head = entry.queue.front();
    if (!grantable(entry, head.txn, head.mode)) {
      return;
    }
    // Grant: upgrade in place or append a new holder.
    bool upgraded = false;
    for (Holder& h : entry.holders) {
      if (h.txn == head.txn) {
        h.mode = LockMode::Exclusive;  // only upgrades re-request while holding
        upgraded = true;
      }
    }
    if (!upgraded) {
      entry.holders.push_back(Holder{head.txn, head.mode});
      held_index_[head.txn].push_back(lock);
      ++holds_total_;
    }
    waiting_on_.erase(head.txn);
    --waiters_total_;
    GrantCallback cb = std::move(head.on_grant);
    entry.queue.pop_front();
    if (cb) {
      // Dispatch through the simulator so release paths cannot reenter
      // transaction logic synchronously.
      sim_.schedule_after(0.0, std::move(cb));
    }
  }
}

std::vector<TxnId> LockManager::find_cycle(TxnId waiter, LockId lock) const {
  auto it = table_.find(lock);
  if (it == table_.end()) {
    return {};
  }
  // Recursive DFS over the waits-for relation with path tracking. A
  // transaction blocks on at most one lock, so the graph is sparse; the
  // visited set keeps the walk linear.
  std::vector<TxnId> visited;
  std::vector<TxnId> path{waiter};

  // Returns true when a path back to `waiter` is found; `path` then holds
  // the cycle members in order.
  auto dfs = [&](auto&& self, const Entry& entry, TxnId upto) -> bool {
    std::vector<TxnId> blockers;
    collect_blockers(entry, upto, blockers);
    for (TxnId t : blockers) {
      if (t == waiter) {
        return true;
      }
      if (std::find(visited.begin(), visited.end(), t) != visited.end()) {
        continue;
      }
      visited.push_back(t);
      auto wait_it = waiting_on_.find(t);
      if (wait_it == waiting_on_.end()) {
        continue;  // a holder that is not itself waiting: dead end
      }
      auto entry_it = table_.find(wait_it->second);
      if (entry_it == table_.end()) {
        continue;
      }
      path.push_back(t);
      if (self(self, entry_it->second, t)) {
        return true;
      }
      path.pop_back();
    }
    return false;
  };

  if (dfs(dfs, it->second, waiter)) {
    return path;
  }
  return {};
}

void LockManager::collect_blockers(const Entry& entry, TxnId upto_waiter,
                                   std::vector<TxnId>& out) const {
  // FIFO queuing means a waiter effectively waits for current holders and
  // for every request queued ahead of it. Including all queued requests is
  // slightly conservative for the incoming request (which joins the tail)
  // but matches the FIFO grant discipline.
  for (const Holder& h : entry.holders) {
    if (h.txn != upto_waiter) {
      out.push_back(h.txn);
    }
  }
  for (const Waiter& w : entry.queue) {
    if (w.txn == upto_waiter) {
      break;
    }
    out.push_back(w.txn);
  }
}

void LockManager::erase_holder(Entry& entry, TxnId txn) {
  auto pos = std::find_if(entry.holders.begin(), entry.holders.end(),
                          [txn](const Holder& h) { return h.txn == txn; });
  HLS_ASSERT(pos != entry.holders.end(), "erase_holder: txn is not a holder");
  entry.holders.erase(pos);
  --holds_total_;
}

void LockManager::drop_entry_if_empty(LockId lock) {
  auto it = table_.find(lock);
  if (it != table_.end() && it->second.holders.empty() && it->second.queue.empty() &&
      it->second.coherence == 0) {
    table_.erase(it);
  }
}

void LockManager::check_invariants() const {
  std::size_t holds_count = 0;
  std::size_t waits = 0;
  std::size_t coherent = 0;
  for (const auto& [lock, entry] : table_) {
    holds_count += entry.holders.size();
    waits += entry.queue.size();
    if (entry.coherence != 0) {
      ++coherent;
    }
    // At most one exclusive holder; exclusive implies sole holder.
    std::size_t exclusive = 0;
    for (const Holder& h : entry.holders) {
      if (h.mode == LockMode::Exclusive) {
        ++exclusive;
      }
      HLS_ASSERT(holds(h.txn, lock), "holder missing from index");
    }
    HLS_ASSERT(exclusive <= 1, "multiple exclusive holders");
    if (exclusive == 1) {
      HLS_ASSERT(entry.holders.size() == 1, "exclusive holder is not alone");
    }
    for (const Waiter& w : entry.queue) {
      auto wit = waiting_on_.find(w.txn);
      HLS_ASSERT(wit != waiting_on_.end() && wit->second == lock,
                 "waiter not registered in waiting_on_");
    }
  }
  HLS_ASSERT(holds_count == holds_total_, "holds_total_ out of sync");
  HLS_ASSERT(waits == waiters_total_, "waiters_total_ out of sync");
  HLS_ASSERT(coherent == coherence_nonzero_, "coherence_nonzero_ out of sync");
  std::size_t index_holds = 0;
  for (const auto& [txn, locks] : held_index_) {
    index_holds += locks.size();
  }
  HLS_ASSERT(index_holds == holds_total_, "held_index_ out of sync");
}

}  // namespace hls
