#include "db/lock_manager.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace hls {

LockManager::LockManager(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

LockManager::Entry& LockManager::entry_for(LockId lock) {
  bool inserted = false;
  std::uint32_t& slot = table_index_.find_or_insert(lock, &inserted);
  if (inserted) {
    if (free_entries_.empty()) {
      slot = static_cast<std::uint32_t>(entry_pool_.size());
      entry_pool_.emplace_back();
    } else {
      slot = free_entries_.back();  // drained empty; capacity retained
      free_entries_.pop_back();
    }
  }
  return entry_pool_[slot];
}

LockManager::Entry* LockManager::lookup_entry(LockId lock) {
  std::uint32_t* slot = table_index_.find(lock);
  return slot == nullptr ? nullptr : &entry_pool_[*slot];
}

const LockManager::Entry* LockManager::lookup_entry(LockId lock) const {
  const std::uint32_t* slot = table_index_.find(lock);
  return slot == nullptr ? nullptr : &entry_pool_[*slot];
}

std::vector<LockId>& LockManager::held_for(TxnId txn) {
  bool inserted = false;
  std::uint32_t& slot = held_index_.find_or_insert(txn, &inserted);
  if (inserted) {
    if (free_held_.empty()) {
      slot = static_cast<std::uint32_t>(held_pool_.size());
      held_pool_.emplace_back();
    } else {
      slot = free_held_.back();
      free_held_.pop_back();
    }
  }
  return held_pool_[slot];
}

void LockManager::drop_held(TxnId txn, std::uint32_t slot) {
  held_pool_[slot].clear();
  free_held_.push_back(slot);
  held_index_.erase(txn);
}

bool LockManager::grantable(const Entry& entry, TxnId txn, LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) {
      continue;  // self-compatibility: upgrade path
    }
    if (mode == LockMode::Exclusive || h.mode == LockMode::Exclusive) {
      return false;
    }
  }
  return true;
}

LockRequestOutcome LockManager::request(TxnId txn, LockId lock, LockMode mode,
                                        GrantCallback on_grant,
                                        std::vector<TxnId>* cycle_out) {
  HLS_ASSERT(txn != kInvalidTxn, "invalid transaction id");
  HLS_ASSERT(waiting_on_.find(txn) == nullptr,
             "transaction already blocked on a lock");
  note_access(lock);
  Entry& entry = entry_for(lock);

  // Already-held fast path.
  for (Holder& h : entry.holders) {
    if (h.txn != txn) {
      continue;
    }
    if (h.mode == LockMode::Exclusive || mode == LockMode::Shared) {
      return LockRequestOutcome::AlreadyHeld;
    }
    break;  // shared -> exclusive upgrade falls through to grant/queue logic
  }

  const bool is_upgrade = holds(txn, lock);
  // Strict FIFO: a new request is granted immediately only when it is
  // compatible with the holders and nobody is queued ahead of it.
  if (entry.queue.empty() && grantable(entry, txn, mode)) {
    if (is_upgrade) {
      for (Holder& h : entry.holders) {
        if (h.txn == txn) {
          h.mode = LockMode::Exclusive;
        }
      }
    } else {
      entry.holders.push_back(Holder{txn, mode});
      held_for(txn).push_back(lock);
      ++holds_total_;
    }
    return LockRequestOutcome::Granted;
  }

  std::vector<TxnId> cycle = find_cycle(txn, lock);
  if (!cycle.empty()) {
    ++deadlocks_;
    if (cycle_out != nullptr) {
      *cycle_out = std::move(cycle);
    }
    drop_entry_if_empty(lock);
    return LockRequestOutcome::Deadlock;
  }

  entry.queue.push_back(Waiter{txn, mode, std::move(on_grant)});
  waiting_on_.find_or_insert(txn) = lock;
  ++waiters_total_;
  note_waiters();
  return LockRequestOutcome::Queued;
}

void LockManager::release(TxnId txn, LockId lock) {
  Entry* entry = lookup_entry(lock);
  HLS_ASSERT(entry != nullptr, "releasing a lock with no table entry");
  erase_holder(*entry, txn);
  std::uint32_t* held_slot = held_index_.find(txn);
  HLS_ASSERT(held_slot != nullptr, "release: txn holds nothing");
  const std::uint32_t slot = *held_slot;
  auto& vec = held_pool_[slot];
  auto pos = std::find(vec.begin(), vec.end(), lock);
  HLS_ASSERT(pos != vec.end(), "release: txn does not hold this lock");
  vec.erase(pos);
  if (vec.empty()) {
    drop_held(txn, slot);
  }
  pump_queue(lock, *entry);
  drop_entry_if_empty(lock);
}

void LockManager::release_all(TxnId txn) {
  cancel_waits(txn);
  std::uint32_t* held_slot = held_index_.find(txn);
  if (held_slot == nullptr) {
    return;
  }
  // Copy into the scratch before dropping: pump_queue below may grant locks
  // to other transactions, growing held_pool_ and rehashing held_index_.
  const std::uint32_t slot = *held_slot;
  release_scratch_.assign(held_pool_[slot].begin(), held_pool_[slot].end());
  drop_held(txn, slot);
  for (LockId lock : release_scratch_) {
    Entry* entry = lookup_entry(lock);
    HLS_ASSERT(entry != nullptr, "held lock missing from table");
    erase_holder(*entry, txn);
    pump_queue(lock, *entry);
    drop_entry_if_empty(lock);
  }
}

std::vector<LockId> LockManager::cancel_waits(TxnId txn) {
  std::vector<LockId> cancelled;
  const LockId* waiting = waiting_on_.find(txn);
  if (waiting == nullptr) {
    return cancelled;
  }
  const LockId lock = *waiting;
  Entry* entry = lookup_entry(lock);
  HLS_ASSERT(entry != nullptr, "waiting on a lock with no table entry");
  auto& queue = entry->queue;
  for (auto q = queue.begin(); q != queue.end();) {
    if (q->txn == txn) {
      q = queue.erase(q);
      --waiters_total_;
      cancelled.push_back(lock);
    } else {
      ++q;
    }
  }
  waiting_on_.erase(txn);
  note_waiters();
  // Removing a queued request can unblock the head (e.g. an X request that
  // was queued behind the cancelled one).
  pump_queue(lock, *entry);
  drop_entry_if_empty(lock);
  return cancelled;
}

bool LockManager::holds(TxnId txn, LockId lock) const {
  const std::uint32_t* slot = held_index_.find(txn);
  if (slot == nullptr) {
    return false;
  }
  const auto& vec = held_pool_[*slot];
  return std::find(vec.begin(), vec.end(), lock) != vec.end();
}

bool LockManager::is_waiting(TxnId txn) const {
  return waiting_on_.find(txn) != nullptr;
}

std::optional<LockId> LockManager::waiting_lock(TxnId txn) const {
  const LockId* lock = waiting_on_.find(txn);
  return lock == nullptr ? std::nullopt : std::optional<LockId>(*lock);
}

std::vector<LockManager::HolderInfo> LockManager::holders_of(LockId lock) const {
  std::vector<HolderInfo> out;
  const Entry* entry = lookup_entry(lock);
  if (entry == nullptr) {
    return out;
  }
  out.reserve(entry->holders.size());
  for (const Holder& h : entry->holders) {
    out.push_back(HolderInfo{h.txn, h.mode});
  }
  return out;
}

std::vector<LockId> LockManager::held_locks(TxnId txn) const {
  const std::uint32_t* slot = held_index_.find(txn);
  return slot == nullptr ? std::vector<LockId>{} : held_pool_[*slot];
}

LockManager::GrabResult LockManager::grab_for_authentication(TxnId grabber, LockId lock,
                                                             LockMode mode) {
  GrabResult result;
  note_access(lock);
  Entry& entry = entry_for(lock);
  if (entry.coherence != 0) {
    // In-flight asynchronous update: the central copy is stale, refuse.
    drop_entry_if_empty(lock);
    return result;
  }
  result.granted = true;

  bool grabber_holds = false;
  for (auto it = entry.holders.begin(); it != entry.holders.end();) {
    if (it->txn == grabber) {
      grabber_holds = true;
      if (mode == LockMode::Exclusive) {
        it->mode = LockMode::Exclusive;
      }
      ++it;
      continue;
    }
    const bool conflict =
        mode == LockMode::Exclusive || it->mode == LockMode::Exclusive;
    if (conflict) {
      // Preempt the local holder: it is marked for abort by the caller and
      // must reacquire the lock on its rerun.
      const TxnId victim = it->txn;
      result.aborted.push_back(victim);
      it = entry.holders.erase(it);
      --holds_total_;
      std::uint32_t* held_slot = held_index_.find(victim);
      HLS_ASSERT(held_slot != nullptr, "preempted holder not in index");
      const std::uint32_t slot = *held_slot;
      auto& vec = held_pool_[slot];
      auto pos = std::find(vec.begin(), vec.end(), lock);
      HLS_ASSERT(pos != vec.end(), "preempted holder index mismatch");
      vec.erase(pos);
      if (vec.empty()) {
        drop_held(victim, slot);
      }
    } else {
      ++it;
    }
  }

  if (!grabber_holds) {
    entry.holders.push_back(Holder{grabber, mode});
    held_for(grabber).push_back(lock);
    ++holds_total_;
  }
  // A shared grab that evicted an exclusive holder may let queued shared
  // requests through.
  pump_queue(lock, entry);
  return result;
}

void LockManager::increment_coherence(LockId lock) {
  Entry& entry = entry_for(lock);
  if (entry.coherence == 0) {
    ++coherence_nonzero_;
  }
  ++entry.coherence;
}

void LockManager::decrement_coherence(LockId lock) {
  Entry* entry = lookup_entry(lock);
  HLS_ASSERT(entry != nullptr && entry->coherence > 0,
             "coherence count underflow");
  --entry->coherence;
  if (entry->coherence == 0) {
    --coherence_nonzero_;
    drop_entry_if_empty(lock);
  }
}

std::uint32_t LockManager::coherence_count(LockId lock) const {
  const Entry* entry = lookup_entry(lock);
  return entry == nullptr ? 0 : entry->coherence;
}

void LockManager::pump_queue(LockId lock, Entry& entry) {
  while (!entry.queue.empty()) {
    Waiter& head = entry.queue.front();
    if (!grantable(entry, head.txn, head.mode)) {
      return;
    }
    // Grant: upgrade in place or append a new holder.
    bool upgraded = false;
    for (Holder& h : entry.holders) {
      if (h.txn == head.txn) {
        h.mode = LockMode::Exclusive;  // only upgrades re-request while holding
        upgraded = true;
      }
    }
    if (!upgraded) {
      entry.holders.push_back(Holder{head.txn, head.mode});
      held_for(head.txn).push_back(lock);
      ++holds_total_;
    }
    waiting_on_.erase(head.txn);
    --waiters_total_;
    note_waiters();
    GrantCallback cb = std::move(head.on_grant);
    entry.queue.pop_front();
    if (cb) {
      // Dispatch through the simulator so release paths cannot reenter
      // transaction logic synchronously.
      sim_.schedule_after(0.0, std::move(cb));
    }
  }
}

std::vector<TxnId> LockManager::find_cycle(TxnId waiter, LockId lock) const {
  const Entry* start = lookup_entry(lock);
  if (start == nullptr) {
    return {};
  }
  // Recursive DFS over the waits-for relation with path tracking. A
  // transaction blocks on at most one lock, so the graph is sparse; the
  // visited set keeps the walk linear.
  std::vector<TxnId> visited;
  std::vector<TxnId> path{waiter};

  // Returns true when a path back to `waiter` is found; `path` then holds
  // the cycle members in order.
  auto dfs = [&](auto&& self, const Entry& entry, TxnId upto) -> bool {
    std::vector<TxnId> blockers;
    collect_blockers(entry, upto, blockers);
    for (TxnId t : blockers) {
      if (t == waiter) {
        return true;
      }
      if (std::find(visited.begin(), visited.end(), t) != visited.end()) {
        continue;
      }
      visited.push_back(t);
      const LockId* waits_on = waiting_on_.find(t);
      if (waits_on == nullptr) {
        continue;  // a holder that is not itself waiting: dead end
      }
      const Entry* next = lookup_entry(*waits_on);
      if (next == nullptr) {
        continue;
      }
      path.push_back(t);
      if (self(self, *next, t)) {
        return true;
      }
      path.pop_back();
    }
    return false;
  };

  if (dfs(dfs, *start, waiter)) {
    return path;
  }
  return {};
}

void LockManager::collect_blockers(const Entry& entry, TxnId upto_waiter,
                                   std::vector<TxnId>& out) const {
  // FIFO queuing means a waiter effectively waits for current holders and
  // for every request queued ahead of it. Including all queued requests is
  // slightly conservative for the incoming request (which joins the tail)
  // but matches the FIFO grant discipline.
  for (const Holder& h : entry.holders) {
    if (h.txn != upto_waiter) {
      out.push_back(h.txn);
    }
  }
  for (const Waiter& w : entry.queue) {
    if (w.txn == upto_waiter) {
      break;
    }
    out.push_back(w.txn);
  }
}

void LockManager::erase_holder(Entry& entry, TxnId txn) {
  auto pos = std::find_if(entry.holders.begin(), entry.holders.end(),
                          [txn](const Holder& h) { return h.txn == txn; });
  HLS_ASSERT(pos != entry.holders.end(), "erase_holder: txn is not a holder");
  entry.holders.erase(pos);
  --holds_total_;
}

void LockManager::drop_entry_if_empty(LockId lock) {
  std::uint32_t* slot = table_index_.find(lock);
  if (slot == nullptr) {
    return;
  }
  Entry& entry = entry_pool_[*slot];
  if (entry.holders.empty() && entry.queue.empty() && entry.coherence == 0) {
    // The drained entry goes back to the pool as-is: its holders vector and
    // wait deque keep their capacity for the next lock of this entity (or
    // any other), so steady-state locking allocates nothing.
    free_entries_.push_back(*slot);
    table_index_.erase(lock);
  }
}

void LockManager::check_invariants() const {
  std::size_t holds_count = 0;
  std::size_t waits = 0;
  std::size_t coherent = 0;
  table_index_.for_each([&](LockId lock, std::uint32_t slot) {
    const Entry& entry = entry_pool_[slot];
    holds_count += entry.holders.size();
    waits += entry.queue.size();
    if (entry.coherence != 0) {
      ++coherent;
    }
    // At most one exclusive holder; exclusive implies sole holder.
    std::size_t exclusive = 0;
    for (const Holder& h : entry.holders) {
      if (h.mode == LockMode::Exclusive) {
        ++exclusive;
      }
      HLS_ASSERT(holds(h.txn, lock), "holder missing from index");
    }
    HLS_ASSERT(exclusive <= 1, "multiple exclusive holders");
    if (exclusive == 1) {
      HLS_ASSERT(entry.holders.size() == 1, "exclusive holder is not alone");
    }
    for (const Waiter& w : entry.queue) {
      const LockId* waits_on = waiting_on_.find(w.txn);
      HLS_ASSERT(waits_on != nullptr && *waits_on == lock,
                 "waiter not registered in waiting_on_");
    }
  });
  HLS_ASSERT(holds_count == holds_total_, "holds_total_ out of sync");
  HLS_ASSERT(waits == waiters_total_, "waiters_total_ out of sync");
  HLS_ASSERT(coherent == coherence_nonzero_, "coherence_nonzero_ out of sync");
  std::size_t index_holds = 0;
  held_index_.for_each([&](TxnId, std::uint32_t slot) {
    index_holds += held_pool_[slot].size();
  });
  HLS_ASSERT(index_holds == holds_total_, "held_index_ out of sync");
  if (wait_telemetry_) {
    // Exact: the gauge mirrors an integer counter. hlslint:allow(float-eq)
    HLS_ASSERT(wait_tw_.current() == static_cast<double>(waiters_total_),
               "wait-queue gauge out of sync with waiters_total_");
  }
}

void LockManager::enable_wait_telemetry(double now) {
  wait_telemetry_ = true;
  wait_tw_.reset(now);
  wait_tw_.set(now, static_cast<double>(waiters_total_));
}

void LockManager::enable_heat(int buckets, std::uint32_t lockspace) {
  HLS_ASSERT(buckets > 0, "enable_heat needs at least one bucket");
  HLS_ASSERT(lockspace > 0, "enable_heat needs a non-empty lock space");
  heat_lockspace_ = lockspace;
  heat_.assign(static_cast<std::size_t>(buckets), 0);
}

void LockManager::reset_telemetry(double now) {
  if (wait_telemetry_) {
    wait_tw_.reset(now);  // reset keeps the current signal value
  }
  if (!heat_.empty()) {
    std::fill(heat_.begin(), heat_.end(), 0);
  }
}

}  // namespace hls
