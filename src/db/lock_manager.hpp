// Lock manager with the paper's dual-field lock entries (§2):
//
//   * a CONCURRENCY field — classic shared/exclusive granting with a FIFO
//     wait queue, used among transactions running at the same site, and
//   * a COHERENCE field — a counter of asynchronous updates that have been
//     shipped to the central site but not yet acknowledged. A non-zero
//     count means the central copy of the entity is stale; the
//     authentication phase of a central/shipped transaction must then be
//     refused (negative acknowledgement).
//
// Two grant paths exist:
//   * request()                — normal pessimistic path: grant, queue, or
//                                report a deadlock (waits-for cycle).
//   * grab_for_authentication() — optimistic cross-tier path: the central
//                                transaction preempts incompatible local
//                                holders (they are reported back so the
//                                caller can mark them for abort) and never
//                                waits, exactly as §2 prescribes.
//
// Grant callbacks for queued requests are dispatched through the simulator
// at the current time rather than invoked inline, so release paths cannot
// reenter transaction logic mid-update.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "db/lock_types.hpp"
#include "sim/simulator.hpp"
#include "util/flat_map.hpp"
#include "util/stats.hpp"
#include "util/unique_function.hpp"

namespace hls {

enum class LockRequestOutcome : std::uint8_t {
  Granted,   ///< lock granted synchronously
  AlreadyHeld,  ///< requester already holds the lock in a sufficient mode
  Queued,    ///< requester blocked; the on_grant callback fires later
  Deadlock,  ///< waiting would close a waits-for cycle; caller must abort
};

class LockManager {
 public:
  /// Move-only: grant continuations run once, and every request() call
  /// materializes one — std::function here cost a heap node per lock
  /// request even when the lock was granted synchronously.
  using GrantCallback = UniqueFunction<void()>;

  LockManager(Simulator& sim, std::string name);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // ---- concurrency field ----

  /// Requests `lock` in `mode` for `txn`. If the result is Queued, `on_grant`
  /// fires (via the simulator, at the grant time) once the lock is granted.
  /// A Shared request by a transaction already holding Exclusive is
  /// AlreadyHeld; an Exclusive request by a Shared holder is an upgrade and
  /// follows the normal grant/queue/deadlock rules.
  ///
  /// On Deadlock, `cycle_out` (when non-null) receives the transactions on
  /// the detected waits-for cycle (the requester first), so the caller can
  /// apply a victim-selection policy other than abort-the-requester.
  LockRequestOutcome request(TxnId txn, LockId lock, LockMode mode,
                             GrantCallback on_grant,
                             std::vector<TxnId>* cycle_out = nullptr);

  /// Releases one lock held by `txn`; grants queued compatible waiters.
  void release(TxnId txn, LockId lock);

  /// Releases every lock held by `txn` and removes any queued requests it
  /// still has pending (used on deadlock abort and at commit).
  void release_all(TxnId txn);

  /// Removes `txn`'s queued (not yet granted) requests without touching the
  /// locks it holds. Returns the lock ids of the cancelled requests.
  std::vector<LockId> cancel_waits(TxnId txn);

  [[nodiscard]] bool holds(TxnId txn, LockId lock) const;
  [[nodiscard]] bool is_waiting(TxnId txn) const;

  /// The lock `txn` is currently blocked on, or nullopt. Lets timeout logic
  /// verify a wait is still the SAME wait it armed for.
  [[nodiscard]] std::optional<LockId> waiting_lock(TxnId txn) const;

  /// Current holders of `lock` (empty when unheld). Used by the protocol
  /// engine to find victims when an asynchronous update invalidates central
  /// locks, and to classify holders during authentication.
  struct HolderInfo {
    TxnId txn;
    LockMode mode;
  };
  [[nodiscard]] std::vector<HolderInfo> holders_of(LockId lock) const;

  /// Locks currently held by `txn` (order unspecified).
  [[nodiscard]] std::vector<LockId> held_locks(TxnId txn) const;

  // ---- optimistic cross-tier path (authentication phase) ----

  struct GrabResult {
    bool granted = false;             ///< false iff refused by coherence count
    std::vector<TxnId> aborted;       ///< local holders preempted by the grab
  };

  /// Authentication-phase grab by central/shipped transaction `grabber`:
  ///   * if the entity's coherence count is non-zero, the grab is refused
  ///     (negative acknowledgement) and nothing changes;
  ///   * otherwise incompatible local holders lose the lock and are returned
  ///     in `aborted` (the caller marks them for abort), and `grabber`
  ///     becomes a holder. The grab never waits.
  GrabResult grab_for_authentication(TxnId grabber, LockId lock, LockMode mode);

  // ---- coherence field ----

  /// Marks one in-flight asynchronous update of `lock` (local commit shipped
  /// an update whose acknowledgement is pending).
  void increment_coherence(LockId lock);

  /// Acknowledges one in-flight update; count must be positive.
  void decrement_coherence(LockId lock);

  [[nodiscard]] std::uint32_t coherence_count(LockId lock) const;

  // ---- observability (routing strategies / tests) ----

  /// Total number of (txn, lock) holds in the table — the paper's "number of
  /// locks held at the site" input to the dynamic strategies.
  [[nodiscard]] std::size_t locks_held() const { return holds_total_; }

  /// Number of queued (blocked) requests.
  [[nodiscard]] std::size_t waiters() const { return waiters_total_; }

  /// Number of entities with a non-zero coherence count.
  [[nodiscard]] std::size_t pending_coherence_entities() const {
    return coherence_nonzero_;
  }

  [[nodiscard]] std::uint64_t deadlocks_detected() const { return deadlocks_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- per-resource telemetry (off unless armed; docs/OBSERVABILITY.md) ----

  /// Arms the time-weighted wait-queue gauge from `now` on. Telemetry is
  /// pure state writes on the existing mutation paths: no events are ever
  /// scheduled, so arming it cannot perturb the simulation.
  void enable_wait_telemetry(double now);

  /// Arms per-bucket access-heat counters: ids in [0, lockspace) fold into
  /// `buckets` equal-width buckets, and every request() /
  /// grab_for_authentication() access increments its bucket.
  void enable_heat(int buckets, std::uint32_t lockspace);

  /// Restarts the telemetry window at `now` (warmup discard). Heat counters
  /// restart at zero; the wait gauge keeps its current value.
  void reset_telemetry(double now);

  [[nodiscard]] bool wait_telemetry_enabled() const { return wait_telemetry_; }

  /// Time-averaged wait-queue length since enable/reset (0 when unarmed).
  [[nodiscard]] double average_waiters(double now) const {
    return wait_telemetry_ ? wait_tw_.average(now) : 0.0;
  }

  /// Access-heat counters, one per bucket (empty when unarmed).
  [[nodiscard]] const std::vector<std::uint64_t>& heat() const { return heat_; }

  /// DFS over the waits-for relation: if blocking `waiter` on `lock` would
  /// close a cycle back to `waiter`, returns the cycle's members (waiter
  /// first, then the chain of transactions it would transitively wait on);
  /// empty when waiting is safe. Exposed for diagnostics; request() invokes
  /// it internally before queueing a blocked request.
  [[nodiscard]] std::vector<TxnId> find_cycle(TxnId waiter, LockId lock) const;

  /// Internal-consistency check used by tests: every index entry matches the
  /// table and counters match reality. Aborts on violation.
  void check_invariants() const;

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    GrantCallback on_grant;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> queue;
    std::uint32_t coherence = 0;
  };

  /// True when `txn` may be granted `mode` on `entry` right now, considering
  /// both holders and FIFO fairness (no earlier incompatible waiter).
  [[nodiscard]] static bool grantable(const Entry& entry, TxnId txn, LockMode mode);

  /// Grants queue-head requests while they are grantable.
  void pump_queue(LockId lock, Entry& entry);

  void collect_blockers(const Entry& entry, TxnId upto_waiter,
                        std::vector<TxnId>& out) const;

  void erase_holder(Entry& entry, TxnId txn);
  void drop_entry_if_empty(LockId lock);

  /// Find-or-create: the entry for `lock`, recycling a pooled Entry (with
  /// the capacity of its holders vector and wait deque intact) on creation.
  /// The reference is stable until the entry is dropped — entries live in
  /// entry_pool_, which only other entry creations can grow, and no caller
  /// holds one reference across creating another entry.
  /// Mirrors waiters_total_ into the time-weighted gauge; call after every
  /// mutation of the counter. A single branch when telemetry is off.
  void note_waiters() {
    if (wait_telemetry_) {
      wait_tw_.set(sim_.now(), static_cast<double>(waiters_total_));
    }
  }

  /// Tallies one access of `lock` into its heat bucket (no-op when unarmed).
  void note_access(LockId lock) {
    if (!heat_.empty()) {
      std::size_t bucket = static_cast<std::size_t>(
          static_cast<std::uint64_t>(lock) * heat_.size() / heat_lockspace_);
      if (bucket >= heat_.size()) {
        bucket = heat_.size() - 1;
      }
      ++heat_[bucket];
    }
  }

  Entry& entry_for(LockId lock);
  [[nodiscard]] Entry* lookup_entry(LockId lock);
  [[nodiscard]] const Entry* lookup_entry(LockId lock) const;
  /// Find-or-create: the held-lock list for `txn`, pooled like entry_for.
  std::vector<LockId>& held_for(TxnId txn);
  /// Returns `txn`'s (empty) held-lock list to the pool.
  void drop_held(TxnId txn, std::uint32_t slot);

  /// Empty-slot sentinel for the lock-id index: lockspace ids are indices
  /// into a table of config.lockspace (< 2^32) entities, so the all-ones id
  /// never names a real lock.
  static constexpr LockId kNoLockId = 0xFFFFFFFFu;

  Simulator& sim_;
  std::string name_;
  // Lock table: open-addressing id index into a pool of recycled entries.
  // An unordered_map<LockId, Entry> here cost a node allocation (including a
  // fresh deque) every time an unheld entity was locked and a deallocation
  // when its entry drained — the dominant term in the event-kernel profile.
  FlatMap<LockId, std::uint32_t> table_index_{kNoLockId};
  std::deque<Entry> entry_pool_;  // deque: entry references survive growth
  std::vector<std::uint32_t> free_entries_;
  // txn -> set of held lock ids (vector: txns hold ~10 locks), pooled so the
  // per-txn vector's capacity survives release_all/commit churn.
  FlatMap<TxnId, std::uint32_t> held_index_{kInvalidTxn};
  std::vector<std::vector<LockId>> held_pool_;
  std::vector<std::uint32_t> free_held_;
  std::vector<LockId> release_scratch_;  // release_all working copy
  // txn -> lock id it is currently blocked on (a txn waits on one lock)
  FlatMap<TxnId, LockId> waiting_on_{kInvalidTxn};
  std::size_t holds_total_ = 0;
  std::size_t waiters_total_ = 0;
  std::size_t coherence_nonzero_ = 0;
  std::uint64_t deadlocks_ = 0;
  bool wait_telemetry_ = false;
  TimeWeightedStat wait_tw_;
  std::uint64_t heat_lockspace_ = 1;
  std::vector<std::uint64_t> heat_;
};

}  // namespace hls
