// Shared identifiers and enums for the database layer.
#pragma once

#include <cstdint>

namespace hls {

/// Identifies one lockable entity (the paper's "lock space" element).
using LockId = std::uint32_t;

/// Globally unique transaction identifier.
using TxnId = std::uint64_t;

inline constexpr TxnId kInvalidTxn = 0;

enum class LockMode : std::uint8_t { Shared, Exclusive };

/// True when a holder in `held` is compatible with a request in `requested`.
[[nodiscard]] constexpr bool compatible(LockMode held, LockMode requested) {
  return held == LockMode::Shared && requested == LockMode::Shared;
}

}  // namespace hls
