// Self-describing metric registry: the export-time container every system
// (hybrid, baselines) fills with named, unit-tagged metrics at the end of a
// run, and the canonical JSON serializer behind the run artifact
// (core/artifact.hpp) and tools/hlsreport.
//
// Five metric kinds cover everything the simulator accumulates:
//   * Counter      — monotone event counts (completions, aborts, messages);
//   * Gauge        — instantaneous values at export time (window seconds,
//                    locks held);
//   * Stat         — a SampleStat snapshot (response times, wasted work);
//   * TimeWeighted — a time-averaged signal plus its current value (CPU
//                    utilization, queue lengths, in-flight messages);
//   * Histogram    — a fixed-width Histogram snapshot.
//
// Naming contract (machine-checked by hlslint's `registry-name` rule):
// every registration site passes a string-literal stable name. The only
// blessed runtime-composed names are the Scope prefixes ("central.",
// "site<k>.") and bucket_counter's ".<bucket>" suffix — both produced here,
// never by callers — so artifact keys stay greppable and diffable across
// runs and PRs.
//
// Registration order is irrelevant to the output: write_json emits entries
// grouped by kind and sorted by name, with shortest-round-trip number
// formatting, so same-seed artifacts are byte-identical across reruns,
// HLS_JOBS values and machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace hls::obs {

enum class MetricKind : std::uint8_t {
  Counter,
  Gauge,
  Stat,
  TimeWeighted,
  Histogram,
};

[[nodiscard]] constexpr const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Stat: return "stat";
    case MetricKind::TimeWeighted: return "time_weighted";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

/// One registered metric. Fields not meaningful for the kind stay at their
/// defaults (the same flat-POD convention as obs::Event).
struct MetricEntry {
  std::string name;
  std::string unit;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;  ///< Counter value; Stat/Histogram sample count
  double value = 0.0;       ///< Gauge value; TimeWeighted current value
  double average = 0.0;     ///< TimeWeighted window average
  // ---- Stat snapshot (all zero when count == 0) ----
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  // ---- Histogram snapshot ----
  double bin_width = 0.0;
  std::vector<std::uint64_t> bins;
  std::uint64_t overflow = 0;
};

class Registry {
 public:
  /// Registration handle carrying a name prefix ("" for global metrics,
  /// "central." / "site<k>." for per-resource ones). The prefix composition
  /// here is the one sanctioned non-literal part of a metric name.
  class Scope {
   public:
    void counter(const char* name, std::uint64_t value,
                 const char* unit = "count") const;
    void gauge(const char* name, double value, const char* unit) const;
    void stat(const char* name, const SampleStat& s, const char* unit) const;
    /// `average` over the window and the `current` signal value, as produced
    /// by TimeWeightedStat::average / current.
    void time_weighted(const char* name, double average, double current,
                       const char* unit) const;
    void histogram(const char* name, const Histogram& h, const char* unit) const;
    /// Per-bucket counter family: registers "<prefix><name>.<bucket>". The
    /// blessed helper for fragment/heat counters, so bucket indices never
    /// leak into caller-side string composition.
    void bucket_counter(const char* name, std::size_t bucket,
                        std::uint64_t value, const char* unit = "count") const;

   private:
    friend class Registry;
    Scope(Registry* reg, std::string prefix)
        : reg_(reg), prefix_(std::move(prefix)) {}
    Registry* reg_;
    std::string prefix_;
  };

  [[nodiscard]] Scope root() { return Scope(this, ""); }
  [[nodiscard]] Scope central() { return Scope(this, "central."); }
  [[nodiscard]] Scope site(int index);

  // Global-metric conveniences (equivalent to root().<method>).
  void counter(const char* name, std::uint64_t value,
               const char* unit = "count") {
    root().counter(name, value, unit);
  }
  void gauge(const char* name, double value, const char* unit) {
    root().gauge(name, value, unit);
  }
  void stat(const char* name, const SampleStat& s, const char* unit) {
    root().stat(name, s, unit);
  }
  void time_weighted(const char* name, double average, double current,
                     const char* unit) {
    root().time_weighted(name, average, current, unit);
  }
  void histogram(const char* name, const Histogram& h, const char* unit) {
    root().histogram(name, h, unit);
  }

  [[nodiscard]] const std::vector<MetricEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Entry by full name, or nullptr.
  [[nodiscard]] const MetricEntry* find(const std::string& name) const;
  void clear();

  /// Canonical JSON object: one sub-object per metric kind (alphabetical),
  /// entries sorted by name inside each, numbers in shortest-round-trip
  /// decimal form. Byte-identical for identical registered values.
  void write_json(std::ostream& out) const;

 private:
  void add(MetricEntry entry);

  std::vector<MetricEntry> entries_;
  std::map<std::string, std::size_t> index_;  ///< name -> entries_ slot
};

/// Shortest-round-trip decimal rendering of `v` (std::to_chars), the number
/// format shared by the registry and the run artifact. Integral values print
/// without an exponent or trailing ".0"; the bytes depend only on the value.
void write_json_number(std::ostream& out, double v);

/// Minimal JSON string escaping (quote, backslash, control characters).
void write_json_string(std::ostream& out, const std::string& s);

}  // namespace hls::obs
