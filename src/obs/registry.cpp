#include "obs/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace hls::obs {

namespace {

MetricEntry make_base(const std::string& prefix, const char* name,
                      const char* unit, MetricKind kind) {
  MetricEntry e;
  e.name = prefix + name;
  e.unit = unit;
  e.kind = kind;
  return e;
}

}  // namespace

void Registry::Scope::counter(const char* name, std::uint64_t value,
                              const char* unit) const {
  MetricEntry e = make_base(prefix_, name, unit, MetricKind::Counter);
  e.count = value;
  reg_->add(std::move(e));
}

void Registry::Scope::gauge(const char* name, double value,
                            const char* unit) const {
  MetricEntry e = make_base(prefix_, name, unit, MetricKind::Gauge);
  e.value = value;
  reg_->add(std::move(e));
}

void Registry::Scope::stat(const char* name, const SampleStat& s,
                           const char* unit) const {
  MetricEntry e = make_base(prefix_, name, unit, MetricKind::Stat);
  e.count = s.count();
  if (s.count() > 0) {
    e.mean = s.mean();
    e.stddev = s.stddev();
    e.min = s.min();
    e.max = s.max();
    e.sum = s.sum();
  }
  reg_->add(std::move(e));
}

void Registry::Scope::time_weighted(const char* name, double average,
                                    double current, const char* unit) const {
  MetricEntry e = make_base(prefix_, name, unit, MetricKind::TimeWeighted);
  e.average = average;
  e.value = current;
  reg_->add(std::move(e));
}

void Registry::Scope::histogram(const char* name, const Histogram& h,
                                const char* unit) const {
  MetricEntry e = make_base(prefix_, name, unit, MetricKind::Histogram);
  e.bin_width = h.bin_width();
  e.bins.resize(h.num_bins());
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    e.bins[b] = h.bin_count(b);
    total += e.bins[b];
  }
  e.overflow = h.overflow();
  e.count = total + e.overflow;
  reg_->add(std::move(e));
}

void Registry::Scope::bucket_counter(const char* name, std::size_t bucket,
                                     std::uint64_t value,
                                     const char* unit) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".%zu", bucket);
  MetricEntry e;
  e.name = prefix_ + name + buf;
  e.unit = unit;
  e.kind = MetricKind::Counter;
  e.count = value;
  reg_->add(std::move(e));
}

Registry::Scope Registry::site(int index) {
  HLS_ASSERT(index >= 0, "Registry::site index must be non-negative");
  char buf[32];
  std::snprintf(buf, sizeof buf, "site%d.", index);
  return Scope(this, buf);
}

const MetricEntry* Registry::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void Registry::clear() {
  entries_.clear();
  index_.clear();
}

void Registry::add(MetricEntry entry) {
  auto [it, inserted] = index_.emplace(entry.name, entries_.size());
  HLS_ASSERT(inserted, "duplicate metric name registered");
  (void)it;
  entries_.push_back(std::move(entry));
}

void write_json_number(std::ostream& out, double v) {
  HLS_ASSERT(std::isfinite(v), "non-finite value in registry JSON");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.write(buf, res.ptr - buf);
}

void write_json_string(std::ostream& out, const std::string& s) {
  out.put('"');
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out.put(c);
        }
    }
  }
  out.put('"');
}

namespace {

void write_entry_json(std::ostream& out, const MetricEntry& e) {
  // Keys inside each entry are emitted in alphabetical order, matching the
  // sorted-name canonical form of the enclosing objects.
  out.put('{');
  switch (e.kind) {
    case MetricKind::Counter:
      out << "\"unit\":";
      write_json_string(out, e.unit);
      out << ",\"value\":" << e.count;
      break;
    case MetricKind::Gauge:
      out << "\"unit\":";
      write_json_string(out, e.unit);
      out << ",\"value\":";
      write_json_number(out, e.value);
      break;
    case MetricKind::Stat:
      out << "\"count\":" << e.count << ",\"max\":";
      write_json_number(out, e.max);
      out << ",\"mean\":";
      write_json_number(out, e.mean);
      out << ",\"min\":";
      write_json_number(out, e.min);
      out << ",\"stddev\":";
      write_json_number(out, e.stddev);
      out << ",\"sum\":";
      write_json_number(out, e.sum);
      out << ",\"unit\":";
      write_json_string(out, e.unit);
      break;
    case MetricKind::TimeWeighted:
      out << "\"average\":";
      write_json_number(out, e.average);
      out << ",\"current\":";
      write_json_number(out, e.value);
      out << ",\"unit\":";
      write_json_string(out, e.unit);
      break;
    case MetricKind::Histogram:
      out << "\"bin_width\":";
      write_json_number(out, e.bin_width);
      out << ",\"bins\":[";
      for (std::size_t b = 0; b < e.bins.size(); ++b) {
        if (b != 0) out.put(',');
        out << e.bins[b];
      }
      out << "],\"overflow\":" << e.overflow << ",\"total\":" << e.count
          << ",\"unit\":";
      write_json_string(out, e.unit);
      break;
  }
  out.put('}');
}

}  // namespace

void Registry::write_json(std::ostream& out) const {
  // Group names in alphabetical order; MetricKind values chosen to match.
  static constexpr const char* kGroups[] = {"counters", "gauges", "histograms",
                                            "stats", "time_weighted"};
  static constexpr MetricKind kGroupKind[] = {
      MetricKind::Counter, MetricKind::Gauge, MetricKind::Histogram,
      MetricKind::Stat, MetricKind::TimeWeighted};

  std::vector<const MetricEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const MetricEntry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricEntry* a, const MetricEntry* b) {
              return a->name < b->name;
            });

  out.put('{');
  for (std::size_t g = 0; g < 5; ++g) {
    if (g != 0) out.put(',');
    out.put('"');
    out << kGroups[g];
    out << "\":{";
    bool first = true;
    for (const MetricEntry* e : sorted) {
      if (e->kind != kGroupKind[g]) continue;
      if (!first) out.put(',');
      first = false;
      write_json_string(out, e->name);
      out.put(':');
      write_entry_json(out, *e);
    }
    out.put('}');
  }
  out.put('}');
}

}  // namespace hls::obs
