// Pluggable trace-sink interface.
//
// HybridSystem emits structured Events to every registered sink whose
// kind_mask() includes the event's kind. The union of all registered masks
// is cached by the system, so a run with no sinks (or none interested in a
// kind) pays exactly one branch per potential emission — the zero-cost-when-
// disabled requirement. Sinks must outlive the system run they observe.
#pragma once

#include "obs/event.hpp"

namespace hls::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Bitmask of kind_bit(EventKind) values this sink wants. Queried at
  /// registration time; must stay constant while registered.
  [[nodiscard]] virtual unsigned kind_mask() const = 0;

  virtual void on_event(const Event& event) = 0;
};

/// Receives nothing: its mask is empty, so the system never even builds an
/// Event on its behalf. Useful as a placeholder in sink plumbing tests.
class NullSink final : public TraceSink {
 public:
  [[nodiscard]] unsigned kind_mask() const override { return 0; }
  void on_event(const Event&) override {}
};

}  // namespace hls::obs
