// Time-series sampler rows: periodic snapshots of system load state.
//
// When SystemConfig::obs_sample_interval > 0, HybridSystem records one
// SampleRow every interval of simulated time: central and per-site CPU
// utilization, queue lengths, residency, shipped-in-flight counts and
// outage state. The series is what adaptive routing would tune off
// (SystemStateView::last_sample points at the newest row) and what
// write_series_csv renders as `csv,`-prefixed output for plotting.
//
// With SystemConfig::obs_resource_telemetry set, each row additionally
// carries the per-resource gauges (lock-manager wait queues, link in-flight
// messages, IO-device occupancy) and `extended` is true, which adds the
// matching columns to write_series_csv and Perfetto counter tracks to
// PerfettoSink. Default-off rows render exactly the historical columns.
#pragma once

#include <iosfwd>
#include <vector>

namespace hls::obs {

struct SiteSample {
  double utilization = 0.0;   ///< busy fraction since the last stats reset
  int cpu_queue = 0;          ///< jobs at the CPU incl. in service
  int resident = 0;           ///< class A txns executing locally
  int shipped_in_flight = 0;  ///< class A txns from here now at central
  bool up = true;
  // ---- extended per-resource gauges (zero unless row.extended) ----
  int lock_waiters = 0;    ///< blocked requests at this site's lock manager
  int link_in_flight = 0;  ///< messages in flight on this site's links, both ways
  int io_in_flight = 0;    ///< IO operations in progress at this site
};

struct SampleRow {
  double time = 0.0;
  double central_utilization = 0.0;
  int central_cpu_queue = 0;
  int central_resident = 0;
  bool central_up = true;
  int live_txns = 0;  ///< transactions in flight anywhere in the system
  // ---- extended per-resource gauges (zero unless extended) ----
  int central_lock_waiters = 0;
  int central_io_in_flight = 0;
  bool extended = false;  ///< obs_resource_telemetry was on for this run
  std::vector<SiteSample> sites;
};

/// Emits the series as `csv,`-prefixed rows (one header, one row per
/// sample) in the same convention the benches use for machine-readable
/// output. Per-site columns are flattened as site<k>_util / site<k>_queue.
/// Rows with `extended` set grow the per-resource gauge columns; plain rows
/// render byte-identically to the pre-telemetry format.
void write_series_csv(std::ostream& out, const std::vector<SampleRow>& rows);

}  // namespace hls::obs
