// Time-series sampler rows: periodic snapshots of system load state.
//
// When SystemConfig::obs_sample_interval > 0, HybridSystem records one
// SampleRow every interval of simulated time: central and per-site CPU
// utilization, queue lengths, residency, shipped-in-flight counts and
// outage state. The series is what adaptive routing would tune off
// (SystemStateView::last_sample points at the newest row) and what
// write_series_csv renders as `csv,`-prefixed output for plotting.
#pragma once

#include <iosfwd>
#include <vector>

namespace hls::obs {

struct SiteSample {
  double utilization = 0.0;   ///< busy fraction since the last stats reset
  int cpu_queue = 0;          ///< jobs at the CPU incl. in service
  int resident = 0;           ///< class A txns executing locally
  int shipped_in_flight = 0;  ///< class A txns from here now at central
  bool up = true;
};

struct SampleRow {
  double time = 0.0;
  double central_utilization = 0.0;
  int central_cpu_queue = 0;
  int central_resident = 0;
  bool central_up = true;
  int live_txns = 0;  ///< transactions in flight anywhere in the system
  std::vector<SiteSample> sites;
};

/// Emits the series as `csv,`-prefixed rows (one header, one row per
/// sample) in the same convention the benches use for machine-readable
/// output. Per-site columns are flattened as site<k>_util / site<k>_queue.
void write_series_csv(std::ostream& out, const std::vector<SampleRow>& rows);

}  // namespace hls::obs
