#include "obs/csv_sink.hpp"

#include <charconv>
#include <cmath>
#include <ostream>

namespace hls::obs {

const char* CsvSink::header() {
  return "kind,time,txn_id,class,route,home_site,runs,arrival,response_time,"
         "cause,ready_queue,cpu_service,io,network,lock_wait,auth,commit,"
         "stall,winner,winner_site,wasted_cpu,wasted_io,site,up,"
         "central_cpu_queue,live_txns";
}

namespace {

/// Events per formatting burst. Small enough to bound memory (~50 KiB),
/// large enough that the formatter runs cache-hot and its cost amortizes to
/// noise per event — the obs_overhead bench holds the whole sink under a 3%
/// slowdown of the simulation.
constexpr std::size_t kBatchSize = 256;

char* append(char* p, const char* s) {
  while (*s != '\0') *p++ = *s++;
  return p;
}

/// Fixed microsecond precision, composed from two integer conversions.
/// Every double in a trace row is a simulated time or duration in seconds,
/// so µs resolution loses nothing a reader could use, and integer to_chars
/// is several times cheaper than any double-to-decimal algorithm (shortest
/// round-trip emits up to 17 digits for accumulated times). Values outside
/// the simulation's range fall back to shortest round-trip.
char* append_num(char* p, double v) {
  // Exact-zero fast path: formatting dispatch, not a tolerance comparison.
  if (v == 0.0) {  // hlslint:allow(float-eq)
    *p++ = '0';
    return p;
  }
  if (v > 0.0 && v < 9.0e9) {
    const long long u = std::llround(v * 1e6);
    p = std::to_chars(p, p + 24, u / 1000000).ptr;
    auto frac = static_cast<int>(u % 1000000);
    if (frac != 0) {
      char d[6];
      for (int i = 5; i >= 0; --i) {
        d[i] = static_cast<char>('0' + frac % 10);
        frac /= 10;
      }
      int len = 6;
      while (d[len - 1] == '0') --len;
      *p++ = '.';
      for (int i = 0; i < len; ++i) *p++ = d[i];
    }
    return p;
  }
  return std::to_chars(p, p + 32, v).ptr;
}

char* append_int(char* p, long long v) {
  return std::to_chars(p, p + 24, v).ptr;
}

char* format_row(char* p, const Event& e) {
  p = append(p, event_kind_name(e.kind));
  *p++ = ',';
  p = append_num(p, e.time);
  if (e.kind == EventKind::Completion || e.kind == EventKind::Abort) {
    *p++ = ',';
    p = append_int(p, static_cast<long long>(e.txn));
    *p++ = ',';
    *p++ = e.cls == TxnClass::A ? 'A' : 'B';
    *p++ = ',';
    p = append(p, e.route == Route::Local ? "local" : "central");
    *p++ = ',';
    p = append_int(p, e.home_site);
    *p++ = ',';
    p = append_int(p, e.runs);
    *p++ = ',';
    p = append_num(p, e.arrival_time);
    *p++ = ',';
    p = append_num(p, e.response_time);
    *p++ = ',';
    p = append(p, abort_cause_name(e.cause));
    for (double ph : e.phase) {
      *p++ = ',';
      p = append_num(p, ph);
    }
    *p++ = ',';
    if (e.winner != kInvalidTxn) {
      p = append_int(p, static_cast<long long>(e.winner));
    }
    *p++ = ',';
    if (e.winner_site != -2) p = append_int(p, e.winner_site);
    *p++ = ',';
    p = append_num(p, e.wasted_cpu);
    *p++ = ',';
    p = append_num(p, e.wasted_io);
  } else {
    for (int i = 0; i < 20; ++i) {  // txn, cause, phase, provenance are empty
      *p++ = ',';
    }
  }
  *p++ = ',';
  p = append_int(p, e.site);
  *p++ = ',';
  *p++ = e.up ? '1' : '0';
  *p++ = ',';
  p = append_int(p, e.central_cpu_queue);
  *p++ = ',';
  p = append_int(p, e.live_txns);
  *p++ = '\n';
  return p;
}

}  // namespace

CsvSink::CsvSink(std::ostream& out, unsigned mask) : out_(out), mask_(mask) {
  out_ << header() << '\n';
  batch_.reserve(kBatchSize);
}

CsvSink::~CsvSink() { flush(); }

void CsvSink::on_event(const Event& e) {
  batch_.push_back(e);
  ++rows_;
  if (batch_.size() >= kBatchSize) flush();
}

void CsvSink::flush() {
  if (batch_.empty()) return;
  fmt_.clear();
  char buf[768];  // worst-case row is far under this
  for (const Event& e : batch_) {
    fmt_.append(buf, static_cast<std::size_t>(format_row(buf, e) - buf));
  }
  out_.write(fmt_.data(), static_cast<std::streamsize>(fmt_.size()));
  batch_.clear();
}

}  // namespace hls::obs
