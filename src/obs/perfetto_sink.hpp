// Chrome trace-event / Perfetto JSON exporter for the span tracer.
//
// Renders the causal span stream as a Chrome "trace events" JSON document
// ({"traceEvents":[...]}) loadable by Perfetto UI and chrome://tracing:
// the central complex and each site are processes (tracks), transactions
// are threads within them, settled phase segments are B/E duration pairs,
// and cross-site causality (ship, response, async update, retry, conflict)
// becomes s/f flow events. Aborts and faults render as instants.
//
// Determinism: timestamps are integer microseconds (llround of simulated
// seconds), flow ids come from a local counter in emission order, and
// process metadata is written at close() in sorted pid order — the bytes
// produced depend only on the event sequence, never on wall clock, pointer
// values or container iteration order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/sink.hpp"

namespace hls::obs {

class PerfettoSink final : public TraceSink {
 public:
  /// Writes the document prefix immediately; events stream as they arrive.
  /// Call close() (or let the destructor) to append process metadata and the
  /// closing brackets. The stream must outlive the sink.
  explicit PerfettoSink(std::ostream& out,
                       unsigned mask = kSpanEventKinds |
                                       kind_bit(EventKind::Completion) |
                                       kind_bit(EventKind::Abort) |
                                       kind_bit(EventKind::Fault) |
                                       kind_bit(EventKind::Sample));
  ~PerfettoSink() override;

  [[nodiscard]] unsigned kind_mask() const override { return mask_; }
  void on_event(const Event& event) override;

  /// Appends the process-name metadata and closes the JSON document.
  /// Idempotent; no events may be delivered afterwards.
  void close();

  [[nodiscard]] std::uint64_t spans_written() const { return spans_; }
  [[nodiscard]] std::uint64_t edges_written() const { return edges_; }
  [[nodiscard]] std::uint64_t counters_written() const { return counters_; }

 private:
  void begin_record();
  void note_pid(int pid);
  void counter(const char* name, long long ts, int pid, long long value);

  std::ostream& out_;
  unsigned mask_;
  bool first_ = true;
  bool closed_ = false;
  std::uint64_t spans_ = 0;
  std::uint64_t edges_ = 0;
  std::uint64_t counters_ = 0;
  std::uint64_t next_flow_id_ = 1;
  std::vector<int> pids_;  ///< every pid referenced, kept sorted and unique
};

}  // namespace hls::obs
