#include "obs/perfetto_sink.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/sample.hpp"

namespace hls::obs {

namespace {

/// Track id (site index, or kCentralTrack) to trace pid: central = 0,
/// site s = s + 1, so sorting pids puts the central complex first.
int track_pid(int track) { return track + 1; }

/// Integer microseconds: cheap, and — unlike shortest-round-trip doubles —
/// trivially byte-stable across libcs and optimization levels.
long long usec(double seconds) { return std::llround(seconds * 1e6); }

}  // namespace

PerfettoSink::PerfettoSink(std::ostream& out, unsigned mask)
    : out_(out), mask_(mask) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

PerfettoSink::~PerfettoSink() { close(); }

void PerfettoSink::begin_record() {
  if (!first_) out_ << ",";
  out_ << "\n";
  first_ = false;
}

void PerfettoSink::note_pid(int pid) {
  auto it = std::lower_bound(pids_.begin(), pids_.end(), pid);
  if (it == pids_.end() || *it != pid) pids_.insert(it, pid);
}

void PerfettoSink::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::Span: {
      const int pid = track_pid(e.track);
      note_pid(pid);
      const long long b = usec(e.span_begin);
      const long long t = usec(e.time);
      begin_record();
      out_ << "{\"name\":\"" << phase_name(e.span_phase)
           << "\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":" << b
           << ",\"pid\":" << pid << ",\"tid\":" << e.txn
           << ",\"args\":{\"run\":" << e.runs << "}}";
      begin_record();
      out_ << "{\"name\":\"" << phase_name(e.span_phase)
           << "\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":" << t
           << ",\"pid\":" << pid << ",\"tid\":" << e.txn << "}";
      ++spans_;
      break;
    }
    case EventKind::Edge: {
      const int src_pid = track_pid(e.src_track);
      const int dst_pid = track_pid(e.track);
      note_pid(src_pid);
      note_pid(dst_pid);
      const std::uint64_t id = next_flow_id_++;
      begin_record();
      out_ << "{\"name\":\"" << edge_kind_name(e.edge)
           << "\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << id
           << ",\"ts\":" << usec(e.src_time) << ",\"pid\":" << src_pid
           << ",\"tid\":" << (e.edge == EdgeKind::Conflict ? e.winner : e.txn)
           << "}";
      begin_record();
      out_ << "{\"name\":\"" << edge_kind_name(e.edge)
           << "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id
           << ",\"ts\":" << usec(e.time) << ",\"pid\":" << dst_pid
           << ",\"tid\":" << e.txn << "}";
      ++edges_;
      break;
    }
    case EventKind::Abort: {
      const int pid = track_pid(e.home_site);
      note_pid(pid);
      begin_record();
      out_ << "{\"name\":\"abort " << abort_cause_name(e.cause)
           << "\",\"cat\":\"abort\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
           << usec(e.time) << ",\"pid\":" << pid << ",\"tid\":" << e.txn
           << ",\"args\":{\"cause\":\"" << abort_cause_name(e.cause)
           << "\",\"winner\":" << e.winner
           << ",\"winner_site\":" << e.winner_site
           << ",\"wasted_cpu_us\":" << usec(e.wasted_cpu)
           << ",\"wasted_io_us\":" << usec(e.wasted_io) << "}}";
      break;
    }
    case EventKind::Completion: {
      const int pid = track_pid(e.home_site);
      note_pid(pid);
      begin_record();
      out_ << "{\"name\":\"commit\",\"cat\":\"txn\",\"ph\":\"i\",\"s\":\"t\","
              "\"ts\":"
           << usec(e.time) << ",\"pid\":" << pid << ",\"tid\":" << e.txn
           << ",\"args\":{\"runs\":" << e.runs
           << ",\"response_us\":" << usec(e.response_time)
           << ",\"wasted_cpu_us\":" << usec(e.wasted_cpu)
           << ",\"wasted_io_us\":" << usec(e.wasted_io) << "}}";
      break;
    }
    case EventKind::Sample: {
      // Counter tracks ('C' records) next to the span tracks: the CPU queue
      // and live-transaction gauges always, the per-resource gauges when the
      // run carried obs_resource_telemetry. Values come from the full
      // sampler row (valid for the duration of this call).
      if (e.sample == nullptr) break;
      const SampleRow& row = *e.sample;
      const long long ts = usec(e.time);
      counter("cpu_queue", ts, track_pid(kCentralTrack), row.central_cpu_queue);
      counter("live_txns", ts, track_pid(kCentralTrack), row.live_txns);
      if (row.extended) {
        counter("lock_waiters", ts, track_pid(kCentralTrack),
                row.central_lock_waiters);
        counter("io_in_flight", ts, track_pid(kCentralTrack),
                row.central_io_in_flight);
      }
      for (std::size_t s = 0; s < row.sites.size(); ++s) {
        const SiteSample& site = row.sites[s];
        const int pid = track_pid(static_cast<int>(s));
        counter("cpu_queue", ts, pid, site.cpu_queue);
        if (row.extended) {
          counter("lock_waiters", ts, pid, site.lock_waiters);
          counter("link_in_flight", ts, pid, site.link_in_flight);
          counter("io_in_flight", ts, pid, site.io_in_flight);
        }
      }
      break;
    }
    case EventKind::Fault: {
      const int pid = track_pid(e.site);
      note_pid(pid);
      begin_record();
      out_ << "{\"name\":\"" << (e.up ? "recover" : "crash")
           << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
           << usec(e.time) << ",\"pid\":" << pid << ",\"tid\":0}";
      break;
    }
    default:
      break;
  }
}

void PerfettoSink::counter(const char* name, long long ts, int pid,
                           long long value) {
  note_pid(pid);
  begin_record();
  out_ << "{\"name\":\"" << name << "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":"
       << ts << ",\"pid\":" << pid << ",\"tid\":0,\"args\":{\"value\":" << value
       << "}}";
  ++counters_;
}

void PerfettoSink::close() {
  if (closed_) return;
  closed_ = true;
  for (int pid : pids_) {
    begin_record();
    out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"";
    if (pid == 0) {
      out_ << "central complex";
    } else {
      out_ << "site " << (pid - 1);
    }
    out_ << "\"}}";
    begin_record();
    out_ << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
  }
  out_ << "\n]}\n";
  out_.flush();
}

}  // namespace hls::obs
