#include "obs/sample.hpp"

#include <ostream>

namespace hls::obs {

void write_series_csv(std::ostream& out, const std::vector<SampleRow>& rows) {
  const std::size_t num_sites = rows.empty() ? 0 : rows.front().sites.size();
  const bool extended = !rows.empty() && rows.front().extended;
  out << "csv,time,central_util,central_queue,central_resident,central_up,"
         "live_txns";
  if (extended) {
    out << ",central_lock_waiters,central_io";
  }
  for (std::size_t s = 0; s < num_sites; ++s) {
    out << ",site" << s << "_util,site" << s << "_queue,site" << s
        << "_resident,site" << s << "_shipped,site" << s << "_up";
    if (extended) {
      out << ",site" << s << "_lock_waiters,site" << s << "_link,site" << s
          << "_io";
    }
  }
  out << '\n';
  for (const SampleRow& row : rows) {
    out << "csv," << row.time << ',' << row.central_utilization << ','
        << row.central_cpu_queue << ',' << row.central_resident << ','
        << (row.central_up ? 1 : 0) << ',' << row.live_txns;
    if (extended) {
      out << ',' << row.central_lock_waiters << ',' << row.central_io_in_flight;
    }
    for (const SiteSample& site : row.sites) {
      out << ',' << site.utilization << ',' << site.cpu_queue << ','
          << site.resident << ',' << site.shipped_in_flight << ','
          << (site.up ? 1 : 0);
      if (extended) {
        out << ',' << site.lock_waiters << ',' << site.link_in_flight << ','
            << site.io_in_flight;
      }
    }
    out << '\n';
  }
}

}  // namespace hls::obs
