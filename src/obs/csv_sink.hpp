// CSV trace sink: one structured row per event, all kinds in one stream.
//
// The format is self-describing (a `kind` discriminator column plus the
// union of all kind fields); unlike the legacy core/trace.cpp completion
// format it also carries aborts, faults, samples and the per-phase
// breakdown. Readers filter on the first column.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace hls::obs {

class CsvSink final : public TraceSink {
 public:
  /// Writes the header immediately; rows follow as events arrive. on_event
  /// only copies the event — formatting and stream writes happen in bulk
  /// once a small internal batch fills, keeping the per-event cost on the
  /// simulation's hot path to a struct copy. Call flush() (or let the
  /// destructor) before reading the stream. The stream must outlive the sink.
  explicit CsvSink(std::ostream& out, unsigned mask = kScalarEventKinds);
  ~CsvSink() override;

  [[nodiscard]] unsigned kind_mask() const override { return mask_; }
  void on_event(const Event& event) override;

  /// Formats all batched events and pushes them to the stream.
  void flush();

  [[nodiscard]] std::uint64_t rows_written() const { return rows_; }

  /// Column header, exposed for readers of the produced files.
  static const char* header();

 private:
  std::ostream& out_;
  unsigned mask_;
  std::uint64_t rows_ = 0;
  std::vector<Event> batch_;  ///< events not yet formatted
  std::string fmt_;           ///< formatting scratch, reused across flushes
};

}  // namespace hls::obs
