// Phase taxonomy and per-transaction phase timeline.
//
// The analytic model (docs/MODEL.md) decomposes response time into CPU
// queueing, CPU service, I/O, network transit, lock wait, authentication and
// commit terms; this header gives the simulator the same decomposition per
// transaction. A PhaseTimeline accumulates wall-clock (simulated) seconds
// into one bucket per phase as the transaction moves through the protocol,
// maintaining the invariant
//
//     sum over phases of acc[p]  ==  completion_time - arrival_time
//
// by construction: the timeline is a telescoping sequence of settle() calls,
// each charging the segment [mark, t] to exactly one phase. Asynchronous
// waits record a `pending` phase hint at arm time so that interrupted
// segments (crash reclaim, ship timeout) can be settled retrospectively.
//
// Header-only and dependency-free so hybrid/transaction.hpp can embed a
// timeline without a library cycle (the same pattern as routing/strategy.hpp).
#pragma once

#include <cstdint>

namespace hls::obs {

/// Where a transaction's time goes. `Stall` covers dead time that is not
/// protocol progress: the ship-timeout ladder (waiting for a timer to expire
/// on a possibly-dead central incarnation), outage residence between a crash
/// and the recovery restart, and configured abort-restart backoff.
enum class Phase : std::uint8_t {
  ReadyQueue,  ///< waiting in a CPU queue behind other bursts
  CpuService,  ///< executing instructions (init, calls, forwarding, acks)
  Io,          ///< setup and per-call disk I/O
  Network,     ///< link transit (ship, remote calls, response delivery)
  LockWait,    ///< blocked in a lock queue
  Auth,        ///< authentication round trip (down + local check + up)
  Commit,      ///< commit-message CPU processing
  Stall,       ///< timeout ladder / outage / restart backoff residence
  kCount,
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

[[nodiscard]] constexpr const char* phase_name(Phase p) {
  switch (p) {
    case Phase::ReadyQueue: return "ready_queue";
    case Phase::CpuService: return "cpu_service";
    case Phase::Io: return "io";
    case Phase::Network: return "network";
    case Phase::LockWait: return "lock_wait";
    case Phase::Auth: return "auth";
    case Phase::Commit: return "commit";
    case Phase::Stall: return "stall";
    case Phase::kCount: break;
  }
  return "?";
}

/// Accumulates one transaction's response time into phase buckets. Pure
/// arithmetic: no events, no RNG, no allocation — safe to keep always-on
/// without perturbing the simulation.
struct PhaseTimeline {
  double acc[kPhaseCount] = {};
  double mark = 0.0;          ///< start of the segment being timed
  Phase pending = Phase::ReadyQueue;  ///< phase hint for the open segment

  void begin(double t) { mark = t; }

  /// Charges [mark, t] to phase `p` and advances the mark.
  void settle(Phase p, double t) {
    acc[static_cast<int>(p)] += t - mark;
    mark = t;
  }

  /// Settles a CPU burst that completed at `t` after `service` seconds of
  /// service: the leading queue wait goes to ReadyQueue, the trailing
  /// service to `service_phase` (CpuService or Commit).
  void settle_burst(Phase service_phase, double service, double t) {
    acc[static_cast<int>(Phase::ReadyQueue)] += (t - mark) - service;
    acc[static_cast<int>(service_phase)] += service;
    mark = t;
  }

  /// Settles the open segment to the pending hint (force-abort, crash).
  void interrupt(double t) { settle(pending, t); }

  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (double a : acc) {
      s += a;
    }
    return s;
  }

  [[nodiscard]] double operator[](Phase p) const {
    return acc[static_cast<int>(p)];
  }
};

}  // namespace hls::obs
