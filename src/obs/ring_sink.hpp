// In-memory ring-buffer sink: keeps the last `capacity` events.
//
// The test battery's workhorse — bounded memory, no I/O, and a drop counter
// so assertions can tell "nothing happened" from "it scrolled off".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/sink.hpp"
#include "util/assert.hpp"

namespace hls::obs {

class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity, unsigned mask = kScalarEventKinds)
      : capacity_(capacity), mask_(mask) {
    HLS_ASSERT(capacity > 0, "RingSink needs a positive capacity");
    buffer_.reserve(capacity);
  }

  [[nodiscard]] unsigned kind_mask() const override { return mask_; }

  void on_event(const Event& event) override {
    ++seen_;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(event);
      return;
    }
    buffer_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const {
    std::vector<Event> out;
    out.reserve(buffer_.size());
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      out.push_back(buffer_[(head_ + i) % buffer_.size()]);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t total_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  void clear() {
    buffer_.clear();
    head_ = 0;
    seen_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  unsigned mask_;
  std::vector<Event> buffer_;
  std::size_t head_ = 0;  ///< index of the oldest retained event once full
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hls::obs
