// Structured trace events emitted by HybridSystem to registered sinks.
//
// One flat POD covers all event kinds; fields not meaningful for a kind are
// left at their defaults. Header-only: included by hybrid (emission) and by
// the sink implementations without a library cycle.
#pragma once

#include <cstdint>

#include "hybrid/transaction.hpp"
#include "obs/phase.hpp"

namespace hls::obs {

struct SampleRow;

enum class EventKind : std::uint8_t {
  Completion,  ///< a transaction committed (phase breakdown attached)
  Abort,       ///< a transaction aborted and will rerun
  Fault,       ///< a node crashed or recovered
  Sample,      ///< the time-series sampler took a snapshot
  Span,        ///< one settled phase segment of one transaction run
  Edge,        ///< a causal cross-track edge (ship, response, update, retry)
  kCount,
};

inline constexpr int kEventKindCount = static_cast<int>(EventKind::kCount);

[[nodiscard]] constexpr unsigned kind_bit(EventKind k) {
  return 1u << static_cast<unsigned>(k);
}

inline constexpr unsigned kAllEventKinds = (1u << kEventKindCount) - 1u;

/// The four coarse per-transaction/system kinds that existed before span
/// tracing. Row-oriented sinks (CSV, ring) default to this mask so that
/// enabling a span exporter elsewhere never floods them.
inline constexpr unsigned kScalarEventKinds =
    kind_bit(EventKind::Completion) | kind_bit(EventKind::Abort) |
    kind_bit(EventKind::Fault) | kind_bit(EventKind::Sample);

/// The two fine-grained kinds produced only when a registered sink asks.
inline constexpr unsigned kSpanEventKinds =
    kind_bit(EventKind::Span) | kind_bit(EventKind::Edge);

[[nodiscard]] constexpr const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Completion: return "completion";
    case EventKind::Abort: return "abort";
    case EventKind::Fault: return "fault";
    case EventKind::Sample: return "sample";
    case EventKind::Span: return "span";
    case EventKind::Edge: return "edge";
    case EventKind::kCount: break;
  }
  return "?";
}

[[nodiscard]] constexpr const char* abort_cause_name(AbortCause cause) {
  switch (cause) {
    case AbortCause::LocalPreempted: return "preempted";
    case AbortCause::CentralInvalidated: return "invalidated";
    case AbortCause::AuthRefused: return "auth_refused";
    case AbortCause::Deadlock: return "deadlock";
    case AbortCause::ShipTimeout: return "ship_timeout";
    case AbortCause::Crash: return "crash";
    case AbortCause::kCount: break;
  }
  return "-";
}

/// Kinds of causal cross-track edges between span endpoints.
enum class EdgeKind : std::uint8_t {
  Ship,         ///< home site hands a class A txn to the central complex
  Response,     ///< commit/response message travelling back to the home site
  AsyncUpdate,  ///< asynchronous update batch from a site to the central copy
  Retry,        ///< an aborted run to the start of its next attempt
  Conflict,     ///< winner transaction to the victim it aborted
  kCount,
};

[[nodiscard]] constexpr const char* edge_kind_name(EdgeKind e) {
  switch (e) {
    case EdgeKind::Ship: return "ship";
    case EdgeKind::Response: return "response";
    case EdgeKind::AsyncUpdate: return "async_update";
    case EdgeKind::Retry: return "retry";
    case EdgeKind::Conflict: return "conflict";
    case EdgeKind::kCount: break;
  }
  return "?";
}

/// Track identifier convention for spans and edges: site index for a local
/// track, kCentralTrack for the central complex.
inline constexpr int kCentralTrack = -1;

struct Event {
  EventKind kind = EventKind::Completion;
  double time = 0.0;  ///< simulated time of the event (spans/edges: end time)

  // ---- Completion / Abort / Span / Edge ----
  TxnId txn = kInvalidTxn;
  TxnClass cls = TxnClass::A;
  Route route = Route::Local;
  int home_site = 0;
  int runs = 0;                ///< executions so far (completions: total)
  double arrival_time = 0.0;
  double response_time = 0.0;  ///< completions only
  AbortCause cause = AbortCause::kCount;  ///< aborts only; kCount otherwise
  double phase[kPhaseCount] = {};  ///< completions: totals; aborts: attempt
  int aborts[static_cast<int>(AbortCause::kCount)] = {};

  // ---- Abort provenance (Abort events; winner also on Conflict edges) ----
  TxnId winner = kInvalidTxn;  ///< transaction that won the conflict, if any
  int winner_site = -2;        ///< winner's home site; -2 = no winner
  double wasted_cpu = 0.0;     ///< CPU seconds burned by the aborted attempt
  double wasted_io = 0.0;      ///< I/O seconds burned by the aborted attempt

  // ---- Span ----
  Phase span_phase = Phase::kCount;  ///< which phase this segment settled to
  double span_begin = 0.0;           ///< segment start; end is `time`
  int track = 0;                     ///< site index, or kCentralTrack

  // ---- Edge (src endpoint; dst endpoint is time/track above) ----
  EdgeKind edge = EdgeKind::kCount;
  double src_time = 0.0;
  int src_track = 0;

  // ---- Fault ----
  int site = -1;   ///< crashed/recovered site; -1 = central complex
  bool up = true;  ///< false = crash, true = recovery

  // ---- Sample (summary; the full row lives in the sampler series) ----
  int central_cpu_queue = 0;
  int live_txns = 0;
  /// The full sampler row behind this Sample event, valid only for the
  /// duration of the on_event call (it points into the live series). Counter
  /// exporters (PerfettoSink) read the per-resource gauges from here.
  const SampleRow* sample = nullptr;
};

}  // namespace hls::obs
