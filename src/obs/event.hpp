// Structured trace events emitted by HybridSystem to registered sinks.
//
// One flat POD covers all event kinds; fields not meaningful for a kind are
// left at their defaults. Header-only: included by hybrid (emission) and by
// the sink implementations without a library cycle.
#pragma once

#include <cstdint>

#include "hybrid/transaction.hpp"
#include "obs/phase.hpp"

namespace hls::obs {

enum class EventKind : std::uint8_t {
  Completion,  ///< a transaction committed (phase breakdown attached)
  Abort,       ///< a transaction aborted and will rerun
  Fault,       ///< a node crashed or recovered
  Sample,      ///< the time-series sampler took a snapshot
  kCount,
};

inline constexpr int kEventKindCount = static_cast<int>(EventKind::kCount);

[[nodiscard]] constexpr unsigned kind_bit(EventKind k) {
  return 1u << static_cast<unsigned>(k);
}

inline constexpr unsigned kAllEventKinds = (1u << kEventKindCount) - 1u;

[[nodiscard]] constexpr const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Completion: return "completion";
    case EventKind::Abort: return "abort";
    case EventKind::Fault: return "fault";
    case EventKind::Sample: return "sample";
    case EventKind::kCount: break;
  }
  return "?";
}

[[nodiscard]] constexpr const char* abort_cause_name(AbortCause cause) {
  switch (cause) {
    case AbortCause::LocalPreempted: return "preempted";
    case AbortCause::CentralInvalidated: return "invalidated";
    case AbortCause::AuthRefused: return "auth_refused";
    case AbortCause::Deadlock: return "deadlock";
    case AbortCause::ShipTimeout: return "ship_timeout";
    case AbortCause::Crash: return "crash";
    case AbortCause::kCount: break;
  }
  return "-";
}

struct Event {
  EventKind kind = EventKind::Completion;
  double time = 0.0;  ///< simulated time of the event

  // ---- Completion / Abort ----
  TxnId txn = kInvalidTxn;
  TxnClass cls = TxnClass::A;
  Route route = Route::Local;
  int home_site = 0;
  int runs = 0;                ///< executions so far (completions: total)
  double arrival_time = 0.0;
  double response_time = 0.0;  ///< completions only
  AbortCause cause = AbortCause::kCount;  ///< aborts only; kCount otherwise
  double phase[kPhaseCount] = {};         ///< completions only
  int aborts[static_cast<int>(AbortCause::kCount)] = {};

  // ---- Fault ----
  int site = -1;   ///< crashed/recovered site; -1 = central complex
  bool up = true;  ///< false = crash, true = recovery

  // ---- Sample (summary; the full row lives in the sampler series) ----
  int central_cpu_queue = 0;
  int live_txns = 0;
};

}  // namespace hls::obs
