// By-name construction of routing strategies, used by the experiment harness
// and the examples so strategy sets can be listed as data.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/params.hpp"
#include "routing/strategy.hpp"

namespace hls {

/// Identifiers of the strategies studied in the paper.
enum class StrategyKind {
  NoLoadSharing,      ///< always local (the "no load sharing" baseline)
  AlwaysCentral,      ///< fully centralized (sanity baseline)
  StaticOptimal,      ///< probabilistic with model-optimized p_ship
  StaticProbability,  ///< probabilistic with caller-chosen p_ship
  MeasuredRt,         ///< §3.2.3 heuristic (curve A)
  QueueLength,        ///< §3.2.4 basic heuristic (curve B)
  UtilThreshold,      ///< §3.2.4 tuned heuristic (Figures 4.4/4.7)
  MinIncomingQueue,   ///< §3.2.1(a) (curve C)
  MinIncomingNsys,    ///< §3.2.1(b) (curve D)
  MinAverageQueue,    ///< §3.2.2 on queue lengths (curve E)
  MinAverageNsys,     ///< §3.2.2 on number in system (curve F, best)
};

struct StrategySpec {
  StrategyKind kind = StrategyKind::NoLoadSharing;
  /// p_ship for StaticProbability, threshold for UtilThreshold.
  double parameter = 0.0;
  /// Wrap the strategy in FailureAwareStrategy (degrade to local-only while
  /// the central complex is down or the state information is stale).
  bool failure_aware = false;
  /// Staleness limit for the wrapper, seconds; 0 = reachability signal only.
  double failsafe_max_info_age = 0.0;
  /// Wrap the strategy in AdaptiveControllerStrategy (closed-loop re-tuning
  /// on the review epoch; routing/adaptive.hpp).
  bool adaptive = false;
  /// Spec-level review interval override, seconds; 0 = use the config's
  /// adapt_interval key.
  double adapt_interval_override = 0.0;
};

/// Builds a strategy. `base` supplies the model parameters for the analytic
/// strategies and the arrival rates used by StaticOptimal's optimization;
/// `seed` feeds the probabilistic strategies.
[[nodiscard]] std::unique_ptr<RoutingStrategy> make_strategy(
    const StrategySpec& spec, const ModelParams& base, std::uint64_t seed);

/// Parses "no-load-sharing", "static-optimal", "static:0.3",
/// "measured-rt", "queue-length", "util-threshold:-0.2",
/// "min-incoming-queue", "min-incoming-nsys", "min-average-queue",
/// "min-average-nsys", "always-central". A "failsafe:" or
/// "failsafe@<max_info_age>:" prefix wraps the inner strategy in
/// FailureAwareStrategy (e.g. "failsafe:min-average-nsys",
/// "failsafe@2.5:queue-length"); an "adapt:" or "adapt@<interval>:" prefix
/// wraps it in AdaptiveControllerStrategy (e.g. "adapt:util-threshold:0",
/// "adapt@1.5:failsafe:min-average-nsys"). Wrap order is always base ->
/// adapt -> failsafe regardless of prefix order. Aborts on unknown names,
/// quoting the offending token.
[[nodiscard]] StrategySpec parse_strategy_spec(const std::string& text);

/// All strategy kinds in presentation order with display labels.
[[nodiscard]] std::vector<std::pair<StrategySpec, std::string>>
paper_strategy_set();

}  // namespace hls
