#include "routing/adaptive.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

#include "util/assert.hpp"

namespace hls {
namespace {

std::string format_evidence(const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

const char* controller_decision_kind_name(ControllerDecision::Kind kind) {
  switch (kind) {
    case ControllerDecision::Kind::ThresholdStep: return "threshold-step";
    case ControllerDecision::Kind::BackoffOn: return "backoff-on";
    case ControllerDecision::Kind::BackoffOff: return "backoff-off";
    case ControllerDecision::Kind::LockWaitOn: return "lockwait-on";
    case ControllerDecision::Kind::LockWaitOff: return "lockwait-off";
  }
  return "?";
}

AdaptiveControllerStrategy::AdaptiveControllerStrategy(
    std::unique_ptr<RoutingStrategy> base, double interval_override)
    : base_(std::move(base)), interval_override_(interval_override) {
  HLS_ASSERT(base_ != nullptr, "adaptive wrapper needs a base strategy");
}

Route AdaptiveControllerStrategy::decide(const Transaction& txn,
                                         const SystemStateView& view) {
  // Lever (b): while refusal wasted-work dominates, keep everything home.
  if (backoff_) return Route::Local;
  return base_->decide(txn, view);
}

std::string AdaptiveControllerStrategy::name() const {
  return "adapt(" + base_->name() + ")";
}

void AdaptiveControllerStrategy::bind(int num_sites,
                                      const ControllerParams& params) {
  HLS_ASSERT(num_sites > 0, "adaptive controller bound without sites");
  params_ = params;
  bound_ = true;
  has_prev_ = false;
  prev_ = ControllerFeed{};
  std::size_t buckets = 1;
  if (params_.threshold_step > 0.0 &&
      params_.threshold_max > params_.threshold_min) {
    buckets = static_cast<std::size_t>(
                  std::llround((params_.threshold_max - params_.threshold_min) /
                               params_.threshold_step)) +
              1;
  }
  bucket_rt_.assign(buckets, 0.0);
  bucket_visits_.assign(buckets, 0);
  backoff_ = false;
  site_policies_.assign(static_cast<std::size_t>(num_sites),
                        CollisionPolicy::OptimisticAbort);
  hot_streak_.assign(static_cast<std::size_t>(num_sites), 0);
  cool_streak_.assign(static_cast<std::size_t>(num_sites), 0);
  decisions_.clear();
  review_times_.clear();
}

void AdaptiveControllerStrategy::on_review(const ControllerFeed& feed) {
  HLS_ASSERT(bound_, "adaptive controller reviewed before bind()");
  review_times_.push_back(feed.now);
  if (!has_prev_) {
    // First review only establishes the baseline.
    prev_ = feed;
    has_prev_ = true;
    return;
  }
  if (feed.completions_a() < prev_.completions_a() ||
      feed.aborts_total() < prev_.aborts_total()) {
    // A new measurement window reset the cumulative books; re-baseline
    // without deciding anything off the bogus negative deltas.
    prev_ = feed;
    return;
  }
  review_backoff(feed);
  review_threshold(feed);
  review_collision_policies(feed);
  prev_ = feed;
}

CollisionPolicy AdaptiveControllerStrategy::site_policy(int site) const {
  const auto idx = static_cast<std::size_t>(site);
  return site >= 0 && idx < site_policies_.size()
             ? site_policies_[idx]
             : CollisionPolicy::OptimisticAbort;
}

void AdaptiveControllerStrategy::review_threshold(const ControllerFeed& feed) {
  TunableThreshold* tunable = base_->tunable_threshold();
  if (tunable == nullptr || backoff_ || bucket_rt_.size() < 2) return;
  const std::uint64_t epoch_n = feed.completions_a() - prev_.completions_a();
  if (epoch_n < params_.min_epoch_completions) return;
  const std::uint64_t shipped_n =
      feed.completions_shipped_a - prev_.completions_shipped_a;
  const double epoch_rt = (feed.rt_a_sum() - prev_.rt_a_sum()) /
                          static_cast<double>(epoch_n);

  const double old_threshold = tunable->threshold();
  const std::int64_t last = static_cast<std::int64_t>(bucket_rt_.size()) - 1;
  std::int64_t idx = std::llround((old_threshold - params_.threshold_min) /
                                  params_.threshold_step);
  if (idx < 0) idx = 0;
  if (idx > last) idx = last;
  const auto i = static_cast<std::size_t>(idx);

  if (shipped_n == 0) {
    // The epoch exercised no shipping (an outage veto, or F parked above
    // the ship region), so the observation says nothing about this bucket.
    // Leave the estimates alone; probe an untried lower bucket if one
    // remains, otherwise hold where we are.
    if (idx > 0 && bucket_visits_[i - 1] == 0) {
      const double next = params_.threshold_min +
                          static_cast<double>(idx - 1) * params_.threshold_step;
      record(ControllerDecision::Kind::ThresholdStep, feed.now, -1,
             old_threshold, next,
             format_evidence(
                 "no shipped class-A completions in epoch (n=%llu); probing "
                 "F=%.2f",
                 static_cast<unsigned long long>(epoch_n), next));
      tunable->set_threshold(next);
    }
    return;
  }

  // Fold this epoch's observation into the estimate for the bucket the
  // system just ran at. The EWMA lets revisits both average out epoch noise
  // and track the load as it shifts between scenario phases.
  bucket_rt_[i] = bucket_visits_[i] == 0 ? epoch_rt
                                         : 0.5 * bucket_rt_[i] + 0.5 * epoch_rt;
  ++bucket_visits_[i];

  // Move one step per epoch: keep exploring downward (toward shipping —
  // the direction the paper's fig 4.4 optima lie) while untried buckets
  // remain, then settle on whichever visited neighbor's estimated class-A
  // response time beats the current bucket's. Ties hold still, so the
  // lever parks once estimates level out.
  std::int64_t target = idx;
  std::string evidence;
  if (idx > 0 && bucket_visits_[i - 1] == 0) {
    target = idx - 1;
    evidence = format_evidence(
        "exploring unvisited F=%.2f (epoch class-A rt %.6f at F=%.2f, n=%llu)",
        params_.threshold_min + static_cast<double>(target) * params_.threshold_step,
        epoch_rt, old_threshold, static_cast<unsigned long long>(epoch_n));
  } else {
    double best = bucket_rt_[i];
    if (idx > 0 && bucket_visits_[i - 1] > 0 && bucket_rt_[i - 1] < best) {
      best = bucket_rt_[i - 1];
      target = idx - 1;
    }
    if (idx < last && bucket_visits_[i + 1] > 0 && bucket_rt_[i + 1] < best) {
      target = idx + 1;
    }
    if (target != idx) {
      evidence = format_evidence(
          "estimated class-A rt %.6f at F=%.2f beats %.6f at F=%.2f "
          "(epoch n=%llu)",
          bucket_rt_[static_cast<std::size_t>(target)],
          params_.threshold_min + static_cast<double>(target) * params_.threshold_step,
          bucket_rt_[i], old_threshold,
          static_cast<unsigned long long>(epoch_n));
    }
  }
  if (target == idx) return;
  const double next =
      params_.threshold_min + static_cast<double>(target) * params_.threshold_step;
  record(ControllerDecision::Kind::ThresholdStep, feed.now, -1, old_threshold,
         next, std::move(evidence));
  tunable->set_threshold(next);
}

void AdaptiveControllerStrategy::review_backoff(const ControllerFeed& feed) {
  const int refused = static_cast<int>(AbortCause::AuthRefused);
  const std::uint64_t epoch_refusals =
      feed.aborts_by_cause[refused] - prev_.aborts_by_cause[refused];
  const double epoch_refusal_waste =
      (feed.wasted_cpu_by_cause[refused] + feed.wasted_io_by_cause[refused]) -
      (prev_.wasted_cpu_by_cause[refused] + prev_.wasted_io_by_cause[refused]);
  const double epoch_waste = feed.wasted_total() - prev_.wasted_total();
  if (!backoff_) {
    if (epoch_refusals >= params_.refusal_floor && epoch_waste > 0.0 &&
        epoch_refusal_waste > params_.refusal_frac * epoch_waste) {
      backoff_ = true;
      record(ControllerDecision::Kind::BackoffOn, feed.now, -1, 0.0, 1.0,
             format_evidence(
                 "auth-refused wasted %.4fs of %.4fs epoch wasted work "
                 "(%llu refusals)",
                 epoch_refusal_waste, epoch_waste,
                 static_cast<unsigned long long>(epoch_refusals)));
    }
    return;
  }
  // Release with hysteresis at half the trigger fraction so the controller
  // doesn't chatter around the boundary.
  if (epoch_refusals == 0 || epoch_waste <= 0.0 ||
      epoch_refusal_waste <= 0.5 * params_.refusal_frac * epoch_waste) {
    backoff_ = false;
    record(ControllerDecision::Kind::BackoffOff, feed.now, -1, 1.0, 0.0,
           format_evidence(
               "auth-refused wasted %.4fs of %.4fs epoch wasted work "
               "(%llu refusals)",
               epoch_refusal_waste, epoch_waste,
               static_cast<unsigned long long>(epoch_refusals)));
  }
}

void AdaptiveControllerStrategy::review_collision_policies(
    const ControllerFeed& feed) {
  const int n = static_cast<int>(site_policies_.size());
  if (feed.num_sites < n) return;  // matrix not yet sized; nothing to read
  for (int victim = 0; victim < n; ++victim) {
    std::uint64_t hottest = 0;
    int hottest_winner = -1;
    for (int winner = 0; winner <= feed.num_sites; ++winner) {
      const std::uint64_t delta =
          feed.conflict(victim, winner) - prev_.conflict(victim, winner);
      if (delta > hottest) {
        hottest = delta;
        hottest_winner = winner;
      }
    }
    const auto v = static_cast<std::size_t>(victim);
    if (hottest >= params_.hot_conflicts) {
      ++hot_streak_[v];
      cool_streak_[v] = 0;
    } else {
      hot_streak_[v] = 0;
      if (2 * hottest < params_.hot_conflicts) {
        ++cool_streak_[v];
      } else {
        cool_streak_[v] = 0;
      }
    }
    const std::string winner_label =
        hottest_winner < 0 ? std::string("none")
        : hottest_winner == feed.num_sites
            ? std::string("central")
            : "site " + std::to_string(hottest_winner);
    if (site_policies_[v] == CollisionPolicy::OptimisticAbort &&
        hot_streak_[v] >= 2) {
      site_policies_[v] = CollisionPolicy::LockWait;
      record(ControllerDecision::Kind::LockWaitOn, feed.now, victim, 0.0, 1.0,
             format_evidence(
                 "hot victim x winner pair (site %d x %s) +%llu aborts/epoch "
                 "for 2 consecutive epochs",
                 victim, winner_label.c_str(),
                 static_cast<unsigned long long>(hottest)));
    } else if (site_policies_[v] == CollisionPolicy::LockWait &&
               cool_streak_[v] >= 2) {
      site_policies_[v] = CollisionPolicy::OptimisticAbort;
      record(ControllerDecision::Kind::LockWaitOff, feed.now, victim, 1.0, 0.0,
             format_evidence(
                 "hottest victim x winner pair cooled to +%llu aborts/epoch "
                 "for 2 consecutive epochs",
                 static_cast<unsigned long long>(hottest)));
    }
  }
}

void AdaptiveControllerStrategy::record(ControllerDecision::Kind kind,
                                        double time, int site,
                                        double old_value, double new_value,
                                        std::string evidence) {
  ControllerDecision d;
  d.time = time;
  d.kind = kind;
  d.site = site;
  d.old_value = old_value;
  d.new_value = new_value;
  d.evidence = std::move(evidence);
  decisions_.push_back(std::move(d));
}

}  // namespace hls
