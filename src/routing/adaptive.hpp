// Closed-loop adaptive routing controller (ROADMAP item 4).
//
// AdaptiveControllerStrategy wraps any base RoutingStrategy and, on a
// deterministic sim-time review epoch, consumes the abort-provenance
// sensors PR 4 built (typed abort causes, victim x winner conflict matrix,
// wasted-work ledgers) plus the class-A response-time books to re-tune
// itself with three levers:
//
//   (a) hill-climb the ship threshold of a TunableThreshold base strategy
//       on observed class-A response time, automating the fig 4.4 hand
//       sweep: F is quantized to the threshold_step grid over
//       [threshold_min, threshold_max], each data epoch folds the epoch's
//       class-A mean response into a per-bucket estimate (EWMA, so noise
//       averages out across revisits and the estimate tracks load shifts),
//       and the controller moves one step per epoch — first exploring
//       unvisited neighbors (lower F first, the direction the paper's
//       optima lie), then settling on the neighbor with the best estimate;
//   (b) back off shipping entirely while authentication-refusal wasted
//       work dominates the epoch's wasted-work ledger (released with
//       hysteresis at half the trigger fraction);
//   (c) flip a site's local<->central collision policy from
//       optimistic-abort to lock-wait while the conflict matrix shows a
//       sustained hot victim x winner pair, and back once it cools.
//
// Every decision is a pure function of the ControllerFeed sequence the
// system hands in, so runs replay bit-identically; with adapt_interval=0
// the system never schedules a review and the wrapper is inert (it only
// forwards decide() to its base).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "routing/strategy.hpp"

namespace hls {

/// Per-site policy for the collision between a local lock holder and an
/// incoming central authentication request (docs/PROTOCOL.md, "Who aborts
/// whom"). OptimisticAbort is the paper's behaviour: preempt a local
/// class-A holder in favour of the central request. LockWait makes local
/// class-A holders non-preemptible at that site: the authentication is
/// refused with the holder named as blocker and the central transaction
/// reruns, deferring to the holder instead of killing it.
enum class CollisionPolicy : std::uint8_t { OptimisticAbort, LockWait };

/// Tuning knobs for the controller, resolved from SystemConfig's adapt_*
/// keys when the system binds the controller at construction.
struct ControllerParams {
  double threshold_step = 0.05;    ///< hill-climb step per review epoch
  double threshold_min = -0.5;     ///< clamp for lever (a)
  double threshold_max = 0.5;      ///< clamp for lever (a)
  double refusal_frac = 0.5;       ///< lever (b) trigger: epoch refusal share
  std::uint64_t refusal_floor = 4; ///< lever (b) minimum refusals per epoch
  std::uint64_t hot_conflicts = 8; ///< lever (c) per-epoch hot-cell count
  std::uint64_t min_epoch_completions = 10;  ///< lever (a) data floor
};

/// Plain-data snapshot of the provenance + latency sensors, copied out of
/// Metrics by HybridSystem at each review epoch. All counters are
/// cumulative since the current measurement window opened; the controller
/// re-baselines automatically when they regress (a new window reset them).
/// Kept free of hybrid-layer includes so routing stays below hybrid.
struct ControllerFeed {
  double now = 0.0;
  int num_sites = 0;
  std::uint64_t completions_local_a = 0;
  std::uint64_t completions_shipped_a = 0;
  double rt_local_a_sum = 0.0;
  double rt_shipped_a_sum = 0.0;
  std::uint64_t aborts_by_cause[static_cast<int>(AbortCause::kCount)] = {};
  double wasted_cpu_by_cause[static_cast<int>(AbortCause::kCount)] = {};
  double wasted_io_by_cause[static_cast<int>(AbortCause::kCount)] = {};
  /// Victim x winner abort counts, row-major num_sites x (num_sites + 1);
  /// column num_sites is the central winner column (mirrors
  /// Metrics::conflict_matrix).
  std::vector<std::uint64_t> conflict_matrix;

  [[nodiscard]] std::uint64_t conflict(int victim_site, int winner) const {
    const std::size_t idx = static_cast<std::size_t>(victim_site) *
                                static_cast<std::size_t>(num_sites + 1) +
                            static_cast<std::size_t>(winner);
    return idx < conflict_matrix.size() ? conflict_matrix[idx] : 0;
  }
  [[nodiscard]] std::uint64_t completions_a() const {
    return completions_local_a + completions_shipped_a;
  }
  [[nodiscard]] double rt_a_sum() const {
    return rt_local_a_sum + rt_shipped_a_sum;
  }
  [[nodiscard]] std::uint64_t aborts_total() const {
    std::uint64_t total = 0;
    for (std::uint64_t n : aborts_by_cause) total += n;
    return total;
  }
  [[nodiscard]] double wasted_total() const {
    double total = 0.0;
    for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
      total += wasted_cpu_by_cause[c] + wasted_io_by_cause[c];
    }
    return total;
  }
};

/// One controller decision, recorded with the evidence that triggered it.
/// Surfaced through RunResult and the run report (core/report).
struct ControllerDecision {
  enum class Kind : std::uint8_t {
    ThresholdStep,  ///< lever (a): ship threshold moved old_value -> new_value
    BackoffOn,      ///< lever (b): shipping suspended
    BackoffOff,     ///< lever (b): shipping resumed
    LockWaitOn,     ///< lever (c): site flipped to lock-wait
    LockWaitOff,    ///< lever (c): site flipped back to optimistic-abort
  };
  double time = 0.0;
  Kind kind = Kind::ThresholdStep;
  int site = -1;  ///< lever (c) target site; -1 for system-wide decisions
  double old_value = 0.0;
  double new_value = 0.0;
  std::string evidence;  ///< human-readable triggering evidence
};

/// Stable short name for report/CSV output ("threshold-step", ...).
[[nodiscard]] const char* controller_decision_kind_name(
    ControllerDecision::Kind kind);

/// Review-epoch interface HybridSystem drives. Discovered through
/// RoutingStrategy::controller(); wrappers forward it.
class AdaptiveController {
 public:
  virtual ~AdaptiveController() = default;

  /// Spec-level interval override (`adapt@<interval>:`); 0 means "use the
  /// config's adapt_interval".
  [[nodiscard]] virtual double interval_override() const = 0;

  /// Called once by the system before the first review. Resets all
  /// controller state (baselines, policies, decision log).
  virtual void bind(int num_sites, const ControllerParams& params) = 0;

  /// One review epoch: consume the feed, possibly record decisions and
  /// mutate the wrapped strategy / per-site policies. Must be a pure
  /// function of the feed sequence since bind().
  virtual void on_review(const ControllerFeed& feed) = 0;

  /// Current collision policy at `site` (lever (c)).
  [[nodiscard]] virtual CollisionPolicy site_policy(int site) const = 0;

  [[nodiscard]] virtual const std::vector<ControllerDecision>& decisions()
      const = 0;
  /// Sim times at which on_review ran, in order (exact-timing tests).
  [[nodiscard]] virtual const std::vector<double>& review_times() const = 0;
};

/// The tentpole strategy: wraps a base strategy and implements all three
/// levers. decide() forwards to the base unless lever (b) is holding
/// shipping back, in which case everything stays local.
class AdaptiveControllerStrategy final : public RoutingStrategy,
                                         public AdaptiveController {
 public:
  explicit AdaptiveControllerStrategy(std::unique_ptr<RoutingStrategy> base,
                                      double interval_override = 0.0);

  // RoutingStrategy
  Route decide(const Transaction& txn, const SystemStateView& view) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AdaptiveController* controller() override { return this; }
  [[nodiscard]] TunableThreshold* tunable_threshold() override {
    return base_->tunable_threshold();
  }

  // AdaptiveController
  [[nodiscard]] double interval_override() const override {
    return interval_override_;
  }
  void bind(int num_sites, const ControllerParams& params) override;
  void on_review(const ControllerFeed& feed) override;
  [[nodiscard]] CollisionPolicy site_policy(int site) const override;
  [[nodiscard]] const std::vector<ControllerDecision>& decisions()
      const override {
    return decisions_;
  }
  [[nodiscard]] const std::vector<double>& review_times() const override {
    return review_times_;
  }

  [[nodiscard]] const RoutingStrategy& inner() const { return *base_; }
  [[nodiscard]] bool ship_backoff_active() const { return backoff_; }

 private:
  void review_threshold(const ControllerFeed& feed);
  void review_backoff(const ControllerFeed& feed);
  void review_collision_policies(const ControllerFeed& feed);
  void record(ControllerDecision::Kind kind, double time, int site,
              double old_value, double new_value, std::string evidence);

  std::unique_ptr<RoutingStrategy> base_;
  double interval_override_ = 0.0;
  ControllerParams params_;
  bool bound_ = false;

  // Epoch baselines: the previous review's cumulative feed.
  ControllerFeed prev_;
  bool has_prev_ = false;

  // Lever (a): per-bucket epoch-RT estimates over the quantized F grid
  // (bucket i holds F = threshold_min + i * threshold_step).
  std::vector<double> bucket_rt_;
  std::vector<int> bucket_visits_;

  // Lever (b).
  bool backoff_ = false;

  // Lever (c).
  std::vector<CollisionPolicy> site_policies_;
  std::vector<int> hot_streak_;
  std::vector<int> cool_streak_;

  std::vector<ControllerDecision> decisions_;
  std::vector<double> review_times_;
};

}  // namespace hls
