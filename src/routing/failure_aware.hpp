// Failure-aware wrapper: degrades any routing strategy to local-only while
// the central complex looks unusable, and hands control back as soon as it
// recovers.
//
// Two signals trigger the degradation:
//   * the failure detector reports the central complex down
//     (SystemStateView::central_reachable, wired from fault injection), or
//   * the site's central-state information is older than `max_info_age`
//     seconds (0 disables the staleness check). Stale information means the
//     message traffic that refreshes it has stopped flowing — an outage the
//     detector has not confirmed yet, or a badly degraded link.
//
// Shipping into a dead or unreachable central complex costs the shipped
// transaction the full timeout/retry ladder before the local fallback saves
// it; routing around the outage avoids that entirely. Header-only so it can
// wrap strategies from any layer without adding a dependency edge.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "routing/strategy.hpp"
#include "util/assert.hpp"

namespace hls {

class FailureAwareStrategy final : public RoutingStrategy {
 public:
  explicit FailureAwareStrategy(std::unique_ptr<RoutingStrategy> inner,
                                double max_info_age = 0.0)
      : inner_(std::move(inner)), max_info_age_(max_info_age) {
    HLS_ASSERT(inner_ != nullptr, "FailureAwareStrategy requires a strategy");
    HLS_ASSERT(max_info_age_ >= 0.0, "negative staleness limit");
  }

  Route decide(const Transaction& txn, const SystemStateView& view) override {
    if (!view.central_reachable) {
      return Route::Local;
    }
    if (max_info_age_ > 0.0 && !view.config->ideal_state_info &&
        view.central_info_age > max_info_age_) {
      return Route::Local;
    }
    return inner_->decide(txn, view);
  }

  [[nodiscard]] std::string name() const override {
    return "failsafe(" + inner_->name() + ")";
  }

  [[nodiscard]] const RoutingStrategy& inner() const { return *inner_; }

  // Forward the adaptive surfaces so `failsafe:adapt:...` (and the reverse
  // nesting) keep the controller and tunable threshold discoverable.
  [[nodiscard]] AdaptiveController* controller() override {
    return inner_->controller();
  }
  [[nodiscard]] TunableThreshold* tunable_threshold() override {
    return inner_->tunable_threshold();
  }

 private:
  std::unique_ptr<RoutingStrategy> inner_;
  double max_info_age_;  ///< seconds; 0 = reachability signal only
};

}  // namespace hls
