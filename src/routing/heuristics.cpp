#include "routing/heuristics.hpp"

#include "util/table.hpp"

namespace hls {

Route MeasuredResponseTimeStrategy::decide(const Transaction&,
                                           const SystemStateView& view) {
  // Before any completion has been observed on a path, its "last response
  // time" is zero — which makes the unexplored path look attractive and
  // bootstraps both measurements, matching the heuristic's intent of
  // keeping the two response times comparable.
  return view.last_shipped_rt < view.last_local_rt ? Route::Central : Route::Local;
}

Route QueueLengthStrategy::decide(const Transaction&, const SystemStateView& view) {
  return view.central_cpu_queue < view.local_cpu_queue ? Route::Central
                                                       : Route::Local;
}

ThresholdUtilizationStrategy::ThresholdUtilizationStrategy(double threshold)
    : threshold_(threshold) {}

Route ThresholdUtilizationStrategy::decide(const Transaction&,
                                           const SystemStateView& view) {
  // M/M/1 inversion of the current queue lengths, excluding the incoming
  // transaction (§3.2.4).
  const double ql = view.local_cpu_queue;
  const double qc = view.central_cpu_queue;
  const double rho_l = ql / (ql + 1.0);
  const double rho_c = qc / (qc + 1.0);
  return (rho_l - rho_c > threshold_) ? Route::Central : Route::Local;
}

std::string ThresholdUtilizationStrategy::name() const {
  return "util-threshold" + format_double(threshold_, 2);
}

}  // namespace hls
