#include "routing/factory.hpp"

#include <utility>

#include "model/static_optimizer.hpp"
#include "routing/adaptive.hpp"
#include "routing/analytic_strategies.hpp"
#include "routing/basic_strategies.hpp"
#include "routing/failure_aware.hpp"
#include "routing/heuristics.hpp"
#include "util/assert.hpp"

namespace hls {

namespace {

std::unique_ptr<RoutingStrategy> make_base_strategy(const StrategySpec& spec,
                                                    const ModelParams& base,
                                                    std::uint64_t seed) {
  switch (spec.kind) {
    case StrategyKind::NoLoadSharing:
      return std::make_unique<AlwaysLocalStrategy>();
    case StrategyKind::AlwaysCentral:
      return std::make_unique<AlwaysCentralStrategy>();
    case StrategyKind::StaticOptimal: {
      const StaticOptimum opt = StaticOptimizer().optimize(base);
      return std::make_unique<StaticProbabilisticStrategy>(opt.p_ship, seed);
    }
    case StrategyKind::StaticProbability:
      return std::make_unique<StaticProbabilisticStrategy>(spec.parameter, seed);
    case StrategyKind::MeasuredRt:
      return std::make_unique<MeasuredResponseTimeStrategy>();
    case StrategyKind::QueueLength:
      return std::make_unique<QueueLengthStrategy>();
    case StrategyKind::UtilThreshold:
      return std::make_unique<ThresholdUtilizationStrategy>(spec.parameter);
    case StrategyKind::MinIncomingQueue:
      return std::make_unique<MinIncomingRtStrategy>(base, UtilSource::CpuQueue);
    case StrategyKind::MinIncomingNsys:
      return std::make_unique<MinIncomingRtStrategy>(base, UtilSource::NumInSystem);
    case StrategyKind::MinAverageQueue:
      return std::make_unique<MinAverageRtStrategy>(base, UtilSource::CpuQueue);
    case StrategyKind::MinAverageNsys:
      return std::make_unique<MinAverageRtStrategy>(base, UtilSource::NumInSystem);
  }
  HLS_ASSERT(false, "unknown strategy kind");
  return nullptr;
}

}  // namespace

std::unique_ptr<RoutingStrategy> make_strategy(const StrategySpec& spec,
                                               const ModelParams& base,
                                               std::uint64_t seed) {
  std::unique_ptr<RoutingStrategy> strategy = make_base_strategy(spec, base, seed);
  if (spec.adaptive) {
    strategy = std::make_unique<AdaptiveControllerStrategy>(
        std::move(strategy), spec.adapt_interval_override);
  }
  if (spec.failure_aware) {
    strategy = std::make_unique<FailureAwareStrategy>(std::move(strategy),
                                                      spec.failsafe_max_info_age);
  }
  return strategy;
}

StrategySpec parse_strategy_spec(const std::string& text) {
  if (text.rfind("failsafe", 0) == 0) {
    // "failsafe:<inner>" or "failsafe@<max_info_age>:<inner>".
    const auto colon = text.find(':');
    HLS_ASSERT(colon != std::string::npos, "failsafe needs an inner strategy");
    double max_info_age = 0.0;
    const std::string head = text.substr(0, colon);
    if (head.size() > 8) {
      HLS_ASSERT(head[8] == '@',
                 ("unknown strategy spec '" + text + "'").c_str());
      max_info_age = std::stod(head.substr(9));
      HLS_ASSERT(max_info_age >= 0.0, "negative failsafe staleness limit");
    }
    StrategySpec spec = parse_strategy_spec(text.substr(colon + 1));
    spec.failure_aware = true;
    spec.failsafe_max_info_age = max_info_age;
    return spec;
  }
  if (text.rfind("adapt:", 0) == 0 || text.rfind("adapt@", 0) == 0) {
    // "adapt:<inner>" or "adapt@<interval>:<inner>".
    const auto colon = text.find(':');
    HLS_ASSERT(colon != std::string::npos,
               ("strategy spec '" + text + "' needs an inner strategy").c_str());
    double interval = 0.0;
    const std::string head = text.substr(0, colon);
    if (head.size() > 5) {
      interval = std::stod(head.substr(6));
      HLS_ASSERT(interval > 0.0, "adapt interval override must be positive");
    }
    StrategySpec spec = parse_strategy_spec(text.substr(colon + 1));
    spec.adaptive = true;
    spec.adapt_interval_override = interval;
    return spec;
  }
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const double param =
      colon == std::string::npos ? 0.0 : std::stod(text.substr(colon + 1));
  StrategySpec spec;
  spec.parameter = param;
  if (head == "no-load-sharing") {
    spec.kind = StrategyKind::NoLoadSharing;
  } else if (head == "always-central") {
    spec.kind = StrategyKind::AlwaysCentral;
  } else if (head == "static-optimal") {
    spec.kind = StrategyKind::StaticOptimal;
  } else if (head == "static") {
    spec.kind = StrategyKind::StaticProbability;
  } else if (head == "measured-rt") {
    spec.kind = StrategyKind::MeasuredRt;
  } else if (head == "queue-length") {
    spec.kind = StrategyKind::QueueLength;
  } else if (head == "util-threshold") {
    spec.kind = StrategyKind::UtilThreshold;
  } else if (head == "min-incoming-queue") {
    spec.kind = StrategyKind::MinIncomingQueue;
  } else if (head == "min-incoming-nsys") {
    spec.kind = StrategyKind::MinIncomingNsys;
  } else if (head == "min-average-queue") {
    spec.kind = StrategyKind::MinAverageQueue;
  } else if (head == "min-average-nsys") {
    spec.kind = StrategyKind::MinAverageNsys;
  } else {
    // Echo the offending token verbatim, like config_io's unknown-key lines.
    HLS_ASSERT(false, ("unknown strategy spec '" + text + "'").c_str());
  }
  return spec;
}

std::vector<std::pair<StrategySpec, std::string>> paper_strategy_set() {
  return {
      {{StrategyKind::NoLoadSharing, 0.0}, "no load sharing"},
      {{StrategyKind::StaticOptimal, 0.0}, "optimal static"},
      {{StrategyKind::MeasuredRt, 0.0}, "A: measured response time"},
      {{StrategyKind::QueueLength, 0.0}, "B: queue length"},
      {{StrategyKind::MinIncomingQueue, 0.0}, "C: min incoming RT (queue)"},
      {{StrategyKind::MinIncomingNsys, 0.0}, "D: min incoming RT (in-system)"},
      {{StrategyKind::MinAverageQueue, 0.0}, "E: min average RT (queue)"},
      {{StrategyKind::MinAverageNsys, 0.0}, "F: min average RT (in-system)"},
  };
}

}  // namespace hls
