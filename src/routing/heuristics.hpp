// Heuristic dynamic strategies (§3.2.3, §3.2.4).
//
//   * MeasuredResponseTimeStrategy: ship iff the last shipped class A
//     transaction from this site finished faster than the last locally-run
//     one. Curve A of Figure 4.2.
//   * QueueLengthStrategy: ship iff the (delayed) central CPU queue is
//     shorter than the local one. Curve B of Figure 4.2.
//   * ThresholdUtilizationStrategy: invert utilizations from the queue
//     lengths and ship iff util_local - util_central > threshold. The
//     tuned heuristic of Figures 4.4 / 4.7 — its optimal threshold depends
//     on the communication delay and the MIPS ratio.
#pragma once

#include "routing/strategy.hpp"

namespace hls {

class MeasuredResponseTimeStrategy final : public RoutingStrategy {
 public:
  Route decide(const Transaction&, const SystemStateView& view) override;
  [[nodiscard]] std::string name() const override { return "measured-rt"; }
};

class QueueLengthStrategy final : public RoutingStrategy {
 public:
  Route decide(const Transaction&, const SystemStateView& view) override;
  [[nodiscard]] std::string name() const override { return "queue-length"; }
};

class ThresholdUtilizationStrategy final : public RoutingStrategy,
                                           public TunableThreshold {
 public:
  explicit ThresholdUtilizationStrategy(double threshold);

  Route decide(const Transaction&, const SystemStateView& view) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double threshold() const override { return threshold_; }
  void set_threshold(double threshold) override { threshold_ = threshold; }
  [[nodiscard]] TunableThreshold* tunable_threshold() override { return this; }

 private:
  double threshold_;
};

}  // namespace hls
