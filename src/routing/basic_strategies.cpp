#include "routing/basic_strategies.hpp"

#include "util/assert.hpp"
#include "util/table.hpp"

namespace hls {

StaticProbabilisticStrategy::StaticProbabilisticStrategy(double p_ship,
                                                         std::uint64_t seed)
    : p_ship_(p_ship), rng_(seed) {
  HLS_ASSERT(p_ship >= 0.0 && p_ship <= 1.0, "p_ship out of [0,1]");
}

Route StaticProbabilisticStrategy::decide(const Transaction&,
                                          const SystemStateView&) {
  return rng_.bernoulli(p_ship_) ? Route::Central : Route::Local;
}

std::string StaticProbabilisticStrategy::name() const {
  return "static-p" + format_double(p_ship_, 3);
}

}  // namespace hls
