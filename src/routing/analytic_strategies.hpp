// Model-driven dynamic strategies (§3.2.1, §3.2.2).
//
// Both strategies evaluate the DynamicEstimator at decision time:
//
//   * MinIncomingRtStrategy routes the incoming class A transaction to the
//     side with the smaller estimated response time for that transaction —
//     the classic approach from the literature (curves C and D of
//     Figure 4.2, depending on the utilization source).
//   * MinAverageRtStrategy routes so as to minimize the estimated average
//     response time over all transactions currently in the system plus the
//     incoming one — the paper's contribution, found to be the best
//     strategy (curves E and F).
#pragma once

#include "model/dynamic_estimator.hpp"
#include "routing/strategy.hpp"

namespace hls {

class MinIncomingRtStrategy final : public RoutingStrategy {
 public:
  MinIncomingRtStrategy(ModelParams base, UtilSource source)
      : estimator_(base, source) {}

  Route decide(const Transaction&, const SystemStateView& view) override {
    const RouteEstimate est = estimator_.estimate(view);
    return est.r_incoming_ship < est.r_incoming_local ? Route::Central
                                                      : Route::Local;
  }

  [[nodiscard]] std::string name() const override {
    return estimator_.source() == UtilSource::CpuQueue ? "min-incoming-queue"
                                                       : "min-incoming-nsys";
  }

 private:
  DynamicEstimator estimator_;
};

class MinAverageRtStrategy final : public RoutingStrategy {
 public:
  MinAverageRtStrategy(ModelParams base, UtilSource source)
      : estimator_(base, source) {}

  Route decide(const Transaction&, const SystemStateView& view) override {
    const RouteEstimate est = estimator_.estimate(view);
    return est.r_avg_if_ship < est.r_avg_if_local ? Route::Central : Route::Local;
  }

  [[nodiscard]] std::string name() const override {
    return estimator_.source() == UtilSource::CpuQueue ? "min-average-queue"
                                                       : "min-average-nsys";
  }

 private:
  DynamicEstimator estimator_;
};

}  // namespace hls
