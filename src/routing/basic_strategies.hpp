// Baseline routing strategies: no load sharing, always-central, and the
// paper's optimal static probabilistic load sharing (§3.1).
#pragma once

#include <memory>

#include "routing/strategy.hpp"
#include "util/random.hpp"

namespace hls {

/// No load sharing: every class A transaction runs at its home site.
class AlwaysLocalStrategy final : public RoutingStrategy {
 public:
  Route decide(const Transaction&, const SystemStateView&) override {
    return Route::Local;
  }
  [[nodiscard]] std::string name() const override { return "no-load-sharing"; }
};

/// Degenerate fully-centralized operation (used as a sanity baseline).
class AlwaysCentralStrategy final : public RoutingStrategy {
 public:
  Route decide(const Transaction&, const SystemStateView&) override {
    return Route::Central;
  }
  [[nodiscard]] std::string name() const override { return "always-central"; }
};

/// Static probabilistic load sharing: ship with fixed probability p_ship,
/// independent of system state. The optimal p_ship comes from the
/// analytical model via StaticOptimizer.
class StaticProbabilisticStrategy final : public RoutingStrategy {
 public:
  StaticProbabilisticStrategy(double p_ship, std::uint64_t seed);

  Route decide(const Transaction&, const SystemStateView&) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double p_ship() const { return p_ship_; }

 private:
  double p_ship_;
  Rng rng_;
};

}  // namespace hls
