// Routing-strategy interface: the load-sharing decision point.
//
// When a class A transaction arrives at its home site, the hybrid system
// asks the installed strategy whether to run it locally or ship it to the
// central complex. The strategy sees a SystemStateView: the home site's own
// state is always fresh, while the central state is whatever the site last
// learned from protocol messages (the paper stresses that this information
// "is delayed ... and is only updated during authentication of a centrally
// running transaction"). With SystemConfig::ideal_state_info the view
// carries instantaneous central state instead (ablation).
#pragma once

#include <string>

#include "hybrid/config.hpp"
#include "hybrid/transaction.hpp"
#include "obs/sample.hpp"

namespace hls {

/// Snapshot handed to a strategy at decision time.
struct SystemStateView {
  const SystemConfig* config = nullptr;
  double now = 0.0;
  int site = 0;  ///< arriving transaction's home site

  // ---- home-site state (fresh) ----
  int local_cpu_queue = 0;   ///< jobs at the local CPU incl. in service (q_i)
  int local_num_txns = 0;    ///< class A txns resident at the site (n_i)
  int local_locks_held = 0;  ///< (txn, lock) holds in the local lock table
  int shipped_in_flight = 0; ///< class A txns from this site now at central
  double last_local_rt = 0.0;    ///< response time of last locally-run class A
  double last_shipped_rt = 0.0;  ///< response time of last shipped class A

  // ---- central state (stale unless ideal_state_info) ----
  double central_info_age = 0.0;  ///< seconds since the snapshot was taken
  int central_cpu_queue = 0;      ///< q_c
  int central_num_txns = 0;       ///< n_c (resident at central)
  int central_locks_held = 0;     ///< holds in the central lock table

  // ---- failure detection (fault injection; always true without it) ----
  bool central_reachable = true;  ///< central complex currently up

  // ---- abort provenance (measurement window so far; fresh) ----
  /// Aborts per cause since the window opened, and their rate per second of
  /// window time — conflict telemetry for adaptive strategies that want to
  /// back off shipping when invalidations dominate, or stop routing locally
  /// when preemptions do.
  std::uint64_t aborts_by_cause[static_cast<int>(AbortCause::kCount)] = {};
  double abort_rate_by_cause[static_cast<int>(AbortCause::kCount)] = {};

  [[nodiscard]] std::uint64_t aborts_total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t a : aborts_by_cause) {
      sum += a;
    }
    return sum;
  }

  // ---- observability (null unless obs_sample_interval > 0) ----
  /// Most recent time-series sample, if the sampler has fired yet. Borrowed
  /// from the system; valid only for the duration of the decide() call.
  const obs::SampleRow* last_sample = nullptr;
};

class AdaptiveController;  // routing/adaptive.hpp: review-epoch interface

/// Mutable ship-threshold surface. Implemented by strategies whose routing
/// rule hinges on a single tunable threshold (ThresholdUtilizationStrategy)
/// so the adaptive controller can hill-climb it at run time.
class TunableThreshold {
 public:
  virtual ~TunableThreshold() = default;
  [[nodiscard]] virtual double threshold() const = 0;
  virtual void set_threshold(double threshold) = 0;
};

class RoutingStrategy {
 public:
  virtual ~RoutingStrategy() = default;

  /// Chooses where the arriving class A transaction runs. Called once per
  /// class A arrival; class B transactions never consult the strategy.
  virtual Route decide(const Transaction& txn, const SystemStateView& view) = 0;

  /// Stable identifier used in experiment output.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Adaptive-controller surface when this strategy (or a wrapped inner
  /// one) re-tunes itself on the system's review epoch; nullptr otherwise.
  /// Wrappers forward both hooks to their inner strategy.
  [[nodiscard]] virtual AdaptiveController* controller() { return nullptr; }
  /// Tunable ship-threshold surface, when the strategy has one.
  [[nodiscard]] virtual TunableThreshold* tunable_threshold() {
    return nullptr;
  }
};

}  // namespace hls
