#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <tuple>

namespace hls {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool window_ok(const FaultWindow& w, int num_sites, std::string* error) {
  if (w.start < 0.0) {
    return fail(error, "fault window start must be non-negative");
  }
  if (w.duration < 0.0) {
    return fail(error, "fault window duration must be non-negative");
  }
  if (w.kind != FaultKind::CentralOutage &&
      (w.site < -1 || w.site >= num_sites)) {
    return fail(error, "fault window site " + std::to_string(w.site) +
                           " out of range (have " + std::to_string(num_sites) +
                           " sites; -1 means all)");
  }
  if (w.kind == FaultKind::LinkDegrade) {
    if (w.delay_factor < 0.0) {
      return fail(error, "link_degrade delay factor must be non-negative");
    }
    if (w.loss_prob < 0.0 || w.loss_prob >= 1.0) {
      // p = 1 would retransmit forever; the protocol needs eventual delivery.
      return fail(error, "link_degrade loss probability must be in [0, 1)");
    }
  }
  if (w.kind == FaultKind::MsgFault) {
    if (w.dup_prob < 0.0 || w.dup_prob >= 1.0 || w.reorder_prob < 0.0 ||
        w.reorder_prob >= 1.0 || w.spike_prob < 0.0 || w.spike_prob >= 1.0) {
      return fail(error, "msg_fault probabilities must be in [0, 1)");
    }
    if (w.spike_factor < 0.0) {
      return fail(error, "msg_fault spike factor must be non-negative");
    }
  }
  return true;
}

bool parse_number(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

std::vector<std::string> split_colons(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t colon = text.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(begin));
      return parts;
    }
    parts.push_back(text.substr(begin, colon - begin));
    begin = colon + 1;
  }
}

bool parse_site(const std::string& text, int* out, std::string* error) {
  if (text == "all") {
    *out = -1;
    return true;
  }
  double v = 0.0;
  if (!parse_number(text, &v) || v != static_cast<int>(v) || v < 0) {
    return fail(error, "fault site must be a site index or 'all', got '" +
                           text + "'");
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

bool FaultScheduleConfig::message_faults() const {
  if (dup_prob > 0.0 || reorder_prob > 0.0 || spike_prob > 0.0) {
    return true;
  }
  for (const FaultWindow& w : windows) {
    if (w.kind == FaultKind::MsgFault) {
      return true;
    }
  }
  return false;
}

bool FaultScheduleConfig::validate(int num_sites, std::string* error) const {
  for (const FaultWindow& w : windows) {
    if (!window_ok(w, num_sites, error)) {
      return false;
    }
  }
  if (random_link_outage_rate < 0.0 || random_link_outage_mean < 0.0 ||
      random_horizon < 0.0) {
    return fail(error, "random link-outage parameters must be non-negative");
  }
  if (random_link_outage_rate > 0.0 && random_horizon > 0.0 &&
      random_link_outage_mean <= 0.0) {
    return fail(error,
                "random link outages need a positive mean duration "
                "(fault_random_link_duration)");
  }
  if (dup_prob < 0.0 || dup_prob >= 1.0 || reorder_prob < 0.0 ||
      reorder_prob >= 1.0 || spike_prob < 0.0 || spike_prob >= 1.0) {
    return fail(error,
                "steady message-fault probabilities (fault_dup_prob, "
                "fault_reorder_prob, fault_spike_prob) must be in [0, 1)");
  }
  if (dup_extra < 0.0 || reorder_window < 0.0 || spike_factor < 0.0) {
    return fail(error,
                "message-fault delays (fault_dup_delay, fault_reorder_window, "
                "fault_spike_factor) must be non-negative");
  }
  return true;
}

FaultSchedule::FaultSchedule(const FaultScheduleConfig& cfg, int num_sites,
                             Rng rng) {
  auto push = [this](const FaultWindow& w) {
    FaultTransition begin;
    begin.time = w.start;
    begin.kind = w.kind;
    begin.site = w.site;
    begin.begin = true;
    begin.delay_factor = w.delay_factor;
    begin.loss_prob = w.loss_prob;
    begin.dup_prob = w.dup_prob;
    begin.reorder_prob = w.reorder_prob;
    begin.spike_prob = w.spike_prob;
    begin.spike_factor = w.spike_factor;
    transitions_.push_back(begin);

    FaultTransition end = begin;
    end.time = w.start + w.duration;
    end.begin = false;
    transitions_.push_back(end);
  };

  for (const FaultWindow& w : cfg.windows) {
    push(w);
  }

  if (cfg.random_link_outage_rate > 0.0 && cfg.random_horizon > 0.0) {
    // One sequential stream per site keeps windows on a link disjoint and the
    // timeline independent of how many other sites fail.
    for (int s = 0; s < num_sites; ++s) {
      Rng site_rng = rng.fork("fault.site-window");
      double t = site_rng.exponential(cfg.random_link_outage_rate);
      while (t < cfg.random_horizon) {
        FaultWindow w;
        w.kind = FaultKind::LinkOutage;
        w.site = s;
        w.start = t;
        w.duration = site_rng.exponential(1.0 / cfg.random_link_outage_mean);
        push(w);
        t = w.start + w.duration +
            site_rng.exponential(cfg.random_link_outage_rate);
      }
    }
  }

  // Time-sorted; at equal times ends apply before begins so back-to-back
  // windows leave the fault active through the boundary instant.
  std::stable_sort(transitions_.begin(), transitions_.end(),
                   [](const FaultTransition& a, const FaultTransition& b) {
                     return std::make_tuple(a.time, a.begin,
                                            static_cast<int>(a.kind), a.site) <
                            std::make_tuple(b.time, b.begin,
                                            static_cast<int>(b.kind), b.site);
                   });
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::CentralOutage:
      return "central_outage";
    case FaultKind::SiteOutage:
      return "site_outage";
    case FaultKind::LinkOutage:
      return "link_outage";
    case FaultKind::LinkDegrade:
      return "link_degrade";
    case FaultKind::MsgFault:
      return "msg_fault";
  }
  return "unknown";
}

bool parse_fault_window(const std::string& text, FaultWindow* out,
                        std::string* error) {
  const std::vector<std::string> parts = split_colons(text);
  FaultWindow w;

  const std::string& kind = parts[0];
  if (kind == "central_outage") {
    if (parts.size() != 3) {
      return fail(error, "central_outage takes <start>:<duration>, got '" +
                             text + "'");
    }
    w.kind = FaultKind::CentralOutage;
    if (!parse_number(parts[1], &w.start) ||
        !parse_number(parts[2], &w.duration)) {
      return fail(error, "bad central_outage times in '" + text + "'");
    }
  } else if (kind == "site_outage" || kind == "link_outage") {
    if (parts.size() != 4) {
      return fail(error, kind + " takes <site|all>:<start>:<duration>, got '" +
                             text + "'");
    }
    w.kind = kind == "site_outage" ? FaultKind::SiteOutage
                                   : FaultKind::LinkOutage;
    if (!parse_site(parts[1], &w.site, error)) {
      return false;
    }
    if (!parse_number(parts[2], &w.start) ||
        !parse_number(parts[3], &w.duration)) {
      return fail(error, "bad " + kind + " times in '" + text + "'");
    }
  } else if (kind == "link_degrade") {
    if (parts.size() != 6) {
      return fail(error,
                  "link_degrade takes "
                  "<site|all>:<start>:<duration>:<delay_factor>:<loss_prob>, "
                  "got '" +
                      text + "'");
    }
    w.kind = FaultKind::LinkDegrade;
    if (!parse_site(parts[1], &w.site, error)) {
      return false;
    }
    if (!parse_number(parts[2], &w.start) ||
        !parse_number(parts[3], &w.duration) ||
        !parse_number(parts[4], &w.delay_factor) ||
        !parse_number(parts[5], &w.loss_prob)) {
      return fail(error, "bad link_degrade numbers in '" + text + "'");
    }
  } else if (kind == "msg_fault") {
    if (parts.size() != 8) {
      return fail(error,
                  "msg_fault takes <site|all>:<start>:<duration>:<dup_prob>:"
                  "<reorder_prob>:<spike_prob>:<spike_factor>, got '" +
                      text + "'");
    }
    w.kind = FaultKind::MsgFault;
    if (!parse_site(parts[1], &w.site, error)) {
      return false;
    }
    if (!parse_number(parts[2], &w.start) ||
        !parse_number(parts[3], &w.duration) ||
        !parse_number(parts[4], &w.dup_prob) ||
        !parse_number(parts[5], &w.reorder_prob) ||
        !parse_number(parts[6], &w.spike_prob) ||
        !parse_number(parts[7], &w.spike_factor)) {
      return fail(error, "bad msg_fault numbers in '" + text + "'");
    }
  } else {
    return fail(error, "unknown fault kind '" + kind +
                           "' (central_outage|site_outage|link_outage|"
                           "link_degrade|msg_fault)");
  }

  // Window-local range checks run here so config files get a clear message
  // on the offending line; the site-count check needs the full config and
  // runs in FaultScheduleConfig::validate.
  if (!window_ok(w, w.site < 0 ? 1 : w.site + 1, error)) {
    return false;
  }
  *out = w;
  return true;
}

std::string format_fault_window(const FaultWindow& w) {
  std::ostringstream out;
  out << fault_kind_name(w.kind) << ':';
  if (w.kind != FaultKind::CentralOutage) {
    if (w.site < 0) {
      out << "all";
    } else {
      out << w.site;
    }
    out << ':';
  }
  out << w.start << ':' << w.duration;
  if (w.kind == FaultKind::LinkDegrade) {
    out << ':' << w.delay_factor << ':' << w.loss_prob;
  }
  if (w.kind == FaultKind::MsgFault) {
    out << ':' << w.dup_prob << ':' << w.reorder_prob << ':' << w.spike_prob
        << ':' << w.spike_factor;
  }
  return out.str();
}

}  // namespace hls
