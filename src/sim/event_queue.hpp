// Pending-event set for the discrete-event kernel.
//
// A calendar queue (Brown 1988) ordered by (time, sequence number): an
// array of buckets, each holding the unsorted events of one width_-second
// day, cycled through year after year. Push appends to the destination
// bucket and pop scans the current day's bucket for its minimum, so both
// are O(1) amortized at any event density — the binary heap this replaced
// spent a third of event-dense runs in sift_down. The sequence tiebreak
// makes same-timestamp events fire in scheduling order; selection always
// compares the full (time, seq) key, so firing order is exactly the total
// order the heap produced, independent of bucket geometry.
//
// Cancellation is lazy, tracked in a slot table: an EventId encodes
// (slot, generation), so push, cancel, and the cancelled check on scan are
// all O(1) array accesses with no hashing. A slot is reused (with a bumped
// generation) once its event fires or its cancelled entry is reaped, so
// stale ids are rejected exactly. Callbacks are move-only UniqueFunctions
// parked in the slot table; bucket entries are 24-byte PODs, so resizing
// and scanning never move a closure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/unique_function.hpp"

namespace hls {

class EventQueue {
 public:
  using Callback = UniqueFunction<void()>;

  EventQueue();

  /// Inserts an event; returns an id usable with cancel().
  EventId push(SimTime time, Callback callback);

  /// Marks an event cancelled. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; must not be called when empty.
  [[nodiscard]] SimTime next_time();

  /// Removes and returns the earliest live event. Must not be called when
  /// empty. The returned callback is ready to invoke.
  struct Popped {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Popped pop();

 private:
  /// Bucket entry: plain data, cheap to scan and to shuffle on resize.
  /// The callback lives in the slot table, not here.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  enum class SlotState : std::uint8_t { Free, Live, Cancelled };

  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;  // bumped on every allocation
    SlotState state = SlotState::Free;
  };

  static constexpr std::size_t kMinBuckets = 8;

  /// EventIds pack (slot + 1) in the high 32 bits and the slot's generation
  /// in the low 32; the +1 keeps every valid id distinct from
  /// kInvalidEventId (0).
  static EventId encode_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }

  /// True when a precedes b in firing order.
  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }

  /// Day number of `time` on the current calendar. Monotone in time (times
  /// at or below zero clamp to day 0, far-future times to a ceiling that
  /// still leaves headroom for a full year scan), and used for both
  /// placement and the scan qualification test so float truncation can
  /// never disagree between the two.
  [[nodiscard]] std::uint64_t day_of(SimTime time) const;

  std::uint32_t allocate_slot();
  void free_slot(std::uint32_t slot);
  /// Finds the earliest live entry and caches its position; requires
  /// live_ > 0. Reaps cancelled entries encountered on the way.
  void locate_min();
  /// Rebuckets every live entry into `nbuckets` buckets with a bucket
  /// width re-estimated from the live population, purging cancelled
  /// entries.
  void rebuild(std::size_t nbuckets);

  std::vector<std::vector<Entry>> buckets_;
  std::size_t bucket_mask_;      // buckets_.size() - 1 (power of two)
  double width_ = 1.0;           // seconds per bucket
  double inv_width_ = 1.0;       // 1 / width_, the only form used in day_of
  std::uint64_t cur_day_ = 0;    // scan floor: no live entry on an earlier day

  // Cached position of the earliest live entry, so next_time() + pop()
  // costs one scan. Push keeps it fresh; cancel of the cached slot drops it.
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_pos_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Entry> scratch_;        // rebuild staging, kept to reuse capacity
  std::vector<double> times_scratch_;  // width estimation staging, ditto
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;  // cancelled entries still bucketed
};

}  // namespace hls
