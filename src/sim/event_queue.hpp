// Pending-event set for the discrete-event kernel.
//
// A hand-rolled binary min-heap ordered by (time, sequence number). The
// sequence tiebreak makes same-timestamp events fire in scheduling order,
// which keeps runs deterministic — essential for reproducible experiments
// and for the regression tests that pin exact simulation output.
//
// Cancellation is lazy, but tracked in a slot table instead of a hash set:
// an EventId encodes (slot, generation), so push, cancel, and the
// cancelled-top check on pop are all O(1) array accesses with no hashing.
// A slot is reused (with a bumped generation) once its entry leaves the
// heap, so stale ids from fired or cancelled events are rejected exactly.
// Callbacks are move-only UniqueFunctions with a 40-byte inline buffer, so
// typical captures never touch the heap (std::function allocated them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/unique_function.hpp"

namespace hls {

class EventQueue {
 public:
  using Callback = UniqueFunction<void()>;

  /// Inserts an event; returns an id usable with cancel().
  EventId push(SimTime time, Callback callback);

  /// Marks an event cancelled. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; must not be called when empty.
  [[nodiscard]] SimTime next_time();

  /// Removes and returns the earliest live event. Must not be called when
  /// empty. The returned callback is ready to invoke.
  struct Popped {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    Callback callback;
  };

  enum class SlotState : std::uint8_t { Free, Live, Cancelled };

  struct Slot {
    std::uint32_t generation = 0;  // bumped on every allocation
    SlotState state = SlotState::Free;
  };

  /// EventIds pack (slot + 1) in the high 32 bits and the slot's generation
  /// in the low 32; the +1 keeps every valid id distinct from
  /// kInvalidEventId (0).
  static EventId encode_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }

  /// True when a precedes b in firing order.
  static bool before(const Entry& a, const Entry& b);

  std::uint32_t allocate_slot();
  void free_slot(std::uint32_t slot);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_cancelled_top();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hls
