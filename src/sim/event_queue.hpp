// Pending-event set for the discrete-event kernel.
//
// A hand-rolled binary min-heap ordered by (time, sequence number). The
// sequence tiebreak makes same-timestamp events fire in scheduling order,
// which keeps runs deterministic — essential for reproducible experiments
// and for the regression tests that pin exact simulation output.
//
// Cancellation is lazy: cancelled entries stay in the heap (marked in a side
// table) and are skipped on pop. The hybrid workload cancels rarely (timeouts
// that usually don't fire), so lazy deletion wins over sift-based removal.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace hls {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Inserts an event; returns an id usable with cancel().
  EventId push(SimTime time, Callback callback);

  /// Marks an event cancelled. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; must not be called when empty.
  [[nodiscard]] SimTime next_time();

  /// Removes and returns the earliest live event. Must not be called when
  /// empty. The returned callback is ready to invoke.
  struct Popped {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    Callback callback;
  };

  /// True when a precedes b in firing order.
  static bool before(const Entry& a, const Entry& b);

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_cancelled_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
  std::size_t live_ = 0;
};

}  // namespace hls
