#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace hls {

namespace {

/// Day numbers stay below this so a year scan (`day + nbuckets`) can never
/// wrap a 64-bit counter.
constexpr double kMaxDay = 4.6e18;

/// Sentinel for "no qualifying entry found yet" during bucket scans.
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

EventQueue::EventQueue() : buckets_(kMinBuckets), bucket_mask_(kMinBuckets - 1) {}

std::uint64_t EventQueue::day_of(SimTime time) const {
  const double scaled = time * inv_width_;
  if (!(scaled > 0.0)) {
    return 0;  // times at or below zero (the sim never rewinds) share day 0
  }
  if (scaled >= kMaxDay) {
    return static_cast<std::uint64_t>(kMaxDay);
  }
  return static_cast<std::uint64_t>(scaled);
}

std::uint32_t EventQueue::allocate_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    HLS_ASSERT(slots_.size() < 0xFFFFFFFFu, "event slot space exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  HLS_ASSERT(s.state == SlotState::Free, "allocating a non-free event slot");
  ++s.generation;  // invalidates every id issued for previous occupants
  s.state = SlotState::Live;
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.callback = Callback{};
  s.state = SlotState::Free;
  free_slots_.push_back(slot);
}

EventId EventQueue::push(SimTime time, Callback callback) {
  const std::uint32_t slot = allocate_slot();
  slots_[slot].callback = std::move(callback);
  const std::uint64_t day = day_of(time);
  std::vector<Entry>& bucket = buckets_[day & bucket_mask_];
  bucket.push_back(Entry{time, next_seq_++, slot});
  ++live_;
  if (day < cur_day_) {
    cur_day_ = day;  // push behind the scan floor (non-monotonic callers)
  }
  // A strictly earlier time beats the cached min; an equal time loses on
  // the sequence tiebreak, so the cache stays correct untouched.
  if (min_valid_ && time < buckets_[min_bucket_][min_pos_].time) {
    min_bucket_ = day & bucket_mask_;
    min_pos_ = bucket.size() - 1;
  }
  if (live_ > 2 * buckets_.size()) {
    rebuild(2 * buckets_.size());
  }
  return encode_id(slot, slots_[slot].generation);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) {
    return false;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  Slot& s = slots_[slot];
  const std::uint32_t generation = static_cast<std::uint32_t>(id);
  if (s.generation != generation || s.state != SlotState::Live) {
    return false;  // already fired, already cancelled, or a reused slot
  }
  s.state = SlotState::Cancelled;  // entry stays bucketed; reaped on scan
  s.callback = Callback{};         // release captures eagerly
  HLS_ASSERT(live_ > 0, "live event count underflow");
  --live_;
  ++dead_;
  if (min_valid_ && buckets_[min_bucket_][min_pos_].slot == slot) {
    min_valid_ = false;
  }
  if (dead_ > 64 && dead_ > live_) {
    rebuild(buckets_.size());  // cancel-heavy phase: purge the corpses
  }
  return true;
}

SimTime EventQueue::next_time() {
  HLS_ASSERT(live_ > 0, "next_time() on empty event queue");
  if (!min_valid_) {
    locate_min();
  }
  return buckets_[min_bucket_][min_pos_].time;
}

EventQueue::Popped EventQueue::pop() {
  HLS_ASSERT(live_ > 0, "pop() on empty event queue");
  if (!min_valid_) {
    locate_min();
  }
  std::vector<Entry>& bucket = buckets_[min_bucket_];
  const Entry e = bucket[min_pos_];
  bucket[min_pos_] = bucket.back();
  bucket.pop_back();
  min_valid_ = false;
  --live_;
  cur_day_ = day_of(e.time);
  const EventId id = encode_id(e.slot, slots_[e.slot].generation);
  Popped out{e.time, id, std::move(slots_[e.slot].callback)};
  free_slot(e.slot);
  if (buckets_.size() > kMinBuckets && live_ < buckets_.size() / 8) {
    rebuild(std::max(kMinBuckets, std::bit_ceil(2 * live_)));
  }
  return out;
}

void EventQueue::locate_min() {
  // One calendar year: step day by day from the scan floor. The first day
  // holding a current-day entry holds the global minimum, because day_of is
  // monotone in time; within the day the full (time, seq) key decides.
  const std::size_t nbuckets = buckets_.size();
  std::uint64_t day = cur_day_;
  for (std::size_t step = 0; step < nbuckets; ++step, ++day) {
    std::vector<Entry>& bucket = buckets_[day & bucket_mask_];
    std::size_t best = kNone;
    std::size_t i = 0;
    while (i < bucket.size()) {
      const Entry& e = bucket[i];
      if (slots_[e.slot].state == SlotState::Cancelled) {
        free_slot(e.slot);
        --dead_;
        if (best == bucket.size() - 1) {
          best = i;  // the survivor about to be swapped into position i
        }
        bucket[i] = bucket.back();
        bucket.pop_back();
        continue;  // re-examine the swapped-in entry
      }
      if (day_of(e.time) == day && (best == kNone || before(e, bucket[best]))) {
        best = i;
      }
      ++i;
    }
    if (best != kNone) {
      cur_day_ = day;
      min_bucket_ = day & bucket_mask_;
      min_pos_ = best;
      min_valid_ = true;
      return;
    }
  }

  // Nothing within a year of the floor: the population is sparse relative
  // to the year span (a handful of far-apart timers). Direct-search every
  // bucket for the global minimum and jump the calendar to its day.
  std::size_t best_bucket = kNone;
  std::size_t best_pos = 0;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    std::vector<Entry>& bucket = buckets_[b];
    std::size_t i = 0;
    while (i < bucket.size()) {
      const Entry& e = bucket[i];
      if (slots_[e.slot].state == SlotState::Cancelled) {
        free_slot(e.slot);
        --dead_;
        if (best_bucket == b && best_pos == bucket.size() - 1) {
          best_pos = i;
        }
        bucket[i] = bucket.back();
        bucket.pop_back();
        continue;
      }
      if (best_bucket == kNone || before(e, buckets_[best_bucket][best_pos])) {
        best_bucket = b;
        best_pos = i;
      }
      ++i;
    }
  }
  HLS_ASSERT(best_bucket != kNone, "locate_min() found no live event");
  cur_day_ = day_of(buckets_[best_bucket][best_pos].time);
  min_bucket_ = best_bucket;
  min_pos_ = best_pos;
  min_valid_ = true;
}

void EventQueue::rebuild(std::size_t nbuckets) {
  scratch_.clear();
  SimTime min_t = 0.0;
  SimTime max_t = 0.0;
  for (std::vector<Entry>& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (slots_[e.slot].state == SlotState::Cancelled) {
        free_slot(e.slot);
        continue;
      }
      if (scratch_.empty()) {
        min_t = max_t = e.time;
      } else {
        min_t = std::min(min_t, e.time);
        max_t = std::max(max_t, e.time);
      }
      scratch_.push_back(e);
    }
    bucket.clear();
  }
  dead_ = 0;

  // Re-estimate the bucket width as twice the typical inter-event gap: the
  // exact median of the positive adjacent gaps over the whole sorted
  // population. The median shrugs off far-future outliers (fault timers,
  // sampler ticks, drain deadlines) that would blow up a mean-based
  // estimate, and skipping zero gaps keeps same-timestamp batches from
  // dragging it to zero. Estimating from a strided subsample was tried
  // first and is NOT robust here: a one-event change to the population can
  // shift which entries the stride picks and land a 2-3x different width,
  // which then taxes every locate_min() until the next rebuild (measured
  // at ~5% of total run CPU). Rebuilds are rare, so sorting the full
  // population is cheap amortized.
  const std::size_t n = scratch_.size();
  if (n >= 2 && max_t > min_t) {
    times_scratch_.clear();
    times_scratch_.reserve(n);
    for (const Entry& e : scratch_) {
      times_scratch_.push_back(e.time);
    }
    std::sort(times_scratch_.begin(), times_scratch_.end());
    // Squash each adjacent gap into the front of the buffer, keeping only
    // the positive ones; the buffer is scratch space, so reuse it in place.
    std::size_t gaps = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double gap = times_scratch_[i + 1] - times_scratch_[i];
      if (gap > 0.0) {
        times_scratch_[gaps++] = gap;
      }
    }
    if (gaps > 0) {
      const std::size_t mid = gaps / 2;
      std::nth_element(times_scratch_.begin(),
                       times_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                       times_scratch_.begin() + static_cast<std::ptrdiff_t>(gaps));
      double width = 2.0 * times_scratch_[mid];
      if (max_t > 0.0 && max_t / width >= kMaxDay) {
        width = max_t / kMaxDay;  // keep ordinary entries below the day clamp
      }
      if (std::isfinite(width) && width > 0.0) {
        width_ = width;
        inv_width_ = 1.0 / width_;
      }
    }
  }

  buckets_.assign(nbuckets, {});
  bucket_mask_ = nbuckets - 1;
  for (const Entry& e : scratch_) {
    buckets_[day_of(e.time) & bucket_mask_].push_back(e);
  }
  cur_day_ = scratch_.empty() ? 0 : day_of(min_t);
  min_valid_ = false;
}

}  // namespace hls
