#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace hls {

bool EventQueue::before(const Entry& a, const Entry& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.seq < b.seq;
}

std::uint32_t EventQueue::allocate_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    HLS_ASSERT(slots_.size() < 0xFFFFFFFFu, "event slot space exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  HLS_ASSERT(s.state == SlotState::Free, "allocating a non-free event slot");
  ++s.generation;  // invalidates every id issued for previous occupants
  s.state = SlotState::Live;
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) {
  slots_[slot].state = SlotState::Free;
  free_slots_.push_back(slot);
}

EventId EventQueue::push(SimTime time, Callback callback) {
  const std::uint32_t slot = allocate_slot();
  heap_.push_back(Entry{time, next_seq_++, slot, std::move(callback)});
  sift_up(heap_.size() - 1);
  ++live_;
  return encode_id(slot, slots_[slot].generation);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) {
    return false;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  Slot& s = slots_[slot];
  const std::uint32_t generation = static_cast<std::uint32_t>(id);
  if (s.generation != generation || s.state != SlotState::Live) {
    return false;  // already fired, already cancelled, or a reused slot
  }
  s.state = SlotState::Cancelled;  // entry stays heaped; reaped on pop
  HLS_ASSERT(live_ > 0, "live event count underflow");
  --live_;
  return true;
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  HLS_ASSERT(!heap_.empty(), "next_time() on empty event queue");
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_top();
  HLS_ASSERT(!heap_.empty(), "pop() on empty event queue");
  Entry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    sift_down(0);
  }
  HLS_ASSERT(live_ > 0, "live event count underflow");
  --live_;
  const EventId id = encode_id(top.slot, slots_[top.slot].generation);
  free_slot(top.slot);
  return Popped{top.time, id, std::move(top.callback)};
}

void EventQueue::drop_cancelled_top() {
  // An entry is the sole occupant of its slot while heaped, so the slot
  // state tells whether the top was cancelled — one array load, no hashing.
  while (!heap_.empty() &&
         slots_[heap_.front().slot].state == SlotState::Cancelled) {
    free_slot(heap_.front().slot);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      sift_down(0);
    }
  }
}

// Both sifts move the displaced entry into a hole that bubbles to its final
// position: one move per level instead of a three-move swap. Entries carry
// an inline callback buffer, so moves are the dominant heap cost.

void EventQueue::sift_up(std::size_t i) {
  if (i == 0) {
    return;
  }
  Entry moving = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(moving, heap_[parent])) {
      break;
    }
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(moving);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry moving = std::move(heap_[i]);
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    std::size_t child = left;
    const std::size_t right = left + 1;
    if (right < n && before(heap_[right], heap_[left])) {
      child = right;
    }
    if (!before(heap_[child], moving)) {
      break;
    }
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(moving);
}

}  // namespace hls
