#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace hls {

bool EventQueue::before(const Entry& a, const Entry& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.seq < b.seq;
}

EventId EventQueue::push(SimTime time, Callback callback) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{time, next_seq_++, id, std::move(callback)});
  sift_up(heap_.size() - 1);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) {
    return false;
  }
  // Only mark ids that are plausibly still queued; a linear scan would be
  // exact but O(n). We accept marking an already-fired id: fired events are
  // removed from the heap, so the mark is dead weight until pruned below.
  if (!cancelled_.insert(id).second) {
    return false;
  }
  // Verify the event is actually still pending so the return value and the
  // live count stay truthful.
  for (const auto& entry : heap_) {
    if (entry.id == id) {
      HLS_ASSERT(live_ > 0, "live event count underflow");
      --live_;
      return true;
    }
  }
  cancelled_.erase(id);
  return false;
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  HLS_ASSERT(!heap_.empty(), "next_time() on empty event queue");
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_top();
  HLS_ASSERT(!heap_.empty(), "pop() on empty event queue");
  Entry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    sift_down(0);
  }
  HLS_ASSERT(live_ > 0, "live event count underflow");
  --live_;
  return Popped{top.time, top.id, std::move(top.callback)};
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) != 0) {
    cancelled_.erase(heap_.front().id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      sift_down(0);
    }
  }
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    std::size_t smallest = i;
    if (left < n && before(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < n && before(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace hls
