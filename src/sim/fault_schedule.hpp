// Deterministic fault-injection schedule: link outages/degradations and
// site/central crash+recovery windows, expanded into a sorted transition
// timeline before the simulation starts.
//
// The schedule is pure data below the hybrid layer: HybridSystem turns each
// FaultTransition into the protocol-level consequence (hold link traffic,
// abort resident transactions, replay backlogs). Windows come from config
// (explicit, reproducible) or from a seed-forked RNG stream (random link
// outages), so two runs at the same seed see bit-identical fault timelines
// and an empty schedule costs nothing — no RNG stream is even forked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.hpp"

namespace hls {

enum class FaultKind : std::uint8_t {
  CentralOutage,  ///< central complex crashes; residents abort, backlog replays
  SiteOutage,     ///< a site's DB crashes; local txns abort, deliveries defer
  LinkOutage,     ///< both directions of a site's link hold traffic
  LinkDegrade,    ///< delay multiplier and/or retransmission loss on a link
  MsgFault,       ///< message-level chaos: duplicates, reordering, delay spikes
};

/// One contiguous fault window [start, start + duration).
struct FaultWindow {
  FaultKind kind = FaultKind::LinkOutage;
  int site = -1;        ///< target site; -1 = every site (ignored for CentralOutage)
  double start = 0.0;   ///< simulation seconds
  double duration = 0.0;
  double delay_factor = 1.0;  ///< LinkDegrade: multiplier on the link delay
  double loss_prob = 0.0;     ///< LinkDegrade: per-message loss (retransmitted)
  // MsgFault knobs (per-message probabilities while the window is active;
  // the duplicate extra delay and reorder window come from the schedule's
  // steady-state fields below):
  double dup_prob = 0.0;      ///< MsgFault: duplicate-delivery probability
  double reorder_prob = 0.0;  ///< MsgFault: straggler (reorder) probability
  double spike_prob = 0.0;    ///< MsgFault: delay-spike probability
  double spike_factor = 1.0;  ///< MsgFault: delay multiplier for a spiked message
};

/// Config-level description: explicit windows plus optional random link
/// outages generated per site from a forked RNG stream.
struct FaultScheduleConfig {
  std::vector<FaultWindow> windows;

  // Random link outages: each site's link fails as a Poisson process with
  // `random_link_outage_rate` starts/second (exponential outage lengths of
  // mean `random_link_outage_mean`), generated over [0, random_horizon).
  double random_link_outage_rate = 0.0;
  double random_link_outage_mean = 0.0;
  double random_horizon = 0.0;

  // Steady-state message-level chaos, applied to every link for the whole
  // run (msg_fault windows override the probabilities while active and
  // restore these at the window end). dup_extra is the duplicate's delay
  // after the primary delivery; reorder_window bounds how far a straggler
  // slips (0 = one link delay).
  double dup_prob = 0.0;
  double dup_extra = 0.0;
  double reorder_prob = 0.0;
  double reorder_window = 0.0;
  double spike_prob = 0.0;
  double spike_factor = 1.0;

  /// True when any steady-state or windowed message-level fault is active
  /// somewhere in the schedule.
  [[nodiscard]] bool message_faults() const;

  /// True when the schedule injects nothing; HybridSystem then skips all
  /// fault machinery (including the RNG forks) so fault-free runs are
  /// byte-identical to builds without this subsystem.
  [[nodiscard]] bool empty() const {
    return windows.empty() &&
           (random_link_outage_rate <= 0.0 || random_horizon <= 0.0) &&
           dup_prob <= 0.0 && reorder_prob <= 0.0 && spike_prob <= 0.0;
  }

  /// User-facing validation (config files): returns false and fills `error`
  /// for out-of-range sites, negative times, or unusable degrade parameters.
  [[nodiscard]] bool validate(int num_sites, std::string* error = nullptr) const;
};

/// One edge of a window: at `time`, the fault `begin`s or ends.
struct FaultTransition {
  double time = 0.0;
  FaultKind kind = FaultKind::LinkOutage;
  int site = -1;  ///< -1 = every site
  bool begin = true;
  double delay_factor = 1.0;
  double loss_prob = 0.0;
  double dup_prob = 0.0;      ///< MsgFault begin: window probabilities
  double reorder_prob = 0.0;
  double spike_prob = 0.0;
  double spike_factor = 1.0;
};

/// Expands a FaultScheduleConfig into a deterministic, time-sorted transition
/// list. Random windows are generated sequentially per site (never
/// overlapping on one link); ties are broken end-before-begin, then by kind
/// and site, so the timeline is independent of container layout.
class FaultSchedule {
 public:
  FaultSchedule(const FaultScheduleConfig& cfg, int num_sites, Rng rng);

  [[nodiscard]] const std::vector<FaultTransition>& transitions() const {
    return transitions_;
  }

 private:
  std::vector<FaultTransition> transitions_;
};

/// Stable text name used by config round-tripping ("central_outage", ...).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// Parses one config-file fault entry:
///   central_outage:<start>:<duration>
///   site_outage:<site|all>:<start>:<duration>
///   link_outage:<site|all>:<start>:<duration>
///   link_degrade:<site|all>:<start>:<duration>:<delay_factor>:<loss_prob>
///   msg_fault:<site|all>:<start>:<duration>:<dup_prob>:<reorder_prob>
///            :<spike_prob>:<spike_factor>
/// Returns false and fills `error` (user-facing message) on malformed input.
[[nodiscard]] bool parse_fault_window(const std::string& text, FaultWindow* out,
                                      std::string* error = nullptr);

/// Inverse of parse_fault_window (valid input to it).
[[nodiscard]] std::string format_fault_window(const FaultWindow& window);

}  // namespace hls
