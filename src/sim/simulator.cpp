#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace hls {

EventId Simulator::schedule_at(SimTime t, Callback callback) {
  HLS_ASSERT(t >= now_, "cannot schedule an event in the past");
  return queue_.push(t, std::move(callback));
}

EventId Simulator::schedule_after(SimTime delay, Callback callback) {
  HLS_ASSERT(delay >= 0.0, "negative delay");
  return queue_.push(now_ + delay, std::move(callback));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

bool Simulator::step() {
  if (queue_.empty()) {
    return false;
  }
  auto event = queue_.pop();
  HLS_ASSERT(event.time >= now_, "event queue returned an out-of-order event");
  now_ = event.time;
  ++executed_;
  event.callback();
  return true;
}

void Simulator::run_until(SimTime t) {
  HLS_ASSERT(t >= now_, "run_until target is in the past");
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  if (!stop_requested_ && now_ < t) {
    now_ = t;
  }
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

}  // namespace hls
