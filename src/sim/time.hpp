// Simulated time. All times are seconds, represented as double: the paper's
// quantities (0.2 s links, millisecond CPU bursts, hour-long runs) span only
// ~7 decades, well inside double's 15-16 significant digits.
#pragma once

#include <cstdint>

namespace hls {

using SimTime = double;

/// Identifies a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace hls
