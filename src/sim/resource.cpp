#include "sim/resource.hpp"

#include <utility>

#include "util/assert.hpp"

namespace hls {

FcfsResource::FcfsResource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {
  record_state();
}

void FcfsResource::submit(double service_time, Callback on_complete) {
  HLS_ASSERT(service_time >= 0.0, "negative CPU service time");
  queue_.push_back(Job{service_time, std::move(on_complete), sim_.now()});
  record_state();
  if (!busy_) {
    start_next();
  }
}

void FcfsResource::start_next() {
  HLS_ASSERT(!busy_, "starting service while busy");
  if (queue_.empty()) {
    record_state();
    return;
  }
  Job job = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;
  active_completion_ = std::move(job.on_complete);
  active_service_ = job.service_time;
  active_submitted_ = job.submitted;
  record_state();
  sim_.schedule_after(job.service_time, [this] { on_service_complete(); });
}

void FcfsResource::on_service_complete() {
  HLS_ASSERT(busy_, "completion without a job in service");
  Callback done = std::move(active_completion_);
  active_completion_ = Callback{};
  busy_ = false;
  ++completed_;
  busy_seconds_ += active_service_;
  sojourn_seconds_ += sim_.now() - active_submitted_;
  record_state();
  start_next();
  // Invoke the completion after dequeuing the next job so that work the
  // callback submits queues behind already-waiting jobs (strict FCFS).
  if (done) {
    done();
  }
}

void FcfsResource::record_state() {
  busy_stat_.set(sim_.now(), busy_ ? 1.0 : 0.0);
  queue_stat_.set(sim_.now(), static_cast<double>(queue_length()));
}

double FcfsResource::utilization() const { return busy_stat_.average(sim_.now()); }

double FcfsResource::average_queue_length() const {
  return queue_stat_.average(sim_.now());
}

void FcfsResource::reset_stats() {
  busy_stat_.reset(sim_.now());
  queue_stat_.reset(sim_.now());
  completed_ = 0;
  busy_seconds_ = 0.0;
  sojourn_seconds_ = 0.0;
}

}  // namespace hls
