// Discrete-event simulation core: a virtual clock plus the pending-event set.
//
// All model components (CPUs, links, lock managers, arrival processes) share
// one Simulator and advance the world exclusively by scheduling callbacks.
// Single-threaded by design: determinism matters more than parallel speedup
// at this model size, and it keeps component code free of synchronization.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hls {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `callback` to fire at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback callback);

  /// Schedules `callback` to fire `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimTime delay, Callback callback);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Executes the next event, advancing the clock. False when none remain.
  bool step();

  /// Runs events until the clock would pass `t`; leaves now() == t.
  /// Events scheduled exactly at `t` are executed.
  void run_until(SimTime t);

  /// Runs until the event set is empty.
  void run();

  /// Requests that run()/run_until() return after the current event; the
  /// remaining events stay queued.
  void request_stop() { stop_requested_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace hls
