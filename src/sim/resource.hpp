// FCFS single-server resource: models each site's CPU.
//
// The paper's simulation serves CPU bursts in FIFO order with deterministic
// service times derived from instruction pathlengths ("CPU service times
// correspond to the time to execute the specific instruction pathlengths ...
// and are not exponentially distributed"). A transaction submits one burst
// at a time and releases the CPU at every lock wait, I/O and communication,
// which is exactly the submit/complete interface here.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/unique_function.hpp"

namespace hls {

class FcfsResource {
 public:
  /// Move-only: completion continuations capture up to ~56 bytes and run
  /// once; UniqueFunction keeps them inline where std::function would
  /// heap-allocate per burst.
  using Callback = UniqueFunction<void()>;

  FcfsResource(Simulator& sim, std::string name);

  FcfsResource(const FcfsResource&) = delete;
  FcfsResource& operator=(const FcfsResource&) = delete;

  /// Enqueues a burst of `service_time` seconds; `on_complete` fires when the
  /// burst finishes service. Zero-length bursts complete via the queue too,
  /// preserving FIFO ordering with non-zero bursts ahead of them.
  void submit(double service_time, Callback on_complete);

  /// Jobs waiting plus the one in service (the paper's "CPU queue length").
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() + (busy_ ? 1 : 0);
  }

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Fraction of time busy since the last stats reset.
  [[nodiscard]] double utilization() const;

  /// Time-averaged queue length (including in service) since last reset.
  [[nodiscard]] double average_queue_length() const;

  [[nodiscard]] std::uint64_t completed_bursts() const { return completed_; }

  /// Service seconds of completed bursts since the last stats reset. At any
  /// instant with no burst in service this equals ∫busy dt, which is the
  /// Little's-law identity `utilization() * window == busy_seconds()` that
  /// conservation_test asserts after a drain.
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }

  /// Summed submit→completion spans of completed bursts since the last
  /// stats reset: the other Little's-law ledger,
  /// `average_queue_length() * window == sojourn_seconds()` once the queue
  /// is empty (each burst contributes its full span to ∫queue_length dt).
  [[nodiscard]] double sojourn_seconds() const { return sojourn_seconds_; }

  /// Restarts utilization/queue statistics at the current simulation time
  /// (used to discard warmup).
  void reset_stats();

 private:
  struct Job {
    double service_time;
    Callback on_complete;
    double submitted;
  };

  void start_next();
  void on_service_complete();
  void record_state();

  Simulator& sim_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  Callback active_completion_;
  double active_service_ = 0.0;
  double active_submitted_ = 0.0;
  std::uint64_t completed_ = 0;
  double busy_seconds_ = 0.0;
  double sojourn_seconds_ = 0.0;
  TimeWeightedStat busy_stat_;
  TimeWeightedStat queue_stat_;
};

}  // namespace hls
