// Transaction record: the unit of work flowing through the hybrid system.
//
// One Transaction object lives from user arrival to final commit, across any
// number of abort/rerun cycles. The paper's six transaction kinds (§3.1) map
// onto (cls, shipped/routed, run_count>0).
#pragma once

#include <cstdint>
#include <vector>

#include "db/lock_types.hpp"
#include "obs/phase.hpp"
#include "sim/time.hpp"

namespace hls {

enum class TxnClass : std::uint8_t {
  A,  ///< refers only to home-site data; the load-sharing candidate
  B,  ///< refers to global data; always runs at the central site
};

/// Why a transaction aborted and was rerun (statistics).
enum class AbortCause : std::uint8_t {
  LocalPreempted,    ///< local txn lost locks to an authenticating central txn
  CentralInvalidated,///< central txn's lock invalidated by an async update
  AuthRefused,       ///< authentication negative-acked (coherence in flight)
  Deadlock,          ///< waits-for cycle at one site
  ShipTimeout,       ///< shipped txn reclaimed by its home site's timeout
  Crash,             ///< resident at a site/central complex that crashed
  kCount,
};

struct LockNeed {
  LockId id;
  LockMode mode;
};

/// Where a class A transaction was routed.
enum class Route : std::uint8_t { Local, Central };

struct Transaction {
  TxnId id = kInvalidTxn;
  TxnClass cls = TxnClass::A;
  int home_site = 0;

  // Access pattern, fixed at generation time and identical across reruns
  // ("a re-run transaction finds all data referenced in its main memory").
  std::vector<LockNeed> locks;  ///< one lock request per DB call
  std::vector<bool> call_io;    ///< whether call k performs an I/O (first run)

  SimTime arrival_time = 0.0;
  Route route = Route::Local;

  // ---- execution state ----
  int run_count = 0;        ///< 0 on first run; incremented per rerun
  int call_index = 0;       ///< next DB call to execute
  bool marked_abort = false;
  bool active = false;      ///< between start-of-run and commit/abort
  std::uint64_t epoch = 0;  ///< bumped on each rerun; guards stale callbacks

  // ---- authentication state (central/shipped only) ----
  int auth_pending_acks = 0;
  bool auth_any_negative = false;
  std::vector<int> auth_sites;  ///< sites granted auth locks this round

  // ---- fault-handling state ----
  int ship_retries = 0;            ///< timeout-triggered reships so far
  std::uint64_t ship_attempt = 0;  ///< bumped per reclaim; guards stale timeouts
  bool at_central = false;         ///< currently counted in central residency
  /// A rerun normally finds its data cached and skips all I/O (§3.1); a
  /// crash or timeout restart lost that memory and pays the I/O again.
  bool memory_resident = false;

  // ---- abort provenance ----
  /// Winner of the conflict that set marked_abort, when one exists: the
  /// committer whose async update invalidated this holder, or the
  /// authenticating transaction that preempted it. kInvalidTxn = none.
  TxnId marked_by = kInvalidTxn;
  int marked_by_site = -2;  ///< winner's home site; -2 = no winner
  /// Non-preemptible holder that forced a negative auth ack, captured at the
  /// refusing site and carried back on the ack. kInvalidTxn = refusal was
  /// coherence-in-flight (no single winner).
  TxnId auth_blocker = kInvalidTxn;
  int auth_blocker_site = -2;
  /// Armed by prepare_rerun, consumed at the next start-of-run to emit the
  /// retry edge linking the attempts of one transaction.
  double retry_edge_from = -1.0;
  int retry_edge_track = 0;

  // ---- per-txn statistics ----
  int aborts[static_cast<int>(AbortCause::kCount)] = {};
  /// Response-time decomposition across all runs; maintained by the system
  /// at every protocol step (obs/phase.hpp). Sums to the response time.
  obs::PhaseTimeline phases;
  /// Snapshot of phases.acc[] at the start of the current attempt, so an
  /// abort can charge exactly this attempt's segment as wasted work.
  double attempt_mark[obs::kPhaseCount] = {};
  /// Per-phase time burned by aborted attempts, across the retry chain.
  double wasted_phase[obs::kPhaseCount] = {};

  /// Resets every field to its freshly-constructed state while keeping the
  /// capacity of the access-pattern vectors, so an arena slot can host
  /// thousands of transactions without per-transaction allocation. Must be
  /// kept in sync with the field list above.
  void recycle() {
    id = kInvalidTxn;
    cls = TxnClass::A;
    home_site = 0;
    locks.clear();
    call_io.clear();
    arrival_time = 0.0;
    route = Route::Local;
    run_count = 0;
    call_index = 0;
    marked_abort = false;
    active = false;
    epoch = 0;
    auth_pending_acks = 0;
    auth_any_negative = false;
    auth_sites.clear();
    ship_retries = 0;
    ship_attempt = 0;
    at_central = false;
    memory_resident = false;
    marked_by = kInvalidTxn;
    marked_by_site = -2;
    auth_blocker = kInvalidTxn;
    auth_blocker_site = -2;
    retry_edge_from = -1.0;
    retry_edge_track = 0;
    for (int& count : aborts) {
      count = 0;
    }
    phases = obs::PhaseTimeline{};
    for (double& mark : attempt_mark) {
      mark = 0.0;
    }
    for (double& wasted : wasted_phase) {
      wasted = 0.0;
    }
  }

  [[nodiscard]] bool is_rerun() const { return run_count > 0; }

  void count_abort(AbortCause cause) { ++aborts[static_cast<int>(cause)]; }

  /// CPU seconds burned by aborted attempts (service + commit bursts).
  [[nodiscard]] double wasted_cpu() const {
    return wasted_phase[static_cast<int>(obs::Phase::CpuService)] +
           wasted_phase[static_cast<int>(obs::Phase::Commit)];
  }

  /// I/O seconds burned by aborted attempts.
  [[nodiscard]] double wasted_io() const {
    return wasted_phase[static_cast<int>(obs::Phase::Io)];
  }

  /// All time burned by aborted attempts, every phase included.
  [[nodiscard]] double wasted_total() const {
    double s = 0.0;
    for (double w : wasted_phase) {
      s += w;
    }
    return s;
  }

  /// True when call k updates (exclusively locks) its entity.
  [[nodiscard]] bool writes_anything() const {
    for (const LockNeed& need : locks) {
      if (need.mode == LockMode::Exclusive) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace hls
