// Measurement container for one simulation run.
//
// Collected by HybridSystem during the measurement window (after warmup is
// discarded) and summarized by the experiment harness. Categories follow the
// paper's six transaction kinds: local / shipped / central, first-run /
// rerun, plus abort causes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hybrid/transaction.hpp"
#include "obs/phase.hpp"
#include "util/stats.hpp"

namespace hls {

/// One SampleStat per obs::Phase (indexable by the enum).
using PhaseStats = std::array<SampleStat, obs::kPhaseCount>;

/// Phase-time histograms matching Metrics::rt_histogram's binning
/// (Histogram has no default constructor, hence the vector + factory).
[[nodiscard]] inline std::vector<Histogram> make_phase_histograms() {
  return std::vector<Histogram>(obs::kPhaseCount, Histogram{0.1, 400});
}

/// Immutable record emitted for every transaction completion; the raw
/// material for traces and custom analyses (see core/trace.hpp).
struct TxnCompletionRecord {
  TxnId id = kInvalidTxn;
  TxnClass cls = TxnClass::A;
  Route route = Route::Local;
  int home_site = 0;
  double arrival_time = 0.0;
  double completion_time = 0.0;
  double response_time = 0.0;
  int runs = 1;  ///< total executions (1 = committed first try)
  int aborts[static_cast<int>(AbortCause::kCount)] = {};
  /// Where the response time went (seconds per obs::Phase; sums to
  /// response_time — the phase-sum identity, checked at completion).
  double phase[obs::kPhaseCount] = {};
  /// Time burned by this transaction's aborted attempts (subset of the
  /// phase[] totals above; zero when runs == 1).
  double wasted_cpu = 0.0;
  double wasted_io = 0.0;
  double wasted_total = 0.0;
};

/// Per-site breakdown, maintained alongside the global Metrics.
struct SiteMetrics {
  SampleStat rt_local_a;    ///< class A from this site run locally
  SampleStat rt_shipped_a;  ///< class A from this site shipped to central
  PhaseStats rt_phase;      ///< phase breakdown of completions homed here
  std::uint64_t arrivals_class_a = 0;
  std::uint64_t shipped_class_a = 0;

  // ---- fault handling, attributed to the home site ----
  // The global Metrics counters are maintained alongside these; the system's
  // check_invariants() asserts global == sum over sites for all three.
  std::uint64_t ship_timeouts = 0;
  std::uint64_t ship_retries = 0;
  std::uint64_t ship_fallbacks = 0;

  // ---- message-level chaos defenses, attributed to the link's site ----
  // Same double-entry rule: check_invariants() asserts global == sum over
  // sites for both.
  std::uint64_t dup_msgs_dropped = 0;  ///< duplicate deliveries rejected
  std::uint64_t msgs_resequenced = 0;  ///< out-of-order deliveries buffered

  // ---- abort provenance, attributed to the victim's home site ----
  // check_invariants() asserts the per-cause sums over sites equal the
  // global Metrics::aborts array entry for entry.
  std::uint64_t aborts[static_cast<int>(AbortCause::kCount)] = {};
  double wasted_cpu = 0.0;  ///< aborted-attempt CPU of victims homed here
  double wasted_io = 0.0;   ///< aborted-attempt I/O of victims homed here

  [[nodiscard]] std::uint64_t aborts_total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t a : aborts) {
      sum += a;
    }
    return sum;
  }

  [[nodiscard]] double ship_fraction() const {
    return arrivals_class_a > 0
               ? static_cast<double>(shipped_class_a) /
                     static_cast<double>(arrivals_class_a)
               : 0.0;
  }
};

struct Metrics {
  // ---- response times (seconds) ----
  SampleStat rt_all;        ///< the paper's headline: class A and B combined
  SampleStat rt_local_a;    ///< class A run at the home site
  SampleStat rt_shipped_a;  ///< class A shipped to the central site
  SampleStat rt_class_b;
  SampleStat rt_first_try;  ///< transactions that never aborted
  SampleStat rt_rerun;      ///< transactions that aborted at least once
  Histogram rt_histogram{0.1, 400};  ///< 0.1 s bins up to 40 s

  // ---- phase-level breakdown (obs/phase.hpp taxonomy) ----
  // One sample per completion and phase, even when the phase contributed
  // zero seconds, so phase means compose: sum of means == mean of rt_all.
  PhaseStats rt_phase;
  std::vector<Histogram> rt_phase_hist = make_phase_histograms();

  /// Mean seconds a completed transaction spent in `p`.
  [[nodiscard]] double phase_mean(obs::Phase p) const {
    return rt_phase[static_cast<std::size_t>(p)].mean();
  }

  /// Deterministic quantile of the per-phase distribution (e.g. 0.95).
  [[nodiscard]] double phase_quantile(obs::Phase p, double q) const {
    return rt_phase_hist[static_cast<std::size_t>(p)].quantile(q);
  }

  // ---- counts over the measurement window ----
  std::uint64_t arrivals_class_a = 0;
  std::uint64_t arrivals_class_b = 0;
  std::uint64_t shipped_class_a = 0;  ///< class A arrivals routed to central
  std::uint64_t completions = 0;
  std::uint64_t completions_local_a = 0;
  std::uint64_t completions_shipped_a = 0;
  std::uint64_t completions_class_b = 0;
  std::uint64_t aborts[static_cast<int>(AbortCause::kCount)] = {};
  std::uint64_t reruns = 0;  ///< total re-executions (= sum of aborts)

  // ---- abort provenance ----
  /// Aborts for which a specific winning transaction was identified
  /// (async-update invalidation, auth preemption, auth refusal by a named
  /// holder, deadlock). Crash/timeout aborts have no winner.
  std::uint64_t aborts_with_winner = 0;
  /// Aborted-attempt time, split by the cause that threw it away.
  double wasted_cpu_by_cause[static_cast<int>(AbortCause::kCount)] = {};
  double wasted_io_by_cause[static_cast<int>(AbortCause::kCount)] = {};
  /// One sample per completion: that transaction's total wasted time
  /// (zero for first-try commits, so the mean composes over completions).
  SampleStat wasted_per_txn;

  /// victim-home-site × winner-home-site abort counts, flattened row-major;
  /// the extra last column counts aborts with no winning transaction
  /// (crash sweeps, ship timeouts, coherence-in-flight refusals). Sized by
  /// init_conflict_matrix — Metrics::reset() clears it, so the system
  /// re-initializes it when a measurement window opens.
  std::vector<std::uint64_t> conflict_matrix;
  int conflict_sites = 0;

  void init_conflict_matrix(int n_sites) {
    conflict_sites = n_sites;
    conflict_matrix.assign(
        static_cast<std::size_t>(n_sites) *
            static_cast<std::size_t>(n_sites + 1),
        0);
  }

  void record_conflict(int victim_site, int winner_site) {
    if (conflict_sites == 0) return;  // outside a measurement window
    const int col = winner_site >= 0 ? winner_site : conflict_sites;
    conflict_matrix[static_cast<std::size_t>(victim_site) *
                        static_cast<std::size_t>(conflict_sites + 1) +
                    static_cast<std::size_t>(col)] += 1;
  }

  /// Entry (victim site row, winner site column; column n_sites = none).
  [[nodiscard]] std::uint64_t conflict(int victim_site, int winner_col) const {
    return conflict_matrix[static_cast<std::size_t>(victim_site) *
                               static_cast<std::size_t>(conflict_sites + 1) +
                           static_cast<std::size_t>(winner_col)];
  }

  [[nodiscard]] std::uint64_t conflict_matrix_total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t c : conflict_matrix) {
      sum += c;
    }
    return sum;
  }

  [[nodiscard]] double wasted_cpu_total() const {
    double s = 0.0;
    for (double w : wasted_cpu_by_cause) {
      s += w;
    }
    return s;
  }

  [[nodiscard]] double wasted_io_total() const {
    double s = 0.0;
    for (double w : wasted_io_by_cause) {
      s += w;
    }
    return s;
  }
  std::uint64_t async_updates_sent = 0;
  std::uint64_t auth_rounds = 0;
  std::uint64_t auth_negative_acks = 0;
  int max_reruns_seen = 0;

  // ---- fault handling (all zero without fault injection) ----
  std::uint64_t ship_timeouts = 0;    ///< shipped-txn timeout expiries
  std::uint64_t ship_retries = 0;     ///< reships after a timeout
  std::uint64_t ship_fallbacks = 0;   ///< retry budget exhausted; ran locally
  std::uint64_t central_crashes = 0;
  std::uint64_t central_recoveries = 0;
  std::uint64_t site_crashes = 0;
  std::uint64_t site_recoveries = 0;
  std::uint64_t backlog_replayed = 0;   ///< messages replayed at recovery
  std::uint64_t arrivals_rejected = 0;  ///< arrivals at a crashed site

  // ---- message-level chaos defenses (zero without message faults) ----
  /// Deliveries whose per-link sequence number was already processed or
  /// already buffered (duplicate-delivery chaos); the handler never ran.
  std::uint64_t dup_msgs_dropped = 0;
  /// Deliveries that arrived ahead of a sequence gap (reordering chaos) and
  /// were buffered until the gap filled; handlers ran in sequence order.
  std::uint64_t msgs_resequenced = 0;

  // ---- window ----
  double measure_start = 0.0;
  double measure_end = 0.0;

  // ---- utilization (filled in by the driver at window end) ----
  double central_utilization = 0.0;
  double mean_local_utilization = 0.0;
  double central_avg_queue = 0.0;
  double mean_local_avg_queue = 0.0;

  [[nodiscard]] double window_seconds() const { return measure_end - measure_start; }

  /// Completed transactions per second over the measurement window.
  [[nodiscard]] double throughput() const {
    const double w = window_seconds();
    return w > 0 ? static_cast<double>(completions) / w : 0.0;
  }

  /// Fraction of class A arrivals that were shipped to the central site.
  [[nodiscard]] double ship_fraction() const {
    return arrivals_class_a > 0
               ? static_cast<double>(shipped_class_a) /
                     static_cast<double>(arrivals_class_a)
               : 0.0;
  }

  [[nodiscard]] std::uint64_t aborts_total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t a : aborts) {
      sum += a;
    }
    return sum;
  }

  /// Average number of runs per completed transaction (1 = no aborts).
  [[nodiscard]] double runs_per_txn() const {
    return completions > 0
               ? 1.0 + static_cast<double>(reruns) / static_cast<double>(completions)
               : 1.0;
  }

  void reset(double now) {
    *this = Metrics{};
    measure_start = now;
    measure_end = now;
  }
};

}  // namespace hls
