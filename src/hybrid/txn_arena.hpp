// Pooled storage for live transactions with an open-addressing id index.
//
// Replaces the unordered_map<TxnId, unique_ptr<Transaction>> that used to
// anchor every live transaction: slots — and the capacity of each slot's
// access-pattern vectors — are recycled across transactions, so steady-state
// admission allocates nothing, and lookup is one multiplicative hash plus a
// short linear probe in a table kept at most half full.
//
// Slot reuse is safe by construction: the factory never reuses an id, and
// every scheduled callback carries (TxnId, epoch) revalidated through
// HybridSystem::find, so a callback armed for a previous occupant of a slot
// misses in the id index (its id is gone) or fails the epoch check, and is
// dropped — exactly as it was with map storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hybrid/transaction.hpp"
#include "util/assert.hpp"

namespace hls {

class TxnArena {
 public:
  TxnArena() : table_(kInitialCap) {}

  /// Borrows a recycled (or fresh) slot. Fill it — id included — then call
  /// commit() to register it in the index. At most one checkout may be
  /// outstanding; the pointer stays valid until release() of its id.
  Transaction* checkout() {
    HLS_ASSERT(pending_ == kNoSlot, "nested arena checkout");
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot]->recycle();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(std::make_unique<Transaction>());
    }
    pending_ = slot;
    return slots_[slot].get();
  }

  /// Registers the checked-out transaction under its (now final) id.
  void commit(Transaction* txn) {
    HLS_ASSERT(pending_ != kNoSlot && slots_[pending_].get() == txn,
               "commit without a matching checkout");
    HLS_ASSERT(txn->id != kInvalidTxn, "transaction must have a valid id");
    insert_index(txn->id, pending_);
    pending_ = kNoSlot;
  }

  /// O(1) expected lookup; nullptr when the id is not live.
  [[nodiscard]] Transaction* lookup(TxnId id) const {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(id) & mask;
    while (table_[i].id != kInvalidTxn) {
      if (table_[i].id == id) {
        return slots_[table_[i].slot].get();
      }
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Unregisters `id` and recycles its slot; the id must be live.
  void release(TxnId id) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(id) & mask;
    while (table_[i].id != id) {
      HLS_ASSERT(table_[i].id != kInvalidTxn, "releasing an unknown txn id");
      i = (i + 1) & mask;
    }
    free_.push_back(table_[i].slot);
    // Backward-shift deletion keeps probe chains gap-free without
    // tombstones, so the admit/complete churn of a long run never
    // accumulates garbage that would degrade lookups or force rehashes.
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (table_[j].id == kInvalidTxn) {
        break;
      }
      const std::size_t ideal = hash(table_[j].id) & mask;
      // Entry j may fill the hole only if its probe path passes through the
      // hole (cyclically, ideal .. j covers hole); otherwise it would
      // become unreachable from its ideal position.
      if (((j - ideal) & mask) >= ((j - hole) & mask)) {
        table_[hole] = table_[j];
        hole = j;
      }
    }
    table_[hole] = IndexEntry{};
    --count_;
  }

  [[nodiscard]] std::size_t live_count() const { return count_; }

  /// Visits every live transaction in index order — deterministic for a
  /// given operation history but not meaningful; callers needing a stable
  /// processing order must sort the ids they collect (crash handling does).
  template <typename F>
  void for_each(F&& f) const {
    for (const IndexEntry& e : table_) {
      if (e.id != kInvalidTxn) {
        f(*slots_[e.slot]);
      }
    }
  }

 private:
  struct IndexEntry {
    TxnId id = kInvalidTxn;
    std::uint32_t slot = 0;
  };

  static constexpr std::size_t kInitialCap = 64;  // power of two
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// SplitMix64 finalizer: sequential ids scatter uniformly.
  static std::uint64_t hash(TxnId id) {
    std::uint64_t x = id + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void insert_index(TxnId id, std::uint32_t slot) {
    if (2 * (count_ + 1) > table_.size()) {
      grow();
    }
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash(id) & mask;
    while (table_[i].id != kInvalidTxn) {
      HLS_ASSERT(table_[i].id != id, "duplicate txn id");
      i = (i + 1) & mask;
    }
    table_[i] = IndexEntry{id, slot};
    ++count_;
  }

  void grow() {
    std::vector<IndexEntry> old = std::move(table_);
    table_.assign(old.size() * 2, IndexEntry{});
    const std::size_t mask = table_.size() - 1;
    for (const IndexEntry& e : old) {
      if (e.id == kInvalidTxn) {
        continue;
      }
      std::size_t i = hash(e.id) & mask;
      while (table_[i].id != kInvalidTxn) {
        i = (i + 1) & mask;
      }
      table_[i] = e;
    }
  }

  std::vector<IndexEntry> table_;
  std::size_t count_ = 0;
  std::vector<std::unique_ptr<Transaction>> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t pending_ = kNoSlot;
};

}  // namespace hls
