// System configuration for the hybrid distributed-centralized architecture.
//
// Defaults reproduce the paper's baseline (§4.1): 10 local sites of 1 MIPS,
// a 15-MIPS central complex, 0.2 s one-way links, 75% class A transactions,
// a 32K-element global lock space of which each site masters one tenth, and
// the [YU87] pathlengths quoted in §3.1 (10 DB calls x 30K instructions,
// 150K instructions of message handling / initiation per transaction).
//
// I/O constants are not printed in the paper (they come from the authors'
// trace); the defaults below are typical late-1980s disk times and are
// documented as a substitution in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/lock_types.hpp"
#include "sim/fault_schedule.hpp"
#include "util/assert.hpp"

namespace hls {

/// Which transaction aborts when a waits-for cycle is detected.
enum class DeadlockVictim : std::uint8_t {
  Requester,  ///< the transaction whose request closed the cycle (paper §4.1)
  Youngest,   ///< the most recently arrived transaction on the cycle — it has
              ///< the least work to redo (ablation)
};

/// How class B (global-data) transactions execute. The paper ships them to
/// the central site and notes the alternative without analyzing it
/// (§3: "potentially, these transactions could be run at a local site,
/// making remote function calls to the central site to obtain required
/// data; however, we do not analyze this possibility here"). RemoteCalls
/// implements that alternative: processing stays at the home site and every
/// database call round-trips to the central copy, after which commit uses
/// the normal authentication phase.
enum class ClassBMode : std::uint8_t {
  Ship,         ///< ship the whole transaction to the central site (paper)
  RemoteCalls,  ///< run at home; one round trip per database call
};

struct SystemConfig {
  // ---- topology ----
  int num_sites = 10;
  double local_mips = 1.0;     ///< local CPU speed, millions of instr/s
  double central_mips = 15.0;  ///< central CPU speed, millions of instr/s
  double comm_delay = 0.2;     ///< one-way local<->central delay, seconds

  /// Optional per-site CPU speed override (heterogeneous regions); empty =
  /// every site runs at local_mips. When set, must have num_sites entries.
  /// §5 lists the local/central MIPS among the factors the threshold
  /// heuristic must be retuned for; heterogeneity makes that concrete.
  std::vector<double> local_mips_per_site;

  // ---- workload ----
  double arrival_rate_per_site = 1.0;  ///< Poisson arrivals per site, txn/s
  double prob_class_a = 0.75;          ///< fraction of purely-local (class A) txns

  // ---- transaction shape (per §3.1 / [YU87]) ----
  int db_calls_per_txn = 10;
  /// When true, the number of DB calls is geometric with mean
  /// db_calls_per_txn (truncated to [1, 8x mean]) instead of fixed —
  /// a variable-length workload extension for sensitivity studies.
  bool geometric_call_count = false;
  double instr_per_call = 30e3;    ///< database call processing
  double instr_msg_init = 75e3;    ///< arrival-side half of the 150K message path
  double instr_msg_commit = 75e3;  ///< commit-side half of the 150K message path
  double setup_io_time = 0.035;    ///< initial I/O before any lock is held, s
  double call_io_time = 0.025;     ///< I/O per database call, s
  double prob_call_io = 1.0;       ///< fraction of DB calls that do an I/O
  double prob_write_lock = 0.25;   ///< probability a lock request is exclusive

  // ---- lock space ----
  std::uint32_t lockspace = 32768;  ///< global number of lockable entities

  // ---- protocol overhead pathlengths (instructions) ----
  double instr_ship_forward = 15e3;       ///< local: forward a shipped txn's input
  double instr_apply_update = 10e3;       ///< central: apply one async update msg
  double instr_apply_update_item = 2e3;   ///< central: extra per batched item

  /// Batching window for asynchronous update propagation (§2: "these
  /// asynchronous messages may also be batched to reduce the overheads
  /// involved"). 0 disables batching: every local commit ships its own
  /// message. With a window w > 0, a site accumulates committed updates and
  /// flushes them as one message at most w seconds after the first pending
  /// update. Batching trades central apply overhead against longer
  /// coherence windows (more authentication refusals).
  double async_batch_window = 0.0;
  double instr_recv_ack = 2e3;            ///< local: process an async-update ack
  double instr_auth_local = 10e3;         ///< local: process an authentication request
  double instr_commit_apply_local = 5e3;  ///< local: apply a central commit msg
  double instr_send_async = 5e3;          ///< local: send the async update at commit

  // ---- control ----
  DeadlockVictim deadlock_victim = DeadlockVictim::Requester;
  ClassBMode class_b_mode = ClassBMode::Ship;
  double instr_remote_call = 15e3;  ///< central: serve one remote DB call
  std::uint64_t seed = 1;
  double abort_restart_delay = 0.0;  ///< optional backoff before a rerun, s
  int max_reruns = 1000;             ///< safety valve against livelock bugs
  /// Deterministic livelock breaker (docs/PROTOCOL.md): once a transaction
  /// has rerun more than `livelock_backoff_after` times, every further
  /// restart stalls an extra
  /// `livelock_backoff * (run_count - livelock_backoff_after)` seconds on
  /// top of abort_restart_delay, de-synchronizing mutual-abort limit cycles
  /// (two transactions deadlocking each other forever on identical re-run
  /// lock sequences). The threshold sits far above any rerun count the
  /// paper workloads reach, so runs that do not livelock are untouched.
  /// livelock_backoff = 0 disables the breaker.
  int livelock_backoff_after = 20;
  double livelock_backoff = 0.1;
  bool ideal_state_info = false;     ///< strategies see fresh central state

  // ---- fault injection (sim/fault_schedule) ----
  /// Deterministic outage/degradation schedule; empty injects nothing and
  /// leaves the simulation bit-identical to a fault-free build.
  FaultScheduleConfig faults;

  /// Timeout on a shipped class A transaction's central execution, seconds;
  /// 0 disables the timer. On expiry the home site reclaims the (possibly
  /// dead) central incarnation and reships; each retry multiplies the
  /// timeout by ship_backoff, and after ship_max_retries reships the
  /// transaction falls back to local execution.
  double ship_timeout = 0.0;
  double ship_backoff = 2.0;  ///< timeout multiplier per retry (>= 1)
  int ship_max_retries = 2;   ///< reships before the local fallback (>= 0)

  /// Seeded jitter on the ship-timeout backoff: each armed timer's delay is
  /// scaled by 1 + ship_jitter * U[0,1) from a dedicated stream forked off
  /// the config seed (de-synchronizes timeout storms). 0 (the default)
  /// keeps the fixed backoff and forks no stream, so existing figures stay
  /// byte-identical.
  double ship_jitter = 0.0;

  // ---- chaos-soak envelope (core/chaos, docs/CHAOS.md) ----
  /// Strategy spec a chaos episode/repro config runs under
  /// (routing parse_strategy_spec grammar); empty outside chaos files.
  std::string chaos_strategy;
  /// Seconds of open arrivals in a chaos episode before the drain phase;
  /// 0 outside chaos repro files.
  double chaos_run_seconds = 0.0;

  // ---- adaptive routing controller (routing/adaptive, docs/PROTOCOL.md) ----
  /// Review-epoch cadence of the adaptive controller, seconds; 0 (the
  /// default) disables it entirely — no review event is ever scheduled and
  /// every site keeps the optimistic-abort collision policy, so the event
  /// sequence stays bit-identical to a build without the controller. Only
  /// consulted when the installed strategy actually carries a controller
  /// (an `adapt:` spec); an `adapt@<interval>:` spec overrides this key.
  double adapt_interval = 0.0;
  /// Hill-climb step per review epoch for the tunable ship threshold.
  double adapt_threshold_step = 0.05;
  /// Epoch fraction of wasted work attributed to authentication refusals
  /// above which the controller backs off shipping (released at half).
  double adapt_refusal_frac = 0.5;
  /// Per-epoch abort count in one victim x winner conflict-matrix cell that
  /// counts as "hot" for the per-site lock-wait flip.
  int adapt_hot_conflicts = 8;

  // ---- observability (obs/) ----
  /// Cadence of the time-series sampler, seconds; 0 (the default) disables
  /// it entirely — no event is ever scheduled, keeping the event sequence
  /// bit-identical to a build without the sampler.
  double obs_sample_interval = 0.0;

  /// Span-sink specification for the driver: "" (default, no sink),
  /// "perfetto:PATH" (Chrome trace-event / Perfetto JSON), or "csv:PATH"
  /// (scalar event CSV). Attaching a sink changes emission only, never
  /// simulated timing.
  std::string obs_span_sink;

  /// Span trees listed in the run report's slowest-transactions section.
  int report_top_k = 5;

  /// Per-resource continuous telemetry: time-weighted IO-device occupancy,
  /// lock-manager wait-queue lengths, and link in-flight message counts,
  /// surfaced in the sampler series, Perfetto counter tracks, and the
  /// registry export. Off by default — when false no gauge is maintained,
  /// and enabling it only adds state writes (no events, no RNG forks), so
  /// the event sequence and metrics stay bit-identical either way.
  bool obs_resource_telemetry = false;

  /// Lock-access heat counters: the lock space is folded into this many
  /// equal-width buckets per lock manager and every request/authentication
  /// access increments its bucket. 0 (the default) keeps the counters
  /// entirely absent; like the gauges above, enabling them never perturbs
  /// the simulation.
  int obs_heat_buckets = 0;

  /// When non-empty, `run_simulation` serializes the metric registry as a
  /// canonical JSON run artifact at this path (schema in
  /// docs/OBSERVABILITY.md; diffed and gated by tools/hlsreport).
  std::string obs_artifact;

  /// Lock ids mastered by site s: [s*partition, (s+1)*partition).
  [[nodiscard]] std::uint32_t partition_size() const {
    return lockspace / static_cast<std::uint32_t>(num_sites);
  }

  [[nodiscard]] int owner_site(LockId lock) const {
    const int site = static_cast<int>(lock / partition_size());
    return site >= num_sites ? num_sites - 1 : site;  // remainder ids -> last site
  }

  [[nodiscard]] double local_cpu_seconds(double instructions) const {
    return instructions / (local_mips * 1e6);
  }

  /// Site s's CPU speed (the per-site override when present).
  [[nodiscard]] double site_mips(int s) const {
    return local_mips_per_site.empty() ? local_mips
                                       : local_mips_per_site[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] double site_cpu_seconds(int s, double instructions) const {
    return instructions / (site_mips(s) * 1e6);
  }

  [[nodiscard]] double central_cpu_seconds(double instructions) const {
    return instructions / (central_mips * 1e6);
  }

  /// Total new-transaction arrival rate over all sites, txn/s.
  [[nodiscard]] double total_arrival_rate() const {
    return arrival_rate_per_site * num_sites;
  }

  /// Aborts if the configuration is internally inconsistent.
  void validate() const {
    HLS_ASSERT(num_sites >= 1, "need at least one local site");
    HLS_ASSERT(local_mips > 0 && central_mips > 0, "MIPS must be positive");
    HLS_ASSERT(comm_delay >= 0, "negative communications delay");
    HLS_ASSERT(arrival_rate_per_site >= 0, "negative arrival rate");
    HLS_ASSERT(prob_class_a >= 0 && prob_class_a <= 1, "prob_class_a out of range");
    HLS_ASSERT(db_calls_per_txn >= 1, "transactions need at least one DB call");
    HLS_ASSERT(lockspace >= static_cast<std::uint32_t>(num_sites),
               "lock space smaller than site count");
    HLS_ASSERT(prob_write_lock >= 0 && prob_write_lock <= 1,
               "prob_write_lock out of range");
    HLS_ASSERT(prob_call_io >= 0 && prob_call_io <= 1, "prob_call_io out of range");
    HLS_ASSERT(local_mips_per_site.empty() ||
                   local_mips_per_site.size() == static_cast<std::size_t>(num_sites),
               "local_mips_per_site must be empty or have num_sites entries");
    for (double mips : local_mips_per_site) {
      HLS_ASSERT(mips > 0, "per-site MIPS must be positive");
    }
    HLS_ASSERT(ship_timeout >= 0, "negative ship timeout");
    HLS_ASSERT(ship_backoff >= 1.0, "ship_backoff must be at least 1");
    HLS_ASSERT(ship_max_retries >= 0, "negative ship retry budget");
    HLS_ASSERT(ship_jitter >= 0, "negative ship jitter");
    HLS_ASSERT(chaos_run_seconds >= 0, "negative chaos run window");
    HLS_ASSERT(adapt_interval >= 0, "negative adapt interval");
    HLS_ASSERT(adapt_threshold_step >= 0, "negative adapt threshold step");
    HLS_ASSERT(adapt_refusal_frac >= 0 && adapt_refusal_frac <= 1,
               "adapt_refusal_frac out of range");
    HLS_ASSERT(adapt_hot_conflicts >= 1, "adapt_hot_conflicts must be >= 1");
    HLS_ASSERT(obs_sample_interval >= 0, "negative sample interval");
    HLS_ASSERT(obs_span_sink.empty() ||
                   obs_span_sink.rfind("perfetto:", 0) == 0 ||
                   obs_span_sink.rfind("csv:", 0) == 0,
               "obs_span_sink must be empty, perfetto:PATH, or csv:PATH");
    HLS_ASSERT(report_top_k >= 0, "negative report_top_k");
    HLS_ASSERT(obs_heat_buckets >= 0, "negative obs_heat_buckets");
    HLS_ASSERT(faults.validate(num_sites), "invalid fault schedule");
  }
};

}  // namespace hls
