// HybridSystem: the full hybrid distributed-centralized database simulator.
//
// Wires together N local sites (CPU + lock table + duplex link) and the
// central complex (CPU + global lock table), drives Poisson transaction
// arrivals, executes the paper's protocol (§2), and consults a pluggable
// RoutingStrategy for every class A arrival (§3).
//
// Protocol summary as implemented:
//   * Local class A execution: initiation CPU, setup I/O (first run only),
//     then db_calls_per_txn rounds of [call CPU, lock request on the local
//     table, call I/O]. At commit, an abort mark (set when an authenticating
//     central transaction preempted one of this transaction's locks) forces
//     a rerun; otherwise the transaction releases its locks, increments the
//     coherence count of every updated entity, ships one asynchronous update
//     message to the central site, and completes immediately — it never
//     waits for the central acknowledgement.
//   * Central execution (class B and shipped class A): same shape against
//     the central lock table. At commit the transaction runs the
//     authentication phase: lock lists go to the master site(s); a master
//     refuses (negative ack) if any entity has in-flight asynchronous
//     updates or is held by a non-preemptible holder, otherwise it preempts
//     incompatible local holders (marking them for abort) and grants. On all
//     positive acks — and if no asynchronous update invalidated the
//     transaction meanwhile — commit messages release the granted locks and
//     the transaction completes; otherwise it releases its grants and reruns
//     at the central site.
//   * Asynchronous updates delivered in order (net::Link) invalidate central
//     locks on the updated entities: central holders are marked for abort
//     and lose those locks; an acknowledgement flows back and decrements the
//     coherence counts.
//   * Deadlocks (waits-for cycle within one site) abort the requester, which
//     releases everything and reruns.
//
// Reruns model re-referenced data as memory-resident: all CPU is re-spent,
// all I/O is skipped, and surviving locks are kept (per §3.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/lock_manager.hpp"
#include "hybrid/config.hpp"
#include "hybrid/metrics.hpp"
#include "hybrid/transaction.hpp"
#include "hybrid/txn_arena.hpp"
#include "net/link.hpp"
#include "obs/sample.hpp"
#include "obs/sink.hpp"
#include "routing/adaptive.hpp"
#include "routing/strategy.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "workload/arrivals.hpp"
#include "workload/txn_factory.hpp"

namespace hls {

namespace obs {
class Registry;
}

class HybridSystem {
 public:
  HybridSystem(SystemConfig cfg, std::unique_ptr<RoutingStrategy> strategy);
  ~HybridSystem();

  HybridSystem(const HybridSystem&) = delete;
  HybridSystem& operator=(const HybridSystem&) = delete;

  // ---- experiment control ----

  /// Starts the per-site Poisson arrival processes.
  void enable_arrivals();

  /// Replaces site `site`'s arrival process with a time-varying one
  /// (must be called before enable_arrivals).
  void set_arrival_rate_function(int site, RateFunction rate, double max_rate);

  /// Stops all arrival processes; in-flight transactions keep running. Used
  /// to drain the system (liveness tests) and by open-ended examples.
  void stop_arrivals();

  /// Runs the simulation until no events remain (all in-flight transactions
  /// have completed). Call stop_arrivals() first or this never returns.
  void drain();

  /// Advances simulated time by `seconds`.
  void run_for(double seconds);

  /// Discards statistics gathered so far (end of warmup).
  void begin_measurement();

  /// Stamps the window end and fills utilization summaries into metrics().
  void end_measurement();

  // ---- manual injection (tests, examples) ----

  /// Generates and immediately admits one transaction of the given class.
  TxnId inject(TxnClass cls, int site);

  /// Admits a fully specified transaction (access pattern chosen by caller).
  TxnId inject_transaction(Transaction txn);

  // ---- accessors ----

  Simulator& simulator() { return sim_; }
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  Metrics& metrics() {
    flush_phase_batch();
    return metrics_;
  }
  [[nodiscard]] const Metrics& metrics() const {
    flush_phase_batch();
    return metrics_;
  }
  [[nodiscard]] RoutingStrategy& strategy() { return *strategy_; }

  /// The installed strategy's adaptive controller, or nullptr when the
  /// strategy doesn't carry one (every non-`adapt:` spec).
  [[nodiscard]] const AdaptiveController* controller() const {
    return controller_;
  }

  /// Collision policy in force at `site` for a central authentication
  /// hitting a local class-A lock holder: the controller's per-site choice,
  /// or optimistic-abort (the paper's behaviour) without a controller.
  [[nodiscard]] CollisionPolicy collision_policy(int site) const {
    return controller_ != nullptr ? controller_->site_policy(site)
                                  : CollisionPolicy::OptimisticAbort;
  }

  /// Plain-data snapshot of the provenance + class-A latency sensors the
  /// controller reviews (exposed for controller unit tests).
  [[nodiscard]] ControllerFeed make_controller_feed() const;

  [[nodiscard]] const LockManager& central_locks() const { return *central_.locks; }
  [[nodiscard]] const LockManager& local_locks(int site) const;
  [[nodiscard]] const FcfsResource& central_cpu() const { return *central_.cpu; }
  [[nodiscard]] const FcfsResource& local_cpu(int site) const;
  [[nodiscard]] int central_resident() const { return central_.resident_txns; }
  [[nodiscard]] int local_resident(int site) const;
  [[nodiscard]] int shipped_in_flight(int site) const;
  [[nodiscard]] bool central_up() const { return central_.alive; }
  [[nodiscard]] bool site_up(int site) const;
  [[nodiscard]] int live_transactions() const {
    return static_cast<int>(arena_.live_count());
  }

  /// Aggregated link-level fault counters over both directions of every
  /// site's link (chaos oracles, fault-tolerance bench sweeps).
  struct LinkFaultTotals {
    std::uint64_t retransmitted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t delay_spikes = 0;
  };
  [[nodiscard]] LinkFaultTotals link_fault_totals() const;

  /// Per-site response-time / shipping breakdown (same measurement window
  /// as metrics()).
  [[nodiscard]] const SiteMetrics& site_metrics(int site) const;

  /// Registers a hook invoked on every transaction completion (tracing,
  /// custom analyses). Pass nullptr to clear.
  using CompletionHook = std::function<void(const TxnCompletionRecord&)>;
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  // ---- observability (obs/) ----

  /// Registers a structured trace sink; events whose kind is in the sink's
  /// kind_mask() are delivered as they happen. The sink must outlive the
  /// run (or be removed first). Emission never perturbs the simulation:
  /// with no sink interested in a kind, that kind costs one branch.
  void add_trace_sink(obs::TraceSink* sink);
  void remove_trace_sink(obs::TraceSink* sink);

  /// Rows recorded by the time-series sampler (config::obs_sample_interval
  /// > 0; empty otherwise). Cleared by begin_measurement().
  [[nodiscard]] const std::vector<obs::SampleRow>& sample_series() const {
    return series_;
  }
  /// Moves the series out (driver hand-off at the end of a run).
  [[nodiscard]] std::vector<obs::SampleRow> take_series() {
    return std::move(series_);
  }

  /// Exports every metric the run accumulated — counters, response-time
  /// stats, histograms, per-site and central resource telemetry, and (when
  /// armed) lock-access heat buckets — into `reg` under the stable names
  /// documented in docs/OBSERVABILITY.md. Read-only; callable any time.
  void export_registry(obs::Registry& reg) const;

  /// IO operations currently in progress on `track` (site index, or
  /// obs::kCentralTrack). Maintained only when obs_resource_telemetry is
  /// set; 0 otherwise.
  [[nodiscard]] int io_in_flight(int track) const;

  /// Builds the state view a class A arrival at `site` would see right now
  /// (exposed for strategy unit tests).
  [[nodiscard]] SystemStateView make_state_view(int site) const;

  /// Cross-checks internal bookkeeping; aborts on violation (tests).
  void check_invariants() const;

 private:
  /// One update in an asynchronous propagation batch: the entity plus the
  /// committing transaction, so central invalidations can name their winner.
  struct UpdateItem {
    LockId id;
    TxnId committer;
  };

  struct CentralSnapshot {
    double taken_at = 0.0;
    int cpu_queue = 0;
    int num_txns = 0;
    int locks_held = 0;
  };

  /// Per-link-direction sequence numbering (docs/PROTOCOL.md "Message
  /// sequence numbers and handler idempotence"). Every protocol message
  /// carries the sender's next sequence number; the receiver processes
  /// messages strictly in sequence, dropping duplicates and buffering
  /// early arrivals until the gap fills. With a FIFO link this is pure
  /// bookkeeping (two counter increments per message, no buffering), so
  /// fault-free runs stay byte-identical; under message-level chaos it is
  /// what makes the handlers idempotent.
  struct MsgSequencer {
    std::uint64_t next_send = 0;
    std::uint64_t next_deliver = 0;
    /// Early arrivals (seq > next_deliver), sorted by sequence number.
    std::vector<std::pair<std::uint64_t, UniqueFunction<void()>>> held;
  };

  struct SiteState {
    int index = 0;
    std::unique_ptr<FcfsResource> cpu;
    std::unique_ptr<LockManager> locks;
    std::unique_ptr<Link> up;    ///< site -> central
    std::unique_ptr<Link> down;  ///< central -> site
    std::unique_ptr<ArrivalProcess> arrivals;
    int resident_txns = 0;      ///< class A txns currently executing here
    int shipped_in_flight = 0;  ///< class A txns from here now at central
    double last_local_rt = 0.0;
    double last_shipped_rt = 0.0;
    CentralSnapshot central_view;  ///< last central state learned from messages
    MsgSequencer up_seq;    ///< sequences site -> central messages
    MsgSequencer down_seq;  ///< sequences central -> site messages
    // Asynchronous-update batching (config::async_batch_window > 0).
    std::vector<UpdateItem> pending_updates;
    bool flush_armed = false;
    // Fault state: while the site's DB is down, inbound deliveries queue in
    // `backlog` and crashed local transactions wait in `recovery_queue`.
    bool alive = true;
    std::vector<UniqueFunction<void()>> backlog;
    std::vector<std::pair<TxnId, std::uint64_t>> recovery_queue;
    // Per-resource telemetry (maintained only when obs_resource_telemetry).
    int io_in_flight = 0;
    TimeWeightedStat io_tw;
  };

  struct CentralState {
    std::unique_ptr<FcfsResource> cpu;
    std::unique_ptr<LockManager> locks;
    int resident_txns = 0;  ///< class B + shipped class A currently at central
    // Fault state (same shape as SiteState): the backlog preserves the §2
    // FIFO requirement across an outage — it replays in arrival order at
    // recovery, before any aborted resident restarts.
    bool alive = true;
    std::vector<UniqueFunction<void()>> backlog;
    std::vector<std::pair<TxnId, std::uint64_t>> recovery_queue;
    // Per-resource telemetry (maintained only when obs_resource_telemetry).
    int io_in_flight = 0;
    TimeWeightedStat io_tw;
  };

  // ---- plumbing ----
  Transaction* find(TxnId id, std::uint64_t epoch);
  /// Submits a CPU burst; on completion the leading queue wait is settled to
  /// ReadyQueue and the service time to `service_phase` (CpuService/Commit).
  /// `track` names the span track (site index, or obs::kCentralTrack).
  void cpu_burst(FcfsResource& cpu, double seconds, Transaction* txn,
                 obs::Phase service_phase, int track,
                 void (HybridSystem::*next)(Transaction*));
  /// Plain delay; the elapsed time is settled to `phase` (Io or Stall).
  void wait(double seconds, Transaction* txn, obs::Phase phase, int track,
            void (HybridSystem::*next)(Transaction*));
  void send_up(int site, UniqueFunction<void()> deliver);
  void send_down(int site, UniqueFunction<void()> deliver);
  /// Receiver half of the sequence-number protocol: runs `process` when
  /// `seq` is next in `q`'s order, drops it as a duplicate when already
  /// processed/buffered, or buffers it ahead of a gap. `site` attributes
  /// the dedup/resequence counters.
  void deliver_in_order(MsgSequencer& q, int site, std::uint64_t seq,
                        UniqueFunction<void()> process);
  void complete(Transaction* txn, SimTime completion_time);
  /// Books an abort: provenance (cause, winner from txn->marked_by, wasted
  /// attempt time) into metrics and the abort event, then resets the
  /// transaction's execution state for the next attempt.
  void prepare_rerun(Transaction* txn, AbortCause cause);
  /// Stall before the next attempt: abort_restart_delay plus the livelock
  /// breaker's growing backoff once run_count passes the configured
  /// threshold (call after prepare_rerun bumped run_count).
  [[nodiscard]] double restart_delay_for(const Transaction* txn) const;

  // ---- span tracer (all no-ops unless a sink subscribed to Span/Edge) ----
  /// Emits one phase span [begin, end] on `track` for `txn`.
  void span_note(const Transaction& txn, obs::Phase p, double begin, double end,
                 int track);
  /// settle() + span emission; `t` is the segment end (usually now).
  void span_settle(Transaction* txn, obs::Phase p, double t, int track);
  /// settle_burst() + spans for the queue-wait and service segments.
  void span_burst(Transaction* txn, obs::Phase service_phase, double service,
                  int track);
  /// interrupt() + a span for the retrospectively settled segment.
  void span_interrupt(Transaction* txn, int track);
  /// Emits a causal cross-track edge (flow event in the Perfetto export).
  void edge_note(obs::EdgeKind kind, TxnId txn, double src_time, int src_track,
                 double dst_time, int dst_track, TxnId winner = kInvalidTxn);
  /// Emits the armed retry edge linking an abort to this run start, if any.
  void consume_retry_edge(Transaction* txn, int track);
  /// Records the deadlock winner (first other live cycle member) on the
  /// requester-victim so prepare_rerun can attribute the abort.
  void set_deadlock_winner(Transaction* requester,
                           const std::vector<TxnId>& cycle);

  /// Applies config::deadlock_victim to a detected cycle: returns the
  /// transaction to abort (the requester when policy says so, or when no
  /// other cycle member is eligible).
  Transaction* choose_deadlock_victim(Transaction* requester,
                                      const std::vector<TxnId>& cycle);
  /// Force-aborts a waiting victim (not the requester): releases its locks,
  /// preps a rerun and restarts it on its execution tier. The requester is
  /// the conflict winner for provenance.
  void force_abort_victim(Transaction* victim, Transaction* requester);

  // ---- arrivals / routing ----
  void on_arrival(int site);
  /// Starts an arena-resident transaction (registered via arena_.commit).
  void admit(Transaction* txn);

  // ---- local class A execution ----
  void local_start_run(Transaction* txn);
  void local_after_init(Transaction* txn);
  void local_do_call(Transaction* txn);
  void local_after_call_cpu(Transaction* txn);
  void local_lock_granted(Transaction* txn);
  void local_commit(Transaction* txn);
  void local_after_commit_cpu(Transaction* txn);
  void local_finalize(Transaction* txn);
  void local_abort(Transaction* txn, AbortCause cause, bool release_everything);

  // ---- central execution (class B and shipped class A) ----
  void ship_to_central(Transaction* txn);
  void ship_after_forward(Transaction* txn);
  void central_start_run(Transaction* txn);
  void central_after_init(Transaction* txn);
  void central_do_call(Transaction* txn);
  void central_after_call_cpu(Transaction* txn);
  void central_lock_granted(Transaction* txn);
  void central_commit(Transaction* txn);
  void central_after_commit_cpu(Transaction* txn);
  void central_begin_auth(Transaction* txn);
  /// Restarts a central-data transaction's next run on the right tier
  /// (central for shipped/class B, home for remote-call class B).
  void schedule_central_restart(Transaction* txn);

  // ---- class B via remote function calls (ClassBMode::RemoteCalls) ----
  void rfc_start_run(Transaction* txn);
  void rfc_after_init(Transaction* txn);
  void rfc_do_call(Transaction* txn);
  void rfc_after_call_cpu(Transaction* txn);
  void rfc_central_request(TxnId id, std::uint64_t epoch);
  void rfc_central_after_lock(Transaction* txn);
  void rfc_reply_send(Transaction* txn);
  void rfc_reply_received(Transaction* txn);
  void rfc_commit(Transaction* txn);
  void rfc_after_commit_cpu(Transaction* txn);
  void rfc_central_commit(Transaction* txn);
  [[nodiscard]] bool is_rfc(const Transaction& txn) const {
    return txn.cls == TxnClass::B && cfg_.class_b_mode == ClassBMode::RemoteCalls;
  }
  void local_process_auth(int site, TxnId txn_id, std::uint64_t epoch,
                          std::vector<LockNeed> needs);
  void central_auth_ack(TxnId txn_id, std::uint64_t epoch, int site, bool positive,
                        bool granted, TxnId blocker, int blocker_site);
  void central_auth_done(Transaction* txn);
  void release_auth_grants(Transaction* txn);
  void central_abort_rerun(Transaction* txn, AbortCause cause,
                           bool release_everything);

  // ---- fault injection ----
  /// Expands cfg_.faults into simulator events (constructor; only when the
  /// schedule is non-empty, so fault-free runs fork no extra RNG streams).
  void schedule_fault_transitions();
  void apply_fault_transition(const FaultTransition& tr);
  /// Installs message-level fault knobs on both directions of `site`'s link
  /// (msg_fault window begin, or restore of the steady-state values).
  void apply_msg_fault(int site, double dup_prob, double reorder_prob,
                       double spike_prob, double spike_factor);
  /// Straggler displacement bound: the configured reorder window, or one
  /// link delay when unset.
  [[nodiscard]] double effective_reorder_window() const;
  void central_crash();
  void central_recover();
  void site_crash(int site);
  void site_recover(int site);
  /// Failure-detector cleanup: expires this transaction's authentication
  /// grabs at every master site it could have contacted (acked or not).
  void release_auth_holds_everywhere(Transaction* txn);
  /// Arms the home-site timeout for a shipped class A transaction (no-op
  /// when cfg_.ship_timeout is 0); the delay backs off per retry.
  void arm_ship_timeout(Transaction* txn);
  void on_ship_timeout(TxnId id, std::uint64_t attempt);

  // ---- observability internals ----
  [[nodiscard]] bool obs_wants(obs::EventKind kind) const {
    return (sink_mask_ & obs::kind_bit(kind)) != 0;
  }
  /// Adjusts the IO-occupancy gauge for `track` by `delta`. A single branch
  /// when obs_resource_telemetry is off.
  void note_io(int track, int delta);
  void emit_event(const obs::Event& event);
  /// Takes one time-series row and re-arms the sampler while work remains
  /// (so drain() still terminates with sampling enabled).
  void take_sample();

  /// Runs one controller review epoch (feed snapshot -> on_review) and
  /// re-arms the chain while work remains, mirroring take_sample so drain()
  /// still terminates with the controller active.
  void controller_review();

  // ---- asynchronous update propagation ----
  /// Entry point from local commit: ships immediately, or appends to the
  /// site's batch and arms the flush timer when batching is configured.
  void queue_async_update(int site, std::vector<UpdateItem> items);
  void send_async_update(int site, std::vector<UpdateItem> items);
  void central_apply_update(int site, const std::vector<UpdateItem>& items);

  // ---- struct-of-arrays staging for per-phase completion statistics ----
  /// The per-phase SampleStat/Histogram adds are the hottest accumulator
  /// group in complete() (3 * kPhaseCount adds per completion, each touching
  /// a different cache line). Completions stage their phase vector here and
  /// the flush replays the samples one accumulator at a time, in completion
  /// order — so every accumulator sees exactly the add sequence it would
  /// have seen unbatched and its state (including Welford running moments)
  /// stays bit-identical.
  struct PhaseBatch {
    static constexpr int kCapacity = 256;
    int n = 0;
    double value[obs::kPhaseCount][kCapacity];
    int home_site[kCapacity];
  };
  /// Drains phase_batch_ into metrics_ / site_metrics_. Const because the
  /// staged samples are already logically part of the metrics; flushing only
  /// materializes them, which is why the read accessors may call it.
  void flush_phase_batch() const;

  SystemConfig cfg_;
  Simulator sim_;
  std::unique_ptr<RoutingStrategy> strategy_;
  TxnFactory factory_;
  Rng rng_;
  Rng ship_jitter_rng_;  ///< forked only when cfg_.ship_jitter > 0
  std::vector<SiteState> sites_;
  CentralState central_;
  Metrics metrics_;
  std::vector<SiteMetrics> site_metrics_;
  mutable PhaseBatch phase_batch_;
  CompletionHook completion_hook_;
  std::vector<obs::TraceSink*> sinks_;
  unsigned sink_mask_ = 0;  ///< union of registered sinks' kind masks
  std::vector<obs::SampleRow> series_;
  TxnArena arena_;
  AdaptiveController* controller_ = nullptr;  ///< borrowed from strategy_
  double adapt_interval_ = 0.0;  ///< resolved review cadence; 0 = inert
  bool arrivals_enabled_ = false;
  /// cfg_.obs_resource_telemetry, cached: gates every gauge update on the
  /// hot paths with a single branch.
  bool resource_telemetry_ = false;
};

}  // namespace hls
