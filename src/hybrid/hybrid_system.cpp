#include "hybrid/hybrid_system.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/registry.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace hls {

HybridSystem::HybridSystem(SystemConfig cfg, std::unique_ptr<RoutingStrategy> strategy)
    : cfg_(cfg),
      strategy_(std::move(strategy)),
      factory_(cfg_, Rng(cfg.seed)),
      rng_(cfg.seed ^ 0xA5A5A5A5A5A5A5A5ULL) {
  cfg_.validate();
  HLS_ASSERT(strategy_ != nullptr, "HybridSystem requires a routing strategy");

  central_.cpu = std::make_unique<FcfsResource>(sim_, "central-cpu");
  central_.locks = std::make_unique<LockManager>(sim_, "central-locks");

  sites_.resize(cfg_.num_sites);
  site_metrics_.resize(cfg_.num_sites);
  for (int s = 0; s < cfg_.num_sites; ++s) {
    SiteState& site = sites_[s];
    site.index = s;
    const std::string tag = "site" + std::to_string(s);
    site.cpu = std::make_unique<FcfsResource>(sim_, tag + "-cpu");
    site.locks = std::make_unique<LockManager>(sim_, tag + "-locks");
    site.up = std::make_unique<Link>(sim_, cfg_.comm_delay, tag + "-up");
    site.down = std::make_unique<Link>(sim_, cfg_.comm_delay, tag + "-down");
    site.arrivals = std::make_unique<ArrivalProcess>(
        sim_, rng_.fork("hybrid.site-arrivals"), cfg_.arrival_rate_per_site);
  }

  metrics_.init_conflict_matrix(cfg_.num_sites);

  // Fault injection is armed only for a non-empty schedule so that fault-free
  // configurations fork no extra RNG streams and schedule no extra events —
  // their event sequence is bit-identical to a build without this feature.
  if (!cfg_.faults.empty()) {
    schedule_fault_transitions();
  }

  // The ship-jitter stream follows the same rule: forked only when enabled.
  // Fork order off rng_ is part of the determinism contract (tests
  // reconstruct it): num_sites arrival forks above, the fault-schedule forks
  // when armed, then this.
  if (cfg_.ship_jitter > 0.0) {
    ship_jitter_rng_ = rng_.fork("hybrid.ship-jitter");
  }

  // The time-series sampler follows the same byte-parity rule: with the
  // default interval of 0 no event is ever scheduled. Sampler callbacks only
  // read state, so enabling it never changes Metrics for a given seed.
  if (cfg_.obs_sample_interval > 0.0) {
    sim_.schedule_at(cfg_.obs_sample_interval, [this] { take_sample(); });
  }

  // Per-resource telemetry and lock-access heat counters are pure state
  // writes on paths that already run — no events, no RNG forks — so arming
  // them keeps the event sequence and Metrics bit-identical; leaving them
  // off (the default) keeps even the state writes absent.
  resource_telemetry_ = cfg_.obs_resource_telemetry;
  if (resource_telemetry_) {
    const double now = sim_.now();
    central_.locks->enable_wait_telemetry(now);
    central_.io_tw.set(now, 0.0);
    for (SiteState& site : sites_) {
      site.locks->enable_wait_telemetry(now);
      site.up->enable_flight_telemetry(now);
      site.down->enable_flight_telemetry(now);
      site.io_tw.set(now, 0.0);
    }
  }
  if (cfg_.obs_heat_buckets > 0) {
    central_.locks->enable_heat(cfg_.obs_heat_buckets, cfg_.lockspace);
    for (SiteState& site : sites_) {
      site.locks->enable_heat(cfg_.obs_heat_buckets, cfg_.lockspace);
    }
  }

  // The adaptive-routing controller follows the same byte-parity rule: it
  // exists only when the installed strategy carries one (an `adapt:` spec),
  // and its review chain is scheduled only for a positive cadence — spec
  // override first, config key otherwise. With the default adapt_interval
  // of 0 no review event is scheduled, no controller state is rebound, and
  // collision_policy() reads the strategy's standing per-site policies (all
  // optimistic-abort unless a test pre-flipped them), so default runs stay
  // bit-identical to a build without the controller.
  controller_ = strategy_->controller();
  if (controller_ != nullptr) {
    adapt_interval_ = controller_->interval_override() > 0.0
                          ? controller_->interval_override()
                          : cfg_.adapt_interval;
    if (adapt_interval_ > 0.0) {
      ControllerParams params;
      params.threshold_step = cfg_.adapt_threshold_step;
      params.refusal_frac = cfg_.adapt_refusal_frac;
      params.hot_conflicts = static_cast<std::uint64_t>(cfg_.adapt_hot_conflicts);
      controller_->bind(cfg_.num_sites, params);
      sim_.schedule_at(adapt_interval_, [this] { controller_review(); });
    }
  }
}

HybridSystem::~HybridSystem() = default;

// --------------------------------------------------------------------------
// experiment control

void HybridSystem::enable_arrivals() {
  HLS_ASSERT(!arrivals_enabled_, "arrivals already enabled");
  arrivals_enabled_ = true;
  for (SiteState& site : sites_) {
    site.arrivals->start([this, s = site.index] { on_arrival(s); });
  }
}

void HybridSystem::set_arrival_rate_function(int site, RateFunction rate,
                                             double max_rate) {
  HLS_ASSERT(!arrivals_enabled_, "cannot replace a running arrival process");
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  sites_[site].arrivals =
      std::make_unique<ArrivalProcess>(
      sim_, rng_.fork("hybrid.arrival-rate-fn"), std::move(rate), max_rate);
}

void HybridSystem::stop_arrivals() {
  // Clearing the flag also lets the sampler chain wind down once the last
  // in-flight transaction completes, so drain() still terminates.
  arrivals_enabled_ = false;
  for (SiteState& site : sites_) {
    site.arrivals->stop();
  }
}

void HybridSystem::drain() { sim_.run(); }

void HybridSystem::run_for(double seconds) { sim_.run_until(sim_.now() + seconds); }

void HybridSystem::flush_phase_batch() const {
  PhaseBatch& batch = phase_batch_;
  if (batch.n == 0) {
    return;
  }
  // Logically const: the staged samples already belong to the accumulators
  // below; this just materializes them.
  auto* self = const_cast<HybridSystem*>(this);
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    SampleStat& stat = self->metrics_.rt_phase[static_cast<std::size_t>(p)];
    for (int i = 0; i < batch.n; ++i) {
      stat.add(batch.value[p][i]);
    }
    Histogram& hist = self->metrics_.rt_phase_hist[static_cast<std::size_t>(p)];
    for (int i = 0; i < batch.n; ++i) {
      hist.add(batch.value[p][i]);
    }
  }
  for (int i = 0; i < batch.n; ++i) {
    SiteMetrics& sm = self->site_metrics_[batch.home_site[i]];
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      sm.rt_phase[static_cast<std::size_t>(p)].add(batch.value[p][i]);
    }
  }
  batch.n = 0;
}

void HybridSystem::begin_measurement() {
  phase_batch_.n = 0;  // staged pre-window completions are out of scope
  metrics_.reset(sim_.now());
  metrics_.init_conflict_matrix(cfg_.num_sites);  // reset() wiped the sizing
  central_.cpu->reset_stats();
  for (SiteState& site : sites_) {
    site.cpu->reset_stats();
  }
  for (SiteMetrics& sm : site_metrics_) {
    sm = SiteMetrics{};
  }
  series_.clear();  // the time series covers the measurement window only
  if (resource_telemetry_ || cfg_.obs_heat_buckets > 0) {
    const double now = sim_.now();
    central_.locks->reset_telemetry(now);
    central_.io_tw.reset(now);
    for (SiteState& site : sites_) {
      site.locks->reset_telemetry(now);
      site.up->reset_telemetry(now);
      site.down->reset_telemetry(now);
      site.io_tw.reset(now);
    }
  }
}

void HybridSystem::end_measurement() {
  flush_phase_batch();
  metrics_.measure_end = sim_.now();
  metrics_.central_utilization = central_.cpu->utilization();
  metrics_.central_avg_queue = central_.cpu->average_queue_length();
  double util_sum = 0.0;
  double queue_sum = 0.0;
  for (const SiteState& site : sites_) {
    util_sum += site.cpu->utilization();
    queue_sum += site.cpu->average_queue_length();
  }
  metrics_.mean_local_utilization = util_sum / static_cast<double>(cfg_.num_sites);
  metrics_.mean_local_avg_queue = queue_sum / static_cast<double>(cfg_.num_sites);
}

TxnId HybridSystem::inject(TxnClass cls, int site) {
  Transaction* t = arena_.checkout();
  factory_.fill_of_class(*t, cls, site, sim_.now());
  arena_.commit(t);
  admit(t);
  return t->id;
}

TxnId HybridSystem::inject_transaction(Transaction txn) {
  HLS_ASSERT(txn.id != kInvalidTxn, "transaction must have a valid id");
  HLS_ASSERT(txn.home_site >= 0 && txn.home_site < cfg_.num_sites,
             "home site out of range");
  const TxnId id = txn.id;
  txn.arrival_time = sim_.now();
  Transaction* t = arena_.checkout();
  *t = std::move(txn);
  arena_.commit(t);
  admit(t);
  return id;
}

// --------------------------------------------------------------------------
// plumbing

Transaction* HybridSystem::find(TxnId id, std::uint64_t epoch) {
  Transaction* txn = arena_.lookup(id);
  if (txn == nullptr || txn->epoch != epoch) {
    return nullptr;  // completed, or aborted+rerun since the event was armed
  }
  return txn;
}

void HybridSystem::cpu_burst(FcfsResource& cpu, double seconds, Transaction* txn,
                             obs::Phase service_phase, int track,
                             void (HybridSystem::*next)(Transaction*)) {
  txn->phases.pending = obs::Phase::ReadyQueue;
  cpu.submit(seconds, [this, seconds, service_phase, track, id = txn->id,
                       epoch = txn->epoch, next] {
    if (Transaction* t = find(id, epoch)) {
      span_burst(t, service_phase, seconds, track);
      (this->*next)(t);
    }
  });
}

void HybridSystem::wait(double seconds, Transaction* txn, obs::Phase phase,
                        int track, void (HybridSystem::*next)(Transaction*)) {
  txn->phases.pending = phase;
  // IO-occupancy gauge: increment at schedule, decrement unconditionally in
  // the callback (before the epoch check, so the pairing is exact even when
  // the transaction aborted or completed while the IO was in flight).
  const bool io_gauge = resource_telemetry_ && phase == obs::Phase::Io;
  if (io_gauge) {
    note_io(track, +1);
  }
  sim_.schedule_after(seconds, [this, phase, track, id = txn->id,
                                epoch = txn->epoch, next, io_gauge] {
    if (io_gauge) {
      note_io(track, -1);
    }
    if (Transaction* t = find(id, epoch)) {
      span_settle(t, phase, sim_.now(), track);
      (this->*next)(t);
    }
  });
}

void HybridSystem::note_io(int track, int delta) {
  int* count = nullptr;
  TimeWeightedStat* tw = nullptr;
  if (track == obs::kCentralTrack) {
    count = &central_.io_in_flight;
    tw = &central_.io_tw;
  } else {
    SiteState& site = sites_[static_cast<std::size_t>(track)];
    count = &site.io_in_flight;
    tw = &site.io_tw;
  }
  *count += delta;
  HLS_ASSERT(*count >= 0, "IO-occupancy gauge went negative");
  tw->set(sim_.now(), static_cast<double>(*count));
}

int HybridSystem::io_in_flight(int track) const {
  if (track == obs::kCentralTrack) {
    return central_.io_in_flight;
  }
  HLS_ASSERT(track >= 0 && track < cfg_.num_sites, "track out of range");
  return sites_[static_cast<std::size_t>(track)].io_in_flight;
}

// --------------------------------------------------------------------------
// span tracer
//
// Every settle point on the phase timeline doubles as a span emission point:
// the segment [phases.mark, t] that settle() charges to one phase IS the
// span, so the span stream inherits the phase-sum identity (spans of one run
// tile its response time exactly). With no sink subscribed to Span/Edge the
// helpers reduce to the plain settle calls plus one predictable branch —
// the "observation is free or absent" rule extends to the tracer.

void HybridSystem::span_note(const Transaction& txn, obs::Phase p, double begin,
                             double end, int track) {
  if (!obs_wants(obs::EventKind::Span) || end <= begin) {
    return;  // zero-length segments carry no information; skip them
  }
  obs::Event event;
  event.kind = obs::EventKind::Span;
  event.time = end;
  event.txn = txn.id;
  event.cls = txn.cls;
  event.route = txn.route;
  event.home_site = txn.home_site;
  event.runs = txn.run_count + 1;
  event.arrival_time = txn.arrival_time;
  event.span_phase = p;
  event.span_begin = begin;
  event.track = track;
  emit_event(event);
}

void HybridSystem::span_settle(Transaction* txn, obs::Phase p, double t,
                               int track) {
  const double begin = txn->phases.mark;
  txn->phases.settle(p, t);
  span_note(*txn, p, begin, t, track);
}

void HybridSystem::span_burst(Transaction* txn, obs::Phase service_phase,
                              double service, int track) {
  const double begin = txn->phases.mark;
  const double t = sim_.now();
  txn->phases.settle_burst(service_phase, service, t);
  span_note(*txn, obs::Phase::ReadyQueue, begin, t - service, track);
  span_note(*txn, service_phase, t - service, t, track);
}

void HybridSystem::span_interrupt(Transaction* txn, int track) {
  const double begin = txn->phases.mark;
  const obs::Phase p = txn->phases.pending;
  txn->phases.interrupt(sim_.now());
  span_note(*txn, p, begin, sim_.now(), track);
}

void HybridSystem::edge_note(obs::EdgeKind kind, TxnId txn, double src_time,
                             int src_track, double dst_time, int dst_track,
                             TxnId winner) {
  if (!obs_wants(obs::EventKind::Edge)) {
    return;
  }
  obs::Event event;
  event.kind = obs::EventKind::Edge;
  event.edge = kind;
  event.txn = txn;
  event.winner = winner;
  event.src_time = src_time;
  event.src_track = src_track;
  event.time = dst_time;
  event.track = dst_track;
  emit_event(event);
}

void HybridSystem::consume_retry_edge(Transaction* txn, int track) {
  if (txn->retry_edge_from >= 0.0) {
    edge_note(obs::EdgeKind::Retry, txn->id, txn->retry_edge_from,
              txn->retry_edge_track, sim_.now(), track);
    txn->retry_edge_from = -1.0;
  }
}

void HybridSystem::set_deadlock_winner(Transaction* requester,
                                       const std::vector<TxnId>& cycle) {
  // The cycle walk is deterministic (lock-manager wait queues are FIFO), so
  // "first other live member" is a reproducible choice of winner.
  for (TxnId id : cycle) {
    if (id == requester->id) {
      continue;
    }
    if (const Transaction* winner = arena_.lookup(id)) {
      requester->marked_by = id;
      requester->marked_by_site = winner->home_site;
      return;
    }
  }
}

void HybridSystem::send_up(int site, UniqueFunction<void()> deliver) {
  // Transport always completes; if the central complex is down when the
  // message arrives, it queues in the recovery backlog (preserving arrival
  // order) instead of being processed. No message is ever truly lost.
  // The captured sequence number makes processing exactly-once-in-order even
  // under message-level chaos: deliver_in_order drops duplicates and buffers
  // early arrivals before the alive check runs, so the backlog too holds
  // messages in origination order.
  const std::uint64_t seq = sites_[site].up_seq.next_send++;
  sites_[site].up->send([this, site, seq, cb = std::move(deliver)]() mutable {
    deliver_in_order(sites_[site].up_seq, site, seq,
                     [this, cb2 = std::move(cb)]() mutable {
                       if (!central_.alive) {
                         central_.backlog.push_back(std::move(cb2));
                         return;
                       }
                       cb2();
                     });
  });
}

void HybridSystem::send_down(int site, UniqueFunction<void()> deliver) {
  // Every central->site message piggybacks the central state as of send
  // time; this is the (delayed) information the dynamic strategies see.
  CentralSnapshot snap;
  snap.taken_at = sim_.now();
  snap.cpu_queue = static_cast<int>(central_.cpu->queue_length());
  snap.num_txns = central_.resident_txns;
  snap.locks_held = static_cast<int>(central_.locks->locks_held());
  const std::uint64_t seq = sites_[site].down_seq.next_send++;
  sites_[site].down->send(
      [this, site, seq, snap, cb = std::move(deliver)]() mutable {
        deliver_in_order(
            sites_[site].down_seq, site, seq,
            [this, site, snap, cb2 = std::move(cb)]() mutable {
              if (!sites_[site].alive) {
                // Delivered into a crashed site: defer processing (and the
                // snapshot update) until recovery, in arrival order.
                sites_[site].backlog.push_back(
                    [this, site, snap, cb3 = std::move(cb2)]() mutable {
                      sites_[site].central_view = snap;
                      cb3();
                    });
                return;
              }
              sites_[site].central_view = snap;
              cb2();
            });
      });
}

void HybridSystem::deliver_in_order(MsgSequencer& q, int site,
                                    std::uint64_t seq,
                                    UniqueFunction<void()> process) {
  if (seq < q.next_deliver) {
    // Already processed: a duplicate delivery. The handler never runs, so
    // every protocol step behind a sequence number is exactly-once.
    ++metrics_.dup_msgs_dropped;
    ++site_metrics_[site].dup_msgs_dropped;
    return;
  }
  if (seq > q.next_deliver) {
    // Ahead of a gap: some straggler with a lower sequence number is still
    // in flight. First arrivals are buffered in sequence order until the
    // gap fills; duplicates of an already-buffered message are dropped.
    auto it = std::lower_bound(
        q.held.begin(), q.held.end(), seq,
        [](const auto& entry, std::uint64_t s) { return entry.first < s; });
    if (it != q.held.end() && it->first == seq) {
      ++metrics_.dup_msgs_dropped;
      ++site_metrics_[site].dup_msgs_dropped;
      return;
    }
    ++metrics_.msgs_resequenced;
    ++site_metrics_[site].msgs_resequenced;
    q.held.emplace(it, seq, std::move(process));
    return;
  }
  ++q.next_deliver;
  process();
  // The gap just filled: release buffered successors in sequence order. A
  // released handler may send new messages but never synchronously delivers
  // on this same link (deliveries only come from scheduled link events), so
  // the loop cannot re-enter.
  while (!q.held.empty() && q.held.front().first == q.next_deliver) {
    UniqueFunction<void()> next = std::move(q.held.front().second);
    q.held.erase(q.held.begin());
    ++q.next_deliver;
    next();
  }
}

void HybridSystem::complete(Transaction* txn, SimTime completion_time) {
  // The last protocol step before completion is the response message back to
  // the user's region (zero-length for local commits, where completion_time
  // == now); settling it closes the timeline so phase times sum to rt.
  span_settle(txn, obs::Phase::Network, completion_time, txn->home_site);
  if (completion_time > sim_.now()) {
    // Central commit: the response leg is a cross-track hop worth a flow
    // arrow from the central track back home.
    edge_note(obs::EdgeKind::Response, txn->id, sim_.now(), obs::kCentralTrack,
              completion_time, txn->home_site);
  }
  const double rt = completion_time - txn->arrival_time;
  HLS_ASSERT(rt >= 0.0, "negative response time");
  HLS_ASSERT(std::abs(txn->phases.sum() - rt) <= 1e-7 * (1.0 + rt),
             "phase-sum identity violated: a protocol segment escaped the "
             "phase timeline");
  metrics_.rt_all.add(rt);
  metrics_.rt_histogram.add(rt);
  ++metrics_.completions;
  if (txn->run_count == 0) {
    metrics_.rt_first_try.add(rt);
  } else {
    metrics_.rt_rerun.add(rt);
  }
  metrics_.max_reruns_seen = std::max(metrics_.max_reruns_seen, txn->run_count);

  SiteState& home = sites_[txn->home_site];
  SiteMetrics& home_metrics = site_metrics_[txn->home_site];
  if (txn->cls == TxnClass::B) {
    metrics_.rt_class_b.add(rt);
    ++metrics_.completions_class_b;
    --central_.resident_txns;
  } else if (txn->route == Route::Central) {
    metrics_.rt_shipped_a.add(rt);
    ++metrics_.completions_shipped_a;
    --central_.resident_txns;
    --home.shipped_in_flight;
    home.last_shipped_rt = rt;
    home_metrics.rt_shipped_a.add(rt);
  } else {
    metrics_.rt_local_a.add(rt);
    ++metrics_.completions_local_a;
    --home.resident_txns;
    home.last_local_rt = rt;
    home_metrics.rt_local_a.add(rt);
  }
  HLS_ASSERT(central_.resident_txns >= 0, "central residency underflow");
  HLS_ASSERT(home.resident_txns >= 0 && home.shipped_in_flight >= 0,
             "site residency underflow");

  for (int p = 0; p < obs::kPhaseCount; ++p) {
    phase_batch_.value[p][phase_batch_.n] = txn->phases.acc[p];
  }
  phase_batch_.home_site[phase_batch_.n] = txn->home_site;
  if (++phase_batch_.n == PhaseBatch::kCapacity) {
    flush_phase_batch();
  }
  metrics_.wasted_per_txn.add(txn->wasted_total());

  if (completion_hook_) {
    TxnCompletionRecord record;
    record.id = txn->id;
    record.cls = txn->cls;
    record.route = txn->route;
    record.home_site = txn->home_site;
    record.arrival_time = txn->arrival_time;
    record.completion_time = completion_time;
    record.response_time = rt;
    record.runs = txn->run_count + 1;
    for (int i = 0; i < static_cast<int>(AbortCause::kCount); ++i) {
      record.aborts[i] = txn->aborts[i];
    }
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      record.phase[p] = txn->phases.acc[p];
    }
    record.wasted_cpu = txn->wasted_cpu();
    record.wasted_io = txn->wasted_io();
    record.wasted_total = txn->wasted_total();
    completion_hook_(record);
  }
  if (obs_wants(obs::EventKind::Completion)) {
    obs::Event event;
    event.kind = obs::EventKind::Completion;
    event.time = completion_time;
    event.txn = txn->id;
    event.cls = txn->cls;
    event.route = txn->route;
    event.home_site = txn->home_site;
    event.runs = txn->run_count + 1;
    event.arrival_time = txn->arrival_time;
    event.response_time = rt;
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      event.phase[p] = txn->phases.acc[p];
    }
    for (int i = 0; i < static_cast<int>(AbortCause::kCount); ++i) {
      event.aborts[i] = txn->aborts[i];
    }
    event.wasted_cpu = txn->wasted_cpu();
    event.wasted_io = txn->wasted_io();
    emit_event(event);
  }
  arena_.release(txn->id);
}

void HybridSystem::prepare_rerun(Transaction* txn, AbortCause cause) {
  // Wasted work: everything the timeline accumulated since this attempt's
  // baseline is thrown away by the abort. Every caller settles or interrupts
  // the open segment before calling us, so the accumulators are current and
  // the deltas tile the window between consecutive aborts exactly.
  double attempt[obs::kPhaseCount];
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    attempt[p] = txn->phases.acc[p] - txn->attempt_mark[p];
    txn->wasted_phase[p] += attempt[p];
    txn->attempt_mark[p] = txn->phases.acc[p];
  }
  const double attempt_cpu = attempt[static_cast<int>(obs::Phase::CpuService)] +
                             attempt[static_cast<int>(obs::Phase::Commit)];
  const double attempt_io = attempt[static_cast<int>(obs::Phase::Io)];

  // Winner: only collision-type causes name one. Crash sweeps and ship
  // timeouts must not inherit a stale marked_by from an invalidation that
  // happened to land on the same attempt.
  TxnId winner = kInvalidTxn;
  int winner_site = -2;
  if (cause == AbortCause::LocalPreempted ||
      cause == AbortCause::CentralInvalidated ||
      cause == AbortCause::AuthRefused || cause == AbortCause::Deadlock) {
    winner = txn->marked_by;
    winner_site = txn->marked_by_site;
  }
  const int abort_track =
      txn->at_central ? obs::kCentralTrack : txn->home_site;

  if (obs_wants(obs::EventKind::Abort)) {
    obs::Event event;
    event.kind = obs::EventKind::Abort;
    event.time = sim_.now();
    event.txn = txn->id;
    event.cls = txn->cls;
    event.route = txn->route;
    event.home_site = txn->home_site;
    event.runs = txn->run_count + 1;  // executions including the failed one
    event.arrival_time = txn->arrival_time;
    event.cause = cause;
    for (int i = 0; i < static_cast<int>(AbortCause::kCount); ++i) {
      event.aborts[i] = txn->aborts[i];
    }
    for (int p = 0; p < obs::kPhaseCount; ++p) {
      event.phase[p] = attempt[p];  // this attempt's breakdown, not totals
    }
    event.winner = winner;
    event.winner_site = winner_site;
    event.wasted_cpu = attempt_cpu;
    event.wasted_io = attempt_io;
    emit_event(event);
  }
  if (winner != kInvalidTxn && winner_site >= 0) {
    edge_note(obs::EdgeKind::Conflict, txn->id, sim_.now(), winner_site,
              sim_.now(), abort_track, winner);
  }
  if (obs_wants(obs::EventKind::Edge)) {
    txn->retry_edge_from = sim_.now();
    txn->retry_edge_track = abort_track;
  }

  txn->count_abort(cause);
  ++metrics_.aborts[static_cast<int>(cause)];
  ++metrics_.reruns;
  if (winner != kInvalidTxn && winner_site >= 0) {
    ++metrics_.aborts_with_winner;  // matches the conflict matrix's winner columns
  }
  metrics_.wasted_cpu_by_cause[static_cast<int>(cause)] += attempt_cpu;
  metrics_.wasted_io_by_cause[static_cast<int>(cause)] += attempt_io;
  metrics_.record_conflict(txn->home_site, winner_site);
  SiteMetrics& home_metrics = site_metrics_[txn->home_site];
  ++home_metrics.aborts[static_cast<int>(cause)];
  home_metrics.wasted_cpu += attempt_cpu;
  home_metrics.wasted_io += attempt_io;

  txn->marked_by = kInvalidTxn;
  txn->marked_by_site = -2;
  txn->auth_blocker = kInvalidTxn;
  txn->auth_blocker_site = -2;
  ++txn->run_count;
  ++txn->epoch;
  txn->call_index = 0;
  txn->marked_abort = false;
  txn->auth_pending_acks = 0;
  txn->auth_any_negative = false;
  txn->auth_sites.clear();
  // An ordinary rerun finds all referenced data in memory (§3.1). Crash and
  // timeout paths override this to false right after calling us: their
  // restart lost that memory and pays the I/O again.
  txn->memory_resident = true;
  HLS_ASSERT(txn->run_count <= cfg_.max_reruns,
             "transaction exceeded max_reruns: livelock or protocol bug");
}

Transaction* HybridSystem::choose_deadlock_victim(Transaction* requester,
                                                  const std::vector<TxnId>& cycle) {
  if (cfg_.deadlock_victim == DeadlockVictim::Requester) {
    return requester;
  }
  // Youngest: the most recently arrived live cycle member. A member that is
  // mid-authentication never appears here (authenticating transactions do
  // not wait on locks), so force-aborting any candidate is safe.
  Transaction* youngest = requester;
  for (TxnId id : cycle) {
    Transaction* t = arena_.lookup(id);
    if (t == nullptr) {
      continue;
    }
    if (t->arrival_time > youngest->arrival_time) {
      youngest = t;
    }
  }
  return youngest;
}

void HybridSystem::force_abort_victim(Transaction* victim,
                                      Transaction* requester) {
  HLS_ASSERT(victim->auth_pending_acks == 0,
             "deadlock victim cannot be mid-authentication");
  victim->marked_by = requester->id;
  victim->marked_by_site = requester->home_site;
  if (victim->cls == TxnClass::A && victim->route == Route::Local) {
    local_abort(victim, AbortCause::Deadlock, /*release_everything=*/true);
  } else {
    central_abort_rerun(victim, AbortCause::Deadlock,
                        /*release_everything=*/true);
  }
}

// --------------------------------------------------------------------------
// arrivals / routing

void HybridSystem::on_arrival(int site) {
  if (!sites_[site].alive) {
    // A crashed site accepts no new work; the user's request is rejected.
    ++metrics_.arrivals_rejected;
    return;
  }
  Transaction* t = arena_.checkout();
  factory_.fill(*t, site, sim_.now());
  arena_.commit(t);
  admit(t);
}

void HybridSystem::admit(Transaction* t) {
  t->phases.begin(t->arrival_time);

  SiteState& home = sites_[t->home_site];
  if (t->cls == TxnClass::B) {
    ++metrics_.arrivals_class_b;
    t->route = Route::Central;
    if (is_rfc(*t)) {
      // Remote-call mode: processing stays home, data stays central.
      ++central_.resident_txns;
      t->at_central = true;
      rfc_start_run(t);
    } else {
      ship_to_central(t);
    }
    return;
  }

  ++metrics_.arrivals_class_a;
  ++site_metrics_[t->home_site].arrivals_class_a;
  t->route = strategy_->decide(*t, make_state_view(t->home_site));
  if (t->route == Route::Central) {
    ++metrics_.shipped_class_a;
    ++site_metrics_[t->home_site].shipped_class_a;
    ++home.shipped_in_flight;
    arm_ship_timeout(t);
    ship_to_central(t);
  } else {
    ++home.resident_txns;
    local_start_run(t);
  }
}

SystemStateView HybridSystem::make_state_view(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  const SiteState& s = sites_[site];
  SystemStateView view;
  view.config = &cfg_;
  view.now = sim_.now();
  view.site = site;
  view.local_cpu_queue = static_cast<int>(s.cpu->queue_length());
  view.local_num_txns = s.resident_txns;
  view.local_locks_held = static_cast<int>(s.locks->locks_held());
  view.shipped_in_flight = s.shipped_in_flight;
  view.last_local_rt = s.last_local_rt;
  view.last_shipped_rt = s.last_shipped_rt;
  view.central_reachable = central_.alive;
  if (cfg_.ideal_state_info) {
    view.central_info_age = 0.0;
    view.central_cpu_queue = static_cast<int>(central_.cpu->queue_length());
    view.central_num_txns = central_.resident_txns;
    view.central_locks_held = static_cast<int>(central_.locks->locks_held());
  } else {
    view.central_info_age = sim_.now() - s.central_view.taken_at;
    view.central_cpu_queue = s.central_view.cpu_queue;
    view.central_num_txns = s.central_view.num_txns;
    view.central_locks_held = s.central_view.locks_held;
  }
  const double window = sim_.now() - metrics_.measure_start;
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    view.aborts_by_cause[c] = metrics_.aborts[c];
    view.abort_rate_by_cause[c] =
        window > 0.0 ? static_cast<double>(metrics_.aborts[c]) / window : 0.0;
  }
  view.last_sample = series_.empty() ? nullptr : &series_.back();
  return view;
}

// --------------------------------------------------------------------------
// local class A execution

void HybridSystem::local_start_run(Transaction* txn) {
  consume_retry_edge(txn, txn->home_site);
  cpu_burst(*sites_[txn->home_site].cpu, cfg_.site_cpu_seconds(txn->home_site, cfg_.instr_msg_init),
            txn, obs::Phase::CpuService, txn->home_site,
            &HybridSystem::local_after_init);
}

void HybridSystem::local_after_init(Transaction* txn) {
  if (txn->memory_resident) {
    // Re-referenced data is memory resident: skip the setup I/O.
    local_do_call(txn);
  } else {
    wait(cfg_.setup_io_time, txn, obs::Phase::Io, txn->home_site,
         &HybridSystem::local_do_call);
  }
}

void HybridSystem::local_do_call(Transaction* txn) {
  if (txn->call_index >= static_cast<int>(txn->locks.size())) {
    local_commit(txn);
    return;
  }
  cpu_burst(*sites_[txn->home_site].cpu, cfg_.site_cpu_seconds(txn->home_site, cfg_.instr_per_call),
            txn, obs::Phase::CpuService, txn->home_site,
            &HybridSystem::local_after_call_cpu);
}

void HybridSystem::local_after_call_cpu(Transaction* txn) {
  LockManager& lm = *sites_[txn->home_site].locks;
  txn->phases.pending = obs::Phase::LockWait;
  // Retry loop: when the victim policy aborts another cycle member, the
  // requester's lock request is re-issued (each force-abort removes one
  // waiter, so this terminates).
  for (;;) {
    const LockNeed& need = txn->locks[txn->call_index];
    std::vector<TxnId> cycle;
    const auto outcome =
        lm.request(txn->id, need.id, need.mode,
                   [this, id = txn->id, epoch = txn->epoch] {
                     if (Transaction* t = find(id, epoch)) {
                       local_lock_granted(t);
                     }
                   },
                   &cycle);
    switch (outcome) {
      case LockRequestOutcome::Granted:
      case LockRequestOutcome::AlreadyHeld:
        local_lock_granted(txn);
        return;
      case LockRequestOutcome::Queued:
        return;  // local_lock_granted fires on grant
      case LockRequestOutcome::Deadlock: {
        Transaction* victim = choose_deadlock_victim(txn, cycle);
        if (victim == txn) {
          set_deadlock_winner(txn, cycle);
          local_abort(txn, AbortCause::Deadlock, /*release_everything=*/true);
          return;
        }
        force_abort_victim(victim, txn);
        continue;
      }
    }
  }
}

void HybridSystem::local_lock_granted(Transaction* txn) {
  // Zero-length if the lock was granted immediately (no span emitted).
  span_settle(txn, obs::Phase::LockWait, sim_.now(), txn->home_site);
  const bool do_io = !txn->memory_resident && txn->call_io[txn->call_index];
  ++txn->call_index;
  if (do_io) {
    wait(cfg_.call_io_time, txn, obs::Phase::Io, txn->home_site,
         &HybridSystem::local_do_call);
  } else {
    local_do_call(txn);
  }
}

void HybridSystem::local_commit(Transaction* txn) {
  if (txn->marked_abort) {
    // Preempted by an authenticating central transaction; abort and rerun.
    // Surviving locks are kept (§3.1: locks are not released after an abort).
    local_abort(txn, AbortCause::LocalPreempted, /*release_everything=*/false);
    return;
  }
  double instr = cfg_.instr_msg_commit;
  if (txn->writes_anything()) {
    instr += cfg_.instr_send_async;
  }
  cpu_burst(*sites_[txn->home_site].cpu,
            cfg_.site_cpu_seconds(txn->home_site, instr), txn,
            obs::Phase::Commit, txn->home_site,
            &HybridSystem::local_after_commit_cpu);
}

void HybridSystem::local_after_commit_cpu(Transaction* txn) {
  if (txn->marked_abort) {
    // Marked while commit processing was queued/in service.
    local_abort(txn, AbortCause::LocalPreempted, /*release_everything=*/false);
    return;
  }
  local_finalize(txn);
}

void HybridSystem::local_finalize(Transaction* txn) {
  SiteState& home = sites_[txn->home_site];
  LockManager& lm = *home.locks;

  // Updated entities: the exclusive locks this transaction holds. (If it is
  // unmarked at commit it still holds every lock it acquired.) Each update
  // carries its committer so a central invalidation can name its winner.
  std::vector<UpdateItem> updated;
  for (const LockNeed& need : txn->locks) {
    if (need.mode != LockMode::Exclusive) {
      continue;
    }
    HLS_ASSERT(lm.holds(txn->id, need.id), "unmarked committer lost a lock");
    const auto dup = std::find_if(
        updated.begin(), updated.end(),
        [&need](const UpdateItem& u) { return u.id == need.id; });
    if (dup == updated.end()) {
      updated.push_back({need.id, txn->id});
    }
  }

  // Release the concurrency fields and flag the pending update propagation
  // in the coherence fields, then ship one asynchronous update message. The
  // transaction completes without waiting for any acknowledgement.
  lm.release_all(txn->id);
  for (const UpdateItem& item : updated) {
    lm.increment_coherence(item.id);
  }
  if (!updated.empty()) {
    queue_async_update(txn->home_site, std::move(updated));
  }
  complete(txn, sim_.now());
}

void HybridSystem::local_abort(Transaction* txn, AbortCause cause,
                               bool release_everything) {
  // Settle the open segment (zero-length for synchronous commit-point
  // aborts; a real lock wait for force-aborted deadlock victims).
  span_interrupt(txn, txn->home_site);
  LockManager& lm = *sites_[txn->home_site].locks;
  if (release_everything) {
    lm.release_all(txn->id);
  } else {
    lm.cancel_waits(txn->id);  // defensive: commit-time aborts never wait
  }
  prepare_rerun(txn, cause);
  const double restart_delay = restart_delay_for(txn);
  if (restart_delay > 0.0) {
    wait(restart_delay, txn, obs::Phase::Stall, txn->home_site,
         &HybridSystem::local_start_run);
  } else {
    local_start_run(txn);
  }
}

// --------------------------------------------------------------------------
// asynchronous update propagation

void HybridSystem::queue_async_update(int site, std::vector<UpdateItem> items) {
  if (cfg_.async_batch_window <= 0.0) {
    send_async_update(site, std::move(items));
    return;
  }
  SiteState& s = sites_[site];
  s.pending_updates.insert(s.pending_updates.end(), items.begin(), items.end());
  if (s.flush_armed) {
    return;  // a flush is already scheduled; this commit rides along
  }
  s.flush_armed = true;
  sim_.schedule_after(cfg_.async_batch_window, [this, site] {
    SiteState& st = sites_[site];
    st.flush_armed = false;
    if (!st.pending_updates.empty()) {
      std::vector<UpdateItem> batch;
      batch.swap(st.pending_updates);
      send_async_update(site, std::move(batch));
    }
  });
}

void HybridSystem::send_async_update(int site, std::vector<UpdateItem> items) {
  ++metrics_.async_updates_sent;
  // Apply cost: fixed per-message overhead plus a per-item component — the
  // saving that §2's batching suggestion is after.
  const double apply_cpu = cfg_.central_cpu_seconds(
      cfg_.instr_apply_update +
      cfg_.instr_apply_update_item * static_cast<double>(items.size()));
  const double sent_at = sim_.now();
  send_up(site, [this, site, apply_cpu, sent_at, items = std::move(items)] {
    // Delivered at the central site: queue the apply work on the central CPU.
    edge_note(obs::EdgeKind::AsyncUpdate, kInvalidTxn, sent_at, site,
              sim_.now(), obs::kCentralTrack);
    central_.cpu->submit(apply_cpu,
                         [this, site, items] { central_apply_update(site, items); });
  });
}

void HybridSystem::central_apply_update(int site,
                                        const std::vector<UpdateItem>& items) {
  // Invalidate central locks on the updated entities: holders are marked for
  // abort and lose the lock, so later central transactions see fresh data.
  // The committer that shipped the update is recorded as the winner of the
  // collision (its home site is `site` — batches are per-site).
  for (const UpdateItem& item : items) {
    for (const auto& holder : central_.locks->holders_of(item.id)) {
      Transaction* held = arena_.lookup(holder.txn);
      HLS_ASSERT(held != nullptr, "central lock held by a dead transaction");
      held->marked_abort = true;
      held->marked_by = item.committer;
      held->marked_by_site = site;
      central_.locks->release(holder.txn, item.id);
    }
  }
  // Acknowledge back to the master site; the ack processing decrements the
  // coherence counts that were raised at local commit.
  send_down(site, [this, site, items] {
    sites_[site].cpu->submit(
        cfg_.site_cpu_seconds(site, cfg_.instr_recv_ack), [this, site, items] {
          for (const UpdateItem& item : items) {
            sites_[site].locks->decrement_coherence(item.id);
          }
        });
  });
}

// --------------------------------------------------------------------------
// central execution (class B and shipped class A)

void HybridSystem::ship_to_central(Transaction* txn) {
  // Input-message forwarding consumes home-site CPU, then the transaction
  // travels one link delay to the central complex.
  consume_retry_edge(txn, txn->home_site);
  cpu_burst(*sites_[txn->home_site].cpu,
            cfg_.site_cpu_seconds(txn->home_site, cfg_.instr_ship_forward),
            txn, obs::Phase::CpuService, txn->home_site,
            &HybridSystem::ship_after_forward);
}

void HybridSystem::ship_after_forward(Transaction* txn) {
  txn->phases.pending = obs::Phase::Network;
  const double sent_at = sim_.now();
  send_up(txn->home_site, [this, sent_at, id = txn->id, epoch = txn->epoch] {
    if (Transaction* t = find(id, epoch)) {
      // A delivery replayed from an outage backlog settles here too: the
      // Network phase absorbs backlog residence (documented convention).
      span_settle(t, obs::Phase::Network, sim_.now(), t->home_site);
      edge_note(obs::EdgeKind::Ship, t->id, sent_at, t->home_site, sim_.now(),
                obs::kCentralTrack);
      ++central_.resident_txns;
      t->at_central = true;
      central_start_run(t);
    }
  });
}

void HybridSystem::central_start_run(Transaction* txn) {
  consume_retry_edge(txn, obs::kCentralTrack);
  cpu_burst(*central_.cpu, cfg_.central_cpu_seconds(cfg_.instr_msg_init), txn,
            obs::Phase::CpuService, obs::kCentralTrack,
            &HybridSystem::central_after_init);
}

void HybridSystem::central_after_init(Transaction* txn) {
  if (txn->memory_resident) {
    central_do_call(txn);
  } else {
    wait(cfg_.setup_io_time, txn, obs::Phase::Io, obs::kCentralTrack,
         &HybridSystem::central_do_call);
  }
}

void HybridSystem::central_do_call(Transaction* txn) {
  if (txn->call_index >= static_cast<int>(txn->locks.size())) {
    central_commit(txn);
    return;
  }
  cpu_burst(*central_.cpu, cfg_.central_cpu_seconds(cfg_.instr_per_call), txn,
            obs::Phase::CpuService, obs::kCentralTrack,
            &HybridSystem::central_after_call_cpu);
}

void HybridSystem::central_after_call_cpu(Transaction* txn) {
  txn->phases.pending = obs::Phase::LockWait;
  for (;;) {
    const LockNeed& need = txn->locks[txn->call_index];
    std::vector<TxnId> cycle;
    const auto outcome =
        central_.locks->request(txn->id, need.id, need.mode,
                                [this, id = txn->id, epoch = txn->epoch] {
                                  if (Transaction* t = find(id, epoch)) {
                                    central_lock_granted(t);
                                  }
                                },
                                &cycle);
    switch (outcome) {
      case LockRequestOutcome::Granted:
      case LockRequestOutcome::AlreadyHeld:
        central_lock_granted(txn);
        return;
      case LockRequestOutcome::Queued:
        return;
      case LockRequestOutcome::Deadlock: {
        Transaction* victim = choose_deadlock_victim(txn, cycle);
        if (victim == txn) {
          set_deadlock_winner(txn, cycle);
          central_abort_rerun(txn, AbortCause::Deadlock,
                              /*release_everything=*/true);
          return;
        }
        force_abort_victim(victim, txn);
        continue;
      }
    }
  }
}

void HybridSystem::central_lock_granted(Transaction* txn) {
  span_settle(txn, obs::Phase::LockWait, sim_.now(),
              obs::kCentralTrack);  // zero if immediate
  const bool do_io = !txn->memory_resident && txn->call_io[txn->call_index];
  ++txn->call_index;
  if (do_io) {
    wait(cfg_.call_io_time, txn, obs::Phase::Io, obs::kCentralTrack,
         &HybridSystem::central_do_call);
  } else {
    central_do_call(txn);
  }
}

void HybridSystem::central_commit(Transaction* txn) {
  if (txn->marked_abort) {
    // Invalidated by an asynchronous update during execution.
    central_abort_rerun(txn, AbortCause::CentralInvalidated,
                        /*release_everything=*/false);
    return;
  }
  cpu_burst(*central_.cpu, cfg_.central_cpu_seconds(cfg_.instr_msg_commit), txn,
            obs::Phase::Commit, obs::kCentralTrack,
            &HybridSystem::central_after_commit_cpu);
}

void HybridSystem::central_after_commit_cpu(Transaction* txn) {
  if (txn->marked_abort) {
    central_abort_rerun(txn, AbortCause::CentralInvalidated,
                        /*release_everything=*/false);
    return;
  }
  central_begin_auth(txn);
}

void HybridSystem::central_begin_auth(Transaction* txn) {
  // Send the lock list to every master site of the data locked; for shipped
  // class A transactions that is just the home site.
  ++metrics_.auth_rounds;
  std::vector<int> involved;
  for (const LockNeed& need : txn->locks) {
    const int owner = cfg_.owner_site(need.id);
    if (std::find(involved.begin(), involved.end(), owner) == involved.end()) {
      involved.push_back(owner);
    }
  }
  HLS_ASSERT(!involved.empty(), "authentication with no involved sites");
  txn->auth_pending_acks = static_cast<int>(involved.size());
  txn->auth_any_negative = false;
  txn->auth_sites.clear();
  // Everything until the last ack lands — down links, local auth CPU, up
  // links — is the authentication phase.
  txn->phases.pending = obs::Phase::Auth;

  for (int site : involved) {
    std::vector<LockNeed> needs;
    for (const LockNeed& need : txn->locks) {
      if (cfg_.owner_site(need.id) == site) {
        needs.push_back(need);
      }
    }
    send_down(site, [this, site, id = txn->id, epoch = txn->epoch,
                     needs = std::move(needs)] {
      local_process_auth(site, id, epoch, needs);
    });
  }
}

void HybridSystem::local_process_auth(int site, TxnId txn_id, std::uint64_t epoch,
                                      std::vector<LockNeed> needs) {
  // Authentication processing consumes home-site CPU before the checks run.
  sites_[site].cpu->submit(
      cfg_.site_cpu_seconds(site, cfg_.instr_auth_local),
      [this, site, txn_id, epoch, needs = std::move(needs)] {
        if (find(txn_id, epoch) == nullptr) {
          // Requester reclaimed (ship timeout / crash) while this request
          // was queued: don't grab locks on behalf of a dead auth round.
          // Unreachable in fault-free runs — a transaction always collects
          // the full ack set before its epoch can change.
          return;
        }
        LockManager& lm = *sites_[site].locks;

        // Refuse when any requested entity has in-flight asynchronous
        // updates (stale central copy), or is held by a holder we may not
        // preempt: only class A transactions running locally are
        // preemptible. A lingering auth hold of another central transaction
        // (commit message still in flight) also forces a refusal. When the
        // refusal names a live holder, carry it back on the ack as the
        // winner of the conflict; coherence-in-flight refusals have none.
        bool refuse = false;
        TxnId blocker = kInvalidTxn;
        int blocker_site = -2;
        for (const LockNeed& need : needs) {
          if (lm.coherence_count(need.id) != 0) {
            refuse = true;
            break;
          }
          for (const auto& holder : lm.holders_of(need.id)) {
            if (holder.txn == txn_id) {
              continue;
            }
            const bool conflict = need.mode == LockMode::Exclusive ||
                                  holder.mode == LockMode::Exclusive;
            if (!conflict) {
              continue;
            }
            const Transaction* held = arena_.lookup(holder.txn);
            // Under the controller's lock-wait collision policy the site
            // treats even local class-A holders as non-preemptible: the
            // refusal names the holder as blocker and the central
            // transaction reruns, deferring to the holder instead of
            // killing it (docs/PROTOCOL.md, adaptive controller section).
            const bool preemptible =
                held != nullptr && held->cls == TxnClass::A &&
                held->route == Route::Local &&
                collision_policy(site) == CollisionPolicy::OptimisticAbort;
            if (!preemptible) {
              refuse = true;
              if (held != nullptr) {
                blocker = holder.txn;
                blocker_site = held->home_site;
              }
              break;
            }
          }
          if (refuse) {
            break;
          }
        }

        bool granted = false;
        if (!refuse) {
          Transaction* requester = find(txn_id, epoch);
          for (const LockNeed& need : needs) {
            auto grab = lm.grab_for_authentication(txn_id, need.id, need.mode);
            HLS_ASSERT(grab.granted, "auth grab refused after precheck");
            for (TxnId victim : grab.aborted) {
              Transaction* held = arena_.lookup(victim);
              HLS_ASSERT(held != nullptr, "preempted a dead transaction");
              held->marked_abort = true;
              // The authenticating transaction preempted this local holder.
              held->marked_by = txn_id;
              held->marked_by_site =
                  requester != nullptr ? requester->home_site : -2;
            }
          }
          granted = true;
        }

        send_up(site, [this, txn_id, epoch, site, positive = !refuse, granted,
                       blocker, blocker_site] {
          central_auth_ack(txn_id, epoch, site, positive, granted, blocker,
                          blocker_site);
        });
      });
}

void HybridSystem::central_auth_ack(TxnId txn_id, std::uint64_t epoch, int site,
                                    bool positive, bool granted, TxnId blocker,
                                    int blocker_site) {
  Transaction* txn = find(txn_id, epoch);
  // Fault-free, the transaction always waits for the full ack set before
  // moving on; a miss here means a ship timeout or crash reclaimed it while
  // the ack was in flight, and the reclaim already released its auth holds.
  if (txn == nullptr || txn->auth_pending_acks <= 0) {
    return;
  }
  if (granted) {
    txn->auth_sites.push_back(site);
  }
  if (!positive) {
    txn->auth_any_negative = true;
    // First named blocker wins (acks arrive in deterministic order).
    if (txn->auth_blocker == kInvalidTxn && blocker != kInvalidTxn) {
      txn->auth_blocker = blocker;
      txn->auth_blocker_site = blocker_site;
    }
  }
  if (--txn->auth_pending_acks == 0) {
    central_auth_done(txn);
  }
}

void HybridSystem::central_auth_done(Transaction* txn) {
  span_settle(txn, obs::Phase::Auth, sim_.now(), obs::kCentralTrack);
  if (txn->auth_any_negative || txn->marked_abort) {
    if (txn->auth_any_negative) {
      ++metrics_.auth_negative_acks;
    }
    const AbortCause cause = txn->auth_any_negative ? AbortCause::AuthRefused
                                                    : AbortCause::CentralInvalidated;
    if (txn->auth_any_negative) {
      // Surface the refusing holder (if any) as this abort's winner.
      txn->marked_by = txn->auth_blocker;
      txn->marked_by_site = txn->auth_blocker_site;
    }
    release_auth_grants(txn);
    central_abort_rerun(txn, cause, /*release_everything=*/false);
    return;
  }

  // Commit: release the authentication grants at the involved sites and the
  // concurrency locks at the central site; the response travels one link
  // delay back to the user's region.
  for (int site : txn->auth_sites) {
    send_down(site, [this, site, id = txn->id] {
      sites_[site].cpu->submit(
          cfg_.site_cpu_seconds(site, cfg_.instr_commit_apply_local),
          [this, site, id] { sites_[site].locks->release_all(id); });
    });
  }
  central_.locks->release_all(txn->id);
  complete(txn, sim_.now() + cfg_.comm_delay);
}

void HybridSystem::release_auth_grants(Transaction* txn) {
  for (int site : txn->auth_sites) {
    send_down(site, [this, site, id = txn->id] {
      sites_[site].cpu->submit(
          cfg_.site_cpu_seconds(site, cfg_.instr_commit_apply_local),
          [this, site, id] { sites_[site].locks->release_all(id); });
    });
  }
  txn->auth_sites.clear();
}

void HybridSystem::central_abort_rerun(Transaction* txn, AbortCause cause,
                                       bool release_everything) {
  span_interrupt(txn, obs::kCentralTrack);  // zero for synchronous abort points
  if (release_everything) {
    central_.locks->release_all(txn->id);
  } else {
    central_.locks->cancel_waits(txn->id);  // defensive
  }
  prepare_rerun(txn, cause);
  schedule_central_restart(txn);
}

void HybridSystem::schedule_central_restart(Transaction* txn) {
  const double restart_delay = restart_delay_for(txn);
  if (is_rfc(*txn)) {
    // The abort outcome travels back to the home site before the rerun.
    wait(cfg_.comm_delay + restart_delay, txn, obs::Phase::Stall,
         txn->home_site, &HybridSystem::rfc_start_run);
    return;
  }
  if (restart_delay > 0.0) {
    wait(restart_delay, txn, obs::Phase::Stall, obs::kCentralTrack,
         &HybridSystem::central_start_run);
  } else {
    central_start_run(txn);
  }
}

double HybridSystem::restart_delay_for(const Transaction* txn) const {
  double delay = cfg_.abort_restart_delay;
  if (cfg_.livelock_backoff > 0.0 &&
      txn->run_count > cfg_.livelock_backoff_after) {
    // Linear growth de-synchronizes mutual-abort cycles: the members carry
    // different run counts, so their stalls diverge until one of them gets
    // a clear window to finish. Deterministic — no randomness needed.
    delay += cfg_.livelock_backoff *
             static_cast<double>(txn->run_count - cfg_.livelock_backoff_after);
  }
  return delay;
}

// --------------------------------------------------------------------------
// class B via remote function calls (ClassBMode::RemoteCalls)

void HybridSystem::rfc_start_run(Transaction* txn) {
  consume_retry_edge(txn, txn->home_site);
  cpu_burst(*sites_[txn->home_site].cpu,
            cfg_.site_cpu_seconds(txn->home_site, cfg_.instr_msg_init),
            txn, obs::Phase::CpuService, txn->home_site,
            &HybridSystem::rfc_after_init);
}

void HybridSystem::rfc_after_init(Transaction* txn) {
  if (txn->memory_resident) {
    rfc_do_call(txn);
  } else {
    wait(cfg_.setup_io_time, txn, obs::Phase::Io, txn->home_site,
         &HybridSystem::rfc_do_call);
  }
}

void HybridSystem::rfc_do_call(Transaction* txn) {
  if (txn->call_index >= static_cast<int>(txn->locks.size())) {
    rfc_commit(txn);
    return;
  }
  cpu_burst(*sites_[txn->home_site].cpu,
            cfg_.site_cpu_seconds(txn->home_site, cfg_.instr_per_call),
            txn, obs::Phase::CpuService, txn->home_site,
            &HybridSystem::rfc_after_call_cpu);
}

void HybridSystem::rfc_after_call_cpu(Transaction* txn) {
  // One remote function call: request travels to the central copy. The CPU
  // burst is submitted whether or not the transaction is still live (the
  // central CPU does the work before discovering the requester aborted), so
  // the timeline settles around it: Network at delivery, the burst at grant.
  txn->phases.pending = obs::Phase::Network;
  send_up(txn->home_site, [this, id = txn->id, epoch = txn->epoch] {
    if (Transaction* t = find(id, epoch)) {
      span_settle(t, obs::Phase::Network, sim_.now(), t->home_site);
      t->phases.pending = obs::Phase::ReadyQueue;
    }
    central_.cpu->submit(cfg_.central_cpu_seconds(cfg_.instr_remote_call),
                         [this, id, epoch] { rfc_central_request(id, epoch); });
  });
}

void HybridSystem::rfc_central_request(TxnId id, std::uint64_t epoch) {
  Transaction* txn = find(id, epoch);
  if (txn == nullptr) {
    return;  // aborted while the request was in flight; rerun re-requests
  }
  span_burst(txn, obs::Phase::CpuService,
             cfg_.central_cpu_seconds(cfg_.instr_remote_call),
             obs::kCentralTrack);
  txn->phases.pending = obs::Phase::LockWait;
  for (;;) {
    const LockNeed& need = txn->locks[txn->call_index];
    std::vector<TxnId> cycle;
    const auto outcome = central_.locks->request(
        txn->id, need.id, need.mode,
        [this, id, epoch] {
          if (Transaction* t = find(id, epoch)) {
            rfc_central_after_lock(t);
          }
        },
        &cycle);
    switch (outcome) {
      case LockRequestOutcome::Granted:
      case LockRequestOutcome::AlreadyHeld:
        rfc_central_after_lock(txn);
        return;
      case LockRequestOutcome::Queued:
        return;
      case LockRequestOutcome::Deadlock: {
        Transaction* victim = choose_deadlock_victim(txn, cycle);
        if (victim == txn) {
          set_deadlock_winner(txn, cycle);
          central_abort_rerun(txn, AbortCause::Deadlock,
                              /*release_everything=*/true);
          return;
        }
        force_abort_victim(victim, txn);
        continue;
      }
    }
  }
}

void HybridSystem::rfc_central_after_lock(Transaction* txn) {
  span_settle(txn, obs::Phase::LockWait, sim_.now(), obs::kCentralTrack);
  // The data call's I/O happens at the central copy, then the reply goes
  // home (the home-site CPU books the reply handling).
  const bool do_io = !txn->memory_resident && txn->call_io[txn->call_index];
  const double io = do_io ? cfg_.call_io_time : 0.0;
  wait(io, txn, obs::Phase::Io, obs::kCentralTrack,
       &HybridSystem::rfc_reply_send);
}

void HybridSystem::rfc_reply_send(Transaction* txn) {
  txn->phases.pending = obs::Phase::Network;
  send_down(txn->home_site, [this, id = txn->id, epoch = txn->epoch] {
    Transaction* t = find(id, epoch);
    if (t == nullptr) {
      return;
    }
    span_settle(t, obs::Phase::Network, sim_.now(), t->home_site);
    cpu_burst(*sites_[t->home_site].cpu,
              cfg_.site_cpu_seconds(t->home_site, cfg_.instr_recv_ack), t,
              obs::Phase::CpuService, t->home_site,
              &HybridSystem::rfc_reply_received);
  });
}

void HybridSystem::rfc_reply_received(Transaction* txn) {
  ++txn->call_index;
  rfc_do_call(txn);
}

void HybridSystem::rfc_commit(Transaction* txn) {
  if (txn->marked_abort) {
    central_abort_rerun(txn, AbortCause::CentralInvalidated,
                        /*release_everything=*/false);
    return;
  }
  cpu_burst(*sites_[txn->home_site].cpu,
            cfg_.site_cpu_seconds(txn->home_site, cfg_.instr_msg_commit), txn,
            obs::Phase::Commit, txn->home_site,
            &HybridSystem::rfc_after_commit_cpu);
}

void HybridSystem::rfc_after_commit_cpu(Transaction* txn) {
  // Commit request travels to the central site, which runs the normal
  // authentication phase against the master sites. As in rfc_after_call_cpu,
  // the central burst is submitted unconditionally.
  txn->phases.pending = obs::Phase::Network;
  send_up(txn->home_site, [this, id = txn->id, epoch = txn->epoch] {
    if (Transaction* t = find(id, epoch)) {
      span_settle(t, obs::Phase::Network, sim_.now(), t->home_site);
      t->phases.pending = obs::Phase::ReadyQueue;
    }
    central_.cpu->submit(cfg_.central_cpu_seconds(cfg_.instr_msg_commit),
                         [this, id, epoch] {
                           if (Transaction* t = find(id, epoch)) {
                             span_burst(
                                 t, obs::Phase::Commit,
                                 cfg_.central_cpu_seconds(cfg_.instr_msg_commit),
                                 obs::kCentralTrack);
                             rfc_central_commit(t);
                           }
                         });
  });
}

void HybridSystem::rfc_central_commit(Transaction* txn) {
  if (txn->marked_abort) {
    // Invalidated while the commit request was in flight.
    central_abort_rerun(txn, AbortCause::CentralInvalidated,
                        /*release_everything=*/false);
    return;
  }
  central_begin_auth(txn);
}

// --------------------------------------------------------------------------
// fault injection
//
// Failure semantics (docs/PROTOCOL.md "Failure model"):
//   * A crashed node processes nothing; messages delivered to it queue in a
//     backlog replayed in arrival order at recovery, so FIFO coherence /
//     authentication ordering survives the outage and nothing is lost.
//   * A central crash aborts every resident transaction (shipped class A,
//     class B, and the central half of remote-call class B). Their restart
//     is deferred to recovery, after the backlog replay. Crash restarts pay
//     their I/O again (memory contents are gone).
//   * A site crash aborts only the class A transactions running locally;
//     the site's lock/coherence tables are stable storage and survive, so
//     authentication holds and coherence counts held on behalf of central
//     transactions remain valid across the outage.
//   * Reclaim cleanup (crash or ship timeout) releases the victim's
//     authentication grabs at every master site it could have contacted —
//     the failure-detector shortcut; FIFO links + FCFS CPUs guarantee the
//     cleanup lands before any retry's new authentication round.

void HybridSystem::schedule_fault_transitions() {
  const FaultSchedule schedule(cfg_.faults, cfg_.num_sites,
                               rng_.fork("hybrid.fault-schedule"));
  Rng link_rng = rng_.fork("hybrid.link-faults");
  for (SiteState& site : sites_) {
    site.up->set_fault_rng(link_rng.fork("hybrid.link-up"));
    site.down->set_fault_rng(link_rng.fork("hybrid.link-down"));
  }
  // Steady-state message chaos applies from t = 0; msg_fault windows
  // override the probabilities while active and their end transitions
  // restore these values.
  if (cfg_.faults.message_faults()) {
    for (int s = 0; s < cfg_.num_sites; ++s) {
      apply_msg_fault(s, cfg_.faults.dup_prob, cfg_.faults.reorder_prob,
                      cfg_.faults.spike_prob, cfg_.faults.spike_factor);
    }
  }
  for (const FaultTransition& tr : schedule.transitions()) {
    sim_.schedule_at(tr.time, [this, tr] { apply_fault_transition(tr); });
  }
}

double HybridSystem::effective_reorder_window() const {
  return cfg_.faults.reorder_window > 0.0 ? cfg_.faults.reorder_window
                                          : cfg_.comm_delay;
}

void HybridSystem::apply_msg_fault(int site, double dup_prob,
                                   double reorder_prob, double spike_prob,
                                   double spike_factor) {
  SiteState& s = sites_[site];
  for (Link* link : {s.up.get(), s.down.get()}) {
    link->set_dup(dup_prob, cfg_.faults.dup_extra);
    link->set_reorder(reorder_prob, effective_reorder_window());
    link->set_delay_spike(spike_prob, spike_factor);
  }
}

void HybridSystem::apply_fault_transition(const FaultTransition& tr) {
  const int lo = tr.site < 0 ? 0 : tr.site;
  const int hi = tr.site < 0 ? cfg_.num_sites - 1 : tr.site;
  switch (tr.kind) {
    case FaultKind::CentralOutage:
      if (tr.begin) {
        central_crash();
      } else {
        central_recover();
      }
      return;
    case FaultKind::SiteOutage:
      for (int s = lo; s <= hi; ++s) {
        if (tr.begin) {
          site_crash(s);
        } else {
          site_recover(s);
        }
      }
      return;
    case FaultKind::LinkOutage:
      for (int s = lo; s <= hi; ++s) {
        sites_[s].up->set_up(!tr.begin);
        sites_[s].down->set_up(!tr.begin);
      }
      return;
    case FaultKind::LinkDegrade:
      for (int s = lo; s <= hi; ++s) {
        sites_[s].up->set_delay_factor(tr.begin ? tr.delay_factor : 1.0);
        sites_[s].down->set_delay_factor(tr.begin ? tr.delay_factor : 1.0);
        sites_[s].up->set_loss(tr.begin ? tr.loss_prob : 0.0);
        sites_[s].down->set_loss(tr.begin ? tr.loss_prob : 0.0);
      }
      return;
    case FaultKind::MsgFault:
      for (int s = lo; s <= hi; ++s) {
        if (tr.begin) {
          apply_msg_fault(s, tr.dup_prob, tr.reorder_prob, tr.spike_prob,
                          tr.spike_factor);
        } else {
          // Restore the schedule's steady-state message-fault levels.
          apply_msg_fault(s, cfg_.faults.dup_prob, cfg_.faults.reorder_prob,
                          cfg_.faults.spike_prob, cfg_.faults.spike_factor);
        }
      }
      return;
  }
  HLS_ASSERT(false, "unknown fault transition kind");
}

void HybridSystem::central_crash() {
  if (!central_.alive) {
    return;  // overlapping outage windows coalesce
  }
  central_.alive = false;
  ++metrics_.central_crashes;
  if (obs_wants(obs::EventKind::Fault)) {
    obs::Event event;
    event.kind = obs::EventKind::Fault;
    event.time = sim_.now();
    event.site = -1;
    event.up = false;
    emit_event(event);
  }

  // Sort the victims so the crash processing order (and therefore every
  // downstream event) is independent of arena index order.
  std::vector<TxnId> victims;
  arena_.for_each([&victims](const Transaction& txn) {
    if (txn.at_central) {
      victims.push_back(txn.id);
    }
  });
  std::sort(victims.begin(), victims.end());
  HLS_ASSERT(static_cast<int>(victims.size()) == central_.resident_txns,
             "central residency disagrees with at_central flags");

  // Two passes: bump every victim's epoch first so that releasing one
  // victim's locks cannot re-awaken another victim through a grant callback
  // carrying a still-valid epoch.
  for (TxnId id : victims) {
    Transaction* txn = arena_.lookup(id);
    txn->at_central = false;
    // Close the open segment at its pending phase; the outage residence
    // until the recovery restart is then charged to Stall.
    span_interrupt(txn, obs::kCentralTrack);
    txn->phases.pending = obs::Phase::Stall;
    prepare_rerun(txn, AbortCause::Crash);
    txn->memory_resident = false;  // the crash wiped central memory
    central_.recovery_queue.emplace_back(id, txn->epoch);
  }
  for (TxnId id : victims) {
    Transaction* txn = arena_.lookup(id);
    central_.locks->release_all(id);
    release_auth_holds_everywhere(txn);
  }
  central_.resident_txns = 0;
  HLS_ASSERT(central_.locks->locks_held() == 0,
             "crashed central complex still holds locks");
}

void HybridSystem::central_recover() {
  if (central_.alive) {
    return;
  }
  central_.alive = true;
  ++metrics_.central_recoveries;
  if (obs_wants(obs::EventKind::Fault)) {
    obs::Event event;
    event.kind = obs::EventKind::Fault;
    event.time = sim_.now();
    event.site = -1;
    event.up = true;
    emit_event(event);
  }

  // Replay the message backlog in arrival order before restarting any
  // aborted resident: coherence updates and fresh shipped arrivals observe
  // the same FIFO order they would have without the outage.
  std::vector<UniqueFunction<void()>> backlog;
  backlog.swap(central_.backlog);
  metrics_.backlog_replayed += backlog.size();
  for (UniqueFunction<void()>& cb : backlog) {
    cb();
  }

  std::vector<std::pair<TxnId, std::uint64_t>> queue;
  queue.swap(central_.recovery_queue);
  for (const auto& [id, epoch] : queue) {
    Transaction* txn = find(id, epoch);
    if (txn == nullptr) {
      continue;  // reclaimed by its home site's ship timeout meanwhile
    }
    ++central_.resident_txns;
    txn->at_central = true;
    // Outage residence, booked on the central track where the victim sat.
    span_settle(txn, obs::Phase::Stall, sim_.now(), obs::kCentralTrack);
    schedule_central_restart(txn);
  }
}

void HybridSystem::site_crash(int site) {
  SiteState& s = sites_[site];
  if (!s.alive) {
    return;
  }
  s.alive = false;
  ++metrics_.site_crashes;
  if (obs_wants(obs::EventKind::Fault)) {
    obs::Event event;
    event.kind = obs::EventKind::Fault;
    event.time = sim_.now();
    event.site = site;
    event.up = false;
    emit_event(event);
  }

  // Only the class A transactions executing locally crash with the site.
  // Shipped work from this site keeps running at central (its response will
  // queue in the backlog), and remote-call class B rides out the outage the
  // same way: its in-flight messages park until recovery.
  std::vector<TxnId> victims;
  arena_.for_each([&victims, site](const Transaction& txn) {
    if (txn.cls == TxnClass::A && txn.route == Route::Local &&
        txn.home_site == site) {
      victims.push_back(txn.id);
    }
  });
  std::sort(victims.begin(), victims.end());
  for (TxnId id : victims) {
    Transaction* txn = arena_.lookup(id);
    span_interrupt(txn, site);
    txn->phases.pending = obs::Phase::Stall;
    prepare_rerun(txn, AbortCause::Crash);
    txn->memory_resident = false;
    s.recovery_queue.emplace_back(id, txn->epoch);
  }
  // Victims release their concurrency locks; authentication holds and
  // coherence counts (owned by central transactions / the update protocol)
  // live in stable storage and survive the outage.
  for (TxnId id : victims) {
    s.locks->release_all(id);
  }
}

void HybridSystem::site_recover(int site) {
  SiteState& s = sites_[site];
  if (s.alive) {
    return;
  }
  s.alive = true;
  ++metrics_.site_recoveries;
  if (obs_wants(obs::EventKind::Fault)) {
    obs::Event event;
    event.kind = obs::EventKind::Fault;
    event.time = sim_.now();
    event.site = site;
    event.up = true;
    emit_event(event);
  }

  std::vector<UniqueFunction<void()>> backlog;
  backlog.swap(s.backlog);
  metrics_.backlog_replayed += backlog.size();
  for (UniqueFunction<void()>& cb : backlog) {
    cb();
  }

  std::vector<std::pair<TxnId, std::uint64_t>> queue;
  queue.swap(s.recovery_queue);
  for (const auto& [id, epoch] : queue) {
    if (Transaction* txn = find(id, epoch)) {
      span_settle(txn, obs::Phase::Stall, sim_.now(), site);  // outage residence
      local_start_run(txn);
    }
  }
}

void HybridSystem::release_auth_holds_everywhere(Transaction* txn) {
  // txn->auth_sites only lists sites whose positive ack already arrived; a
  // site whose grant is still in flight holds locks too. Recompute the full
  // master-site set from the access pattern and release unconditionally
  // (release_all is a no-op where nothing is held).
  std::vector<int> owners;
  for (const LockNeed& need : txn->locks) {
    const int owner = cfg_.owner_site(need.id);
    if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
      owners.push_back(owner);
    }
  }
  for (int site : owners) {
    auto expire = [this, site, id = txn->id] {
      sites_[site].cpu->submit(
          cfg_.site_cpu_seconds(site, cfg_.instr_commit_apply_local),
          [this, site, id] { sites_[site].locks->release_all(id); });
    };
    if (site == txn->home_site && sites_[site].alive) {
      // The failure detector runs at the home site, co-located with this
      // lock table: expire its holds without a link hop. Riding the link
      // would race a timeout fallback's local rerun — the cleanup could land
      // mid-run and strip a lock the rerun legitimately re-acquired under
      // the same transaction id. The CPU job still queues FCFS ahead of the
      // rerun's initiation burst, so the release is ordered before any
      // re-acquisition.
      expire();
    } else {
      send_down(site, std::move(expire));
    }
  }
  txn->auth_sites.clear();
}

void HybridSystem::arm_ship_timeout(Transaction* txn) {
  if (cfg_.ship_timeout <= 0.0) {
    return;  // timeouts disabled: schedule nothing (byte parity)
  }
  double delay = cfg_.ship_timeout;
  for (int i = 0; i < txn->ship_retries; ++i) {
    delay *= cfg_.ship_backoff;
  }
  if (cfg_.ship_jitter > 0.0) {
    // Seeded jitter de-synchronizes timeout storms: each armed timer draws
    // once from the dedicated stream. Disabled (the default) draws nothing.
    delay *= 1.0 + cfg_.ship_jitter * ship_jitter_rng_.next_double();
  }
  // Keyed on ship_attempt, not epoch: central-side reruns bump the epoch but
  // the home site's timer must keep covering them; only a reclaim (which
  // bumps ship_attempt) or completion disarms it.
  // hlslint:allow(callback-epoch) — ship_attempt is the guard here by design.
  sim_.schedule_after(delay, [this, id = txn->id, attempt = txn->ship_attempt] {
    on_ship_timeout(id, attempt);
  });
}

void HybridSystem::on_ship_timeout(TxnId id, std::uint64_t attempt) {
  Transaction* txn = arena_.lookup(id);
  if (txn == nullptr || txn->ship_attempt != attempt) {
    return;  // completed, or superseded by an earlier reclaim
  }
  HLS_ASSERT(txn->route == Route::Central, "ship timeout on a local transaction");
  if (!sites_[txn->home_site].alive) {
    // The failure detector lives at the home site and crashed with it. The
    // central execution proceeds (or waits out a central outage) normally.
    return;
  }
  ++metrics_.ship_timeouts;
  ++site_metrics_[txn->home_site].ship_timeouts;
  ++txn->ship_attempt;

  // Reclaim convention for the timeline: whatever the central incarnation
  // was doing since the last settled segment is written off as Stall — the
  // home site cannot observe where the dead/slow attempt actually stood.
  // The span lands on the home track, where the failure detector runs.
  span_settle(txn, obs::Phase::Stall, sim_.now(), txn->home_site);

  // Reclaim the central incarnation — it may be dead (crash, lost link) or
  // merely slow; the home-site failure detector cannot tell the difference.
  if (txn->at_central) {
    txn->at_central = false;
    --central_.resident_txns;
  }
  prepare_rerun(txn, AbortCause::ShipTimeout);
  txn->memory_resident = false;
  central_.locks->release_all(txn->id);
  release_auth_holds_everywhere(txn);

  if (txn->ship_retries < cfg_.ship_max_retries) {
    ++txn->ship_retries;
    ++metrics_.ship_retries;
    ++site_metrics_[txn->home_site].ship_retries;
    arm_ship_timeout(txn);  // backoff: next timeout is ship_backoff x longer
    ship_to_central(txn);
    return;
  }
  // Retry budget exhausted: fall back to local execution. The transaction
  // moves from the shipped to the local books and keeps its abort history.
  ++metrics_.ship_fallbacks;
  ++site_metrics_[txn->home_site].ship_fallbacks;
  SiteState& home = sites_[txn->home_site];
  --home.shipped_in_flight;
  ++home.resident_txns;
  txn->route = Route::Local;
  local_start_run(txn);
}

// --------------------------------------------------------------------------
// accessors

const LockManager& HybridSystem::local_locks(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return *sites_[site].locks;
}

const FcfsResource& HybridSystem::local_cpu(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return *sites_[site].cpu;
}

int HybridSystem::local_resident(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return sites_[site].resident_txns;
}

const SiteMetrics& HybridSystem::site_metrics(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  flush_phase_batch();
  return site_metrics_[site];
}

int HybridSystem::shipped_in_flight(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return sites_[site].shipped_in_flight;
}

bool HybridSystem::site_up(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return sites_[site].alive;
}

HybridSystem::LinkFaultTotals HybridSystem::link_fault_totals() const {
  LinkFaultTotals totals;
  for (const SiteState& site : sites_) {
    for (const Link* link : {site.up.get(), site.down.get()}) {
      totals.retransmitted += link->messages_retransmitted();
      totals.duplicated += link->messages_duplicated();
      totals.reordered += link->messages_reordered();
      totals.delay_spikes += link->delay_spikes();
    }
  }
  return totals;
}

void HybridSystem::check_invariants() const {
  central_.locks->check_invariants();
  HLS_ASSERT(central_.resident_txns >= 0, "negative central residency");

  // Recount the residency books from the live transaction set. These are
  // exact cross-checks, not inequalities: every counter must equal the
  // number of live transactions in the matching state.
  int expect_central = 0;
  std::vector<int> expect_resident(sites_.size(), 0);
  std::vector<int> expect_shipped(sites_.size(), 0);
  arena_.for_each([&](const Transaction& txn) {
    if (txn.at_central) {
      ++expect_central;
    }
    if (txn.cls == TxnClass::A) {
      if (txn.route == Route::Local) {
        ++expect_resident[static_cast<std::size_t>(txn.home_site)];
      } else {
        ++expect_shipped[static_cast<std::size_t>(txn.home_site)];
      }
    }
  });
  HLS_ASSERT(central_.resident_txns == expect_central,
             "central residency disagrees with live transaction states");
  for (const SiteState& site : sites_) {
    site.locks->check_invariants();
    const auto s = static_cast<std::size_t>(site.index);
    HLS_ASSERT(site.resident_txns == expect_resident[s],
               "site residency disagrees with live transaction states");
    HLS_ASSERT(site.shipped_in_flight == expect_shipped[s],
               "shipped_in_flight disagrees with live transaction states");
    if (site.alive) {
      HLS_ASSERT(site.backlog.empty() && site.recovery_queue.empty(),
                 "live site has unreplayed backlog or recovery queue");
    }
    // Sequencer sanity: a resequencing buffer can only hold messages while
    // the gap message is still on the wire, so an idle link direction must
    // have an empty buffer and a fully caught-up cursor.
    HLS_ASSERT(site.up_seq.next_deliver <= site.up_seq.next_send &&
                   site.down_seq.next_deliver <= site.down_seq.next_send,
               "message sequencer delivered more than was sent");
    if (site.up->messages_in_flight() == 0) {
      HLS_ASSERT(site.up_seq.held.empty(),
                 "idle up link left messages in the resequencing buffer");
    }
    if (site.down->messages_in_flight() == 0) {
      HLS_ASSERT(site.down_seq.held.empty(),
                 "idle down link left messages in the resequencing buffer");
    }
  }
  if (central_.alive) {
    HLS_ASSERT(central_.backlog.empty() && central_.recovery_queue.empty(),
               "live central complex has unreplayed backlog or recovery queue");
  }

  // Class-A traffic counters are double-entry bookkeeping too: every
  // arrival and every ship is attributed to its home site at the same
  // instant the global tally moves.
  std::uint64_t site_arrivals_a = 0;
  std::uint64_t site_shipped_a = 0;
  for (const SiteMetrics& sm : site_metrics_) {
    site_arrivals_a += sm.arrivals_class_a;
    site_shipped_a += sm.shipped_class_a;
  }
  HLS_ASSERT(metrics_.arrivals_class_a == site_arrivals_a,
             "global arrivals_class_a disagrees with sum over sites");
  HLS_ASSERT(metrics_.shipped_class_a == site_shipped_a,
             "global shipped_class_a disagrees with sum over sites");

  // Fault counters are double-entry bookkeeping: the global tally and the
  // per-home-site attribution must agree exactly.
  std::uint64_t site_timeouts = 0;
  std::uint64_t site_retries = 0;
  std::uint64_t site_fallbacks = 0;
  for (const SiteMetrics& sm : site_metrics_) {
    site_timeouts += sm.ship_timeouts;
    site_retries += sm.ship_retries;
    site_fallbacks += sm.ship_fallbacks;
  }
  HLS_ASSERT(metrics_.ship_timeouts == site_timeouts,
             "global ship_timeouts disagrees with sum over sites");
  HLS_ASSERT(metrics_.ship_retries == site_retries,
             "global ship_retries disagrees with sum over sites");
  HLS_ASSERT(metrics_.ship_fallbacks == site_fallbacks,
             "global ship_fallbacks disagrees with sum over sites");
  std::uint64_t site_dup_drops = 0;
  std::uint64_t site_resequenced = 0;
  for (const SiteMetrics& sm : site_metrics_) {
    site_dup_drops += sm.dup_msgs_dropped;
    site_resequenced += sm.msgs_resequenced;
  }
  HLS_ASSERT(metrics_.dup_msgs_dropped == site_dup_drops,
             "global dup_msgs_dropped disagrees with sum over sites");
  HLS_ASSERT(metrics_.msgs_resequenced == site_resequenced,
             "global msgs_resequenced disagrees with sum over sites");

  // Abort provenance is double-entry bookkeeping too. Per cause: the global
  // tally equals the sum of the victims' home-site tallies; overall: every
  // abort is a rerun, lands in exactly one conflict-matrix cell, and the
  // winner columns account for exactly the aborts that named a winner.
  std::uint64_t cause_total = 0;
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    std::uint64_t site_sum = 0;
    for (const SiteMetrics& sm : site_metrics_) {
      site_sum += sm.aborts[c];
    }
    HLS_ASSERT(metrics_.aborts[c] == site_sum,
               "global per-cause aborts disagree with sum over sites");
    cause_total += metrics_.aborts[c];
  }
  HLS_ASSERT(cause_total == metrics_.reruns,
             "sum of aborts over causes disagrees with total reruns");
  if (metrics_.conflict_sites > 0) {
    HLS_ASSERT(metrics_.conflict_matrix_total() == cause_total,
               "conflict matrix total disagrees with total aborts");
    std::uint64_t winner_cells = 0;
    for (int v = 0; v < metrics_.conflict_sites; ++v) {
      for (int w = 0; w < metrics_.conflict_sites; ++w) {
        winner_cells += metrics_.conflict(v, w);
      }
    }
    HLS_ASSERT(winner_cells == metrics_.aborts_with_winner,
               "conflict-matrix winner columns disagree with aborts_with_winner");
  }
  double site_wasted_cpu = 0.0;
  double site_wasted_io = 0.0;
  for (const SiteMetrics& sm : site_metrics_) {
    site_wasted_cpu += sm.wasted_cpu;
    site_wasted_io += sm.wasted_io;
  }
  HLS_ASSERT(std::abs(site_wasted_cpu - metrics_.wasted_cpu_total()) <= 1e-6,
             "per-site wasted CPU disagrees with per-cause ledger");
  HLS_ASSERT(std::abs(site_wasted_io - metrics_.wasted_io_total()) <= 1e-6,
             "per-site wasted I/O disagrees with per-cause ledger");
}

// --------------------------------------------------------------------------
// observability: trace sinks and the time-series sampler

void HybridSystem::add_trace_sink(obs::TraceSink* sink) {
  HLS_ASSERT(sink != nullptr, "null trace sink");
  sinks_.push_back(sink);
  sink_mask_ |= sink->kind_mask();
}

void HybridSystem::remove_trace_sink(obs::TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  sink_mask_ = 0;
  for (const obs::TraceSink* s : sinks_) {
    sink_mask_ |= s->kind_mask();
  }
}

void HybridSystem::emit_event(const obs::Event& ev) {
  const unsigned bit = obs::kind_bit(ev.kind);
  for (obs::TraceSink* sink : sinks_) {
    if (sink->kind_mask() & bit) {
      sink->on_event(ev);
    }
  }
}

void HybridSystem::take_sample() {
  obs::SampleRow row;
  row.time = sim_.now();
  row.central_utilization = central_.cpu->utilization();
  row.central_cpu_queue = static_cast<int>(central_.cpu->queue_length());
  row.central_resident = central_.resident_txns;
  row.central_up = central_.alive;
  row.live_txns = static_cast<int>(arena_.live_count());
  row.extended = resource_telemetry_;
  if (row.extended) {
    row.central_lock_waiters = static_cast<int>(central_.locks->waiters());
    row.central_io_in_flight = central_.io_in_flight;
  }
  row.sites.reserve(sites_.size());
  for (const SiteState& site : sites_) {
    obs::SiteSample s;
    s.utilization = site.cpu->utilization();
    s.cpu_queue = static_cast<int>(site.cpu->queue_length());
    s.resident = site.resident_txns;
    s.shipped_in_flight = site.shipped_in_flight;
    s.up = site.alive;
    if (row.extended) {
      s.lock_waiters = static_cast<int>(site.locks->waiters());
      s.link_in_flight = static_cast<int>(site.up->messages_in_flight() +
                                          site.down->messages_in_flight());
      s.io_in_flight = site.io_in_flight;
    }
    row.sites.push_back(s);
  }
  series_.push_back(std::move(row));

  if (obs_wants(obs::EventKind::Sample)) {
    obs::Event ev;
    ev.kind = obs::EventKind::Sample;
    ev.time = sim_.now();
    ev.up = central_.alive;
    ev.central_cpu_queue = static_cast<int>(central_.cpu->queue_length());
    ev.live_txns = static_cast<int>(arena_.live_count());
    ev.sample = &series_.back();  // full row; valid for the emission only
    emit_event(ev);
  }

  // Re-arm only while work remains so drain() terminates: the sampler must
  // never be the event keeping the simulation alive.
  if (arrivals_enabled_ || arena_.live_count() > 0) {
    sim_.schedule_after(cfg_.obs_sample_interval, [this] { take_sample(); });
  }
}

namespace {

constexpr int cause_idx(AbortCause c) { return static_cast<int>(c); }
constexpr int kCauseCount = static_cast<int>(AbortCause::kCount);

/// Registers the six per-cause abort counters under `sc` with the stable
/// literal names matching obs::abort_cause_name.
void export_abort_counters(const obs::Registry::Scope& sc,
                           const std::uint64_t (&aborts)[kCauseCount]) {
  sc.counter("aborts.preempted", aborts[cause_idx(AbortCause::LocalPreempted)]);
  sc.counter("aborts.invalidated",
             aborts[cause_idx(AbortCause::CentralInvalidated)]);
  sc.counter("aborts.auth_refused", aborts[cause_idx(AbortCause::AuthRefused)]);
  sc.counter("aborts.deadlock", aborts[cause_idx(AbortCause::Deadlock)]);
  sc.counter("aborts.ship_timeout", aborts[cause_idx(AbortCause::ShipTimeout)]);
  sc.counter("aborts.crash", aborts[cause_idx(AbortCause::Crash)]);
}

/// CPU + lock-manager entries shared by the central scope and every site
/// scope: utilization/queue time averages, the Little's-law ledgers, lock
/// occupancy, and — when armed — the wait-queue gauge and heat buckets.
void export_resource(const obs::Registry::Scope& sc, const FcfsResource& cpu,
                     const LockManager& locks, bool telemetry, int io_count,
                     const TimeWeightedStat& io_tw, double now) {
  sc.time_weighted("cpu.util", cpu.utilization(), cpu.busy() ? 1.0 : 0.0,
                   "fraction");
  sc.time_weighted("cpu.queue", cpu.average_queue_length(),
                   static_cast<double>(cpu.queue_length()), "jobs");
  sc.counter("cpu.bursts", cpu.completed_bursts(), "bursts");
  sc.gauge("cpu.busy_seconds", cpu.busy_seconds(), "s");
  sc.gauge("cpu.sojourn_seconds", cpu.sojourn_seconds(), "s");
  sc.gauge("locks.held", static_cast<double>(locks.locks_held()), "locks");
  sc.gauge("locks.waiters", static_cast<double>(locks.waiters()), "txns");
  sc.counter("locks.deadlocks", locks.deadlocks_detected(), "cycles");
  if (locks.wait_telemetry_enabled()) {
    sc.time_weighted("locks.wait_queue", locks.average_waiters(now),
                     static_cast<double>(locks.waiters()), "txns");
  }
  if (telemetry) {
    sc.time_weighted("io.in_flight", io_tw.average(now),
                     static_cast<double>(io_count), "ops");
  }
  const std::vector<std::uint64_t>& heat = locks.heat();
  for (std::size_t b = 0; b < heat.size(); ++b) {
    sc.bucket_counter("locks.heat", b, heat[b], "accesses");
  }
}

}  // namespace

void HybridSystem::export_registry(obs::Registry& reg) const {
  const Metrics& m = metrics();  // flushes the staged phase batch
  const double now = sim_.now();
  const obs::Registry::Scope root = reg.root();

  // ---- transaction flow counters ----
  root.counter("txn.arrivals.class_a", m.arrivals_class_a, "txns");
  root.counter("txn.arrivals.class_b", m.arrivals_class_b, "txns");
  root.counter("txn.shipped.class_a", m.shipped_class_a, "txns");
  root.counter("txn.completions", m.completions, "txns");
  root.counter("txn.completions.local_a", m.completions_local_a, "txns");
  root.counter("txn.completions.shipped_a", m.completions_shipped_a, "txns");
  root.counter("txn.completions.class_b", m.completions_class_b, "txns");
  root.counter("txn.reruns", m.reruns, "runs");
  root.gauge("txn.live", static_cast<double>(arena_.live_count()), "txns");
  root.gauge("txn.max_reruns_seen", static_cast<double>(m.max_reruns_seen),
             "runs");

  // ---- abort provenance ----
  export_abort_counters(root, m.aborts);
  root.counter("aborts.with_winner", m.aborts_with_winner, "txns");
  root.gauge("wasted.cpu.total", m.wasted_cpu_total(), "s");
  root.gauge("wasted.io.total", m.wasted_io_total(), "s");
  root.stat("wasted.per_txn", m.wasted_per_txn, "s");

  // ---- protocol message counters ----
  root.counter("msg.async_updates_sent", m.async_updates_sent, "msgs");
  root.counter("auth.rounds", m.auth_rounds, "rounds");
  root.counter("auth.negative_acks", m.auth_negative_acks, "acks");

  // ---- fault handling / message-level chaos defenses ----
  root.counter("fault.ship_timeouts", m.ship_timeouts);
  root.counter("fault.ship_retries", m.ship_retries);
  root.counter("fault.ship_fallbacks", m.ship_fallbacks);
  root.counter("fault.central_crashes", m.central_crashes);
  root.counter("fault.central_recoveries", m.central_recoveries);
  root.counter("fault.site_crashes", m.site_crashes);
  root.counter("fault.site_recoveries", m.site_recoveries);
  root.counter("fault.backlog_replayed", m.backlog_replayed, "msgs");
  root.counter("fault.arrivals_rejected", m.arrivals_rejected, "txns");
  root.counter("chaos.dup_msgs_dropped", m.dup_msgs_dropped, "msgs");
  root.counter("chaos.msgs_resequenced", m.msgs_resequenced, "msgs");

  // ---- response-time statistics ----
  root.stat("rt.all", m.rt_all, "s");
  root.stat("rt.local_a", m.rt_local_a, "s");
  root.stat("rt.shipped_a", m.rt_shipped_a, "s");
  root.stat("rt.class_b", m.rt_class_b, "s");
  root.stat("rt.first_try", m.rt_first_try, "s");
  root.stat("rt.rerun", m.rt_rerun, "s");
  root.histogram("rt.histogram", m.rt_histogram, "s");

  // ---- phase decomposition (one stat per obs::Phase) ----
  const PhaseStats& ph = m.rt_phase;
  root.stat("phase.ready_queue",
            ph[static_cast<std::size_t>(obs::Phase::ReadyQueue)], "s");
  root.stat("phase.cpu_service",
            ph[static_cast<std::size_t>(obs::Phase::CpuService)], "s");
  root.stat("phase.io", ph[static_cast<std::size_t>(obs::Phase::Io)], "s");
  root.stat("phase.network", ph[static_cast<std::size_t>(obs::Phase::Network)],
            "s");
  root.stat("phase.lock_wait",
            ph[static_cast<std::size_t>(obs::Phase::LockWait)], "s");
  root.stat("phase.auth", ph[static_cast<std::size_t>(obs::Phase::Auth)], "s");
  root.stat("phase.commit", ph[static_cast<std::size_t>(obs::Phase::Commit)],
            "s");
  root.stat("phase.stall", ph[static_cast<std::size_t>(obs::Phase::Stall)],
            "s");

  // ---- measurement window ----
  root.gauge("window.seconds", m.window_seconds(), "s");

  // ---- central complex ----
  const obs::Registry::Scope central = reg.central();
  export_resource(central, *central_.cpu, *central_.locks, resource_telemetry_,
                  central_.io_in_flight, central_.io_tw, now);
  central.gauge("txn.resident", static_cast<double>(central_.resident_txns),
                "txns");

  // ---- per-site breakdowns ----
  for (int s = 0; s < cfg_.num_sites; ++s) {
    const SiteState& site = sites_[static_cast<std::size_t>(s)];
    const SiteMetrics& sm = site_metrics_[static_cast<std::size_t>(s)];
    const obs::Registry::Scope sc = reg.site(s);
    export_resource(sc, *site.cpu, *site.locks, resource_telemetry_,
                    site.io_in_flight, site.io_tw, now);
    sc.stat("rt.local_a", sm.rt_local_a, "s");
    sc.stat("rt.shipped_a", sm.rt_shipped_a, "s");
    sc.counter("txn.arrivals.class_a", sm.arrivals_class_a, "txns");
    sc.counter("txn.shipped.class_a", sm.shipped_class_a, "txns");
    sc.gauge("txn.resident", static_cast<double>(site.resident_txns), "txns");
    sc.gauge("txn.shipped_in_flight",
             static_cast<double>(site.shipped_in_flight), "txns");
    export_abort_counters(sc, sm.aborts);
    sc.gauge("wasted.cpu", sm.wasted_cpu, "s");
    sc.gauge("wasted.io", sm.wasted_io, "s");
    sc.counter("fault.ship_timeouts", sm.ship_timeouts);
    sc.counter("fault.ship_retries", sm.ship_retries);
    sc.counter("fault.ship_fallbacks", sm.ship_fallbacks);
    sc.counter("chaos.dup_msgs_dropped", sm.dup_msgs_dropped, "msgs");
    sc.counter("chaos.msgs_resequenced", sm.msgs_resequenced, "msgs");
    sc.counter("link.up.sent", site.up->messages_sent(), "msgs");
    sc.counter("link.up.delivered", site.up->messages_delivered(), "msgs");
    sc.counter("link.down.sent", site.down->messages_sent(), "msgs");
    sc.counter("link.down.delivered", site.down->messages_delivered(), "msgs");
    if (resource_telemetry_) {
      sc.time_weighted("link.up.in_flight", site.up->average_in_flight(now),
                       static_cast<double>(site.up->messages_in_flight()),
                       "msgs");
      sc.time_weighted("link.down.in_flight",
                       site.down->average_in_flight(now),
                       static_cast<double>(site.down->messages_in_flight()),
                       "msgs");
    }
  }
}

ControllerFeed HybridSystem::make_controller_feed() const {
  ControllerFeed feed;
  feed.now = sim_.now();
  feed.num_sites = cfg_.num_sites;
  feed.completions_local_a = metrics_.completions_local_a;
  feed.completions_shipped_a = metrics_.completions_shipped_a;
  feed.rt_local_a_sum = metrics_.rt_local_a.sum();
  feed.rt_shipped_a_sum = metrics_.rt_shipped_a.sum();
  for (int c = 0; c < static_cast<int>(AbortCause::kCount); ++c) {
    feed.aborts_by_cause[c] = metrics_.aborts[c];
    feed.wasted_cpu_by_cause[c] = metrics_.wasted_cpu_by_cause[c];
    feed.wasted_io_by_cause[c] = metrics_.wasted_io_by_cause[c];
  }
  feed.conflict_matrix = metrics_.conflict_matrix;
  return feed;
}

void HybridSystem::controller_review() {
  controller_->on_review(make_controller_feed());
  // Same re-arm rule as the sampler: the controller must never be the event
  // keeping the simulation alive, or drain() would spin forever.
  if (arrivals_enabled_ || arena_.live_count() > 0) {
    sim_.schedule_after(adapt_interval_, [this] { controller_review(); });
  }
}

}  // namespace hls
