#include "baseline/centralized_system.hpp"

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace hls {

CentralizedSystem::CentralizedSystem(SystemConfig cfg)
    : cfg_(cfg),
      factory_(cfg_, Rng(cfg.seed)),
      rng_(cfg.seed ^ 0xC0FFEEULL),
      cpu_(std::make_unique<FcfsResource>(sim_, "central-cpu")),
      locks_(std::make_unique<LockManager>(sim_, "central-locks")) {
  cfg_.validate();
  arrivals_.reserve(cfg_.num_sites);
  for (int s = 0; s < cfg_.num_sites; ++s) {
    arrivals_.push_back(std::make_unique<ArrivalProcess>(
        sim_, rng_.fork("central.arrivals"), cfg_.arrival_rate_per_site));
  }
}

void CentralizedSystem::enable_arrivals() {
  for (int s = 0; s < cfg_.num_sites; ++s) {
    arrivals_[s]->start([this, s] { admit(factory_.make(s, sim_.now())); });
  }
}

void CentralizedSystem::stop_arrivals() {
  for (auto& a : arrivals_) {
    a->stop();
  }
}

void CentralizedSystem::run_for(double seconds) {
  sim_.run_until(sim_.now() + seconds);
}

void CentralizedSystem::drain() { sim_.run(); }

void CentralizedSystem::begin_measurement() {
  metrics_.reset(sim_.now());
  cpu_->reset_stats();
}

void CentralizedSystem::end_measurement() { metrics_.measure_end = sim_.now(); }

TxnId CentralizedSystem::inject(TxnClass cls, int site) {
  Transaction txn = factory_.make_of_class(cls, site, sim_.now());
  const TxnId id = txn.id;
  admit(std::move(txn));
  return id;
}

Transaction* CentralizedSystem::find(TxnId id, std::uint64_t epoch) {
  auto it = live_.find(id);
  return (it == live_.end() || it->second->epoch != epoch) ? nullptr
                                                           : it->second.get();
}

void CentralizedSystem::admit(Transaction txn) {
  ++metrics_.arrivals;
  auto owned = std::make_unique<Transaction>(std::move(txn));
  Transaction* t = owned.get();
  HLS_ASSERT(live_.emplace(t->id, std::move(owned)).second, "duplicate txn id");
  // Input message travels terminal -> central.
  sim_.schedule_after(cfg_.comm_delay, [this, id = t->id, epoch = t->epoch] {
    if (Transaction* txn2 = find(id, epoch)) {
      start_run(txn2);
    }
  });
}

void CentralizedSystem::start_run(Transaction* txn) {
  cpu_->submit(cfg_.central_cpu_seconds(cfg_.instr_msg_init),
               [this, id = txn->id, epoch = txn->epoch] {
                 if (Transaction* t = find(id, epoch)) {
                   after_init(t);
                 }
               });
}

void CentralizedSystem::after_init(Transaction* txn) {
  if (txn->is_rerun()) {
    do_call(txn);
    return;
  }
  sim_.schedule_after(cfg_.setup_io_time, [this, id = txn->id, epoch = txn->epoch] {
    if (Transaction* t = find(id, epoch)) {
      do_call(t);
    }
  });
}

void CentralizedSystem::do_call(Transaction* txn) {
  if (txn->call_index >= static_cast<int>(txn->locks.size())) {
    commit(txn);
    return;
  }
  cpu_->submit(cfg_.central_cpu_seconds(cfg_.instr_per_call),
               [this, id = txn->id, epoch = txn->epoch] {
                 if (Transaction* t = find(id, epoch)) {
                   after_call_cpu(t);
                 }
               });
}

void CentralizedSystem::after_call_cpu(Transaction* txn) {
  const LockNeed& need = txn->locks[txn->call_index];
  const auto outcome =
      locks_->request(txn->id, need.id, need.mode,
                      [this, id = txn->id, epoch = txn->epoch] {
                        if (Transaction* t = find(id, epoch)) {
                          lock_granted(t);
                        }
                      });
  switch (outcome) {
    case LockRequestOutcome::Granted:
    case LockRequestOutcome::AlreadyHeld:
      lock_granted(txn);
      break;
    case LockRequestOutcome::Queued:
      break;
    case LockRequestOutcome::Deadlock:
      ++metrics_.deadlock_aborts;
      abort_rerun(txn);
      break;
  }
}

void CentralizedSystem::lock_granted(Transaction* txn) {
  const bool do_io = !txn->is_rerun() && txn->call_io[txn->call_index];
  ++txn->call_index;
  if (do_io) {
    sim_.schedule_after(cfg_.call_io_time,
                        [this, id = txn->id, epoch = txn->epoch] {
                          if (Transaction* t = find(id, epoch)) {
                            do_call(t);
                          }
                        });
  } else {
    do_call(txn);
  }
}

void CentralizedSystem::commit(Transaction* txn) {
  cpu_->submit(cfg_.central_cpu_seconds(cfg_.instr_msg_commit),
               [this, id = txn->id, epoch = txn->epoch] {
                 if (Transaction* t = find(id, epoch)) {
                   finish(t);
                 }
               });
}

void CentralizedSystem::finish(Transaction* txn) {
  locks_->release_all(txn->id);
  // Output message travels central -> terminal.
  const double rt = sim_.now() + cfg_.comm_delay - txn->arrival_time;
  metrics_.rt_all.add(rt);
  (txn->cls == TxnClass::A ? metrics_.rt_class_a : metrics_.rt_class_b).add(rt);
  ++metrics_.completions;
  live_.erase(txn->id);
}

void CentralizedSystem::abort_rerun(Transaction* txn) {
  locks_->release_all(txn->id);
  ++txn->run_count;
  ++txn->epoch;
  txn->call_index = 0;
  HLS_ASSERT(txn->run_count <= cfg_.max_reruns, "centralized baseline livelock");
  start_run(txn);
}

void CentralizedSystem::export_registry(obs::Registry& reg) const {
  const BaselineMetrics& m = metrics_;
  const obs::Registry::Scope root = reg.root();
  root.counter("txn.arrivals", m.arrivals, "txns");
  root.counter("txn.completions", m.completions, "txns");
  root.counter("aborts.deadlock", m.deadlock_aborts);
  root.gauge("txn.live", static_cast<double>(live_.size()), "txns");
  root.gauge("window.seconds", m.measure_end - m.measure_start, "s");
  root.stat("rt.all", m.rt_all, "s");
  root.stat("rt.class_a", m.rt_class_a, "s");
  root.stat("rt.class_b", m.rt_class_b, "s");

  const obs::Registry::Scope central = reg.central();
  central.time_weighted("cpu.util", cpu_->utilization(),
                        cpu_->busy() ? 1.0 : 0.0, "fraction");
  central.time_weighted("cpu.queue", cpu_->average_queue_length(),
                        static_cast<double>(cpu_->queue_length()), "jobs");
  central.counter("cpu.bursts", cpu_->completed_bursts(), "bursts");
  central.gauge("cpu.busy_seconds", cpu_->busy_seconds(), "s");
  central.gauge("cpu.sojourn_seconds", cpu_->sojourn_seconds(), "s");
  central.gauge("locks.held", static_cast<double>(locks_->locks_held()),
                "locks");
  central.gauge("locks.waiters", static_cast<double>(locks_->waiters()),
                "txns");
  central.counter("locks.deadlocks", locks_->deadlocks_detected(), "cycles");
}

}  // namespace hls
