// Shared metrics container for the two baseline architectures.
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace hls {

struct BaselineMetrics {
  SampleStat rt_all;
  SampleStat rt_class_a;
  SampleStat rt_class_b;
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t remote_calls = 0;    ///< distributed only: cross-site data calls
  std::uint64_t deadlock_aborts = 0; ///< waits-for cycles (either baseline)
  std::uint64_t timeout_aborts = 0;  ///< distributed only: cross-site waits
  double measure_start = 0.0;
  double measure_end = 0.0;

  [[nodiscard]] double throughput() const {
    const double w = measure_end - measure_start;
    return w > 0 ? static_cast<double>(completions) / w : 0.0;
  }

  [[nodiscard]] double remote_calls_per_txn() const {
    return completions > 0 ? static_cast<double>(remote_calls) /
                                 static_cast<double>(completions)
                           : 0.0;
  }

  void reset(double now) {
    *this = BaselineMetrics{};
    measure_start = now;
    measure_end = now;
  }
};

}  // namespace hls
