// Fully (geographically) distributed baseline architecture (§1).
//
// "In the geographically distributed database approach the databases are
// partitioned and distributed among regional processing systems, and some
// request routing mechanism is provided to support the access of remote
// systems. The performance of the fully distributed system depends
// critically on the number of remote calls that a transaction makes for
// data."  [DIAS87]
//
// N regional sites, each owning one partition of the lock space, with no
// central complex and no replication. Class A transactions run entirely at
// their home site. Class B transactions run at their home site and perform
// a REMOTE FUNCTION CALL for every database call whose entity is mastered
// elsewhere: one round trip plus message-handling pathlength at both ends,
// with the lock acquired (and the I/O performed) at the owning site.
// Commit uses a presumed-yes two-phase protocol: one prepare round trip to
// the participant sites before the response is released, with lock-release
// messages following asynchronously.
//
// Cross-site deadlocks cannot be seen by any single site's waits-for graph;
// as in real systems of the period they are broken by a lock-wait timeout
// (config::distributed_lock_timeout) followed by abort and randomized
// restart backoff.
//
// Modeling simplification (documented in DESIGN.md): on abort, locks held
// at remote sites are released after one message delay, and the rerun backs
// off for at least that long, so a rerun never races its own release
// messages.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/baseline_metrics.hpp"
#include "db/lock_manager.hpp"
#include "hybrid/config.hpp"
#include "hybrid/transaction.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "workload/arrivals.hpp"
#include "workload/txn_factory.hpp"

namespace hls {

namespace obs {
class Registry;
}

/// Extra knobs for the distributed baseline, on top of SystemConfig.
struct DistributedOptions {
  double lock_timeout = 5.0;        ///< cross-site lock-wait timeout, s
  double instr_remote_msg = 15e3;   ///< per message-handling event, instr
  double restart_backoff_max = 1.0; ///< uniform extra backoff after abort, s
};

class DistributedSystem {
 public:
  DistributedSystem(SystemConfig cfg, DistributedOptions opts = {});

  DistributedSystem(const DistributedSystem&) = delete;
  DistributedSystem& operator=(const DistributedSystem&) = delete;

  void enable_arrivals();
  void stop_arrivals();
  void run_for(double seconds);
  void drain();
  void begin_measurement();
  void end_measurement();

  TxnId inject(TxnClass cls, int site);

  Simulator& simulator() { return sim_; }
  [[nodiscard]] const BaselineMetrics& metrics() const { return metrics_; }
  [[nodiscard]] int live_transactions() const {
    return static_cast<int>(live_.size());
  }
  [[nodiscard]] const LockManager& site_locks(int site) const;
  [[nodiscard]] double site_utilization(int site) const;

  /// Exports the run's metrics into `reg` under the baseline subset of the
  /// stable names in docs/OBSERVABILITY.md (rt.* stats, txn.* counters, and
  /// a site<k>.* resource scope per site). Read-only; callable any time.
  void export_registry(obs::Registry& reg) const;

 private:
  struct Site {
    std::unique_ptr<FcfsResource> cpu;
    std::unique_ptr<LockManager> locks;
    std::unique_ptr<ArrivalProcess> arrivals;
  };

  Transaction* find(TxnId id, std::uint64_t epoch);
  void admit(Transaction txn);
  void start_run(Transaction* txn);
  void after_init(Transaction* txn);
  void do_call(Transaction* txn);
  void after_call_cpu(Transaction* txn);
  void request_local(Transaction* txn);
  void request_remote(Transaction* txn, int owner);
  void remote_granted(TxnId id, std::uint64_t epoch, int owner, LockId lock);
  void after_lock(Transaction* txn, bool remote);
  void commit(Transaction* txn);
  void after_commit_cpu(Transaction* txn);
  void prepare_acked(TxnId id, std::uint64_t epoch);
  void finish(Transaction* txn);
  void abort_rerun(Transaction* txn, bool timed_out);
  /// Sites other than home that master any of this transaction's locks.
  [[nodiscard]] std::vector<int> remote_participants(const Transaction& txn) const;

  SystemConfig cfg_;
  DistributedOptions opts_;
  Simulator sim_;
  TxnFactory factory_;
  Rng rng_;
  std::vector<Site> sites_;
  BaselineMetrics metrics_;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> live_;
};

}  // namespace hls
