#include "baseline/distributed_system.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/assert.hpp"

namespace hls {

DistributedSystem::DistributedSystem(SystemConfig cfg, DistributedOptions opts)
    : cfg_(cfg),
      opts_(opts),
      factory_(cfg_, Rng(cfg.seed)),
      rng_(cfg.seed ^ 0xD157ULL) {
  cfg_.validate();
  HLS_ASSERT(opts_.lock_timeout > 0.0, "lock timeout must be positive");
  sites_.resize(cfg_.num_sites);
  for (int s = 0; s < cfg_.num_sites; ++s) {
    const std::string tag = "dsite" + std::to_string(s);
    sites_[s].cpu = std::make_unique<FcfsResource>(sim_, tag + "-cpu");
    sites_[s].locks = std::make_unique<LockManager>(sim_, tag + "-locks");
    sites_[s].arrivals = std::make_unique<ArrivalProcess>(
        sim_, rng_.fork("distributed.site-arrivals"), cfg_.arrival_rate_per_site);
  }
}

void DistributedSystem::enable_arrivals() {
  for (int s = 0; s < cfg_.num_sites; ++s) {
    sites_[s].arrivals->start(
        [this, s] { admit(factory_.make(s, sim_.now())); });
  }
}

void DistributedSystem::stop_arrivals() {
  for (Site& site : sites_) {
    site.arrivals->stop();
  }
}

void DistributedSystem::run_for(double seconds) {
  sim_.run_until(sim_.now() + seconds);
}

void DistributedSystem::drain() { sim_.run(); }

void DistributedSystem::begin_measurement() {
  metrics_.reset(sim_.now());
  for (Site& site : sites_) {
    site.cpu->reset_stats();
  }
}

void DistributedSystem::end_measurement() { metrics_.measure_end = sim_.now(); }

TxnId DistributedSystem::inject(TxnClass cls, int site) {
  Transaction txn = factory_.make_of_class(cls, site, sim_.now());
  const TxnId id = txn.id;
  admit(std::move(txn));
  return id;
}

const LockManager& DistributedSystem::site_locks(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return *sites_[site].locks;
}

double DistributedSystem::site_utilization(int site) const {
  HLS_ASSERT(site >= 0 && site < cfg_.num_sites, "site index out of range");
  return sites_[site].cpu->utilization();
}

Transaction* DistributedSystem::find(TxnId id, std::uint64_t epoch) {
  auto it = live_.find(id);
  return (it == live_.end() || it->second->epoch != epoch) ? nullptr
                                                           : it->second.get();
}

void DistributedSystem::admit(Transaction txn) {
  ++metrics_.arrivals;
  auto owned = std::make_unique<Transaction>(std::move(txn));
  Transaction* t = owned.get();
  HLS_ASSERT(live_.emplace(t->id, std::move(owned)).second, "duplicate txn id");
  start_run(t);  // terminals are local to the home site: no input delay
}

void DistributedSystem::start_run(Transaction* txn) {
  sites_[txn->home_site].cpu->submit(
      cfg_.local_cpu_seconds(cfg_.instr_msg_init),
      [this, id = txn->id, epoch = txn->epoch] {
        if (Transaction* t = find(id, epoch)) {
          after_init(t);
        }
      });
}

void DistributedSystem::after_init(Transaction* txn) {
  if (txn->is_rerun()) {
    do_call(txn);
    return;
  }
  sim_.schedule_after(cfg_.setup_io_time,
                      [this, id = txn->id, epoch = txn->epoch] {
                        if (Transaction* t = find(id, epoch)) {
                          do_call(t);
                        }
                      });
}

void DistributedSystem::do_call(Transaction* txn) {
  if (txn->call_index >= static_cast<int>(txn->locks.size())) {
    commit(txn);
    return;
  }
  sites_[txn->home_site].cpu->submit(
      cfg_.local_cpu_seconds(cfg_.instr_per_call),
      [this, id = txn->id, epoch = txn->epoch] {
        if (Transaction* t = find(id, epoch)) {
          after_call_cpu(t);
        }
      });
}

void DistributedSystem::after_call_cpu(Transaction* txn) {
  const int owner = cfg_.owner_site(txn->locks[txn->call_index].id);
  if (owner == txn->home_site) {
    request_local(txn);
  } else {
    request_remote(txn, owner);
  }
}

void DistributedSystem::request_local(Transaction* txn) {
  const LockNeed& need = txn->locks[txn->call_index];
  LockManager& lm = *sites_[txn->home_site].locks;
  const auto outcome =
      lm.request(txn->id, need.id, need.mode,
                 [this, id = txn->id, epoch = txn->epoch] {
                   if (Transaction* t = find(id, epoch)) {
                     after_lock(t, /*remote=*/false);
                   }
                 });
  switch (outcome) {
    case LockRequestOutcome::Granted:
    case LockRequestOutcome::AlreadyHeld:
      after_lock(txn, /*remote=*/false);
      break;
    case LockRequestOutcome::Queued:
      break;
    case LockRequestOutcome::Deadlock:
      ++metrics_.deadlock_aborts;
      abort_rerun(txn, /*timed_out=*/false);
      break;
  }
}

void DistributedSystem::request_remote(Transaction* txn, int owner) {
  ++metrics_.remote_calls;
  const LockNeed need = txn->locks[txn->call_index];
  const TxnId id = txn->id;
  const std::uint64_t epoch = txn->epoch;
  // Send leg: message-handling pathlength at home, one delay, handling at
  // the owner, then the lock request in the owner's table.
  sites_[txn->home_site].cpu->submit(
      cfg_.local_cpu_seconds(opts_.instr_remote_msg), [this, id, epoch, owner,
                                                       need] {
        sim_.schedule_after(cfg_.comm_delay, [this, id, epoch, owner, need] {
          sites_[owner].cpu->submit(
              cfg_.local_cpu_seconds(opts_.instr_remote_msg),
              [this, id, epoch, owner, need] {
                LockManager& lm = *sites_[owner].locks;
                const auto outcome = lm.request(
                    id, need.id, need.mode, [this, id, epoch, owner, need] {
                      remote_granted(id, epoch, owner, need.id);
                    });
                switch (outcome) {
                  case LockRequestOutcome::Granted:
                  case LockRequestOutcome::AlreadyHeld:
                    remote_granted(id, epoch, owner, need.id);
                    break;
                  case LockRequestOutcome::Queued: {
                    // Cross-site waits are invisible to any one site's
                    // deadlock detector: arm the timeout. The firing check
                    // verifies the transaction is still blocked on THIS
                    // lock — the same run may legitimately wait on a later
                    // lock at the same owner inside the timeout window.
                    sim_.schedule_after(
                        opts_.lock_timeout, [this, id, epoch, owner,
                                             lock = need.id] {
                          Transaction* t = find(id, epoch);
                          if (t != nullptr &&
                              sites_[owner].locks->waiting_lock(id) == lock) {
                            sites_[owner].locks->cancel_waits(id);
                            ++metrics_.timeout_aborts;
                            abort_rerun(t, /*timed_out=*/true);
                          }
                        });
                    break;
                  }
                  case LockRequestOutcome::Deadlock:
                    // A cycle local to the owner site; report back as a
                    // failure and abort at home.
                    if (Transaction* t = find(id, epoch)) {
                      ++metrics_.deadlock_aborts;
                      abort_rerun(t, /*timed_out=*/false);
                    }
                    break;
                }
              });
        });
      });
}

void DistributedSystem::remote_granted(TxnId id, std::uint64_t epoch, int owner,
                                       LockId lock) {
  // The owner performs the call's I/O, then the reply travels home.
  Transaction* peek = find(id, epoch);
  if (peek == nullptr) {
    // Granted to a transaction that aborted meanwhile: drop the stray hold.
    if (sites_[owner].locks->holds(id, lock)) {
      sites_[owner].locks->release(id, lock);
    }
    return;
  }
  const bool do_io = !peek->is_rerun() && peek->call_io[peek->call_index];
  const double io = do_io ? cfg_.call_io_time : 0.0;
  sim_.schedule_after(io, [this, id, epoch] {
    sim_.schedule_after(cfg_.comm_delay, [this, id, epoch] {
      if (Transaction* t = find(id, epoch)) {
        sites_[t->home_site].cpu->submit(
            cfg_.local_cpu_seconds(opts_.instr_remote_msg),
            [this, id, epoch] {
              if (Transaction* t2 = find(id, epoch)) {
                after_lock(t2, /*remote=*/true);
              }
            });
      }
    });
  });
}

void DistributedSystem::after_lock(Transaction* txn, bool remote) {
  // Local calls do their I/O at home; remote calls already did it at the
  // owner inside remote_granted.
  const bool do_io =
      !remote && !txn->is_rerun() && txn->call_io[txn->call_index];
  ++txn->call_index;
  if (do_io) {
    sim_.schedule_after(cfg_.call_io_time,
                        [this, id = txn->id, epoch = txn->epoch] {
                          if (Transaction* t = find(id, epoch)) {
                            do_call(t);
                          }
                        });
  } else {
    do_call(txn);
  }
}

std::vector<int> DistributedSystem::remote_participants(
    const Transaction& txn) const {
  std::vector<int> out;
  for (const LockNeed& need : txn.locks) {
    const int owner = cfg_.owner_site(need.id);
    if (owner != txn.home_site &&
        std::find(out.begin(), out.end(), owner) == out.end()) {
      out.push_back(owner);
    }
  }
  return out;
}

void DistributedSystem::commit(Transaction* txn) {
  sites_[txn->home_site].cpu->submit(
      cfg_.local_cpu_seconds(cfg_.instr_msg_commit),
      [this, id = txn->id, epoch = txn->epoch] {
        if (Transaction* t = find(id, epoch)) {
          after_commit_cpu(t);
        }
      });
}

void DistributedSystem::after_commit_cpu(Transaction* txn) {
  const std::vector<int> participants = remote_participants(*txn);
  if (participants.empty()) {
    finish(txn);
    return;
  }
  // Two-phase commit, happy path: prepare round trip to every participant,
  // response released once all votes are in.
  txn->auth_pending_acks = static_cast<int>(participants.size());
  for (int p : participants) {
    sim_.schedule_after(cfg_.comm_delay, [this, id = txn->id,
                                          epoch = txn->epoch, p] {
      sites_[p].cpu->submit(
          cfg_.local_cpu_seconds(cfg_.instr_commit_apply_local),
          [this, id, epoch] {
            sim_.schedule_after(cfg_.comm_delay, [this, id, epoch] {
              prepare_acked(id, epoch);
            });
          });
    });
  }
}

void DistributedSystem::prepare_acked(TxnId id, std::uint64_t epoch) {
  Transaction* txn = find(id, epoch);
  HLS_ASSERT(txn != nullptr, "prepare ack for a missing transaction");
  HLS_ASSERT(txn->auth_pending_acks > 0, "unexpected prepare ack");
  if (--txn->auth_pending_acks == 0) {
    finish(txn);
  }
}

void DistributedSystem::finish(Transaction* txn) {
  // Release at home now; release messages to participants take one delay.
  sites_[txn->home_site].locks->release_all(txn->id);
  for (int p : remote_participants(*txn)) {
    // Release messages are keyed on the immutable TxnId alone: the txn
    // completes here and ids are never reused, so no epoch guard is needed.
    // hlslint:allow(callback-epoch)
    sim_.schedule_after(cfg_.comm_delay, [this, id = txn->id, p] {
      sites_[p].locks->release_all(id);
    });
  }
  const double rt = sim_.now() - txn->arrival_time;
  metrics_.rt_all.add(rt);
  (txn->cls == TxnClass::A ? metrics_.rt_class_a : metrics_.rt_class_b).add(rt);
  ++metrics_.completions;
  live_.erase(txn->id);
}

void DistributedSystem::abort_rerun(Transaction* txn, bool timed_out) {
  sites_[txn->home_site].locks->release_all(txn->id);
  const std::vector<int> participants = remote_participants(*txn);
  for (int p : participants) {
    // Stale-release safety comes from the rerun backoff below (the rerun
    // cannot re-acquire before these fire), not from an epoch guard.
    // hlslint:allow(callback-epoch)
    sim_.schedule_after(cfg_.comm_delay,
                        [this, id = txn->id, p] { sites_[p].locks->release_all(id); });
  }
  ++txn->run_count;
  ++txn->epoch;
  txn->call_index = 0;
  txn->auth_pending_acks = 0;
  HLS_ASSERT(txn->run_count <= cfg_.max_reruns, "distributed baseline livelock");
  // Back off past the release messages (comm_delay) so a rerun can never
  // race its own lock releases; timeouts add a randomized component to
  // de-synchronize repeated cross-site collisions.
  double backoff = participants.empty() ? 0.0 : cfg_.comm_delay;
  if (timed_out) {
    backoff += rng_.uniform(0.05, opts_.restart_backoff_max);
  }
  sim_.schedule_after(backoff, [this, id = txn->id, epoch = txn->epoch] {
    if (Transaction* t = find(id, epoch)) {
      start_run(t);
    }
  });
}

void DistributedSystem::export_registry(obs::Registry& reg) const {
  const BaselineMetrics& m = metrics_;
  const obs::Registry::Scope root = reg.root();
  root.counter("txn.arrivals", m.arrivals, "txns");
  root.counter("txn.completions", m.completions, "txns");
  root.counter("msg.remote_calls", m.remote_calls, "calls");
  root.counter("aborts.deadlock", m.deadlock_aborts);
  root.counter("aborts.lock_timeout", m.timeout_aborts);
  root.gauge("txn.live", static_cast<double>(live_.size()), "txns");
  root.gauge("window.seconds", m.measure_end - m.measure_start, "s");
  root.stat("rt.all", m.rt_all, "s");
  root.stat("rt.class_a", m.rt_class_a, "s");
  root.stat("rt.class_b", m.rt_class_b, "s");

  for (int s = 0; s < cfg_.num_sites; ++s) {
    const Site& site = sites_[static_cast<std::size_t>(s)];
    const obs::Registry::Scope sc = reg.site(s);
    sc.time_weighted("cpu.util", site.cpu->utilization(),
                     site.cpu->busy() ? 1.0 : 0.0, "fraction");
    sc.time_weighted("cpu.queue", site.cpu->average_queue_length(),
                     static_cast<double>(site.cpu->queue_length()), "jobs");
    sc.counter("cpu.bursts", site.cpu->completed_bursts(), "bursts");
    sc.gauge("cpu.busy_seconds", site.cpu->busy_seconds(), "s");
    sc.gauge("cpu.sojourn_seconds", site.cpu->sojourn_seconds(), "s");
    sc.gauge("locks.held", static_cast<double>(site.locks->locks_held()),
             "locks");
    sc.gauge("locks.waiters", static_cast<double>(site.locks->waiters()),
             "txns");
    sc.counter("locks.deadlocks", site.locks->deadlocks_detected(), "cycles");
  }
}

}  // namespace hls
