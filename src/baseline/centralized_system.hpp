// Fully centralized baseline architecture (§1).
//
// "In the fully centralized system, where user terminals are connected by a
// network to the central computing complex, all transaction input messages
// are shipped to the central site, where the transaction is processed, and
// output messages are sent back to the terminal; hence the centralized
// system does not make use of geographical locality of data reference."
//
// One big CPU, one lock table over the whole lock space, conventional
// two-phase locking with deadlock-abort. Every transaction — class A or B —
// pays one communication delay inbound and one outbound. There is no
// replication, no coherence machinery, no authentication: this is the
// simple system the hybrid architecture competes with.
#pragma once

#include <memory>
#include <unordered_map>

#include "db/lock_manager.hpp"
#include "hybrid/config.hpp"
#include "hybrid/transaction.hpp"
#include "baseline/baseline_metrics.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"
#include "workload/arrivals.hpp"
#include "workload/txn_factory.hpp"

namespace hls {

namespace obs {
class Registry;
}

class CentralizedSystem {
 public:
  /// Reuses the hybrid SystemConfig: central_mips sizes the single CPU,
  /// comm_delay the terminal links, and the workload fields the transaction
  /// mix (class A still draws locks from its home region's partition — the
  /// data layout does not change, only where processing happens).
  explicit CentralizedSystem(SystemConfig cfg);

  CentralizedSystem(const CentralizedSystem&) = delete;
  CentralizedSystem& operator=(const CentralizedSystem&) = delete;

  void enable_arrivals();
  void stop_arrivals();
  void run_for(double seconds);
  void drain();
  void begin_measurement();
  void end_measurement();

  TxnId inject(TxnClass cls, int site);

  Simulator& simulator() { return sim_; }
  [[nodiscard]] const BaselineMetrics& metrics() const { return metrics_; }
  [[nodiscard]] double cpu_utilization() const { return cpu_->utilization(); }
  [[nodiscard]] int live_transactions() const {
    return static_cast<int>(live_.size());
  }
  [[nodiscard]] const LockManager& locks() const { return *locks_; }

  /// Exports the run's metrics into `reg` under the baseline subset of the
  /// stable names in docs/OBSERVABILITY.md (rt.* stats, txn.* counters, and
  /// a central.* resource scope). Read-only; callable any time.
  void export_registry(obs::Registry& reg) const;

 private:
  Transaction* find(TxnId id, std::uint64_t epoch);
  void admit(Transaction txn);
  void start_run(Transaction* txn);
  void after_init(Transaction* txn);
  void do_call(Transaction* txn);
  void after_call_cpu(Transaction* txn);
  void lock_granted(Transaction* txn);
  void commit(Transaction* txn);
  void finish(Transaction* txn);
  void abort_rerun(Transaction* txn);

  SystemConfig cfg_;
  Simulator sim_;
  TxnFactory factory_;
  Rng rng_;
  std::unique_ptr<FcfsResource> cpu_;
  std::unique_ptr<LockManager> locks_;
  std::vector<std::unique_ptr<ArrivalProcess>> arrivals_;
  BaselineMetrics metrics_;
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> live_;
};

}  // namespace hls
