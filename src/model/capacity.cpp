#include "model/capacity.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/assert.hpp"

namespace hls {

CapacityAnalyzer::CapacityAnalyzer() : opts_(Options{}) {}

bool CapacityAnalyzer::supportable(const ModelParams& params,
                                   double rt_unloaded) const {
  const ModelSolution s = AnalyticModel(opts_.model).solve(params);
  return !s.saturated && s.r_avg <= opts_.rt_limit_factor * rt_unloaded &&
         std::max(s.rho_local, s.rho_central) <= opts_.max_utilization;
}

template <typename EvalRt>
CapacityAnalyzer::Result CapacityAnalyzer::bisect(const ModelParams& /*base*/,
                                                  EvalRt eval) const {
  // eval(rate) -> (r_avg, saturated, max_rho, p_ship) at that offered load.
  Result result;
  {
    const auto [rt0, sat0, rho0, p0] = eval(opts_.rate_low);
    result.rt_unloaded = rt0;
    HLS_ASSERT(!sat0, "system saturated even at the bracket's low end");
  }
  auto ok = [&](double rate) {
    const auto [rt, sat, rho, p] = eval(rate);
    return !sat && rt <= opts_.rt_limit_factor * result.rt_unloaded &&
           rho <= opts_.max_utilization;
  };
  double lo = opts_.rate_low;
  double hi = opts_.rate_high;
  if (ok(hi)) {
    lo = hi;  // bracket never saturates: report the upper bound
  } else {
    for (int i = 0; i < opts_.iterations; ++i) {
      const double mid = (lo + hi) / 2.0;
      (ok(mid) ? lo : hi) = mid;
    }
  }
  result.max_total_tps = lo;
  const auto [rt, sat, rho, p] = eval(lo);
  result.rt_at_capacity = rt;
  result.p_ship_at_capacity = p;
  return result;
}

CapacityAnalyzer::Result CapacityAnalyzer::capacity_fixed_ship(
    const ModelParams& base, double p_ship) const {
  return bisect(base, [&](double rate) {
    ModelParams p = base;
    p.lambda_site = rate / p.num_sites;
    p.p_ship = p_ship;
    const ModelSolution s = AnalyticModel(opts_.model).solve(p);
    return std::make_tuple(s.r_avg, s.saturated,
                           std::max(s.rho_local, s.rho_central), p_ship);
  });
}

CapacityAnalyzer::Result CapacityAnalyzer::capacity_static_optimal(
    const ModelParams& base) const {
  StaticOptimizer::Options opt_opts;
  opt_opts.grid_points = 21;  // coarser grid: the bisection calls this often
  opt_opts.refine_iterations = 20;
  opt_opts.model = opts_.model;
  const StaticOptimizer optimizer(opt_opts);
  return bisect(base, [&](double rate) {
    ModelParams p = base;
    p.lambda_site = rate / p.num_sites;
    const StaticOptimum opt = optimizer.optimize(p);
    return std::make_tuple(opt.solution.r_avg, opt.solution.saturated,
                           std::max(opt.solution.rho_local,
                                    opt.solution.rho_central),
                           opt.p_ship);
  });
}

}  // namespace hls
