#include "model/dynamic_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "model/residuals.hpp"
#include "util/assert.hpp"

namespace hls {

namespace {
constexpr double kRhoCap = 0.98;
}

DynamicEstimator::DynamicEstimator(ModelParams base, UtilSource source)
    : base_(base), source_(source) {
  // Per-transaction CPU demand and non-CPU residence at each tier, used by
  // the number-in-system inversion (§3.2.1b: "the fraction of time each
  // transaction spends at the CPU, times the number of transactions").
  const double n = base_.n_calls;
  s_local_ = base_.local_cpu(base_.instr_msg_init) +
             n * base_.local_cpu(base_.instr_per_call) +
             base_.local_cpu(base_.instr_msg_commit);
  dnc_local_ = base_.setup_io + n * base_.prob_call_io * base_.call_io;

  s_central_ = base_.central_cpu(base_.instr_msg_init) +
               n * base_.central_cpu(base_.instr_per_call) +
               base_.central_cpu(base_.instr_msg_commit);
  dnc_central_ = base_.setup_io + n * base_.prob_call_io * base_.call_io +
                 2.0 * base_.comm_delay;  // authentication round trip
}

double DynamicEstimator::rho_from_queue(int queue, double extra) const {
  // M/M/1 inversion: E[N] = rho/(1-rho)  =>  rho = N/(N+1); `extra` adds the
  // incoming transaction's presence on the candidate side (the paper's
  // correction terms a / alpha in §3.2.1).
  const double q = std::max(0.0, static_cast<double>(queue)) + extra;
  return std::min(kRhoCap, q / (q + 1.0));
}

double DynamicEstimator::rho_from_count(int count, double extra, double s,
                                        double d_nc) {
  // Solve n = rho/(1-rho) + (rho/s) * d_nc for rho: the first term is the
  // M/M/1 population at the CPU, the second is Little's law over the
  // non-CPU residence (throughput rho/s times delay d_nc). Monotone in rho,
  // so bisection converges unconditionally.
  const double n = std::max(0.0, static_cast<double>(count)) + extra;
  if (n <= 0.0) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = kRhoCap;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2.0;
    const double predicted = mid / (1.0 - mid) + mid / s * d_nc;
    if (predicted < n) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

std::pair<double, double> DynamicEstimator::utilizations(
    const SystemStateView& view) const {
  if (source_ == UtilSource::CpuQueue) {
    return {rho_from_queue(view.local_cpu_queue, 0.0),
            rho_from_queue(view.central_cpu_queue, 0.0)};
  }
  return {rho_from_count(view.local_num_txns, 0.0, s_local_, dnc_local_),
          rho_from_count(view.central_num_txns, 0.0, s_central_, dnc_central_)};
}

double DynamicEstimator::local_speed_factor(const SystemStateView& view) {
  if (view.config == nullptr || view.config->local_mips_per_site.empty()) {
    return 1.0;
  }
  return view.config->local_mips / view.config->site_mips(view.site);
}

DynamicEstimator::Rts DynamicEstimator::response_times(
    double rho_l, double rho_c, double speed, const SystemStateView& view) const {
  const ModelParams& p = base_;
  const double n = p.n_calls;
  const double part = p.partition();
  const double conflict = p.conflict_factor();
  const double d = p.comm_delay;
  const double f_l = 1.0 / (1.0 - rho_l);
  const double f_c = 1.0 / (1.0 - rho_c);

  // Contention probabilities from the observed lock counts (§3.2.1:
  // "P = n_lock / lockspace"). Central locks are spread over the whole
  // space; the share relevant to this site's partition is locks/num_sites.
  const double p_ll =
      std::min(1.0, view.local_locks_held / part * conflict);
  const double p_cc = std::min(
      1.0, static_cast<double>(view.central_locks_held) / p.lockspace * conflict);
  const double p_cross =
      std::min(1.0, view.central_locks_held / static_cast<double>(p.num_sites) /
                        part * conflict);

  // Two passes stabilize the hold-time / wait-time coupling at fixed rho.
  double beta_l = 0.5, beta_c = 0.5;
  double t_exec_l = 0.5, t_exec_c = 0.2, commit_l = 0.0, commit_c = 0.0;
  for (int pass = 0; pass < 8; ++pass) {
    const double wait_l = p_ll * beta_l / 2.0 + p_cross * d;
    const double call_l = speed * p.local_cpu(p.instr_per_call) * f_l +
                          p.prob_call_io * p.call_io + wait_l;
    commit_l = speed * p.local_cpu(p.instr_msg_commit) * f_l;
    t_exec_l = n * call_l;
    beta_l = (n + 1.0) / 2.0 * call_l + commit_l;

    const double wait_c = p_cc * beta_c / 2.0;
    const double call_c =
        p.central_cpu(p.instr_per_call) * f_c + p.prob_call_io * p.call_io + wait_c;
    commit_c = p.central_cpu(p.instr_msg_commit) * f_c;
    t_exec_c = n * call_c;
    beta_c = (n + 1.0) / 2.0 * call_c + commit_c + 2.0 * d;
  }

  // Abort probabilities via the residual-time split of §3.1, driven by the
  // observed cross-tier lock densities.
  const Residual loc_tri{ResidualShape::Triangular, t_exec_l + commit_l};
  const Residual loc_uni{ResidualShape::Uniform, t_exec_l + commit_l};
  const Residual cen_tri{ResidualShape::Triangular, t_exec_c + commit_c};
  const Residual cen_uni{ResidualShape::Uniform, t_exec_c + commit_c};
  const double p_local_last = prob_first_exceeds(loc_uni, cen_tri, d);
  const double p_a_l =
      std::min(0.9, n * p_cross * p_local_last);
  const double p_local_density =
      std::min(1.0, view.local_locks_held / part * conflict);
  const double p_a_c = std::min(
      0.9, n * p_local_density * (1.0 - prob_first_exceeds(loc_tri, cen_uni, d)));

  const double auth_phase =
      2.0 * d + speed * p.local_cpu(p.instr_auth_local) * f_l;

  Rts out;
  const double r_l_first = speed * p.local_cpu(p.instr_msg_init) * f_l +
                           p.setup_io + t_exec_l + commit_l;
  const double r_l_rerun = speed * p.local_cpu(p.instr_msg_init) * f_l +
                           (t_exec_l - n * p.prob_call_io * p.call_io) +
                           commit_l;
  out.r_local = r_l_first + p_a_l / (1.0 - std::min(0.9, p_a_l)) * r_l_rerun;

  const double r_c_first = p.central_cpu(p.instr_msg_init) * f_c + p.setup_io +
                           t_exec_c + commit_c + auth_phase;
  const double r_c_rerun = p.central_cpu(p.instr_msg_init) * f_c +
                           (t_exec_c - n * p.prob_call_io * p.call_io) + commit_c +
                           auth_phase;
  out.r_central = r_c_first + p_a_c / (1.0 - std::min(0.9, p_a_c)) * r_c_rerun;
  out.r_shipped = speed * p.local_cpu(p.instr_ship_forward) * f_l + 2.0 * d +
                  out.r_central;
  return out;
}

RouteEstimate DynamicEstimator::estimate(const SystemStateView& view) const {
  RouteEstimate est;
  const double speed = local_speed_factor(view);

  // Utilizations excluding the incoming transaction (threshold heuristic).
  const auto [rho_l0, rho_c0] = utilizations(view);
  est.rho_local = rho_l0;
  est.rho_central = rho_c0;

  // Option 1: run locally — the incoming transaction loads the local CPU.
  // Option 2: ship — it loads the central CPU.
  double rho_l_opt1;
  double rho_c_opt1;
  double rho_l_opt2;
  double rho_c_opt2;
  if (source_ == UtilSource::CpuQueue) {
    // The incoming transaction contributes its CPU-time fraction, not a
    // whole queued job (it spends most of its residence in I/O and, when
    // shipped, in communication) — the paper's alpha correction in §3.2.1a.
    const double a_l = s_local_ / (s_local_ + dnc_local_);
    const double a_c = s_central_ / (s_central_ + dnc_central_);
    rho_l_opt1 = rho_from_queue(view.local_cpu_queue, a_l);
    rho_c_opt1 = rho_from_queue(view.central_cpu_queue, 0.0);
    rho_l_opt2 = rho_from_queue(view.local_cpu_queue, 0.0);
    rho_c_opt2 = rho_from_queue(view.central_cpu_queue, a_c);
  } else {
    const double s_site = s_local_ * speed;
    rho_l_opt1 = rho_from_count(view.local_num_txns, 1.0, s_site, dnc_local_);
    rho_c_opt1 = rho_from_count(view.central_num_txns, 0.0, s_central_, dnc_central_);
    rho_l_opt2 = rho_from_count(view.local_num_txns, 0.0, s_site, dnc_local_);
    rho_c_opt2 = rho_from_count(view.central_num_txns, 1.0, s_central_, dnc_central_);
  }

  const Rts rts1 = response_times(rho_l_opt1, rho_c_opt1, speed, view);
  const Rts rts2 = response_times(rho_l_opt2, rho_c_opt2, speed, view);

  est.r_incoming_local = rts1.r_local;
  est.r_incoming_ship = rts2.r_shipped;

  // §3.2.2: estimated average over the currently running transactions plus
  // the incoming one, for each option. The incoming transaction contributes
  // its full path cost (including the shipping legs when routed centrally);
  // residents contribute their remaining-path estimates.
  const double n_l = std::max(0, view.local_num_txns);
  const double n_c = std::max(0, view.central_num_txns);
  const double total = n_l + n_c + 1.0;
  est.r_avg_if_local =
      (n_l * rts1.r_local + n_c * rts1.r_central + rts1.r_local) / total;
  est.r_avg_if_ship =
      (n_l * rts2.r_local + n_c * rts2.r_central + rts2.r_shipped) / total;
  return est;
}

}  // namespace hls
