// Analytical performance model of the hybrid system (§3.1).
//
// Estimates steady-state response times of the paper's six transaction
// kinds via a damped fixed-point iteration over:
//
//   * CPU utilizations at the local and central sites (including protocol
//     overhead work: forwarding, asynchronous update application,
//     authentication processing),
//   * lock hold times and contention probabilities, projected — as in the
//     paper — proportional to (transaction rate per database) x (locks per
//     transaction) x (mean hold time) / (lock space per database),
//   * cross-tier collision rates, split into local aborts vs central
//     aborts/reruns by the residual-time distributions of model/residuals,
//   * rerun expansion R = R_first + E[reruns] * R_rerun with
//     E[reruns] = P_abort / (1 - P_abort_rerun).
//
// The model is used three ways: (1) the static optimizer sweeps p_ship over
// it, (2) the model-validation bench compares it against simulation, and
// (3) the dynamic strategies reuse its response-time equations with
// utilizations and lock counts replaced by observed state.
#pragma once

#include "model/params.hpp"

namespace hls {

struct ModelSolution {
  bool converged = false;
  bool saturated = false;  ///< a CPU utilization hit the stability clamp
  int iterations = 0;

  // utilizations
  double rho_local = 0.0;
  double rho_central = 0.0;

  // response times, seconds
  double r_local_first = 0.0;   ///< class A first run at home site
  double r_local_rerun = 0.0;   ///< class A rerun at home site
  double r_local = 0.0;         ///< class A local incl. rerun expansion
  double r_shipped_first = 0.0; ///< shipped class A first run (incl. 2x comm)
  double r_central_rerun = 0.0; ///< any central rerun
  double r_shipped = 0.0;       ///< shipped class A incl. reruns
  double r_class_b = 0.0;       ///< class B (modeled equal to shipped + ship-in leg)
  double r_avg = 0.0;           ///< mixture over all transaction kinds

  // lock behaviour
  double beta_local = 0.0;    ///< mean lock hold, local first run
  double gamma_local = 0.0;   ///< mean lock hold, local rerun
  double beta_central = 0.0;  ///< mean lock hold, central (incl. auth phase)
  double p_contention_local = 0.0;   ///< per-request local-local wait prob
  double p_wait_auth = 0.0;          ///< per-request wait on an auth-held lock
  double p_contention_central = 0.0; ///< per-request central-central wait prob

  // abort behaviour
  double p_abort_local = 0.0;        ///< first-run abort prob, local class A
  double p_abort_local_rerun = 0.0;  ///< rerun abort prob, local class A
  double p_abort_central = 0.0;      ///< per-run abort prob of a central txn
  double p_auth_refused = 0.0;       ///< component of p_abort_central from neg-acks
  double exp_reruns_local = 0.0;
  double exp_reruns_central = 0.0;
};

class AnalyticModel {
 public:
  struct Options {
    int max_iterations = 400;
    double damping = 0.5;       ///< new = damping*new + (1-damping)*old
    double tolerance = 1e-10;   ///< convergence on max relative change
    double rho_clamp = 0.995;   ///< utilization ceiling for formula stability
  };

  AnalyticModel();  // default options
  explicit AnalyticModel(const Options& opts) : opts_(opts) {}

  /// Solves the fixed point for the given parameters.
  [[nodiscard]] ModelSolution solve(const ModelParams& params) const;

 private:
  Options opts_;
};

}  // namespace hls
