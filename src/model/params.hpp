// Input parameters of the analytical performance model (§3.1).
//
// ModelParams is deliberately self-contained (plain numbers, no dependency
// on the simulator) so the model can be unit-tested and reused by the
// dynamic routing strategies. from_config() lifts a SystemConfig; p_ship is
// the decision variable the static optimizer searches over.
#pragma once

#include <cstdint>

#include "hybrid/config.hpp"

namespace hls {

struct ModelParams {
  // ---- rates / routing ----
  double lambda_site = 1.0;  ///< new-transaction arrivals per local site, txn/s
  double p_loc = 0.75;       ///< fraction of class A (locally runnable) txns
  double p_ship = 0.0;       ///< probability a class A txn is shipped
  int num_sites = 10;

  // ---- hardware ----
  double local_mips = 1.0;
  double central_mips = 15.0;
  double comm_delay = 0.2;

  // ---- transaction shape ----
  int n_calls = 10;
  double instr_per_call = 30e3;
  double instr_msg_init = 75e3;
  double instr_msg_commit = 75e3;
  double setup_io = 0.035;
  double call_io = 0.025;
  double prob_call_io = 1.0;
  double prob_write = 0.25;
  std::uint32_t lockspace = 32768;

  // ---- protocol overheads ----
  double instr_ship_forward = 15e3;
  double instr_apply_update = 10e3;
  double instr_apply_update_item = 2e3;
  double instr_recv_ack = 2e3;
  double instr_auth_local = 10e3;
  double instr_commit_apply_local = 5e3;
  double instr_send_async = 5e3;

  [[nodiscard]] static ModelParams from_config(const SystemConfig& cfg) {
    ModelParams p;
    p.lambda_site = cfg.arrival_rate_per_site;
    p.p_loc = cfg.prob_class_a;
    p.num_sites = cfg.num_sites;
    p.local_mips = cfg.local_mips;
    p.central_mips = cfg.central_mips;
    p.comm_delay = cfg.comm_delay;
    p.n_calls = cfg.db_calls_per_txn;
    p.instr_per_call = cfg.instr_per_call;
    p.instr_msg_init = cfg.instr_msg_init;
    p.instr_msg_commit = cfg.instr_msg_commit;
    p.setup_io = cfg.setup_io_time;
    p.call_io = cfg.call_io_time;
    p.prob_call_io = cfg.prob_call_io;
    p.prob_write = cfg.prob_write_lock;
    p.lockspace = cfg.lockspace;
    p.instr_ship_forward = cfg.instr_ship_forward;
    p.instr_apply_update = cfg.instr_apply_update;
    p.instr_apply_update_item = cfg.instr_apply_update_item;
    p.instr_recv_ack = cfg.instr_recv_ack;
    p.instr_auth_local = cfg.instr_auth_local;
    p.instr_commit_apply_local = cfg.instr_commit_apply_local;
    p.instr_send_async = cfg.instr_send_async;
    return p;
  }

  // ---- derived quantities ----

  [[nodiscard]] double partition() const {
    return static_cast<double>(lockspace) / num_sites;
  }

  [[nodiscard]] double local_cpu(double instr) const {
    return instr / (local_mips * 1e6);
  }
  [[nodiscard]] double central_cpu(double instr) const {
    return instr / (central_mips * 1e6);
  }

  /// New class A transactions running locally, per site, txn/s.
  [[nodiscard]] double rate_local_a() const {
    return lambda_site * p_loc * (1.0 - p_ship);
  }
  /// Class A transactions shipped to central, per site, txn/s.
  [[nodiscard]] double rate_shipped_a() const { return lambda_site * p_loc * p_ship; }
  /// Class B transactions, per site, txn/s.
  [[nodiscard]] double rate_class_b() const { return lambda_site * (1.0 - p_loc); }
  /// New central transactions per central database (= per partition), txn/s
  /// (the paper's lambda*((1 - P_loc) + P_loc*P_shp)).
  [[nodiscard]] double rate_central_per_db() const {
    return rate_class_b() + rate_shipped_a();
  }
  /// New central transactions in total, txn/s.
  [[nodiscard]] double rate_central_total() const {
    return rate_central_per_db() * num_sites;
  }

  /// Probability two lock requests on the same entity conflict, given the
  /// S/X mix: an X request conflicts with everything, an S request only
  /// with X holders.
  [[nodiscard]] double conflict_factor() const {
    return prob_write * (2.0 - prob_write);
  }

  /// Probability a transaction updates at least one entity (sends an
  /// asynchronous update at commit).
  [[nodiscard]] double prob_any_write() const;

  /// Expected number of distinct master sites touched by a class B
  /// transaction's n_calls uniform lock requests.
  [[nodiscard]] double expected_involved_sites() const;
};

}  // namespace hls
