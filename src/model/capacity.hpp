// Capacity analysis: the "maximum transaction rate supportable" quantity
// the paper reads off its figures (no load sharing tops out near 20 tps,
// static load sharing near 30, §4.2) computed directly from the analytic
// model by bisection over the offered load.
//
// An operating point is *supportable* when the model converges without
// saturating and the average response time stays within `rt_limit_factor`
// of the unloaded response time — the same "knee of the curve" criterion
// one applies visually to the figures.
#pragma once

#include "model/analytic_model.hpp"
#include "model/static_optimizer.hpp"

namespace hls {

class CapacityAnalyzer {
 public:
  struct Options {
    double rt_limit_factor = 5.0;  ///< RT knee: supportable while RT <= k*RT0
    /// Utilization ceiling: steady-state formulas admit rho -> 0.99 points
    /// whose finite-horizon behaviour is knife-edge unstable; real capacity
    /// planning leaves headroom.
    double max_utilization = 0.92;
    double rate_low = 0.5;         ///< bisection bracket, total txn/s
    double rate_high = 400.0;
    int iterations = 48;           ///< bisection steps (~1e-10 relative)
    AnalyticModel::Options model;
  };

  CapacityAnalyzer();  // default options
  explicit CapacityAnalyzer(const Options& opts) : opts_(opts) {}

  struct Result {
    double max_total_tps = 0.0;   ///< largest supportable offered load
    double rt_at_capacity = 0.0;  ///< modeled average RT at that load
    double p_ship_at_capacity = 0.0;
    double rt_unloaded = 0.0;     ///< reference RT near zero load
  };

  /// Capacity with a fixed shipping probability (0 = no load sharing).
  [[nodiscard]] Result capacity_fixed_ship(const ModelParams& base,
                                           double p_ship) const;

  /// Capacity when p_ship is re-optimized at every offered load (the
  /// paper's optimal static strategy).
  [[nodiscard]] Result capacity_static_optimal(const ModelParams& base) const;

  /// True when the operating point passes the supportability criterion.
  [[nodiscard]] bool supportable(const ModelParams& params,
                                 double rt_unloaded) const;

 private:
  template <typename EvalRt>
  Result bisect(const ModelParams& base, EvalRt eval) const;

  Options opts_;
};

}  // namespace hls
