#include "model/residuals.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hls {

double residual_survival(const Residual& r, double t) {
  if (t <= 0.0) {
    return 1.0;
  }
  if (t >= r.length) {
    return 0.0;
  }
  const double u = t / r.length;
  switch (r.shape) {
    case ResidualShape::Uniform:
      return 1.0 - u;
    case ResidualShape::Triangular:
      // density 2(T-x)/T^2 -> survival (1-u)^2
      return (1.0 - u) * (1.0 - u);
  }
  return 0.0;
}

namespace {

double density(const Residual& r, double x) {
  if (x < 0.0 || x > r.length || r.length <= 0.0) {
    return 0.0;
  }
  switch (r.shape) {
    case ResidualShape::Uniform:
      return 1.0 / r.length;
    case ResidualShape::Triangular:
      return 2.0 * (r.length - x) / (r.length * r.length);
  }
  return 0.0;
}

}  // namespace

double prob_first_exceeds(const Residual& a, const Residual& b, double offset) {
  HLS_ASSERT(offset >= 0.0, "negative offset");
  HLS_ASSERT(a.length >= 0.0 && b.length >= 0.0, "negative residual length");

  if (a.length <= 0.0) {
    return 0.0;  // A == 0 can never exceed B + offset >= 0
  }
  if (b.length <= 0.0) {
    // A > offset with B degenerate at 0.
    return residual_survival(a, offset);
  }

  // P(A > B + offset) = integral over y of f_B(y) * S_A(y + offset) dy.
  // The integrand is a piecewise polynomial of low degree; composite
  // Simpson with a fine fixed grid is exact to rounding for our purposes.
  constexpr int kSteps = 512;  // even
  const double h = b.length / kSteps;
  double sum = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double y = i * h;
    const double w = (i == 0 || i == kSteps) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    sum += w * density(b, y) * residual_survival(a, y + offset);
  }
  const double p = sum * h / 3.0;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace hls
