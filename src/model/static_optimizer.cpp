#include "model/static_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hls {

StaticOptimizer::StaticOptimizer() : opts_(Options{}) {}

double StaticOptimizer::objective(const ModelParams& params, double p_ship) const {
  ModelParams p = params;
  p.p_ship = p_ship;
  const ModelSolution sol = AnalyticModel(opts_.model).solve(p);
  // Penalize saturation so the optimizer prefers any stable operating point.
  return sol.saturated ? sol.r_avg + 1e6 : sol.r_avg;
}

StaticOptimum StaticOptimizer::optimize(const ModelParams& params) const {
  HLS_ASSERT(opts_.grid_points >= 2, "grid needs at least two points");

  double best_p = 0.0;
  double best_v = objective(params, 0.0);
  const double r_no_sharing = best_v;
  for (int i = 1; i < opts_.grid_points; ++i) {
    const double p = static_cast<double>(i) / (opts_.grid_points - 1);
    const double v = objective(params, p);
    if (v < best_v) {
      best_v = v;
      best_p = p;
    }
  }

  // Golden-section refinement on the bracket around the best grid point.
  const double step = 1.0 / (opts_.grid_points - 1);
  double lo = std::max(0.0, best_p - step);
  double hi = std::min(1.0, best_p + step);
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double x1 = hi - inv_phi * (hi - lo);
  double x2 = lo + inv_phi * (hi - lo);
  double f1 = objective(params, x1);
  double f2 = objective(params, x2);
  for (int i = 0; i < opts_.refine_iterations; ++i) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - inv_phi * (hi - lo);
      f1 = objective(params, x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + inv_phi * (hi - lo);
      f2 = objective(params, x2);
    }
  }
  const double refined = (lo + hi) / 2.0;
  if (objective(params, refined) < best_v) {
    best_p = refined;
  }

  StaticOptimum out;
  out.p_ship = best_p;
  ModelParams p = params;
  p.p_ship = best_p;
  out.solution = AnalyticModel(opts_.model).solve(p);
  out.r_avg_no_sharing = r_no_sharing;
  return out;
}

}  // namespace hls
