// State-based response-time estimation for the dynamic strategies (§3.2).
//
// Where the static model works from arrival rates, the dynamic estimator
// works from the observed system state at decision time:
//
//   * utilization is inverted from the CPU queue length
//     (rho = (q+a)/(q+1+a), the M/M/1 inversion with the incoming
//     transaction's contribution `a` added on the side it would be routed
//     to), or from the number of transactions in system
//     (rho = alpha * (n+a), alpha being the fraction of its residence a
//     transaction spends at the CPU) — the paper's two variants §3.2.1(a)
//     and (b);
//   * contention probabilities come from the observed lock counts
//     (e.g. P = n_lock / lockspace) rather than rate * hold-time products;
//   * abort probabilities reuse the residual-time split of the static model.
//
// The estimator returns both the incoming transaction's estimated response
// time for each routing option (§3.2.1) and the estimated average response
// time over all currently running transactions (§3.2.2).
#pragma once

#include "model/params.hpp"
#include "routing/strategy.hpp"

namespace hls {

enum class UtilSource {
  CpuQueue,     ///< utilization from CPU queue lengths (§3.2.1a)
  NumInSystem,  ///< utilization from transactions-in-system counts (§3.2.1b)
};

struct RouteEstimate {
  // Estimated response time of the incoming transaction.
  double r_incoming_local = 0.0;
  double r_incoming_ship = 0.0;
  // Estimated average response time over all running transactions for each
  // routing option (the §3.2.2 objective).
  double r_avg_if_local = 0.0;
  double r_avg_if_ship = 0.0;
  // Utilization estimates excluding the incoming transaction (also used by
  // the tuned threshold heuristic §3.2.4).
  double rho_local = 0.0;
  double rho_central = 0.0;
};

class DynamicEstimator {
 public:
  DynamicEstimator(ModelParams base, UtilSource source);

  [[nodiscard]] RouteEstimate estimate(const SystemStateView& view) const;

  /// Utilization pair (local, central) inverted from the observed state,
  /// without any incoming-transaction correction.
  [[nodiscard]] std::pair<double, double> utilizations(
      const SystemStateView& view) const;

  [[nodiscard]] UtilSource source() const { return source_; }

  /// Local-CPU scale factor for the arriving site (per-site MIPS override;
  /// 1 when the configuration is homogeneous or absent).
  [[nodiscard]] static double local_speed_factor(const SystemStateView& view);

 private:
  struct Rts {
    double r_local = 0.0;    ///< class A run locally
    double r_shipped = 0.0;  ///< class A shipped (incl. both comm legs)
    double r_central = 0.0;  ///< a central-resident transaction (no ship leg)
  };
  /// Response times under given utilizations and observed lock counts.
  /// `speed` scales local CPU times for heterogeneous sites (1 = the
  /// configured default local_mips; 0.5 = a site twice as fast).
  [[nodiscard]] Rts response_times(double rho_l, double rho_c, double speed,
                                   const SystemStateView& view) const;

  [[nodiscard]] double rho_from_queue(int queue, double extra) const;
  /// Inverts "transactions in system" to utilization by Little's law:
  /// n = rho/(1-rho) + rho * d_nc / s, where s is the CPU demand per
  /// transaction and d_nc its non-CPU residence (I/O, lock-free delays).
  [[nodiscard]] static double rho_from_count(int count, double extra, double s,
                                             double d_nc);

  ModelParams base_;
  UtilSource source_;
  double s_local_;     ///< CPU seconds per local transaction
  double dnc_local_;   ///< non-CPU residence of a local transaction
  double s_central_;   ///< CPU seconds per central transaction
  double dnc_central_; ///< non-CPU residence of a central transaction
};

}  // namespace hls
