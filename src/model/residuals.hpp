// Residual-time distributions for the abort split (§3.1).
//
// When a local and a central transaction collide on the same entity, who
// aborts depends on timing: if the local transaction is still running when
// the central transaction's authentication arrives, the local transaction
// is preempted (local abort); if the local transaction commits first, its
// asynchronous update invalidates the central transaction (central abort).
//
// The paper approximates the remaining time of the requester as uniform
// (requests spread evenly over the run) and of the holder as triangular
// with density proportional to (T - x) (collision probability proportional
// to locks held, which grow linearly over the run), and adds the
// communication delay to the central side. This module computes
// P(A > B + d) for those distribution shapes.
#pragma once

namespace hls {

/// Shape of a residual-time distribution on [0, length].
enum class ResidualShape {
  Uniform,     ///< density 1/T
  Triangular,  ///< density 2(T-x)/T^2, mass concentrated near 0
};

struct Residual {
  ResidualShape shape = ResidualShape::Uniform;
  double length = 0.0;  ///< support [0, length]; length 0 = the point mass {0}
};

/// P(A > B + offset) for independent residuals A, B and offset >= 0.
/// Evaluated by adaptive Simpson integration over B (exact to ~1e-10 for
/// these piecewise-polynomial shapes; unit tests cross-check closed forms
/// and Monte-Carlo estimates).
[[nodiscard]] double prob_first_exceeds(const Residual& a, const Residual& b,
                                        double offset);

/// P(X > t) for a residual distribution (its survival function).
[[nodiscard]] double residual_survival(const Residual& r, double t);

}  // namespace hls
