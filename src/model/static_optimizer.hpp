// Optimal static (probabilistic) load sharing (§3.1).
//
// Sweeps the shipping probability p_ship over the analytical model and
// returns the value minimizing the modeled average response time, refined
// with a golden-section search around the best grid point. This is the
// paper's "optimal static strategy" baseline.
#pragma once

#include "model/analytic_model.hpp"

namespace hls {

struct StaticOptimum {
  double p_ship = 0.0;
  ModelSolution solution;      ///< model solution at the optimum
  double r_avg_no_sharing = 0.0;  ///< modeled average RT at p_ship = 0
};

class StaticOptimizer {
 public:
  struct Options {
    int grid_points = 41;       ///< coarse sweep resolution over [0, 1]
    int refine_iterations = 40; ///< golden-section steps around the best cell
    AnalyticModel::Options model;
  };

  StaticOptimizer();  // default options
  explicit StaticOptimizer(const Options& opts) : opts_(opts) {}

  [[nodiscard]] StaticOptimum optimize(const ModelParams& params) const;

 private:
  [[nodiscard]] double objective(const ModelParams& params, double p_ship) const;

  Options opts_;
};

}  // namespace hls
